(* Bechamel micro-benchmarks: one Test.make per paper table/figure,
   measuring the kernel that dominates that experiment.  Run with
   `dune exec bench/main.exe -- --bechamel` for statistically robust
   per-kernel numbers (OLS over the run predictor). *)

open Bechamel
open Toolkit

module Relation = Jp_relation.Relation
module Boolmat = Jp_matrix.Boolmat
module Presets = Jp_workload.Presets

let random_boolmat seed n density =
  let g = Jp_util.Rng.create seed in
  let m = Boolmat.create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if Jp_util.Rng.float g 1.0 < density then Boolmat.set m i j
    done
  done;
  m

let tests scale =
  let jokes = lazy (Presets.load ~scale:(0.4 *. scale) Presets.Jokes) in
  let dblp = lazy (Presets.load ~scale:(0.4 *. scale) Presets.Dblp) in
  let a = lazy (random_boolmat 1 512 0.5) in
  let b = lazy (random_boolmat 2 512 0.5) in
  Test.make_grouped ~name:"kernels" ~fmt:"%s %s"
    [
      (* FIG3a/3b: the matrix product itself *)
      Test.make ~name:"fig3-bool-mm-512"
        (Staged.stage (fun () ->
             let a = Lazy.force a and b = Lazy.force b in
             ignore (Boolmat.mul a b)));
      Test.make ~name:"fig3-count-mm-512"
        (Staged.stage (fun () ->
             let a = Lazy.force a and b = Lazy.force b in
             ignore (Boolmat.count_product a b)));
      (* ABL-TILE: the tiled kernels across a tile-size sweep (the flat
         fig3 rows above are their baseline; 512-wide tiles make the
         512x512 operand a single tile, pricing the pure schedule
         overhead) *)
      Test.make ~name:"abl-tile-bool-mm-512-t64"
        (Staged.stage (fun () ->
             let a = Lazy.force a and b = Lazy.force b in
             ignore
               (Jp_tile.mul
                  (Jp_tile.config ~tile_bits:6 ())
                  (Jp_tile.Source.of_boolmat a)
                  (Jp_tile.Source.of_boolmat b))));
      Test.make ~name:"abl-tile-bool-mm-512-t128"
        (Staged.stage (fun () ->
             let a = Lazy.force a and b = Lazy.force b in
             ignore
               (Jp_tile.mul
                  (Jp_tile.config ~tile_bits:7 ())
                  (Jp_tile.Source.of_boolmat a)
                  (Jp_tile.Source.of_boolmat b))));
      Test.make ~name:"abl-tile-bool-mm-512-t512"
        (Staged.stage (fun () ->
             let a = Lazy.force a and b = Lazy.force b in
             ignore
               (Jp_tile.mul
                  (Jp_tile.config ~tile_bits:9 ())
                  (Jp_tile.Source.of_boolmat a)
                  (Jp_tile.Source.of_boolmat b))));
      Test.make ~name:"abl-tile-count-mm-512-t64"
        (Staged.stage (fun () ->
             let a = Lazy.force a and b = Lazy.force b in
             ignore
               (Jp_tile.count_product
                  (Jp_tile.config ~tile_bits:6 ())
                  (Jp_tile.Source.of_boolmat a)
                  (Jp_tile.Source.of_boolmat b))));
      Test.make ~name:"abl-tile-count-mm-512-t128"
        (Staged.stage (fun () ->
             let a = Lazy.force a and b = Lazy.force b in
             ignore
               (Jp_tile.count_product
                  (Jp_tile.config ~tile_bits:7 ())
                  (Jp_tile.Source.of_boolmat a)
                  (Jp_tile.Source.of_boolmat b))));
      Test.make ~name:"abl-tile-count-mm-512-t512"
        (Staged.stage (fun () ->
             let a = Lazy.force a and b = Lazy.force b in
             ignore
               (Jp_tile.count_product
                  (Jp_tile.config ~tile_bits:9 ())
                  (Jp_tile.Source.of_boolmat a)
                  (Jp_tile.Source.of_boolmat b))));
      (* FIG4a: MMJoin vs the dedup-vector expansion on a dense family *)
      Test.make ~name:"fig4a-mmjoin-jokes"
        (Staged.stage (fun () ->
             let r = Lazy.force jokes in
             ignore (Joinproj.Two_path.project ~r ~s:r ())));
      Test.make ~name:"fig4a-nonmm-jokes"
        (Staged.stage (fun () ->
             let r = Lazy.force jokes in
             ignore
               (Joinproj.Two_path.project ~strategy:Joinproj.Two_path.Combinatorial
                  ~r ~s:r ())));
      (* FIG4b: star query heavy step *)
      Test.make ~name:"fig4b-star3-dblp"
        (Staged.stage (fun () ->
             let r = Lazy.force dblp in
             ignore (Joinproj.Star.project [| r; r; r |])));
      (* FIG5: SSJ counted join *)
      Test.make ~name:"fig5-mm-ssj-jokes-c2"
        (Staged.stage (fun () ->
             let r = Lazy.force jokes in
             ignore (Jp_ssj.Mm_ssj.join ~c:2 r)));
      (* FIG4c/FIG7: SCJ via counted join *)
      Test.make ~name:"fig4c-mm-scj-jokes"
        (Staged.stage (fun () ->
             let r = Lazy.force jokes in
             ignore (Jp_scj.Mm_scj.join r)));
      (* FIG6: one BSI batch *)
      Test.make ~name:"fig6-bsi-batch-jokes"
        (Staged.stage (fun () ->
             let r = Lazy.force jokes in
             let n = Relation.src_count r in
             let queries =
               Jp_workload.Generate.batch_queries ~seed:5 ~count:500 ~nx:n ~nz:n ()
             in
             ignore (Jp_bsi.Bsi.answer_batch ~r ~s:r queries)));
    ]

let run scale =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:None () in
  let raw = Benchmark.all cfg instances (tests scale) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Bench_common.section "Bechamel kernels (ns/run, OLS on monotonic clock)";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> Printf.sprintf "%.0f" x
        | _ -> "n/a"
      in
      rows := [ name; est ] :: !rows)
    results;
  Jp_util.Tablefmt.print ~header:[ "kernel"; "ns/run" ]
    ~rows:(List.sort compare !rows)
