(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (see DESIGN.md's experiment index).

   Usage:
     dune exec bench/main.exe                       # everything
     dune exec bench/main.exe -- --only FIG4a,FIG5  # prefix filter
     dune exec bench/main.exe -- --scale 0.5        # smaller datasets
     dune exec bench/main.exe -- --quick            # fast smoke pass
     dune exec bench/main.exe -- --bechamel         # Bechamel kernel suite *)

let experiments =
  [
    ("TAB2", Bench_datasets.table2);
    ("TAB1", Bench_matrix.calibration);
    ("FIG3a", Bench_matrix.fig3a);
    ("FIG3b", Bench_matrix.fig3b);
    ("FIG4a", Bench_join.fig4a);
    ("FIG4b", Bench_join.fig4b);
    ("FIG4c", Bench_scj.fig4c);
    ("FIG4de", Bench_join.fig4de);
    ("FIG4fg", Bench_join.fig4fg);
    ("FIG5abc", Bench_ssj.fig5abc);
    ("FIG5dgh", Bench_ssj.fig5dgh);
    ("FIG5ef-6a", Bench_ssj.ordered);
    ("FIG6bcd", Bench_bsi.fig6bcd);
    ("FIG7", Bench_scj.fig7);
    ("FIG8", Bench_ssj.fig8);
    ("EX4", Bench_join.example4);
    ("ABL", Bench_ablation.all);
    ("ABL-GUARD", Bench_ablation.guard);
    ("ABL-CHAOS", Bench_ablation.chaos);
    ("ABL-CACHE", Bench_ablation.semantic_cache);
    ("ABL-OBS", Bench_ablation.obs);
    ("ABL-CQ", Bench_ablation.cq);
    ("ABL-LOAD", Bench_ablation.load);
    ("ABL-TILE", Bench_ablation.tile);
  ]

let () =
  let cfg = ref Bench_common.default_config in
  let bechamel = ref false in
  let json_out = ref None in
  let set_only s =
    cfg := { !cfg with Bench_common.only = String.split_on_char ',' s }
  in
  let args =
    [
      ( "--scale",
        Arg.Float (fun f -> cfg := { !cfg with Bench_common.scale = f }),
        "FACTOR dataset scale multiplier (default 1.0)" );
      ( "--repeats",
        Arg.Int (fun n -> cfg := { !cfg with Bench_common.repeats = n }),
        "N median-of-N timing (default 1)" );
      ("--only", Arg.String set_only, "TAGS comma-separated experiment id prefixes");
      ( "--quick",
        Arg.Unit
          (fun () ->
            (* quick passes double as CI smoke tests, so |OUT| disagreements
               must fail loudly *)
            cfg := { !cfg with Bench_common.scale = 0.35; Bench_common.strict = true }),
        " shrink datasets for a fast smoke pass (implies --strict)" );
      ( "--strict",
        Arg.Unit (fun () -> cfg := { !cfg with Bench_common.strict = true }),
        " treat cross-engine |OUT| disagreements as hard errors" );
      ( "--json",
        Arg.String (fun f -> json_out := Some f),
        "FILE write per-cell records (median seconds, checksum, counters) as JSON" );
      ("--bechamel", Arg.Set bechamel, " run the Bechamel kernel suite instead");
    ]
  in
  Arg.parse args
    (fun s -> raise (Arg.Bad ("unexpected argument " ^ s)))
    "joinproj benchmark harness";
  let cfg = !cfg in
  Printf.printf
    "joinproj benchmarks — scale %.2f, %d core(s) available, repeats %d\n%!"
    cfg.Bench_common.scale
    (Jp_parallel.Pool.available_cores ())
    cfg.Bench_common.repeats;
  (* calibrate the optimizer's machine model up front so the cost is not
     charged to the first timed MMJoin cell *)
  ignore (Jp_matrix.Cost.machine ());
  (* --json turns the engine counters on; each timed cell then snapshots
     their deltas into its record *)
  if !json_out <> None then Jp_obs.enable ();
  if !bechamel then Bench_kernels.run cfg.Bench_common.scale
  else begin
    (* Prefix match so that --only FIG4b also runs FIG4b-dense. *)
    let matches tag =
      cfg.Bench_common.only = []
      || List.exists
           (fun o ->
             let o = String.lowercase_ascii (String.trim o) in
             let t = String.lowercase_ascii tag in
             o <> ""
             && String.length o <= String.length t
             && String.sub t 0 (String.length o) = o)
           cfg.Bench_common.only
    in
    List.iter
      (fun (tag, f) ->
        if matches tag then begin
          Bench_common.set_experiment tag;
          f cfg
        end)
      experiments;
    (match !json_out with
    | Some path -> Bench_common.write_json ~path cfg
    | None -> ());
    print_newline ()
  end
