(* Ablations for the design choices DESIGN.md calls out:

   ABL-DEDUP   stamp-vector vs hash-table deduplication (the Section-6
               discussion: "upfront reservation ... expensive both in time
               and memory");
   ABL-KERNEL  bit-sliced matrix kernels vs the scalar i-k-j product
               (why the 62-way word packing is the SGEMM stand-in);
   ABL-SORT    monomorphic radix sort vs polymorphic Array.sort for output
               group finalization;
   ABL-EST     output-size estimator accuracy: bounds / geometric mean
               (the paper's Section 5 estimate) / sampling refinement
               (its future-work direction);
   ABL-GUARD   adaptive plan guards (Jp_adaptive): overhead of a clean
               guarded run, and recovery when the planner's |OUT| estimate
               is deterministically injected 100x off in either direction
               (registered as its own tag so CI can smoke it alone);
   ABL-CHAOS   the query service (Jp_service): cost of cancellation
               polling with a live token, of the full served path
               (queue + worker domain + ticket), and of recovering from
               deterministically injected transient faults via
               retry-with-backoff and degradation (own tag, CI smoke);
   ABL-CACHE   the cross-query semantic cache (Jp_cache): miss-path
               overhead of a cold cache, warm-path reuse of prepared
               statistics and heavy-part products, and the end-to-end
               speedup on a Zipf-repeated served workload where repeats
               hit the whole-result level (own tag, CI smoke);
   ABL-OBS     the observability/metrics stack (Jp_obs + Jp_metrics):
               cost of recording armed but nothing exported — spans,
               counters, latency histograms, gauges and per-query
               snapshots all live — vs recording off, on the bare
               engine and on the served path (own tag, CI smoke);
   ABL-CQ      the decomposition planner for general acyclic CQs
               (Jp_query.Planner): auto (cost-gated MM fragments /
               whole-query star bypass) vs the forced pure-Yannakakis
               foil on queries with projected-away join variables; the
               gate must carve where MM wins (skewed jokes) and decline
               where |OUT| ~ join size (dblp) (own tag, CI smoke);
   ABL-LOAD    open-loop saturation sweep (Jp_workload.Arrivals +
               Jp_service.Overload): seeded arrival schedules at rates
               bracketing the knee, overload controller (shed / dequeue
               expiry / brownout) vs the bare bounded queue; goodput
               must stay near the knee with the controller on while the
               foil collapses past it (own tag, CI smoke);
   ABL-TILE    tiled, memory-bounded heavy-part MM (Jp_tile): overhead
               of forcing the two-path heavy product through the tiled
               schedule at default sizes, and a capped-memory cell whose
               operand tiles exceed the resident budget many times over
               — it must stream under the cap (LANDLORD evict/rebuild)
               and stay bit-equal to the flat kernel (own tag, CI
               smoke). *)

module Relation = Jp_relation.Relation
module Presets = Jp_workload.Presets
module Tablefmt = Jp_util.Tablefmt

(* Hash-based dedup expansion, built here only as the ablation's foil. *)
let expand_hash_dedup r =
  let seen = Hashtbl.create 1024 in
  let nz = Relation.src_count r in
  Relation.iter
    (fun x y ->
      Array.iter
        (fun z -> Hashtbl.replace seen ((x * nz) + z) ())
        (Relation.adj_dst r y))
    r;
  Hashtbl.length seen

let dedup cfg =
  Bench_common.section "ABL-DEDUP: stamp vector vs hash table (two-path dedup)";
  let rows =
    List.map
      (fun name ->
        let r = Bench_common.dataset cfg name in
        let stamp, n1 =
          Bench_common.timed_cell cfg (fun () ->
              Jp_relation.Pairs.count (Jp_wcoj.Expand.project ~r ~s:r ()))
        in
        let hash, n2 = Bench_common.timed_cell cfg (fun () -> expand_hash_dedup r) in
        Bench_common.check_consistent cfg ~label:(Presets.to_string name) [ n1; n2 ];
        [ Presets.to_string name; stamp; hash ])
      [ Presets.Jokes; Presets.Protein; Presets.Image ]
  in
  Tablefmt.print ~header:[ "dataset"; "stamp vector"; "hash table" ] ~rows;
  Bench_common.note
    "Section 6's claim: hash dedup pays reservation/rehash costs the stamp";
  Bench_common.note "vector avoids."

let kernels cfg =
  Bench_common.section "ABL-KERNEL: bit-sliced kernels vs scalar i-k-j product";
  let n = max 4 (int_of_float (600.0 *. cfg.Bench_common.scale)) in
  let g = Jp_util.Rng.create 3 in
  let bm = Jp_matrix.Boolmat.create ~rows:n ~cols:n in
  let im = Jp_matrix.Intmat.create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if Jp_util.Rng.float g 1.0 < 0.4 then begin
        Jp_matrix.Boolmat.set bm i j;
        Jp_matrix.Intmat.set im i j 1
      end
    done
  done;
  let t_bool = Bench_common.time cfg (fun () -> Jp_matrix.Boolmat.mul bm bm) in
  let t_cnt = Bench_common.time cfg (fun () -> Jp_matrix.Boolmat.count_product bm bm) in
  let t_scalar = Bench_common.time cfg (fun () -> Jp_matrix.Intmat.mul im im) in
  Tablefmt.print
    ~header:[ "kernel"; Printf.sprintf "time (n=%d)" n ]
    ~rows:
      [
        [ "boolean OR (62-way packed)"; Tablefmt.seconds t_bool ];
        [ "count AND+popcount (62-way)"; Tablefmt.seconds t_cnt ];
        [ "scalar i-k-j (blocked)"; Tablefmt.seconds t_scalar ];
      ]

let sorts cfg =
  Bench_common.section "ABL-SORT: radix Intsort vs polymorphic Array.sort";
  let g = Jp_util.Rng.create 5 in
  let rows = max 16 (int_of_float (4000.0 *. cfg.Bench_common.scale)) in
  let data () =
    Array.init rows (fun _ -> Array.init 800 (fun _ -> Jp_util.Rng.int g 100_000))
  in
  let a = data () and b = data () in
  let t_radix = Bench_common.time cfg (fun () -> Array.iter Jp_util.Intsort.sort a) in
  let t_poly =
    Bench_common.time cfg (fun () -> Array.iter (fun g -> Array.sort compare g) b)
  in
  Tablefmt.print
    ~header:[ "sort"; Printf.sprintf "time (%d groups of 800)" rows ]
    ~rows:
      [
        [ "Intsort (radix)"; Tablefmt.seconds t_radix ];
        [ "Array.sort compare"; Tablefmt.seconds t_poly ];
      ]

let estimators cfg =
  Bench_common.section "ABL-EST: output-size estimation accuracy";
  let rows =
    List.map
      (fun name ->
        let r = Bench_common.dataset cfg name in
        let truth = Jp_wcoj.Expand.count_distinct ~r ~s:r () in
        let lower, upper = Joinproj.Estimator.bounds ~r ~s:r in
        let geo = Joinproj.Estimator.estimate ~r ~s:r in
        let smp = Joinproj.Estimator.sampled ~r ~s:r () in
        let err v =
          Printf.sprintf "%.2fx" (float_of_int (max v truth) /. float_of_int (max 1 (min v truth)))
        in
        [
          Presets.to_string name;
          Tablefmt.big_int truth;
          Printf.sprintf "[%s, %s]" (Tablefmt.big_int lower) (Tablefmt.big_int upper);
          Printf.sprintf "%s (%s)" (Tablefmt.big_int geo) (err geo);
          Printf.sprintf "%s (%s)" (Tablefmt.big_int smp) (err smp);
        ])
      Presets.all
  in
  Tablefmt.print
    ~header:[ "dataset"; "|OUT| truth"; "bounds"; "geometric (err)"; "sampled (err)" ]
    ~rows;
  Bench_common.note
    "the sampling estimator (the paper's future-work direction) tightens the";
  Bench_common.note "geometric-mean estimate Section 5 uses."

let thresholds cfg =
  Bench_common.section
    "ABL-THRESH: Algorithm 3 (cost-based) vs Lemma 3 (closed form) thresholds";
  let rows =
    List.filter_map
      (fun name ->
        let r = Bench_common.dataset cfg name in
        let plan = Joinproj.Optimizer.plan ~r ~s:r () in
        match plan.Joinproj.Optimizer.decision with
        | Joinproj.Optimizer.Wcoj -> None
        | Joinproj.Optimizer.Partitioned { d1; d2 } ->
          let n = Relation.size r in
          let out = Jp_wcoj.Expand.count_distinct ~r ~s:r () in
          let t1, t2 = Joinproj.Optimizer.theoretical_thresholds ~n ~out in
          let run thresholds =
            let d1, d2 = thresholds in
            let forced =
              {
                plan with
                Joinproj.Optimizer.decision =
                  Joinproj.Optimizer.Partitioned { d1; d2 };
              }
            in
            Bench_common.time cfg (fun () ->
                Joinproj.Two_path.project ~plan:forced ~r ~s:r ())
          in
          Some
            [
              Presets.to_string name;
              Printf.sprintf "(%d, %d)" d1 d2;
              Tablefmt.seconds (run (d1, d2));
              Printf.sprintf "(%d, %d)" t1 t2;
              Tablefmt.seconds (run (t1, t2));
            ])
      Presets.all
  in
  Tablefmt.print
    ~header:
      [ "dataset"; "Alg.3 (d1,d2)"; "time"; "Lemma 3 (d1,d2)"; "time" ]
    ~rows;
  Bench_common.note
    "the cost-based thresholds adapt to the machine constants; the closed";
  Bench_common.note "form assumes omega=2 and uniform degrees."

let dynamic cfg =
  Bench_common.section "ABL-DYNAMIC: incremental view maintenance vs recomputation";
  let r = Bench_common.dataset cfg Presets.Dblp in
  let view = Jp_dynamic.View.init ~r ~s:r () in
  let updates = 5_000 in
  let rng = Jp_util.Rng.create 99 in
  let nx = Relation.src_count r and ny = Relation.dst_count r in
  let t_updates =
    Bench_common.time cfg (fun () ->
        for _ = 1 to updates do
          let a = Jp_util.Rng.int rng nx and b = Jp_util.Rng.int rng ny in
          if Jp_util.Rng.bool rng then Jp_dynamic.View.insert_r view a b
          else Jp_dynamic.View.delete_r view a b
        done)
  in
  let t_recompute =
    Bench_common.time cfg (fun () -> Joinproj.Two_path.project_counts ~r ~s:r ())
  in
  Tablefmt.print
    ~header:[ "operation"; "time" ]
    ~rows:
      [
        [
          Printf.sprintf "%d single-tuple updates (maintained)" updates;
          Tablefmt.seconds t_updates;
        ];
        [ "one full recomputation"; Tablefmt.seconds t_recompute ];
        [
          "per update";
          Printf.sprintf "%.1fus" (1e6 *. t_updates /. float_of_int updates);
        ];
      ];
  Bench_common.note
    "maintenance amortizes: each delta costs O(deg) instead of a full join."

let guard cfg =
  Bench_common.section
    "ABL-GUARD: adaptive plan guards under injected misestimation";
  let module Guard = Jp_adaptive.Guard in
  let module Inject = Jp_adaptive.Inject in
  let run ?guard ~label r =
    Bench_common.timed_cell ~label cfg (fun () ->
        Jp_relation.Pairs.count (Joinproj.Two_path.project ?guard ~r ~s:r ()))
  in
  let rows =
    List.map
      (fun name ->
        let r = Bench_common.dataset cfg name in
        let ds = Presets.to_string name in
        let base, n0 = run ~label:(ds ^ "/unguarded") r in
        let clean, n1 = run ~guard:Guard.default ~label:(ds ^ "/guard-clean") r in
        let under, n2 =
          run
            ~guard:(Guard.with_inject (Inject.out_only 0.01) Guard.default)
            ~label:(ds ^ "/inject-0.01") r
        in
        let over, n3 =
          run
            ~guard:(Guard.with_inject (Inject.out_only 100.0) Guard.default)
            ~label:(ds ^ "/inject-100") r
        in
        let degrade, n4 =
          run
            ~guard:(Guard.with_budget_ms 0.0 Guard.default)
            ~label:(ds ^ "/budget-0") r
        in
        Bench_common.check_consistent cfg ~label:ds [ n0; n1; n2; n3; n4 ];
        [ ds; base; clean; under; over; degrade ])
      [ Presets.Jokes; Presets.Dblp ]
  in
  Tablefmt.print
    ~header:
      [
        "dataset"; "unguarded"; "guard (clean)"; "inject 0.01"; "inject 100";
        "budget 0ms";
      ]
    ~rows;
  Bench_common.note
    "a clean guard adds only per-chunk checkpoints (target: <5%% overhead);";
  Bench_common.note
    "under a 100x |OUT| mis-estimate the guard re-plans mid-query and should";
  Bench_common.note
    "stay within ~2x of the correctly-planned time; budget 0ms must degrade";
  Bench_common.note "to the safe combinatorial path, same |OUT| everywhere."

let chaos cfg =
  Bench_common.section
    "ABL-CHAOS: cancellation polling, service wrapping and fault recovery";
  let module Cancel = Jp_util.Cancel in
  let count ?cancel r =
    Jp_relation.Pairs.count (Joinproj.Two_path.project ?cancel ~r ~s:r ())
  in
  (* One query through the service; create/shutdown sit outside the timed
     cell so the row prices the steady-state path (queue, worker domain,
     ticket, retries), not domain spawning. *)
  let serve ~label ~chaos r =
    let svc = Jp_service.create { Jp_service.default with Jp_service.chaos } in
    let cell =
      Bench_common.timed_cell ~label cfg (fun () ->
          let tk =
            Jp_service.submit svc (fun ~cancel ~attempt:_ ~degraded ->
                let guard = if degraded then Some Jp_adaptive.Guard.safe else None in
                Jp_relation.Pairs.count
                  (Joinproj.Two_path.project ?guard ~cancel ~r ~s:r ()))
          in
          match (Jp_service.await tk).Jp_service.outcome with
          | Ok n -> n
          | Error e -> failwith ("ABL-CHAOS: " ^ Jp_service.error_to_string e))
    in
    Jp_service.shutdown svc;
    cell
  in
  (* p_transient = 1.0: every non-degraded attempt faults, so the query
     deterministically burns all retries and succeeds on the degraded
     attempt — the row prices the full recovery pipeline. *)
  let hostile = { (Jp_chaos.default 11) with Jp_chaos.p_transient = 1.0 } in
  let rows =
    List.map
      (fun name ->
        let r = Bench_common.dataset cfg name in
        let ds = Presets.to_string name in
        let bare, n0 =
          Bench_common.timed_cell ~label:(ds ^ "/bare") cfg (fun () -> count r)
        in
        let polled, n1 =
          Bench_common.timed_cell ~label:(ds ^ "/cancel-token") cfg (fun () ->
              count ~cancel:(Cancel.create ()) r)
        in
        let served, n2 = serve ~label:(ds ^ "/served") ~chaos:None r in
        let chaotic, n3 = serve ~label:(ds ^ "/chaos") ~chaos:(Some hostile) r in
        Bench_common.check_consistent cfg ~label:ds [ n0; n1; n2; n3 ];
        [ ds; bare; polled; served; chaotic ])
      [ Presets.Jokes; Presets.Dblp ]
  in
  Tablefmt.print
    ~header:
      [ "dataset"; "bare engine"; "cancel token"; "served"; "chaos (retry+degrade)" ]
    ~rows;
  Bench_common.note
    "a live-but-never-cancelled token only adds chunk-granular polls";
  Bench_common.note
    "(target: <2%% over bare); the served column adds queue+ticket handoff;";
  Bench_common.note
    "the chaos column deterministically faults every normal attempt, so it";
  Bench_common.note
    "pays retries, backoff and the degraded safe path — same |OUT| everywhere."

let semantic_cache cfg =
  Bench_common.section "ABL-CACHE: cross-query semantic cache (Jp_cache)";
  let count ?memo ?cancel r =
    Jp_relation.Pairs.count (Joinproj.Two_path.project ?memo ?cancel ~r ~s:r ())
  in
  (* Single-query cells: the cold cache prices the miss path (every
     lookup misses, every artifact is inserted), the warm cache reuses
     the prepared statistics and the heavy-part product. *)
  let rows =
    List.map
      (fun name ->
        let r = Bench_common.dataset cfg name in
        let ds = Presets.to_string name in
        let bare, n0 =
          Bench_common.timed_cell ~label:(ds ^ "/uncached") cfg (fun () ->
              count r)
        in
        let cold, n1 =
          Bench_common.timed_cell ~label:(ds ^ "/cache-cold") cfg (fun () ->
              let c = Jp_cache.create () in
              count ~memo:(Jp_cache.two_path_memo c ~r ~s:r) r)
        in
        let warm = Jp_cache.create () in
        ignore (count ~memo:(Jp_cache.two_path_memo warm ~r ~s:r) r);
        let hot, n2 =
          Bench_common.timed_cell ~label:(ds ^ "/cache-warm") cfg (fun () ->
              count ~memo:(Jp_cache.two_path_memo warm ~r ~s:r) r)
        in
        Bench_common.check_consistent cfg ~label:ds [ n0; n1; n2 ];
        [ ds; bare; cold; hot ])
      [ Presets.Jokes; Presets.Dblp ]
  in
  Tablefmt.print
    ~header:[ "dataset"; "uncached"; "cache (cold)"; "cache (warm)" ]
    ~rows;
  (* The headline: a Zipf-repeated served workload, closed loop, with and
     without the cache.  Repeated queries hit the whole-result level and
     resolve without touching a worker domain. *)
  let r = Bench_common.dataset cfg Presets.Jokes in
  let nq = 32 and distinct = 4 in
  let n = Relation.src_count r in
  let subs =
    Array.init distinct (fun d ->
        let g = Jp_util.Rng.create (401 + (7919 * d)) in
        let frac = 0.3 +. Jp_util.Rng.float g 0.4 in
        let keep = Array.init n (fun _ -> Jp_util.Rng.float g 1.0 < frac) in
        Relation.restrict_src r (fun a -> keep.(a)))
  in
  let zipf = Jp_workload.Zipf.create ~exponent:1.2 distinct in
  let g = Jp_util.Rng.create 402 in
  let ident = Array.init nq (fun _ -> Jp_workload.Zipf.sample zipf g) in
  let expected = Array.map (fun sub -> count sub) subs in
  let tag : int Jp_cache.tag = Jp_cache.tag "bench.count" in
  let svc = Jp_service.create Jp_service.default in
  let serve cache =
    let total = ref 0 in
    for i = 0 to nq - 1 do
      let d = ident.(i) in
      let sub = subs.(d) in
      let cached =
        Option.map
          (fun c ->
            Jp_cache.binding c tag
              (Jp_cache.Key.of_relations ~kind:"bench.result" [ sub ])
              ~bytes_of:(fun _ -> 16)
              ~verify:(fun v -> v = expected.(d))
              ())
          cache
      in
      let tk =
        Jp_service.submit svc ~key:i ?cached
          (fun ~cancel ~attempt:_ ~degraded:_ ->
            let memo =
              Option.map (fun c -> Jp_cache.two_path_memo c ~r:sub ~s:sub) cache
            in
            count ?memo ~cancel sub)
      in
      match (Jp_service.await tk).Jp_service.outcome with
      | Ok v -> total := !total + v
      | Error e -> failwith ("ABL-CACHE: " ^ Jp_service.error_to_string e)
    done;
    !total
  in
  let s0 = ref 0 and s1 = ref 0 in
  let t0 =
    Bench_common.time ~label:"zipf-serve/uncached" cfg (fun () ->
        s0 := serve None)
  in
  (* Fresh cache inside the thunk: the cell prices a full workload from
     cold, first occurrences missing and repeats hitting. *)
  let t1 =
    Bench_common.time ~label:"zipf-serve/cached" cfg (fun () ->
        s1 := serve (Some (Jp_cache.create ())))
  in
  Jp_service.shutdown svc;
  Bench_common.check_consistent cfg ~label:"zipf-serve" [ !s0; !s1 ];
  Tablefmt.print
    ~header:
      [
        Printf.sprintf "served Zipf workload (%d q / %d distinct)" nq distinct;
        "time";
      ]
    ~rows:
      [
        [ "uncached"; Tablefmt.seconds t0 ];
        [ "cached (fresh cache, all three levels)"; Tablefmt.seconds t1 ];
        [ "speedup"; Printf.sprintf "%.1fx" (t0 /. t1) ];
      ];
  Bench_common.note
    "targets: cold-path overhead <2%% over uncached, and >=5x on the";
  Bench_common.note
    "Zipf-repeated served workload (repeats resolve from the result level";
  Bench_common.note "without touching a worker; every answer stays verified)."

let obs cfg =
  Bench_common.section
    "ABL-OBS: observability/metrics overhead, armed but not exported";
  (* The effect under test is a few percent at most, far below the
     run-to-run noise of a single repeat, so this ablation takes the
     median of at least 5 runs per cell even at --quick. *)
  let cfg = { cfg with Bench_common.repeats = max cfg.Bench_common.repeats 5 } in
  let count ?cancel r =
    Jp_relation.Pairs.count (Joinproj.Two_path.project ?cancel ~r ~s:r ())
  in
  (* A small pipelined batch through the service: with recording armed
     this path pays spans with args, lifecycle counters, two histogram
     observations, queue/in-flight gauge updates and one gauge snapshot
     per query.  Batching amortizes the per-query submit/await domain
     handoff, which is far noisier than the effect under test. *)
  let serve_batch = 6 in
  let serve svc r =
    let tickets =
      List.init serve_batch (fun _ ->
          Jp_service.submit svc (fun ~cancel ~attempt:_ ~degraded:_ -> count ~cancel r))
    in
    List.fold_left
      (fun _ tk ->
        match (Jp_service.await tk).Jp_service.outcome with
        | Ok n -> n
        | Error e -> failwith ("ABL-OBS: " ^ Jp_service.error_to_string e))
      0 tickets
  in
  let timed label f =
    let n = ref 0 in
    let t = Bench_common.time ~label cfg (fun () -> n := f ()) in
    (t, !n)
  in
  let pct off on =
    if off <= 0.0 then "-" else Printf.sprintf "%+.1f%%" (((on /. off) -. 1.0) *. 100.0)
  in
  let was_recording = Jp_obs.recording () in
  let rows =
    List.map
      (fun name ->
        let r = Bench_common.dataset cfg name in
        let ds = Presets.to_string name in
        (* Recording-off cells run first (Bench_common only emits JSON
           records for armed cells, so those rows are timing-only); the
           untimed warmup calls keep allocator/cache warm-up effects out
           of whichever cell happens to run first. *)
        Jp_obs.disable ();
        ignore (count r);
        let e_off, n0 = timed (ds ^ "/engine-off") (fun () -> count r) in
        let svc = Jp_service.create Jp_service.default in
        ignore (serve svc r);
        let s_off, n1 = timed (ds ^ "/served-off") (fun () -> serve svc r) in
        Jp_service.shutdown svc;
        Jp_obs.enable ();
        ignore (count r);
        let e_on, n2 = timed (ds ^ "/engine-armed") (fun () -> count r) in
        let svc = Jp_service.create Jp_service.default in
        ignore (serve svc r);
        let s_on, n3 = timed (ds ^ "/served-armed") (fun () -> serve svc r) in
        Jp_service.shutdown svc;
        Bench_common.check_consistent cfg ~label:ds [ n0; n1; n2; n3 ];
        [
          ds;
          Tablefmt.seconds e_off;
          Tablefmt.seconds e_on;
          pct e_off e_on;
          Tablefmt.seconds s_off;
          Tablefmt.seconds s_on;
          pct s_off s_on;
        ])
      [ Presets.Jokes; Presets.Dblp ]
  in
  if was_recording then Jp_obs.enable () else Jp_obs.disable ();
  Tablefmt.print
    ~header:
      [
        "dataset";
        "engine off";
        "engine armed";
        "overhead";
        "served off";
        "served armed";
        "overhead";
      ]
    ~rows;
  Bench_common.note
    "armed = Jp_obs.enable() with histograms, gauges and per-query snapshots";
  Bench_common.note
    "live but nothing exported (target: <2%% over recording off); the";
  Bench_common.note
    "engine columns price span/counter gating, the served columns add the";
  Bench_common.note "full Jp_metrics path — same |OUT| in every cell."

let cq cfg =
  Bench_common.section
    "ABL-CQ: decomposition planner vs pure Yannakakis on acyclic CQs";
  let module Engine = Jp_query.Engine in
  let module Planner = Jp_query.Planner in
  let parse text =
    match Jp_query.Cq.parse text with
    | Ok q -> q
    | Error e -> failwith ("ABL-CQ: " ^ e)
  in
  let run ~policy catalog q =
    match Engine.run ~policy catalog q with
    | Ok out -> Jp_relation.Tuples.count out
    | Error e -> failwith ("ABL-CQ: " ^ e)
  in
  let plan_line catalog q =
    match Engine.plan_of ~catalog q with
    | Ok p -> Engine.describe p
    | Error e -> failwith ("ABL-CQ: " ^ e)
  in
  (* The star row runs at a reduced scale: its Yannakakis foil
     materializes the full per-bag joins and grows much faster than the
     MM bypass, so the full-scale foil would dominate the whole tag. *)
  let cases =
    [
      ("jokes", 1.0, "path4", "Q(a, d) :- R(a, b), S(b, c), T(c, d)");
      ("dblp", 1.0, "path4", "Q(a, d) :- R(a, b), S(b, c), T(c, d)");
      ("jokes", 0.3, "star3", "Q(a, b, d) :- R(a, c), S(c, b), T(c, d)");
    ]
  in
  let rows =
    List.map
      (fun (ds, rel_scale, qname, text) ->
        let name =
          match Presets.of_string ds with
          | Some n -> n
          | None -> failwith ("ABL-CQ: unknown dataset " ^ ds)
        in
        let r =
          if rel_scale = 1.0 then Bench_common.dataset cfg name
          else Presets.load ~scale:(cfg.Bench_common.scale *. rel_scale) name
        in
        let catalog = [ ("R", r); ("S", r); ("T", r) ] in
        let q = parse text in
        let label = ds ^ "/" ^ qname in
        let auto, n0 =
          Bench_common.timed_cell ~label:(label ^ "/auto") cfg (fun () ->
              run ~policy:Planner.Cost_gate catalog q)
        in
        let foil, n1 =
          Bench_common.timed_cell ~label:(label ^ "/yannakakis") cfg (fun () ->
              run ~policy:Planner.Never_mm catalog q)
        in
        Bench_common.check_consistent cfg ~label [ n0; n1 ];
        [ label; auto; foil; plan_line catalog q ])
      cases
  in
  Tablefmt.print ~header:[ "dataset/query"; "auto"; "yannakakis"; "auto plan" ] ~rows;
  Bench_common.note
    "auto must beat the foil where a fragment is carved (jokes: skewed";
  Bench_common.note
    "degrees, |OUT| << join size) and match it within noise where the gate";
  Bench_common.note
    "declines (dblp: |OUT| ~ join size, MM would not pay); both policies";
  Bench_common.note "must agree on |OUT| in every cell."

(* ABL-LOAD: the open-loop saturation sweep.  A seeded arrival schedule
   is replayed against the service at rates bracketing the knee
   (workers / single-query time); past the knee the bare bounded queue
   (controller off) fills with work that expires uselessly — queued
   queries die at their deadline, some after burning a worker mid-run —
   while the overload controller sheds at admission, expires stale
   tickets at dequeue without an engine attempt, and browns out, so
   goodput (answers within deadline per second) stays near the knee
   value. *)
let load cfg =
  Bench_common.section
    "ABL-LOAD: open-loop saturation sweep, overload controller vs bare queue";
  let module Service = Jp_service in
  let module Arrivals = Jp_workload.Arrivals in
  let module Hist = Jp_metrics.Hist in
  let r = Bench_common.dataset cfg Presets.Jokes in
  let distinct = 8 in
  let n = Relation.src_count r in
  let subs =
    Array.init distinct (fun d ->
        let g = Jp_util.Rng.create (501 + (7919 * d)) in
        let frac = 0.3 +. Jp_util.Rng.float g 0.4 in
        let keep = Array.init n (fun _ -> Jp_util.Rng.float g 1.0 < frac) in
        Relation.restrict_src r (fun a -> keep.(a)))
  in
  let count ?guard ?cancel i =
    let sub = subs.(i mod distinct) in
    Jp_relation.Pairs.count
      (Joinproj.Two_path.project ?guard ?cancel ~r:sub ~s:sub ())
  in
  let expected = Array.init distinct (fun i -> count i) in
  (* Knee estimate: the service's fault-free throughput ceiling. *)
  let t0 =
    let runs =
      List.init 3 (fun i -> snd (Jp_util.Timer.time (fun () -> count i)))
    in
    List.nth (List.sort Float.compare runs) 1
  in
  let workers = max 1 (min 2 (Jp_parallel.Pool.available_cores ())) in
  let knee = float_of_int workers /. t0 in
  let deadline_s = 4.0 *. t0 in
  (* Each swept rate runs for a fixed wall-clock window, not a fixed query
     count: past the knee the point is the steady state (backlog pinned at
     the deadline horizon, worker burning dead work), which a short burst
     never reaches. *)
  let duration_s = 0.8 in
  let run_sweep ~ctl rate =
    let nq = max 16 (int_of_float (rate *. duration_s)) in
    let cfg_s =
      {
        Service.default with
        Service.workers;
        queue_capacity = 2 * nq;
        default_deadline_s = Some deadline_s;
        controller = (if ctl then Some Service.Overload.default else None);
      }
    in
    let svc = Service.create cfg_s in
    let schedule = Arrivals.schedule ~seed:7 ~rate ~count:nq () in
    let tickets = Array.make nq None in
    let start =
      Arrivals.drive ~now:Jp_util.Timer.now ~sleep:Unix.sleepf ~schedule
        (fun i ->
          tickets.(i) <-
            Some
              (Service.submit svc ~key:i (fun ~cancel ~attempt:_ ~degraded ->
                   let guard =
                     if degraded then Some Jp_adaptive.Guard.safe else None
                   in
                   count ?guard ~cancel i)))
    in
    let reports =
      Array.map (fun tk -> Service.await (Option.get tk)) tickets
    in
    let makespan = Jp_util.Timer.now () -. start in
    Service.shutdown svc;
    let ok = ref 0 and shed = ref 0 and expired = ref 0 in
    let dead = ref 0 and other = ref 0 in
    let e2e = Hist.create () in
    Array.iteri
      (fun i rep ->
        match rep.Service.outcome with
        | Ok c ->
          if c <> expected.(i mod distinct) then begin
            Printf.printf
              "  ERROR: served answer disagrees with the unloaded engine \
               (query %d: %d vs %d)\n%!"
              i c expected.(i mod distinct);
            if cfg.Bench_common.strict then exit 1
          end;
          incr ok;
          Hist.observe e2e (rep.Service.queued_s +. rep.Service.ran_s)
        | Error Service.Shed -> incr shed
        | Error Service.Expired_in_queue -> incr expired
        | Error Service.Deadline_exceeded -> incr dead
        | Error _ -> incr other)
      reports;
    let goodput = if makespan > 0. then float_of_int !ok /. makespan else 0. in
    let p99 =
      if Hist.count e2e = 0 then "-"
      else Tablefmt.seconds (Hist.quantile e2e 0.99)
    in
    (nq, !ok, !shed, !expired, !dead, !other, p99, goodput)
  in
  let multipliers = [ 0.5; 1.0; 2.0; 8.0 ] in
  let results =
    List.map
      (fun m ->
        let rate = m *. knee in
        (m, rate, run_sweep ~ctl:false rate, run_sweep ~ctl:true rate))
      multipliers
  in
  let rows =
    List.concat_map
      (fun (m, rate, off, on) ->
        let row ctl (nq, ok, shed, expired, dead, other, p99, goodput) =
          [
            Printf.sprintf "%.2gx knee (%.1f/s)" m rate;
            ctl;
            string_of_int nq;
            string_of_int ok;
            string_of_int shed;
            string_of_int expired;
            string_of_int dead;
            string_of_int other;
            p99;
            Printf.sprintf "%.1f/s" goodput;
          ]
        in
        [ row "off" off; row "on" on ])
      results
  in
  Tablefmt.print
    ~header:
      [ "arrival rate"; "ctl"; "sub"; "ok"; "shed"; "expired"; "deadline";
        "other"; "p99"; "goodput" ]
    ~rows;
  let goodput_of (_, _, _, _, _, _, _, g) = g in
  let _, _, off_hi, on_hi = List.nth results (List.length results - 1) in
  Bench_common.note
    "single query %s, knee ~%.1f/s (%d worker(s)), deadline %s"
    (Tablefmt.seconds t0) knee workers
    (Tablefmt.seconds deadline_s);
  Bench_common.note
    "targets: past the knee the controller keeps goodput near the knee";
  Bench_common.note
    "value (shed/expire/brownout instead of queueing to death) while the";
  Bench_common.note
    "bare queue collapses; below the knee the controller is within noise.";
  if cfg.Bench_common.strict && goodput_of on_hi < goodput_of off_hi then begin
    Printf.printf
      "  ERROR: controller-on goodput %.1f/s < controller-off %.1f/s at the \
       highest rate\n%!"
      (goodput_of on_hi) (goodput_of off_hi);
    exit 1
  end

(* ABL-TILE: the tiled heavy-part product.  Two claims are priced: the
   tiled schedule is near-free at default sizes (so the size gate can
   err toward tiling), and a resident budget far below the operands'
   footprint still completes, streaming tiles LANDLORD-style, with a
   bit-equal result. *)
let tile cfg =
  Bench_common.section
    "ABL-TILE: tiled, memory-bounded heavy-part MM (Jp_tile)";
  let count ?tile r =
    Jp_relation.Pairs.count
      (Joinproj.Two_path.project ~strategy:Joinproj.Two_path.Matrix ?tile ~r
         ~s:r ())
  in
  let forced = Jp_tile.config ~force:true () in
  let rows =
    List.map
      (fun name ->
        let r = Bench_common.dataset cfg name in
        let ds = Presets.to_string name in
        let flat, n0 =
          Bench_common.timed_cell ~label:(ds ^ "/untiled") cfg (fun () ->
              count r)
        in
        let tiled, n1 =
          Bench_common.timed_cell ~label:(ds ^ "/tiled") cfg (fun () ->
              count ~tile:forced r)
        in
        Bench_common.check_consistent cfg ~label:ds [ n0; n1 ];
        [ ds; flat; tiled ])
      [ Presets.Jokes; Presets.Dblp ]
  in
  Tablefmt.print
    ~header:[ "dataset"; "untiled"; "tiled (forced, 512-wide)" ]
    ~rows;
  Bench_common.note
    "target: the forced tiled schedule within 5%% of the flat kernel at";
  Bench_common.note "default sizes (the size gate may then err toward tiling).";
  (* The capped-memory cell: a synthetic boolean product whose operand
     tiles total many times the budget.  The kernel must stay under the
     cap (peak read from the tile.* counters) and agree bit-for-bit. *)
  let n = max 256 (int_of_float (2000.0 *. cfg.Bench_common.scale)) in
  let g = Jp_util.Rng.create 17 in
  let m = Jp_matrix.Boolmat.create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    for _ = 0 to 39 do
      Jp_matrix.Boolmat.set m i (Jp_util.Rng.int g n)
    done
  done;
  let operand_bytes =
    Jp_matrix.Cost.tile_operand_bytes Jp_matrix.Cost.Boolean ~u:n ~v:n ~w:n
  in
  let budget = max 4096 (operand_bytes / 16) in
  let capped =
    Jp_tile.config ~tile_bits:6 ~budget_bytes:budget ~force:true ()
  in
  let src = Jp_tile.Source.of_boolmat m in
  let was_recording = Jp_obs.recording () in
  if not was_recording then Jp_obs.enable ();
  let peak_before =
    Option.value ~default:0
      (List.assoc_opt "tile.peak_bytes" (Jp_obs.counter_values ()))
  in
  let nnz_tiled = ref 0 in
  let t_capped =
    Bench_common.time ~label:"capped/tiled" cfg (fun () ->
        nnz_tiled := Jp_matrix.Boolmat.nnz (Jp_tile.mul capped src src))
  in
  (* The counter accumulates one high-water mark per repeat; each run is
     deterministic at domains = 1, so the per-run peak is the mean. *)
  let peak =
    (Option.value ~default:0
       (List.assoc_opt "tile.peak_bytes" (Jp_obs.counter_values ()))
    - peak_before)
    / max 1 cfg.Bench_common.repeats
  in
  if not was_recording then Jp_obs.disable ();
  let nnz_flat = ref 0 in
  let t_flat =
    Bench_common.time ~label:"capped/flat" cfg (fun () ->
        nnz_flat := Jp_matrix.Boolmat.nnz (Jp_matrix.Boolmat.mul m m))
  in
  Bench_common.check_consistent cfg ~label:"capped product"
    [ !nnz_tiled; !nnz_flat ];
  if peak > budget then begin
    Printf.printf
      "  ERROR: tile store peak %d bytes exceeds the %d-byte budget\n%!" peak
      budget;
    if cfg.Bench_common.strict then exit 1
  end;
  Tablefmt.print
    ~header:
      [ Printf.sprintf "capped product (n=%d, cap=%dK)" n (budget / 1024); "time" ]
    ~rows:
      [
        [ "flat (both operands resident)"; Tablefmt.seconds t_flat ];
        [
          Printf.sprintf "tiled under cap (peak %dK, %dx over budget)"
            (peak / 1024)
            (operand_bytes / budget);
          Tablefmt.seconds t_capped;
        ];
      ];
  Bench_common.note
    "operands exceed the resident cap; the tiled kernel streams (evict +";
  Bench_common.note "rebuild) and must return the flat kernel's exact matrix."

let all cfg =
  dedup cfg;
  kernels cfg;
  sorts cfg;
  thresholds cfg;
  estimators cfg;
  dynamic cfg
