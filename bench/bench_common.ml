(* Shared plumbing for the benchmark harness: configuration, dataset
   cache, timing, and section/row rendering. *)

module Relation = Jp_relation.Relation
module Presets = Jp_workload.Presets
module Tablefmt = Jp_util.Tablefmt

type config = {
  scale : float; (* dataset scale multiplier *)
  repeats : int; (* median-of-n timing *)
  only : string list; (* experiment tags to run; [] = all *)
  cores : int list; (* core counts for the multicore figures *)
  strict : bool; (* cross-engine |OUT| disagreement is a hard error *)
}

let default_config =
  {
    scale = 1.0;
    repeats = 1;
    only = [];
    cores = [ 1; 2; 4 ];
    strict = false;
  }

let wants cfg tag =
  cfg.only = []
  || List.exists
       (fun o -> String.lowercase_ascii o = String.lowercase_ascii tag)
       cfg.only

let section title =
  Printf.printf "\n==== %s ====\n%!" title

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  %s\n%!" s) fmt

(* Dataset cache: each preset is generated once per run. *)
let cache : (string, Relation.t) Hashtbl.t = Hashtbl.create 16

let dataset cfg name =
  let key = Printf.sprintf "%s@%f" (Presets.to_string name) cfg.scale in
  match Hashtbl.find_opt cache key with
  | Some r -> r
  | None ->
    let r = Presets.load ~scale:cfg.scale name in
    Hashtbl.add cache key r;
    r

(* ------------------------------------------------------------------ *)
(* JSON record sink (--json FILE)                                      *)
(*                                                                     *)
(* When main.ml enables Jp_obs, every timed cell appends one record:   *)
(* experiment tag, cell label, median seconds, checksum (when the cell *)
(* produces one) and the engine-counter deltas across the runs.        *)

let json_records : Jp_obs.Json.t list ref = ref []

let current_tag = ref ""

let cell_seq = ref 0

let set_experiment tag =
  current_tag := tag;
  cell_seq := 0

let counter_delta before after =
  List.filter_map
    (fun (name, v) ->
      let v0 = Option.value ~default:0 (List.assoc_opt name before) in
      if v - v0 <> 0 then Some (name, v - v0) else None)
    after

(* The [counters] delta drops zero entries, so consumers watching cache
   behaviour would see the cache.* keys flicker in and out of the record.
   Summarize them in a dedicated, always-present object (old fields stay
   exactly as they were). *)
let cache_summary counters =
  let open Jp_obs.Json in
  let get n = Option.value ~default:0 (List.assoc_opt n counters) in
  Obj
    [
      ("hit", Int (get "cache.hit"));
      ("miss", Int (get "cache.miss"));
      ("evict", Int (get "cache.evict"));
      ("reject", Int (get "cache.reject"));
      ("invalidate", Int (get "cache.invalidate"));
      ("bytes", Int (get "cache.bytes"));
    ]

(* Same always-present treatment for the tile.* counters: [peak_bytes]
   is the cell's high-water resident-set mark under the tile store's
   byte budget, the headline number of the memory-bounded kernels. *)
let tile_summary counters =
  let open Jp_obs.Json in
  let get n = Option.value ~default:0 (List.assoc_opt n counters) in
  Obj
    [
      ("build", Int (get "tile.build"));
      ("store_hit", Int (get "tile.store_hit"));
      ("evict", Int (get "tile.evict"));
      ("product", Int (get "tile.product"));
      ("bytes", Int (get "tile.bytes"));
      ("peak_bytes", Int (get "tile.peak_bytes"));
    ]

(* Exact nearest-rank quantile over the per-repeat times — the sample is
   tiny (repeats runs), so no bucketing, just a sort. *)
let run_quantile q dts =
  let a = Array.of_list dts in
  Array.sort Float.compare a;
  let n = Array.length a in
  let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
  a.(max 0 (min (n - 1) (rank - 1)))

let emit_record ?checksum ~label ~seconds ~runs counters =
  let open Jp_obs.Json in
  let fields =
    [ ("experiment", String !current_tag); ("label", String label);
      ("seconds", Float seconds);
      ("p50", Float (run_quantile 0.50 runs));
      ("p95", Float (run_quantile 0.95 runs));
      ("p99", Float (run_quantile 0.99 runs)) ]
    @ (match checksum with Some c -> [ ("checksum", Int c) ] | None -> [])
    @ [ ("counters", Obj (List.map (fun (n, v) -> (n, Int v)) counters));
        ("cache", cache_summary counters);
        ("tile", tile_summary counters) ]
  in
  json_records := Obj fields :: !json_records

let auto_label = function
  | Some l -> l
  | None ->
    incr cell_seq;
    Printf.sprintf "cell%d" !cell_seq

let time_runs_raw cfg f =
  let _, dt, runs = Jp_util.Timer.time_runs ~repeats:cfg.repeats f in
  (dt, runs)

let time_raw cfg f = fst (time_runs_raw cfg f)

let time ?label cfg f =
  if not (Jp_obs.recording ()) then time_raw cfg f
  else begin
    let before = Jp_obs.counter_values () in
    let t, runs = time_runs_raw cfg f in
    emit_record ~label:(auto_label label) ~seconds:t ~runs
      (counter_delta before (Jp_obs.counter_values ()));
    t
  end

(* Runs [f] and renders its wall time, also returning a checksum so that
   result sizes can be cross-checked between engines in the same row. *)
let timed_cell ?label cfg f =
  let result = ref 0 in
  let run () =
    result := f ();
    !result
  in
  let t =
    if not (Jp_obs.recording ()) then time_raw cfg run
    else begin
      let before = Jp_obs.counter_values () in
      let t, runs = time_runs_raw cfg run in
      emit_record ~checksum:!result ~label:(auto_label label) ~seconds:t ~runs
        (counter_delta before (Jp_obs.counter_values ()));
      t
    end
  in
  (Tablefmt.seconds t, !result)

let write_json ~path cfg =
  let open Jp_obs.Json in
  let doc =
    Obj
      [
        ( "config",
          Obj
            [
              ("scale", Float cfg.scale);
              ("repeats", Int cfg.repeats);
              ("strict", Bool cfg.strict);
              ("cores", List (List.map (fun c -> Int c) cfg.cores));
            ] );
        ("records", List (List.rev !json_records));
      ]
  in
  (* Write-then-rename so a crash mid-write (or a concurrent reader
     polling the file during a long run) never observes a truncated
     document.  The temp file lives in the target's directory because
     rename is only atomic within one filesystem. *)
  let tmp =
    Filename.temp_file ~temp_dir:(Filename.dirname path)
      (Filename.basename path ^ ".") ".tmp"
  in
  (try
     let oc = open_out tmp in
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () ->
         output_string oc (to_string_pretty doc);
         output_char oc '\n');
     Sys.rename tmp path
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Printf.printf "\nwrote %d benchmark records to %s\n%!"
    (List.length !json_records) path

let check_consistent cfg ~label sizes =
  match List.filter (fun s -> s >= 0) sizes with
  | [] -> ()
  | first :: rest ->
    if not (List.for_all (fun s -> s = first) rest) then begin
      let detail = String.concat ", " (List.map string_of_int (first :: rest)) in
      if cfg.strict then begin
        Printf.printf "  ERROR: engines disagree on |OUT| for %s: %s\n%!" label
          detail;
        exit 1
      end
      else
        Printf.printf "  WARNING: engines disagree on |OUT| for %s: %s\n%!" label
          detail
    end
