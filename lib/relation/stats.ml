type t = {
  ids : int array; (* active value ids, ascending by degree *)
  degs : int array; (* degree of ids.(i), ascending *)
  prefix_deg : int array; (* prefix_deg.(i) = Σ degs.(0..i-1) *)
  prefix_sq : int array;
  prefix_weight : int array;
}

let of_degrees ?weights deg =
  (match weights with
  | Some w when Array.length w <> Array.length deg ->
    invalid_arg "Stats.of_degrees: weights length mismatch"
  | _ -> ());
  let active = ref 0 in
  Array.iter (fun d -> if d > 0 then incr active) deg;
  let ids = Array.make !active 0 in
  let p = ref 0 in
  Array.iteri
    (fun v d ->
      if d > 0 then begin
        ids.(!p) <- v;
        incr p
      end)
    deg;
  Array.sort (fun a b -> Int.compare deg.(a) deg.(b)) ids;
  let n = Array.length ids in
  let degs = Array.map (fun v -> deg.(v)) ids in
  let prefix_deg = Array.make (n + 1) 0 in
  let prefix_sq = Array.make (n + 1) 0 in
  let prefix_weight = Array.make (n + 1) 0 in
  let weight v = match weights with Some w -> w.(v) | None -> deg.(v) in
  for i = 0 to n - 1 do
    prefix_deg.(i + 1) <- prefix_deg.(i) + degs.(i);
    prefix_sq.(i + 1) <- prefix_sq.(i) + (degs.(i) * degs.(i));
    prefix_weight.(i + 1) <- prefix_weight.(i) + weight ids.(i)
  done;
  { ids; degs; prefix_deg; prefix_sq; prefix_weight }

let active_count t = Array.length t.ids

let max_degree t =
  let n = Array.length t.degs in
  if n = 0 then 0 else t.degs.(n - 1)

(* Index of the first degree strictly greater than d. *)
let split t d = Jp_util.Sorted.lower_bound t.degs (d + 1)

let count_le t d = split t d

let count_gt t d = Array.length t.ids - split t d

let sum_le t d = t.prefix_deg.(split t d)

let sum_sq_le t d = t.prefix_sq.(split t d)

let weight_le t d = t.prefix_weight.(split t d)

let values_le t d = Array.sub t.ids 0 (split t d)

let nth_smallest_degree t k =
  if k < 0 || k >= Array.length t.degs then invalid_arg "Stats.nth_smallest_degree";
  t.degs.(k)
