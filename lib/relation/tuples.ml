let bits_needed dim =
  let rec go b = if 1 lsl b >= dim then b else go (b + 1) in
  if dim <= 1 then 1 else go 1

let packable ~dims =
  Array.fold_left (fun acc d -> acc + bits_needed d) 0 dims <= 62

type packed = {
  shifts : int array; (* bit offset of each component *)
  masks : int array;
  sorted : int array; (* distinct packed tuples, ascending *)
}

type t =
  | Packed of int (* arity *) * packed
  | Hashed of int * (int array, unit) Hashtbl.t

let arity = function Packed (k, _) -> k | Hashed (k, _) -> k

let count = function
  | Packed (_, p) -> Array.length p.sorted
  | Hashed (_, h) -> Hashtbl.length h

let layout dims =
  let k = Array.length dims in
  let shifts = Array.make k 0 and masks = Array.make k 0 in
  let off = ref 0 in
  for i = 0 to k - 1 do
    let b = bits_needed dims.(i) in
    shifts.(i) <- !off;
    masks.(i) <- (1 lsl b) - 1;
    off := !off + b
  done;
  (shifts, masks)

let pack shifts tuple =
  let key = ref 0 in
  Array.iteri (fun i v -> key := !key lor (v lsl shifts.(i))) tuple;
  !key

let unpack p key tuple =
  Array.iteri
    (fun i shift -> tuple.(i) <- (key lsr shift) land p.masks.(i))
    p.shifts

let mem t tuple =
  match t with
  | Packed (_, p) -> Jp_util.Sorted.mem p.sorted (pack p.shifts tuple)
  | Hashed (_, h) -> Hashtbl.mem h tuple

let iter f t =
  match t with
  | Packed (k, p) ->
    let buf = Array.make k 0 in
    Array.iter
      (fun key ->
        unpack p key buf;
        f buf)
      p.sorted
  | Hashed (_, h) -> Hashtbl.iter (fun tuple () -> f tuple) h

let to_list t =
  let acc = ref [] in
  iter (fun tuple -> acc := Array.to_list tuple :: !acc) t;
  List.sort (List.compare Int.compare) !acc

let equal a b = arity a = arity b && count a = count b && to_list a = to_list b

type builder =
  | Bpacked of int * int array (* shifts *) * int array (* masks *) * Jp_util.Vec.t
  | Bhashed of int * (int array, unit) Hashtbl.t

let create_builder ~arity ~dims =
  if Array.length dims <> arity then invalid_arg "Tuples.create_builder";
  if packable ~dims then begin
    let shifts, masks = layout dims in
    Bpacked (arity, shifts, masks, Jp_util.Vec.create ())
  end
  else Bhashed (arity, Hashtbl.create 1024)

let add b tuple =
  match b with
  | Bpacked (k, shifts, _, vec) ->
    if Array.length tuple <> k then invalid_arg "Tuples.add: arity mismatch";
    Jp_util.Vec.push vec (pack shifts tuple)
  | Bhashed (k, h) ->
    if Array.length tuple <> k then invalid_arg "Tuples.add: arity mismatch";
    if not (Hashtbl.mem h tuple) then Hashtbl.replace h (Array.copy tuple) ()

let build = function
  | Bpacked (k, shifts, masks, vec) ->
    Jp_util.Vec.sort_dedup vec;
    Packed (k, { shifts; masks; sorted = Jp_util.Vec.to_array vec })
  | Bhashed (k, h) -> Hashed (k, h)
