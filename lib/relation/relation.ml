type t = {
  src_count : int;
  dst_count : int;
  size : int;
  fwd : int array array; (* x -> strictly increasing ys *)
  bwd : int array array; (* y -> strictly increasing xs *)
  mutable fp : int; (* memoized fingerprint; 0 = not yet computed *)
}

(* Build one direction of adjacency from a flat pair buffer by counting
   sort: O(|R| + ids).  [get_src]/[get_dst] select the orientation. *)
let build_adjacency ~rows ~npairs ~get_src ~get_dst =
  let counts = Array.make rows 0 in
  for p = 0 to npairs - 1 do
    let s = get_src p in
    counts.(s) <- counts.(s) + 1
  done;
  let adj = Array.map (fun c -> Array.make c 0) counts in
  let fill = Array.make rows 0 in
  for p = 0 to npairs - 1 do
    let s = get_src p and d = get_dst p in
    adj.(s).(fill.(s)) <- d;
    fill.(s) <- fill.(s) + 1
  done;
  adj

let sort_dedup_rows adj =
  let removed = ref 0 in
  Array.iteri
    (fun i row ->
      if Array.length row > 1 then begin
        Jp_util.Intsort.sort row;
        let w = ref 1 in
        for r = 1 to Array.length row - 1 do
          if row.(r) <> row.(!w - 1) then begin
            row.(!w) <- row.(r);
            incr w
          end
        done;
        if !w < Array.length row then begin
          removed := !removed + (Array.length row - !w);
          adj.(i) <- Array.sub row 0 !w
        end
      end)
    adj;
  !removed

let rebuild_from_fwd ~src_count ~dst_count fwd =
  let size = Array.fold_left (fun acc row -> acc + Array.length row) 0 fwd in
  let counts = Array.make dst_count 0 in
  Array.iter (Array.iter (fun d -> counts.(d) <- counts.(d) + 1)) fwd;
  let bwd = Array.map (fun c -> Array.make c 0) counts in
  let fill = Array.make dst_count 0 in
  Array.iteri
    (fun x row ->
      Array.iter
        (fun d ->
          bwd.(d).(fill.(d)) <- x;
          fill.(d) <- fill.(d) + 1)
        row)
    fwd;
  { src_count; dst_count; size; fwd; bwd; fp = 0 }

(* Visiting x in increasing order in [rebuild_from_fwd] keeps every bwd row
   sorted for free. *)
let of_flat ?src_count ?dst_count flat =
  let npairs = Array.length flat / 2 in
  if Array.length flat mod 2 <> 0 then invalid_arg "Relation.of_flat: odd length";
  let max_src = ref (-1) and max_dst = ref (-1) in
  for p = 0 to npairs - 1 do
    let s = flat.(2 * p) and d = flat.((2 * p) + 1) in
    if s < 0 || d < 0 then invalid_arg "Relation.of_flat: negative id";
    if s > !max_src then max_src := s;
    if d > !max_dst then max_dst := d
  done;
  let src_count = match src_count with Some n -> n | None -> !max_src + 1 in
  let dst_count = match dst_count with Some n -> n | None -> !max_dst + 1 in
  if !max_src >= src_count || !max_dst >= dst_count then
    invalid_arg "Relation.of_flat: id exceeds declared count";
  let fwd =
    build_adjacency ~rows:src_count ~npairs
      ~get_src:(fun p -> flat.(2 * p))
      ~get_dst:(fun p -> flat.((2 * p) + 1))
  in
  ignore (sort_dedup_rows fwd);
  rebuild_from_fwd ~src_count ~dst_count fwd

let of_edges ?src_count ?dst_count edges =
  let flat = Array.make (2 * Array.length edges) 0 in
  Array.iteri
    (fun i (s, d) ->
      flat.(2 * i) <- s;
      flat.((2 * i) + 1) <- d)
    edges;
  of_flat ?src_count ?dst_count flat

let of_sets ?dst_count sets =
  let total = Array.fold_left (fun acc s -> acc + Array.length s) 0 sets in
  let flat = Array.make (2 * total) 0 in
  let p = ref 0 in
  Array.iteri
    (fun i elems ->
      Array.iter
        (fun e ->
          flat.(2 * !p) <- i;
          flat.((2 * !p) + 1) <- e;
          incr p)
        elems)
    sets;
  of_flat ~src_count:(Array.length sets) ?dst_count flat

let of_adjacency ~dst_count fwd =
  Array.iter
    (fun row ->
      if not (Jp_util.Sorted.is_strictly_sorted row) then
        invalid_arg "Relation.of_adjacency: row not strictly increasing")
    fwd;
  rebuild_from_fwd ~src_count:(Array.length fwd) ~dst_count fwd

let size r = r.size

let src_count r = r.src_count

let dst_count r = r.dst_count

let deg_src r a = Array.length r.fwd.(a)

let deg_dst r b = Array.length r.bwd.(b)

let adj_src r a = r.fwd.(a)

let adj_dst r b = r.bwd.(b)

let mem r a b = Jp_util.Sorted.mem r.fwd.(a) b

let iter f r =
  Array.iteri (fun x row -> Array.iter (fun y -> f x y) row) r.fwd

let to_edges r =
  let out = Array.make r.size (0, 0) in
  let p = ref 0 in
  iter
    (fun x y ->
      out.(!p) <- (x, y);
      incr p)
    r;
  out

let transpose r =
  {
    src_count = r.dst_count;
    dst_count = r.src_count;
    size = r.size;
    fwd = r.bwd;
    bwd = r.fwd;
    fp = 0;
  }

let filter r keep =
  let fwd =
    Array.mapi
      (fun x row ->
        let kept = Array.to_list row |> List.filter (fun y -> keep x y) in
        Array.of_list kept)
      r.fwd
  in
  rebuild_from_fwd ~src_count:r.src_count ~dst_count:r.dst_count fwd

let restrict_src r keep =
  let fwd = Array.mapi (fun x row -> if keep x then row else [||]) r.fwd in
  rebuild_from_fwd ~src_count:r.src_count ~dst_count:r.dst_count fwd

let semijoin_dst r keep =
  let fwd =
    Array.map
      (fun row ->
        let n = Array.fold_left (fun acc y -> if keep y then acc + 1 else acc) 0 row in
        if n = Array.length row then row
        else begin
          let kept = Array.make n 0 in
          let i = ref 0 in
          Array.iter
            (fun y ->
              if keep y then begin
                kept.(!i) <- y;
                incr i
              end)
            row;
          kept
        end)
      r.fwd
  in
  rebuild_from_fwd ~src_count:r.src_count ~dst_count:r.dst_count fwd

let join_size_on_dst = function
  | [] -> invalid_arg "Relation.join_size_on_dst: empty list"
  | first :: rest ->
    let total = ref 0 in
    for b = 0 to first.dst_count - 1 do
      let prod =
        List.fold_left
          (fun acc r -> if b < r.dst_count then acc * deg_dst r b else 0)
          (deg_dst first b) rest
      in
      total := !total + prod
    done;
    !total

let active_dst = function
  | [] -> invalid_arg "Relation.active_dst: empty list"
  | first :: rest ->
    let n = List.fold_left (fun acc r -> max acc r.dst_count) first.dst_count rest in
    Array.init n (fun b ->
        b < first.dst_count
        && deg_dst first b > 0
        && List.for_all (fun r -> b < r.dst_count && deg_dst r b > 0) rest)

let degrees_src r = Array.map Array.length r.fwd

let degrees_dst r = Array.map Array.length r.bwd

let equal a b =
  a.src_count = b.src_count && a.dst_count = b.dst_count && a.fwd = b.fwd

(* Splitmix-style avalanche over the declared id spaces and every fwd row.
   The constants fit OCaml's 63-bit native int; overflow wraps, which is
   fine for hashing.  O(|R|) on first call, memoized afterwards: relations
   are immutable once built (all constructors funnel through
   [rebuild_from_fwd]), so a single computation at load is sound. *)
let mix h x =
  let h = h lxor (x + 0x9e3779b97f4a7c1 + (h lsl 6) + (h lsr 2)) in
  let h = (h lxor (h lsr 30)) * 0x5851f42d4c957f2 in
  h lxor (h lsr 27)

let fingerprint r =
  if r.fp <> 0 then r.fp
  else begin
    let h = ref (mix (mix 0x27220a95 r.src_count) r.dst_count) in
    Array.iter
      (fun row ->
        h := mix !h (Array.length row);
        Array.iter (fun y -> h := mix !h y) row)
      r.fwd;
    let f = if !h = 0 then 1 else !h in
    r.fp <- f;
    f
  end

let pp fmt r =
  Format.fprintf fmt "@[<v>relation %dx%d, %d tuples@," r.src_count r.dst_count r.size;
  let shown = ref 0 in
  (try
     iter
       (fun x y ->
         if !shown >= 10 then raise Exit;
         Format.fprintf fmt "(%d, %d)@," x y;
         incr shown)
       r
   with Exit -> Format.fprintf fmt "...@,");
  Format.fprintf fmt "@]"
