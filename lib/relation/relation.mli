(** Binary relations over dictionary-encoded integer values.

    A relation R(x,y) is stored as adjacency in both directions — for every
    x the strictly increasing array of its y's, and for every y the strictly
    increasing array of its x's — which is exactly the "indexed over every
    variable order" requirement for worst-case optimal join processing
    (Section 5, "Indexing relations").  Construction deduplicates tuples and
    costs O(|R| log |R|).

    Value ids live in [\[0, src_count)] and [\[0, dst_count)]; dictionary
    encoding from external values is the caller's concern (the workload
    generators and the CLI own it). *)

type t

val of_edges : ?src_count:int -> ?dst_count:int -> (int * int) array -> t
(** [of_edges edges] builds the relation, deduplicating tuples.  The id
    spaces default to [1 + max id seen] and may be widened explicitly with
    [src_count]/[dst_count] (useful when some ids have no tuples). *)

val of_flat : ?src_count:int -> ?dst_count:int -> int array -> t
(** Like {!of_edges} but from a flat [|s0; d0; s1; d1; ...|] buffer, the
    layout the generators produce; the array is not modified. *)

val of_sets : ?dst_count:int -> int array array -> t
(** [of_sets sets] views a set family as the relation {set id, element}:
    tuple (i, e) for every [e] in [sets.(i)].  Sets need not be sorted and
    may contain duplicates. *)

val of_adjacency : dst_count:int -> int array array -> t
(** Trusted constructor: [adj.(x)] must already be strictly increasing;
    only the reverse index is built.  O(|R|). *)

val size : t -> int
(** Number of (distinct) tuples. *)

val src_count : t -> int

val dst_count : t -> int

val deg_src : t -> int -> int
(** [deg_src r a] is |σ{_ x=a}R|. *)

val deg_dst : t -> int -> int
(** [deg_dst r b] is |σ{_ y=b}R|. *)

val adj_src : t -> int -> int array
(** [adj_src r a] is the strictly increasing array of y with (a,y) ∈ R.
    The array is shared with the index — callers must not mutate it. *)

val adj_dst : t -> int -> int array
(** [adj_dst r b] is the strictly increasing array of x with (x,b) ∈ R;
    the inverted list L[b] of Section 4.  Shared, do not mutate. *)

val mem : t -> int -> int -> bool

val iter : (int -> int -> unit) -> t -> unit
(** Iterates tuples in (x, y) lexicographic order. *)

val to_edges : t -> (int * int) array

val transpose : t -> t
(** Swaps the roles of x and y — O(1), shares the indexes. *)

val filter : t -> (int -> int -> bool) -> t
(** [filter r keep] is the sub-relation of tuples with [keep x y]. *)

val restrict_src : t -> (int -> bool) -> t
(** Sub-relation keeping only tuples whose x satisfies the predicate;
    cheaper than {!filter} (rows are shared wholesale). *)

val semijoin_dst : t -> (int -> bool) -> t
(** Sub-relation keeping only tuples whose y satisfies the predicate. *)

val join_size_on_dst : t list -> int
(** |OUT{_ ⋈}| of the star join of the given relations on their y column:
    Σ{_ b} Π{_ i} deg{_ dst}(Rᵢ, b).  With two relations this is the full
    2-path join size used throughout Section 5. *)

val active_dst : t list -> bool array
(** [active_dst rs].(b) is true iff b has at least one tuple in {e every}
    relation — the "tuples that contribute to the join result"
    preprocessing filter of Section 3. *)

val degrees_src : t -> int array
(** Fresh array [d] with [d.(a) = deg_src r a]. *)

val degrees_dst : t -> int array

val equal : t -> t -> bool
(** Same tuple sets and same declared id spaces. *)

val fingerprint : t -> int
(** Structural hash over the declared id spaces and every tuple, suitable
    as a cache key: [equal a b] implies [fingerprint a = fingerprint b].
    O(|R|) on the first call, memoized afterwards.  This is sound because
    relations are immutable once constructed — but note that {!adj_src} /
    {!adj_dst} return arrays {e shared} with the index, so a caller that
    (wrongly) mutated one would silently invalidate every fingerprint-keyed
    cache entry; invalidation by re-fingerprinting after mutation cannot
    work.  Compute fingerprints once at load and treat relations as frozen
    (the dynamic-view library rebuilds relations instead of mutating). *)

val pp : Format.formatter -> t -> unit
(** Debug printer: cardinalities plus the first few tuples. *)
