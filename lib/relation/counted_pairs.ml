type t = { rows : (int array * int array) array; pairs : int }

let pairs_of rows =
  Array.fold_left (fun acc (zs, _) -> acc + Array.length zs) 0 rows

let of_rows rows =
  Array.iter
    (fun (zs, counts) ->
      if Array.length zs <> Array.length counts then
        invalid_arg "Counted_pairs.of_rows: length mismatch";
      if not (Jp_util.Sorted.is_strictly_sorted zs) then
        invalid_arg "Counted_pairs.of_rows: row not strictly increasing";
      Array.iter (fun c -> if c <= 0 then invalid_arg "Counted_pairs.of_rows: count <= 0") counts)
    rows;
  { rows; pairs = pairs_of rows }

let of_rows_unchecked rows = { rows; pairs = pairs_of rows }

let empty n = { rows = Array.make n ([||], [||]); pairs = 0 }

let src_count t = Array.length t.rows

let count t = t.pairs

let total_witnesses t =
  Array.fold_left
    (fun acc (_, counts) -> Array.fold_left ( + ) acc counts)
    0 t.rows

let get t x z =
  if x >= Array.length t.rows then 0
  else begin
    let zs, counts = t.rows.(x) in
    let i = Jp_util.Sorted.lower_bound zs z in
    if i < Array.length zs && zs.(i) = z then counts.(i) else 0
  end

let row t x = t.rows.(x)

let iter f t =
  Array.iteri
    (fun x (zs, counts) ->
      Array.iteri (fun i z -> f x z counts.(i)) zs)
    t.rows

let filter_ge t c =
  let rows =
    Array.map
      (fun (zs, counts) ->
        let n = ref 0 in
        Array.iter (fun v -> if v >= c then incr n) counts;
        if !n = Array.length zs then (zs, counts)
        else begin
          let zs' = Array.make !n 0 and counts' = Array.make !n 0 in
          let p = ref 0 in
          Array.iteri
            (fun i v ->
              if v >= c then begin
                zs'.(!p) <- zs.(i);
                counts'.(!p) <- v;
                incr p
              end)
            counts;
          (zs', counts')
        end)
      t.rows
  in
  of_rows_unchecked rows

let to_pairs t = Pairs.of_rows_unchecked (Array.map fst t.rows)

let sorted_desc t =
  let out = Array.make t.pairs (0, 0, 0) in
  let p = ref 0 in
  iter
    (fun x z c ->
      out.(!p) <- (x, z, c);
      incr p)
    t;
  Array.sort
    (fun (x1, z1, c1) (x2, z2, c2) ->
      if c1 <> c2 then Int.compare c2 c1
      else match Int.compare x1 x2 with 0 -> Int.compare z1 z2 | n -> n)
    out;
  out

let equal a b =
  let na = Array.length a.rows and nb = Array.length b.rows in
  a.pairs = b.pairs
  &&
  let rec go x =
    x >= max na nb
    ||
    let ra = if x < na then a.rows.(x) else ([||], [||])
    and rb = if x < nb then b.rows.(x) else ([||], [||]) in
    ra = rb && go (x + 1)
  in
  go 0
