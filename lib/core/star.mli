(** The star query algorithm of Section 3.2:
    Q*{_k}(x₁,…,x{_k}) = R₁(x₁,y), …, R{_k}(x{_k},y).

    Every relation Rᵢ is split into
    - Rᵢ⁻ : tuples whose xᵢ has degree ≤ Δ₂,
    - Rᵢ⋄ : tuples whose y is light (degree ≤ Δ₁) in {e every other}
      relation,
    - Rᵢ⁺ : the rest (heavy xᵢ, and y heavy in at least one other
      relation).

    Steps 1–2 run the worst-case-optimal join with Rⱼ replaced by Rⱼ⁻
    (then Rⱼ⋄) for each j and project.  Step 3 groups the variables into a
    ⌈k/2⌉-prefix and ⌊k/2⌋-suffix, materializes the two rectangular
    matrices V ((N/Δ₂)^⌈k/2⌉ × N/Δ₁) and W over the heavy tuple
    combinations that actually occur, and multiplies.  Only matrix rows
    with at least one surviving y are materialized, so memory stays
    proportional to the heavy join, not to the nominal dimensions.

    [Combinatorial] replaces step 3 with the same heavy-restricted
    enumeration evaluated tuple-at-a-time — the star {b Non-MMJoin}.

    The product is streamed one row at a time, so peak memory stays
    O(columns) even when the nominal u × w result would not fit; the
    [domains] parameter is currently accepted for API stability but the
    star evaluation runs single-domain. *)

module Relation = Jp_relation.Relation
module Tuples = Jp_relation.Tuples
module Cancel = Jp_util.Cancel

type strategy = Matrix | Combinatorial

val project :
  ?domains:int ->
  ?strategy:strategy ->
  ?thresholds:int * int ->
  ?guard:Jp_adaptive.Guard.config ->
  ?cancel:Cancel.t ->
  Relation.t array ->
  Tuples.t
(** [project rels] evaluates π{_x₁…x_k} of the star join.  Default
    [thresholds] come from {!choose_thresholds}.  Arity must be ≥ 2.

    Star thresholds are input-derived (no |OUT| estimate), so [guard]
    contributes budgets and outcome recording only: time-budget
    checkpoints before the light steps and before the matrix step degrade
    the heavy residue to the combinatorial enumeration, the cells budget
    tightens the matrix interning cap, and a [Matrix_overflow] fallback is
    recorded as a degradation in the plan-vs-actual record.

    [cancel] is polled before each sub-join and every few hundred
    iterations of the qualify/intern/product/enumeration loops; absent,
    the code path is exactly the historical one. *)

val choose_thresholds : Relation.t array -> int * int
(** Closed-form threshold choice in the spirit of Example 4: balances the
    light enumeration N·Δ₁^(k−1), the output-rescan |OUT|·Δ₂ and the
    matrix work, using the k=2 estimator pessimistically lifted to k
    relations. *)

val full_join_size : Relation.t array -> int
(** |OUT{_⋈}| of the full star join. *)
