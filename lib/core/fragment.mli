(** MM-eligibility gate and execution helpers for planner-carved
    join-project fragments.

    The decomposition planner ([Jp_query.Planner]) walks the GYO join tree
    of an acyclic conjunctive query and carves out sub-joins whose join
    variable is projected away — embedded 2-path shapes and k-star shapes.
    This module is the core-side support it dispatches to:

    - {!gate_two_path} / {!gate_star} run Algorithm 3's calibrated cost
      model over the fragment's relations and report whether the matrix
      plan is predicted to beat the safe worst-case-optimal path (the
      cost regimes of "Output-sensitive Conjunctive Query Evaluation",
      Deep, Hu & Koutris 2024, reduce to exactly this per-fragment
      decision for acyclic queries);
    - {!two_path} / {!star} execute a carved fragment through
      {!Two_path.project} / {!Star.project}, threading the full execution
      context ([?guard], [?cancel], [?memo]) with the usual byte-identical
      -when-absent guarantee.

    A star gate has no dedicated cost model: it is approximated by the
    2-path gate over the fragment's two largest relations (both oriented
    with the join variable on the destination side), which is the pair
    that dominates the heavy residue's matrix dimensions. *)

module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Tuples = Jp_relation.Tuples
module Cancel = Jp_util.Cancel

type gate = {
  mm : bool;  (** Algorithm 3 picked a partitioned (matrix) plan *)
  est_mm_s : float;
      (** predicted cost of the best partitioned plan; [infinity] when the
          descent never left the worst-case-optimal plan *)
  est_safe_s : float;  (** predicted cost of the worst-case-optimal plan *)
}

val gate_two_path :
  ?machine:Jp_matrix.Cost.machine ->
  ?domains:int ->
  r:Relation.t ->
  s:Relation.t ->
  unit ->
  gate
(** Cost gate for a 2-path fragment π{_xz}(R(x,y) ⋈ S(z,y)): prepares the
    Section-5 degree indexes once and runs the geometric descent of
    {!Optimizer.plan_prepared}.  [mm] iff the chosen decision is
    [Partitioned]. *)

val gate_star :
  ?machine:Jp_matrix.Cost.machine ->
  ?domains:int ->
  Relation.t array ->
  gate
(** Cost gate for a k-star fragment (k ≥ 2 relations sharing the join
    variable on the destination side), via the 2-path gate over the two
    largest relations. *)

val two_path :
  ?domains:int ->
  ?guard:Jp_adaptive.Guard.config ->
  ?cancel:Cancel.t ->
  ?memo:Two_path.memo ->
  ?tile:Jp_tile.config ->
  r:Relation.t ->
  s:Relation.t ->
  unit ->
  Pairs.t
(** Execute a 2-path fragment: π{_xz}(R ⋈ S) via {!Two_path.project}.
    Pairs come out as (r's source value, s's source value); [?tile]
    streams an over-threshold heavy product through {!Jp_tile}. *)

val star :
  ?domains:int ->
  ?guard:Jp_adaptive.Guard.config ->
  ?cancel:Cancel.t ->
  Relation.t array ->
  Tuples.t
(** Execute a k-star fragment (arity ≥ 2) via {!Star.project}.  Tuple
    component i is relation i's source value. *)
