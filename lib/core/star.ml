module Relation = Jp_relation.Relation
module Tuples = Jp_relation.Tuples
module Boolmat = Jp_matrix.Boolmat
module Vec = Jp_util.Vec
module Obs = Jp_obs
module Cancel = Jp_util.Cancel

type strategy = Matrix | Combinatorial

(* Cancellation checkpoints: phase boundaries plus every [poll_every]
   iterations of the y/row loops (the combinatorial work per y is
   unbounded, so per-y polling would still be "per chunk" — but the mask
   keeps the poll off the common path entirely). *)
let poll_every = 256

let check_cancel = function Some c -> Cancel.check c | None -> ()

let maybe_check cancel i =
  match cancel with
  | Some c when i land (poll_every - 1) = 0 -> Cancel.check c
  | _ -> ()

let full_join_size rels = Jp_wcoj.Star.join_size rels

(* Engineering heuristic (the paper derives closed forms per |OUT| regime,
   Example 4): tie both thresholds to the average y-degree sqrt(J/N), so
   the light enumeration N·Δ₁^(k-1) and the heavy matrix shrink together;
   clamp to a sane range. *)
let choose_thresholds rels =
  let j = full_join_size rels in
  let n = Array.fold_left (fun acc r -> max acc (Relation.size r)) 1 rels in
  let d = int_of_float (sqrt (float_of_int j /. float_of_int n)) in
  let d = max 2 (min 256 d) in
  (d, d)

(* Bit layout for packing a tuple group into one int key. *)
let bits_needed dim =
  let rec go b = if 1 lsl b >= dim then b else go (b + 1) in
  if dim <= 1 then 1 else go 1

let group_layout dims =
  let shifts = Array.make (Array.length dims) 0 in
  let off = ref 0 in
  Array.iteri
    (fun i d ->
      shifts.(i) <- !off;
      off := !off + bits_needed d)
    dims;
  if !off > 62 then None else Some shifts

exception Matrix_overflow

(* Enumerate the cross product of [lists], packing each combination with
   [shifts] and passing it to [emit]. *)
let iter_combos lists shifts emit =
  let k = Array.length lists in
  let rec go i key =
    if i = k then emit key
    else Array.iter (fun a -> go (i + 1) (key lor (a lsl shifts.(i)))) lists.(i)
  in
  go 0 0

let unpack_into shifts dims key tuple ~offset =
  Array.iteri
    (fun i shift ->
      tuple.(offset + i) <- (key lsr shift) land ((1 lsl bits_needed dims.(i)) - 1))
    shifts

(* The heavy residue via the V·W matrix product of Section 3.2. *)
let heavy_matrix_step ?cancel ~builder ~heavy_lists ~qualifying_ys ~dims k
    ~combo_cap () =
  let m = (k + 1) / 2 in
  let prefix_dims = Array.sub dims 0 m in
  let suffix_dims = Array.sub dims m (k - m) in
  match (group_layout prefix_dims, group_layout suffix_dims) with
  | None, _ | _, None -> raise Matrix_overflow
  | Some prefix_shifts, Some suffix_shifts ->
    let prefix_index : (int, int) Hashtbl.t = Hashtbl.create 1024 in
    let suffix_index : (int, int) Hashtbl.t = Hashtbl.create 1024 in
    let prefix_keys = Vec.create () and suffix_keys = Vec.create () in
    let intern index keys key =
      match Hashtbl.find_opt index key with
      | Some i -> i
      | None ->
        let i = Hashtbl.length index in
        if i >= combo_cap then raise Matrix_overflow;
        Hashtbl.add index key i;
        Vec.push keys key;
        i
    in
    (* First pass: assign row/column indexes. *)
    Array.iteri
      (fun jy y ->
        maybe_check cancel jy;
        let lists : int array array = heavy_lists y in
        iter_combos (Array.sub lists 0 m) prefix_shifts (fun key ->
            ignore (intern prefix_index prefix_keys key));
        iter_combos (Array.sub lists m (k - m)) suffix_shifts (fun key ->
            ignore (intern suffix_index suffix_keys key)))
      qualifying_ys;
    let u = Hashtbl.length prefix_index in
    let w = Hashtbl.length suffix_index in
    let v = Array.length qualifying_ys in
    if u = 0 || w = 0 || v = 0 then ()
    else begin
      let mat_v = Boolmat.create ~rows:u ~cols:v in
      let mat_w = Boolmat.create ~rows:v ~cols:w in
      Array.iteri
        (fun j y ->
          let lists = heavy_lists y in
          iter_combos (Array.sub lists 0 m) prefix_shifts (fun key ->
              Boolmat.set mat_v
                (Hashtbl.find prefix_index key
                [@jp.lint.allow "hashtbl-dedup"
                  "interning lookup: combo keys are sparse points of a \
                   shifted product domain, far too large to stamp"])
                j);
          iter_combos (Array.sub lists m (k - m)) suffix_shifts (fun key ->
              Boolmat.set mat_w j
                (Hashtbl.find suffix_index key
                [@jp.lint.allow "hashtbl-dedup"
                  "same sparse combo-key interning as the prefix side"])))
        qualifying_ys;
      (* Stream the product V·W row by row: materializing the full u x w
         bit-matrix would need u·w bits (it OOMs on large heavy residues);
         one w-bit accumulator gives the same word-op count in O(w)
         memory. *)
      let acc = Jp_util.Bitset.create w in
      let tuple = Array.make k 0 in
      for i = 0 to u - 1 do
        maybe_check cancel i;
        Jp_util.Bitset.clear acc;
        Boolmat.iter_row mat_v i (fun j ->
            Jp_util.Bitset.union_into ~dst:acc (Boolmat.row mat_w j));
        if not (Jp_util.Bitset.is_empty acc) then begin
          unpack_into prefix_shifts prefix_dims (Vec.get prefix_keys i) tuple
            ~offset:0;
          Jp_util.Bitset.iter
            (fun l ->
              unpack_into suffix_shifts suffix_dims (Vec.get suffix_keys l) tuple
                ~offset:m;
              Tuples.add builder tuple)
            acc
        end
      done
    end

(* As in Two_path: wall-clock phases feeding the plan-vs-actual record,
   measured only while recording. *)
let phase phases name f =
  if Obs.recording () then begin
    let t0 = Jp_util.Timer.now () in
    let x = f () in
    phases := (name, Jp_util.Timer.now () -. t0) :: !phases;
    x
  end
  else f ()

let project_impl ~strategy ~thresholds ~guard ~cancel rels =
  let module Guard = Jp_adaptive.Guard in
  let k = Array.length rels in
  if k < 2 then invalid_arg "Star.project: arity must be >= 2";
  check_cancel cancel;
  let t_start = Jp_util.Timer.now () in
  let phases = ref [] in
  let g = Option.map Guard.start guard in
  (* Entry checkpoint: an already-blown time budget forbids the matrix
     step before any work is done.  Star thresholds are input-derived
     (no |OUT| estimate to inject or re-plan), so the guard's job here is
     budgets and outcome recording. *)
  let strategy =
    match g with
    | Some g when strategy = Matrix && Guard.check_budget g ~cells:0 = Guard.Degrade ->
      Guard.note_degrade g;
      Combinatorial
    | _ -> strategy
  in
  let d1, d2 = match thresholds with Some t -> t | None -> choose_thresholds rels in
  let dims = Array.map Relation.src_count rels in
  let builder = Tuples.create_builder ~arity:k ~dims in
  let add tuple _y = Tuples.add builder tuple in
  (* y-degree per relation, total over the shared y space *)
  let ny = Array.fold_left (fun acc r -> max acc (Relation.dst_count r)) 0 rels in
  let deg_y i y = if y < Relation.dst_count rels.(i) then Relation.deg_dst rels.(i) y else 0 in
  let light_in_all_others j y =
    let ok = ref true in
    for l = 0 to k - 1 do
      if l <> j && deg_y l y > d1 then ok := false
    done;
    !ok
  in
  (* Step 1: light-x sub-joins. *)
  phase phases "light-x" (fun () ->
      for j = 0 to k - 1 do
        check_cancel cancel;
        Jp_wcoj.Star.iter_full
          ~restrict:(j, fun c _ -> Relation.deg_src rels.(j) c <= d2)
          rels add
      done);
  (* Step 2: light-y sub-joins. *)
  phase phases "light-y" (fun () ->
      for j = 0 to k - 1 do
        check_cancel cancel;
        Jp_wcoj.Star.iter_full
          ~restrict:(j, fun _ y -> light_in_all_others j y)
          rels add
      done);
  (* Step 3: the all-heavy residue.  R_i^+ keeps tuples with heavy x_i and
     y heavy in at least one other relation. *)
  let heavy_lists y =
    Array.mapi
      (fun i r ->
        (* mixed-orientation stars give the relations different y domains;
           past a relation's dst space its adjacency is empty *)
        if y >= Relation.dst_count r || light_in_all_others i y then [||]
        else
          Array.of_seq
            (Seq.filter
               (fun a -> Relation.deg_src r a > d2)
               (Array.to_seq (Relation.adj_dst r y))))
      rels
  in
  let qualifying_ys =
    phase phases "qualify" (fun () ->
        let qualifying = Vec.create () in
        for y = 0 to ny - 1 do
          maybe_check cancel y;
          let lists = heavy_lists y in
          if Array.for_all (fun l -> Array.length l > 0) lists then
            Vec.push qualifying y
        done;
        Vec.to_array qualifying)
  in
  let combinatorial_heavy () =
    let tuple = Array.make k 0 in
    Array.iteri
      (fun jy y ->
        maybe_check cancel jy;
        let lists = heavy_lists y in
        let rec fill i =
          if i = k then Tuples.add builder tuple
          else
            Array.iter
              (fun a ->
                tuple.(i) <- a;
                fill (i + 1))
              lists.(i)
        in
        fill 0)
      qualifying_ys
  in
  (* Pre-MM checkpoint: with the qualifying heavy residue known, the time
     budget can still veto the matrices, and the cells budget tightens the
     interning cap so u·v + v·w stays within it (the product itself is
     streamed in O(w)). *)
  let strategy =
    match g with
    | Some g when strategy = Matrix && Guard.check_budget g ~cells:0 = Guard.Degrade ->
      Guard.note_degrade g;
      Combinatorial
    | _ -> strategy
  in
  let combo_cap =
    let default = 5_000_000 in
    match g with
    | Some g -> (
      match (Guard.config g).Guard.budget.Guard.max_cells with
      | Some cells ->
        min default (cells / (2 * max 1 (Array.length qualifying_ys)))
      | None -> default)
    | None -> default
  in
  let heavy_path = ref "comb" in
  check_cancel cancel;
  (match strategy with
  | Combinatorial ->
    phase phases "heavy-comb" (fun () -> combinatorial_heavy ())
  | Matrix -> (
    try
      phase phases "heavy-mm" (fun () ->
          Obs.span "star.heavy_mm" (fun () ->
              heavy_matrix_step ?cancel ~builder ~heavy_lists ~qualifying_ys
                ~dims k ~combo_cap ()));
      heavy_path := "mm"
    with Matrix_overflow ->
      (match g with Some g -> Guard.note_degrade g | None -> ());
      phase phases "heavy-comb" (fun () -> combinatorial_heavy ())));
  let result = phase phases "build" (fun () -> Tuples.build builder) in
  if Obs.recording () then
    Obs.record_plan ~label:"star"
      ~degraded:(match g with Some g -> Guard.degraded g | None -> false)
      ~decision:(Printf.sprintf "star-%s(d1=%d,d2=%d)" !heavy_path d1 d2)
      ~est_out:(-1) ~join_size:(full_join_size rels) ~est_seconds:Float.nan
      ~actual_out:(Tuples.count result)
      ~actual_seconds:(Jp_util.Timer.now () -. t_start)
      ~phases:(List.rev !phases) ();
  result

let project ?domains:_ ?(strategy = Matrix) ?thresholds ?guard ?cancel rels =
  Obs.span "star.project" (fun () ->
      project_impl ~strategy ~thresholds ~guard ~cancel rels)
