module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Tuples = Jp_relation.Tuples
module Cancel = Jp_util.Cancel

type gate = { mm : bool; est_mm_s : float; est_safe_s : float }

let gate_two_path ?machine ?domains ~r ~s () =
  let prepared = Optimizer.prepare ~r ~s in
  let plan = Optimizer.plan_prepared ?machine ?domains prepared () in
  let est_safe_s =
    Optimizer.estimate_cost_prepared ?machine ?domains prepared Optimizer.Wcoj
  in
  match plan.Optimizer.decision with
  | Optimizer.Wcoj -> { mm = false; est_mm_s = infinity; est_safe_s }
  | Optimizer.Partitioned _ ->
    { mm = true; est_mm_s = plan.Optimizer.est_seconds; est_safe_s }

let gate_star ?machine ?domains rels =
  if Array.length rels < 2 then invalid_arg "Fragment.gate_star: arity < 2";
  (* The two largest relations dominate the heavy residue's matrix
     dimensions; gate on their pairwise 2-path plan. *)
  let best = ref 0 and second = ref 1 in
  if Relation.size rels.(1) > Relation.size rels.(0) then begin
    best := 1;
    second := 0
  end;
  for i = 2 to Array.length rels - 1 do
    let sz = Relation.size rels.(i) in
    if sz > Relation.size rels.(!best) then begin
      second := !best;
      best := i
    end
    else if sz > Relation.size rels.(!second) then second := i
  done;
  gate_two_path ?machine ?domains ~r:rels.(!best) ~s:rels.(!second) ()

let two_path ?domains ?guard ?cancel ?memo ?tile ~r ~s () =
  Two_path.project ?domains ?guard ?cancel ?memo ?tile ~r ~s ()

let star ?domains ?guard ?cancel rels = Star.project ?domains ?guard ?cancel rels
