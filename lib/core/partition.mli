(** The degree partition of Section 3.1.

    Given thresholds Δ₁ (on the join variable y) and Δ₂ (on the output
    variables x and z), classifies values of the 2-path query
    Q̈(x,z) = R(x,y), S(z,y):

    - y is {e light} iff its degree is ≤ Δ₁ in R {e or} in S (if either
      side is light the witness produces few tuples, and the correctness
      argument of Section 3.1 only needs one side);
    - x (resp. z) is {e heavy} iff its degree in R (resp. S) exceeds Δ₂;
    - the heavy sub-relations R⁺/S⁺ contain the tuples whose both
      endpoints are heavy — exactly the tuples the matrices M₁/M₂
      encode.

    Heavy values that have no heavy counterpart (e.g. a heavy x all of
    whose y's are light) would produce all-zero matrix rows, so they are
    pruned from the matrix dimensions. *)

module Relation = Jp_relation.Relation

type t = {
  d1 : int;
  d2 : int;
  light_y : bool array;  (** indexed by y id over the larger dst space *)
  heavy_x : int array;  (** ascending x ids that occupy matrix rows *)
  heavy_y : int array;  (** ascending heavy y ids (matrix inner dim) *)
  heavy_z : int array;  (** ascending z ids that occupy matrix columns *)
  x_index : int array;  (** x id → row index, or -1 *)
  y_index : int array;  (** y id → inner index, or -1 *)
  z_index : int array;  (** z id → column index, or -1 *)
}

val make :
  ?cancel:Jp_util.Cancel.t ->
  r:Relation.t ->
  s:Relation.t ->
  d1:int ->
  d2:int ->
  unit ->
  t
(** [cancel] is checked once at entry — the partition scan is a single
    O(N) phase. *)

val is_light_y : t -> int -> bool
(** Total over the y id space (ids beyond both relations are light: they
    have no tuples at all). *)

val pp : Format.formatter -> t -> unit
