(** Fast join-project query evaluation using matrix multiplication.

    OCaml implementation of Deep, Hu and Koutris, SIGMOD 2020: output-
    sensitive evaluation of the 2-path query Q̈(x,z) = R(x,y), S(z,y) and
    the star query Q*{_k}, by degree-partitioning tuples between a
    worst-case-optimal join (light values) and matrix multiplication
    (heavy values).

    This module is the library's umbrella: it only re-exports the
    submodules below.  The applications built on these — set similarity,
    set containment, boolean set intersection, the conjunctive-query
    engine — live in the sibling libraries [jp_ssj], [jp_scj], [jp_bsi]
    and [jp_query]. *)

module Partition = Partition
(** The light/heavy degree partition itself (Section 3.1). *)

module Estimator = Estimator
(** Output-size estimation (Section 5 + sampling). *)

module Optimizer = Optimizer
(** Algorithm 3's cost-based planning plus the Lemma-3 closed forms. *)

module Two_path = Two_path
(** Algorithm 1 (projection with or without witness counts) and the
    Non-MMJoin combinatorial comparator. *)

module Star = Star
(** The Section 3.2 star algorithm. *)

module Fragment = Fragment
(** Per-fragment MM cost gate + runners for the conjunctive-query
    decomposition planner ([Jp_query.Planner]). *)

module Factorized = Factorized
(** Compressed (biclique-factorized) join views. *)
