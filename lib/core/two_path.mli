(** Algorithm 1: output-sensitive evaluation of
    Q̈(x,z) = R(x,y), S(z,y) — the paper's core contribution.

    The tuple space is split by the degree thresholds of {!Partition}:

    + light sub-joins R⁻ ⋈ S and R ⋈ S⁻ are expanded with the
      worst-case-optimal stamp-vector join (their pre-projection size is
      bounded by N·Δ₁ + |OUT|·Δ₂);
    + the all-heavy residue is evaluated as a matrix product of the
      adjacency matrices of R⁺ and S⁺;
    + the parts are merged with per-x deduplication (a pair can be
      discovered both by a light witness and by the matrix, so the union
      is not disjoint — the merge handles it).

    [Combinatorial] replaces step 2 with the same stamp-vector expansion
    restricted to heavy tuples: that is the paper's {b Non-MMJoin}
    baseline (the Lemma-2-style combinatorial output-sensitive
    algorithm), sharing every other code path with {b MMJoin}.

    All entry points take [?cancel]: a {!Jp_util.Cancel} token polled at
    phase boundaries and once per merge chunk (never per tuple), raising
    {!Jp_util.Cancel.Cancelled} promptly when the token is cancelled or
    its deadline passes.  Without a token the code paths are exactly the
    historical ones — the same guarantee style as [?guard]. *)

module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Counted_pairs = Jp_relation.Counted_pairs
module Cancel = Jp_util.Cancel

type strategy =
  | Matrix  (** heavy part via {!Jp_matrix.Boolmat.mul} / {!Jp_matrix.Intmat.mul} *)
  | Combinatorial  (** heavy part via stamp-vector expansion (Non-MMJoin) *)

(** Memoization hooks, consumed by [Jp_cache] (which sits above this
    library in the dependency graph).  Each hook receives the builder of
    a deterministic, immutable intermediate — the prepared optimizer
    indexes, or a heavy-part matrix product identified by the partition
    thresholds — and may return a previously built value for the same
    (r, s, thresholds) instead of running it.  A memo value is specific
    to the (r, s) pair it was created for; hooks are consulted once per
    phase, never per tuple. *)
type memo = {
  memo_prepared : (unit -> Optimizer.prepared) -> Optimizer.prepared;
  memo_bool_product :
    d1:int -> d2:int -> (unit -> Jp_matrix.Boolmat.t) -> Jp_matrix.Boolmat.t;
  memo_count_product :
    d1:int -> (unit -> Jp_matrix.Intmat.t) -> Jp_matrix.Intmat.t;
  memo_bool_tile :
    d1:int ->
    d2:int ->
    tile_bits:int ->
    ti:int ->
    tj:int ->
    (unit -> Jp_matrix.Boolmat.t) ->
    Jp_matrix.Boolmat.t;
      (** Tile-granularity sibling of [memo_bool_product], consulted
          once per output tile when the heavy product runs tiled
          ([?tile] + cost gate): tile (ti, tj) of the boolean heavy
          product for thresholds (d1, d2) at the given tile size.  The
          whole-product hook is {e not} consulted on the tiled path —
          partial products cache at tile granularity instead. *)
  memo_count_tile :
    d1:int ->
    tile_bits:int ->
    ti:int ->
    tj:int ->
    (unit -> Jp_matrix.Intmat.t) ->
    Jp_matrix.Intmat.t;
      (** Tile-granularity sibling of [memo_count_product]. *)
}

val no_memo : memo
(** Identity hooks: every builder runs.  [?memo] absent is exactly
    [no_memo] — the same byte-identical-path guarantee as [?guard] and
    [?cancel]. *)

val heavy_product :
  ?domains:int ->
  r:Relation.t ->
  s:Relation.t ->
  Partition.t ->
  Jp_matrix.Boolmat.t
(** The heavy-part boolean product M{_R⁺}·M{_S⁺} for a partition: rows
    are [heavy_x], columns [heavy_z] (indexes per the partition's
    [x_index]/[z_index]).  Deterministic in (r, s, thresholds) and
    independent of [domains] — which is what makes it cacheable.  Used
    by the BSI fast path to answer heavy-heavy point queries without
    re-running the join. *)

val project :
  ?domains:int ->
  ?strategy:strategy ->
  ?plan:Optimizer.plan ->
  ?guard:Jp_adaptive.Guard.config ->
  ?cancel:Cancel.t ->
  ?memo:memo ->
  ?tile:Jp_tile.config ->
  r:Relation.t ->
  s:Relation.t ->
  unit ->
  Pairs.t
(** π{_xz}(R ⋈ S).  Without [plan], Algorithm 3 plans the query first
    (including the possible decision to run the plain worst-case-optimal
    join).

    With [guard], execution is supervised by {!Jp_adaptive.Guard}: the
    initial plan sees the guard's injected misestimation, and runtime
    checkpoints (Wcoj output probe, post-partition pre-MM cost/cells
    check, per-chunk light-merge extrapolation when [domains = 1]) may
    re-plan with observed statistics — switching Wcoj ⇄ Partitioned
    mid-query while keeping rows already produced — or degrade matrix
    plans to the combinatorial heavy part when a budget is exhausted.
    Without [guard] the code path is exactly the unguarded one.

    With [tile], the heavy-part product streams through {!Jp_tile} —
    tiles as the work-stealing, memoization and memory-budget unit —
    whenever {!Jp_matrix.Cost.should_tile} agrees (operands at least
    [Cost.tile_min_bytes], or larger than the config's resident
    budget) or the config's [force] flag is set; results are bit-equal
    either way, and without [tile] the
    code path is exactly the historical one (same guarantee as
    [?guard]/[?cancel]/[?memo]).  Guard checkpoints and cancel polls
    fire once per tile, and with a [memo] the tiled product consults
    the tile-granularity hooks instead of the whole-product one. *)

val project_counts :
  ?domains:int ->
  ?strategy:strategy ->
  ?plan:Optimizer.plan ->
  ?guard:Jp_adaptive.Guard.config ->
  ?cancel:Cancel.t ->
  ?memo:memo ->
  ?tile:Jp_tile.config ->
  ?matrix_cell_cap:int ->
  r:Relation.t ->
  s:Relation.t ->
  unit ->
  Counted_pairs.t
(** Like {!project} but with exact witness multiplicities.  Here only the
    join variable is partitioned (a pair's witnesses may be split between
    the light and heavy parts, so per-pair counts from both sides are
    summed — see DESIGN.md); plans should come from
    {!Optimizer.plan_counts}.  If the count matrices would exceed
    [matrix_cell_cap] cells (default 2·10⁸) the heavy part silently falls
    back to the combinatorial strategy.

    [guard] adds the entry/pre-MM budget checks and the cost-honesty
    re-plan checkpoint; the guard's cells budget additionally tightens
    the cell cap (a third of [max_cells] per matrix, so the three
    products stay within the budget).  plan_counts' thresholds do not
    depend on the |OUT| estimate, so there is no chunked output
    checkpoint in this variant. *)

val project_with_plan_info :
  ?domains:int ->
  ?strategy:strategy ->
  ?guard:Jp_adaptive.Guard.config ->
  ?cancel:Cancel.t ->
  ?tile:Jp_tile.config ->
  r:Relation.t ->
  s:Relation.t ->
  unit ->
  Pairs.t * Optimizer.plan
(** {!project} that also returns the plan it chose (for EXPLAIN-style
    reporting in the CLI and benches).  The returned plan is the
    un-injected one it starts from; with [guard] the execution may still
    re-plan away from it. *)
