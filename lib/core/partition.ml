module Relation = Jp_relation.Relation

type t = {
  d1 : int;
  d2 : int;
  light_y : bool array;
  heavy_x : int array;
  heavy_y : int array;
  heavy_z : int array;
  x_index : int array;
  y_index : int array;
  z_index : int array;
}

let index_of ~space ids =
  let idx = Array.make space (-1) in
  Array.iteri (fun i v -> idx.(v) <- i) ids;
  idx

let make_unspanned ~r ~s ~d1 ~d2 =
  let ny = max (Relation.dst_count r) (Relation.dst_count s) in
  let deg_ry y = if y < Relation.dst_count r then Relation.deg_dst r y else 0 in
  let deg_sy y = if y < Relation.dst_count s then Relation.deg_dst s y else 0 in
  let light_y = Array.init ny (fun y -> deg_ry y <= d1 || deg_sy y <= d1) in
  let heavy_y = Jp_util.Vec.create () in
  Array.iteri (fun y light -> if not light then Jp_util.Vec.push heavy_y y) light_y;
  let heavy_y = Jp_util.Vec.to_array heavy_y in
  (* An output-variable value joins the matrix only if heavy AND adjacent
     to at least one heavy y (otherwise its matrix row/column is zero). *)
  let heavy_endpoints rel =
    let out = Jp_util.Vec.create () in
    for a = 0 to Relation.src_count rel - 1 do
      if Relation.deg_src rel a > d2 then begin
        let has_heavy =
          Array.exists (fun b -> not light_y.(b)) (Relation.adj_src rel a)
        in
        if has_heavy then Jp_util.Vec.push out a
      end
    done;
    Jp_util.Vec.to_array out
  in
  let heavy_x = heavy_endpoints r in
  let heavy_z = heavy_endpoints s in
  {
    d1;
    d2;
    light_y;
    heavy_x;
    heavy_y;
    heavy_z;
    x_index = index_of ~space:(Relation.src_count r) heavy_x;
    y_index = index_of ~space:ny heavy_y;
    z_index = index_of ~space:(Relation.src_count s) heavy_z;
  }

let make ?cancel ~r ~s ~d1 ~d2 () =
  if d1 < 1 || d2 < 1 then invalid_arg "Partition.make: thresholds must be >= 1";
  (match cancel with Some c -> Jp_util.Cancel.check c | None -> ());
  Jp_obs.span "partition.make" (fun () -> make_unspanned ~r ~s ~d1 ~d2)

let is_light_y t y = y >= Array.length t.light_y || t.light_y.(y)

let pp fmt t =
  Format.fprintf fmt "partition d1=%d d2=%d: heavy |x|=%d |y|=%d |z|=%d" t.d1 t.d2
    (Array.length t.heavy_x) (Array.length t.heavy_y) (Array.length t.heavy_z)
