(** The cost-based optimizer of Section 5 (Algorithm 3).

    Decides between plain worst-case-optimal evaluation and the partitioned
    MM algorithm, and in the latter case picks the degree thresholds
    (Δ₁, Δ₂) by geometric descent over Δ₁ with Δ₂ tied by
    N·Δ₁ = |OUT|·Δ₂, costing each candidate from:

    - the Section-5 degree indexes (exact light-side work, O(log N) per
      probe — see {!Jp_relation.Stats});
    - the calibrated matrix-multiplication estimate M̂ and the machine
      constants T{_s}, T{_m}, T{_I} (see {!Jp_matrix.Cost}).

    As in the paper, inputs whose full join is at most [wcoj_factor]·N
    (default 20) short-circuit to the worst-case-optimal plan, and the
    descent stops the first time the estimated cost increases
    (the paper's footnote fixes the per-step factor; we use ×0.95 per
    step, i.e. ε = 0.05 in Algorithm 3's notation). *)

module Relation = Jp_relation.Relation
module Cost = Jp_matrix.Cost

type decision =
  | Wcoj  (** evaluate the full join with the stamp-vector expansion *)
  | Partitioned of { d1 : int; d2 : int }
      (** Algorithm 1 with these thresholds *)

type plan = {
  decision : decision;
  est_out : int;  (** estimated |OUT| *)
  join_size : int;  (** exact |OUT{_⋈}| *)
  est_seconds : float;  (** estimated cost of the chosen plan *)
}

type prepared
(** The Section-5 degree indexes and exact join size for one (r, s) pair.
    Building one is the O(N) part of planning; {!plan_prepared} and
    {!estimate_cost_prepared} afterwards only run the geometric descent
    over O(log N) index probes.  The adaptive guard layer prepares once
    per invocation, which is what makes speculative re-planning at
    mid-query checkpoints affordable. *)

val prepare : r:Relation.t -> s:Relation.t -> prepared

val seal_prepared : prepared -> unit
(** Forces the lazy join-size component.  [Jp_cache] seals a prepared
    value before publishing it so that worker domains only ever read an
    already-forced lazy (forcing the same suspension from two domains
    concurrently is unsafe in OCaml 5). *)

val prepared_bytes : prepared -> int
(** Approximate resident footprint in bytes, for cache accounting. *)

val plan :
  ?machine:Cost.machine ->
  ?domains:int ->
  ?kind:Cost.kind ->
  ?wcoj_factor:int ->
  ?est_out:int ->
  ?mm_cost_scale:float ->
  r:Relation.t ->
  s:Relation.t ->
  unit ->
  plan
(** Algorithm 3.  [kind] selects the matrix kernel the heavy part would
    use (default [Boolean]; use [Count] when multiplicities are needed).
    [machine] defaults to the lazily calibrated singleton.

    [est_out] overrides the {!Estimator.estimate} |OUT| estimate and
    [mm_cost_scale] multiplies the M̂ term of every candidate cost —
    the hooks the adaptive guard layer uses both to {e inject}
    misestimation (forcing a deliberately bad plan) and to {e re-plan}
    with statistics observed at a runtime checkpoint. *)

val plan_counts :
  ?machine:Cost.machine ->
  ?domains:int ->
  ?wcoj_factor:int ->
  ?est_out:int ->
  ?mm_cost_scale:float ->
  r:Relation.t ->
  s:Relation.t ->
  unit ->
  plan
(** Variant for the exact-count evaluation used by SSJ/SCJ, where only the
    join variable is partitioned: the returned [d2] is the maximal degree
    (every x/z is treated as light outside the matrix). *)

val plan_prepared :
  ?machine:Cost.machine ->
  ?domains:int ->
  ?kind:Cost.kind ->
  ?wcoj_factor:int ->
  ?est_out:int ->
  ?mm_cost_scale:float ->
  prepared ->
  unit ->
  plan
(** {!plan} from pre-built indexes — cheap enough to call at a runtime
    checkpoint. *)

val plan_counts_prepared :
  ?machine:Cost.machine ->
  ?domains:int ->
  ?wcoj_factor:int ->
  ?est_out:int ->
  ?mm_cost_scale:float ->
  prepared ->
  unit ->
  plan
(** {!plan_counts} from pre-built indexes. *)

val estimate_cost :
  ?machine:Cost.machine ->
  ?domains:int ->
  ?kind:Cost.kind ->
  ?counts_mode:bool ->
  r:Relation.t ->
  s:Relation.t ->
  decision ->
  float
(** Honest (un-injected, estimate-free) cost of executing [decision] on
    [r ⋈ s]: the light side is costed exactly from the degree indexes and
    the heavy side from M̂ on the true heavy dimensions.  Guard
    checkpoints compare this against a plan's [est_seconds] to detect
    cost misestimation after the heavy/light split is known. *)

val estimate_cost_prepared :
  ?machine:Cost.machine ->
  ?domains:int ->
  ?kind:Cost.kind ->
  ?counts_mode:bool ->
  prepared ->
  decision ->
  float
(** {!estimate_cost} from pre-built indexes. *)

val theoretical_thresholds : n:int -> out:int -> int * int
(** The closed-form thresholds of Section 3.1's analysis (assuming ω = 2),
    used by the ABL-THRESH ablation as a cost-model-free comparison point:

    - |OUT| ≤ N (Case 1): Δ₁ = |OUT|^⅓, Δ₂ = N/|OUT|^⅔;
    - |OUT| > N (Case 2): Δ₁ = Δ₂ = (2N²/(N+|OUT|))^⅓.

    Both are clamped to [1, N]. *)

val decision_to_string : decision -> string
(** ["wcoj"] or ["mm(d1=…,d2=…)"] — the rendering shared by {!explain}
    and the observability layer's plan-vs-actual records. *)

val explain : plan -> string
(** One-line human-readable rendering for the CLI and the benches. *)
