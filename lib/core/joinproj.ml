(** Fast join-project query evaluation using matrix multiplication.

    OCaml implementation of Deep, Hu and Koutris, SIGMOD 2020: output-
    sensitive evaluation of the 2-path query Q̈(x,z) = R(x,y), S(z,y) and
    the star query Q*{_k}, by degree-partitioning tuples between a
    worst-case-optimal join (light values) and matrix multiplication
    (heavy values).

    Entry points:

    - {!Two_path} — Algorithm 1 (projection with or without witness
      counts) and the Non-MMJoin combinatorial comparator;
    - {!Star} — the Section 3.2 star algorithm;
    - {!Optimizer} — Algorithm 3's cost-based planning plus the Lemma-3
      closed forms;
    - {!Estimator} — output-size estimation (Section 5 + sampling);
    - {!Partition} — the light/heavy degree partition itself;
    - {!Fragment} — per-fragment MM cost gate + runners for the
      conjunctive-query decomposition planner;
    - {!Factorized} — compressed (biclique-factorized) join views.

    The applications built on these — set similarity, set containment,
    boolean set intersection, the conjunctive-query engine — live in the
    sibling libraries [jp_ssj], [jp_scj], [jp_bsi] and [jp_query]. *)

module Partition = Partition
module Estimator = Estimator
module Optimizer = Optimizer
module Two_path = Two_path
module Star = Star
module Fragment = Fragment
module Factorized = Factorized
