module Relation = Jp_relation.Relation
module Stats = Jp_relation.Stats
module Cost = Jp_matrix.Cost

type decision = Wcoj | Partitioned of { d1 : int; d2 : int }

type plan = {
  decision : decision;
  est_out : int;
  join_size : int;
  est_seconds : float;
}

(* Indexes consulted by the cost loop; built once per planning call in
   O(N log N) (Section 5, "Indexing relations"). *)
type indexes = {
  n : int; (* max(|R|, |S|) *)
  dom_x : int;
  dom_z : int;
  (* y side: keyed by min(deg_R y, deg_S y), since y is light iff that
     minimum is <= d1 *)
  y_by_min : Stats.t; (* weights: deg_R y * deg_S y = expansion work *)
  y_wr : Stats.t; (* weights: deg_R y — mass of R tuples on light y *)
  y_ws : Stats.t; (* weights: deg_S y *)
  x_stats : Stats.t; (* keyed by deg_R x, weights: expansion work of x *)
  z_stats : Stats.t;
}

let expansion_weights rel other =
  (* weight(a) = sum over b in adj(a) of deg_other(b): the work to expand a. *)
  Array.init (Relation.src_count rel) (fun a ->
      Array.fold_left
        (fun acc b ->
          if b < Relation.dst_count other then acc + Relation.deg_dst other b else acc)
        0 (Relation.adj_src rel a))

let build_indexes ~r ~s =
  let ny = max (Relation.dst_count r) (Relation.dst_count s) in
  let deg_ry y = if y < Relation.dst_count r then Relation.deg_dst r y else 0 in
  let deg_sy y = if y < Relation.dst_count s then Relation.deg_dst s y else 0 in
  let min_deg = Array.init ny (fun y -> min (deg_ry y) (deg_sy y)) in
  let prod = Array.init ny (fun y -> deg_ry y * deg_sy y) in
  let wr = Array.init ny (fun y -> deg_ry y) in
  let ws = Array.init ny (fun y -> deg_sy y) in
  {
    n = max (Relation.size r) (Relation.size s);
    dom_x = Estimator.active_src r;
    dom_z = Estimator.active_src s;
    y_by_min = Stats.of_degrees ~weights:prod min_deg;
    y_wr = Stats.of_degrees ~weights:wr min_deg;
    y_ws = Stats.of_degrees ~weights:ws min_deg;
    x_stats = Stats.of_degrees ~weights:(expansion_weights r s) (Relation.degrees_src r);
    z_stats = Stats.of_degrees ~weights:(expansion_weights s r) (Relation.degrees_src s);
  }

(* Heavy matrix dimensions for thresholds (d1, d2).  [v] is exact;
   [u]/[w] bound the rows/columns by the Δ₂ heavy-value count (infinity
   in counts mode, where every endpoint adjacent to a heavy y joins the
   matrix) and by the number of endpoints adjacent to any heavy y. *)
let tuples_on_heavy_y idx stats ~d1 =
  Stats.weight_le stats (Stats.max_degree idx.y_by_min) - Stats.weight_le stats d1

let heavy_dims ~counts_mode idx ~d1 ~d2 =
  let v = Stats.count_gt idx.y_by_min d1 in
  let r_touched = min idx.dom_x (tuples_on_heavy_y idx idx.y_wr ~d1) in
  let s_touched = min idx.dom_z (tuples_on_heavy_y idx idx.y_ws ~d1) in
  if counts_mode then (r_touched, v, s_touched)
  else
    ( min (Stats.count_gt idx.x_stats d2) r_touched,
      v,
      min (Stats.count_gt idx.z_stats d2) s_touched )

(* In counts mode there are no R-/S- sub-joins: the combinatorial side
   only expands light-y tuples. *)
let light_seconds ~counts_mode (m : Cost.machine) idx ~d1 ~d2 =
  let light_y_work = Stats.weight_le idx.y_by_min d1 in
  let endpoint_work =
    if counts_mode then 0
    else Stats.weight_le idx.x_stats d2 + Stats.weight_le idx.z_stats d2
  in
  (m.ti *. float_of_int (light_y_work + endpoint_work))
  +. (m.tm *. float_of_int idx.dom_x)

let heavy_seconds (m : Cost.machine) kind ~domains (u, v, w) =
  if u = 0 || v = 0 || w = 0 then 0.0
  else Cost.mhat m kind ~u ~v ~w ~cores:domains

let wcoj_seconds (m : Cost.machine) ~join_size ~dom_x =
  (m.ti *. float_of_int join_size) +. (m.tm *. float_of_int dom_x)

(* Geometric descent on d1 (Algorithm 3): stop as soon as the cost stops
   improving, return the previous candidate. *)
let descend ~cost ~start =
  let shrink d = max 1 (min (d - 1) (int_of_float (0.95 *. float_of_int d))) in
  let rec go ~best_d ~best_cost d =
    let c = cost d in
    if c > best_cost then (best_d, best_cost)
    else if d = 1 then (d, c)
    else go ~best_d:d ~best_cost:c (shrink d)
  in
  let c0 = cost start in
  if start = 1 then (start, c0) else go ~best_d:start ~best_cost:c0 (shrink start)

let d2_for idx ~est_out d1 =
  (* N·Δ₁ = |OUT|·Δ₂ (line 9 of Algorithm 3) *)
  max 1 (min idx.n (idx.n * d1 / max 1 est_out))

(* Reusable planning state: the degree indexes and the exact join size
   for one (r, s) pair.  Building this is the O(N) part of planning;
   every plan/estimate_cost call on a [prepared] value afterwards only
   runs the geometric descent over index probes.  The guard layer
   prepares once per invocation so mid-query checkpoints can afford
   speculative re-planning. *)
type prepared = {
  p_r : Relation.t;
  p_s : Relation.t;
  p_idx : indexes;
  p_join_size : int Lazy.t;
}

let prepare ~r ~s =
  Jp_obs.span "optimizer.prepare" (fun () ->
      {
        p_r = r;
        p_s = s;
        p_idx = build_indexes ~r ~s;
        p_join_size = lazy (Estimator.join_size ~r ~s);
      })

let seal_prepared prep = ignore (Lazy.force prep.p_join_size)

(* Footprint estimate for cache accounting: the five Stats structures hold
   cumulative arrays over the y domain (three of them) and the two endpoint
   domains.  Two words per indexed id is the right order of magnitude; the
   cache only needs a consistent estimate, not an exact byte count. *)
let prepared_bytes prep =
  let ny = max (Relation.dst_count prep.p_r) (Relation.dst_count prep.p_s) in
  let endpoints =
    Relation.src_count prep.p_r + Relation.src_count prep.p_s
  in
  (8 * 2 * ((3 * ny) + (2 * endpoints))) + 128

let generic_plan ?machine ?(domains = 1) ~kind ?(wcoj_factor = 20)
    ?est_out ?(mm_cost_scale = 1.0) ~counts_mode ~tie_d2 prep () =
  let m = match machine with Some m -> m | None -> Cost.machine () in
  let join_size = Lazy.force prep.p_join_size in
  let est_out =
    match est_out with
    | Some e -> max 1 e
    | None -> Estimator.estimate ~r:prep.p_r ~s:prep.p_s
  in
  let idx = prep.p_idx in
  let wcoj_cost = wcoj_seconds m ~join_size ~dom_x:idx.dom_x in
  if join_size <= wcoj_factor * idx.n then
    { decision = Wcoj; est_out; join_size; est_seconds = wcoj_cost }
  else begin
    let cost d1 =
      let d2 = tie_d2 idx ~est_out d1 in
      light_seconds ~counts_mode m idx ~d1 ~d2
      +. mm_cost_scale
         *. heavy_seconds m kind ~domains (heavy_dims ~counts_mode idx ~d1 ~d2)
    in
    let start = max 1 (Stats.max_degree idx.y_by_min) in
    let d1, best_cost = descend ~cost ~start in
    let d2 = tie_d2 idx ~est_out d1 in
    if best_cost >= wcoj_cost || d1 >= start then
      { decision = Wcoj; est_out; join_size; est_seconds = wcoj_cost }
    else
      {
        decision = Partitioned { d1; d2 };
        est_out;
        join_size;
        est_seconds = best_cost;
      }
  end

(* d2 pinned to the maximal degree for counts mode: only the join variable
   is partitioned, every x/z counts as light. *)
let max_d2 idx ~est_out:_ _d1 = idx.n

let plan_prepared ?machine ?domains ?(kind = Cost.Boolean) ?wcoj_factor
    ?est_out ?mm_cost_scale prep () =
  Jp_obs.span "optimizer.plan" (fun () ->
      generic_plan ?machine ?domains ~kind ?wcoj_factor ?est_out ?mm_cost_scale
        ~counts_mode:false ~tie_d2:d2_for prep ())

let plan_counts_prepared ?machine ?domains ?wcoj_factor ?est_out ?mm_cost_scale
    prep () =
  Jp_obs.span "optimizer.plan_counts" (fun () ->
      generic_plan ?machine ?domains ~kind:Cost.Count ?wcoj_factor ?est_out
        ?mm_cost_scale ~counts_mode:true ~tie_d2:max_d2 prep ())

let plan ?machine ?domains ?kind ?wcoj_factor ?est_out ?mm_cost_scale ~r ~s () =
  plan_prepared ?machine ?domains ?kind ?wcoj_factor ?est_out ?mm_cost_scale
    (prepare ~r ~s) ()

let plan_counts ?machine ?domains ?wcoj_factor ?est_out ?mm_cost_scale ~r ~s () =
  plan_counts_prepared ?machine ?domains ?wcoj_factor ?est_out ?mm_cost_scale
    (prepare ~r ~s) ()

let estimate_cost_prepared ?machine ?(domains = 1) ?(kind = Cost.Boolean)
    ?(counts_mode = false) prep decision =
  let m = match machine with Some m -> m | None -> Cost.machine () in
  let idx = prep.p_idx in
  match decision with
  | Wcoj ->
    wcoj_seconds m ~join_size:(Lazy.force prep.p_join_size) ~dom_x:idx.dom_x
  | Partitioned { d1; d2 } ->
    light_seconds ~counts_mode m idx ~d1 ~d2
    +. heavy_seconds m kind ~domains (heavy_dims ~counts_mode idx ~d1 ~d2)

let estimate_cost ?machine ?domains ?kind ?counts_mode ~r ~s decision =
  estimate_cost_prepared ?machine ?domains ?kind ?counts_mode (prepare ~r ~s)
    decision

let theoretical_thresholds ~n ~out =
  if n < 1 || out < 1 then invalid_arg "Optimizer.theoretical_thresholds";
  let nf = float_of_int n and outf = float_of_int out in
  let clamp d = max 1 (min n (int_of_float (Float.round d))) in
  if out <= n then
    (clamp (outf ** (1.0 /. 3.0)), clamp (nf /. (outf ** (2.0 /. 3.0))))
  else begin
    let d = (2.0 *. nf *. nf /. (nf +. outf)) ** (1.0 /. 3.0) in
    (clamp d, clamp d)
  end

let decision_to_string = function
  | Wcoj -> "wcoj"
  | Partitioned { d1; d2 } -> Printf.sprintf "mm(d1=%d,d2=%d)" d1 d2

let explain p =
  Printf.sprintf "plan=%s est_out=%d join_size=%d est=%.4fs"
    (decision_to_string p.decision)
    p.est_out p.join_size p.est_seconds
