module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Counted_pairs = Jp_relation.Counted_pairs
module Boolmat = Jp_matrix.Boolmat
module Intmat = Jp_matrix.Intmat
module Vec = Jp_util.Vec
module Obs = Jp_obs
module Cancel = Jp_util.Cancel

type strategy = Matrix | Combinatorial

(* Memoization hooks (consumed by [Jp_cache], which sits above this
   library in the dependency graph).  Each hook receives the builder for
   a deterministic intermediate — the prepared optimizer indexes, or a
   heavy-part matrix product identified by its thresholds — and may
   return a previously built value for the same (r, s, thresholds)
   instead of calling it.  A memo is specific to the (r, s) pair it was
   created for.  [no_memo] (the default) calls every builder directly,
   so the unhooked paths stay byte-identical. *)
type memo = {
  memo_prepared : (unit -> Optimizer.prepared) -> Optimizer.prepared;
  memo_bool_product : d1:int -> d2:int -> (unit -> Boolmat.t) -> Boolmat.t;
  memo_count_product : d1:int -> (unit -> Intmat.t) -> Intmat.t;
  memo_bool_tile :
    d1:int ->
    d2:int ->
    tile_bits:int ->
    ti:int ->
    tj:int ->
    (unit -> Boolmat.t) ->
    Boolmat.t;
  memo_count_tile :
    d1:int ->
    tile_bits:int ->
    ti:int ->
    tj:int ->
    (unit -> Intmat.t) ->
    Intmat.t;
}

let no_memo =
  {
    memo_prepared = (fun build -> build ());
    memo_bool_product = (fun ~d1:_ ~d2:_ build -> build ());
    memo_count_product = (fun ~d1:_ build -> build ());
    memo_bool_tile =
      (fun ~d1:_ ~d2:_ ~tile_bits:_ ~ti:_ ~tj:_ build -> build ());
    memo_count_tile = (fun ~d1:_ ~tile_bits:_ ~ti:_ ~tj:_ build -> build ());
  }

(* Cancellation support.  [check_cancel] is the phase-boundary
   checkpoint; chunked merge loops poll every [poll_rows] rows (the
   guard-checkpoint granularity), reusing one merge scratch across
   sub-chunks — stamps are row ids, distinct across chunks, so stale
   stamps cannot collide.  With [?cancel] absent every loop below runs
   its historical one-shot body. *)
let check_cancel = function Some c -> Cancel.check c | None -> ()

let poll_rows = 4096

(* Measures one engine phase for the plan-vs-actual record; [f] may open
   its own spans, so this deliberately does not open one.  Top-level (and
   handed the accumulator explicitly) to stay polymorphic in the phase's
   result type. *)
let phase phases name f =
  if Obs.recording () then begin
    let t0 = Jp_util.Timer.now () in
    let x = f () in
    phases := (name, Jp_util.Timer.now () -. t0) :: !phases;
    x
  end
  else f ()

(* ------------------------------------------------------------------ *)
(* Boolean (dedup-only) evaluation                                     *)
(* ------------------------------------------------------------------ *)

(* Heavy adjacency matrices of R+ and S+ (Section 3.1): rows/columns are
   the pruned heavy value lists of the partition. *)
let heavy_matrices ~domains ~r ~s (p : Partition.t) =
  Obs.span "two_path.heavy_mm" (fun () ->
      let m1 =
        Boolmat.create ~rows:(Array.length p.heavy_x)
          ~cols:(Array.length p.heavy_y)
      in
      Array.iteri
        (fun i a ->
          Array.iter
            (fun b ->
              let j = p.y_index.(b) in
              if j >= 0 then Boolmat.set m1 i j)
            (Relation.adj_src r a))
        p.heavy_x;
      let m2 =
        Boolmat.create ~rows:(Array.length p.heavy_y)
          ~cols:(Array.length p.heavy_z)
      in
      Array.iteri
        (fun j b ->
          if b < Relation.dst_count s then
            Array.iter
              (fun c ->
                let l = p.z_index.(c) in
                if l >= 0 then Boolmat.set m2 j l)
              (Relation.adj_dst s b))
        p.heavy_y;
      Boolmat.mul ~domains m1 m2)

(* Public alias: the BSI fast path builds (and caches) the same product
   over a full-relation partition, answering heavy-heavy point queries
   straight from its bits. *)
let heavy_product ?(domains = 1) ~r ~s p = heavy_matrices ~domains ~r ~s p

(* Tiled sibling of [heavy_matrices]: the operands are handed to
   [Jp_tile] as lazy adjacency sources, so the full M₁/M₂ are never
   materialized — tiles are built on demand and stream through the
   bounded resident store.  Deterministic in (r, s, thresholds,
   tile_bits), independent of domains and budget, and bit-equal to
   [heavy_matrices]. *)
let heavy_matrices_tiled ?cancel ?checkpoint ~tile ~memo ~domains ~r ~s
    (p : Partition.t) =
  Obs.span "two_path.heavy_mm" (fun () ->
      let u = Array.length p.heavy_x
      and v = Array.length p.heavy_y
      and w = Array.length p.heavy_z in
      let src_a =
        Jp_tile.Source.of_adjacency ~rows:u ~cols:v (fun i ->
            let bits = Vec.create () in
            Array.iter
              (fun b ->
                let j = p.y_index.(b) in
                if j >= 0 then Vec.push bits j)
              (Relation.adj_src r p.heavy_x.(i));
            Vec.to_array bits)
      in
      let src_b =
        Jp_tile.Source.of_adjacency ~rows:v ~cols:w (fun j ->
            let bits = Vec.create () in
            let y = p.heavy_y.(j) in
            if y < Relation.dst_count s then
              Array.iter
                (fun c ->
                  let l = p.z_index.(c) in
                  if l >= 0 then Vec.push bits l)
                (Relation.adj_dst s y);
            Vec.to_array bits)
      in
      Jp_tile.mul ~domains ?cancel ?checkpoint
        ~memo:
          (memo.memo_bool_tile ~d1:p.Partition.d1 ~d2:p.Partition.d2
             ~tile_bits:tile.Jp_tile.tile_bits)
        tile src_a src_b)

(* The heavy boolean product behind the tiling gate: with a [?tile]
   config present and the cost model agreeing (operands big enough, or
   bigger than the configured resident budget), stream through
   [Jp_tile] with per-tile memo keys; otherwise the historical flat
   kernel behind the whole-product memo hook — byte-identical when
   [tile] is [None]. *)
let heavy_bool_product ?cancel ?checkpoint ~tile ~memo ~domains ~r ~s
    (p : Partition.t) =
  let tiled =
    match tile with
    | None -> None
    | Some cfg ->
      if
        cfg.Jp_tile.force
        || Jp_matrix.Cost.should_tile ?budget_bytes:cfg.Jp_tile.budget_bytes
             Jp_matrix.Cost.Boolean ~u:(Array.length p.heavy_x)
             ~v:(Array.length p.heavy_y) ~w:(Array.length p.heavy_z) ()
      then Some cfg
      else None
  in
  match tiled with
  | Some cfg ->
    heavy_matrices_tiled ?cancel ?checkpoint ~tile:cfg ~memo ~domains ~r ~s p
  | None ->
    memo.memo_bool_product ~d1:p.Partition.d1 ~d2:p.Partition.d2 (fun () ->
        heavy_matrices ~domains ~r ~s p)

(* For heavy y values, pre-split S's inverted list into its light-z and
   heavy-z halves once (O(N)); the per-x merge loop would otherwise rescan
   whole inverted lists just to filter them, degenerating to the full join
   when few values are light. *)
let split_heavy_s ~r ~s (p : Partition.t) =
  let ny = max (Relation.dst_count r) (Relation.dst_count s) in
  let s_light_of_heavy_y = Array.make ny [||] in
  let s_heavy_of_heavy_y = Array.make ny [||] in
  Array.iter
    (fun b ->
      if b < Relation.dst_count s then begin
        let zs = Relation.adj_dst s b in
        let light = Vec.create () and heavy = Vec.create () in
        Array.iter
          (fun c ->
            if Relation.deg_src s c <= p.d2 then Vec.push light c
            else Vec.push heavy c)
          zs;
        s_light_of_heavy_y.(b) <- Vec.to_array light;
        s_heavy_of_heavy_y.(b) <- Vec.to_array heavy
      end)
    p.heavy_y;
  (s_light_of_heavy_y, s_heavy_of_heavy_y)

(* Reusable per-worker merge scratch.  The guarded chunked loop keeps one
   across chunks (stamp values are row ids, distinct across chunks, so
   stale stamps can never collide); the parallel path allocates one per
   worker as before. *)
type merge_scratch = { stamps : int array; buf : Vec.t }

let merge_scratch ~s =
  { stamps = Array.make (Relation.src_count s) (-1); buf = Vec.create ~capacity:256 () }

(* The merged per-x loop over rows [lo, hi): light contributions from
   R- |><| S and R |><| S-, heavy contributions from the matrix product
   (or from a heavy-restricted expansion for the combinatorial strategy),
   all deduplicated with one stamp vector.  Returns the number of pairs
   produced — the observed-output statistic guard checkpoints
   extrapolate from. *)
let merge_range ?scratch ~r ~s ~(p : Partition.t) ~product ~s_light_of_heavy_y
    ~s_heavy_of_heavy_y ~rows lo hi =
  let { stamps; buf } =
    match scratch with Some sc -> sc | None -> merge_scratch ~s
  in
  let obs = Obs.recording () in
  let light_scans = ref 0 and presented = ref 0 and produced = ref 0 in
  for a = lo to hi - 1 do
    let stamp = a in
    Vec.clear buf;
    let push c =
      if Array.unsafe_get stamps c <> stamp then begin
        Array.unsafe_set stamps c stamp;
        Vec.push buf c
      end
    in
    let scan zs =
      if obs then begin
        light_scans := !light_scans + Array.length zs;
        presented := !presented + Array.length zs
      end;
      Array.iter push zs
    in
    let a_light = Relation.deg_src r a <= p.d2 in
    Array.iter
      (fun b ->
        if a_light || Partition.is_light_y p b then
          scan (Relation.adj_dst s b)
        else
          (* heavy a, heavy b: only the S- tuples (light z) are
             joined here; heavy z is the matrix part's job *)
          scan s_light_of_heavy_y.(b))
      (Relation.adj_src r a);
    (match product with
    | Some m ->
      let i = p.x_index.(a) in
      if i >= 0 then begin
        if obs then presented := !presented + Boolmat.row_nnz m i;
        Boolmat.iter_row m i (fun l -> push p.heavy_z.(l))
      end
    | None ->
      if not a_light then
        Array.iter
          (fun b ->
            if not (Partition.is_light_y p b) then
              scan s_heavy_of_heavy_y.(b))
          (Relation.adj_src r a));
    produced := !produced + Vec.length buf;
    Vec.sort_dedup buf;
    rows.(a) <- Vec.to_array buf
  done;
  if obs then begin
    Obs.add Obs.C.light_probes !light_scans;
    Obs.add Obs.C.stamp_misses !produced;
    Obs.add Obs.C.stamp_hits (!presented - !produced)
  end;
  !produced

let partitioned_project ?cancel ?tile ~phases ~domains ~strategy ~memo ~r ~s
    (p : Partition.t) =
  check_cancel cancel;
  let product =
    match strategy with
    | Matrix ->
      Some
        (phase phases "heavy-mm" (fun () ->
             heavy_bool_product ?cancel ~tile ~memo ~domains ~r ~s p))
    | Combinatorial -> None
  in
  check_cancel cancel;
  phase phases "light-merge" (fun () ->
      Obs.span "two_path.light_merge" (fun () ->
          let s_light_of_heavy_y, s_heavy_of_heavy_y = split_heavy_s ~r ~s p in
          let nx = Relation.src_count r in
          let rows = Array.make nx [||] in
          let worker lo hi =
            match cancel with
            | None ->
              ignore
                (merge_range ~r ~s ~p ~product ~s_light_of_heavy_y
                   ~s_heavy_of_heavy_y ~rows lo hi)
            | Some c ->
              let scratch = merge_scratch ~s in
              let i = ref lo in
              while !i < hi && not (Cancel.is_cancelled c) do
                let j = min hi (!i + poll_rows) in
                ignore
                  (merge_range ~scratch ~r ~s ~p ~product ~s_light_of_heavy_y
                     ~s_heavy_of_heavy_y ~rows !i j);
                i := j
              done
          in
          if domains <= 1 then worker 0 nx
          else begin
            let per = (nx + domains - 1) / domains in
            Jp_parallel.Pool.parallel_for_ranges ?cancel ~domains ~chunk:per
              ~lo:0 ~hi:nx worker
          end;
          check_cancel cancel;
          Pairs.of_rows_unchecked rows))

(* ------------------------------------------------------------------ *)
(* Guarded boolean evaluation (adaptive plan guards)                   *)
(* ------------------------------------------------------------------ *)

(* Matrix cells the partition would materialize (u·v + v·w + u·w) — the
   intermediate-size quantity {!Guard.budget}'s [max_cells] bounds. *)
let partition_cells (p : Partition.t) =
  let u = Array.length p.heavy_x
  and v = Array.length p.heavy_y
  and w = Array.length p.heavy_z in
  (u * v) + (v * w) + (u * w)

(* Supervised execution of [plan0].  Checkpoints (all once per chunk or
   phase, never per tuple):

   - entry: a zero time budget degrades before any work;
   - Wcoj probe: after [probe_rows] rows, extrapolate |OUT| and re-plan if
     it diverges from the estimate, or if a clean re-plan prefers the
     matrix path by more than the divergence factor (an mm-cost
     misestimate leaves est_out honest but the decision wrong) — a switch
     keeps the rows already expanded and runs the new plan on the rest;
   - post-partition, pre-MM: the cells budget vetoes the matrices
     (combinatorial heavy part instead), and the plan's est_seconds is
     compared against the honest cost of the chosen thresholds;
   - per-chunk during the light merge (single-domain only): wall-clock
     budget and |OUT| extrapolation; a mid-merge re-plan resumes the new
     plan at the current row, keeping all finished rows.

   Re-planning is always done with clean (un-injected) statistics and
   bounded by the guard's fuel, so the recursion terminates.  A cancel
   token is polled at exactly these checkpoints. *)
let guarded_project ?cancel ?tile ~g ~prep ~domains ~strategy ~memo ~phases ~r
    ~s plan0 =
  let module Guard = Jp_adaptive.Guard in
  let cfg = Guard.config g in
  let nx = Relation.src_count r in
  (* Effective chunk sizes: bounded by the config but scaled to the x
     domain, so dense datasets (few, large sets) still get a handful of
     checkpoints instead of finishing inside one chunk. *)
  let check_chunk = max 64 (min cfg.Guard.check_every (nx / 8)) in
  let probe = max 64 (min cfg.Guard.probe_rows (nx / 4)) in
  let rows = Array.make nx [||] in
  let produced = ref 0 in
  let scratch = lazy (merge_scratch ~s) in
  let strat = ref strategy in
  let expand_into lo hi =
    if hi > lo then
      phase phases "wcoj" (fun () ->
          let xs = Array.init (hi - lo) (fun i -> lo + i) in
          let out = Jp_wcoj.Expand.project ~domains ?cancel ~xs ~r ~s () in
          for a = lo to hi - 1 do
            let row = Pairs.row out a in
            rows.(a) <- row;
            produced := !produced + Array.length row
          done)
  in
  let replan est_out =
    phase phases "replan" (fun () ->
        Guard.note_replan g;
        Optimizer.plan_prepared ~domains ~kind:Jp_matrix.Cost.Boolean ~est_out
          (Lazy.force prep) ())
  in
  let rec run plan lo =
    if lo < nx then
      match plan.Optimizer.decision with
      | Optimizer.Wcoj -> run_wcoj plan lo
      | Optimizer.Partitioned { d1; d2 } -> run_partitioned plan ~d1 ~d2 lo
  and run_wcoj plan lo =
    let probe_hi = min nx (lo + probe) in
    expand_into lo probe_hi;
    if probe_hi < nx then begin
      check_cancel cancel;
      (* Wcoj already is the safe path: a blown budget only marks the
         outcome — the remaining rows still have to be expanded. *)
      (match Guard.check_budget g ~cells:0 with
      | Guard.Degrade -> Guard.note_degrade g
      | Guard.Continue | Guard.Replan -> ());
      let obs_out = max 1 (!produced * nx / probe_hi) in
      match
        Guard.check_estimate g
          ~est:(float_of_int plan.Optimizer.est_out)
          ~observed:(float_of_int obs_out)
      with
      | Guard.Replan -> run (replan obs_out) probe_hi
      | (Guard.Continue | Guard.Degrade) when Guard.can_replan g ->
        let np =
          Optimizer.plan_prepared ~domains ~kind:Jp_matrix.Cost.Boolean
            ~est_out:obs_out (Lazy.force prep) ()
        in
        let wcoj_cost =
          Optimizer.estimate_cost_prepared ~domains
            ~kind:Jp_matrix.Cost.Boolean (Lazy.force prep) Optimizer.Wcoj
        in
        (match np.Optimizer.decision with
        | Optimizer.Partitioned _
          when Guard.check_estimate g ~est:np.Optimizer.est_seconds
                 ~observed:wcoj_cost
               = Guard.Replan ->
          Guard.note_replan g;
          run np probe_hi
        | _ -> expand_into probe_hi nx)
      | Guard.Continue | Guard.Degrade -> expand_into probe_hi nx
    end
  and run_partitioned plan ~d1 ~d2 lo =
    check_cancel cancel;
    let p =
      phase phases "partition" (fun () -> Partition.make ?cancel ~r ~s ~d1 ~d2 ())
    in
    (match Guard.check_budget g ~cells:(partition_cells p) with
    | Guard.Degrade ->
      (* No room for the matrices: heavy part via the combinatorial
         expansion, which materializes nothing. *)
      Guard.note_degrade g;
      strat := Combinatorial
    | Guard.Continue | Guard.Replan -> ());
    let replan_on_cost =
      !strat = Matrix && Guard.can_replan g
      &&
      let honest =
        Optimizer.estimate_cost_prepared ~domains ~kind:Jp_matrix.Cost.Boolean
          (Lazy.force prep) (Optimizer.Partitioned { d1; d2 })
      in
      Guard.check_estimate g ~est:plan.Optimizer.est_seconds ~observed:honest
      = Guard.Replan
    in
    if replan_on_cost then
      run (replan (Estimator.sampled ~r ~s ())) lo
    else merge_partitioned plan ~p lo
  and merge_partitioned plan ~p lo =
    let product =
      match !strat with
      | Matrix ->
        (* Guard checkpoints once per output tile, but only when the
           tiles run on the calling domain — worker domains race past
           sequential checkpoints (same rule as the chunked merge). *)
        let checkpoint =
          if domains > 1 then None
          else
            Some
              (fun () ->
                match Guard.check_budget g ~cells:0 with
                | Guard.Degrade -> Guard.note_degrade g
                | Guard.Continue | Guard.Replan -> ())
        in
        Some
          (phase phases "heavy-mm" (fun () ->
               heavy_bool_product ?cancel ?checkpoint ~tile ~memo ~domains ~r
                 ~s p))
      | Combinatorial -> None
    in
    check_cancel cancel;
    let resume =
      phase phases "light-merge" (fun () ->
          Obs.span "two_path.light_merge" (fun () ->
              let s_light_of_heavy_y, s_heavy_of_heavy_y = split_heavy_s ~r ~s p in
              if domains > 1 then begin
                (* Worker domains race past any sequential checkpoint, so
                   parallel merges keep only the plan-time and pre-MM
                   checks and run the range in one shot — unless a cancel
                   token is present, in which case each worker sub-chunks
                   and polls it. *)
                let worker l h =
                  match cancel with
                  | None ->
                    ignore
                      (merge_range ~r ~s ~p ~product ~s_light_of_heavy_y
                         ~s_heavy_of_heavy_y ~rows l h)
                  | Some c ->
                    let sc = merge_scratch ~s in
                    let i = ref l in
                    while !i < h && not (Cancel.is_cancelled c) do
                      let j = min h (!i + check_chunk) in
                      ignore
                        (merge_range ~scratch:sc ~r ~s ~p ~product
                           ~s_light_of_heavy_y ~s_heavy_of_heavy_y ~rows !i j);
                      i := j
                    done
                in
                let per = (nx - lo + domains - 1) / domains in
                Jp_parallel.Pool.parallel_for_ranges ?cancel ~domains
                  ~chunk:per ~lo ~hi:nx worker;
                check_cancel cancel;
                for a = lo to nx - 1 do
                  produced := !produced + Array.length rows.(a)
                done;
                None
              end
              else begin
                let resume = ref None in
                let i = ref lo in
                while !resume = None && !i < nx do
                  check_cancel cancel;
                  let hi = min nx (!i + check_chunk) in
                  produced :=
                    !produced
                    + merge_range ~scratch:(Lazy.force scratch) ~r ~s ~p
                        ~product ~s_light_of_heavy_y ~s_heavy_of_heavy_y ~rows
                        !i hi;
                  i := hi;
                  if !i < nx then begin
                    (match Guard.check_budget g ~cells:0 with
                    | Guard.Degrade ->
                      (* Time blown mid-merge: the matrices are already
                         built and nothing cheaper remains, so only the
                         outcome is recorded. *)
                      Guard.note_degrade g
                    | Guard.Continue | Guard.Replan -> ());
                    let obs_out = max 1 (!produced * nx / !i) in
                    match
                      Guard.check_estimate g
                        ~est:(float_of_int plan.Optimizer.est_out)
                        ~observed:(float_of_int obs_out)
                    with
                    | Guard.Replan ->
                      let np = replan obs_out in
                      if
                        np.Optimizer.decision
                        <> Optimizer.Partitioned { d1 = p.Partition.d1; d2 = p.Partition.d2 }
                      then resume := Some (np, !i)
                    | Guard.Continue | Guard.Degrade -> ()
                  end
                done;
                !resume
              end))
    in
    match resume with Some (np, at) -> run np at | None -> ()
  in
  (* Entry checkpoint: a zero (or already blown) time budget forbids
     matrix plans outright. *)
  check_cancel cancel;
  (match Guard.check_budget g ~cells:0 with
  | Guard.Degrade ->
    Guard.note_degrade g;
    strat := Combinatorial
  | Guard.Continue | Guard.Replan -> ());
  run plan0 0;
  Pairs.of_rows_unchecked rows

let project ?(domains = 1) ?(strategy = Matrix) ?plan ?guard ?cancel ?memo
    ?tile ~r ~s () =
  let memo = match memo with Some m -> m | None -> no_memo in
  match guard with
  | Some gcfg ->
    let module Guard = Jp_adaptive.Guard in
    let module Inject = Jp_adaptive.Inject in
    Obs.span "two_path.project" (fun () ->
        let t0 = Jp_util.Timer.now () in
        let phases = ref [] in
        let g = Guard.start gcfg in
        let inj = Guard.inject g in
        (* Built at most once per invocation: the initial plan forces it,
           and every later checkpoint re-plan reuses it. *)
        let prep = lazy (memo.memo_prepared (fun () -> Optimizer.prepare ~r ~s)) in
        let plan =
          match plan with
          | Some p -> p
          | None ->
            phase phases "plan" (fun () ->
                Optimizer.plan_prepared ~domains ~kind:Jp_matrix.Cost.Boolean
                  ~est_out:(Inject.out inj (Estimator.estimate ~r ~s))
                  ~mm_cost_scale:inj.Inject.mm_factor (Lazy.force prep) ())
        in
        let result =
          guarded_project ?cancel ?tile ~g ~prep ~domains ~strategy ~memo
            ~phases ~r ~s plan
        in
        if Obs.recording () then
          Obs.record_plan ~label:"two_path" ~replanned:(Guard.replanned g)
            ~degraded:(Guard.degraded g)
            ~decision:(Optimizer.decision_to_string plan.decision)
            ~est_out:plan.est_out ~join_size:plan.join_size
            ~est_seconds:plan.est_seconds ~actual_out:(Pairs.count result)
            ~actual_seconds:(Jp_util.Timer.now () -. t0)
            ~phases:(List.rev !phases) ();
        result)
  | None ->
    Obs.span "two_path.project" (fun () ->
        let t0 = Jp_util.Timer.now () in
        let phases = ref [] in
        let plan =
          match plan with
          | Some p -> p
          | None ->
            (* [Optimizer.plan] is [plan_prepared (prepare ...)], so
               routing the prepare through the memo hook changes nothing
               when the hook is the identity. *)
            phase phases "plan" (fun () ->
                Optimizer.plan_prepared ~domains ~kind:Jp_matrix.Cost.Boolean
                  (memo.memo_prepared (fun () -> Optimizer.prepare ~r ~s))
                  ())
        in
        let result =
          match plan.decision with
          | Optimizer.Wcoj ->
            phase phases "wcoj" (fun () ->
                Jp_wcoj.Expand.project ~domains ?cancel ~r ~s ())
          | Optimizer.Partitioned { d1; d2 } ->
            check_cancel cancel;
            let p =
              phase phases "partition" (fun () ->
                  Partition.make ?cancel ~r ~s ~d1 ~d2 ())
            in
            partitioned_project ?cancel ?tile ~phases ~domains ~strategy ~memo
              ~r ~s p
        in
        if Obs.recording () then
          Obs.record_plan ~label:"two_path"
            ~decision:(Optimizer.decision_to_string plan.decision)
            ~est_out:plan.est_out ~join_size:plan.join_size
            ~est_seconds:plan.est_seconds ~actual_out:(Pairs.count result)
            ~actual_seconds:(Jp_util.Timer.now () -. t0)
            ~phases:(List.rev !phases) ();
        result)

let project_with_plan_info ?(domains = 1) ?(strategy = Matrix) ?guard ?cancel
    ?tile ~r ~s () =
  let plan = Optimizer.plan ~domains ~kind:Jp_matrix.Cost.Boolean ~r ~s () in
  (project ~domains ~strategy ~plan ?guard ?cancel ?tile ~r ~s (), plan)

(* ------------------------------------------------------------------ *)
(* Exact-count evaluation (partition on the join variable only)        *)
(* ------------------------------------------------------------------ *)

(* A pair's witnesses can be split between light and heavy y values, so
   counts from the expansion and from the count-matrix product are summed
   per pair before freezing the row.  Also returns whether the count
   matrices were actually used — [false] means the cell cap (or an
   explicit [~matrix:false]) forced the combinatorial fallback, which the
   guarded path records as a degradation. *)
let counted_partitioned ?cancel ?tile ?checkpoint ~phases ~domains ~memo ~r ~s
    ~d1 ~matrix ~cap () =
  let ny = max (Relation.dst_count r) (Relation.dst_count s) in
  let deg_ry y = if y < Relation.dst_count r then Relation.deg_dst r y else 0 in
  let deg_sy y = if y < Relation.dst_count s then Relation.deg_dst s y else 0 in
  let light_y = Array.init ny (fun y -> deg_ry y <= d1 || deg_sy y <= d1) in
  (* Matrix dimensions: endpoints adjacent to at least one heavy y. *)
  let heavy_y = Vec.create () in
  Array.iteri (fun y light -> if not light then Vec.push heavy_y y) light_y;
  let heavy_y = Vec.to_array heavy_y in
  let touched rel =
    let seen = Array.make (Relation.src_count rel) false in
    Array.iter
      (fun b ->
        if b < Relation.dst_count rel then
          Array.iter (fun a -> seen.(a) <- true) (Relation.adj_dst rel b))
      heavy_y;
    let ids = Vec.create () in
    Array.iteri (fun a hit -> if hit then Vec.push ids a) seen;
    Vec.to_array ids
  in
  let hx = touched r and hz = touched s in
  let u = Array.length hx and v = Array.length heavy_y and w = Array.length hz in
  let fits = u * v <= cap && v * w <= cap && u * w <= cap in
  let use_matrix = matrix && v > 0 && fits in
  let x_index = Array.make (Relation.src_count r) (-1) in
  Array.iteri (fun i a -> x_index.(a) <- i) hx;
  let tiled =
    match tile with
    | None -> None
    | Some cfg ->
      if
        cfg.Jp_tile.force
        || Jp_matrix.Cost.should_tile ?budget_bytes:cfg.Jp_tile.budget_bytes
             Jp_matrix.Cost.Count ~u ~v ~w ()
      then Some cfg
      else None
  in
  let product =
    if not use_matrix then None
    else
      phase phases "heavy-count-mm" (fun () ->
          (* The count product A·Bᵀ over bit-packed rows (62
             multiply-adds per word op): A rows are x's heavy-y bitsets,
             B rows are z's heavy-y bitsets. *)
          let heavy_row_fn () =
            let y_index = Array.make ny (-1) in
            Array.iteri (fun j b -> y_index.(b) <- j) heavy_y;
            fun rel a ->
              let bits = Jp_util.Vec.create () in
              Array.iter
                (fun b ->
                  if b < ny then begin
                    let j = y_index.(b) in
                    if j >= 0 then Jp_util.Vec.push bits j
                  end)
                (Relation.adj_src rel a);
              Jp_util.Vec.to_array bits
          in
          match tiled with
          | Some cfg ->
            (* Tiled: operands stream through [Jp_tile]'s bounded store
               and partial products memoize at tile granularity. *)
            let heavy_row = heavy_row_fn () in
            let src_a =
              Jp_tile.Source.of_adjacency ~rows:u ~cols:v (fun i ->
                  heavy_row r hx.(i))
            in
            let src_b =
              Jp_tile.Source.of_adjacency ~rows:w ~cols:v (fun l ->
                  heavy_row s hz.(l))
            in
            Some
              (Jp_tile.count_product ~domains ?cancel ?checkpoint
                 ~memo:(memo.memo_count_tile ~d1 ~tile_bits:cfg.Jp_tile.tile_bits)
                 cfg src_a src_b)
          | None ->
            Some
              (memo.memo_count_product ~d1 (fun () ->
                   (* The whole build sits inside the memo thunk: a hit
                      skips it. *)
                   let heavy_row = heavy_row_fn () in
                   let m1 =
                     Boolmat.of_adjacency ~rows:u ~cols:v (fun i ->
                         heavy_row r hx.(i))
                   in
                   let m2 =
                     Boolmat.of_adjacency ~rows:w ~cols:v (fun l ->
                         heavy_row s hz.(l))
                   in
                   Boolmat.count_product ~domains m1 m2)))
  in
  let treat_all_light = product = None in
  let nx = Relation.src_count r in
  let rows = Array.make nx ([||], [||]) in
  check_cancel cancel;
  phase phases "count-merge" (fun () ->
      Obs.span "two_path.count_merge" (fun () ->
          let nz = Relation.src_count s in
          let count_scratch () =
            (Array.make nz (-1), Array.make nz 0, Vec.create ~capacity:256 ())
          in
          let run_rows (stamps, counts, buf) lo hi =
            let obs = Obs.recording () in
            let light_scans = ref 0 and presented = ref 0 and misses = ref 0 in
            for a = lo to hi - 1 do
              let stamp = a in
              Vec.clear buf;
              let bump c k =
                if Array.unsafe_get stamps c <> stamp then begin
                  Array.unsafe_set stamps c stamp;
                  Array.unsafe_set counts c k;
                  Vec.push buf c
                end
                else Array.unsafe_set counts c (Array.unsafe_get counts c + k)
              in
              Array.iter
                (fun b ->
                  if treat_all_light || light_y.(b) then begin
                    let zs = Relation.adj_dst s b in
                    if obs then begin
                      light_scans := !light_scans + Array.length zs;
                      presented := !presented + Array.length zs
                    end;
                    Array.iter (fun c -> bump c 1) zs
                  end)
                (Relation.adj_src r a);
              (match product with
              | Some m ->
                let i = x_index.(a) in
                if i >= 0 then
                  Array.iteri
                    (fun l c ->
                      let k = Intmat.get m i l in
                      if k > 0 then begin
                        if obs then Stdlib.incr presented;
                        bump c k
                      end)
                    hz
              | None -> ());
              if obs then misses := !misses + Vec.length buf;
              Vec.sort_dedup buf;
              let zs = Vec.to_array buf in
              let cs = Array.map (fun c -> counts.(c)) zs in
              rows.(a) <- (zs, cs)
            done;
            if obs then begin
              Obs.add Obs.C.light_probes !light_scans;
              Obs.add Obs.C.stamp_misses !misses;
              Obs.add Obs.C.stamp_hits (!presented - !misses)
            end
          in
          let worker lo hi =
            match cancel with
            | None -> run_rows (count_scratch ()) lo hi
            | Some c ->
              let scratch = count_scratch () in
              let i = ref lo in
              while !i < hi && not (Cancel.is_cancelled c) do
                let j = min hi (!i + poll_rows) in
                run_rows scratch !i j;
                i := j
              done
          in
          if domains <= 1 then worker 0 nx
          else begin
            let per = (nx + domains - 1) / domains in
            Jp_parallel.Pool.parallel_for_ranges ?cancel ~domains ~chunk:per
              ~lo:0 ~hi:nx worker
          end;
          check_cancel cancel;
          (Counted_pairs.of_rows_unchecked rows, use_matrix)))

let project_counts ?(domains = 1) ?(strategy = Matrix) ?plan ?guard ?cancel
    ?memo ?tile ?(matrix_cell_cap = 200_000_000) ~r ~s () =
  let memo = match memo with Some m -> m | None -> no_memo in
  Obs.span "two_path.project_counts" (fun () ->
      let t0 = Jp_util.Timer.now () in
      check_cancel cancel;
      let phases = ref [] in
      let g =
        match guard with
        | Some cfg -> Some (Jp_adaptive.Guard.start cfg)
        | None -> None
      in
      let prep = lazy (memo.memo_prepared (fun () -> Optimizer.prepare ~r ~s)) in
      let plan =
        match (plan, g) with
        | Some p, _ -> p
        | None, None ->
          (* Same plan as [Optimizer.plan_counts], which is
             [plan_counts_prepared (prepare ...)]. *)
          phase phases "plan" (fun () ->
              Optimizer.plan_counts_prepared ~domains (Lazy.force prep) ())
        | None, Some g ->
          (* plan_counts' thresholds do not depend on est_out (d2 is
             pinned), so only the mm-cost component of the injection can
             mislead it — and the honesty checkpoint below catches it. *)
          let inj = Jp_adaptive.Guard.inject g in
          phase phases "plan" (fun () ->
              Optimizer.plan_counts_prepared ~domains
                ~est_out:(Jp_adaptive.Inject.out inj (Estimator.estimate ~r ~s))
                ~mm_cost_scale:inj.Jp_adaptive.Inject.mm_factor
                (Lazy.force prep) ())
      in
      (* Guard checkpoints (counts flavour): entry/pre-MM budgets degrade
         the heavy step to the combinatorial merge; a cost-honesty
         checkpoint re-plans a Partitioned decision whose est_seconds was
         injected.  There is no chunked |OUT| checkpoint here because
         plan_counts' decision is insensitive to est_out. *)
      let module Guard = Jp_adaptive.Guard in
      let plan, strategy, cap =
        match g with
        | None -> (plan, strategy, matrix_cell_cap)
        | Some g ->
          let cap =
            match (Guard.config g).Guard.budget.Guard.max_cells with
            | Some limit -> min matrix_cell_cap (limit / 3)
            | None -> matrix_cell_cap
          in
          let strategy =
            match Guard.check_budget g ~cells:0 with
            | Guard.Degrade ->
              Guard.note_degrade g;
              Combinatorial
            | Guard.Continue | Guard.Replan -> strategy
          in
          let plan =
            match plan.Optimizer.decision with
            | Optimizer.Partitioned { d1; d2 }
              when strategy = Matrix && Guard.can_replan g ->
              let honest =
                Optimizer.estimate_cost_prepared ~domains
                  ~kind:Jp_matrix.Cost.Count ~counts_mode:true
                  (Lazy.force prep)
                  (Optimizer.Partitioned { d1; d2 })
              in
              (match
                 Guard.check_estimate g ~est:plan.Optimizer.est_seconds
                   ~observed:honest
               with
              | Guard.Replan ->
                phase phases "replan" (fun () ->
                    Guard.note_replan g;
                    Optimizer.plan_counts_prepared ~domains
                      ~est_out:(Estimator.sampled ~r ~s ())
                      (Lazy.force prep) ())
              | Guard.Continue | Guard.Degrade -> plan)
            | _ -> plan
          in
          (plan, strategy, cap)
      in
      let result =
        match (plan.Optimizer.decision, strategy) with
        | Optimizer.Wcoj, _ | _, Combinatorial ->
          phase phases "wcoj" (fun () ->
              Jp_wcoj.Expand.project_counts ~domains ?cancel ~r ~s ())
        | Optimizer.Partitioned { d1; d2 = _ }, Matrix ->
          (* Same per-tile checkpoint rule as the boolean guarded path:
             only the calling domain may touch the guard. *)
          let checkpoint =
            match g with
            | Some g when domains <= 1 ->
              Some
                (fun () ->
                  match Guard.check_budget g ~cells:0 with
                  | Guard.Degrade -> Guard.note_degrade g
                  | Guard.Continue | Guard.Replan -> ())
            | _ -> None
          in
          let result, used_matrix =
            counted_partitioned ?cancel ?tile ?checkpoint ~phases ~domains
              ~memo ~r ~s ~d1 ~matrix:true ~cap ()
          in
          (match g with
          | Some g when not used_matrix -> Guard.note_degrade g
          | _ -> ());
          result
      in
      if Obs.recording () then begin
        let replanned, degraded =
          match g with
          | Some g -> (Guard.replanned g, Guard.degraded g)
          | None -> (false, false)
        in
        Obs.record_plan ~label:"two_path.counts" ~replanned ~degraded
          ~decision:(Optimizer.decision_to_string plan.Optimizer.decision)
          ~est_out:plan.Optimizer.est_out ~join_size:plan.Optimizer.join_size
          ~est_seconds:plan.Optimizer.est_seconds
          ~actual_out:(Counted_pairs.count result)
          ~actual_seconds:(Jp_util.Timer.now () -. t0)
          ~phases:(List.rev !phases) ()
      end;
      result)
