module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Vec = Jp_util.Vec

type t = {
  light : int array array; (* x -> sorted light partners *)
  x_arrays : int array array; (* biclique id -> sorted heavy x ids *)
  z_arrays : int array array; (* biclique id -> sorted heavy z ids *)
  by_x : int array array; (* x -> biclique ids containing x *)
  nz : int; (* dom(z) *)
}

(* Light side of Algorithm 1 only (the heavy residue stays factorized). *)
let light_rows ~r ~s (p : Partition.t) =
  let s_light_of_heavy_y = Array.make (Array.length p.light_y) [||] in
  Array.iter
    (fun b ->
      if b < Relation.dst_count s then
        s_light_of_heavy_y.(b) <-
          Array.of_seq
            (Seq.filter
               (fun c -> Relation.deg_src s c <= p.d2)
               (Array.to_seq (Relation.adj_dst s b))))
    p.heavy_y;
  let stamps = Array.make (Relation.src_count s) (-1) in
  let buf = Vec.create ~capacity:256 () in
  Array.init (Relation.src_count r) (fun a ->
      Vec.clear buf;
      let push c =
        if Array.unsafe_get stamps c <> a then begin
          Array.unsafe_set stamps c a;
          Vec.push buf c
        end
      in
      let a_light = Relation.deg_src r a <= p.d2 in
      Array.iter
        (fun b ->
          if a_light || Partition.is_light_y p b then
            Array.iter push (Relation.adj_dst s b)
          else Array.iter push s_light_of_heavy_y.(b))
        (Relation.adj_src r a);
      Vec.sort_dedup buf;
      Vec.to_array buf)

let build ?plan ?thresholds ~r ~s () =
  let nz = Relation.src_count s in
  let decision =
    match (plan, thresholds) with
    | Some p, _ -> p.Optimizer.decision
    | None, Some (d1, d2) -> Optimizer.Partitioned { d1; d2 }
    | None, None -> (Optimizer.plan ~r ~s ()).Optimizer.decision
  in
  match decision with
  | Optimizer.Wcoj ->
    let pairs = Jp_wcoj.Expand.project ~r ~s () in
    {
      light = Array.init (Pairs.src_count pairs) (fun x -> Pairs.row pairs x);
      x_arrays = [||];
      z_arrays = [||];
      by_x = Array.make (Relation.src_count r) [||];
      nz;
    }
  | Optimizer.Partitioned { d1; d2 } ->
    let p = Partition.make ~r ~s ~d1 ~d2 () in
    let light = light_rows ~r ~s p in
    (* One biclique per heavy witness, deduplicated by content: witnesses
       shared by the same community contribute identical X x Z blocks, and
       that dedup is where the compression comes from. *)
    let seen : (int array * int array, unit) Hashtbl.t = Hashtbl.create 64 in
    let xa = ref [] and za = ref [] in
    Array.iter
      (fun b ->
        let heavy_of rel index =
          if b < Relation.dst_count rel then
            Array.of_seq
              (Seq.filter (fun v -> index.(v) >= 0) (Array.to_seq (Relation.adj_dst rel b)))
          else [||]
        in
        let x_side = heavy_of r p.x_index and z_side = heavy_of s p.z_index in
        if
          Array.length x_side > 0
          && Array.length z_side > 0
          && not
               (Hashtbl.mem seen (x_side, z_side)
               [@jp.lint.allow "hashtbl-dedup"
                 "keys are (int array * int array) biclique signatures; \
                  structured and sparse, no dense int domain to stamp"])
        then begin
          (Hashtbl.add seen (x_side, z_side) ()
          [@jp.lint.allow "hashtbl-dedup"
            "same structured biclique-signature keys as the mem above"]);
          xa := x_side :: !xa;
          za := z_side :: !za
        end)
      p.heavy_y;
    let x_arrays = Array.of_list (List.rev !xa) in
    let z_arrays = Array.of_list (List.rev !za) in
    let memberships = Array.make (Relation.src_count r) [] in
    Array.iteri
      (fun id x_side ->
        Array.iter (fun x -> memberships.(x) <- id :: memberships.(x)) x_side)
      x_arrays;
    let by_x = Array.map (fun l -> Array.of_list (List.rev l)) memberships in
    { light; x_arrays; z_arrays; by_x; nz }

let of_pairs pairs =
  let nz = ref 1 in
  Pairs.iter (fun _ z -> if z >= !nz then nz := z + 1) pairs;
  {
    light = Array.init (Pairs.src_count pairs) (fun x -> Pairs.row pairs x);
    x_arrays = [||];
    z_arrays = [||];
    by_x = Array.make (Pairs.src_count pairs) [||];
    nz = !nz;
  }

let mem t x z =
  x < Array.length t.light
  && (Jp_util.Sorted.mem t.light.(x) z
     || Array.exists (fun id -> Jp_util.Sorted.mem t.z_arrays.(id) z) t.by_x.(x))

let row_into t x ~stamps ~buf =
  Vec.clear buf;
  let stamp = x in
  let push c =
    if Array.unsafe_get stamps c <> stamp then begin
      Array.unsafe_set stamps c stamp;
      Vec.push buf c
    end
  in
  Array.iter push t.light.(x);
  Array.iter (fun id -> Array.iter push t.z_arrays.(id)) t.by_x.(x);
  Vec.sort_dedup buf

let iter f t =
  let stamps = Array.make (max 1 t.nz) (-1) in
  let buf = Vec.create ~capacity:256 () in
  Array.iteri
    (fun x _ ->
      row_into t x ~stamps ~buf;
      Vec.iter (fun z -> f x z) buf)
    t.light

let count t =
  let n = ref 0 in
  iter (fun _ _ -> incr n) t;
  !n

let stored_ints t =
  let light = Array.fold_left (fun acc row -> acc + Array.length row) 0 t.light in
  let heavy =
    Array.fold_left (fun acc a -> acc + Array.length a) 0 t.x_arrays
    + Array.fold_left (fun acc a -> acc + Array.length a) 0 t.z_arrays
  in
  light + heavy

let bicliques t = Array.length t.x_arrays

let to_pairs t =
  let stamps = Array.make (max 1 t.nz) (-1) in
  let buf = Vec.create ~capacity:256 () in
  Pairs.of_rows_unchecked
    (Array.init (Array.length t.light) (fun x ->
         row_into t x ~stamps ~buf;
         Vec.to_array buf))
