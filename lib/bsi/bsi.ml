module Relation = Jp_relation.Relation
module Partition = Joinproj.Partition
module Boolmat = Jp_matrix.Boolmat

type strategy = Mm | Combinatorial

let answer_one ~r ~s a b =
  if a >= Relation.src_count r || b >= Relation.src_count s then false
  else
    Jp_util.Sorted.intersect_count (Relation.adj_src r a) (Relation.adj_src s b) > 0

(* Cached amortization artifact (Section 5.3): one full-relation heavy
   partition and its boolean product, shared by every batch over the same
   (r, s).  Heavy-heavy queries whose product bit is set short-circuit to
   [true]; everything else falls back to the per-query merge scan —
   answers are identical to the uncached batch path either way. *)
type heavy_artifact = { h_part : Partition.t; h_product : Boolmat.t }

let heavy_tag : heavy_artifact Jp_cache.tag = Jp_cache.tag "bsi.heavy"

let artifact_bytes ~r ~s art =
  (Boolmat.rows art.h_product * ((Boolmat.cols art.h_product + 61) / 62) * 8)
  + (8 * (Relation.src_count r + Relation.src_count s))
  + 64

let heavy_artifact ~domains ~cache ~cancel ~r ~s =
  let prep = Jp_cache.prepared cache ~r ~s in
  let plan =
    Joinproj.Optimizer.plan_prepared ~domains ~kind:Jp_matrix.Cost.Boolean prep
      ()
  in
  match plan.Joinproj.Optimizer.decision with
  | Joinproj.Optimizer.Wcoj -> None
  | Joinproj.Optimizer.Partitioned { d1; d2 } -> (
    let key =
      Jp_cache.Key.of_relations ~kind:"bsi.heavy" ~params:[ d1; d2 ] [ r; s ]
    in
    match Jp_cache.find cache heavy_tag key with
    | Some art -> Some art
    | None ->
      let t0 = Jp_util.Timer.now () in
      let p = Partition.make ?cancel ~r ~s ~d1 ~d2 () in
      let product = Joinproj.Two_path.heavy_product ~domains ~r ~s p in
      let art = { h_part = p; h_product = product } in
      Jp_cache.put cache heavy_tag key ~bytes:(artifact_bytes ~r ~s art)
        ~cost_s:(Jp_util.Timer.now () -. t0) art;
      Some art)

let cached_answers ~domains ~cache ~cancel ~r ~s queries =
  let artifact = heavy_artifact ~domains ~cache ~cancel ~r ~s in
  Jp_obs.span "bsi.probe" (fun () ->
      Array.mapi
        (fun i (a, b) ->
          (if i land 1023 = 0 then
             match cancel with
             | Some c -> Jp_util.Cancel.check c
             | None -> ());
          let from_product =
            match artifact with
            | None -> false
            | Some art ->
              a < Array.length art.h_part.Partition.x_index
              && b < Array.length art.h_part.Partition.z_index
              &&
              let i = art.h_part.Partition.x_index.(a) in
              let l = art.h_part.Partition.z_index.(b) in
              i >= 0 && l >= 0 && Boolmat.mem art.h_product i l
          in
          from_product || answer_one ~r ~s a b)
        queries)

let answer_batch ?(domains = 1) ?(strategy = Mm) ?guard ?cancel ?cache ~r ~s
    queries =
  Jp_obs.span "bsi.answer_batch" (fun () ->
      (match cancel with Some c -> Jp_util.Cancel.check c | None -> ());
      match (cache, strategy) with
      | Some cache, Mm -> cached_answers ~domains ~cache ~cancel ~r ~s queries
      | _ ->
        (* Filter both relations to the sets the batch mentions (Section
           3.3's "use the requests in the batch to filter R and S"). *)
        let rf, sf =
          Jp_obs.span "bsi.filter" (fun () ->
              let in_x = Array.make (Relation.src_count r) false in
              let in_z = Array.make (Relation.src_count s) false in
              Array.iter
                (fun (a, b) ->
                  if a < Array.length in_x then in_x.(a) <- true;
                  if b < Array.length in_z then in_z.(b) <- true)
                queries;
              ( Relation.restrict_src r (fun a -> in_x.(a)),
                Relation.restrict_src s (fun b -> in_z.(b)) ))
        in
        let pairs =
          match strategy with
          | Mm ->
            Joinproj.Two_path.project ~domains ?guard ?cancel ~r:rf ~s:sf ()
          | Combinatorial ->
            (* already the safe path; the guard has nothing to supervise *)
            Jp_wcoj.Expand.project ~domains ?cancel ~r:rf ~s:sf ()
        in
        Jp_obs.span "bsi.probe" (fun () ->
            Array.map (fun (a, b) -> Jp_relation.Pairs.mem pairs a b) queries))

let optimal_batch_size ~n ~rate =
  if n < 1 || rate <= 0.0 then invalid_arg "Bsi.optimal_batch_size";
  max 1 (int_of_float ((rate *. float_of_int n) ** 0.6))

let predicted_latency ~n ~rate ~batch_size =
  if batch_size < 1 || rate <= 0.0 then invalid_arg "Bsi.predicted_latency";
  let c = float_of_int batch_size in
  (c /. rate) +. (float_of_int n /. (c ** (2.0 /. 3.0)))

type stats = {
  batch_size : int;
  batches : int;
  avg_delay : float;
  max_delay : float;
  avg_processing : float;
  units_needed : float;
}

let simulate_impl ~domains ~strategy ~guard ~cancel ~cache ~r ~s ~queries
    ~rate ~batch_size =
  let n = Array.length queries in
  (* Arrival offsets come from the repo's one open-loop generator
     (fixed-rate: query i arrives exactly at i/rate, the schedule the
     delay model below assumes). *)
  let arrivals = Jp_workload.Arrivals.schedule ~rate ~count:n () in
  let batches = (n + batch_size - 1) / batch_size in
  let total_delay = ref 0.0 and max_delay = ref 0.0 and total_proc = ref 0.0 in
  for j = 0 to batches - 1 do
    let lo = j * batch_size in
    let hi = min n (lo + batch_size) in
    let batch = Array.sub queries lo (hi - lo) in
    let answers, proc =
      Jp_util.Timer.time (fun () ->
          answer_batch ~domains ~strategy ?guard ?cancel ?cache ~r ~s batch)
    in
    ignore answers;
    total_proc := !total_proc +. proc;
    (* the batch dispatches when its last query has arrived *)
    let dispatch = arrivals.(hi - 1) in
    for i = lo to hi - 1 do
      let delay = dispatch -. arrivals.(i) +. proc in
      total_delay := !total_delay +. delay;
      if delay > !max_delay then max_delay := delay
    done
  done;
  let period = float_of_int batch_size /. rate in
  let avg_processing = !total_proc /. float_of_int batches in
  {
    batch_size;
    batches;
    avg_delay = !total_delay /. float_of_int n;
    max_delay = !max_delay;
    avg_processing;
    units_needed = avg_processing /. period;
  }

let simulate ?(domains = 1) ?(strategy = Mm) ?guard ?cancel ?cache ~r ~s
    ~queries ~rate ~batch_size () =
  if batch_size < 1 then invalid_arg "Bsi.simulate: batch_size must be >= 1";
  if rate <= 0.0 then invalid_arg "Bsi.simulate: rate must be positive";
  Jp_obs.span "bsi.simulate" (fun () ->
      simulate_impl ~domains ~strategy ~guard ~cancel ~cache ~r ~s ~queries
        ~rate ~batch_size)
