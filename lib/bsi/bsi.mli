(** Boolean set intersection with batching (Sections 3.3 and 7.5).

    A workload of queries Q{_ab}() = R(a,y), S(b,y) arrives at B queries
    per time unit.  Instead of answering each with an O(N) scan, batches
    of C queries are grouped into T(x,z) and answered at once as
    Q{_batch}(x,z) = R(x,y), S(z,y), T(x,z): the batch filters R and S
    down to the mentioned sets, one 2-path join-project (Algorithm 1, or
    the combinatorial expansion for the Non-MM comparator) computes every
    intersection flag, and T probes the result.

    {!simulate} replays the arrival process against the real execution
    times, reproducing the average-delay-vs-batch-size curves of
    Figures 6b–6d. *)

module Relation = Jp_relation.Relation

type strategy =
  | Mm  (** Algorithm 1 on the filtered relations *)
  | Combinatorial  (** worst-case-optimal expansion (Non-MMJoin) *)

val answer_batch :
  ?domains:int ->
  ?strategy:strategy ->
  ?guard:Jp_adaptive.Guard.config ->
  ?cancel:Jp_util.Cancel.t ->
  ?cache:Jp_cache.t ->
  r:Relation.t ->
  s:Relation.t ->
  (int * int) array ->
  bool array
(** [answer_batch ~r ~s queries].(i) tells whether the two sets of query
    [i] share at least one element.  [guard] supervises the per-batch
    join-project under [Mm] (see {!Joinproj.Two_path.project}); the
    [Combinatorial] comparator is already the safe path and ignores it.

    With [cache] (and [Mm]), the batch is answered from the Section-5.3
    amortization artifact instead: one {e full-relation} heavy partition
    and boolean product, built once and cached under the (r, s)
    fingerprints and thresholds, short-circuits heavy-heavy queries;
    the rest fall back to {!answer_one} merge scans.  Answers are
    byte-identical to the uncached path ([guard] is then moot: there is
    no per-batch join to supervise).  The cancel token is polled once
    per 1024 queries. *)

val answer_one : r:Relation.t -> s:Relation.t -> int -> int -> bool
(** Single-query merge-scan reference (the per-request baseline of
    Example 5; also the test oracle). *)

type stats = {
  batch_size : int;
  batches : int;
  avg_delay : float;  (** mean (answer time − arrival time), seconds *)
  max_delay : float;
  avg_processing : float;  (** mean wall-clock seconds to answer a batch *)
  units_needed : float;
      (** processing units required to keep up: avg processing time divided
          by the batch inter-arrival period C/B *)
}

val optimal_batch_size : n:int -> rate:float -> int
(** Proposition 2's batch size C = (B·N)^(3/5) minimizing average latency
    under the ω = 2 analysis; at least 1. *)

val predicted_latency : n:int -> rate:float -> batch_size:int -> float
(** The Section 3.3 latency model C/B + N/C^(2/3): abstract units (one
    set-element operation per time unit), so only the curve's shape and
    minimizer are meaningful — used to sanity-check the measured curves,
    not as a wall-clock prediction. *)

val simulate :
  ?domains:int ->
  ?strategy:strategy ->
  ?guard:Jp_adaptive.Guard.config ->
  ?cancel:Jp_util.Cancel.t ->
  ?cache:Jp_cache.t ->
  r:Relation.t ->
  s:Relation.t ->
  queries:(int * int) array ->
  rate:float ->
  batch_size:int ->
  unit ->
  stats
(** Replays [queries] arriving at [rate] per second (a
    {!Jp_workload.Arrivals.Fixed_rate} schedule — the same generator the
    open-loop serving harness uses), dispatching every [batch_size] of
    them to {!answer_batch} (whose real wall-clock time is measured),
    with no queueing between batches (the paper provisions enough
    parallel units; {!stats.units_needed} reports how many). *)
