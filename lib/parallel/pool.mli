(** Coordination-free data parallelism on OCaml 5 domains.

    The paper's parallel experiments (Figures 3b, 4d–g, 5d/g/h, 7) all rely
    on embarrassingly parallel partitioning: matrix row blocks and per-x
    join work need no communication between tasks.  This module provides
    exactly that: a bounded set of domains pulling chunk indices from a
    single atomic counter (dynamic load balancing, no locks).

    {b Failure.}  When a worker body raises, a shared stop flag makes the
    remaining domains abandon their claim loops at the next chunk boundary
    instead of draining the whole range; after everyone has joined, the
    failure with the {e lowest} chunk index is re-raised on the caller's
    domain — deterministic even though domains race, because the chunk
    counter hands indices out in order.

    {b Cancellation.}  With [?cancel], workers poll the token once per
    chunk claim and stop claiming once it is cancelled; the call then
    raises {!Jp_util.Cancel.Cancelled} on the calling domain.  In the
    [domains <= 1] degenerate case the range is chunked so the token is
    still polled between chunks.  Without a token the code paths are
    exactly the historical ones. *)

module Cancel = Jp_util.Cancel

val available_cores : unit -> int
(** [Domain.recommended_domain_count ()]; the widest sensible [domains]
    argument on this machine. *)

val set_fault_hook : (unit -> unit) option -> unit
(** Install (or clear, with [None]) the process-global chaos injection
    point, called once per chunk claim on whichever domain claims it.
    The hook may raise — that is the point: [Jp_chaos] uses it to
    simulate transient kernel faults and worker-domain deaths, which
    then flow through the stop-flag/re-raise machinery above.  Disarmed,
    the cost is one atomic load per chunk.  Not for use outside the
    chaos layer; arm it only around a single supervised invocation. *)

val parallel_for :
  domains:int ->
  ?chunk:int ->
  ?cancel:Cancel.t ->
  lo:int ->
  hi:int ->
  (int -> unit) ->
  unit
(** [parallel_for ~domains ~lo ~hi body] runs [body i] for every
    [lo <= i < hi] across [domains] domains.  [chunk] is the number of
    consecutive indices a worker claims at a time (default: picked so there
    are ~8 chunks per domain).  With [domains <= 1] it degenerates to a
    plain sequential loop with zero domain overhead. *)

val parallel_for_ranges :
  domains:int ->
  ?chunk:int ->
  ?cancel:Cancel.t ->
  lo:int ->
  hi:int ->
  (int -> int -> unit) ->
  unit
(** [parallel_for_ranges ~domains ~lo ~hi body] is like {!parallel_for} but
    hands each worker whole ranges: [body range_lo range_hi] with
    [lo <= range_lo < range_hi <= hi].  Lets the body hoist per-chunk
    scratch allocations. *)

val map_reduce :
  domains:int ->
  ?chunk:int ->
  ?cancel:Cancel.t ->
  lo:int ->
  hi:int ->
  combine:('a -> 'a -> 'a) ->
  init:'a ->
  (int -> 'a) ->
  'a
(** Per-domain local folds combined at the end; [combine] must be
    associative and [init] its identity.  The combination order is
    unspecified. *)
