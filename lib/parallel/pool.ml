module Cancel = Jp_util.Cancel

let available_cores () = Domain.recommended_domain_count ()

let default_chunk ~domains ~lo ~hi =
  let span = hi - lo in
  max 1 (span / (domains * 8))

(* Chaos injection point, consulted once per chunk claim (never per
   element).  Installed by [Jp_chaos] to simulate transient kernel faults
   and worker-domain deaths; the default is a no-op closure, so the cost
   with chaos disarmed is one atomic load + call per chunk. *)
let no_fault () = ()

let fault_hook : (unit -> unit) Atomic.t = Atomic.make no_fault

let set_fault_hook = function
  | Some f -> Atomic.set fault_hook f
  | None -> Atomic.set fault_hook no_fault

(* The first worker failure, by lowest chunk index: re-raising the
   lowest-indexed exception makes the propagated failure deterministic
   even though domains race (the chunk counter hands indices out in
   order, so every chunk below the failing one either completed or
   failed with a lower index of its own). *)
type failure = { index : int; error : exn; bt : Printexc.raw_backtrace }

let record_failure ~stop ~failure ~index error bt =
  Atomic.set stop true;
  let rec keep_min () =
    let cur = Atomic.get failure in
    let replace = match cur with None -> true | Some f -> index < f.index in
    if replace && not (Atomic.compare_and_set failure cur (Some { index; error; bt }))
    then keep_min ()
  in
  keep_min ()

(* Run [worker ()] on [domains] domains (including the calling one); the
   workers record failures themselves (per chunk), this only catches
   strays escaping the claim loop. *)
let run_workers ~domains ~stop ~failure worker =
  if domains <= 1 then worker ()
  else begin
    Jp_obs.add Jp_obs.C.pool_spawns (domains - 1);
    let guarded () =
      try worker ()
      with e ->
        record_failure ~stop ~failure ~index:max_int e (Printexc.get_raw_backtrace ())
    in
    let others = List.init (domains - 1) (fun _ -> Domain.spawn guarded) in
    guarded ();
    List.iter Domain.join others
  end

let reraise_failure failure =
  match Atomic.get failure with
  | Some { error; bt; _ } -> Printexc.raise_with_backtrace error bt
  | None -> ()

let check_cancel cancel =
  match cancel with Some c -> Cancel.check c | None -> ()

(* Sequential degenerate case.  Without a token the body gets the whole
   range in one call with zero overhead, exactly as before; with one the
   range is chunked so the token is polled between chunks. *)
let seq_ranges ?cancel ~chunk ~lo ~hi body =
  match cancel with
  | None ->
    Jp_obs.incr Jp_obs.C.pool_tasks;
    body lo hi
  | Some c ->
    let i = ref lo in
    while !i < hi && not (Cancel.is_cancelled c) do
      (Atomic.get fault_hook) ();
      Jp_obs.incr Jp_obs.C.pool_tasks;
      body !i (min hi (!i + chunk));
      i := !i + chunk
    done;
    Cancel.check c

let parallel_for_ranges ~domains ?chunk ?cancel ~lo ~hi body =
  if hi > lo then begin
    let chunk =
      match chunk with Some c when c > 0 -> c | _ -> default_chunk ~domains ~lo ~hi
    in
    if domains <= 1 then seq_ranges ?cancel ~chunk ~lo ~hi body
    else begin
      let next = Atomic.make lo in
      let stop = Atomic.make false in
      let failure = Atomic.make None in
      let worker () =
        let continue = ref true in
        while !continue && not (Atomic.get stop) do
          let start = Atomic.fetch_and_add next chunk in
          if start >= hi then continue := false
          else begin
            try
              (Atomic.get fault_hook) ();
              match cancel with
              | Some c when Cancel.is_cancelled c -> continue := false
              | _ ->
                Jp_obs.incr Jp_obs.C.pool_tasks;
                body start (min hi (start + chunk))
            with e ->
              record_failure ~stop ~failure ~index:start e
                (Printexc.get_raw_backtrace ())
          end
        done
      in
      run_workers ~domains ~stop ~failure worker;
      reraise_failure failure;
      check_cancel cancel
    end
  end

let parallel_for ~domains ?chunk ?cancel ~lo ~hi body =
  parallel_for_ranges ~domains ?chunk ?cancel ~lo ~hi (fun a b ->
      for i = a to b - 1 do
        body i
      done)

let map_reduce ~domains ?chunk ?cancel ~lo ~hi ~combine ~init map =
  if domains <= 1 then begin
    match cancel with
    | None ->
      let acc = ref init in
      for i = lo to hi - 1 do
        acc := combine !acc (map i)
      done;
      !acc
    | Some c ->
      let chunk =
        match chunk with Some k when k > 0 -> k | _ -> default_chunk ~domains ~lo ~hi
      in
      let acc = ref init in
      let i = ref lo in
      while !i < hi && not (Cancel.is_cancelled c) do
        (Atomic.get fault_hook) ();
        for j = !i to min hi (!i + chunk) - 1 do
          acc := combine !acc (map j)
        done;
        i := !i + chunk
      done;
      Cancel.check c;
      !acc
  end
  else begin
    let partials = Atomic.make [] in
    let chunk =
      match chunk with Some c when c > 0 -> c | _ -> default_chunk ~domains ~lo ~hi
    in
    let next = Atomic.make lo in
    let stop = Atomic.make false in
    let failure = Atomic.make None in
    let worker () =
      let local = ref init in
      let continue = ref true in
      while !continue && not (Atomic.get stop) do
        let start = Atomic.fetch_and_add next chunk in
        if start >= hi then continue := false
        else begin
          try
            (Atomic.get fault_hook) ();
            match cancel with
            | Some c when Cancel.is_cancelled c -> continue := false
            | _ ->
              Jp_obs.incr Jp_obs.C.pool_tasks;
              for i = start to min hi (start + chunk) - 1 do
                local := combine !local (map i)
              done
          with e ->
            record_failure ~stop ~failure ~index:start e
              (Printexc.get_raw_backtrace ())
        end
      done;
      (* lock-free push of the local result *)
      let rec push () =
        let old = Atomic.get partials in
        if not (Atomic.compare_and_set partials old (!local :: old)) then push ()
      in
      push ()
    in
    run_workers ~domains ~stop ~failure worker;
    reraise_failure failure;
    check_cancel cancel;
    List.fold_left combine init (Atomic.get partials)
  end
