module Json = Jp_obs.Json
module Timer = Jp_util.Timer

(* ------------------------------------------------------------------ *)
(* histogram data structure                                            *)

module Hist = struct
  (* Fixed base-√2 geometric bucket ladder starting at 1 µs: 64 finite
     buckets span ~1e-6 s .. ~3e3 s, and everything above lands in the
     overflow bucket.  The bounds are computed once, identically in every
     process, so bucket counts, merges and quantile reads are
     reproducible — only the observed wall-clock values vary. *)
  let n_finite = 64

  let bounds =
    let b = Array.make n_finite 1e-6 in
    let sqrt2 = Float.sqrt 2.0 in
    for i = 1 to n_finite - 1 do
      b.(i) <- b.(i - 1) *. sqrt2
    done;
    b

  let bucket_bounds () = Array.copy bounds

  type t = {
    counts : int array; (* n_finite + 1; last = overflow *)
    mutable total : int;
    mutable vsum : float;
    mutable vmax : float;
  }

  let create () =
    {
      counts = Array.make (n_finite + 1) 0;
      total = 0;
      vsum = 0.0;
      vmax = Float.neg_infinity;
    }

  (* First bucket whose upper bound is >= v (binary search on the fixed
     bounds); NaN and anything above the top bound go to overflow. *)
  let bucket_of v =
    if not (v <= bounds.(n_finite - 1)) then n_finite
    else begin
      let lo = ref 0 and hi = ref (n_finite - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if v <= bounds.(mid) then hi := mid else lo := mid + 1
      done;
      !lo
    end

  let observe h v =
    let i = bucket_of v in
    h.counts.(i) <- h.counts.(i) + 1;
    h.total <- h.total + 1;
    h.vsum <- h.vsum +. v;
    if v > h.vmax then h.vmax <- v

  let count h = h.total

  let sum h = h.vsum

  let max_value h = if h.total = 0 then Float.nan else h.vmax

  let quantile h q =
    if h.total = 0 then Float.nan
    else begin
      let q = Float.min 1.0 (Float.max 0.0 q) in
      let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int h.total))) in
      let i = ref 0 in
      let acc = ref h.counts.(0) in
      while !acc < rank do
        incr i;
        acc := !acc + h.counts.(!i)
      done;
      (* Clamp to the tracked maximum: the bucket upper bound can exceed
         every sample (p99 above max reads wrong), and min keeps both
         error bounds — vmax >= the rank's sample value. *)
      if !i = n_finite then h.vmax else Float.min bounds.(!i) h.vmax
    end

  let buckets h =
    List.init (n_finite + 1) (fun i ->
        ((if i = n_finite then Float.infinity else bounds.(i)), h.counts.(i)))

  let merge_into ~into src =
    for i = 0 to n_finite do
      into.counts.(i) <- into.counts.(i) + src.counts.(i)
    done;
    into.total <- into.total + src.total;
    into.vsum <- into.vsum +. src.vsum;
    if src.vmax > into.vmax then into.vmax <- src.vmax

  let copy h =
    { counts = Array.copy h.counts; total = h.total; vsum = h.vsum; vmax = h.vmax }

  let clear h =
    Array.fill h.counts 0 (n_finite + 1) 0;
    h.total <- 0;
    h.vsum <- 0.0;
    h.vmax <- Float.neg_infinity
end

(* ------------------------------------------------------------------ *)
(* registries                                                          *)

type histogram = { hname : string; hlock : Mutex.t; hist : Hist.t }

type gauge = { gname : string; gcell : int Atomic.t }

type snap = { ts : float; snap_seq : int; values : (string * int) list }

let registry_lock = Mutex.create ()

let histograms : histogram list ref =
  ref [] [@@jp.domain_safe "every access is guarded by registry_lock"]

let gauges : gauge list ref =
  ref [] [@@jp.domain_safe "every access is guarded by registry_lock"]

let snaps : snap list ref =
  ref [] [@@jp.domain_safe "every access is guarded by registry_lock"]

let snap_seq =
  ref 0 [@@jp.domain_safe "every access is guarded by registry_lock"]

let histogram name =
  Mutex.lock registry_lock;
  let h =
    match List.find_opt (fun h -> h.hname = name) !histograms with
    | Some h -> h
    | None ->
      let h = { hname = name; hlock = Mutex.create (); hist = Hist.create () } in
      histograms := h :: !histograms;
      h
  in
  Mutex.unlock registry_lock;
  h

let observe h v =
  if Jp_obs.recording () then begin
    Mutex.lock h.hlock;
    Hist.observe h.hist v;
    Mutex.unlock h.hlock
  end

let histogram_value h =
  Mutex.lock h.hlock;
  let c = Hist.copy h.hist in
  Mutex.unlock h.hlock;
  c

let histogram_values () =
  Mutex.lock registry_lock;
  let hs = !histograms in
  Mutex.unlock registry_lock;
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (List.map (fun h -> (h.hname, histogram_value h)) hs)

module Local = struct
  type t = { target : histogram; acc : Hist.t }

  let create target = { target; acc = Hist.create () }

  let observe l v = Hist.observe l.acc v

  let publish l =
    if Jp_obs.recording () && Hist.count l.acc > 0 then begin
      Mutex.lock l.target.hlock;
      Hist.merge_into ~into:l.target.hist l.acc;
      Mutex.unlock l.target.hlock
    end;
    Hist.clear l.acc
end

let gauge name =
  Mutex.lock registry_lock;
  let g =
    match List.find_opt (fun g -> g.gname = name) !gauges with
    | Some g -> g
    | None ->
      let g = { gname = name; gcell = Atomic.make 0 } in
      gauges := g :: !gauges;
      g
  in
  Mutex.unlock registry_lock;
  g

let set_gauge g v = if Jp_obs.recording () then Atomic.set g.gcell v

let add_gauge g d =
  if Jp_obs.recording () then ignore (Atomic.fetch_and_add g.gcell d)

let gauge_value g = Atomic.get g.gcell

let gauge_values () =
  Mutex.lock registry_lock;
  let gs = !gauges in
  Mutex.unlock registry_lock;
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (List.map (fun g -> (g.gname, Atomic.get g.gcell)) gs)

let snapshot ?now () =
  if Jp_obs.recording () then begin
    let values = gauge_values () in
    let ts = match now with Some t -> t | None -> Timer.now () in
    Mutex.lock registry_lock;
    snaps := { ts; snap_seq = !snap_seq; values } :: !snaps;
    Stdlib.incr snap_seq;
    Mutex.unlock registry_lock
  end

let snapshots () =
  Mutex.lock registry_lock;
  let ss = !snaps in
  Mutex.unlock registry_lock;
  let sorted =
    List.sort
      (fun a b ->
        match Float.compare a.ts b.ts with
        | 0 -> Int.compare a.snap_seq b.snap_seq
        | n -> n)
      ss
  in
  List.map (fun s -> (s.ts, s.values)) sorted

(* ------------------------------------------------------------------ *)
(* well-known instruments                                              *)

module H = struct
  let service_queued_seconds = histogram "service.queued_seconds"

  let service_ran_seconds = histogram "service.ran_seconds"
end

module G = struct
  let queue_depth = gauge "service.queue_depth"

  let inflight = gauge "service.inflight"

  let cache_bytes = gauge "cache.resident_bytes"

  let tile_bytes = gauge "tile.resident_bytes"

  let brownout = gauge "service.brownout"

  let est_wait_us = gauge "service.est_wait_us"
end

(* ------------------------------------------------------------------ *)
(* OpenMetrics text exposition                                         *)

(* Prometheus metric names admit [a-zA-Z0-9_:]; our dotted obs names map
   dots (and anything else) to underscores under a "jp_" prefix. *)
let metric_name name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      let ok =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
        || c = '_'
      in
      if not ok then Bytes.set b i '_')
    b;
  "jp_" ^ Bytes.to_string b

(* Deterministic shortest-ish float rendering shared by bucket bounds and
   sums; OpenMetrics allows any decimal or scientific literal. *)
let float_str v = Printf.sprintf "%.9g" v

(* cache.bytes and tile.bytes are maintained as counter cells for delta
   convenience but are semantically levels — expose them with the honest
   type.  (tile.peak_bytes is monotone, so it stays a counter.) *)
let gauge_typed_counters = [ "cache.bytes"; "tile.bytes" ]

let exposition () =
  let b = Buffer.create 4096 in
  List.iter
    (fun (name, v) ->
      let n = metric_name name in
      if List.mem name gauge_typed_counters then begin
        Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" n);
        Buffer.add_string b (Printf.sprintf "%s %d\n" n v)
      end
      else begin
        Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" n);
        Buffer.add_string b (Printf.sprintf "%s_total %d\n" n v)
      end)
    (Jp_obs.counter_values ());
  List.iter
    (fun (name, v) ->
      let n = metric_name name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" n);
      Buffer.add_string b (Printf.sprintf "%s %d\n" n v))
    (gauge_values ());
  List.iter
    (fun (name, h) ->
      let n = metric_name name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" n);
      let cum = ref 0 in
      List.iter
        (fun (le, c) ->
          cum := !cum + c;
          let le_s = if le = Float.infinity then "+Inf" else float_str le in
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n le_s !cum))
        (Hist.buckets h);
      Buffer.add_string b (Printf.sprintf "%s_sum %s\n" n (float_str (Hist.sum h)));
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" n (Hist.count h)))
    (histogram_values ());
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

let write_exposition ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (exposition ()))

(* ------------------------------------------------------------------ *)
(* chrome-trace counter lane                                           *)

let counter_events ~base =
  List.concat_map
    (fun (ts, values) ->
      List.map
        (fun (name, v) ->
          Json.Obj
            [
              ("name", Json.String name);
              ("cat", Json.String "metrics");
              ("ph", Json.String "C");
              ("ts", Json.Float ((ts -. base) *. 1e6));
              ("pid", Json.Int 1);
              ("tid", Json.Int 0);
              ("args", Json.Obj [ ("value", Json.Int v) ]);
            ])
        values)
    (snapshots ())

let chrome_trace () = Jp_obs.chrome_trace ~extra:counter_events ()

let chrome_trace_string () = Json.to_string (chrome_trace ())

(* ------------------------------------------------------------------ *)
(* reset                                                               *)

let reset () =
  Mutex.lock registry_lock;
  let hs = !histograms and gs = !gauges in
  snaps := [];
  snap_seq := 0;
  Mutex.unlock registry_lock;
  List.iter
    (fun h ->
      Mutex.lock h.hlock;
      Hist.clear h.hist;
      Mutex.unlock h.hlock)
    hs;
  List.iter (fun g -> Atomic.set g.gcell 0) gs
