(** Aggregate metrics for the serving spine: latency histograms, gauges,
    timestamped gauge snapshots and an OpenMetrics text exposition.

    {!Jp_obs} answers "what did this one query do" (spans, counters,
    plan-vs-actual); this module answers "what is the service doing" —
    distributions instead of anecdotes.  It follows the same contract:

    - {b Gated}: {!observe}, {!set_gauge}, {!add_gauge} and {!snapshot}
      are dropped unless [Jp_obs.recording ()] — one flag check, no
      allocation, no lock — so they are safe to leave in serving paths.
    - {b Deterministic}: histogram bucket boundaries are a fixed base-√2
      geometric ladder, so bucket counts, merges and quantile reads are
      reproducible for a fixed input; wall-clock {e values} are the only
      nondeterminism, and tests inject a fake clock through
      [snapshot ?now].
    - {b Chunk granularity}: never observe per tuple.  Hot loops use a
      {!Local} accumulator and publish once per chunk/phase; jp_lint's
      [hot-poll] rule flags {!observe}/{!set_gauge}/{!add_gauge}/
      {!snapshot} at loop depth >= 2 (the {!Local.observe} call is
      exempt — accumulating locally is the approved pattern). *)

(** {1 Histogram data structure}

    [Hist.t] is the plain, single-domain histogram value: not registered,
    not gated, not locked.  The registered layer below and client-side
    summaries (e.g. the CLI latency table over an array of reports) both
    build on it. *)
module Hist : sig
  type t

  val create : unit -> t

  val bucket_bounds : unit -> float array
  (** The shared bucket upper bounds: [b.(0) = 1e-6] and
      [b.(i) = b.(i-1) *. sqrt 2.] for 64 finite buckets (≈ 1 µs to
      ≈ 50 min), plus an implicit [+Inf] overflow bucket.  Fresh copy. *)

  val observe : t -> float -> unit
  (** Add one value.  Values at or below the lowest bound land in the
      first bucket; values above the highest finite bound land in the
      overflow bucket.  Not thread-safe — callers serialize. *)

  val count : t -> int

  val sum : t -> float

  val max_value : t -> float
  (** Largest observed value; [nan] when empty. *)

  val quantile : t -> float -> float
  (** [quantile h q] for [q] in [[0, 1]] ([q] is clamped): the upper
      bound of the bucket holding the nearest-rank [q]-quantile sample,
      clamped to {!max_value} so no quantile reads above the observed
      maximum.  Because bounds grow by √2, the estimate [e] of an exact
      sample value [v >= 1e-6] satisfies [v <= e <= v *. sqrt 2.];
      values below [1e-6] report as [1e-6]; overflow-bucket quantiles
      report the tracked {!max_value}.  [nan] when empty. *)

  val buckets : t -> (float * int) list
  (** Per-bucket (upper bound, count) pairs in bound order, ending with
      the [(infinity, overflow)] bucket. *)

  val merge_into : into:t -> t -> unit
  (** Add every bucket count (and [sum]/[count]/[max_value]) of the
      second histogram into [into].  The source is unchanged.  Merging is
      commutative on bucket counts, totals and quantiles because the
      bounds are fixed. *)

  val copy : t -> t

  val clear : t -> unit
end

(** {1 Registered histograms} *)

type histogram
(** A named, process-global, mutex-protected histogram.  Observations are
    dropped while recording is off. *)

val histogram : string -> histogram
(** Find-or-create by name (names are unique; reuse returns the same
    histogram).  Follow the obs naming style — dotted lowercase with a
    unit suffix, e.g. ["service.ran_seconds"]. *)

val observe : histogram -> float -> unit
(** Record one value (dropped while recording is off).  Per-query or
    per-phase granularity only — never per tuple (jp_lint [hot-poll]). *)

val histogram_value : histogram -> Hist.t
(** A consistent copy of the histogram's current state. *)

val histogram_values : unit -> (string * Hist.t) list
(** Every registered histogram (copied), sorted by name. *)

(** Domain-local accumulation for hot paths: observe into a private
    [Hist.t] with no gate and no lock, then {!Local.publish} one bulk
    merge at the chunk/phase boundary (the publish is gated). *)
module Local : sig
  type t

  val create : histogram -> t

  val observe : t -> float -> unit
  (** Ungated, lock-free; allowed inside hot loops. *)

  val publish : t -> unit
  (** Merge the accumulated values into the target histogram (one lock,
      dropped while recording is off) and clear the accumulator. *)
end

(** {1 Gauges} *)

type gauge
(** A named process-global level (queue depth, in-flight queries,
    resident bytes): an atomic int sampled by {!snapshot}.  Updates are
    dropped while recording is off. *)

val gauge : string -> gauge
(** Find-or-create by name. *)

val set_gauge : gauge -> int -> unit

val add_gauge : gauge -> int -> unit

val gauge_value : gauge -> int

val gauge_values : unit -> (string * int) list
(** Every registered gauge, sorted by name. *)

(** {1 Snapshots} *)

val snapshot : ?now:float -> unit -> unit
(** Record a timestamped sample of every registered gauge (dropped while
    recording is off).  [now] defaults to the wall clock; tests pass a
    fake clock to make snapshot timestamps deterministic.  Cadence: once
    per query / chunk / phase — never per tuple. *)

val snapshots : unit -> (float * (string * int) list) list
(** All recorded snapshots ordered by (timestamp, recording order) —
    recording order breaks timestamp ties deterministically. *)

(** {1 Well-known instruments} *)

(** Histograms maintained by the instrumented service. *)
module H : sig
  val service_queued_seconds : histogram
  (** Admission-to-first-execution latency, one observation per executed
      query ({!Jp_service}). *)

  val service_ran_seconds : histogram
  (** Execution latency (all attempts and backoffs), one observation per
      executed query ({!Jp_service}). *)
end

(** Gauges maintained by the instrumented service and cache. *)
module G : sig
  val queue_depth : gauge
  (** Jobs waiting in the {!Jp_service} submission queue. *)

  val inflight : gauge
  (** Queries currently executing on {!Jp_service} worker domains. *)

  val cache_bytes : gauge
  (** Resident {!Jp_cache} footprint in bytes (sum across caches),
      mirroring the [cache.bytes] counter so snapshots sample it over
      time.  Registered as ["cache.resident_bytes"]. *)

  val tile_bytes : gauge
  (** Resident operand-tile footprint of the tiled heavy-part product
      (sum across live tile stores), mirroring the [tile.bytes] counter
      the same way {!cache_bytes} mirrors [cache.bytes].  Registered as
      ["tile.resident_bytes"]; snapshots carry it into the OpenMetrics
      exposition and the Chrome-trace counter lanes. *)

  val brownout : gauge
  (** 1 while the {!Jp_service.Overload} controller is in brownout
      (degraded plans forced), 0 otherwise. *)

  val est_wait_us : gauge
  (** The overload controller's most recent queue-wait estimate, in
      microseconds (gauges are ints), refreshed once per admission. *)
end

(** {1 Export} *)

val exposition : unit -> string
(** OpenMetrics / Prometheus text exposition of everything recorded:
    every {!Jp_obs} counter (as [# TYPE ... counter] with a [_total]
    sample; the [cache.bytes] footprint counter is typed [gauge]), every
    registered gauge, and every registered histogram
    ([_bucket{le="..."}] cumulative counts, [_sum], [_count]), ending
    with [# EOF].  Names are prefixed [jp_] with non-alphanumeric
    characters mapped to [_]; families are grouped counters, gauges,
    histograms, each sorted by name — the output is deterministic up to
    the recorded values. *)

val write_exposition : path:string -> unit
(** Write {!exposition} to [path] (truncating). *)

val counter_events : base:float -> Jp_obs.Json.t list
(** One Chrome-trace ["C"] (counter) event per gauge per snapshot, with
    [ts] microseconds relative to [base] — the lane that shows queue
    depth / in-flight / cache bytes evolving under the span lanes. *)

val chrome_trace : unit -> Jp_obs.Json.t
(** [Jp_obs.chrome_trace] plus {!counter_events} sampled at the recorded
    snapshot times. *)

val chrome_trace_string : unit -> string

val reset : unit -> unit
(** Clear every registered histogram, zero every gauge, drop all
    snapshots.  (Does not touch {!Jp_obs} state — call [Jp_obs.reset]
    separately.) *)
