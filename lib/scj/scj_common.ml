module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs

let element_order_infrequent r =
  let ne = Relation.dst_count r in
  let order = Array.init ne (fun e -> e) in
  Array.sort
    (fun e1 e2 ->
      let l1 = Relation.deg_dst r e1 and l2 = Relation.deg_dst r e2 in
      if l1 <> l2 then Int.compare l1 l2 else Int.compare e1 e2)
    order;
  let rank = Array.make ne 0 in
  Array.iteri (fun i e -> rank.(e) <- i) order;
  rank

let sorted_by_rank r ~rank a =
  let elems = Array.copy (Relation.adj_src r a) in
  Array.sort (fun x y -> Int.compare rank.(x) rank.(y)) elems;
  elems

let rows_to_pairs rows =
  Pairs.of_rows_unchecked
    (Array.map
       (fun v ->
         Jp_util.Vec.sort_dedup v;
         Jp_util.Vec.to_array v)
       rows)
