module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Vec = Jp_util.Vec

let join ?(domains = 1) ?guard ?cancel ?cache r =
  Jp_obs.span "scj.mm_join" (fun () ->
      let memo =
        match cache with
        | None -> None
        | Some c -> Some (Jp_cache.two_path_memo c ~r ~s:r)
      in
      let counted =
        Joinproj.Two_path.project_counts ~domains ?guard ?cancel ?memo ~r ~s:r
          ()
      in
      (match cancel with Some t -> Jp_util.Cancel.check t | None -> ());
      Jp_obs.span "scj.containment_filter" (fun () ->
          let rows =
            Array.init (Relation.src_count r) (fun _ -> Vec.create ~capacity:0 ())
          in
          Jp_relation.Counted_pairs.iter
            (fun a b k ->
              if a <> b && k = Relation.deg_src r a then Vec.push rows.(a) b)
            counted;
          Scj_common.rows_to_pairs rows))
