module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Vec = Jp_util.Vec

type node = {
  elem : int; (* -1 at root *)
  mutable terminals : int list;
  children : (int, node) Hashtbl.t;
}

let new_node elem = { elem; terminals = []; children = Hashtbl.create 4 }

let build_tree r ~rank =
  let root = new_node (-1) in
  for a = 0 to Relation.src_count r - 1 do
    if Relation.deg_src r a > 0 then begin
      let elems = Scj_common.sorted_by_rank r ~rank a in
      let node = ref root in
      Array.iter
        (fun e ->
          node :=
            match
              Hashtbl.find_opt !node.children e
              [@jp.lint.allow "hashtbl-dedup"
                "per-node trie children: tiny tables keyed by sparse \
                 element ids, a stamp vector would cost O(n) per node"]
            with
            | Some child -> child
            | None ->
              let child = new_node e in
              (Hashtbl.add !node.children e child
              [@jp.lint.allow "hashtbl-dedup"
                "same per-node trie children tables"]);
              child)
        elems;
      !node.terminals <- a :: !node.terminals
    end
  done;
  root

let join r =
  let rank = Scj_common.element_order_infrequent r in
  let root = build_tree r ~rank in
  let rows = Array.init (Relation.src_count r) (fun _ -> Vec.create ~capacity:0 ()) in
  (* DFS: candidates = intersection of inverted lists along the path.
     The root's candidate set is conceptually "all sets"; children of the
     root start from their element's full inverted list. *)
  let rec dfs node candidates =
    List.iter
      (fun a ->
        Array.iter (fun b -> if b <> a then Vec.push rows.(a) b) candidates)
      node.terminals;
    Hashtbl.iter
      (fun e child ->
        let next = Jp_util.Sorted.intersect candidates (Relation.adj_dst r e) in
        if Array.length next > 0 then dfs child next)
      node.children
  in
  Hashtbl.iter
    (fun e child -> dfs child (Array.copy (Relation.adj_dst r e)))
    root.children;
  Scj_common.rows_to_pairs rows
