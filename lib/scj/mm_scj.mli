(** Set containment via the counted join-project (Section 4, "SCJ").

    a ⊆ b  ⟺  |a ∩ b| = |a|, so one counted self-join of the family
    answers every containment at once.  This wins exactly when the
    join-project output is close to the SCJ result (the paper's dense
    datasets) and parallelizes like any MMJoin. *)

module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs

val join :
  ?domains:int ->
  ?guard:Jp_adaptive.Guard.config ->
  ?cancel:Jp_util.Cancel.t ->
  ?cache:Jp_cache.t ->
  Relation.t ->
  Pairs.t
(** Directed containment pairs (a, b): set a ⊆ set b, a ≠ b.  [guard]
    supervises the underlying counted join-project
    (see {!Joinproj.Two_path.project_counts}); [cache] serves its
    prepared statistics and heavy count product from {!Jp_cache} (same
    byte-identical-result guarantee as [guard]/[cancel] when absent). *)
