module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Counted_pairs = Jp_relation.Counted_pairs
module Cancel = Jp_util.Cancel

let all_xs r = Array.init (Relation.src_count r) (fun i -> i)

(* Rows expanded between cancellation polls in the cancellable variants;
   mirrors the guard-checkpoint granularity (Guard.default.check_every). *)
let poll_rows = 4096

(* One worker expands the x values [xs.(lo..hi-1)] into [rows], using a
   stamp vector sized to dom(z).  Stamps avoid clearing between x's: a cell
   is live iff it holds the current stamp — and because the stamp is the
   global index [idx], the same scratch can be reused across sub-ranges of
   one worker's range (indices never repeat). *)
let expand_scratch ~stamps ~buf ~r ~s ~keep_y ~keep_zy ~rows ~xs lo hi =
  let obs = Jp_obs.recording () in
  let probes = ref 0 and misses = ref 0 in
  for idx = lo to hi - 1 do
    let a = xs.(idx) in
    Jp_util.Vec.clear buf;
    let stamp = idx in
    Array.iter
      (fun b ->
        if keep_y b then begin
          let zs = Relation.adj_dst s b in
          if obs then probes := !probes + Array.length zs;
          Array.iter
            (fun c ->
              if keep_zy c b && Array.unsafe_get stamps c <> stamp then begin
                Array.unsafe_set stamps c stamp;
                Jp_util.Vec.push buf c
              end)
            zs
        end)
      (Relation.adj_src r a);
    if obs then misses := !misses + Jp_util.Vec.length buf;
    Jp_util.Vec.sort_dedup buf;
    rows.(a) <- Jp_util.Vec.to_array buf
  done;
  if obs then begin
    Jp_obs.add Jp_obs.C.light_probes !probes;
    Jp_obs.add Jp_obs.C.stamp_misses !misses;
    Jp_obs.add Jp_obs.C.stamp_hits (!probes - !misses)
  end

let expand_range ~r ~s ~keep_y ~keep_zy ~rows ~xs lo hi =
  let stamps = Array.make (Relation.src_count s) (-1) in
  let buf = Jp_util.Vec.create ~capacity:256 () in
  expand_scratch ~stamps ~buf ~r ~s ~keep_y ~keep_zy ~rows ~xs lo hi

let expand_counts_scratch ~stamps ~counts ~buf ~r ~s ~keep_y ~keep_zy ~rows ~xs
    lo hi =
  let obs = Jp_obs.recording () in
  let probes = ref 0 and misses = ref 0 in
  for idx = lo to hi - 1 do
    let a = xs.(idx) in
    Jp_util.Vec.clear buf;
    let stamp = idx in
    Array.iter
      (fun b ->
        if keep_y b then begin
          let zs = Relation.adj_dst s b in
          if obs then probes := !probes + Array.length zs;
          Array.iter
            (fun c ->
              if keep_zy c b then
                if Array.unsafe_get stamps c <> stamp then begin
                  Array.unsafe_set stamps c stamp;
                  Array.unsafe_set counts c 1;
                  Jp_util.Vec.push buf c
                end
                else Array.unsafe_set counts c (Array.unsafe_get counts c + 1))
            zs
        end)
      (Relation.adj_src r a);
    if obs then misses := !misses + Jp_util.Vec.length buf;
    Jp_util.Vec.sort_dedup buf;
    let zs = Jp_util.Vec.to_array buf in
    let cs = Array.map (fun c -> counts.(c)) zs in
    rows.(a) <- (zs, cs)
  done;
  if obs then begin
    Jp_obs.add Jp_obs.C.light_probes !probes;
    Jp_obs.add Jp_obs.C.stamp_misses !misses;
    Jp_obs.add Jp_obs.C.stamp_hits (!probes - !misses)
  end

let expand_counts_range ~r ~s ~keep_y ~keep_zy ~rows ~xs lo hi =
  let nz = Relation.src_count s in
  let stamps = Array.make nz (-1) in
  let counts = Array.make nz 0 in
  let buf = Jp_util.Vec.create ~capacity:256 () in
  expand_counts_scratch ~stamps ~counts ~buf ~r ~s ~keep_y ~keep_zy ~rows ~xs
    lo hi

let default_filters keep_y keep_zy =
  let keep_y = match keep_y with Some f -> f | None -> fun _ -> true in
  let keep_zy = match keep_zy with Some f -> f | None -> fun _ _ -> true in
  (keep_y, keep_zy)

(* Static split: one contiguous range per domain so each worker allocates
   its dom(z)-sized scratch exactly once. *)
let run_split ~domains ~n body =
  if domains <= 1 || n = 0 then body 0 n
  else begin
    let per = (n + domains - 1) / domains in
    Jp_parallel.Pool.parallel_for_ranges ~domains ~chunk:per ~lo:0 ~hi:n body
  end

(* Cancellable worker body: sub-chunk the range so the token is polled
   every [poll_rows] x's, reusing the scratch [alloc ()] produced across
   sub-chunks.  Workers stop gracefully; the coordinator raises after the
   split returns. *)
let run_split_cancel ~cancel ~domains ~n ~alloc body =
  run_split ~domains ~n (fun lo hi ->
      let scratch = alloc () in
      let i = ref lo in
      while !i < hi && not (Cancel.is_cancelled cancel) do
        let j = min hi (!i + poll_rows) in
        body scratch !i j;
        i := j
      done);
  Cancel.check cancel

let project ?(domains = 1) ?cancel ?xs ?keep_y ?keep_zy ~r ~s () =
  Jp_obs.span "wcoj.expand" (fun () ->
      let keep_y, keep_zy = default_filters keep_y keep_zy in
      let xs = match xs with Some a -> a | None -> all_xs r in
      let rows = Array.make (Relation.src_count r) [||] in
      (match cancel with
      | None ->
        run_split ~domains ~n:(Array.length xs) (fun lo hi ->
            expand_range ~r ~s ~keep_y ~keep_zy ~rows ~xs lo hi)
      | Some c ->
        let alloc () =
          ( Array.make (Relation.src_count s) (-1),
            Jp_util.Vec.create ~capacity:256 () )
        in
        run_split_cancel ~cancel:c ~domains ~n:(Array.length xs) ~alloc
          (fun (stamps, buf) lo hi ->
            expand_scratch ~stamps ~buf ~r ~s ~keep_y ~keep_zy ~rows ~xs lo hi));
      Pairs.of_rows_unchecked rows)

let project_counts ?(domains = 1) ?cancel ?xs ?keep_y ?keep_zy ~r ~s () =
  Jp_obs.span "wcoj.expand_counts" (fun () ->
      let keep_y, keep_zy = default_filters keep_y keep_zy in
      let xs = match xs with Some a -> a | None -> all_xs r in
      let rows = Array.make (Relation.src_count r) ([||], [||]) in
      (match cancel with
      | None ->
        run_split ~domains ~n:(Array.length xs) (fun lo hi ->
            expand_counts_range ~r ~s ~keep_y ~keep_zy ~rows ~xs lo hi)
      | Some c ->
        let nz = Relation.src_count s in
        let alloc () =
          ( Array.make nz (-1),
            Array.make nz 0,
            Jp_util.Vec.create ~capacity:256 () )
        in
        run_split_cancel ~cancel:c ~domains ~n:(Array.length xs) ~alloc
          (fun (stamps, counts, buf) lo hi ->
            expand_counts_scratch ~stamps ~counts ~buf ~r ~s ~keep_y ~keep_zy
              ~rows ~xs lo hi));
      Counted_pairs.of_rows_unchecked rows)

let count_distinct ?xs ?keep_y ~r ~s () =
  let keep_y = match keep_y with Some f -> f | None -> fun _ -> true in
  let xs = match xs with Some a -> a | None -> all_xs r in
  let stamps = Array.make (Relation.src_count s) (-1) in
  let total = ref 0 in
  Array.iteri
    (fun idx a ->
      Array.iter
        (fun b ->
          if keep_y b then
            Array.iter
              (fun c ->
                if Array.unsafe_get stamps c <> idx then begin
                  Array.unsafe_set stamps c idx;
                  incr total
                end)
              (Relation.adj_dst s b))
        (Relation.adj_src r a))
    xs;
  !total
