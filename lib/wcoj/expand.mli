(** Per-x expansion joins with dedup-vector deduplication.

    This is the paper's Section-6 inner loop: for a fixed x value [a],
    union the inverted lists L(b) of its neighbours b, deduplicating with a
    reusable stamp vector instead of a hash table (no rehashing, no upfront
    |OUT| reservation).  It implements:

    - the projection of the *full* 2-path join (the WCOJ-then-project
      baseline, and the combinatorial heavy-part strategy of Non-MMJoin);
    - the light sub-joins R⁻ ⋈ S and R ⋈ S⁻ of Algorithm 1, via the
      [xs]/[keep_y]/[keep_zy] filters;
    - the counting variant needed by SSJ/SCJ, which accumulates witness
      multiplicities instead of booleans.

    All variants parallelize over x with per-worker scratch (coordination
    free, as exploited by Figures 4d/4e).

    With [?cancel] the expansion polls the token every few thousand x's
    (per worker) and raises {!Jp_util.Cancel.Cancelled}; without it the
    code path is exactly the historical one. *)

module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Counted_pairs = Jp_relation.Counted_pairs
module Cancel = Jp_util.Cancel

val project :
  ?domains:int ->
  ?cancel:Cancel.t ->
  ?xs:int array ->
  ?keep_y:(int -> bool) ->
  ?keep_zy:(int -> int -> bool) ->
  r:Relation.t ->
  s:Relation.t ->
  unit ->
  Pairs.t
(** [project ~r ~s ()] is π{_xz}(R(x,y) ⋈ S(z,y)) as deduplicated pairs.
    [xs] restricts the driving x values (default: all of dom(x));
    [keep_y] filters join values y; [keep_zy z y] filters S tuples.
    Rows for x values outside [xs] are empty. *)

val project_counts :
  ?domains:int ->
  ?cancel:Cancel.t ->
  ?xs:int array ->
  ?keep_y:(int -> bool) ->
  ?keep_zy:(int -> int -> bool) ->
  r:Relation.t ->
  s:Relation.t ->
  unit ->
  Counted_pairs.t
(** Counting variant: multiplicity of (x, z) = number of surviving
    witnesses y. *)

val count_distinct :
  ?xs:int array ->
  ?keep_y:(int -> bool) ->
  r:Relation.t ->
  s:Relation.t ->
  unit ->
  int
(** |π{_xz}(R ⋈ S)| without materializing the pairs (still O(join) time,
    O(dom z) space). *)
