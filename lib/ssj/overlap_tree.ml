module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Vec = Jp_util.Vec

type node = {
  elem : int; (* -1 at the root *)
  mutable terminals : int list; (* member sets ending here *)
  children : (int, node) Hashtbl.t;
}

let new_node elem = { elem; terminals = []; children = Hashtbl.create 4 }

let similar_pairs ?members ~c r =
  if c < 1 then invalid_arg "Overlap_tree.similar_pairs: c must be >= 1";
  let n = Relation.src_count r in
  let members =
    match members with
    | Some m -> m
    | None ->
      let v = Vec.create () in
      for a = 0 to n - 1 do
        if Relation.deg_src r a > 0 then Vec.push v a
      done;
      Vec.to_array v
  in
  let is_member = Array.make n false in
  Array.iter (fun a -> is_member.(a) <- true) members;
  (* Member-restricted inverted lists and the global element order
     (list length descending). *)
  let ne = Relation.dst_count r in
  let inv = Array.make ne [||] in
  for e = 0 to ne - 1 do
    let full = Relation.adj_dst r e in
    let kept = Array.of_seq (Seq.filter (fun s -> is_member.(s)) (Array.to_seq full)) in
    inv.(e) <- kept
  done;
  let order = Array.init ne (fun e -> e) in
  Array.sort
    (fun e1 e2 ->
      let l1 = Array.length inv.(e1) and l2 = Array.length inv.(e2) in
      if l1 <> l2 then Int.compare l2 l1 else Int.compare e1 e2)
    order;
  let rank = Array.make ne 0 in
  Array.iteri (fun i e -> rank.(e) <- i) order;
  (* Build the prefix tree over member sets (elements in rank order).
     Sets smaller than c cannot join any pair. *)
  let root = new_node (-1) in
  Array.iter
    (fun a ->
      let elems = Array.copy (Relation.adj_src r a) in
      if Array.length elems >= c then begin
        Array.sort (fun x y -> Int.compare rank.(x) rank.(y)) elems;
        let node = ref root in
        Array.iter
          (fun e ->
            node :=
              match
                Hashtbl.find_opt !node.children e
                [@jp.lint.allow "hashtbl-dedup"
                  "per-node trie children: tiny tables keyed by sparse \
                   element ids, a stamp vector would cost O(n) per node"]
              with
              | Some child -> child
              | None ->
                let child = new_node e in
                (Hashtbl.add !node.children e child
                [@jp.lint.allow "hashtbl-dedup"
                  "same per-node trie children tables"]);
                child)
          elems;
        !node.terminals <- a :: !node.terminals
      end)
    members;
  (* DFS with incremental overlap counts. *)
  let counts = Array.make n 0 in
  let reached = Vec.create () in
  let rows = Array.init n (fun _ -> Vec.create ~capacity:0 ()) in
  let rec dfs node =
    let mark = Vec.length reached in
    if node.elem >= 0 then
      Array.iter
        (fun s ->
          counts.(s) <- counts.(s) + 1;
          if counts.(s) = c then Vec.push reached s)
        inv.(node.elem);
    List.iter
      (fun a ->
        (* [reached] is O: the sets with overlap >= c against the full
           path, which at a terminal equals set a.  Emit each unordered
           pair once (smaller id keys the row). *)
        for i = 0 to Vec.length reached - 1 do
          let s = Vec.get reached i in
          if s < a then Vec.push rows.(s) a
        done)
      node.terminals;
    Hashtbl.iter (fun _ child -> dfs child) node.children;
    if node.elem >= 0 then begin
      Array.iter (fun s -> counts.(s) <- counts.(s) - 1) inv.(node.elem);
      (* entries pushed at this node sit above [mark]: pop the frame *)
      Vec.truncate reached mark
    end
  in
  dfs root;
  Pairs.of_rows_unchecked
    (Array.map
       (fun v ->
         Vec.sort_dedup v;
         Vec.to_array v)
       rows)
