module Relation = Jp_relation.Relation
module Tuples = Jp_relation.Tuples

let joint_overlap rels tuple =
  if Array.length rels <> Array.length tuple then invalid_arg "Multi.joint_overlap";
  let sets = Array.map2 (fun r a -> Relation.adj_src r a) rels tuple in
  let count = ref 0 in
  Jp_wcoj.Leapfrog.iter sets (fun _ -> incr count);
  !count

let join ~c rels =
  if Array.length rels < 2 then invalid_arg "Multi.join: arity must be >= 2";
  if c < 1 then invalid_arg "Multi.join: c must be >= 1";
  (* accumulate witness counts per tuple over the per-element cross
     products; tuples reaching c are emitted once *)
  let counts : (int array, int) Hashtbl.t = Hashtbl.create 4096 in
  let k = Array.length rels in
  let dims = Array.map Relation.src_count rels in
  let builder = Tuples.create_builder ~arity:k ~dims in
  Jp_wcoj.Star.iter_full rels (fun tuple _y ->
      match
        Hashtbl.find_opt counts tuple
        [@jp.lint.allow "hashtbl-dedup"
          "witness counts are keyed by int-array tuples; structured keys \
           with no dense int encoding to stamp"]
      with
      | Some n ->
        let n = n + 1 in
        (Hashtbl.replace counts tuple n
        [@jp.lint.allow "hashtbl-dedup" "same int-array tuple keys"]);
        if n = c then Tuples.add builder tuple
      | None ->
        (Hashtbl.replace counts (Array.copy tuple) 1
        [@jp.lint.allow "hashtbl-dedup" "same int-array tuple keys"]);
        if c = 1 then Tuples.add builder tuple);
  Tuples.build builder
