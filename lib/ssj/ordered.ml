module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs

let sort_desc triples =
  Array.sort
    (fun (x1, z1, c1) (x2, z2, c2) ->
      if c1 <> c2 then Int.compare c2 c1
      else match Int.compare x1 x2 with 0 -> Int.compare z1 z2 | n -> n)
    triples;
  triples

let via_counts ?(domains = 1) ~c r =
  let counted = Mm_ssj.join_counted ~domains r in
  let acc = ref [] in
  Jp_relation.Counted_pairs.iter
    (fun i j k -> if j > i && k >= c then acc := (i, j, k) :: !acc)
    counted;
  sort_desc (Array.of_list !acc)

let top_k ?(domains = 1) ~k ~c r =
  if k < 0 then invalid_arg "Ordered.top_k";
  let counted = Mm_ssj.join_counted ~domains r in
  let n = Relation.src_count r in
  (* Strict priority encoding so the heap minimum is always the entry to
     evict: higher overlap wins, ties resolved towards smaller (i, j).
     count <= n and i*n + j < n^2, so the encoding fits a native int for
     any relation this library can hold in memory. *)
  let encode i j count = (count * n * n) + (n * n) - 1 - ((i * n) + j) in
  let decode p =
    let count = p / (n * n) in
    let rank = (n * n) - 1 - (p mod (n * n)) in
    (rank / n, rank mod n, count)
  in
  let heap = Jp_util.Heap.create () in
  Jp_relation.Counted_pairs.iter
    (fun i j count ->
      if j > i && count >= c && k > 0 then begin
        let p = encode i j count in
        if Jp_util.Heap.size heap < k then Jp_util.Heap.push heap ~priority:p ()
        else if p > Jp_util.Heap.min_priority heap then begin
          ignore (Jp_util.Heap.pop_min heap);
          Jp_util.Heap.push heap ~priority:p ()
        end
      end)
    counted;
  sort_desc
    (Array.of_list (List.map (fun (p, ()) -> decode p) (Jp_util.Heap.to_list heap)))

let via_pairs r ~c pairs =
  let acc = ref [] in
  Pairs.iter
    (fun i j ->
      let k = Common.overlap r i j in
      if k >= c then acc := (i, j, k) :: !acc)
    pairs;
  sort_desc (Array.of_list !acc)
