module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Vec = Jp_util.Vec
module Two_path = Joinproj.Two_path

type options = { mm_heavy : bool; mm_light : bool; prefix : bool }

let all_on = { mm_heavy = true; mm_light = true; prefix = true }

let ablation = function
  | `No_op -> { mm_heavy = false; mm_light = false; prefix = false }
  | `Light -> { mm_heavy = false; mm_light = true; prefix = false }
  | `Heavy -> { mm_heavy = true; mm_light = true; prefix = false }
  | `Prefix -> { mm_heavy = true; mm_light = true; prefix = true }

(* Heavy phase as a counted join-project: R |><| R_h with witness counts,
   thresholded at c.  Pair emission mirrors Size_aware.join_heavy_only:
   (anything, heavy) pairs, heavy-heavy only from the smaller side. *)
let heavy_via_mm ~domains ~boundary ~c r =
  let is_heavy a = Relation.deg_src r a >= boundary in
  let rh = Relation.restrict_src r is_heavy in
  if Relation.size rh = 0 then Pairs.empty (Relation.src_count r)
  else begin
    let counted = Two_path.project_counts ~domains ~r ~s:rh () in
    let n = Relation.src_count r in
    let rows = Array.init n (fun _ -> Vec.create ~capacity:0 ()) in
    Jp_relation.Counted_pairs.iter
      (fun s h k ->
        if k >= c && s <> h && ((not (is_heavy s)) || s < h) then
          Vec.push rows.(min s h) (max s h))
      counted;
    Pairs.of_rows_unchecked
      (Array.map
         (fun v ->
           Vec.sort_dedup v;
           Vec.to_array v)
         rows)
  end

(* Light phase via matrix multiplication: sharing a c-subset bucket is
   equivalent to overlapping in >= c elements, so the light-light pairs
   are exactly the boolean join-project of the {set, bucket} relation
   with itself. *)
let light_via_mm ~domains ~boundary ~c r =
  let n = Relation.src_count r in
  let is_light a =
    let d = Relation.deg_src r a in
    d >= c && d < boundary
  in
  let bucket_ids : (int list, int) Hashtbl.t = Hashtbl.create 4096 in
  let edges = Vec.create () in
  for s = 0 to n - 1 do
    if is_light s then
      Common.iter_c_subsets (Relation.adj_src r s) ~c (fun key ->
          let b =
            match
              Hashtbl.find_opt bucket_ids key
              [@jp.lint.allow "hashtbl-dedup"
                "bucket interning is keyed by int-list c-subsets; \
                 structured keys with no dense int domain to stamp"]
            with
            | Some b -> b
            | None ->
              let b = Hashtbl.length bucket_ids in
              (Hashtbl.add bucket_ids key b
              [@jp.lint.allow "hashtbl-dedup"
                "same int-list c-subset keys"]);
              b
          in
          Vec.push2 edges s b)
  done;
  if Vec.length edges = 0 then Pairs.empty n
  else begin
    let b =
      Relation.of_flat ~src_count:n ~dst_count:(Hashtbl.length bucket_ids)
        (Vec.to_array edges)
    in
    let joined = Two_path.project ~domains ~r:b ~s:b () in
    (* keep the upper triangle *)
    let rows =
      Array.init n (fun i ->
          let row = Pairs.row joined i in
          let cut = Jp_util.Sorted.lower_bound row (i + 1) in
          Array.sub row cut (Array.length row - cut))
    in
    Pairs.of_rows_unchecked rows
  end

let light_via_prefix ~boundary ~c r =
  let members = Vec.create () in
  for a = 0 to Relation.src_count r - 1 do
    let d = Relation.deg_src r a in
    if d >= c && d < boundary then Vec.push members a
  done;
  Overlap_tree.similar_pairs ~members:(Vec.to_array members) ~c r

let join ?(domains = 1) ?(options = all_on) ?boundary ~c r =
  if c < 1 then invalid_arg "Size_aware_pp.join: c must be >= 1";
  let boundary =
    match boundary with Some b -> max b 1 | None -> Size_aware.get_size_boundary r ~c
  in
  let heavy =
    if options.mm_heavy then heavy_via_mm ~domains ~boundary ~c r
    else Size_aware.join_heavy_only ~boundary ~c r
  in
  let light =
    if options.prefix then light_via_prefix ~boundary ~c r
    else if options.mm_light then light_via_mm ~domains ~boundary ~c r
    else Size_aware.join_light_only ~boundary ~c r
  in
  Pairs.union heavy light
