module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Vec = Jp_util.Vec

(* Cost balancing for the boundary: processing a heavy set h costs
   sum over e in h of |L(e)| (one inverted-list scan); a light set s costs
   C(|s|, c) subset insertions.  Evaluate both totals at every candidate
   boundary (the distinct set sizes) and take the closest match. *)
let get_size_boundary r ~c =
  let n = Relation.src_count r in
  let sizes = Array.init n (fun a -> Relation.deg_src r a) in
  let scan_cost a =
    Array.fold_left
      (fun acc e -> acc + Relation.deg_dst r e)
      0 (Relation.adj_src r a)
  in
  let ids = Array.init n (fun a -> a) in
  Array.sort (fun a b -> Int.compare sizes.(a) sizes.(b)) ids;
  (* suffix heavy cost, prefix light cost over the size-sorted order *)
  let m = Array.length ids in
  let heavy_suffix = Array.make (m + 1) 0 in
  for i = m - 1 downto 0 do
    heavy_suffix.(i) <- heavy_suffix.(i + 1) + scan_cost ids.(i)
  done;
  let cap = max_int / 4 in
  let light_prefix = Array.make (m + 1) 0 in
  for i = 0 to m - 1 do
    let contrib = Common.binom_capped sizes.(ids.(i)) c ~cap in
    light_prefix.(i + 1) <- min cap (light_prefix.(i) + contrib)
  done;
  (* boundary candidates: before each distinct size; pick min of max cost *)
  let best = ref (max c 1) and best_cost = ref max_int in
  for i = 0 to m do
    let boundary = if i = m then (if m = 0 then 1 else sizes.(ids.(m - 1)) + 1)
      else sizes.(ids.(i))
    in
    let cost = max light_prefix.(i) heavy_suffix.(i) in
    if cost < !best_cost then begin
      best_cost := cost;
      best := max boundary c
    end
  done;
  max !best 1

(* Heavy phase: for each heavy set h, count occurrences of every other set
   in the inverted lists of h's elements; emit candidates with count >= c.
   To output each unordered pair once: (light, heavy) always emitted;
   (heavy, heavy) only when the partner id is smaller. *)
let join_heavy_only ~boundary ~c r =
  let n = Relation.src_count r in
  let is_heavy a = Relation.deg_src r a >= boundary in
  let rows = Array.init n (fun _ -> Vec.create ~capacity:0 ()) in
  let counts = Array.make n 0 in
  let stamps = Array.make n (-1) in
  let touched = Vec.create () in
  for h = 0 to n - 1 do
    if is_heavy h then begin
      Vec.clear touched;
      Array.iter
        (fun e ->
          Array.iter
            (fun s ->
              if s <> h then
                if stamps.(s) <> h then begin
                  stamps.(s) <- h;
                  counts.(s) <- 1;
                  Vec.push touched s
                end
                else counts.(s) <- counts.(s) + 1)
            (Relation.adj_dst r e))
        (Relation.adj_src r h);
      Vec.iter
        (fun s ->
          if counts.(s) >= c && ((not (is_heavy s)) || s < h) then
            Vec.push rows.(min s h) (max s h))
        touched
    end
  done;
  Pairs.of_rows_unchecked
    (Array.map
       (fun v ->
         Vec.sort_dedup v;
         Vec.to_array v)
       rows)

(* Light phase: every c-subset of a light set is a bucket key; all pairs
   within a bucket share >= c elements.  A global pair hash set
   deduplicates pairs discovered via multiple subsets (this brute-force
   dedup is exactly what SizeAware++ replaces). *)
let join_light_only ~boundary ~c r =
  let n = Relation.src_count r in
  let is_light a =
    let d = Relation.deg_src r a in
    d >= c && d < boundary
  in
  let buckets : (int list, Vec.t) Hashtbl.t = Hashtbl.create 4096 in
  for s = 0 to n - 1 do
    if is_light s then
      Common.iter_c_subsets (Relation.adj_src r s) ~c (fun key ->
          match
            Hashtbl.find_opt buckets key
            [@jp.lint.allow "hashtbl-dedup"
              "buckets are keyed by int-list c-subsets; structured keys \
               with no dense int domain to stamp"]
          with
          | Some v -> Vec.push v s
          | None ->
            let v = Vec.create ~capacity:2 () in
            Vec.push v s;
            Hashtbl.add buckets key v
            [@jp.lint.allow "hashtbl-dedup" "same int-list c-subset keys"])
  done;
  let seen : (int, unit) Hashtbl.t = Hashtbl.create 4096 in
  let rows = Array.init n (fun _ -> Vec.create ~capacity:0 ()) in
  Hashtbl.iter
    (fun _key members ->
      let m = Vec.length members in
      for i = 0 to m - 1 do
        for j = i + 1 to m - 1 do
          let a = Vec.get members i and b = Vec.get members j in
          let lo = min a b and hi = max a b in
          let packed = (lo * n) + hi in
          if
            not
              (Hashtbl.mem seen packed
              [@jp.lint.allow "hashtbl-dedup"
                "packed pairs live in an n^2 domain; a stamp vector or \
                 bitset would need n^2 slots"])
          then begin
            (Hashtbl.add seen packed ()
            [@jp.lint.allow "hashtbl-dedup"
              "same sparse n^2 packed-pair keys"]);
            Vec.push rows.(lo) hi
          end
        done
      done)
    buckets;
  Pairs.of_rows_unchecked
    (Array.map
       (fun v ->
         Vec.sort_dedup v;
         Vec.to_array v)
       rows)

let join ?boundary ~c r =
  if c < 1 then invalid_arg "Size_aware.join: c must be >= 1";
  let boundary =
    match boundary with Some b -> max b 1 | None -> get_size_boundary r ~c
  in
  Pairs.union (join_heavy_only ~boundary ~c r) (join_light_only ~boundary ~c r)
