module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Counted_pairs = Jp_relation.Counted_pairs

let memo_of ?cache r =
  match cache with
  | None -> None
  | Some c -> Some (Jp_cache.two_path_memo c ~r ~s:r)

let join_counted ?(domains = 1) ?guard ?cancel ?cache r =
  Jp_obs.span "ssj.mm_counted" (fun () ->
      let memo = memo_of ?cache r in
      Joinproj.Two_path.project_counts ~domains ?guard ?cancel ?memo ~r ~s:r ())

let join ?(domains = 1) ?guard ?cancel ?cache ~c r =
  if c < 1 then invalid_arg "Mm_ssj.join: c must be >= 1";
  Jp_obs.span "ssj.mm_join" (fun () ->
      let counted = join_counted ~domains ?guard ?cancel ?cache r in
      (match cancel with Some t -> Jp_util.Cancel.check t | None -> ());
      Jp_obs.span "ssj.threshold" (fun () -> Common.upper_pairs counted ~c))
