(** Set-similarity join straight through MMJoin: one counted join-project
    of the set family with itself, thresholded at c — the algorithm the
    paper evaluates as {b MMJoin} in Figures 5–6.  Fastest on dense
    families with heavy duplication; the optimizer degrades it to the
    plain worst-case-optimal expansion on sparse ones (DBLP/RoadNet). *)

module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Counted_pairs = Jp_relation.Counted_pairs

val join :
  ?domains:int ->
  ?guard:Jp_adaptive.Guard.config ->
  ?cancel:Jp_util.Cancel.t ->
  ?cache:Jp_cache.t ->
  c:int ->
  Relation.t ->
  Pairs.t
(** Pairs (i, j), i < j, of distinct sets with |i ∩ j| ≥ c.  [guard]
    supervises the underlying counted join-project
    (see {!Joinproj.Two_path.project_counts}); [cache] serves its
    prepared statistics and heavy count product from {!Jp_cache} (same
    byte-identical-result guarantee as [guard]/[cancel] when absent). *)

val join_counted :
  ?domains:int ->
  ?guard:Jp_adaptive.Guard.config ->
  ?cancel:Jp_util.Cancel.t ->
  ?cache:Jp_cache.t ->
  Relation.t ->
  Counted_pairs.t
(** The underlying counted self-join (all pairs with ≥ 1 common element,
    with exact intersection sizes) — the input to ordered enumeration. *)
