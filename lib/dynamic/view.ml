(* Dynamic adjacency: id -> int hash-set of partners, grown on demand.
   Sorted arrays would force O(deg) shifts per update, so the dynamic side
   trades the static representation's cache behaviour for O(1) updates. *)
module Adj = struct
  type t = (int, (int, unit) Hashtbl.t) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let partners t v =
    match Hashtbl.find_opt t v with
    | Some set -> set
    | None ->
      let set = Hashtbl.create 4 in
      Hashtbl.add t v set;
      set

  let mem t v w =
    match Hashtbl.find_opt t v with Some set -> Hashtbl.mem set w | None -> false

  let add t v w = Hashtbl.replace (partners t v) w ()

  let remove t v w =
    match Hashtbl.find_opt t v with Some set -> Hashtbl.remove set w | None -> ()

  let iter_partners t v f =
    match Hashtbl.find_opt t v with
    | Some set -> Hashtbl.iter (fun w () -> f w) set
    | None -> ()
end

type t = {
  r_fwd : Adj.t; (* x -> ys *)
  r_bwd : Adj.t; (* y -> xs *)
  s_fwd : Adj.t; (* z -> ys *)
  s_bwd : Adj.t; (* y -> zs *)
  counts : (int * int, int) Hashtbl.t; (* (x,z) -> witnesses > 0 *)
  mutable live : int; (* |OUT| *)
  (* Cache coherence: every update drops the base relations' entries from
     the attached cache.  Fingerprints are captured at [init] — the static
     relations themselves are frozen (see [Relation.fingerprint]); it is
     this dynamic copy that evolves. *)
  invalidate : unit -> unit;
}

let create () =
  {
    r_fwd = Adj.create ();
    r_bwd = Adj.create ();
    s_fwd = Adj.create ();
    s_bwd = Adj.create ();
    counts = Hashtbl.create 1024;
    live = 0;
    (* an empty view derives from no fingerprinted relation *)
    invalidate = ignore;
  }

let bump t x z delta =
  let key = (x, z) in
  let current = Option.value ~default:0 (Hashtbl.find_opt t.counts key) in
  let next = current + delta in
  if next < 0 then invalid_arg "View: witness count underflow (internal)";
  if current = 0 && next > 0 then t.live <- t.live + 1;
  if current > 0 && next = 0 then t.live <- t.live - 1;
  if next = 0 then Hashtbl.remove t.counts key else Hashtbl.replace t.counts key next

let insert_r t a b =
  if not (Adj.mem t.r_fwd a b) then begin
    t.invalidate ();
    Adj.add t.r_fwd a b;
    Adj.add t.r_bwd b a;
    (* delta: every z currently joined to b gains a witness with a *)
    Adj.iter_partners t.s_bwd b (fun z -> bump t a z 1)
  end

let insert_s t z b =
  if not (Adj.mem t.s_fwd z b) then begin
    t.invalidate ();
    Adj.add t.s_fwd z b;
    Adj.add t.s_bwd b z;
    Adj.iter_partners t.r_bwd b (fun x -> bump t x z 1)
  end

let delete_r t a b =
  if Adj.mem t.r_fwd a b then begin
    t.invalidate ();
    Adj.remove t.r_fwd a b;
    Adj.remove t.r_bwd b a;
    Adj.iter_partners t.s_bwd b (fun z -> bump t a z (-1))
  end

let delete_s t z b =
  if Adj.mem t.s_fwd z b then begin
    t.invalidate ();
    Adj.remove t.s_fwd z b;
    Adj.remove t.s_bwd b z;
    Adj.iter_partners t.r_bwd b (fun x -> bump t x z (-1))
  end

let init ?cache ~r ~s () =
  let t = create () in
  (* load S first so each R insertion's delta is complete by construction
     order; order does not matter for correctness, only locality *)
  Jp_relation.Relation.iter (fun z b -> insert_s t z b) s;
  Jp_relation.Relation.iter (fun a b -> insert_r t a b) r;
  match cache with
  | None -> t
  | Some c ->
    let fp_r = Jp_relation.Relation.fingerprint r in
    let fp_s = Jp_relation.Relation.fingerprint s in
    {
      t with
      invalidate =
        (fun () ->
          Jp_cache.invalidate c ~fp:fp_r;
          Jp_cache.invalidate c ~fp:fp_s);
    }

let mem t x z = Hashtbl.mem t.counts (x, z)

let count t = t.live

let witnesses t x z = Option.value ~default:0 (Hashtbl.find_opt t.counts (x, z))

let iter f t = Hashtbl.iter (fun (x, z) k -> f x z k) t.counts

let to_counted_pairs t =
  let max_x = ref 0 in
  iter (fun x _ _ -> if x >= !max_x then max_x := x + 1) t;
  let per_x = Array.make (max 1 !max_x) [] in
  iter (fun x z k -> per_x.(x) <- (z, k) :: per_x.(x)) t;
  let rows =
    Array.map
      (fun entries ->
        let sorted =
          List.sort
            (fun (z1, k1) (z2, k2) ->
              match Int.compare z1 z2 with 0 -> Int.compare k1 k2 | n -> n)
            entries
        in
        ( Array.of_list (List.map fst sorted),
          Array.of_list (List.map snd sorted) ))
      per_x
  in
  Jp_relation.Counted_pairs.of_rows_unchecked rows
