(** Incrementally maintained join-project views.

    The paper's related work highlights the static/dynamic trade-off for
    hierarchical queries (Kara et al.): once a join-project view like the
    co-author graph is materialized, applications want to {e maintain} it
    under updates rather than recompute.  This module maintains
    Q̈(x,z) = R(x,y), S(z,y) with exact witness counts under single-tuple
    insertions and deletions:

    - the per-pair witness count ζ(x,z) = |{y : R(x,y) ∧ S(z,y)}| is kept
      in a hash map;
    - inserting (a,b) into R adds 1 to ζ(a,c) for every c ∈ S(b) —
      O(deg{_S}(b)) work, the standard delta-query cost;
    - a pair is in the projection iff ζ > 0, so membership and |OUT| are
      O(1) reads.

    Memory is O(|OUT{_⋈} distinct pairs|); this is the materialized end of
    the trade-off (the factorized end is {!Joinproj.Factorized}, which is
    static).  Both input relations are also kept as dynamic adjacency so
    deltas can be computed. *)

type t

val init :
  ?cache:Jp_cache.t ->
  r:Jp_relation.Relation.t ->
  s:Jp_relation.Relation.t ->
  unit ->
  t
(** Materializes the view (one counted pass over the smaller-side
    expansion).

    With [cache], the view becomes the invalidation authority for its
    base relations: every effective update (an insert of a new tuple or
    a delete of a present one) drops all cache entries keyed on [r]'s or
    [s]'s fingerprint — prepared statistics, matrix products and results
    alike — {e before} applying the delta.  The static [r]/[s] values
    stay frozen (their fingerprints were computed at load); it is the
    view's dynamic copy that evolves, which is exactly why
    mutation-based re-fingerprinting is never attempted (see
    {!Jp_relation.Relation.fingerprint}). *)

val create : unit -> t
(** The empty view over empty relations (ids grow on demand). *)

val insert_r : t -> int -> int -> unit
(** [insert_r v a b] adds tuple (a,b) to R; no-op if already present. *)

val insert_s : t -> int -> int -> unit

val delete_r : t -> int -> int -> unit
(** No-op if the tuple is absent. *)

val delete_s : t -> int -> int -> unit

val mem : t -> int -> int -> bool
(** Is (x,z) in the projected view right now? *)

val count : t -> int
(** |OUT|: number of distinct (x,z) pairs with at least one witness. *)

val witnesses : t -> int -> int -> int
(** ζ(x,z): the multiplicity (0 if absent). *)

val iter : (int -> int -> int -> unit) -> t -> unit
(** [iter f v] calls [f x z witnesses] for every live pair (unspecified
    order). *)

val to_counted_pairs : t -> Jp_relation.Counted_pairs.t
(** Snapshot in the static result representation (for equality checks
    against recomputation). *)
