module Boolmat = Jp_matrix.Boolmat
module Intmat = Jp_matrix.Intmat
module Bitset = Jp_util.Bitset
module Vec = Jp_util.Vec
module Cancel = Jp_util.Cancel
module Obs = Jp_obs
module Metrics = Jp_metrics
module Pool = Jp_parallel.Pool

type config = { tile_bits : int; budget_bytes : int option; force : bool }

let default_tile_bits = 9

let config ?(tile_bits = default_tile_bits) ?budget_bytes ?(force = false) () =
  { tile_bits = max 4 (min 20 tile_bits); budget_bytes; force }

module Source = struct
  type t = { rows : int; cols : int; adj : int -> int array }

  let of_adjacency ~rows ~cols adj =
    if rows < 0 || cols < 0 then invalid_arg "Jp_tile.Source.of_adjacency";
    { rows; cols; adj }

  let of_boolmat m =
    let adj i =
      let out = Vec.create () in
      Boolmat.iter_row m i (fun j -> Vec.push out j);
      Vec.to_array out
    in
    { rows = Boolmat.rows m; cols = Boolmat.cols m; adj }

  let rows s = s.rows

  let cols s = s.cols
end

(* Number of tile blocks covering [n] positions at [ts] per tile. *)
let blocks n ts = (n + ts - 1) / ts

let tile_bytes_of m = (Boolmat.rows m * ((Boolmat.cols m + 61) / 62) * 8) + 64

(* Build one operand tile: rows [r0, r0+th), inner columns [c0, c0+tw)
   of [src], remapped to a th×tw block.  Also returns the number of
   adjacency entries scanned — the deterministic build-cost proxy that
   seeds the tile's LANDLORD credit (wall clocks would make eviction
   order nondeterministic). *)
let build_tile (src : Source.t) ~r0 ~th ~c0 ~tw =
  let m = Boolmat.create ~rows:th ~cols:tw in
  let scanned = ref 0 in
  for i = 0 to th - 1 do
    let row = src.Source.adj (r0 + i) in
    scanned := !scanned + Array.length row;
    Array.iter
      (fun j -> if j >= c0 && j < c0 + tw then Boolmat.set m i (j - c0))
      row
  done;
  (m, !scanned)

(* ------------------------------------------------------------------ *)
(* Bounded resident store for operand tiles                            *)
(*                                                                     *)
(* One store per product invocation, covering both operands' tiles in  *)
(* a dense slot array (a-tiles first, then b-tiles).  LANDLORD like    *)
(* Jp_cache: every resident tile holds credit seeded by its build-cost *)
(* proxy and refreshed on hit; to admit a new tile, subtract the       *)
(* smallest credit-per-byte rate from everyone and evict whoever hits  *)
(* zero, in insertion order (deterministic for a fixed fetch order,    *)
(* i.e. whenever [domains = 1]).  Tiles are immutable, so an evicted   *)
(* tile still in use by another domain is simply rebuilt on next miss. *)

type entry = {
  t_bytes : int;
  t_cost : float;
  mutable t_credit : float;
  t_seq : int;
  t_tile : Boolmat.t;
}

type store = {
  lock : Mutex.t;
  budget : int option;
  slots : entry option array;
  mutable resident : int;
  mutable peak : int;
  mutable live : int;
  mutable seq : int;
}

let store_create ~budget ~nslots =
  {
    lock = Mutex.create ();
    budget;
    slots = Array.make nslots None;
    resident = 0;
    peak = 0;
    live = 0;
    seq = 0;
  }

let locked st f =
  Mutex.lock st.lock;
  match f () with
  | x ->
    Mutex.unlock st.lock;
    x
  | exception e ->
    Mutex.unlock st.lock;
    raise e

let drop_slot st idx e =
  st.slots.(idx) <- None;
  st.resident <- st.resident - e.t_bytes;
  st.live <- st.live - 1

(* Assumes the lock is held.  Each round the minimum-rate entry reaches
   zero, so at least one tile is evicted and the loop terminates. *)
let evict_until st ~need =
  match st.budget with
  | None -> 0
  | Some b ->
    let evicted = ref 0 in
    while st.resident + need > b && st.live > 0 do
      let min_rate = ref infinity in
      Array.iter
        (fun slot ->
          match slot with
          | None -> ()
          | Some e ->
            let rate = e.t_credit /. float_of_int (max 1 e.t_bytes) in
            if rate < !min_rate then min_rate := rate)
        st.slots;
      let victims = ref [] in
      Array.iteri
        (fun idx slot ->
          match slot with
          | None -> ()
          | Some e ->
            e.t_credit <-
              e.t_credit -. (!min_rate *. float_of_int (max 1 e.t_bytes));
            if e.t_credit <= 1e-12 then victims := (idx, e) :: !victims)
        st.slots;
      let victims =
        List.sort (fun (_, a) (_, b) -> Int.compare a.t_seq b.t_seq) !victims
      in
      List.iter
        (fun (idx, e) ->
          if st.slots.(idx) != None then begin
            drop_slot st idx e;
            Stdlib.incr evicted
          end)
        victims
    done;
    !evicted

(* Fetch-or-build.  The build runs outside the lock so misses on
   distinct tiles proceed in parallel; two domains missing on the same
   tile may both build it — the tiles are pure, so the second insert
   just replaces the first.  Counter cadence: one bump batch per fetch
   (= per tile), never per word. *)
let store_fetch st idx build =
  let hit =
    locked st (fun () ->
        match st.slots.(idx) with
        | Some e ->
          e.t_credit <- Float.max e.t_credit e.t_cost;
          Some e.t_tile
        | None -> None)
  in
  match hit with
  | Some tile ->
    Obs.incr Obs.C.tile_store_hits;
    tile
  | None ->
    let tile, scanned = build () in
    let bytes = tile_bytes_of tile in
    let admit = match st.budget with None -> true | Some b -> bytes <= b in
    let evicted, delta, grew =
      locked st (fun () ->
          if not admit then (0, 0, 0)
          else begin
            let evicted =
              (match st.slots.(idx) with
              | Some old -> drop_slot st idx old
              | None -> ());
              evict_until st ~need:bytes
            in
            let e =
              {
                t_bytes = bytes;
                t_cost = 1.0 +. float_of_int scanned;
                t_credit = 1.0 +. float_of_int scanned;
                t_seq = st.seq;
                t_tile = tile;
              }
            in
            st.seq <- st.seq + 1;
            st.slots.(idx) <- Some e;
            st.resident <- st.resident + bytes;
            st.live <- st.live + 1;
            let grew = max 0 (st.resident - st.peak) in
            st.peak <- max st.peak st.resident;
            (evicted, bytes, grew)
          end)
    in
    Obs.incr Obs.C.tile_builds;
    if evicted > 0 then Obs.add Obs.C.tile_evictions evicted;
    if delta <> 0 then begin
      Obs.add Obs.C.tile_bytes delta;
      Metrics.add_gauge Metrics.G.tile_bytes delta
    end;
    if grew > 0 then Obs.add Obs.C.tile_peak_bytes grew;
    tile

(* Release the whole store's footprint at the end of a product (the
   tiles themselves are garbage once the result is blitted). *)
let store_drain st =
  let bytes =
    locked st (fun () ->
        let b = st.resident in
        Array.iteri
          (fun idx slot ->
            match slot with Some e -> drop_slot st idx e | None -> ())
          st.slots;
        b)
  in
  if bytes <> 0 then begin
    Obs.add Obs.C.tile_bytes (-bytes);
    Metrics.add_gauge Metrics.G.tile_bytes (-bytes)
  end

(* ------------------------------------------------------------------ *)
(* Product schedule                                                    *)

let run_checkpoint = function Some f -> f () | None -> ()

let check_cancel = function Some c -> Cancel.check c | None -> ()

(* Boolean product: output tile (ti, tj) is the OR over inner blocks k
   of A(ti,k)·B(k,tj), accumulated into a th×tw scratch and OR-blitted
   into the result rows at the tile's column offset.  Tiles of one
   block-row overlap on the boundary words of the shared result rows
   (2^k is not a multiple of 62), so blits serialize on a per-block-row
   mutex; ORs commute, so the result is independent of blit order. *)
let mul ?(domains = 1) ?cancel ?checkpoint ?memo cfg (a : Source.t)
    (b : Source.t) =
  if a.Source.cols <> b.Source.rows then
    invalid_arg
      (Printf.sprintf "Jp_tile.mul: dimension mismatch (%dx%d . %dx%d)"
         a.Source.rows a.Source.cols b.Source.rows b.Source.cols);
  Obs.span "tile.mul" (fun () ->
      let ts = 1 lsl cfg.tile_bits in
      let u = a.Source.rows and v = a.Source.cols and w = b.Source.cols in
      let result = Boolmat.create ~rows:u ~cols:w in
      let t_i = blocks u ts and t_k = blocks v ts and t_j = blocks w ts in
      if t_i = 0 || t_j = 0 then result
      else begin
        let store =
          store_create ~budget:cfg.budget_bytes
            ~nslots:((t_i * t_k) + (t_k * t_j))
        in
        let a_slot ti k = (ti * t_k) + k in
        let b_slot k tj = (t_i * t_k) + (k * t_j) + tj in
        let row_locks = Array.init t_i (fun _ -> Mutex.create ()) in
        let obs = Obs.recording () in
        let body t =
          let ti = t / t_j and tj = t mod t_j in
          run_checkpoint checkpoint;
          Obs.span "tile.mul_tile" (fun () ->
              let r0 = ti * ts and c0 = tj * ts in
              let th = min ts (u - r0) and tw = min ts (w - c0) in
              let compute () =
                let acc = Boolmat.create ~rows:th ~cols:tw in
                let unions = ref 0 in
                for k = 0 to t_k - 1 do
                  let k0 = k * ts in
                  let kw = min ts (v - k0) in
                  let at =
                    store_fetch store (a_slot ti k) (fun () ->
                        build_tile a ~r0 ~th ~c0:k0 ~tw:kw)
                  in
                  let bt =
                    store_fetch store (b_slot k tj) (fun () ->
                        build_tile b ~r0:k0 ~th:kw ~c0 ~tw)
                  in
                  for i = 0 to th - 1 do
                    let dst = Boolmat.row acc i in
                    Boolmat.iter_row at i (fun kk ->
                        Stdlib.incr unions;
                        Bitset.union_into ~dst (Boolmat.row bt kk))
                  done
                done;
                if obs then begin
                  let words_per_row = (tw + 61) / 62 in
                  Obs.add Obs.C.mm_bool_word_ops (!unions * words_per_row)
                end;
                acc
              in
              let tile =
                match memo with None -> compute () | Some m -> m ~ti ~tj compute
              in
              Mutex.lock row_locks.(ti);
              for i = 0 to th - 1 do
                Bitset.union_into_at
                  ~dst:(Boolmat.row result (r0 + i))
                  c0 (Boolmat.row tile i)
              done;
              Mutex.unlock row_locks.(ti);
              Obs.incr Obs.C.tile_products)
        in
        Pool.parallel_for ~domains ~chunk:1 ?cancel ~lo:0 ~hi:(t_i * t_j) body;
        store_drain store;
        check_cancel cancel;
        result
      end)

(* Count product: a : u×v and b : w×v over the same inner dimension.
   Output tile (ti, tj) owns the disjoint cell block
   [r0, r0+th) × [c0, c0+tw) of the result, so no blit locks are
   needed; inner-tile partial counts are exact integer sums. *)
let count_product ?(domains = 1) ?cancel ?checkpoint ?memo cfg (a : Source.t)
    (b : Source.t) =
  if a.Source.cols <> b.Source.cols then
    invalid_arg
      (Printf.sprintf
         "Jp_tile.count_product: inner dim mismatch (%dx%d . (%dx%d)T)"
         a.Source.rows a.Source.cols b.Source.rows b.Source.cols);
  Obs.span "tile.count_product" (fun () ->
      let ts = 1 lsl cfg.tile_bits in
      let u = a.Source.rows and v = a.Source.cols and w = b.Source.rows in
      let result = Intmat.create ~rows:u ~cols:w in
      let t_i = blocks u ts and t_k = blocks v ts and t_j = blocks w ts in
      if t_i = 0 || t_j = 0 then result
      else begin
        let store =
          store_create ~budget:cfg.budget_bytes
            ~nslots:((t_i * t_k) + (t_j * t_k))
        in
        let a_slot ti k = (ti * t_k) + k in
        let b_slot tj k = (t_i * t_k) + (tj * t_k) + k in
        let obs = Obs.recording () in
        let body t =
          let ti = t / t_j and tj = t mod t_j in
          run_checkpoint checkpoint;
          Obs.span "tile.count_tile" (fun () ->
              let r0 = ti * ts and c0 = tj * ts in
              let th = min ts (u - r0) and tw = min ts (w - c0) in
              let compute () =
                let acc = Intmat.create ~rows:th ~cols:tw in
                let words = ref 0 in
                for k = 0 to t_k - 1 do
                  let k0 = k * ts in
                  let kw = min ts (v - k0) in
                  let at =
                    store_fetch store (a_slot ti k) (fun () ->
                        build_tile a ~r0 ~th ~c0:k0 ~tw:kw)
                  in
                  let bt =
                    store_fetch store (b_slot tj k) (fun () ->
                        build_tile b ~r0:c0 ~th:tw ~c0:k0 ~tw:kw)
                  in
                  for i = 0 to th - 1 do
                    let arow = Boolmat.row at i in
                    if not (Bitset.is_empty arow) then begin
                      words := !words + (tw * Bitset.word_count arow);
                      for l = 0 to tw - 1 do
                        let n = Bitset.inter_count arow (Boolmat.row bt l) in
                        if n > 0 then
                          Intmat.set acc i l (Intmat.get acc i l + n)
                      done
                    end
                  done
                done;
                if obs then Obs.add Obs.C.mm_count_word_ops !words;
                acc
              in
              let tile =
                match memo with None -> compute () | Some m -> m ~ti ~tj compute
              in
              for i = 0 to th - 1 do
                for l = 0 to tw - 1 do
                  let n = Intmat.get tile i l in
                  if n > 0 then Intmat.set result (r0 + i) (c0 + l) n
                done
              done;
              Obs.incr Obs.C.tile_products)
        in
        Pool.parallel_for ~domains ~chunk:1 ?cancel ~lo:0 ~hi:(t_i * t_j) body;
        store_drain store;
        check_cancel cancel;
        result
      end)
