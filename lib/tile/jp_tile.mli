(** Tiled, memory-bounded heavy-part matrix multiplication.

    The flat {!Jp_matrix.Boolmat} kernels materialize both operand
    matrices in full, which makes the heavy part the system's largest
    single allocation and an all-or-nothing unit for parallelism and
    caching.  This module decomposes the same two products into fixed
    2{^k}×2{^k} bit-packed tiles (MatFast-style block partitioning):

    - {b Scheduling}: output tiles are the work-stealing unit — one
      {!Jp_parallel.Pool} chunk per tile — so load balance no longer
      depends on row skew.
    - {b Memory}: operand tiles are built on demand from an adjacency
      {!Source} and kept in a bounded resident store; when a byte budget
      is set, LANDLORD-style eviction rebuilds cold tiles instead of
      holding both operands resident, so products larger than the budget
      stream instead of OOM-ing.
    - {b Capabilities}: one [Jp_obs] span, one optional cancel poll /
      guard checkpoint and one memo-hook consultation {e per tile} —
      never per word (jp_lint's [hot-poll] cadence).  [tile.*] counters
      track tile builds / store hits / evictions / products and the
      resident footprint ([tile.bytes] + its [tile.peak_bytes]
      high-water mark, mirrored into the [tile.resident_bytes] gauge).

    Results are bit-equal to the flat kernels for every tile size,
    budget and domain count: boolean tiles OR-blit into the result rows
    at their column offset ({!Jp_util.Bitset.union_into_at}), count
    tiles own disjoint cell blocks, and partial sums over inner tiles
    are exact. *)

module Boolmat = Jp_matrix.Boolmat
module Intmat = Jp_matrix.Intmat
module Cancel = Jp_util.Cancel

type config = private {
  tile_bits : int;
  budget_bytes : int option;
  force : bool;
}
(** [tile_bits] is k of the 2{^k}×2{^k} tile shape; [budget_bytes]
    bounds the operand-tile resident set ([None] = unbounded: every
    operand tile stays resident once built).  [force] is advisory for
    callers that gate on {!Jp_matrix.Cost.should_tile}: it asks them to
    tile regardless of the size threshold (this module itself always
    tiles). *)

val default_tile_bits : int
(** 9: 512×512 tiles, ≈ 33 KiB of bitset words per boolean tile. *)

val config : ?tile_bits:int -> ?budget_bytes:int -> ?force:bool -> unit -> config
(** [tile_bits] is clamped to [[4, 20]]; [force] defaults to [false]. *)

(** Lazy operand views: shape plus a row-adjacency function, so tiles
    can be (re)built on demand without ever materializing the full
    operand matrix. *)
module Source : sig
  type t

  val of_adjacency : rows:int -> cols:int -> (int -> int array) -> t
  (** [of_adjacency ~rows ~cols adj] views row [i] as ones at positions
      [adj i] (each in [[0, cols)], order irrelevant).  [adj] must be
      pure — it is re-invoked whenever an evicted tile is rebuilt — and,
      with [domains > 1], safe to call from worker domains. *)

  val of_boolmat : Boolmat.t -> t
  (** View an already materialized matrix (tests and benches). *)

  val rows : t -> int

  val cols : t -> int
end

val mul :
  ?domains:int ->
  ?cancel:Cancel.t ->
  ?checkpoint:(unit -> unit) ->
  ?memo:(ti:int -> tj:int -> (unit -> Boolmat.t) -> Boolmat.t) ->
  config ->
  Source.t ->
  Source.t ->
  Boolmat.t
(** [mul cfg a b] is the boolean product [a · b], bit-equal to
    [Boolmat.mul] on the materialized operands.  [cancel] is polled once
    per tile claim (via the pool) and [checkpoint] runs once per output
    tile on the computing domain — callers pass budget checks only when
    that is safe for their guard (single-domain).  [memo ~ti ~tj build]
    may return a previously built output tile for the same operands and
    config instead of running [build] — the [Jp_cache] L2 hook; absent,
    every tile is computed.  Raises [Invalid_argument] naming both
    shapes when the inner dimensions disagree. *)

val count_product :
  ?domains:int ->
  ?cancel:Cancel.t ->
  ?checkpoint:(unit -> unit) ->
  ?memo:(ti:int -> tj:int -> (unit -> Intmat.t) -> Intmat.t) ->
  config ->
  Source.t ->
  Source.t ->
  Intmat.t
(** [count_product cfg a b] with [a : u×v] and [b : w×v] (both over the
    same inner dimension, exactly like [Boolmat.count_product]) is the
    u×w count matrix, bit-equal to the flat kernel: inner-tile partial
    counts are integer sums, so accumulation order cannot change the
    result.  Same capability surface as {!mul}. *)
