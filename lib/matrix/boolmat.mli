(** Bit-packed boolean matrices.

    The fast-matrix-multiplication stand-in of this reproduction: a boolean
    product C = A·B is computed as, for every row i, the OR of the B-rows
    selected by the set bits of A's row i.  Each word-level OR processes 62
    columns at once, so the kernel runs at roughly M(u,v,w)/62 word
    operations — the same constant-factor acceleration role that
    Eigen+MKL's SIMD SGEMM plays in the paper (Section 6), and like it,
    embarrassingly parallel over rows.

    When only reachability matters (plain join-project deduplication,
    boolean set intersection), this kernel replaces the count product and is
    the fastest path in the whole system. *)

type t

val create : rows:int -> cols:int -> t
(** All-zeros boolean matrix. *)

val rows : t -> int

val cols : t -> int

val set : t -> int -> int -> unit

val mem : t -> int -> int -> bool

val row : t -> int -> Jp_util.Bitset.t
(** The backing bitset of a row (shared, not copied). *)

val of_adjacency : rows:int -> cols:int -> (int -> int array) -> t
(** [of_adjacency ~rows ~cols adj] builds the matrix whose row [i] has ones
    exactly at positions [adj i]. *)

val mul : ?domains:int -> t -> t -> t
(** Boolean matrix product over the OR/AND semiring.  Raises
    [Invalid_argument] naming both operand shapes when the inner
    dimensions disagree. *)

val count_product : ?domains:int -> t -> t -> Intmat.t
(** [count_product a b] with [a : u×v] and [b : w×v] (note: {e both} over
    the same inner dimension, i.e. [b] is the transpose of the right
    operand) is the u×w {e integer} product C with
    [C(i,l) = |row_a(i) ∩ row_b(l)|] — the count matrix product
    A·Bᵀ computed as word-AND + popcount.  This is the kernel the
    counted join-project uses: 62 multiply-adds per word operation, the
    same bit-slicing advantage SIMD SGEMM enjoys in the paper.  Raises
    [Invalid_argument] naming both operand shapes when the shared inner
    dimensions disagree. *)

val row_nnz : t -> int -> int

val nnz : t -> int

val iter_row : t -> int -> (int -> unit) -> unit
(** [iter_row m i f] applies [f] to every column with a 1 in row [i]. *)

val equal : t -> t -> bool
