module Bitset = Jp_util.Bitset

type t = { data : Bitset.t array; cols : int }

let create ~rows ~cols =
  if rows < 0 || cols < 0 then invalid_arg "Boolmat.create";
  { data = Array.init rows (fun _ -> Bitset.create cols); cols }

let rows m = Array.length m.data

let cols m = m.cols

let set m i j = Bitset.set m.data.(i) j

let mem m i j = Bitset.mem m.data.(i) j

let row m i = m.data.(i)

let of_adjacency ~rows ~cols adj =
  if rows < 0 || cols < 0 then invalid_arg "Boolmat.of_adjacency";
  { data = Array.init rows (fun i -> Bitset.of_sorted_array cols (adj i)); cols }

let mul ?(domains = 1) a b =
  if a.cols <> Array.length b.data then
    invalid_arg
      (Printf.sprintf "Boolmat.mul: dimension mismatch (%dx%d . %dx%d)"
         (rows a) a.cols (rows b) b.cols);
  Jp_obs.span "matrix.bool_mul" (fun () ->
      let c = create ~rows:(rows a) ~cols:b.cols in
      let words_per_row =
        if Array.length b.data = 0 then 0 else Bitset.word_count b.data.(0)
      in
      let obs = Jp_obs.recording () in
      let do_row i =
        let acc = c.data.(i) in
        if obs then begin
          let unions = ref 0 in
          Bitset.iter
            (fun k ->
              Stdlib.incr unions;
              Bitset.union_into ~dst:acc b.data.(k))
            a.data.(i);
          Jp_obs.add Jp_obs.C.mm_bool_word_ops (!unions * words_per_row)
        end
        else Bitset.iter (fun k -> Bitset.union_into ~dst:acc b.data.(k)) a.data.(i)
      in
      if domains <= 1 then
        for i = 0 to rows a - 1 do
          do_row i
        done
      else Jp_parallel.Pool.parallel_for ~domains ~lo:0 ~hi:(rows a) do_row;
      c)

let count_product ?(domains = 1) a b =
  if a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf
         "Boolmat.count_product: inner dim mismatch (%dx%d . (%dx%d)T)"
         (rows a) a.cols (rows b) b.cols);
  Jp_obs.span "matrix.count_product" (fun () ->
      let u = rows a and w = rows b in
      let c = Intmat.create ~rows:u ~cols:w in
      let obs = Jp_obs.recording () in
      let do_row i =
        let arow = a.data.(i) in
        if not (Bitset.is_empty arow) then begin
          if obs then
            Jp_obs.add Jp_obs.C.mm_count_word_ops (w * Bitset.word_count arow);
          for l = 0 to w - 1 do
            let k = Bitset.inter_count arow b.data.(l) in
            if k > 0 then Intmat.set c i l k
          done
        end
      in
      if domains <= 1 then
        for i = 0 to u - 1 do
          do_row i
        done
      else Jp_parallel.Pool.parallel_for ~domains ~lo:0 ~hi:u do_row;
      c)

let row_nnz m i = Bitset.count m.data.(i)

let nnz m = Array.fold_left (fun acc r -> acc + Bitset.count r) 0 m.data

let iter_row m i f = Bitset.iter f m.data.(i)

let equal a b =
  a.cols = b.cols
  && Array.length a.data = Array.length b.data
  && Array.for_all2 (fun x y -> Bitset.equal x y) a.data b.data
