(** Matrix-multiplication cost models.

    Two layers, mirroring the paper:

    - The {e theoretical} rectangular cost of Lemma 1,
      [M(U,V,W) = U·V·W·β^(ω−3)] with [β = min(U,V,W)], used by the
      closed-form threshold analysis of Section 3.

    - The {e machine-calibrated} estimator [M̂(u,v,w,co)] of Section 5
      (Table 1): measured per-operation constants for the actual kernels in
      {!Dense}, {!Intmat} and {!Boolmat}, anchored on a small table of
      square multiplies and extrapolated by the cubic cost formula — valid
      because the kernels, like the paper's Eigen, implement the
      (optimized) cubic algorithm with predictable running time.

    The same calibration pass also measures the paper's Table-1 machine
    constants [Ts] (sequential access), [Tm] (allocation) and [TI] (random
    access/insert), which Algorithm 3 combines with the index statistics to
    cost the combinatorial part of the join. *)

type kind =
  | Count  (** {!Boolmat.count_product}: bit-sliced count product *)
  | Boolean  (** {!Boolmat.mul}: bit-packed boolean product *)

val lemma1 : ?omega:float -> u:int -> v:int -> w:int -> unit -> float
(** [lemma1 ~omega ~u ~v ~w] is the Lemma-1 operation count
    [u·v·w·β^(ω−3)].  Default [omega] is 3 (the classical kernel actually
    implemented here); pass 2.0 or 2.373 to reproduce the paper's
    theoretical analyses. *)

type machine = {
  ts : float;  (** seconds per sequential [int array] read *)
  tm : float;  (** seconds per 32 bytes allocated *)
  ti : float;  (** seconds per random access + insert *)
  count_word : float;
      (** seconds per 62-bit AND+popcount word in {!Boolmat.count_product} *)
  bool_word : float;  (** seconds per 62-bit word OR in {!Boolmat.mul} *)
  cores : int;  (** cores available on this machine *)
}
(** Measured machine constants (Table 1 of the paper). *)

val calibrate : ?quick:bool -> unit -> machine
(** Runs the micro-benchmarks and returns fresh constants.  [quick]
    (default true) keeps the probe sizes small (a few milliseconds total);
    [quick:false] uses larger probes for tighter estimates. *)

val machine : unit -> machine
(** Lazily calibrated singleton used by the optimizer. *)

val set_machine : machine -> unit
(** Overrides the singleton (tests use this to make optimizer decisions
    deterministic). *)

val mhat : machine -> kind -> u:int -> v:int -> w:int -> cores:int -> float
(** [mhat m kind ~u ~v ~w ~cores] estimates wall seconds to multiply
    [u×v · v×w] with the given kernel on [cores] cores, including the
    matrix-construction cost [C] (Section 3.1). *)

val construction_seconds : machine -> u:int -> v:int -> w:int -> float
(** Estimated time to materialize the two input matrices
    ([max(u·v, v·w)] cell writes, Section 3.1's [C] term). *)

(** {2 Tiling threshold}

    Gate for the [Jp_tile] tiled heavy-part product: tiling pays a
    per-tile scheduling/blit overhead, so small products keep the flat
    kernels; large products (or any product whose operand footprint
    exceeds an explicit resident budget) stream through tiles. *)

val tile_operand_bytes : kind -> u:int -> v:int -> w:int -> int
(** Bytes of the two bit-packed operand matrices a [u×v · v×w] product
    of the given kernel materializes (the count kernel stores the right
    operand transposed, [w×v]). *)

val tile_min_bytes : int
(** Default operand-footprint threshold (32 MiB) above which
    {!should_tile} opts into tiling even without a budget. *)

val should_tile :
  ?budget_bytes:int -> kind -> u:int -> v:int -> w:int -> unit -> bool
(** True when the operand footprint reaches {!tile_min_bytes}, or
    exceeds [budget_bytes] when one is given (a bounded resident set
    must stream regardless of absolute size). *)
