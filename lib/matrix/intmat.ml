type t = { data : int array array; rows : int; cols : int }

let create ~rows ~cols =
  if rows < 0 || cols < 0 then invalid_arg "Intmat.create";
  { data = Array.init rows (fun _ -> Array.make cols 0); rows; cols }

let of_arrays data =
  let rows = Array.length data in
  let cols = if rows = 0 then 0 else Array.length data.(0) in
  Array.iter (fun r -> if Array.length r <> cols then invalid_arg "Intmat.of_arrays: ragged") data;
  { data; rows; cols }

let get m i j = m.data.(i).(j)

let set m i j x = m.data.(i).(j) <- x

let dims m = (m.rows, m.cols)

let block = 64

let mul_rows a b c lo hi =
  let n = a.cols and w = b.cols in
  for k0 = 0 to (n - 1) / block do
    let kmin = k0 * block and kmax = min n (k0 * block + block) in
    for i = lo to hi - 1 do
      let arow = Array.unsafe_get a.data i in
      let crow = Array.unsafe_get c.data i in
      for k = kmin to kmax - 1 do
        let aik = Array.unsafe_get arow k in
        if aik <> 0 then begin
          let brow = Array.unsafe_get b.data k in
          if aik = 1 then
            for j = 0 to w - 1 do
              Array.unsafe_set crow j (Array.unsafe_get crow j + Array.unsafe_get brow j)
            done
          else
            for j = 0 to w - 1 do
              Array.unsafe_set crow j (Array.unsafe_get crow j + (aik * Array.unsafe_get brow j))
            done
        end
      done
    done
  done

let mul ?(domains = 1) a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "Intmat.mul: dimension mismatch (%dx%d . %dx%d)" a.rows
         a.cols b.rows b.cols);
  let c = create ~rows:a.rows ~cols:b.cols in
  if domains <= 1 then mul_rows a b c 0 a.rows
  else
    Jp_parallel.Pool.parallel_for_ranges ~domains ~lo:0 ~hi:a.rows (fun lo hi ->
        mul_rows a b c lo hi);
  c

let nnz m =
  let c = ref 0 in
  Array.iter (Array.iter (fun x -> if x <> 0 then incr c)) m.data;
  !c

let iter_nonzero m f =
  for i = 0 to m.rows - 1 do
    let row = m.data.(i) in
    for j = 0 to m.cols - 1 do
      let v = Array.unsafe_get row j in
      if v <> 0 then f i j v
    done
  done

let equal a b = a.rows = b.rows && a.cols = b.cols && a.data = b.data
