type kind = Count | Boolean

let lemma1 ?(omega = 3.0) ~u ~v ~w () =
  let u = float_of_int u and v = float_of_int v and w = float_of_int w in
  let beta = min u (min v w) in
  if beta <= 0.0 then 0.0 else u *. v *. w *. (beta ** (omega -. 3.0))

type machine = {
  ts : float;
  tm : float;
  ti : float;
  count_word : float;
  bool_word : float;
  cores : int;
}

let measure_ts n =
  let a = Array.init n (fun i -> i) in
  let t0 = Jp_util.Timer.now () in
  let s = ref 0 in
  for i = 0 to n - 1 do
    s := !s + Array.unsafe_get a i
  done;
  let dt = Jp_util.Timer.now () -. t0 in
  Sys.opaque_identity !s |> ignore;
  dt /. float_of_int n

let measure_tm n =
  (* Allocate n small (4-word ≈ 32 byte) blocks. *)
  let t0 = Jp_util.Timer.now () in
  let keep = ref [] in
  for i = 0 to n - 1 do
    if i land 1023 = 0 then keep := [] else keep := Array.make 3 i :: !keep
  done;
  let dt = Jp_util.Timer.now () -. t0 in
  Sys.opaque_identity !keep |> ignore;
  dt /. float_of_int n

(* TI prices one pre-projection join tuple in the stamp-vector expansion
   (Section 6's inner loop), so the probe replicates it end-to-end:
   adjacency chasing, stamp dedup, buffer pushes, and the final per-group
   sort.  A plain random-access loop underprices this by an order of
   magnitude and would bias Algorithm 3 against the matrix plan. *)
let measure_ti n =
  let rng = Jp_util.Rng.create 0xC0FFEE in
  let nx = max 64 (int_of_float (sqrt (float_of_int n))) in
  (* per x we visit deg_r * deg_s = deg^2 tuples; size deg so the probe
     touches ~n tuples in total *)
  let deg = max 4 (int_of_float (sqrt (float_of_int (n / nx)))) in
  let nz = 4 * deg in
  let adj_r = Array.init nx (fun _ -> Array.init deg (fun _ -> Jp_util.Rng.int rng nz)) in
  let adj_s = Array.init nz (fun _ -> Array.init deg (fun _ -> Jp_util.Rng.int rng nz)) in
  let stamps = Array.make nz (-1) in
  let buf = Array.make nz 0 in
  let tuples = ref 0 in
  let t0 = Jp_util.Timer.now () in
  for a = 0 to nx - 1 do
    let len = ref 0 in
    Array.iter
      (fun b ->
        Array.iter
          (fun c ->
            incr tuples;
            if Array.unsafe_get stamps c <> a then begin
              Array.unsafe_set stamps c a;
              Array.unsafe_set buf !len c;
              incr len
            end)
          (Array.unsafe_get adj_s b))
      (Array.unsafe_get adj_r a);
    let group = Array.sub buf 0 !len in
    Jp_util.Intsort.sort group;
    Sys.opaque_identity group |> ignore
  done;
  let dt = Jp_util.Timer.now () -. t0 in
  dt /. float_of_int (max 1 !tuples)

let random_boolmat rng ~rows ~cols ~density =
  let m = Boolmat.create ~rows ~cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if Jp_util.Rng.float rng 1.0 < density then Boolmat.set m i j
    done
  done;
  m

let measure_count_word p =
  let rng = Jp_util.Rng.create 7 in
  let a = random_boolmat rng ~rows:p ~cols:p ~density:0.6
  and b = random_boolmat rng ~rows:p ~cols:p ~density:0.6 in
  let t0 = Jp_util.Timer.now () in
  let c = Boolmat.count_product a b in
  let dt = Jp_util.Timer.now () -. t0 in
  Sys.opaque_identity c |> ignore;
  let words = float_of_int (p * p) *. (float_of_int p /. 62.0) in
  dt /. words

let measure_bool_word p =
  let rng = Jp_util.Rng.create 11 in
  let a = random_boolmat rng ~rows:p ~cols:p ~density:0.6
  and b = random_boolmat rng ~rows:p ~cols:p ~density:0.6 in
  let t0 = Jp_util.Timer.now () in
  let c = Boolmat.mul a b in
  let dt = Jp_util.Timer.now () -. t0 in
  Sys.opaque_identity c |> ignore;
  let words = 0.6 *. float_of_int (p * p) *. (float_of_int p /. 62.0) in
  dt /. words

let calibrate ?(quick = true) () =
  let n = if quick then 200_000 else 2_000_000 in
  let p = if quick then 96 else 256 in
  {
    ts = measure_ts n;
    tm = measure_tm n;
    ti = measure_ti n;
    count_word = measure_count_word p;
    bool_word = measure_bool_word p;
    cores = Jp_parallel.Pool.available_cores ();
  }

let singleton : machine option Atomic.t = Atomic.make None

let machine () =
  match Atomic.get singleton with
  | Some m -> m
  | None ->
    let m = calibrate () in
    Atomic.set singleton (Some m);
    m

let set_machine m = Atomic.set singleton (Some m)

let construction_seconds m ~u ~v ~w =
  let cells = float_of_int (max (u * v) (v * w)) in
  m.tm *. cells

let mhat m kind ~u ~v ~w ~cores =
  let cores = max 1 (min cores m.cores) in
  let work =
    match kind with
    | Count ->
      float_of_int u *. float_of_int w *. (float_of_int v /. 62.0) *. m.count_word
    | Boolean ->
      float_of_int u *. float_of_int v *. (float_of_int w /. 62.0) *. m.bool_word
  in
  (work /. float_of_int cores) +. construction_seconds m ~u ~v ~w

(* ------------------------------------------------------------------ *)
(* Tiling threshold (Jp_tile)                                          *)

let bitmap_bytes ~rows ~cols = rows * ((cols + 61) / 62) * 8

let tile_operand_bytes kind ~u ~v ~w =
  match kind with
  | Boolean -> bitmap_bytes ~rows:u ~cols:v + bitmap_bytes ~rows:v ~cols:w
  | Count -> bitmap_bytes ~rows:u ~cols:v + bitmap_bytes ~rows:w ~cols:v

let tile_min_bytes = 32 * 1024 * 1024

let should_tile ?budget_bytes kind ~u ~v ~w () =
  let bytes = tile_operand_bytes kind ~u ~v ~w in
  bytes >= tile_min_bytes
  || (match budget_bytes with Some b -> bytes > b | None -> false)
