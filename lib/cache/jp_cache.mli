(** Cross-query semantic cache: prepared optimizer statistics, heavy-part
    matrix products and whole results, shared across queries.

    The paper's BSI application (Section 5.3) amortizes one heavy⊗heavy
    matrix product across a whole batch of set-intersection queries; this
    module generalizes that trick to a served workload.  Three levels,
    one store:

    + {b L1} — {!Joinproj.Optimizer.prepared} statistics/indexes keyed by
      {!Jp_relation.Relation.fingerprint}, so a repeated query skips the
      O(N) [Optimizer.prepare];
    + {b L2} — heavy-part matrix products keyed by (fingerprints,
      partition thresholds), via the {!Joinproj.Two_path.memo} hooks;
    + {b L3} — whole results with cost-based admission ({!offer}): an
      entry is admitted only when its measured recompute cost times its
      observed miss count beats its byte footprint.

    All levels share one LANDLORD-evicted byte budget.  Every level is
    {e semantic}, not transactional: entries are pure functions of the
    relation fingerprints and integer parameters in their key, so a hit
    returns a value byte-identical to what recomputation would produce.
    Coherence rules (enforced by the cache tests and the integration
    matrix):

    - relations are fingerprinted once at load and treated as frozen —
      mutation-based invalidation is unsound because [Relation.adj_*]
      share arrays with the index (see {!Jp_relation.Relation.fingerprint});
    - a dynamic view update invalidates by fingerprint ({!invalidate});
    - results are published {e after} verification and never from a
      cancelled, faulted or degraded attempt ({!binding_publish} runs the
      verifier first; [Jp_service] only publishes clean [Ok] outcomes);
    - lookups happen once per query or phase, never per tuple.

    A single mutex guards the store: safe to share between the service's
    worker domains.  All operations are deterministic given the same
    sequence of calls; wall-clock costs only bias admission and eviction
    priority, never the values returned. *)

module Relation = Jp_relation.Relation

type t
(** A cache instance (one per service / CLI invocation). *)

type config = {
  budget_bytes : int;
      (** Resident byte budget shared by all levels.  Entries larger than
          the whole budget are rejected outright. *)
  admit_seconds_per_mb : float;
      (** L3 admission bar: {!offer} admits an entry only when
          [cost_s * misses_seen >= admit_seconds_per_mb * bytes / 1Mb].
          L1/L2 entries ({!put}) skip the test — reusing them is the
          reason the cache exists. *)
}

val default_config : config
(** 64 Mb budget, 5 ms/Mb admission bar. *)

val create : ?config:config -> unit -> t

val with_budget_mb : int -> config
(** [default_config] with the given budget in megabytes. *)

(** Structured cache keys: a kind string, the fingerprints of the
    relations the entry derives from, and integer parameters (partition
    thresholds, engine ids).  The fingerprints double as the invalidation
    index for {!invalidate}. *)
module Key : sig
  type t

  val v : kind:string -> ?fps:int list -> ?params:int list -> unit -> t

  val of_relations : kind:string -> ?params:int list -> Relation.t list -> t
  (** Key over the fingerprints of the given relations. *)

  val to_string : t -> string
end

type 'a tag
(** Type witness for heterogeneous storage.  Create one per value type at
    module-load time and reuse it: two distinct [tag] values never alias,
    even with the same name (a lookup through the wrong tag misses). *)

val tag : string -> 'a tag

(** {1 Generic store} *)

val find : t -> 'a tag -> Key.t -> 'a option
(** Bumps hit/miss statistics (and the miss count consulted by {!offer}'s
    admission test). *)

val put : t -> 'a tag -> Key.t -> bytes:int -> cost_s:float -> 'a -> unit
(** Unconditional insert (L1/L2): evicts under the LANDLORD budget as
    needed, replaces any entry under the same key.  [cost_s] seeds the
    entry's eviction credit — cheap-to-rebuild entries go first. *)

val offer : t -> 'a tag -> Key.t -> bytes:int -> cost_s:float -> 'a -> bool
(** Cost-based insert (L3): admits only when the measured recompute cost
    times the key's observed miss count beats the byte footprint (see
    {!config}).  Returns whether the entry was admitted. *)

val invalidate : t -> fp:int -> unit
(** Drops every entry whose key lists the fingerprint [fp].  Called by
    the dynamic-view layer on every base-relation update. *)

val clear : t -> unit

type stats = {
  entries : int;
  bytes : int;  (** resident footprint *)
  hits : int;
  misses : int;
  evictions : int;
  rejections : int;  (** admission-test refusals *)
  invalidations : int;  (** entries dropped by {!invalidate} *)
}

val stats : t -> stats
(** Exact, independent of whether {!Jp_obs} recording is enabled (the
    [cache.*] counters mirror these when it is). *)

val pp_stats : Format.formatter -> stats -> unit

(** {1 Typed views used by the engines} *)

val prepared : t -> r:Relation.t -> s:Relation.t -> Joinproj.Optimizer.prepared
(** L1: cached [Optimizer.prepare ~r ~s].  The value is sealed
    ({!Joinproj.Optimizer.seal_prepared}) before publication so worker
    domains never race on its lazy component. *)

val two_path_memo :
  t -> r:Relation.t -> s:Relation.t -> Joinproj.Two_path.memo
(** L1+L2 hooks for {!Joinproj.Two_path.project} /
    [project_counts]: prepared statistics and heavy-part matrix products
    served from the cache.  The memo is specific to this (r, s) pair.
    Products are keyed on thresholds but not on [domains]: the matrix
    kernels produce identical matrices for any worker count.  When the
    heavy product runs tiled, the tile hooks cache partial products at
    tile granularity instead — keys add (tile_bits, ti, tj) so a later
    query re-uses exactly the tiles it shares. *)

(** {1 L3 result bindings (consumed by [Jp_service])} *)

type 'a binding
(** One result slot: cache, key, type witness, byte estimator and
    verifier, bundled so the service can consult and publish without
    knowing the result type. *)

val binding :
  t ->
  'a tag ->
  Key.t ->
  bytes_of:('a -> int) ->
  ?verify:('a -> bool) ->
  unit ->
  'a binding

val binding_find : 'a binding -> 'a option

val binding_publish : 'a binding -> cost_s:float -> 'a -> bool
(** Runs the verifier, then {!offer}s the value — in that order, so a
    value that fails verification is never resident, not even briefly.
    Returns whether the entry was admitted. *)
