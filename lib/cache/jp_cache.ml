module Relation = Jp_relation.Relation
module Boolmat = Jp_matrix.Boolmat
module Intmat = Jp_matrix.Intmat
module Optimizer = Joinproj.Optimizer
module Two_path = Joinproj.Two_path
module Obs = Jp_obs
module Metrics = Jp_metrics
module Timer = Jp_util.Timer

type config = { budget_bytes : int; admit_seconds_per_mb : float }

let default_config =
  { budget_bytes = 64 * 1024 * 1024; admit_seconds_per_mb = 0.005 }

let with_budget_mb mb = { default_config with budget_bytes = mb * 1024 * 1024 }

(* ------------------------------------------------------------------ *)
(* keys                                                                *)

module Key = struct
  type t = { k_str : string; k_fps : int list }

  let v ~kind ?(fps = []) ?(params = []) () =
    let b = Buffer.create 48 in
    Buffer.add_string b kind;
    List.iter (fun fp -> Buffer.add_string b (Printf.sprintf "|%x" fp)) fps;
    List.iter (fun p -> Buffer.add_string b (Printf.sprintf ":%d" p)) params;
    { k_str = Buffer.contents b; k_fps = fps }

  let of_relations ~kind ?params rels =
    v ~kind ~fps:(List.map Relation.fingerprint rels) ?params ()

  let to_string k = k.k_str
end

(* ------------------------------------------------------------------ *)
(* heterogeneous values: one extension constructor per tag             *)

type univ = ..

type 'a tag = { inj : 'a -> univ; proj : univ -> 'a option }

let tag (type s) (_name : string) : s tag =
  let module M = struct
    type univ += U of s
  end in
  {
    inj = (fun x -> M.U x);
    proj = (function M.U x -> Some x | _ -> None);
  }

(* ------------------------------------------------------------------ *)
(* the store                                                           *)

type entry = {
  e_key : string;
  e_fps : int list;
  e_bytes : int;
  e_cost : float; (* measured recompute seconds; eviction credit ceiling *)
  mutable e_credit : float; (* LANDLORD credit, refreshed on hit *)
  e_seq : int; (* insertion order: deterministic tie-break *)
  e_value : univ;
}

type t = {
  lock : Mutex.t;
  cfg : config;
  table : (string, entry) Hashtbl.t;
  by_fp : (int, string list ref) Hashtbl.t;
  miss_counts : (string, int) Hashtbl.t;
  mutable bytes : int;
  mutable seq : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable rejections : int;
  mutable invalidations : int;
}

let create ?(config = default_config) () =
  {
    lock = Mutex.create ();
    cfg = config;
    table = Hashtbl.create 64;
    by_fp = Hashtbl.create 64;
    miss_counts = Hashtbl.create 64;
    bytes = 0;
    seq = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    rejections = 0;
    invalidations = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | x ->
    Mutex.unlock t.lock;
    x
  | exception e ->
    Mutex.unlock t.lock;
    raise e

(* Bound on the miss-popularity table so an adversarial key stream cannot
   grow it without limit; once full, unseen keys count as one miss. *)
let max_tracked_keys = 1 lsl 16

let note_miss t key =
  t.misses <- t.misses + 1;
  Obs.incr Obs.C.cache_misses;
  match Hashtbl.find_opt t.miss_counts key with
  | Some n -> Hashtbl.replace t.miss_counts key (n + 1)
  | None ->
    if Hashtbl.length t.miss_counts < max_tracked_keys then
      Hashtbl.replace t.miss_counts key 1

let misses_seen t key =
  match Hashtbl.find_opt t.miss_counts key with Some n -> n | None -> 1

(* Unlink [e] from the table, the fingerprint index and the byte gauge.
   Callers account the removal as an eviction or an invalidation. *)
let drop_entry t e =
  Hashtbl.remove t.table e.e_key;
  t.bytes <- t.bytes - e.e_bytes;
  Obs.add Obs.C.cache_bytes (-e.e_bytes);
  Metrics.add_gauge Metrics.G.cache_bytes (-e.e_bytes);
  List.iter
    (fun fp ->
      match Hashtbl.find_opt t.by_fp fp with
      | None -> ()
      | Some keys ->
        keys := List.filter (fun k -> k <> e.e_key) !keys;
        if !keys = [] then Hashtbl.remove t.by_fp fp)
    e.e_fps

(* LANDLORD: every entry holds credit (seeded by its recompute cost,
   refreshed on hit); to free space, subtract the smallest credit-per-byte
   rate from everyone and evict whoever reaches zero.  Victim order is the
   insertion sequence, so eviction is deterministic for a given call
   sequence even though Hashtbl iteration order is unspecified. *)
let evict_until t ~need =
  while t.bytes + need > t.cfg.budget_bytes && Hashtbl.length t.table > 0 do
    let min_rate = ref infinity in
    Hashtbl.iter
      (fun _ e ->
        let rate = e.e_credit /. float_of_int (max 1 e.e_bytes) in
        if rate < !min_rate then min_rate := rate)
      t.table;
    let victims = ref [] in
    Hashtbl.iter
      (fun _ e ->
        e.e_credit <-
          e.e_credit -. (!min_rate *. float_of_int (max 1 e.e_bytes));
        if e.e_credit <= 1e-12 then victims := e :: !victims)
      t.table;
    let victims =
      List.sort (fun a b -> Int.compare a.e_seq b.e_seq) !victims
    in
    (* The minimum-rate entry always lands at zero, so each round evicts
       at least one entry and the loop terminates. *)
    let evicted = ref 0 in
    List.iter
      (fun e ->
        if Hashtbl.mem t.table e.e_key then begin
          drop_entry t e;
          t.evictions <- t.evictions + 1;
          Stdlib.incr evicted
        end)
      victims;
    Obs.add Obs.C.cache_evictions !evicted
  done

let insert t ~key ~fps ~bytes ~cost_s value =
  (match Hashtbl.find_opt t.table key with
  | Some old -> drop_entry t old
  | None -> ());
  evict_until t ~need:bytes;
  let e =
    {
      e_key = key;
      e_fps = fps;
      e_bytes = bytes;
      e_cost = cost_s;
      e_credit = cost_s;
      e_seq = t.seq;
      e_value = value;
    }
  in
  t.seq <- t.seq + 1;
  Hashtbl.replace t.table key e;
  t.bytes <- t.bytes + bytes;
  Obs.add Obs.C.cache_bytes bytes;
  Metrics.add_gauge Metrics.G.cache_bytes bytes;
  List.iter
    (fun fp ->
      match Hashtbl.find_opt t.by_fp fp with
      | Some keys -> keys := key :: !keys
      | None -> Hashtbl.replace t.by_fp fp (ref [ key ]))
    fps

let find t tg key =
  locked t (fun () ->
      let ks = Key.to_string key in
      match Hashtbl.find_opt t.table ks with
      | Some e -> (
        match tg.proj e.e_value with
        | Some v ->
          (* Refresh the LANDLORD credit up to the entry's recompute
             cost: recently useful entries survive the next squeeze. *)
          e.e_credit <- Float.max e.e_credit e.e_cost;
          t.hits <- t.hits + 1;
          Obs.incr Obs.C.cache_hits;
          Some v
        | None ->
          (* Same key string through a different tag: treat as a miss. *)
          note_miss t ks;
          None)
      | None ->
        note_miss t ks;
        None)

let put t tg key ~bytes ~cost_s v =
  locked t (fun () ->
      if bytes <= t.cfg.budget_bytes then
        insert t ~key:(Key.to_string key) ~fps:key.Key.k_fps ~bytes ~cost_s
          (tg.inj v)
      else begin
        t.rejections <- t.rejections + 1;
        Obs.incr Obs.C.cache_rejects
      end)

let offer t tg key ~bytes ~cost_s v =
  locked t (fun () ->
      let ks = Key.to_string key in
      let admit =
        bytes <= t.cfg.budget_bytes
        && cost_s *. float_of_int (misses_seen t ks)
           >= t.cfg.admit_seconds_per_mb
              *. (float_of_int bytes /. (1024.0 *. 1024.0))
      in
      if admit then insert t ~key:ks ~fps:key.Key.k_fps ~bytes ~cost_s (tg.inj v)
      else begin
        t.rejections <- t.rejections + 1;
        Obs.incr Obs.C.cache_rejects
      end;
      admit)

let invalidate t ~fp =
  locked t (fun () ->
      match Hashtbl.find_opt t.by_fp fp with
      | None -> ()
      | Some keys ->
        List.iter
          (fun key ->
            match Hashtbl.find_opt t.table key with
            | None -> ()
            | Some e ->
              drop_entry t e;
              t.invalidations <- t.invalidations + 1;
              Obs.incr Obs.C.cache_invalidations)
          !keys;
        Hashtbl.remove t.by_fp fp)

let clear t =
  locked t (fun () ->
      Obs.add Obs.C.cache_bytes (-t.bytes);
      Metrics.add_gauge Metrics.G.cache_bytes (-t.bytes);
      Hashtbl.reset t.table;
      Hashtbl.reset t.by_fp;
      Hashtbl.reset t.miss_counts;
      t.bytes <- 0)

type stats = {
  entries : int;
  bytes : int;
  hits : int;
  misses : int;
  evictions : int;
  rejections : int;
  invalidations : int;
}

let stats t =
  locked t (fun () ->
      {
        entries = Hashtbl.length t.table;
        bytes = t.bytes;
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        rejections = t.rejections;
        invalidations = t.invalidations;
      })

let pp_stats fmt s =
  Format.fprintf fmt
    "cache: %d entries, %d bytes, %d hits / %d misses, %d evicted, %d rejected, %d invalidated"
    s.entries s.bytes s.hits s.misses s.evictions s.rejections s.invalidations

(* ------------------------------------------------------------------ *)
(* typed views                                                         *)

let prepared_tag : Optimizer.prepared tag = tag "two_path.prep"

let boolmat_tag : Boolmat.t tag = tag "two_path.bool_mm"

let intmat_tag : Intmat.t tag = tag "two_path.count_mm"

let boolmat_bytes m =
  (Boolmat.rows m * ((Boolmat.cols m + 61) / 62) * 8) + 64

let intmat_bytes (m : Intmat.t) = (m.Intmat.rows * m.Intmat.cols * 8) + 64

(* L1/L2 build-or-fetch.  The builder runs outside the lock (which covers
   only find/put), so two concurrent misses may both build; the second
   [put] simply replaces the first with an identical value — the values
   are pure functions of the key.  Determinism is unaffected. *)
let find_or_build t tg key ~bytes_of build =
  match find t tg key with
  | Some v -> v
  | None ->
    let t0 = Timer.now () in
    let v = build () in
    let cost = Timer.now () -. t0 in
    put t tg key ~bytes:(bytes_of v) ~cost_s:cost v;
    v

let prepared_keyed t ~fps build =
  let key = Key.v ~kind:"two_path.prep" ~fps () in
  find_or_build t prepared_tag key ~bytes_of:Optimizer.prepared_bytes
    (fun () ->
      let p = build () in
      (* Force the lazy join size before publication: concurrent forcing
         of one suspension from two domains is unsafe in OCaml 5. *)
      Optimizer.seal_prepared p;
      p)

let prepared t ~r ~s =
  prepared_keyed t
    ~fps:[ Relation.fingerprint r; Relation.fingerprint s ]
    (fun () -> Optimizer.prepare ~r ~s)

let two_path_memo t ~r ~s =
  let fps = [ Relation.fingerprint r; Relation.fingerprint s ] in
  {
    Two_path.memo_prepared = (fun build -> prepared_keyed t ~fps build);
    memo_bool_product =
      (fun ~d1 ~d2 build ->
        let key = Key.v ~kind:"two_path.bool_mm" ~fps ~params:[ d1; d2 ] () in
        find_or_build t boolmat_tag key ~bytes_of:boolmat_bytes build);
    memo_count_product =
      (fun ~d1 build ->
        let key = Key.v ~kind:"two_path.count_mm" ~fps ~params:[ d1 ] () in
        find_or_build t intmat_tag key ~bytes_of:intmat_bytes build);
    memo_bool_tile =
      (fun ~d1 ~d2 ~tile_bits ~ti ~tj build ->
        let key =
          Key.v ~kind:"two_path.bool_tile" ~fps
            ~params:[ d1; d2; tile_bits; ti; tj ]
            ()
        in
        find_or_build t boolmat_tag key ~bytes_of:boolmat_bytes build);
    memo_count_tile =
      (fun ~d1 ~tile_bits ~ti ~tj build ->
        let key =
          Key.v ~kind:"two_path.count_tile" ~fps
            ~params:[ d1; tile_bits; ti; tj ]
            ()
        in
        find_or_build t intmat_tag key ~bytes_of:intmat_bytes build);
  }

(* ------------------------------------------------------------------ *)
(* L3 bindings                                                         *)

type 'a binding = {
  b_cache : t;
  b_tag : 'a tag;
  b_key : Key.t;
  b_bytes_of : 'a -> int;
  b_verify : 'a -> bool;
}

let binding t tg key ~bytes_of ?(verify = fun _ -> true) () =
  { b_cache = t; b_tag = tg; b_key = key; b_bytes_of = bytes_of; b_verify = verify }

let binding_find b = find b.b_cache b.b_tag b.b_key

let binding_publish b ~cost_s v =
  b.b_verify v
  && offer b.b_cache b.b_tag b.b_key ~bytes:(b.b_bytes_of v) ~cost_s v
