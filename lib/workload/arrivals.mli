(** Open-loop arrival schedules for the serving benchmarks.

    A closed-loop client waits for each answer before sending the next
    query, so it can never drive the service past its capacity — queueing
    collapse is invisible to it.  Production traffic does not wait.  This
    module generates {e open-loop} arrival processes: a timestamped
    schedule of submission offsets, fixed up front and deterministic per
    seed, that a load driver replays against the wall clock regardless of
    how the service is coping.

    Everything here is pure bookkeeping over {!Jp_util.Rng} — no clock,
    no sleeping — so schedules are exactly reproducible and unit-testable;
    {!drive} takes its clock and sleeper as arguments (the CLI passes
    [Jp_util.Timer.now] and [Unix.sleepf], tests pass a fake clock).
    {!Jp_bsi.Bsi.simulate} consumes the same fixed-rate schedule, so the
    repository has one seeded arrival implementation. *)

type process =
  | Fixed_rate  (** query [i] arrives exactly at [i / rate] seconds *)
  | Poisson
      (** i.i.d. exponential interarrivals with mean [1 / rate] — the
          memoryless arrival stream of a large independent user
          population; bursts and lulls are part of the draw *)

val process_to_string : process -> string

val process_of_string : string -> process option

val schedule :
  ?process:process -> ?seed:int -> rate:float -> count:int -> unit -> float array
(** [schedule ~rate ~count ()] is the nondecreasing array of [count]
    arrival offsets in seconds from the stream's start.  [process]
    defaults to {!Fixed_rate}, whose offsets are exactly [i /. rate]
    regardless of [seed]; {!Poisson} draws its interarrivals from
    [Rng.create seed] (default seed 0), so equal seeds yield identical
    schedules.  Raises [Invalid_argument] when [rate <= 0] or
    [count < 0]. *)

val sweep : lo:float -> hi:float -> steps:int -> float array
(** [sweep ~lo ~hi ~steps] is a geometric ladder of [steps] arrival
    rates from [lo] to [hi] inclusive — the x-axis of a saturation
    sweep, equal ratio between consecutive rates so the knee is
    straddled at every scale.  [steps = 1] yields [[| hi |]].  Raises
    [Invalid_argument] when [lo <= 0], [hi < lo] or [steps < 1]. *)

val drive :
  now:(unit -> float) ->
  sleep:(float -> unit) ->
  schedule:float array ->
  (int -> unit) ->
  float
(** [drive ~now ~sleep ~schedule submit] replays the schedule in real
    time: for each index [i] in order it waits until [start +.
    schedule.(i)] (where [start = now ()] at entry) and calls
    [submit i], {e without} waiting for anything the submission kicked
    off — the open-loop discipline.  A submission running behind the
    schedule is issued immediately (no sleep), so sustained slowness
    shows up as queueing in the system under test, not as a stretched
    schedule.  Returns [start], letting the caller compute each query's
    lateness and the run's makespan on the same clock. *)
