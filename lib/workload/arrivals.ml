(* Open-loop arrival schedules. Pure (no clock, no Unix dependency):
   schedules are arrays of offsets, pacing is injected into [drive]. *)

module Rng = Jp_util.Rng

type process = Fixed_rate | Poisson

let process_to_string = function
  | Fixed_rate -> "fixed"
  | Poisson -> "poisson"

let process_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "fixed" | "fixed-rate" | "fixed_rate" -> Some Fixed_rate
  | "poisson" -> Some Poisson
  | _ -> None

let schedule ?(process = Fixed_rate) ?(seed = 0) ~rate ~count () =
  if not (rate > 0.) then invalid_arg "Arrivals.schedule: rate must be > 0";
  if count < 0 then invalid_arg "Arrivals.schedule: count must be >= 0";
  match process with
  | Fixed_rate -> Array.init count (fun i -> float_of_int i /. rate)
  | Poisson ->
      let rng = Rng.create seed in
      let t = ref 0. in
      Array.init count (fun i ->
          if i > 0 then begin
            (* Exponential interarrival with mean 1/rate by inversion.
               [Rng.float] draws from [0, 1), so [1 - u] is in (0, 1] and
               the log is finite. *)
            let u = Rng.float rng 1.0 in
            t := !t +. (-.log (1.0 -. u) /. rate)
          end;
          !t)

let sweep ~lo ~hi ~steps =
  if not (lo > 0.) then invalid_arg "Arrivals.sweep: lo must be > 0";
  if hi < lo then invalid_arg "Arrivals.sweep: hi must be >= lo";
  if steps < 1 then invalid_arg "Arrivals.sweep: steps must be >= 1";
  if steps = 1 then [| hi |]
  else
    let ratio = (hi /. lo) ** (1.0 /. float_of_int (steps - 1)) in
    Array.init steps (fun i ->
        if i = steps - 1 then hi (* exact endpoint, no drift from ** *)
        else lo *. (ratio ** float_of_int i))

let drive ~now ~sleep ~schedule submit =
  let start = now () in
  Array.iteri
    (fun i offset ->
      let due = start +. offset in
      let wait = due -. now () in
      if wait > 0. then sleep wait;
      submit i)
    schedule;
  start
