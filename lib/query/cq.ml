type term = Var of string | Const of int

type atom = { relation : string; args : term * term }

type t = { head : string list; body : atom list }

(* ------------------------------------------------------------------ *)
(* parser: a small hand-rolled recursive descent with positions        *)
(* ------------------------------------------------------------------ *)

type cursor = { text : string; mutable pos : int }

exception Parse_error of string * int

let error c msg = raise (Parse_error (msg, c.pos))

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let continue = ref true in
  while !continue do
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') -> advance c
    | _ -> continue := false
  done

let expect c ch =
  skip_ws c;
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> error c (Printf.sprintf "expected '%c', found '%c'" ch x)
  | None -> error c (Printf.sprintf "expected '%c', found end of input" ch)

let is_ident_start ch = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z')

let is_ident ch =
  is_ident_start ch || (ch >= '0' && ch <= '9') || ch = '_'

let is_digit ch = ch >= '0' && ch <= '9'

let parse_ident c =
  skip_ws c;
  match peek c with
  | Some ch when is_ident_start ch ->
    let start = c.pos in
    while match peek c with Some ch -> is_ident ch | None -> false do
      advance c
    done;
    String.sub c.text start (c.pos - start)
  | Some ch -> error c (Printf.sprintf "expected identifier, found '%c'" ch)
  | None -> error c "expected identifier, found end of input"

let parse_term c =
  skip_ws c;
  match peek c with
  | Some ch when is_digit ch || ch = '-' ->
    let start = c.pos in
    if ch = '-' then advance c;
    (match peek c with
    | Some d when is_digit d -> ()
    | _ -> error c "expected digits after '-'");
    while match peek c with Some d -> is_digit d | None -> false do
      advance c
    done;
    Const (int_of_string (String.sub c.text start (c.pos - start)))
  | _ -> Var (parse_ident c)

let parse_var c =
  match parse_term c with
  | Var v -> v
  | Const _ -> error c "head arguments must be variables"

(* name(arg, arg) *)
let parse_atom c =
  let relation = parse_ident c in
  expect c '(';
  let a = parse_term c in
  expect c ',';
  let b = parse_term c in
  expect c ')';
  { relation; args = (a, b) }

let rec parse_separated c parse_one acc =
  let item = parse_one c in
  skip_ws c;
  match peek c with
  | Some ',' ->
    advance c;
    parse_separated c parse_one (item :: acc)
  | _ -> List.rev (item :: acc)

let atom_vars { args = a, b; _ } =
  match (a, b) with
  | Var x, Var y when x = y -> [ x ]
  | Var x, Var y -> [ x; y ]
  | Var x, Const _ -> [ x ]
  | Const _, Var y -> [ y ]
  | Const _, Const _ -> []

let vars q =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  List.iter
    (fun atom ->
      List.iter
        (fun v ->
          if not (Hashtbl.mem seen v) then begin
            Hashtbl.add seen v ();
            out := v :: !out
          end)
        (atom_vars atom))
    q.body;
  List.rev !out

let parse input =
  let c = { text = input; pos = 0 } in
  try
    let _name = parse_ident c in
    expect c '(';
    skip_ws c;
    let parse_head_var c =
      skip_ws c;
      let pos = c.pos in
      (parse_var c, pos)
    in
    let head_with_pos =
      match peek c with
      | Some ')' -> []
      | _ -> parse_separated c parse_head_var []
    in
    expect c ')';
    expect c ':';
    expect c '-';
    let body = parse_separated c parse_atom [] in
    skip_ws c;
    (match peek c with
    | Some ch -> error c (Printf.sprintf "unexpected trailing '%c'" ch)
    | None -> ());
    let head = List.map fst head_with_pos in
    let q = { head; body } in
    let body_vars = vars q in
    List.iter
      (fun (v, pos) ->
        if not (List.mem v body_vars) then
          raise (Parse_error ("head variable '" ^ v ^ "' not bound in body", pos)))
      head_with_pos;
    Ok q
  with Parse_error (msg, pos) ->
    Error (Printf.sprintf "parse error at offset %d: %s" pos msg)

let term_to_string = function Var v -> v | Const k -> string_of_int k

let to_string q =
  let atom_to_string { relation; args = a, b } =
    Printf.sprintf "%s(%s, %s)" relation (term_to_string a) (term_to_string b)
  in
  Printf.sprintf "Q(%s) :- %s"
    (String.concat ", " q.head)
    (String.concat ", " (List.map atom_to_string q.body))

let equal a b = a.head = b.head && a.body = b.body
