module SS = Set.Make (String)

type join_tree = { order : int list; parent : int array }

(* GYO: node e is an ear iff the variables it shares with the rest of the
   hypergraph are all contained in some single other node f (its parent).
   Variables private to e are irrelevant. *)
let join_tree_sets var_lists =
  let sets = Array.map SS.of_list var_lists in
  let n = Array.length sets in
  if n = 0 then None
  else begin
    let alive = Array.make n true in
    let parent = Array.make n (-1) in
    let order = ref [] in
    let removed = ref 0 in
    let shared_with_rest e =
      let acc = ref SS.empty in
      Array.iteri
        (fun f vf -> if f <> e && alive.(f) then acc := SS.union !acc (SS.inter sets.(e) vf))
        sets;
      !acc
    in
    let find_ear () =
      let found = ref None in
      (try
         Array.iteri
           (fun e _ ->
             if alive.(e) && !found = None then begin
               let shared = shared_with_rest e in
               (* candidate parents: any other alive atom covering [shared] *)
               Array.iteri
                 (fun f vf ->
                   if f <> e && alive.(f) && !found = None && SS.subset shared vf
                   then begin
                     found := Some (e, f);
                     raise Exit
                   end)
                 sets
             end)
           sets
       with Exit -> ());
      !found
    in
    let continue = ref true in
    while !continue && !removed < n - 1 do
      match find_ear () with
      | Some (e, f) ->
        alive.(e) <- false;
        parent.(e) <- f;
        order := e :: !order;
        incr removed
      | None -> continue := false
    done;
    if !removed < n - 1 then None
    else begin
      (* the last alive atom is the root *)
      let root = ref (-1) in
      Array.iteri (fun e a -> if a then root := e) alive;
      Some { order = List.rev (!root :: !order); parent }
    end
  end

let join_tree q =
  join_tree_sets (Array.of_list (List.map Cq.atom_vars q.Cq.body))

let is_acyclic q = join_tree q <> None
