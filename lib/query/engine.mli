(** Query engine: shape recognition + dispatch.

    The paper's future-work direction is a planner that "decomposes the
    join into multiple subqueries and evaluates in the optimal way".  This
    engine implements that program:

    - queries of whole-query star shape — every atom shares exactly one
      join variable, all other variables projected — are routed directly
      to the MMJoin star algorithm ({!Joinproj.Star}), covering the
      2-path query as k = 2;
    - every other acyclic query goes through the decomposition planner
      ({!Planner}): embedded 2-path / k-star fragments are carved out,
      cost-gated, dispatched to the MM engines and stitched back into the
      Yannakakis semijoin program;
    - cyclic queries are rejected.

    Atoms may bind the join variable in either position (the engine
    transposes relations as needed — transposition is O(1), both
    adjacency directions are always materialized). *)

type catalog = Yannakakis.catalog

type plan =
  | Star_mm of { k : int }  (** whole-query star: MMJoin with k atoms *)
  | Planned of Planner.t  (** decomposition plan (possibly pure Yannakakis) *)

val plan_of :
  ?domains:int ->
  ?policy:Planner.policy ->
  ?catalog:catalog ->
  Cq.t ->
  (plan, string) result
(** The route {!run} would take; errors on cyclic queries.  [catalog]
    feeds the planner's cost gate (see {!Planner.plan}); under
    [Never_mm] even whole-query stars plan as pure Yannakakis. *)

val describe : plan -> string
(** One line, e.g. ["star query (k=3) via MMJoin"]. *)

val explain : plan -> string
(** Multi-line plan tree (see {!Planner.explain}); newline-terminated. *)

val run :
  ?domains:int ->
  ?policy:Planner.policy ->
  ?guard:Jp_adaptive.Guard.config ->
  ?cancel:Jp_util.Cancel.t ->
  ?cache:Jp_cache.t ->
  catalog ->
  Cq.t ->
  (Jp_relation.Tuples.t, string) result
(** Evaluates the query.  Head tuples come in head-variable order.
    [guard]/[cancel]/[cache] thread into the MM fragment engines and the
    stitching phases with the byte-identical-when-absent guarantee.
    Errors on cyclic queries, unknown relations and empty heads (boolean
    queries are answered through {!boolean}). *)

val boolean :
  ?domains:int ->
  ?policy:Planner.policy ->
  ?guard:Jp_adaptive.Guard.config ->
  ?cancel:Jp_util.Cancel.t ->
  ?cache:Jp_cache.t ->
  catalog ->
  Cq.t ->
  (bool, string) result
(** Satisfiability of the query body (the head is ignored): true iff the
    join is non-empty.  Runs through the planner (a boolean head is never
    whole-query star shaped). *)
