(** Yannakakis' algorithm for acyclic conjunctive queries.

    Given a join tree, evaluation is three sweeps over the atom bags:

    + bottom-up semijoin (parent ⋉ child) — removes parent tuples with no
      support below;
    + top-down semijoin (child ⋉ parent) — after this "full reduction"
      every remaining tuple participates in some output tuple;
    + bottom-up join, projecting each intermediate onto the head
      variables collected so far plus the parent's connector variables,
      which keeps intermediates output-polynomial.

    Runs in O(|D| + intermediate sizes) with hash joins; this is the
    general-query fallback around the specialized 2-path/star algorithms
    (see {!Engine}), and — through the bag-level entry points — the
    stitching layer that joins the decomposition planner's MM fragment
    outputs back into the rest of the query (see {!Planner}). *)

type catalog = (string * Jp_relation.Relation.t) list
(** Relation bindings by name; names are case-sensitive. *)

val run : catalog -> Cq.t -> (Jp_relation.Tuples.t, string) result
(** Evaluates an acyclic query; errors on cyclic queries, unknown
    relation names, or head variables of width 0 (boolean queries are
    answered through {!boolean}). *)

val boolean : catalog -> Cq.t -> (bool, string) result
(** Satisfiability of the query body (the head is ignored): true iff the
    join is non-empty. *)

val run_bags :
  ?cancel:Jp_util.Cancel.t ->
  head:string list ->
  Bag.t array ->
  (Jp_relation.Tuples.t, string) result
(** The semijoin program over an arbitrary bag array: the join tree comes
    from the bags' variable sets ({!Hypergraph.join_tree_sets}), so a bag
    may be a plain atom or a derived fragment output of any arity.  The
    input array is not mutated.  Errors if the bags' hypergraph is cyclic,
    [head] is empty, or a head variable occurs in no bag.  [cancel] is
    polled at the three phase boundaries, never per tuple; absent, the
    code path is the historical one. *)

val boolean_bags :
  ?cancel:Jp_util.Cancel.t -> Bag.t array -> (bool, string) result
(** Satisfiability of the bags' join: true iff it is non-empty. *)
