module Relation = Jp_relation.Relation

type t = { vars : string list; rows : (int array, unit) Hashtbl.t }

let make ~vars rows =
  let t = { vars; rows = Hashtbl.create (List.length rows + 1) } in
  let width = List.length vars in
  List.iter
    (fun row ->
      if Array.length row <> width then invalid_arg "Bag.make: row width mismatch";
      Hashtbl.replace t.rows row ())
    rows;
  t

let vars t = t.vars

let cardinality t = Hashtbl.length t.rows

let rows t = Hashtbl.fold (fun row () acc -> row :: acc) t.rows []

let of_relation rel atom =
  let a, b = atom.Cq.args in
  let out = ref [] in
  let emit x y =
    match (a, b) with
    | Cq.Var va, Cq.Var vb when va = vb -> if x = y then out := [| x |] :: !out
    | Cq.Var _, Cq.Var _ -> out := [| x; y |] :: !out
    | Cq.Var _, Cq.Const k -> if y = k then out := [| x |] :: !out
    | Cq.Const k, Cq.Var _ -> if x = k then out := [| y |] :: !out
    | Cq.Const k1, Cq.Const k2 -> if x = k1 && y = k2 then out := [||] :: !out
  in
  Relation.iter emit rel;
  make ~vars:(Cq.atom_vars atom) !out

(* positions of [shared] columns in [t] *)
let positions t names =
  List.map
    (fun v ->
      let rec find i = function
        | [] -> invalid_arg ("Bag: unknown column " ^ v)
        | x :: _ when x = v -> i
        | _ :: rest -> find (i + 1) rest
      in
      find 0 t.vars)
    names

let shared_vars a b = List.filter (fun v -> List.mem v b.vars) a.vars

let key_of row ps = Array.of_list (List.map (fun p -> row.(p)) ps)

let semijoin a b =
  let shared = shared_vars a b in
  if shared = [] then if cardinality b = 0 then make ~vars:a.vars [] else a
  else begin
    let pa = positions a shared and pb = positions b shared in
    let keys = Hashtbl.create (cardinality b + 1) in
    Hashtbl.iter (fun row () -> Hashtbl.replace keys (key_of row pb) ()) b.rows;
    let kept =
      Hashtbl.fold
        (fun row () acc -> if Hashtbl.mem keys (key_of row pa) then row :: acc else acc)
        a.rows []
    in
    make ~vars:a.vars kept
  end

let join_project a b ~keep =
  let shared = shared_vars a b in
  let out_vars =
    List.filter (fun v -> List.mem v a.vars || List.mem v b.vars) keep
  in
  let pa_shared = positions a shared and pb_shared = positions b shared in
  (* for each output column, where to read it from: a first, else b *)
  let source =
    List.map
      (fun v ->
        if List.mem v a.vars then `A (List.hd (positions a [ v ]))
        else `B (List.hd (positions b [ v ])))
      out_vars
  in
  let build_row ra rb =
    Array.of_list
      (List.map (function `A p -> ra.(p) | `B p -> rb.(p)) source)
  in
  (* hash the smaller side on the shared key *)
  let index = Hashtbl.create (cardinality b + 1) in
  Hashtbl.iter
    (fun row () ->
      let k = key_of row pb_shared in
      Hashtbl.replace index k (row :: Option.value ~default:[] (Hashtbl.find_opt index k)))
    b.rows;
  let out = { vars = out_vars; rows = Hashtbl.create 64 } in
  Hashtbl.iter
    (fun ra () ->
      match Hashtbl.find_opt index (key_of ra pa_shared) with
      | None -> ()
      | Some matches ->
        List.iter (fun rb -> Hashtbl.replace out.rows (build_row ra rb) ()) matches)
    a.rows;
  out

let project t ~keep =
  let ps = positions t keep in
  let out = { vars = keep; rows = Hashtbl.create (cardinality t + 1) } in
  Hashtbl.iter
    (fun row () -> Hashtbl.replace out.rows (key_of row ps) ())
    t.rows;
  out

let to_sorted_list t =
  List.sort (List.compare Int.compare) (List.map Array.to_list (rows t))
