module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Tuples = Jp_relation.Tuples
module Cancel = Jp_util.Cancel
module Fragment = Joinproj.Fragment

type policy = Cost_gate | Always_mm | Never_mm

type part = {
  atom : int;
  relation : string;
  out_var : string;
  transposed : bool;
}

type fragment = {
  join_var : string;
  parts : part list;
  mm : bool;
  gate : Fragment.gate option;
}

type node =
  | Scan of { atom : int; relation : string }
  | Mm of fragment
  | Stitch of { head : string list; children : node list }

type t = { query : Cq.t; root : node; candidates : fragment list }

let query t = t.query

let root t = t.root

let candidates t = t.candidates

let fragments t = List.filter (fun f -> f.mm) t.candidates

(* ------------------------------------------------------------------ *)
(* fragment extraction                                                 *)
(* ------------------------------------------------------------------ *)

(* A join variable y is carvable iff: y is not in the head; y occurs in
   >= 2 atoms; every atom containing y is Var-Var with distinct variables
   and exactly one side equal to y; and the opposite ("out") variables
   are pairwise distinct.  Then y is local to those atoms, so replacing
   them with the projection of their join (a derived bag over the out
   variables) preserves the query: the existential over y commutes with
   the remaining joins.  The fragment is exactly the 2-path (k = 2) or
   k-star shape the MM engines evaluate output-sensitively. *)
let classify_part ~join_var idx atom =
  match atom.Cq.args with
  | Cq.Var a, Cq.Var b when a = join_var && b <> join_var ->
    Some { atom = idx; relation = atom.Cq.relation; out_var = b; transposed = true }
  | Cq.Var a, Cq.Var b when b = join_var && a <> join_var ->
    Some { atom = idx; relation = atom.Cq.relation; out_var = a; transposed = false }
  | _ -> None

let candidate_parts q y =
  let rec collect idx acc = function
    | [] -> Some (List.rev acc)
    | atom :: rest ->
      if List.mem y (Cq.atom_vars atom) then (
        match classify_part ~join_var:y idx atom with
        | None -> None
        | Some p -> collect (idx + 1) (p :: acc) rest)
      else collect (idx + 1) acc rest
  in
  match collect 0 [] q.Cq.body with
  | None -> None
  | Some parts ->
    let outs = List.map (fun p -> p.out_var) parts in
    if
      List.length parts >= 2
      && List.length (List.sort_uniq String.compare outs) = List.length outs
    then Some parts
    else None

(* Orient a part's relation so the join variable sits on the destination
   side — the layout Two_path.project / Star.project expect. *)
let resolve_part catalog p =
  match List.assoc_opt p.relation catalog with
  | None -> Error ("unknown relation: " ^ p.relation)
  | Some rel -> Ok (if p.transposed then Relation.transpose rel else rel)

let resolve_parts catalog parts =
  let rec go acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | p :: rest -> (
      match resolve_part catalog p with
      | Ok rel -> go (rel :: acc) rest
      | Error e -> Error e)
  in
  go [] parts

let gate_of ?machine ?domains catalog parts =
  match resolve_parts catalog parts with
  | Error _ -> None
  | Ok rels ->
    if Array.length rels = 2 then
      Some (Fragment.gate_two_path ?machine ?domains ~r:rels.(0) ~s:rels.(1) ())
    else Some (Fragment.gate_star ?machine ?domains rels)

let plan ?machine ?domains ?(policy = Cost_gate) ?catalog q =
  match Hypergraph.join_tree q with
  | None -> Error "query is cyclic (GYO reduction failed)"
  | Some _ ->
    let body = Array.of_list q.Cq.body in
    let n = Array.length body in
    let claimed = Array.make n false in
    let candidates = ref [] in
    List.iter
      (fun y ->
        if not (List.mem y q.Cq.head) then
          match candidate_parts q y with
          | None -> ()
          | Some parts ->
            if List.for_all (fun p -> not claimed.(p.atom)) parts then begin
              (* The gate (an O(N) Optimizer.prepare per candidate) only
                 runs when its verdict decides something: under the forced
                 policies the foil/forced timings must not pay for it. *)
              let gate =
                match (policy, catalog) with
                | Cost_gate, Some cat -> gate_of ?machine ?domains cat parts
                | _ -> None
              in
              let mm =
                match policy with
                | Never_mm -> false
                | Always_mm -> true
                | Cost_gate -> (
                  match gate with Some g -> g.Fragment.mm | None -> false)
              in
              if mm then List.iter (fun p -> claimed.(p.atom) <- true) parts;
              candidates := { join_var = y; parts; mm; gate } :: !candidates
            end)
      (Cq.vars q);
    let candidates = List.rev !candidates in
    let carved = List.filter (fun f -> f.mm) candidates in
    let starts_fragment idx =
      List.find_opt
        (fun f -> match f.parts with p :: _ -> p.atom = idx | [] -> false)
        carved
    in
    let children = ref [] in
    for idx = n - 1 downto 0 do
      if claimed.(idx) then (
        match starts_fragment idx with
        | Some f -> children := Mm f :: !children
        | None -> ())
      else
        children := Scan { atom = idx; relation = body.(idx).Cq.relation } :: !children
    done;
    Ok
      {
        query = q;
        root = Stitch { head = q.Cq.head; children = !children };
        candidates;
      }

(* ------------------------------------------------------------------ *)
(* rendering                                                           *)
(* ------------------------------------------------------------------ *)

let describe t =
  match fragments t with
  | [] -> "acyclic query via Yannakakis"
  | frags ->
    let two_paths, stars =
      List.partition (fun f -> List.length f.parts = 2) frags
    in
    let scans =
      match t.root with
      | Stitch { children; _ } ->
        List.length (List.filter (function Scan _ -> true | _ -> false) children)
      | _ -> 0
    in
    let shape_counts =
      String.concat " + "
        (List.filter
           (fun s -> s <> "")
           [
             (match List.length two_paths with
             | 0 -> ""
             | k -> Printf.sprintf "%d two-path" k);
             (match List.length stars with
             | 0 -> ""
             | k -> Printf.sprintf "%d star" k);
           ])
    in
    Printf.sprintf "decomposed: %s MM fragment%s + %d scan%s via Yannakakis"
      shape_counts
      (if List.length frags = 1 then "" else "s")
      scans
      (if scans = 1 then "" else "s")

let term_to_string = function Cq.Var v -> v | Cq.Const k -> string_of_int k

let atom_to_string atom =
  let a, b = atom.Cq.args in
  Printf.sprintf "%s(%s, %s)" atom.Cq.relation (term_to_string a)
    (term_to_string b)

let fragment_line body f =
  let shape =
    if List.length f.parts = 2 then "two-path"
    else Printf.sprintf "star k=%d" (List.length f.parts)
  in
  let atoms =
    String.concat " * " (List.map (fun p -> atom_to_string body.(p.atom)) f.parts)
  in
  let gate =
    match f.gate with
    | None -> ""
    | Some g ->
      if g.Fragment.mm then
        Printf.sprintf "  [est mm %.3es vs safe %.3es]" g.Fragment.est_mm_s
          g.Fragment.est_safe_s
      else Printf.sprintf "  [gated off: safe %.3es]" g.Fragment.est_safe_s
  in
  Printf.sprintf "mm %s on %s: %s%s" shape f.join_var atoms gate

let explain t =
  let body = Array.of_list t.query.Cq.body in
  let buf = Buffer.create 256 in
  let rec render indent node =
    let pad = String.make (2 * indent) ' ' in
    match node with
    | Stitch { head; children } ->
      Buffer.add_string buf
        (Printf.sprintf "%sstitch Q(%s) via Yannakakis over %d bag%s\n" pad
           (String.concat ", " head)
           (List.length children)
           (if List.length children = 1 then "" else "s"));
      List.iter (render (indent + 1)) children
    | Mm f -> Buffer.add_string buf (pad ^ fragment_line body f ^ "\n")
    | Scan { atom; _ } ->
      Buffer.add_string buf
        (pad ^ "scan " ^ atom_to_string body.(atom) ^ "\n")
  in
  render 0 t.root;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* execution                                                           *)
(* ------------------------------------------------------------------ *)

let bag_of_fragment ?domains ?guard ?cancel ?cache catalog f =
  match resolve_parts catalog f.parts with
  | Error e -> Error e
  | Ok rels ->
    let vars = List.map (fun p -> p.out_var) f.parts in
    if Array.length rels = 2 then begin
      let r = rels.(0) and s = rels.(1) in
      let memo =
        match cache with
        | None -> None
        | Some c -> Some (Jp_cache.two_path_memo c ~r ~s)
      in
      let pairs = Fragment.two_path ?domains ?guard ?cancel ?memo ~r ~s () in
      let rows = ref [] in
      Pairs.iter (fun x z -> rows := [| x; z |] :: !rows) pairs;
      Ok (Bag.make ~vars !rows)
    end
    else begin
      let tuples = Fragment.star ?domains ?guard ?cancel rels in
      let rows = ref [] in
      Tuples.iter (fun tup -> rows := Array.copy tup :: !rows) tuples;
      Ok (Bag.make ~vars !rows)
    end

let bags_of_plan ?domains ?guard ?cancel ?cache catalog t =
  let body = Array.of_list t.query.Cq.body in
  let children =
    match t.root with Stitch { children; _ } -> children | n -> [ n ]
  in
  let rec go acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | Scan { atom; relation } :: rest -> (
      match List.assoc_opt relation catalog with
      | None -> Error ("unknown relation: " ^ relation)
      | Some rel -> go (Bag.of_relation rel body.(atom) :: acc) rest)
    | Mm f :: rest -> (
      match bag_of_fragment ?domains ?guard ?cancel ?cache catalog f with
      | Ok bag -> go (bag :: acc) rest
      | Error e -> Error e)
    | Stitch _ :: _ -> Error "internal: nested stitch node"
  in
  go [] children

let run ?machine ?domains ?policy ?guard ?cancel ?cache catalog q =
  if q.Cq.head = [] then Error "boolean query: use Yannakakis.boolean"
  else
    match plan ?machine ?domains ?policy ~catalog q with
    | Error e -> Error e
    | Ok t -> (
      match bags_of_plan ?domains ?guard ?cancel ?cache catalog t with
      | Error e -> Error e
      | Ok bags -> Yannakakis.run_bags ?cancel ~head:q.Cq.head bags)

let boolean ?machine ?domains ?policy ?guard ?cancel ?cache catalog q =
  match plan ?machine ?domains ?policy ~catalog q with
  | Error e -> Error e
  | Ok t -> (
    match bags_of_plan ?domains ?guard ?cancel ?cache catalog t with
    | Error e -> Error e
    | Ok bags -> Yannakakis.boolean_bags ?cancel bags)
