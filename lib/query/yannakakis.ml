module Relation = Jp_relation.Relation
module Tuples = Jp_relation.Tuples
module Cancel = Jp_util.Cancel

type catalog = (string * Relation.t) list

let load_bags catalog q =
  let bags =
    List.map
      (fun atom ->
        match List.assoc_opt atom.Cq.relation catalog with
        | Some rel -> Ok (Bag.of_relation rel atom)
        | None -> Error ("unknown relation: " ^ atom.Cq.relation))
      q.Cq.body
  in
  let rec collect acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | Ok b :: rest -> collect (b :: acc) rest
    | Error e :: _ -> Error e
  in
  collect [] bags

(* The full semijoin program over an arbitrary bag array: the join tree
   comes from the bags' variable sets (a bag may be a binary atom or a
   derived fragment output of any arity).  [cancel] is polled at the three
   phase boundaries, never per tuple. *)
let evaluate_bags ?cancel ~head bags =
  let poll () = match cancel with Some c -> Cancel.check c | None -> () in
  match Hypergraph.join_tree_sets (Array.map Bag.vars bags) with
  | None -> Error "query is cyclic (GYO reduction failed)"
  | Some tree ->
    let bags = Array.copy bags in
    let non_root =
      List.filter (fun e -> tree.Hypergraph.parent.(e) >= 0) tree.Hypergraph.order
    in
    (* 1. bottom-up semijoin *)
    poll ();
    List.iter
      (fun e ->
        let p = tree.Hypergraph.parent.(e) in
        bags.(p) <- Bag.semijoin bags.(p) bags.(e))
      non_root;
    (* 2. top-down semijoin *)
    poll ();
    List.iter
      (fun e ->
        let p = tree.Hypergraph.parent.(e) in
        bags.(e) <- Bag.semijoin bags.(e) bags.(p))
      (List.rev non_root);
    (* 3. bottom-up join with projection: keep head variables plus the
       parent's own columns (the running-intersection property makes
       them the only connectors to the rest of the tree) *)
    poll ();
    List.iter
      (fun e ->
        let p = tree.Hypergraph.parent.(e) in
        let keep =
          head @ List.filter (fun v -> not (List.mem v head)) (Bag.vars bags.(p))
        in
        bags.(p) <- Bag.join_project bags.(p) bags.(e) ~keep)
      non_root;
    let root = List.nth tree.Hypergraph.order (List.length tree.Hypergraph.order - 1) in
    Ok bags.(root)

let run_bags ?cancel ~head bags =
  if head = [] then Error "boolean query: use Yannakakis.boolean"
  else
    match evaluate_bags ?cancel ~head bags with
    | Error e -> Error e
    | Ok root_bag ->
      let missing =
        List.filter (fun v -> not (List.mem v (Bag.vars root_bag))) head
      in
      if missing <> [] then
        Error ("internal: head variables lost: " ^ String.concat ", " missing)
      else begin
        let final = Bag.project root_bag ~keep:head in
        let k = List.length head in
        let dims =
          Array.make k
            (List.fold_left
               (fun acc row -> Array.fold_left (fun m v -> max m (v + 1)) acc row)
               1 (Bag.rows final))
        in
        let b = Tuples.create_builder ~arity:k ~dims in
        List.iter (fun row -> Tuples.add b row) (Bag.rows final);
        Ok (Tuples.build b)
      end

let boolean_bags ?cancel bags =
  match evaluate_bags ?cancel ~head:[] bags with
  | Error e -> Error e
  | Ok root_bag -> Ok (Bag.cardinality root_bag > 0)

let run catalog q =
  match load_bags catalog q with
  | Error e -> Error e
  | Ok bags -> run_bags ~head:q.Cq.head bags

let boolean catalog q =
  match load_bags catalog q with
  | Error e -> Error e
  | Ok bags -> boolean_bags bags
