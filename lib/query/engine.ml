module Relation = Jp_relation.Relation
module Tuples = Jp_relation.Tuples

type catalog = Yannakakis.catalog

type plan = Star_mm of { k : int } | Planned of Planner.t

(* A star query: every atom is R(x_i, y) or R(y, x_i) with one global join
   variable y, the x_i pairwise distinct and different from y, and the
   head exactly {x_1..x_k} (any order, no duplicates). *)
let star_shape q =
  match q.Cq.body with
  | [] | [ _ ] -> None
  | atoms ->
    let candidates =
      (* join-variable candidates: variables present in every atom *)
      List.filter
        (fun v ->
          List.for_all (fun a -> List.mem v (Cq.atom_vars a)) atoms)
        (Cq.vars q)
    in
    let try_candidate y =
      let classify atom =
        match atom.Cq.args with
        | Cq.Var a, Cq.Var b when a = y && b <> y -> Some (atom.Cq.relation, `Transposed, b)
        | Cq.Var a, Cq.Var b when b = y && a <> y -> Some (atom.Cq.relation, `Direct, a)
        | _ -> None
      in
      let classified = List.map classify atoms in
      if List.exists (fun c -> c = None) classified then None
      else begin
        let parts = List.filter_map (fun c -> c) classified in
        let xs = List.map (fun (_, _, x) -> x) parts in
        let distinct = List.sort_uniq String.compare xs in
        if
          List.length distinct = List.length xs
          && List.sort String.compare q.Cq.head = distinct
          && List.length q.Cq.head = List.length xs
        then Some (y, parts)
        else None
      end
    in
    List.find_map try_candidate candidates

let plan_of ?domains ?(policy = Planner.Cost_gate) ?catalog q =
  match star_shape q with
  | Some (_, parts) when policy <> Planner.Never_mm ->
    Ok (Star_mm { k = List.length parts })
  | _ -> (
    match Planner.plan ?domains ~policy ?catalog q with
    | Ok p -> Ok (Planned p)
    | Error e -> Error e)

let describe = function
  | Star_mm { k } -> Printf.sprintf "star query (k=%d) via MMJoin" k
  | Planned p -> Planner.describe p

let explain = function
  | Star_mm { k } -> Printf.sprintf "star query (k=%d) via MMJoin\n" k
  | Planned p -> Planner.explain p

let permute_tuples t ~src_order ~dst_order ~dims =
  (* src_order.(i) is the variable of component i; rebuild tuples so that
     component j holds variable dst_order.(j) *)
  let k = Array.length src_order in
  let position v =
    let rec go i = if src_order.(i) = v then i else go (i + 1) in
    go 0
  in
  let perm = Array.map position dst_order in
  let out_dims = Array.map (fun p -> dims.(p)) perm in
  let b = Tuples.create_builder ~arity:k ~dims:out_dims in
  let buf = Array.make k 0 in
  Tuples.iter
    (fun tuple ->
      Array.iteri (fun j p -> buf.(j) <- tuple.(p)) perm;
      Tuples.add b buf)
    t;
  Tuples.build b

let run_star ?domains ?guard ?cancel catalog q y parts =
  ignore y;
  let resolve (name, orient, x) =
    match List.assoc_opt name catalog with
    | None -> Error ("unknown relation: " ^ name)
    | Some rel ->
      (* Star.project expects R(x_i, y): src = output variable *)
      Ok ((match orient with `Direct -> rel | `Transposed -> Relation.transpose rel), x)
  in
  let rec resolve_all acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
      match resolve p with Ok r -> resolve_all (r :: acc) rest | Error e -> Error e)
  in
  match resolve_all [] parts with
  | Error e -> Error e
  | Ok resolved ->
    let rels = Array.of_list (List.map fst resolved) in
    let xs = Array.of_list (List.map snd resolved) in
    let t = Joinproj.Star.project ?domains ?guard ?cancel rels in
    let dims = Array.map Relation.src_count rels in
    Ok (permute_tuples t ~src_order:xs ~dst_order:(Array.of_list q.Cq.head) ~dims)

let run ?domains ?(policy = Planner.Cost_gate) ?guard ?cancel ?cache catalog q =
  match star_shape q with
  | Some (y, parts) when policy <> Planner.Never_mm ->
    run_star ?domains ?guard ?cancel catalog q y parts
  | _ -> Planner.run ?domains ~policy ?guard ?cancel ?cache catalog q

let boolean ?domains ?(policy = Planner.Cost_gate) ?guard ?cancel ?cache catalog
    q =
  Planner.boolean ?domains ~policy ?guard ?cancel ?cache catalog q
