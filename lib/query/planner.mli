(** Output-sensitive decomposition planner for acyclic conjunctive
    queries.

    The paper's future-work direction — a planner that "decomposes the
    join into multiple subqueries and evaluates in the optimal way" —
    implemented over the GYO join tree: carve out the sub-joins whose
    join variable is projected away (embedded 2-path and k-star shapes),
    dispatch each to the output-sensitive MM engines
    ({!Joinproj.Two_path} / {!Joinproj.Star}) when Algorithm 3's
    calibrated cost model predicts a win, and stitch the fragment outputs
    back into the remaining Yannakakis semijoin program as derived bags.

    {b Eligibility.}  A body variable [y] names a carvable fragment iff

    - [y] is not a head variable (so the existential over [y] is local),
    - [y] occurs in at least two atoms,
    - every atom containing [y] is Var–Var with distinct variables and
      exactly one side equal to [y],
    - the opposite ("out") variables are pairwise distinct.

    The fragment is then {e all} atoms containing [y]; replacing them with
    π{_out-vars}(⋈ atoms) is equivalence-preserving, and contracting the
    corresponding join-tree subtree shows the carved query stays acyclic.
    Overlapping candidates are claimed greedily in first-occurrence order;
    a candidate whose atoms are already claimed is dropped.

    Execution threads the full context — [?guard], [?cancel], [?cache] —
    into the fragment engines and the stitching phases, with the usual
    byte-identical-when-absent guarantee. *)

module Relation = Jp_relation.Relation
module Cancel = Jp_util.Cancel
module Fragment = Joinproj.Fragment

type policy =
  | Cost_gate
      (** dispatch a fragment to MM only when {!Joinproj.Fragment}'s cost
          gate predicts the partitioned plan wins (requires a catalog at
          plan time; without one no fragment is carved) *)
  | Always_mm  (** force every eligible fragment through the MM engines *)
  | Never_mm
      (** forced pure Yannakakis — the ABL-CQ foil; candidates are still
          reported, none is carved *)

type part = {
  atom : int;  (** index into the query body *)
  relation : string;
  out_var : string;  (** the fragment's output variable from this atom *)
  transposed : bool;
      (** the atom binds the join variable on the source side, so the
          relation is transposed before dispatch (engines expect the join
          variable on the destination side) *)
}

type fragment = {
  join_var : string;  (** the projected-away join variable *)
  parts : part list;  (** >= 2, in body order *)
  mm : bool;  (** dispatched to the MM engines under the plan's policy *)
  gate : Fragment.gate option;
      (** cost-gate verdict; [None] when planned without a catalog or a
          part's relation is unknown *)
}

type node =
  | Scan of { atom : int; relation : string }
      (** an uncarved atom, loaded as a bag *)
  | Mm of fragment  (** a carved fragment, evaluated output-sensitively *)
  | Stitch of { head : string list; children : node list }
      (** Yannakakis semijoin program over the children's bags *)

type t
(** A plan: the root is always a [Stitch] whose children appear in body
    order (a fragment sits at its first atom's position). *)

val plan :
  ?machine:Jp_matrix.Cost.machine ->
  ?domains:int ->
  ?policy:policy ->
  ?catalog:Yannakakis.catalog ->
  Cq.t ->
  (t, string) result
(** Errors iff the query is cyclic.  [catalog] feeds the cost gate
    (fragment relations are resolved and Algorithm 3 runs per candidate);
    without it, fragments are recognized structurally but [Cost_gate]
    carves none.  The gate only runs under [Cost_gate] — the forced
    policies must not pay for a verdict they ignore — so their
    candidates carry [gate = None].  [machine] overrides the calibrated
    cost model (tests use it to force either verdict).  Default policy
    is [Cost_gate]. *)

val query : t -> Cq.t

val root : t -> node

val candidates : t -> fragment list
(** Every structurally eligible fragment, carved or not, in
    first-occurrence order of the join variable. *)

val fragments : t -> fragment list
(** The carved ([mm = true]) subset of {!candidates}. *)

val describe : t -> string
(** One line: ["acyclic query via Yannakakis"] when nothing is carved,
    otherwise a fragment/scan census. *)

val explain : t -> string
(** Multi-line plan tree: the stitch root, one line per fragment (shape,
    join variable, atoms, cost-gate estimates) and per scan. *)

val run :
  ?machine:Jp_matrix.Cost.machine ->
  ?domains:int ->
  ?policy:policy ->
  ?guard:Jp_adaptive.Guard.config ->
  ?cancel:Cancel.t ->
  ?cache:Jp_cache.t ->
  Yannakakis.catalog ->
  Cq.t ->
  (Jp_relation.Tuples.t, string) result
(** Plan, evaluate the carved fragments through
    {!Joinproj.Fragment.two_path} / {!Joinproj.Fragment.star} (threading
    [guard]/[cancel], and — for 2-path fragments — the cache's
    {!Jp_cache.two_path_memo} hooks), then stitch with
    {!Yannakakis.run_bags}.  Head tuples come in head-variable order.
    Errors on cyclic queries, unknown relations and empty heads (use
    {!boolean}).  Absent [guard]/[cancel]/[cache], every code path is
    byte-identical to the plain one. *)

val boolean :
  ?machine:Jp_matrix.Cost.machine ->
  ?domains:int ->
  ?policy:policy ->
  ?guard:Jp_adaptive.Guard.config ->
  ?cancel:Cancel.t ->
  ?cache:Jp_cache.t ->
  Yannakakis.catalog ->
  Cq.t ->
  (bool, string) result
(** Satisfiability of the query body (the head is ignored): true iff the
    join is non-empty.  Carved fragments are evaluated just as in
    {!run}. *)
