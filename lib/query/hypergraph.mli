(** Query hypergraph analysis: GYO reduction and join-tree construction.

    A conjunctive query is α-acyclic iff GYO reduction — repeatedly
    removing "ears" (atoms whose shared variables are covered by a single
    other atom) — empties its hypergraph.  The removal order yields a join
    tree, which {!Yannakakis} consumes.  Atoms are identified by their
    index in the query body. *)

type join_tree = {
  order : int list;
      (** atoms in a bottom-up elimination order (every atom appears after
          all atoms whose parent it is; the last element is the root) *)
  parent : int array;  (** parent atom index; -1 for the root *)
}

val join_tree : Cq.t -> join_tree option
(** [None] iff the query is cyclic.  Single-atom queries yield the trivial
    tree.  Disconnected queries are accepted (components attach with empty
    shared-variable sets, i.e. cartesian products). *)

val join_tree_sets : string list array -> join_tree option
(** GYO reduction over explicit variable sets, one per hypergraph node —
    the generalization the decomposition planner needs, where a node may
    be a derived bag of arbitrary arity rather than a binary atom.
    [join_tree q] is [join_tree_sets] over [q]'s atoms' variable sets.
    The empty array yields [None]. *)

val is_acyclic : Cq.t -> bool
