(* 62 payload bits per word keeps every word operation on an immediate
   native int (63-bit) with one bit to spare, avoiding Int64 boxing. *)
let bits_per_word = 62

type t = { words : int array; width : int }

let width t = t.width

let word_count t = Array.length t.words

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { words = Array.make ((n + bits_per_word - 1) / bits_per_word + 1) 0; width = n }

let check t i =
  if i < 0 || i >= t.width then invalid_arg "Bitset: index out of bounds"

let set t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let unset t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let mem t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) land (1 lsl b) <> 0

let clear t = Array.fill t.words 0 (Array.length t.words) 0

(* SWAR popcount specialised to 62 significant bits (the top bit of the
   native int is always 0 here, so 64-bit constants truncated to 63 bits
   are safe). *)
let popcount x =
  let x = x - ((x lsr 1) land 0x1555555555555555) in
  let x = (x land 0x3333333333333333) + ((x lsr 2) land 0x3333333333333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  (x * 0x0101010101010101) lsr 56

let count t =
  let c = ref 0 in
  for w = 0 to Array.length t.words - 1 do
    c := !c + popcount (Array.unsafe_get t.words w)
  done;
  !c

let is_empty t =
  let rec go w =
    w >= Array.length t.words || (t.words.(w) = 0 && go (w + 1))
  in
  go 0

let check_widths a b op =
  if a.width <> b.width then invalid_arg ("Bitset." ^ op ^ ": width mismatch")

let union_into ~dst src =
  check_widths dst src "union_into";
  let d = dst.words and s = src.words in
  for w = 0 to Array.length d - 1 do
    Array.unsafe_set d w (Array.unsafe_get d w lor Array.unsafe_get s w)
  done

(* OR [src] into [dst] starting at bit [off].  Payload words are shifted
   by [off mod 62]; the carry of the last payload word lands in the word
   after it, which is in bounds because [create] always allocates one
   spare trailing word and [off + width src <= width dst].  Source bits
   beyond [width src] are invariantly zero, so no bit beyond
   [off + width src) can be set. *)
let union_into_at ~dst off src =
  if off < 0 || off + src.width > dst.width then
    invalid_arg "Bitset.union_into_at: range out of bounds";
  let d = dst.words and s = src.words in
  let wi = off / bits_per_word and bo = off mod bits_per_word in
  let payload = (src.width + bits_per_word - 1) / bits_per_word in
  if bo = 0 then
    for w = 0 to payload - 1 do
      Array.unsafe_set d (wi + w)
        (Array.unsafe_get d (wi + w) lor Array.unsafe_get s w)
    done
  else begin
    let mask = (1 lsl bits_per_word) - 1 in
    for w = 0 to payload - 1 do
      let x = Array.unsafe_get s w in
      if x <> 0 then begin
        let i = wi + w in
        Array.unsafe_set d i
          (Array.unsafe_get d i lor ((x lsl bo) land mask));
        Array.unsafe_set d (i + 1)
          (Array.unsafe_get d (i + 1) lor (x lsr (bits_per_word - bo)))
      end
    done
  end

let inter_into ~dst src =
  check_widths dst src "inter_into";
  let d = dst.words and s = src.words in
  for w = 0 to Array.length d - 1 do
    Array.unsafe_set d w (Array.unsafe_get d w land Array.unsafe_get s w)
  done

let inter_count a b =
  check_widths a b "inter_count";
  let c = ref 0 in
  for w = 0 to Array.length a.words - 1 do
    c := !c + popcount (Array.unsafe_get a.words w land Array.unsafe_get b.words w)
  done;
  !c

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = ref (Array.unsafe_get t.words w) in
    let base = w * bits_per_word in
    while !word <> 0 do
      let low = !word land - !word in
      (* log2 of a single set bit via popcount of (low - 1) *)
      let b = popcount (low - 1) in
      f (base + b);
      word := !word land (!word - 1)
    done
  done

let to_list t =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) t;
  List.rev !acc

let of_sorted_array n positions =
  let t = create n in
  Array.iter (fun i -> set t i) positions;
  t

let copy t = { words = Array.copy t.words; width = t.width }

let equal a b = a.width = b.width && a.words = b.words
