let lower_bound a x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Array.unsafe_get a mid < x then lo := mid + 1 else hi := mid
  done;
  !lo

let mem a x =
  let i = lower_bound a x in
  i < Array.length a && a.(i) = x

let gallop a ~start x =
  let n = Array.length a in
  if start >= n || a.(start) >= x then start
  else begin
    (* Exponential probe from [start], then binary search in the bracket. *)
    let step = ref 1 in
    let prev = ref start in
    let cur = ref (start + 1) in
    while !cur < n && Array.unsafe_get a !cur < x do
      prev := !cur;
      step := !step * 2;
      cur := !cur + !step
    done;
    let lo = ref (!prev + 1) and hi = ref (min !cur n) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Array.unsafe_get a mid < x then lo := mid + 1 else hi := mid
    done;
    !lo
  end

(* Cost heuristic: if one side is much smaller, gallop through the big one;
   otherwise do a linear merge. *)
let ratio_for_gallop = 16

let intersect_linear a b out =
  let i = ref 0 and j = ref 0 in
  let na = Array.length a and nb = Array.length b in
  while !i < na && !j < nb do
    let x = Array.unsafe_get a !i and y = Array.unsafe_get b !j in
    if x < y then incr i
    else if y < x then incr j
    else begin
      (match out with Some v -> Vec.push v x | None -> ());
      incr i;
      incr j
    end
  done

let intersect_gallop small big out =
  let j = ref 0 in
  Array.iter
    (fun x ->
      j := gallop big ~start:!j x;
      if !j < Array.length big && big.(!j) = x then begin
        (match out with Some v -> Vec.push v x | None -> ());
        incr j
      end)
    small

let intersect_dispatch a b out =
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then ()
  else if na * ratio_for_gallop < nb then intersect_gallop a b out
  else if nb * ratio_for_gallop < na then intersect_gallop b a out
  else intersect_linear a b out

let intersect a b =
  let v = Vec.create ~capacity:(min (Array.length a) (Array.length b) + 1) () in
  intersect_dispatch a b (Some v);
  Vec.to_array v

let intersect_count a b =
  let i = ref 0 and j = ref 0 and c = ref 0 in
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then 0
  else if na * ratio_for_gallop < nb || nb * ratio_for_gallop < na then begin
    let small, big = if na < nb then (a, b) else (b, a) in
    let k = ref 0 in
    Array.iter
      (fun x ->
        k := gallop big ~start:!k x;
        if !k < Array.length big && big.(!k) = x then begin
          incr c;
          incr k
        end)
      small;
    !c
  end
  else begin
    while !i < na && !j < nb do
      let x = Array.unsafe_get a !i and y = Array.unsafe_get b !j in
      if x < y then incr i
      else if y < x then incr j
      else begin
        incr c;
        incr i;
        incr j
      end
    done;
    !c
  end

let union a b =
  let v = Vec.create ~capacity:(Array.length a + Array.length b) () in
  let i = ref 0 and j = ref 0 in
  let na = Array.length a and nb = Array.length b in
  while !i < na && !j < nb do
    let x = a.(!i) and y = b.(!j) in
    if x < y then begin Vec.push v x; incr i end
    else if y < x then begin Vec.push v y; incr j end
    else begin
      Vec.push v x;
      incr i;
      incr j
    end
  done;
  while !i < na do Vec.push v a.(!i); incr i done;
  while !j < nb do Vec.push v b.(!j); incr j done;
  Vec.to_array v

let difference a b =
  let v = Vec.create ~capacity:(Array.length a) () in
  let j = ref 0 in
  Array.iter
    (fun x ->
      j := gallop b ~start:!j x;
      if not (!j < Array.length b && b.(!j) = x) then Vec.push v x)
    a;
  Vec.to_array v

let subset a b =
  Array.length a <= Array.length b
  &&
  let j = ref 0 and ok = ref true in
  (try
     Array.iter
       (fun x ->
         j := gallop b ~start:!j x;
         if !j >= Array.length b || b.(!j) <> x then begin
           ok := false;
           raise Exit
         end;
         incr j)
       a
   with Exit -> ());
  !ok

let intersect_many = function
  | [] -> invalid_arg "Sorted.intersect_many: empty list"
  | [ a ] -> Array.copy a
  | lists ->
    let sorted =
      List.sort (fun a b -> Int.compare (Array.length a) (Array.length b)) lists
    in
    (match sorted with
    | smallest :: rest ->
      List.fold_left (fun acc a -> if Array.length acc = 0 then acc else intersect acc a) smallest rest
    | [] -> assert false)

let merge_union_many lists =
  (* Huffman-style: always merge the two shortest remaining arrays, so the
     total work is O(total log k) rather than O(total * k). *)
  let rec go = function
    | [] -> [||]
    | [ a ] -> a
    | lists ->
      let sorted =
        List.sort (fun a b -> Int.compare (Array.length a) (Array.length b)) lists
      in
      (match sorted with
      | a :: b :: rest -> go (union a b :: rest)
      | _ -> assert false)
  in
  go lists

let is_strictly_sorted a =
  let ok = ref true in
  for i = 1 to Array.length a - 1 do
    if a.(i - 1) >= a.(i) then ok := false
  done;
  !ok
