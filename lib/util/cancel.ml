type reason = Deadline | Requested

exception Cancelled of reason

(* state: 0 live, 1 cancel requested, 2 deadline expired.  The first
   transition away from 0 wins and is never overwritten. *)
type t = {
  state : int Atomic.t;
  deadline : float;  (* absolute Timer.now seconds; [infinity] = none *)
  hook : (unit -> unit) Atomic.t;
}

let no_hook () = ()

let create ?deadline_s () =
  let deadline =
    match deadline_s with
    | None -> infinity
    | Some s ->
      if s < 0.0 then invalid_arg "Cancel.create: negative deadline";
      Timer.now () +. s
  in
  { state = Atomic.make 0; deadline; hook = Atomic.make no_hook }

let cancel t = ignore (Atomic.compare_and_set t.state 0 1)

(* Poll the state, folding a passed deadline into it.  [now >= infinity]
   is false, so tokens without a deadline never pay the comparison's
   branch. *)
let poll_state t =
  match Atomic.get t.state with
  | 0 ->
    if Timer.now () >= t.deadline then begin
      ignore (Atomic.compare_and_set t.state 0 2);
      Atomic.get t.state
    end
    else 0
  | s -> s

let is_cancelled t =
  (Atomic.get t.hook) ();
  poll_state t <> 0

let check t =
  (Atomic.get t.hook) ();
  match poll_state t with
  | 0 -> ()
  | 1 -> raise (Cancelled Requested)
  | _ -> raise (Cancelled Deadline)

let reason t =
  match poll_state t with 0 -> None | 1 -> Some Requested | _ -> Some Deadline

let remaining_s t =
  match poll_state t with
  | 0 -> if t.deadline = infinity then infinity else max 0.0 (t.deadline -. Timer.now ())
  | _ -> 0.0

let set_hook t f = Atomic.set t.hook f

let clear_hook t = Atomic.set t.hook no_hook
