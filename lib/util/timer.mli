(** Wall-clock timing helpers for the benchmark harness. *)

val now : unit -> float
(** Wall-clock seconds (epoch-based; only differences are meaningful). *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with elapsed wall
    seconds. *)

val time_runs : ?repeats:int -> (unit -> 'a) -> 'a * float * float list
(** [time_runs ~repeats f] runs [f] [repeats] times (default 3) and
    returns the result and elapsed time of the median-timed run (see
    {!time_median}) {e plus} every run's elapsed seconds in run order —
    the raw sample the bench harness summarizes into p50/p95 alongside
    the median.  Raises [Invalid_argument] when [repeats < 1]. *)

val time_median : ?repeats:int -> (unit -> 'a) -> 'a * float
(** [time_median ~repeats f] runs [f] [repeats] times (default 3) and
    returns the result {e and} elapsed time of the median-timed run;
    mirrors the paper's "average of middle runs" methodology.

    The median run is the one ranked [repeats / 2] (0-based) when runs are
    ordered by elapsed time — the true middle for odd [repeats], the upper
    middle for even.  Ties on elapsed time are broken toward the earlier
    run.  Raises [Invalid_argument] when [repeats < 1]. *)
