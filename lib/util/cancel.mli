(** Cooperative cancellation tokens.

    A token carries a cancellation flag and an optional wall-clock
    deadline.  Engines accept one as [?cancel:] and poll it at the same
    granularity as their adaptive-guard checkpoints — once per chunk or
    phase, never per tuple — so cancelling a query (or letting its
    deadline expire) stops the work promptly without locks or signals.
    Without a token the engines' code paths are exactly the untouched
    ones.

    Tokens are thread-safe: worker domains may poll a token that another
    domain cancels.  {!is_cancelled} is the graceful poll (workers stop
    claiming chunks); {!check} raises {!Cancelled} on the coordinating
    domain so the whole invocation unwinds.

    A token also carries a {e poll hook}: a callback run on every poll,
    installed by the chaos layer ([Jp_chaos]) to inject deterministic
    faults at exactly the sites a real cancellation would be noticed.
    The default hook is a no-op and polls stay cheap enough for chunk
    loops. *)

type reason =
  | Deadline  (** the token's deadline passed *)
  | Requested  (** {!cancel} was called *)

exception Cancelled of reason

type t

val create : ?deadline_s:float -> unit -> t
(** Fresh live token.  [deadline_s] is a relative wall-clock budget in
    seconds from now; omitted means no deadline.  Raises
    [Invalid_argument] on a negative deadline ([Some 0.] is legal: the
    first poll cancels). *)

val cancel : t -> unit
(** Request cancellation.  Idempotent; loses against an
    already-recorded deadline expiry. *)

val is_cancelled : t -> bool
(** Poll: runs the hook, then reports whether the token is cancelled
    (recording a deadline expiry as a side effect).  Worker loops use
    this to stop claiming chunks without raising across domains. *)

val check : t -> unit
(** Poll like {!is_cancelled} but raise {!Cancelled} when the token is
    cancelled — the coordinator-side checkpoint. *)

val reason : t -> reason option
(** [None] while live.  Does not run the hook. *)

val remaining_s : t -> float
(** Seconds until the deadline ([infinity] without one, [0.] once
    expired or cancelled). *)

val set_hook : t -> (unit -> unit) -> unit
(** Install the poll hook (chaos injection; the callback may raise and
    must be safe to run from any domain).  One hook at a time. *)

val clear_hook : t -> unit
