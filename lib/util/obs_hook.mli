(** Low-level observability hooks for [jp_util] internals.

    [jp_obs] (the observability library) depends on [jp_util], so counters
    maintained {e inside} [jp_util] itself — currently the radix-sort byte
    count — live here and are re-exported by [Jp_obs] under its counter
    namespace.  Do not use this module directly from engine code; go
    through [Jp_obs] instead. *)

val enabled : bool Atomic.t
(** Mirror of [Jp_obs.recording]; toggled by [Jp_obs.enable]/[disable].
    All hooks are no-ops while it is [false].  Atomic: worker domains
    read it while the coordinating domain may toggle recording. *)

val radix_bytes : int Atomic.t
(** Bytes moved by {!Intsort}'s radix passes (8 bytes per element per
    pass).  Atomic so worker domains can publish without losing updates. *)

val note_radix : elems:int -> passes:int -> unit
(** Called by {!Intsort.sort_sub} once per radix invocation. *)

val reset : unit -> unit
(** Zero every hook counter (called by [Jp_obs.reset]). *)
