let enabled = Atomic.make false

let radix_bytes = Atomic.make 0

let note_radix ~elems ~passes =
  if Atomic.get enabled then
    ignore (Atomic.fetch_and_add radix_bytes (8 * elems * passes))

let reset () = Atomic.set radix_bytes 0
