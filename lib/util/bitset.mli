(** Fixed-width mutable bitsets over native [int] words.

    Words carry 62 payload bits so that every operation stays on unboxed
    native ints.  Bitsets are the backbone of the boolean matrix product
    (each matrix row is one bitset) and of the EmptyHeaded-like baseline
    engine, where per-word [lor]/[land] provide the 62-way data parallelism
    that plays the role of SIMD in the paper's C++ prototype. *)

type t

val width : t -> int
(** Number of addressable bit positions. *)

val word_count : t -> int
(** Number of backing words; the unit in which per-word operations
    ([union_into], [inter_count], ...) are counted by the observability
    layer's MM word-op counters. *)

val create : int -> t
(** [create n] is an all-zeros bitset of width [n]. *)

val set : t -> int -> unit

val unset : t -> int -> unit

val mem : t -> int -> bool

val clear : t -> unit
(** Zeroes every bit, keeping the width. *)

val count : t -> int
(** Population count. *)

val is_empty : t -> bool

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] ORs [src] into [dst].  Widths must match. *)

val union_into_at : dst:t -> int -> t -> unit
(** [union_into_at ~dst off src] ORs [src] into [dst] with its bit 0
    landing at position [off] ([off + width src <= width dst]).  The
    word-offset blit behind the tiled matrix product: a tile row merges
    into the full result row at its column-block offset without
    per-bit iteration. *)

val inter_into : dst:t -> t -> unit
(** [inter_into ~dst src] ANDs [src] into [dst].  Widths must match. *)

val inter_count : t -> t -> int
(** Population count of the intersection, without materializing it. *)

val iter : (int -> unit) -> t -> unit
(** [iter f t] applies [f] to every set position in increasing order. *)

val to_list : t -> int list

val of_sorted_array : int -> int array -> t
(** [of_sorted_array n positions] sets each listed position (positions need
    not actually be sorted; they must be [< n]). *)

val copy : t -> t

val equal : t -> t -> bool
