let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let x = f () in
  let t1 = now () in
  (x, t1 -. t0)

let time_runs ?(repeats = 3) f =
  if repeats < 1 then invalid_arg "Timer.time_runs";
  let runs =
    List.init repeats (fun i ->
        let x, dt = time f in
        (dt, i, x))
  in
  (* Sort by (elapsed, run index): equal times resolve to the earlier run,
     and the returned value comes from the same run as the returned time. *)
  let sorted =
    List.sort
      (fun (a, i, _) (b, j, _) ->
        match Float.compare a b with 0 -> Int.compare i j | n -> n)
      runs
  in
  let dt, _, x = List.nth sorted (repeats / 2) in
  (x, dt, List.map (fun (dt, _, _) -> dt) runs)

let time_median ?(repeats = 3) f =
  if repeats < 1 then invalid_arg "Timer.time_median";
  let x, dt, _ = time_runs ~repeats f in
  (x, dt)
