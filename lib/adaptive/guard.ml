module Timer = Jp_util.Timer

(* Published in bulk per checkpoint (checkpoints are per-chunk/per-phase by
   contract), so the atomic bumps stay off the per-tuple paths. *)
let c_checkpoints = Jp_obs.counter "guard.checkpoints"

let c_replans = Jp_obs.counter "guard.replans"

let c_degrades = Jp_obs.counter "guard.degrades"

type budget = { max_seconds : float option; max_cells : int option }

let no_budget = { max_seconds = None; max_cells = None }

type config = {
  divergence : float;
  check_every : int;
  probe_rows : int;
  max_replans : int;
  budget : budget;
  inject : Inject.t;
}

let default =
  {
    divergence = 8.0;
    check_every = 4096;
    probe_rows = 1024;
    max_replans = 1;
    budget = no_budget;
    inject = Inject.none;
  }

let with_budget_ms ms cfg =
  if ms < 0.0 then invalid_arg "Guard.with_budget_ms: negative budget";
  { cfg with budget = { cfg.budget with max_seconds = Some (ms /. 1e3) } }

let with_inject inject cfg = { cfg with inject }

(* A zero wall-clock budget degrades at the very first checkpoint, before
   any matrix work: the whole query runs on the combinatorial/WCOJ path.
   Jp_service uses this as its degraded final attempt after repeated
   faults in the fast path. *)
let safe = with_budget_ms 0.0 default

type verdict = Continue | Replan | Degrade

type t = {
  cfg : config;
  t0 : float;
  mutable replans_left : int;
  mutable replanned : bool;
  mutable degraded : bool;
  mutable checkpoints : int;
}

let start cfg =
  if cfg.divergence <= 1.0 then invalid_arg "Guard.start: divergence must be > 1";
  if cfg.check_every < 1 || cfg.probe_rows < 1 then
    invalid_arg "Guard.start: chunk sizes must be >= 1";
  {
    cfg;
    t0 = Timer.now ();
    replans_left = cfg.max_replans;
    replanned = false;
    degraded = false;
    checkpoints = 0;
  }

let config t = t.cfg

let inject t = t.cfg.inject

let elapsed t = Timer.now () -. t.t0

let tick t =
  t.checkpoints <- t.checkpoints + 1;
  Jp_obs.incr c_checkpoints

let check_budget t ~cells =
  tick t;
  let over_time =
    match t.cfg.budget.max_seconds with
    | Some limit -> elapsed t >= limit
    | None -> false
  in
  let over_cells =
    match t.cfg.budget.max_cells with Some limit -> cells > limit | None -> false
  in
  if over_time || over_cells then Degrade else Continue

let check_estimate t ~est ~observed =
  tick t;
  if est <= 0.0 || observed < 0.0 || t.replans_left <= 0 then Continue
  else begin
    let ratio = observed /. est in
    if ratio > t.cfg.divergence || ratio < 1.0 /. t.cfg.divergence then Replan
    else Continue
  end

let can_replan t = t.replans_left > 0

let note_replan t =
  t.replans_left <- t.replans_left - 1;
  t.replanned <- true;
  Jp_obs.incr c_replans

let note_degrade t =
  if not t.degraded then Jp_obs.incr c_degrades;
  t.degraded <- true

let replanned t = t.replanned

let degraded t = t.degraded

let checkpoints t = t.checkpoints
