module Rng = Jp_util.Rng

type t = { out_factor : float; mm_factor : float }

let none = { out_factor = 1.0; mm_factor = 1.0 }

let is_none t = t.out_factor = 1.0 && t.mm_factor = 1.0

let check name f =
  if not (Float.is_finite f) || f <= 0.0 then
    invalid_arg (Printf.sprintf "Inject.%s: factor must be finite and positive" name)

let uniform f =
  check "uniform" f;
  { out_factor = f; mm_factor = f }

let out_only f =
  check "out_only" f;
  { none with out_factor = f }

let mm_only f =
  check "mm_only" f;
  { none with mm_factor = f }

let jittered ~seed ~spread f =
  check "jittered" f;
  if spread < 1.0 then invalid_arg "Inject.jittered: spread must be >= 1";
  let rng = Rng.create seed in
  (* uniform in [f/spread, f*spread] on the log scale *)
  let draw () =
    let lo = log (f /. spread) and hi = log (f *. spread) in
    exp (lo +. Rng.float rng (hi -. lo))
  in
  { out_factor = draw (); mm_factor = draw () }

let out t est =
  if t.out_factor = 1.0 then est
  else max 1 (int_of_float (Float.round (float_of_int (max 1 est) *. t.out_factor)))

let seconds t s = if t.mm_factor = 1.0 then s else s *. t.mm_factor

let to_string t =
  if is_none t then ""
  else Printf.sprintf "inject(out=%.2g,mm=%.2g)" t.out_factor t.mm_factor
