(** Adaptive plan guards: runtime checkpoints and resource budgets for the
    MMJoin engines.

    Algorithm 3 commits to a plan (Wcoj vs Partitioned, thresholds Δ₁/Δ₂)
    from {e estimates} of |OUT| and the matrix cost, and those estimates
    can be badly off on skewed inputs.  A guard turns the plan into a
    supervised execution: at partition boundaries (heavy/light split
    materialized, pre-MM density check, per-chunk light-side expansion)
    the engine asks the guard to compare observed work against the plan's
    estimate, and the guard answers with a {!verdict}:

    - [Continue] — observation is within the divergence factor;
    - [Replan] — the estimate is off by more than [divergence]×; the
      engine re-plans with the observed statistics (clean, un-injected)
      and may switch Wcoj ⇄ Partitioned mid-query, reusing output already
      produced;
    - [Degrade] — a resource budget (wall-clock or intermediate matrix
      cells) is exhausted; the engine must abandon matrix plans and
      finish on the safe combinatorial/WCOJ path, which needs no large
      intermediates.

    A guard value is single-use mutable state for one engine invocation
    (cheap to create; not thread-safe — checkpoints must run on the
    coordinating domain).  Engines consult it once per chunk or phase,
    never per tuple, mirroring the [Jp_obs.recording] instrumentation
    rule.  Checkpoint/replan/degrade totals are published to the
    [guard.*] counters of {!Jp_obs} while recording is on. *)

type budget = {
  max_seconds : float option;
      (** wall-clock budget from {!start}; [Some 0.] degrades immediately *)
  max_cells : int option;
      (** intermediate-size budget: total matrix cells (u·v + v·w + u·w)
          any heavy step may materialize *)
}

val no_budget : budget

type config = {
  divergence : float;
      (** re-plan when observed/estimated leaves
          [[1/divergence, divergence]]; must be > 1 (default 8) *)
  check_every : int;
      (** x rows expanded between guard checkpoints inside chunked loops
          (default 4096) *)
  probe_rows : int;
      (** x rows the guarded Wcoj path expands before its first
          plan-vs-actual extrapolation checkpoint (default 1024) *)
  max_replans : int;  (** re-planning fuel per invocation (default 1) *)
  budget : budget;
  inject : Inject.t;  (** misestimation injected into the initial plan *)
}

val default : config
(** Divergence 8, checkpoints every 4096 rows, probe 1024 rows, one
    re-plan, no budget, no injection. *)

val with_budget_ms : float -> config -> config
(** Set [budget.max_seconds] from milliseconds. *)

val with_inject : Inject.t -> config -> config

val safe : config
(** {!default} with a zero wall-clock budget: degrades at the first
    checkpoint, so the whole query runs on the safe combinatorial/WCOJ
    path with no large matrix intermediates.  [Jp_service] runs its
    degraded final attempt under this config. *)

type verdict = Continue | Replan | Degrade

type t
(** Runtime state of one guarded invocation. *)

val start : config -> t
(** Start the wall clock and zero the outcome flags. *)

val config : t -> config

val inject : t -> Inject.t

val elapsed : t -> float

val check_budget : t -> cells:int -> verdict
(** [Degrade] iff the wall clock or [cells] exceeds the budget.  Pass
    [~cells:0] for pure time checks. *)

val check_estimate : t -> est:float -> observed:float -> verdict
(** [Replan] iff [observed/est] leaves [[1/divergence, divergence]] and
    re-planning fuel remains; [Continue] otherwise.  Non-positive [est]
    (no estimate) never triggers. *)

val can_replan : t -> bool
(** Re-planning fuel remains.  Engines consult this before paying for a
    speculative clean re-plan at a checkpoint. *)

val note_replan : t -> unit
(** The engine actually re-planned (consumes one unit of fuel). *)

val note_degrade : t -> unit

val replanned : t -> bool

val degraded : t -> bool

val checkpoints : t -> int
(** Number of [check_budget]/[check_estimate] calls so far. *)
