(** Deterministic misestimation injection.

    The optimizer's inputs — the |OUT| estimate of {!Joinproj.Estimator}
    and the matrix-cost estimate M̂ of {!Jp_matrix.Cost} — are exactly the
    quantities Section 6 shows can be badly off on skewed data.  An
    injector scales them by chosen factors {e before} planning, so tests
    and benches can force every guard transition (Wcoj ⇄ Partitioned,
    budget degradation) on demand instead of hunting for adversarial
    datasets.

    Injection only distorts what the planner {e believes}; re-planning
    inside the guard always uses clean (un-injected) estimates, which is
    what lets a guarded run recover.  All randomness (the jittered
    variant) flows through {!Jp_util.Rng} with an explicit seed, so
    injected runs are exactly reproducible. *)

type t = {
  out_factor : float;  (** multiplies the |OUT| estimate (1.0 = honest) *)
  mm_factor : float;  (** multiplies the M̂ matrix-cost estimate *)
}

val none : t
(** Both factors 1.0: planning is untouched. *)

val is_none : t -> bool

val uniform : float -> t
(** [uniform f] scales both estimates by [f].  [f < 1] simulates
    underestimation (e.g. [0.01] is the 100× |OUT| underestimate of the
    ABL-GUARD ablation), [f > 1] overestimation. *)

val out_only : float -> t

val mm_only : float -> t

val jittered : seed:int -> spread:float -> float -> t
(** [jittered ~seed ~spread f] draws each factor uniformly from
    [[f/spread, f·spread]] using a {!Jp_util.Rng} stream seeded with
    [seed] — deterministic run-to-run, but decorrelates the two factors
    the way real estimator error does.  [spread] must be ≥ 1. *)

val out : t -> int -> int
(** Apply [out_factor] to an |OUT| estimate, clamped to ≥ 1. *)

val seconds : t -> float -> float
(** Apply [mm_factor] to a cost in seconds. *)

val to_string : t -> string
(** ["inject(out=0.01,mm=1.00)"], or [""] for {!none} — appended to the
    rendered plan decision in observability records. *)
