(** Deterministic fault injection for the query service.

    Chaos testing only earns its keep when failures reproduce, so every
    fault here is a pure function of [(seed, query, attempt, degraded)]:
    the same stress run with the same seed injects the same faults into
    the same queries, run after run.  Faults are delivered through the
    two polling planes the engines already have — the per-token poll hook
    of {!Jp_util.Cancel} (hit at every engine checkpoint) and the
    process-global chunk hook of {!Jp_parallel.Pool.set_fault_hook} (hit
    once per claimed chunk on whichever domain claims it) — so injection
    sites coincide exactly with the places a real cancellation or crash
    would surface, and cost nothing when disarmed.

    Which {e domain} trips a pool fault races, but the {e outcome} does
    not: the countdown cell is decremented with a single atomic
    fetch-and-add, so exactly one poll fires the fault and the attempt
    fails with the same typed {!Injected} exception regardless of the
    interleaving. *)

module Cancel = Jp_util.Cancel

type fault =
  | Transient  (** a kernel raised; retrying may succeed *)
  | Worker_kill  (** a worker domain died mid-chunk *)
  | Slowdown of float  (** an attempt stalls for this many seconds *)

val fault_to_string : fault -> string

exception Injected of fault
(** Raised at a polling site when an armed fault fires.  [Jp_service]
    treats it as transient (retry, then degrade); it never escapes to
    service clients. *)

type config = {
  seed : int;  (** master seed; everything below derives from it *)
  p_transient : float;  (** probability an attempt suffers {!Transient} *)
  p_worker_kill : float;  (** probability of {!Worker_kill} *)
  p_slowdown : float;  (** probability of a {!Slowdown} *)
  slowdown_s : float;  (** stall length for injected slowdowns *)
  window : int;
      (** faults fire within the first [window] polls of the attempt;
          small queries only poll a few times (entry and phase
          checkpoints), so the default of 4 keeps planned faults actually
          deliverable — a fault whose poll never happens silently becomes
          a clean attempt *)
  spare_degraded : bool;
      (** when [true] (the default), degraded attempts are never faulted:
          models faults that live in the matrix fast path, so degradation
          is a genuine escape hatch *)
}

val none : config
(** All probabilities zero — armed but inert. *)

val default : int -> config
(** [default seed]: a moderately hostile mix (transient 20%, worker kill
    5%, slowdown 5% of attempts) that spares degraded attempts. *)

type plan = No_fault | Fault of { fault : fault; after : int }
(** What happens to one attempt: nothing, or [fault] fires on the
    [after]-th poll (1-based). *)

val plan : config -> query:int -> attempt:int -> degraded:bool -> plan
(** The fault plan for one attempt — deterministic in its arguments.
    Distinct attempts of the same query draw independently, so retries
    can (and with [p < 1] eventually do) succeed. *)

val with_attempt :
  config ->
  query:int ->
  attempt:int ->
  degraded:bool ->
  cancel:Cancel.t ->
  pool:bool ->
  (unit -> 'a) ->
  'a
(** [with_attempt cfg ~query ~attempt ~degraded ~cancel ~pool f] runs
    [f ()] with the attempt's fault (if any) armed on [cancel]'s poll
    hook — and, when [pool] is [true], also on the global pool hook —
    and disarms both before returning or re-raising.  Only arm the pool
    hook when this attempt is the sole pool user (the service does so
    when it runs with one worker); the token hook is always safe under
    concurrency.  Bumps the [chaos.*] counters of {!Jp_obs} for each
    fault actually delivered. *)
