module Cancel = Jp_util.Cancel
module Pool = Jp_parallel.Pool
module Rng = Jp_util.Rng

type fault =
  | Transient
  | Worker_kill
  | Slowdown of float

let fault_to_string = function
  | Transient -> "transient"
  | Worker_kill -> "worker_kill"
  | Slowdown s -> Printf.sprintf "slowdown(%.0fms)" (s *. 1e3)

exception Injected of fault

type config = {
  seed : int;
  p_transient : float;
  p_worker_kill : float;
  p_slowdown : float;
  slowdown_s : float;
  window : int;
  spare_degraded : bool;
}

let none =
  {
    seed = 0;
    p_transient = 0.0;
    p_worker_kill = 0.0;
    p_slowdown = 0.0;
    slowdown_s = 0.0;
    window = 4;
    spare_degraded = true;
  }

let default seed =
  {
    none with
    seed;
    p_transient = 0.20;
    p_worker_kill = 0.05;
    p_slowdown = 0.05;
    slowdown_s = 0.02;
  }

type plan = No_fault | Fault of { fault : fault; after : int }

(* One generator per (seed, query, attempt): the multipliers are primes
   large enough that distinct coordinates never collide for realistic
   workload sizes, and splitmix64 scrambles whatever structure remains. *)
let plan cfg ~query ~attempt ~degraded =
  if degraded && cfg.spare_degraded then No_fault
  else begin
    let g =
      Rng.create ((cfg.seed * 2_000_003) + (query * 4_001) + attempt)
    in
    let u = Rng.float g 1.0 in
    let after = 1 + Rng.int g (max 1 cfg.window) in
    if u < cfg.p_transient then Fault { fault = Transient; after }
    else if u < cfg.p_transient +. cfg.p_worker_kill then
      Fault { fault = Worker_kill; after }
    else if u < cfg.p_transient +. cfg.p_worker_kill +. cfg.p_slowdown then
      Fault { fault = Slowdown cfg.slowdown_s; after }
    else No_fault
  end

(* The armed closure: decrement a countdown on every poll; the poll that
   takes it from 1 to 0 delivers the fault.  fetch_and_add makes the
   firing poll unique even when several domains poll concurrently. *)
let arm fault ~after =
  let togo = Atomic.make after in
  fun () ->
    if Atomic.fetch_and_add togo (-1) = 1 then begin
      (* Mark the delivery in the trace: the instant lands on the worker
         domain's lane, inside the service.attempt span it interrupted. *)
      Jp_obs.instant "chaos.fault"
        ~args:[ ("fault", Jp_obs.Json.String (fault_to_string fault)) ];
      match fault with
      | Transient ->
        Jp_obs.incr Jp_obs.C.chaos_transients;
        raise (Injected Transient)
      | Worker_kill ->
        Jp_obs.incr Jp_obs.C.chaos_worker_kills;
        raise (Injected Worker_kill)
      | Slowdown s ->
        Jp_obs.incr Jp_obs.C.chaos_slowdowns;
        Unix.sleepf s
    end

let with_attempt cfg ~query ~attempt ~degraded ~cancel ~pool f =
  match plan cfg ~query ~attempt ~degraded with
  | No_fault -> f ()
  | Fault { fault; after } ->
    let hook = arm fault ~after in
    Cancel.set_hook cancel hook;
    if pool then Pool.set_fault_hook (Some hook);
    Fun.protect
      ~finally:(fun () ->
        Cancel.clear_hook cancel;
        if pool then Pool.set_fault_hook None)
      f
