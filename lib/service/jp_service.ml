module Cancel = Jp_util.Cancel
module Pool = Jp_parallel.Pool
module Timer = Jp_util.Timer
module C = Jp_obs.C
module Json = Jp_obs.Json
module Metrics = Jp_metrics
module Overload = Overload

type error =
  | Overloaded
  | Shed
  | Expired_in_queue
  | Deadline_exceeded
  | Cancelled
  | Failed of string

let error_to_string = function
  | Overloaded -> "overloaded"
  | Shed -> "shed"
  | Expired_in_queue -> "expired-in-queue"
  | Deadline_exceeded -> "deadline"
  | Cancelled -> "cancelled"
  | Failed msg -> "failed: " ^ msg

type config = {
  workers : int;
  queue_capacity : int;
  max_retries : int;
  backoff_s : float;
  default_deadline_s : float option;
  chaos : Jp_chaos.config option;
  controller : Overload.config option;
}

let default =
  {
    workers = 1;
    queue_capacity = 16;
    max_retries = 2;
    backoff_s = 0.005;
    default_deadline_s = None;
    chaos = None;
    controller = None;
  }

type 'a report = {
  outcome : ('a, error) result;
  attempts : int;
  retries : int;
  degraded : bool;
  cache_hit : bool;
  queued_s : float;
  ran_s : float;
  trace_id : int;
}

type 'a ticket = {
  tlock : Mutex.t;
  tcond : Condition.t;
  mutable result : 'a report option;
  tcancel : Cancel.t;
}

let resolve tk rep =
  Mutex.lock tk.tlock;
  (match tk.result with None -> tk.result <- Some rep | Some _ -> ());
  Condition.broadcast tk.tcond;
  Mutex.unlock tk.tlock

let await tk =
  Mutex.lock tk.tlock;
  while tk.result = None do
    Condition.wait tk.tcond tk.tlock
  done;
  let rep = match tk.result with Some r -> r | None -> assert false in
  Mutex.unlock tk.tlock;
  rep

let cancel tk = Cancel.cancel tk.tcancel

(* A queued job erases the ticket's result type: [exec] runs the query
   on a worker domain, [abort] resolves the ticket as cancelled when the
   service shuts down before the job was picked up, and [expire] fails it
   fast when the overload controller sees its deadline already passed at
   dequeue (zero engine attempts).  Exactly one of the three ever runs. *)
type job = {
  exec : unit -> unit;
  abort : unit -> unit;
  expire : unit -> unit;
  expires_at : float option; (* absolute deadline, for the dequeue check *)
}

type t = {
  cfg : config;
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : job Queue.t;
  next_trace : int Atomic.t; (* per-service trace ids, in submission order *)
  ctl : Overload.t option;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

let worker_loop t =
  let continue = ref true in
  while !continue do
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.nonempty t.lock
    done;
    if t.stopping then begin
      Mutex.unlock t.lock;
      continue := false
    end
    else begin
      let job = Queue.pop t.queue in
      let depth = Queue.length t.queue in
      Mutex.unlock t.lock;
      Metrics.set_gauge Metrics.G.queue_depth depth;
      Metrics.add_gauge Metrics.G.inflight 1;
      (* Dequeue-time expiry is a controller behaviour: without one the
         query still reaches run_query, whose entry checkpoint reports
         Deadline_exceeded exactly as before. *)
      (match (t.ctl, job.expires_at) with
      | Some _, Some e when Timer.now () > e -> job.expire ()
      | _ -> job.exec ());
      Metrics.add_gauge Metrics.G.inflight (-1)
    end
  done

let create cfg =
  if cfg.queue_capacity < 0 then invalid_arg "Jp_service.create: negative queue";
  if cfg.max_retries < 0 then invalid_arg "Jp_service.create: negative retries";
  let workers = max 1 (min cfg.workers (Pool.available_cores ())) in
  let t =
    {
      cfg = { cfg with workers };
      lock = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      next_trace = Atomic.make 0;
      ctl = Option.map Overload.create cfg.controller;
      stopping = false;
      domains = [];
    }
  in
  Jp_obs.add C.service_workers_spawned workers;
  t.domains <- List.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let outcome_string = function
  | Ok _ -> "ok"
  | Error Overloaded -> "overloaded"
  | Error Shed -> "shed"
  | Error Expired_in_queue -> "expired"
  | Error Deadline_exceeded -> "deadline"
  | Error Cancelled -> "cancelled"
  | Error (Failed _) -> "failed"

(* One query execution on a worker domain: attempt loop with exponential
   backoff on injected transients, then a final degraded attempt.  Every
   exception is mapped to a typed error — nothing escapes to the worker
   loop. *)
let run_query t ~key ~trace_id ~cancel ~submitted_at ~cached ~brownout ~work tk =
  let started = Timer.now () in
  let attempts = ref 0 in
  let retries = ref 0 in
  (* Under brownout every attempt runs degraded — the safe combinatorial
     plan, same ladder as the post-retry degradation below — and the
     publish gate further down then keeps the result out of the cache. *)
  let degraded = ref brownout in
  if brownout then Jp_obs.incr C.service_brownout_served;
  let run_attempt ~degraded:d =
    let attempt = !attempts in
    incr attempts;
    Jp_obs.span "service.attempt"
      ~args:
        [
          ("trace_id", Json.Int trace_id);
          ("attempt", Json.Int attempt);
          ("degraded", Json.Bool d);
        ]
      (fun () ->
        match t.cfg.chaos with
        | None -> work ~cancel ~attempt ~degraded:d
        | Some ccfg ->
          Jp_chaos.with_attempt ccfg ~query:key ~attempt ~degraded:d ~cancel
            ~pool:(t.cfg.workers = 1) (fun () ->
              work ~cancel ~attempt ~degraded:d))
  in
  let outcome =
    try
      (* The deadline keeps ticking while queued: a query that waited too
         long dies here without burning a single engine cycle. *)
      Cancel.check cancel;
      let rec go n =
        match run_attempt ~degraded:brownout with
        | v -> Ok v
        | exception Jp_chaos.Injected _ when n < t.cfg.max_retries ->
          incr retries;
          Jp_obs.incr C.service_retries;
          Unix.sleepf (t.cfg.backoff_s *. (2.0 ** float_of_int n));
          go (n + 1)
        | exception Jp_chaos.Injected f when brownout ->
          (* Already on the safe path: there is no further rung. *)
          incr retries;
          Jp_obs.incr C.service_retries;
          Error (Failed ("persistent fault: " ^ Jp_chaos.fault_to_string f))
        | exception Jp_chaos.Injected _ -> begin
          incr retries;
          Jp_obs.incr C.service_retries;
          degraded := true;
          Jp_obs.incr C.service_degraded;
          match run_attempt ~degraded:true with
          | v -> Ok v
          | exception Jp_chaos.Injected f ->
            Error (Failed ("persistent fault: " ^ Jp_chaos.fault_to_string f))
        end
      in
      go 0
    with
    | Cancel.Cancelled Cancel.Deadline -> Error Deadline_exceeded
    | Cancel.Cancelled Cancel.Requested -> Error Cancelled
    | e -> Error (Failed (Printexc.to_string e))
  in
  (match outcome with
  | Ok _ -> Jp_obs.incr C.service_completed
  | Error Deadline_exceeded -> Jp_obs.incr C.service_deadline
  | Error Cancelled -> Jp_obs.incr C.service_cancelled
  | Error (Failed _) -> Jp_obs.incr C.service_failed
  | Error (Overloaded | Shed | Expired_in_queue) -> ());
  (* Publish-after-verify, and only a clean success: a cancelled, faulted
     or degraded attempt never reaches the cache.  [binding_publish] runs
     the binding's verifier before the entry becomes resident. *)
  (match (outcome, cached) with
  | Ok v, Some b when not !degraded ->
    ignore (Jp_cache.binding_publish b ~cost_s:(Timer.now () -. started) v)
  | _ -> ());
  let queued_s = started -. submitted_at in
  let ran_s = Timer.now () -. started in
  (* Aggregate once per query (chunk granularity): two histogram
     observations, one outcome marker, one gauge snapshot. *)
  Metrics.observe Metrics.H.service_queued_seconds queued_s;
  Metrics.observe Metrics.H.service_ran_seconds ran_s;
  (* Feed the overload estimator whatever the outcome: a deadline kill is
     as much evidence about service times as a success. *)
  (match t.ctl with
  | Some c -> Overload.note_executed c ~queued_s ~ran_s
  | None -> ());
  Jp_obs.instant "service.outcome"
    ~args:
      [
        ("trace_id", Json.Int trace_id);
        ("outcome", Json.String (outcome_string outcome));
        ("attempts", Json.Int !attempts);
        ("retries", Json.Int !retries);
        ("degraded", Json.Bool !degraded);
      ];
  Metrics.snapshot ();
  resolve tk
    {
      outcome;
      attempts = !attempts;
      retries = !retries;
      degraded = !degraded;
      cache_hit = false;
      queued_s;
      ran_s;
      trace_id;
    }

let base_report =
  { outcome = Error Overloaded; attempts = 0; retries = 0; degraded = false;
    cache_hit = false; queued_s = 0.0; ran_s = 0.0; trace_id = 0 }

let rejected_report ~trace_id = { base_report with trace_id }

let shed_report ~trace_id = { base_report with outcome = Error Shed; trace_id }

let aborted_report ~trace_id =
  { base_report with outcome = Error Cancelled; trace_id }

let hit_report v ~trace_id =
  { base_report with outcome = Ok v; cache_hit = true; trace_id }

let submit t ?(key = 0) ?deadline_s ?cached work =
  Jp_obs.incr C.service_submitted;
  let trace_id = Atomic.fetch_and_add t.next_trace 1 in
  (* Consult the cache before dispatch: a hit resolves on the submitting
     thread — no queue slot, no worker, no attempt.  The hit still counts
     as accepted + completed, so the lifecycle balance the service tests
     enforce keeps holding. *)
  match Option.map (fun b -> Jp_cache.binding_find b) cached with
  | Some (Some v) ->
    Jp_obs.incr C.service_accepted;
    Jp_obs.incr C.service_completed;
    Jp_obs.instant "service.cache_hit" ~args:[ ("trace_id", Json.Int trace_id) ];
    { tlock = Mutex.create (); tcond = Condition.create ();
      result = Some (hit_report v ~trace_id); tcancel = Cancel.create () }
  | _ ->
  let deadline_s =
    match deadline_s with Some _ as d -> d | None -> t.cfg.default_deadline_s
  in
  let cancel = Cancel.create ?deadline_s () in
  let tk =
    { tlock = Mutex.create (); tcond = Condition.create (); result = None;
      tcancel = cancel }
  in
  let submitted_at = Timer.now () in
  (* The brownout flag is decided at admission (under t.lock, before the
     job becomes visible to workers) but lives in the closure's state. *)
  let brownout = ref false in
  let exec_impl () =
    Jp_obs.span "service.query" ~args:[ ("trace_id", Json.Int trace_id) ]
      (fun () ->
        run_query t ~key ~trace_id ~cancel ~submitted_at ~cached
          ~brownout:!brownout ~work tk)
  in
  let expire_impl () =
    (* A client cancellation that raced the expiry keeps its meaning: let
       run_query's entry checkpoint report Cancelled as usual. *)
    if Cancel.reason cancel = Some Cancel.Requested then exec_impl ()
    else begin
      let queued_s = Timer.now () -. submitted_at in
      Jp_obs.incr C.service_expired;
      Metrics.observe Metrics.H.service_queued_seconds queued_s;
      (match t.ctl with
      | Some c -> Overload.note_expired c ~queued_s
      | None -> ());
      Jp_obs.instant "service.expired"
        ~args:[ ("trace_id", Json.Int trace_id) ];
      resolve tk
        { base_report with outcome = Error Expired_in_queue; queued_s; trace_id }
    end
  in
  let job =
    {
      exec = exec_impl;
      abort = (fun () -> resolve tk (aborted_report ~trace_id));
      expire = expire_impl;
      expires_at = Option.map (fun d -> submitted_at +. d) deadline_s;
    }
  in
  Mutex.lock t.lock;
  (* One controller assessment per admission — never per tuple.  Nested
     ctl lock under t.lock is safe: workers take the ctl lock without
     holding t.lock, never the reverse order. *)
  let verdict =
    match t.ctl with
    | Some c ->
      Some
        (Overload.assess c ~queued:(Queue.length t.queue)
           ~workers:t.cfg.workers ~deadline_s)
    | None -> None
  in
  let shed = match verdict with Some v -> v.Overload.shed | None -> false in
  (match verdict with
  | Some v -> brownout := v.Overload.brownout
  | None -> ());
  let accepted =
    (not shed) && (not t.stopping)
    && Queue.length t.queue < t.cfg.queue_capacity
  in
  if accepted then begin
    Queue.push job t.queue;
    Condition.signal t.nonempty
  end;
  let depth = Queue.length t.queue in
  Mutex.unlock t.lock;
  Metrics.set_gauge Metrics.G.queue_depth depth;
  (match verdict with
  | Some v ->
    Metrics.set_gauge Metrics.G.est_wait_us
      (int_of_float (v.Overload.est_wait_s *. 1e6));
    if v.Overload.entered then begin
      Jp_obs.incr C.service_brownout_entered;
      Metrics.set_gauge Metrics.G.brownout 1;
      Jp_obs.instant "service.brownout" ~args:[ ("on", Json.Bool true) ]
    end;
    if v.Overload.exited then begin
      Jp_obs.incr C.service_brownout_exited;
      Metrics.set_gauge Metrics.G.brownout 0;
      Jp_obs.instant "service.brownout" ~args:[ ("on", Json.Bool false) ]
    end
  | None -> ());
  if shed then begin
    Jp_obs.incr C.service_shed;
    Jp_obs.instant "service.shed" ~args:[ ("trace_id", Json.Int trace_id) ];
    resolve tk (shed_report ~trace_id)
  end
  else if accepted then Jp_obs.incr C.service_accepted
  else begin
    Jp_obs.incr C.service_rejected;
    Jp_obs.instant "service.rejected" ~args:[ ("trace_id", Json.Int trace_id) ];
    resolve tk (rejected_report ~trace_id)
  end;
  tk

let shutdown t =
  Mutex.lock t.lock;
  let fresh = not t.stopping in
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  let leftover =
    if fresh then begin
      let jobs = List.of_seq (Queue.to_seq t.queue) in
      Queue.clear t.queue;
      jobs
    end
    else []
  in
  let domains = t.domains in
  if fresh then t.domains <- [];
  Mutex.unlock t.lock;
  if fresh then begin
    List.iter Domain.join domains;
    Jp_obs.add C.service_workers_joined (List.length domains);
    List.iter (fun j -> j.abort ()) leftover
  end
