(** Overload controller for {!Jp_service}: shed early, degrade first.

    The bounded queue alone gives a binary overload behaviour — admit
    until full, then reject.  Under a saturating open-loop arrival
    stream that is the worst of both worlds: the queue fills with work
    that will expire before a worker reaches it, every accepted query
    pays the full queue delay, and goodput (answers within deadline)
    collapses to zero even though the workers never idle.  This
    controller adds the three standard defences, in escalation order:

    + {b Brownout}: under sustained measured overload, force the
      degraded safe plan (skip the MM heavy path — the same
      [Jp_adaptive.Guard.safe] ladder the budget guards use) so each
      accepted query costs less.  Degraded results never publish to the
      cache ({!Jp_service}'s publish-after-verify rule), so cache bypass
      comes with the ladder for free.
    + {b Admission shedding}: refuse a query outright when its estimated
      queue wait already exceeds its deadline — a fast typed [Shed]
      answer now beats a guaranteed [Deadline_exceeded] later.
    + {b Dequeue expiry}: fail still-queued tickets whose deadline has
      passed without burning a single engine cycle ([Expired_in_queue],
      zero attempts).

    The wait estimate combines two signals maintained by
    {!note_executed}: an EWMA of recent execution times scaled by the
    current queue depth per worker, and a windowed histogram of recently
    {e observed} queue waits (a {!Jp_metrics.Hist.t} over the same
    base-√2 ladder as the service's [queued_seconds] histogram, but
    private to the controller so it works with recording off).  The
    shed/brownout decisions compare the estimated {e completion} time —
    queue wait plus one EWMA execution — against the deadline, so a
    query is refused exactly when it could not finish in time even if
    admitted.  The estimate is refreshed {b once per admission} — never
    per tuple — and
    brownout transitions are hysteretic: the controller enters only
    after [enter_after] consecutive hot admissions and leaves only after
    [exit_after] consecutive cool ones, so it cannot flap on a single
    burst.

    The module is clock-free: it only ever sees the durations and depths
    its caller feeds it, which is what makes the unit tests
    deterministic. *)

type config = {
  shed_margin : float;
      (** shed when the estimated completion time (queue wait + one EWMA
          execution) exceeds [shed_margin *. deadline]; 1.0 sheds exactly
          at the deadline, lower values shed earlier *)
  brownout_enter : float;
      (** an admission is {e hot} when the estimated completion time
          exceeds [brownout_enter *. deadline] *)
  brownout_exit : float;
      (** an admission is {e cool} when the estimated completion time is
          below [brownout_exit *. deadline]; keep below [brownout_enter]
          for a hysteresis band *)
  enter_after : int;  (** consecutive hot admissions before entering *)
  exit_after : int;  (** consecutive cool admissions before exiting *)
  ewma_alpha : float;
      (** weight of the newest execution time in the EWMA, in (0, 1] *)
  window : int;
      (** observations per histogram half-window; the wait quantile is
          read over the last [window..2*window] observations *)
}

val default : config
(** [shed_margin = 1.0], [brownout_enter = 0.5], [brownout_exit = 0.2],
    [enter_after = 4], [exit_after = 8], [ewma_alpha = 0.3],
    [window = 32]. *)

type t
(** Mutex-protected controller state; safe to drive from the submitting
    thread and every worker domain concurrently. *)

val create : config -> t
(** Raises [Invalid_argument] on a non-positive [window],
    [enter_after]/[exit_after] < 1, or [ewma_alpha] outside (0, 1]. *)

type verdict = {
  shed : bool;  (** refuse this query at admission *)
  brownout : bool;  (** run this query on the degraded safe path *)
  entered : bool;  (** this admission switched brownout off → on *)
  exited : bool;  (** this admission switched brownout on → off *)
  est_wait_s : float;
      (** the estimated queue wait (the shed/brownout comparisons add one
          EWMA execution on top of this) *)
}

val assess : t -> queued:int -> workers:int -> deadline_s:float option -> verdict
(** [assess t ~queued ~workers ~deadline_s] is the admission decision
    for one query given the current queue depth.  Without a deadline
    there is nothing to protect: the verdict never sheds and never
    moves the hysteresis, it only reports the current brownout state
    and estimate.  Call exactly once per submission. *)

val note_executed : t -> queued_s:float -> ran_s:float -> unit
(** Feed one executed query's measured queue wait and execution time
    back into the estimator (workers call this after each query,
    whatever its outcome). *)

val note_expired : t -> queued_s:float -> unit
(** Feed the queue wait of a query that expired at dequeue — evidence
    of overload even though nothing executed. *)

val in_brownout : t -> bool

val est_exec_s : t -> float
(** Current EWMA of execution time; 0 before any {!note_executed}. *)
