(* Overload controller: wait estimation + hysteretic brownout.  Clock-free
   (only sees durations/depths fed by the caller) and independent of the
   Jp_obs recording gate — the estimator must keep working in production
   with observability off, so it owns plain Jp_metrics.Hist values instead
   of registered histograms. *)

module Hist = Jp_metrics.Hist

type config = {
  shed_margin : float;
  brownout_enter : float;
  brownout_exit : float;
  enter_after : int;
  exit_after : int;
  ewma_alpha : float;
  window : int;
}

let default =
  {
    shed_margin = 1.0;
    brownout_enter = 0.5;
    brownout_exit = 0.2;
    enter_after = 4;
    exit_after = 8;
    ewma_alpha = 0.3;
    window = 32;
  }

type t = {
  cfg : config;
  lock : Mutex.t;
  (* Recent queue waits, two rotating half-windows: [cur] fills, [prev]
     holds the previous window, quantile reads merge both.  Bounded
     memory, bounded staleness. *)
  cur : Hist.t;
  prev : Hist.t;
  mutable cur_n : int;
  mutable ewma_exec_s : float;
  mutable hot_streak : int;
  mutable cool_streak : int;
  mutable brownout : bool;
}

let create cfg =
  if cfg.window < 1 then invalid_arg "Overload.create: window must be >= 1";
  if cfg.enter_after < 1 || cfg.exit_after < 1 then
    invalid_arg "Overload.create: hysteresis streaks must be >= 1";
  if not (cfg.ewma_alpha > 0. && cfg.ewma_alpha <= 1.) then
    invalid_arg "Overload.create: ewma_alpha must be in (0, 1]";
  {
    cfg;
    lock = Mutex.create ();
    cur = Hist.create ();
    prev = Hist.create ();
    cur_n = 0;
    ewma_exec_s = 0.;
    hot_streak = 0;
    cool_streak = 0;
    brownout = false;
  }

let observe_wait t queued_s =
  Hist.observe t.cur queued_s;
  t.cur_n <- t.cur_n + 1;
  if t.cur_n >= t.cfg.window then begin
    Hist.clear t.prev;
    Hist.merge_into ~into:t.prev t.cur;
    Hist.clear t.cur;
    t.cur_n <- 0
  end

let note_executed t ~queued_s ~ran_s =
  Mutex.lock t.lock;
  observe_wait t queued_s;
  t.ewma_exec_s <-
    (if t.ewma_exec_s = 0. then ran_s
     else
       (t.cfg.ewma_alpha *. ran_s)
       +. ((1. -. t.cfg.ewma_alpha) *. t.ewma_exec_s));
  Mutex.unlock t.lock

let note_expired t ~queued_s =
  Mutex.lock t.lock;
  observe_wait t queued_s;
  Mutex.unlock t.lock

(* Wait estimate for a query joining a queue of depth [queued]: the
   backlog drained at the EWMA service rate across the workers, or the
   recent empirically observed wait — whichever is worse.  The quantile
   term catches regimes the backlog model misses (e.g. in-flight giants);
   the backlog term reacts instantly to a queue spike before any of those
   waits have been observed.  An empty queue silences the quantile term:
   the stale waits of a drained backlog say nothing about a query that
   can start as soon as a worker frees up (without this, a recovered
   service would keep shedding until the window rotated). *)
let estimate t ~queued ~workers =
  let workers = max 1 workers in
  let backlog = t.ewma_exec_s *. float_of_int queued /. float_of_int workers in
  let observed =
    if queued = 0 || (Hist.count t.cur = 0 && Hist.count t.prev = 0) then 0.
    else begin
      let m = Hist.copy t.prev in
      Hist.merge_into ~into:m t.cur;
      let q = Hist.quantile m 0.75 in
      if Float.is_nan q then 0. else q
    end
  in
  Float.max backlog observed

type verdict = {
  shed : bool;
  brownout : bool;
  entered : bool;
  exited : bool;
  est_wait_s : float;
}

let assess t ~queued ~workers ~deadline_s =
  Mutex.lock t.lock;
  let est_wait = estimate t ~queued ~workers in
  (* The decision variable is estimated *completion* time: the queue wait
     plus the query's own expected execution.  Shedding on the wait alone
     would admit queries whose wait leaves no room to actually run. *)
  let est = est_wait +. t.ewma_exec_s in
  let verdict =
    match deadline_s with
    | None ->
      (* Nothing to protect and no reference scale: report, don't act. *)
      { shed = false; brownout = t.brownout; entered = false; exited = false;
        est_wait_s = est_wait }
    | Some d ->
      let was = t.brownout in
      if est > t.cfg.brownout_enter *. d then begin
        t.hot_streak <- t.hot_streak + 1;
        t.cool_streak <- 0
      end
      else if est < t.cfg.brownout_exit *. d then begin
        t.cool_streak <- t.cool_streak + 1;
        t.hot_streak <- 0
      end
      else begin
        (* Inside the hysteresis band: neither side accumulates. *)
        t.hot_streak <- 0;
        t.cool_streak <- 0
      end;
      if (not was) && t.hot_streak >= t.cfg.enter_after then t.brownout <- true;
      if was && t.cool_streak >= t.cfg.exit_after then t.brownout <- false;
      {
        shed = est > t.cfg.shed_margin *. d;
        brownout = t.brownout;
        entered = (not was) && t.brownout;
        exited = was && not t.brownout;
        est_wait_s = est_wait;
      }
  in
  Mutex.unlock t.lock;
  verdict

let in_brownout t =
  Mutex.lock t.lock;
  let b = t.brownout in
  Mutex.unlock t.lock;
  b

let est_exec_s t =
  Mutex.lock t.lock;
  let e = t.ewma_exec_s in
  Mutex.unlock t.lock;
  e
