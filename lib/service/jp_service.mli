(** A resilient multi-domain query service.

    The engines in this repository are libraries: call them wrong, or on
    a hostile input, and the caller eats the exception and the latency.
    This module wraps them in the server loop a deployment would need —
    a fixed pool of worker domains pulling queries off a {e bounded}
    submission queue — and makes the failure behaviour a contract:

    - {b Admission control}: a full queue (or a stopping service)
      rejects the query immediately with {!Overloaded} instead of
      queueing unboundedly.
    - {b Deadlines}: each query carries a {!Jp_util.Cancel} token with
      an optional wall-clock deadline; engines poll it at their existing
      checkpoint granularity, so an expired query frees its domain
      promptly and reports {!Deadline_exceeded}.
    - {b Retry and degradation}: transient faults (injected by
      {!Jp_chaos} or real) are retried with exponential backoff; when
      retries run out, one final attempt runs with [~degraded:true],
      which the work closure should map to the safe non-matrix path
      (e.g. [Jp_adaptive.Guard.safe]).  A query therefore returns
      exactly the fault-free result or a typed {!error} — never a
      wrong answer.

    - {b Overload control} (opt-in via {!type:config}[.controller]):
      under saturating open-loop traffic the bounded queue alone fills
      with work that expires before a worker reaches it.  The
      {!Overload} controller sheds at admission when the estimated
      queue wait exceeds the query's deadline ({!Shed}), fails
      still-queued tickets fast at dequeue once their deadline has
      passed ({!Expired_in_queue}, zero attempts), and under sustained
      overload browns out: every attempt runs the degraded safe plan
      (which also keeps results out of the cache).  Controller absent ⇒
      byte-identical paths.
    - {b Caching}: a query submitted with a {!Jp_cache.binding} consults
      the cache {e before} dispatch — a hit resolves immediately, with no
      queue slot or worker attempt — and publishes its result after
      verification.  Only a clean success publishes: a cancelled, faulted
      or degraded attempt never installs an entry, so the cache can only
      ever serve the fault-free answer.

    Everything the service does is visible through the [service.*]
    counters and [service.query]/[service.attempt] spans of {!Jp_obs}
    when recording is on.  Every span and marker carries the query's
    [trace_id] (see {!type:report}), and the service additionally feeds
    {!Jp_metrics}: one [service.queued_seconds]/[service.ran_seconds]
    histogram observation and one gauge snapshot per executed query,
    plus the [service.queue_depth] and [service.inflight] gauges —
    aggregate latency and load, not just per-ticket numbers. *)

module Cancel = Jp_util.Cancel

(** The overload controller (shed / brownout / dequeue expiry); armed by
    {!type:config}[.controller].  See {!Overload} for the policy. *)
module Overload = Overload

type error =
  | Overloaded  (** rejected at admission: queue full or shutting down *)
  | Shed
      (** rejected at admission by the overload controller: the estimated
          queue wait already exceeded this query's deadline *)
  | Expired_in_queue
      (** failed fast at dequeue: the deadline passed while queued, so no
          engine attempt ran ([attempts = 0]; controller only) *)
  | Deadline_exceeded  (** the query's deadline passed before it finished *)
  | Cancelled  (** client cancelled (or the service shut down under it) *)
  | Failed of string  (** retries and degradation both exhausted *)

val error_to_string : error -> string

type config = {
  workers : int;  (** worker domains (clamped to available cores, min 1) *)
  queue_capacity : int;  (** admission bound; 0 rejects everything *)
  max_retries : int;  (** transient-fault retries before degrading *)
  backoff_s : float;  (** base backoff; attempt [n] waits [backoff_s * 2^n] *)
  default_deadline_s : float option;
      (** deadline for queries submitted without one *)
  chaos : Jp_chaos.config option;  (** arm fault injection on every attempt *)
  controller : Overload.config option;
      (** arm the overload controller.  [None] (the default) leaves every
          path byte-identical to the uncontrolled service: no {!Shed} or
          {!Expired_in_queue} outcomes, no estimator, no brownout. *)
}

val default : config
(** 1 worker, capacity 16, 2 retries, 5 ms base backoff, no default
    deadline, no chaos, no overload controller. *)

type 'a report = {
  outcome : ('a, error) result;
  attempts : int;  (** work-closure invocations, including the degraded one *)
  retries : int;  (** re-runs caused by transient faults *)
  degraded : bool;  (** the returned value came from the degraded attempt *)
  cache_hit : bool;  (** served from the cache: [attempts = 0], no worker ran *)
  queued_s : float;  (** admission to first execution *)
  ran_s : float;  (** execution (all attempts and backoffs) *)
  trace_id : int;
      (** per-service query id, assigned in submission order; the same id
          stamps every [Jp_obs] span and instant of this query's
          lifecycle ([service.query], each [service.attempt], the
          [service.outcome] / [service.cache_hit] / [service.rejected]
          markers), correlating a Chrome-trace export per query *)
}

type 'a ticket
(** Handle for one submitted query. *)

type t

val create : config -> t
(** Spawn the worker domains.  Every service must be {!shutdown}. *)

val submit :
  t ->
  ?key:int ->
  ?deadline_s:float ->
  ?cached:'a Jp_cache.binding ->
  (cancel:Cancel.t -> attempt:int -> degraded:bool -> 'a) ->
  'a ticket
(** Submit a query.  The work closure must thread [cancel] into the
    engines it calls ([?cancel:] everywhere) and honour [degraded] by
    switching to the safe non-matrix path; [attempt] is 0-based.  [key]
    identifies the query to the chaos planner — pass a stable workload
    index for reproducible fault injection (default 0).  A query
    rejected at admission yields a ticket already resolved to
    [Error Overloaded].

    [cached] names the query's result slot in a {!Jp_cache}: a resident
    entry resolves the ticket immediately ([cache_hit = true], counted
    as accepted + completed); otherwise the query runs normally and a
    clean, non-degraded [Ok] outcome is offered back through
    {!Jp_cache.binding_publish} (verify-then-publish; admission is
    cost-based, see {!Jp_cache.offer}). *)

val await : 'a ticket -> 'a report
(** Block until the query resolves.  Safe from any domain; idempotent. *)

val cancel : 'a ticket -> unit
(** Request cancellation.  The query resolves to [Error Cancelled] at
    its next checkpoint (unless it already finished). *)

val shutdown : t -> unit
(** Stop admitting, wake and join every worker (in-flight queries run to
    completion), then resolve still-queued tickets to [Error Cancelled].
    Idempotent. *)
