type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* printing                                                            *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else begin
    (* shortest decimal form that round-trips *)
    let rec go p =
      if p > 17 then Printf.sprintf "%.17g" f
      else
        let s = Printf.sprintf "%.*g" p f in
        if float_of_string s = f then s else go (p + 1)
    in
    go 1
  end

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf x)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

(* Pretty printer: one field per line, two-space indent — enough for the
   checked-in bench baselines to diff cleanly. *)
let rec emit_pretty buf indent v =
  let pad n = String.make (2 * n) ' ' in
  match v with
  | List (_ :: _ as items) ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 1));
        emit_pretty buf (indent + 1) x)
      items;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad indent);
    Buffer.add_char buf ']'
  | Obj (_ :: _ as fields) ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, x) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 1));
        escape buf k;
        Buffer.add_string buf ": ";
        emit_pretty buf (indent + 1) x)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad indent);
    Buffer.add_char buf '}'
  | v -> emit buf v

let to_string_pretty v =
  let buf = Buffer.create 1024 in
  emit_pretty buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* parsing                                                             *)

exception Parse_error of string

type cursor = { text : string; mutable pos : int }

let error c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> error c (Printf.sprintf "expected '%c'" ch)

let parse_literal c word value =
  if
    c.pos + String.length word <= String.length c.text
    && String.sub c.text c.pos (String.length word) = word
  then begin
    c.pos <- c.pos + String.length word;
    value
  end
  else error c ("expected " ^ word)

let hex_digit c ch =
  match ch with
  | '0' .. '9' -> Char.code ch - Char.code '0'
  | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
  | _ -> error c "invalid \\u escape"

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some '"' -> Buffer.add_char buf '"'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '/' -> Buffer.add_char buf '/'
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some 'b' -> Buffer.add_char buf '\b'
      | Some 'f' -> Buffer.add_char buf '\012'
      | Some 'u' ->
        if c.pos + 4 >= String.length c.text then error c "truncated \\u escape";
        let code =
          (hex_digit c c.text.[c.pos + 1] lsl 12)
          lor (hex_digit c c.text.[c.pos + 2] lsl 8)
          lor (hex_digit c c.text.[c.pos + 3] lsl 4)
          lor hex_digit c c.text.[c.pos + 4]
        in
        c.pos <- c.pos + 4;
        (* ASCII code points decode exactly; anything above is replaced —
           the emitter never produces them. *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else Buffer.add_char buf '?'
      | _ -> error c "invalid escape");
      advance c;
      go ()
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek c with Some ch when is_num_char ch -> true | _ -> false do
    advance c
  done;
  let s = String.sub c.text start (c.pos - start) in
  match int_of_string_opt s with
  | Some n -> Int n
  | None -> (
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> error c ("invalid number " ^ s))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws c;
        let key = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields ((key, v) :: acc)
        | Some '}' ->
          advance c;
          List.rev ((key, v) :: acc)
        | _ -> error c "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> error c "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '"' -> String (parse_string c)
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some 'n' -> parse_literal c "null" Null
  | Some _ -> parse_number c

let of_string s =
  let c = { text = s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then Error "trailing garbage after JSON value"
    else Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* accessors                                                           *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list_opt = function List items -> Some items | _ -> None

let to_int_opt = function Int n -> Some n | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
