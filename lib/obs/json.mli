(** Minimal JSON values: just enough to emit Chrome traces and bench
    records, and to parse them back in tests — no external dependency.

    The emitter always produces valid JSON (non-finite floats become
    [null]); the parser accepts any standard JSON document, with the one
    simplification that [\u] escapes above ASCII decode to ['?']. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering. *)

val to_string_pretty : t -> string
(** Indented rendering (one field per line), ending in a newline — used
    for checked-in baseline files so successive PRs diff cleanly. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; [Error] carries a message with the
    failing offset. *)

val member : string -> t -> t option
(** [member key (Obj ...)] looks up a field; [None] on missing key or
    non-object. *)

val to_list_opt : t -> t list option

val to_int_opt : t -> int option

val to_float_opt : t -> float option
(** Accepts both [Int] and [Float]. *)

val to_string_opt : t -> string option
