module Json = Json
module Hook = Jp_util.Obs_hook
module Timer = Jp_util.Timer
module Tablefmt = Jp_util.Tablefmt

(* ------------------------------------------------------------------ *)
(* global switch                                                       *)

(* Atomic rather than a bare ref: worker domains read the switch on
   their hot paths while the coordinator may toggle it. *)
let on = Atomic.make false

let recording () = Atomic.get on

let enable () =
  Atomic.set on true;
  Atomic.set Hook.enabled true

let disable () =
  Atomic.set on false;
  Atomic.set Hook.enabled false

(* ------------------------------------------------------------------ *)
(* counters                                                            *)

type counter = { cname : string; cell : int Atomic.t }

let registry_lock = Mutex.create ()

let registry : counter list ref =
  ref [] [@@jp.domain_safe "every access is guarded by registry_lock"]

let counter name =
  Mutex.lock registry_lock;
  let c =
    match List.find_opt (fun c -> c.cname = name) !registry with
    | Some c -> c
    | None ->
      let c = { cname = name; cell = Atomic.make 0 } in
      registry := c :: !registry;
      c
  in
  Mutex.unlock registry_lock;
  c

let add c n = if Atomic.get on then ignore (Atomic.fetch_and_add c.cell n)

let incr c = add c 1

let value c = Atomic.get c.cell

module C = struct
  let mm_bool_word_ops = counter "mm.bool_word_ops"

  let mm_count_word_ops = counter "mm.count_word_ops"

  let stamp_hits = counter "dedup.stamp_hits"

  let stamp_misses = counter "dedup.stamp_misses"

  let light_probes = counter "light.probes"

  let pool_tasks = counter "pool.tasks"

  let pool_spawns = counter "pool.domain_spawns"

  (* Query-service lifecycle (Jp_service): every submission ends up in
     exactly one of accepted/rejected, and every accepted query in exactly
     one of completed/failed/deadline/cancelled — the balance the service
     tests enforce. *)
  let service_submitted = counter "service.submitted"

  let service_accepted = counter "service.accepted"

  let service_rejected = counter "service.rejected_overload"

  let service_completed = counter "service.completed"

  let service_failed = counter "service.failed"

  let service_deadline = counter "service.deadline_exceeded"

  let service_cancelled = counter "service.cancelled"

  let service_retries = counter "service.retries"

  let service_degraded = counter "service.degraded"

  let service_workers_spawned = counter "service.workers_spawned"

  let service_workers_joined = counter "service.workers_joined"

  (* Overload controller (Jp_service.Overload): shed splits off from
     rejected (queue full) at admission, expired_in_queue from deadline
     (queries killed at dequeue, zero attempts); brownout transitions and
     the queries served degraded under it are counted separately so the
     ladder is auditable from the exposition alone. *)
  let service_shed = counter "service.shed"

  let service_expired = counter "service.expired_in_queue"

  let service_brownout_entered = counter "service.brownout_entered"

  let service_brownout_exited = counter "service.brownout_exited"

  let service_brownout_served = counter "service.brownout_served"

  (* Chaos injection (Jp_chaos), one bump per fault actually delivered. *)
  let chaos_transients = counter "chaos.transients"

  let chaos_worker_kills = counter "chaos.worker_kills"

  let chaos_slowdowns = counter "chaos.slowdowns"

  (* Semantic cache (Jp_cache).  hit/miss count lookups, evict/reject
     count entries pushed out by the LANDLORD budget or refused by the
     cost-based admission test, invalidate counts entries dropped by view
     updates; cache.bytes tracks the resident footprint (bumped by the
     entry size on insert, by its negation on evict/invalidate, so the
     counter value is the current gauge). *)
  let cache_hits = counter "cache.hit"

  let cache_misses = counter "cache.miss"

  let cache_evictions = counter "cache.evict"

  let cache_rejects = counter "cache.reject"

  let cache_invalidations = counter "cache.invalidate"

  let cache_bytes = counter "cache.bytes"

  (* Tiled heavy-part product (Jp_tile).  build/store_hit/evict count
     operand-tile traffic through the bounded resident store, product
     counts output tiles computed; tile.bytes tracks the store's
     resident footprint like cache.bytes, and tile.peak_bytes is the
     monotone high-water mark of that footprint (bumped by the increase
     only, so bench-cell deltas report the peak growth). *)
  let tile_builds = counter "tile.build"

  let tile_store_hits = counter "tile.store_hit"

  let tile_evictions = counter "tile.evict"

  let tile_products = counter "tile.product"

  let tile_bytes = counter "tile.bytes"

  let tile_peak_bytes = counter "tile.peak_bytes"
end

let counter_values () =
  Mutex.lock registry_lock;
  let own = List.map (fun c -> (c.cname, Atomic.get c.cell)) !registry in
  Mutex.unlock registry_lock;
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (("sort.radix_bytes", Atomic.get Hook.radix_bytes) :: own)

let render_counters () =
  let rows =
    List.filter_map
      (fun (name, v) -> if v = 0 then None else Some [ name; Tablefmt.big_int v ])
      (counter_values ())
  in
  match rows with
  | [] -> "(all counters zero)\n"
  | rows -> Tablefmt.render ~header:[ "counter"; "value" ] ~rows

(* ------------------------------------------------------------------ *)
(* spans                                                               *)

type event = {
  tid : int;
  seq : int; (* recording order, breaks timestamp ties deterministically *)
  path : string list; (* innermost first *)
  t0 : float;
  t1 : float;
  args : (string * Json.t) list; (* trace correlation payload *)
  inst : bool; (* instant marker rather than an interval *)
}

let events_lock = Mutex.create ()

let events : event list ref =
  ref [] [@@jp.domain_safe "every access is guarded by events_lock"]

let event_seq =
  ref 0 [@@jp.domain_safe "every access is guarded by events_lock"]

(* Each domain keeps its own stack of open span names, so worker-domain
   spans nest under their own roots instead of racing on a global. *)
let stack_key : string list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let timed_span ?(args = []) name f =
  if not (Atomic.get on) then (f (), 0.0)
  else begin
    let stack = Domain.DLS.get stack_key in
    let path = name :: !stack in
    stack := path;
    let t0 = Timer.now () in
    let finish () =
      let t1 = Timer.now () in
      stack := (match !stack with _ :: tl -> tl | [] -> []);
      Mutex.lock events_lock;
      let seq = !event_seq in
      Stdlib.incr event_seq;
      events :=
        { tid = (Domain.self () :> int); seq; path; t0; t1; args; inst = false }
        :: !events;
      Mutex.unlock events_lock;
      t1 -. t0
    in
    match f () with
    | x ->
      let dt = finish () in
      (x, dt)
    | exception e ->
      ignore (finish ());
      raise e
  end

let span ?args name f = fst (timed_span ?args name f)

let instant ?(args = []) name =
  if Atomic.get on then begin
    let stack = Domain.DLS.get stack_key in
    let t = Timer.now () in
    Mutex.lock events_lock;
    let seq = !event_seq in
    Stdlib.incr event_seq;
    events :=
      {
        tid = (Domain.self () :> int);
        seq;
        path = name :: !stack;
        t0 = t;
        t1 = t;
        args;
        inst = true;
      }
      :: !events;
    Mutex.unlock events_lock
  end

let span_events () =
  Mutex.lock events_lock;
  let evs = !events in
  Mutex.unlock events_lock;
  List.sort
    (fun a b ->
      match Float.compare a.t0 b.t0 with
      | 0 -> (
        match Float.compare a.t1 b.t1 with 0 -> Int.compare a.seq b.seq | n -> n)
      | n -> n)
    evs

(* Aggregated view: events sharing a call path collapse into one node
   (summed time, call count); children keep first-call order. *)
type span_node = {
  name : string;
  calls : int;
  seconds : float;
  children : span_node list;
}

type mutable_node = {
  mutable m_calls : int;
  mutable m_seconds : float;
  mutable m_children : (string * mutable_node) list; (* reversed *)
}

let span_tree () =
  let root = { m_calls = 0; m_seconds = 0.0; m_children = [] } in
  let node_for parent name =
    match List.assoc_opt name parent.m_children with
    | Some n -> n
    | None ->
      let n = { m_calls = 0; m_seconds = 0.0; m_children = [] } in
      parent.m_children <- (name, n) :: parent.m_children;
      n
  in
  List.iter
    (fun ev ->
      let node =
        List.fold_left (fun parent name -> node_for parent name) root
          (List.rev ev.path)
      in
      node.m_calls <- node.m_calls + 1;
      node.m_seconds <- node.m_seconds +. (ev.t1 -. ev.t0))
    (span_events ());
  let rec freeze m =
    List.rev_map
      (fun (name, n) ->
        { name; calls = n.m_calls; seconds = n.m_seconds; children = freeze n })
      m.m_children
  in
  freeze root

let render_spans () =
  let rows = ref [] in
  let rec walk depth node =
    let child_total =
      List.fold_left (fun acc c -> acc +. c.seconds) 0.0 node.children
    in
    let self = Float.max 0.0 (node.seconds -. child_total) in
    rows :=
      [
        String.make (2 * depth) ' ' ^ node.name;
        string_of_int node.calls;
        Tablefmt.seconds node.seconds;
        Tablefmt.seconds self;
      ]
      :: !rows;
    List.iter (walk (depth + 1)) node.children
  in
  let tree = span_tree () in
  List.iter (walk 0) tree;
  match tree with
  | [] -> "(no spans recorded)\n"
  | _ ->
    Tablefmt.render
      ~header:[ "span"; "calls"; "total"; "self" ]
      ~rows:(List.rev !rows)

let chrome_trace ?extra () =
  let evs = span_events () in
  let base = match evs with [] -> 0.0 | ev :: _ -> ev.t0 in
  let trace_events =
    List.map
      (fun ev ->
        let shape =
          if ev.inst then
            [ ("ph", Json.String "i"); ("s", Json.String "t") ]
          else
            [
              ("ph", Json.String "X");
              ("dur", Json.Float ((ev.t1 -. ev.t0) *. 1e6));
            ]
        in
        Json.Obj
          ([
             ("name", Json.String (List.hd ev.path));
             ("cat", Json.String "joinproj");
           ]
          @ shape
          @ [
              ("ts", Json.Float ((ev.t0 -. base) *. 1e6));
              ("pid", Json.Int 1);
              ("tid", Json.Int ev.tid);
            ]
          @ (match ev.args with [] -> [] | args -> [ ("args", Json.Obj args) ])))
      evs
  in
  let trace_events =
    match extra with
    | None -> trace_events
    | Some f -> trace_events @ f ~base
  in
  let counter_args =
    List.filter_map
      (fun (name, v) -> if v = 0 then None else Some (name, Json.Int v))
      (counter_values ())
  in
  Json.Obj
    [
      ("traceEvents", Json.List trace_events);
      ("displayTimeUnit", Json.String "ms");
      ("otherData", Json.Obj [ ("counters", Json.Obj counter_args) ]);
    ]

let chrome_trace_string ?extra () = Json.to_string (chrome_trace ?extra ())

(* ------------------------------------------------------------------ *)
(* plan vs actual                                                      *)

type plan_actual = {
  label : string;
  decision : string;
  est_out : int;
  join_size : int;
  est_seconds : float;
  actual_out : int;
  actual_seconds : float;
  replanned : bool;
  degraded : bool;
  phases : (string * float) list;
}

let plans_lock = Mutex.create ()

let plans : plan_actual list ref =
  ref [] [@@jp.domain_safe "every access is guarded by plans_lock"]

let record_plan ?(replanned = false) ?(degraded = false) ~label ~decision
    ~est_out ~join_size ~est_seconds ~actual_out ~actual_seconds ~phases () =
  if Atomic.get on then begin
    let p =
      {
        label;
        decision;
        est_out;
        join_size;
        est_seconds;
        actual_out;
        actual_seconds;
        replanned;
        degraded;
        phases;
      }
    in
    Mutex.lock plans_lock;
    plans := p :: !plans;
    Mutex.unlock plans_lock
  end

let plan_records () =
  Mutex.lock plans_lock;
  let ps = List.rev !plans in
  Mutex.unlock plans_lock;
  ps

let ratio actual est =
  if Float.is_nan est || est <= 0.0 then "-"
  else Printf.sprintf "x%.2f" (actual /. est)

let opt_int n = if n < 0 then "-" else Tablefmt.big_int n

let opt_seconds s = if Float.is_nan s || s < 0.0 then "-" else Tablefmt.seconds s

let adapt_string ~replanned ~degraded =
  match (replanned, degraded) with
  | false, false -> "-"
  | true, false -> "replan"
  | false, true -> "degrade"
  | true, true -> "replan+degrade"

let render_plans () =
  match plan_records () with
  | [] -> "(no plans recorded)\n"
  | records ->
    let rows =
      List.map
        (fun p ->
          let phases =
            String.concat "; "
              (List.map
                 (fun (name, dt) ->
                   Printf.sprintf "%s %s" name (Tablefmt.seconds dt))
                 p.phases)
          in
          [
            p.label;
            p.decision;
            opt_int p.est_out;
            opt_int p.actual_out;
            ratio (float_of_int p.actual_out) (float_of_int p.est_out);
            opt_seconds p.est_seconds;
            opt_seconds p.actual_seconds;
            ratio p.actual_seconds p.est_seconds;
            adapt_string ~replanned:p.replanned ~degraded:p.degraded;
            phases;
          ])
        records
    in
    Tablefmt.render
      ~header:
        [
          "label";
          "plan";
          "est_out";
          "|OUT|";
          "out err";
          "est";
          "actual";
          "t err";
          "adapt";
          "phases";
        ]
      ~rows

(* ------------------------------------------------------------------ *)
(* reset                                                               *)

let reset () =
  Mutex.lock registry_lock;
  List.iter (fun c -> Atomic.set c.cell 0) !registry;
  Mutex.unlock registry_lock;
  Hook.reset ();
  Mutex.lock events_lock;
  events := [];
  event_seq := 0;
  Mutex.unlock events_lock;
  Mutex.lock plans_lock;
  plans := [];
  Mutex.unlock plans_lock
