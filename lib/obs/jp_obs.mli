(** Observability substrate: wall-clock spans, process-global counters and
    plan-vs-actual records, shared by every join engine.

    Everything here is a no-op unless {!enable} has been called: [span]
    runs its thunk directly, counter bumps compile to one flag check, and
    nothing is allocated or locked.  That keeps the instrumentation safe
    to leave in hot paths (the bench acceptance bound is < 2% overhead
    with observation off).

    Concurrency: spans keep a per-domain stack (worker-domain spans nest
    under their own roots), counters are atomic ints so worker chunks can
    publish exactly, and the event/plan sinks are mutex-protected.  All
    recorded values are deterministic for a fixed seed and input — only
    timestamps vary between runs. *)

module Json : module type of Json

(** {1 Global switch} *)

val enable : unit -> unit
(** Turn recording on (spans, counters, plan records). *)

val disable : unit -> unit
(** Turn recording off.  Recorded data is kept until {!reset}. *)

val recording : unit -> bool
(** True between {!enable} and {!disable}.  Hot loops read this once per
    chunk and accumulate locally when it is set. *)

val reset : unit -> unit
(** Clear spans and plan records, zero every counter (including the
    [jp_util] hook counters). *)

(** {1 Spans} *)

val span : ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f], recording one wall-clock event nested under
    the calling domain's innermost open span.  Exceptions propagate after
    the span is closed.  [args] (default empty) rides along into the
    Chrome-trace export — {!Jp_service} uses it to stamp every span of a
    query with its [trace_id]/[attempt] so a served workload's lanes can
    be correlated per query. *)

val timed_span :
  ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a * float
(** Like {!span} but also returns elapsed seconds ([0.] when disabled) —
    used by engines to fill the [phases] of a plan-vs-actual record
    without timing twice. *)

val instant : ?args:(string * Json.t) list -> string -> unit
(** Record a zero-duration marker event (dropped while recording is off)
    nested under the calling domain's innermost open span: Chrome-trace
    ["i"] events such as [service.outcome] or [chaos.fault].  In the
    aggregated {!span_tree} an instant contributes a call with zero
    seconds. *)

type span_node = {
  name : string;
  calls : int;  (** events merged into this node *)
  seconds : float;  (** summed wall time across those calls *)
  children : span_node list;  (** in first-call order *)
}
(** Aggregated span tree: events sharing a call path collapse into one
    node. *)

val span_tree : unit -> span_node list

val render_spans : unit -> string
(** Plain-text tree (indented {!Jp_util.Tablefmt} table) with per-node
    total and self time. *)

val chrome_trace : ?extra:(base:float -> Json.t list) -> unit -> Json.t
(** Chrome-trace ("trace event format") document: one complete ["X"]
    event per span (["i"] per {!instant}) with microsecond [ts]/[dur]
    relative to the first event, [tid] = recording domain, span [args]
    attached; nonzero counters ride along under [otherData.counters].
    [extra ~base] may append further trace events (timestamps relative
    to [base], the first event's absolute time) — {!Jp_metrics} injects
    its gauge-snapshot ["C"] counter events this way.  Load the result
    in [chrome://tracing] or Perfetto. *)

val chrome_trace_string : ?extra:(base:float -> Json.t list) -> unit -> string

(** {1 Counters} *)

type counter
(** A named process-global tally.  Morally a plain [int ref]; atomic so
    that parallel workers publishing per-chunk subtotals cannot lose
    updates.  Bumps are dropped while recording is off. *)

val counter : string -> counter
(** Find-or-create by name (names are unique; reuse returns the same
    cell). *)

val add : counter -> int -> unit

val incr : counter -> unit

val value : counter -> int

val counter_values : unit -> (string * int) list
(** Every registered counter (plus the [jp_util] hook counters, e.g.
    ["sort.radix_bytes"]), sorted by name. *)

val render_counters : unit -> string
(** Table of the nonzero counters. *)

(** The process-wide counters maintained by the instrumented engines. *)
module C : sig
  val mm_bool_word_ops : counter
  (** 62-bit word ORs performed by {!Jp_matrix.Boolmat.mul}. *)

  val mm_count_word_ops : counter
  (** 62-bit AND+popcount words in {!Jp_matrix.Boolmat.count_product}. *)

  val stamp_hits : counter
  (** Stamp-vector probes that found the stamp already set (dedup hits). *)

  val stamp_misses : counter
  (** Stamp-vector probes that claimed a fresh value (distinct results). *)

  val light_probes : counter
  (** Candidate tuples scanned by the combinatorial (light/WCOJ) loops. *)

  val pool_tasks : counter
  (** Chunks executed by {!Jp_parallel.Pool} work loops. *)

  val pool_spawns : counter
  (** Domains spawned by {!Jp_parallel.Pool.run_workers}. *)

  val service_submitted : counter
  (** Queries offered to [Jp_service.submit] (accepted or not). *)

  val service_accepted : counter
  (** Queries admitted to the service queue. *)

  val service_rejected : counter
  (** Queries refused at admission (queue full or shutting down). *)

  val service_completed : counter
  (** Accepted queries that returned a result. *)

  val service_failed : counter
  (** Accepted queries that ended in [Failed _] after retries ran out. *)

  val service_deadline : counter
  (** Accepted queries cut off by their deadline. *)

  val service_cancelled : counter
  (** Accepted queries cancelled by the client (or at shutdown). *)

  val service_retries : counter
  (** Attempt re-runs after an injected transient fault. *)

  val service_degraded : counter
  (** Final attempts forced onto the safe non-matrix path. *)

  val service_shed : counter
  (** Queries refused at admission by the overload controller: estimated
      queue wait exceeded the query's deadline.  Disjoint from
      {!service_rejected} (queue full). *)

  val service_expired : counter
  (** Still-queued queries failed fast at dequeue because their deadline
      had already passed — zero engine attempts.  Counted separately from
      {!service_deadline} (which covers queries that started running). *)

  val service_brownout_entered : counter
  (** Overload-controller brownout transitions (off → on). *)

  val service_brownout_exited : counter
  (** Overload-controller brownout transitions (on → off). *)

  val service_brownout_served : counter
  (** Queries forced onto the degraded safe path by an active brownout. *)

  val service_workers_spawned : counter
  (** Service worker domains spawned; must equal {!service_workers_joined}
      after shutdown (the leak check in the service tests). *)

  val service_workers_joined : counter
  (** Service worker domains joined at shutdown. *)

  val chaos_transients : counter
  (** Transient kernel faults actually delivered by [Jp_chaos]. *)

  val chaos_worker_kills : counter
  (** Worker-domain deaths actually delivered by [Jp_chaos]. *)

  val chaos_slowdowns : counter
  (** Artificial slowdowns actually delivered by [Jp_chaos]. *)

  val cache_hits : counter
  (** [Jp_cache] lookups answered from a resident entry. *)

  val cache_misses : counter
  (** [Jp_cache] lookups that found no entry. *)

  val cache_evictions : counter
  (** Entries pushed out by the LANDLORD byte budget. *)

  val cache_rejects : counter
  (** Entries refused by the cost-based admission test. *)

  val cache_invalidations : counter
  (** Entries dropped because a fingerprint was invalidated. *)

  val cache_bytes : counter
  (** Resident cache footprint gauge (insert adds the entry size,
      evict/invalidate subtracts it). *)

  val tile_builds : counter
  (** Operand tiles built (or rebuilt after eviction) by [Jp_tile]. *)

  val tile_store_hits : counter
  (** Operand-tile fetches answered by the resident tile store. *)

  val tile_evictions : counter
  (** Operand tiles evicted by the resident-set byte budget. *)

  val tile_products : counter
  (** Output tiles computed by the tiled [mul]/[count_product]. *)

  val tile_bytes : counter
  (** Resident tile-store footprint gauge (build adds the tile size,
      evict subtracts it), mirroring {!cache_bytes}. *)

  val tile_peak_bytes : counter
  (** High-water mark of {!tile_bytes}: bumped by the increase whenever
      the resident footprint sets a new maximum, so its value is the
      peak and a bench cell's delta is the peak growth in that cell. *)
end

(** {1 Plan vs actual} *)

type plan_actual = {
  label : string;  (** engine entry point, e.g. ["two_path"] *)
  decision : string;  (** rendered optimizer decision *)
  est_out : int;  (** estimated |OUT|; negative = not estimated *)
  join_size : int;  (** exact full-join size |OUT⋈| *)
  est_seconds : float;  (** optimizer cost estimate; [nan] = none *)
  actual_out : int;  (** measured |OUT| *)
  actual_seconds : float;  (** measured wall seconds *)
  replanned : bool;
      (** an adaptive guard re-planned mid-query with observed statistics *)
  degraded : bool;
      (** a resource budget forced degradation to the safe WCOJ path *)
  phases : (string * float) list;  (** per-phase seconds, from spans *)
}
(** One engine invocation: what {!Joinproj.Optimizer.plan} predicted next
    to what actually happened — the feedback loop the cost model needs. *)

val record_plan :
  ?replanned:bool ->
  ?degraded:bool ->
  label:string ->
  decision:string ->
  est_out:int ->
  join_size:int ->
  est_seconds:float ->
  actual_out:int ->
  actual_seconds:float ->
  phases:(string * float) list ->
  unit ->
  unit
(** Append a record (dropped while recording is off).  [replanned] and
    [degraded] (default [false]) carry the adaptive-guard outcome. *)

val plan_records : unit -> plan_actual list
(** In recording order. *)

val render_plans : unit -> string
(** Plan-vs-actual table: estimated vs measured output size and seconds
    with error ratios, plus the per-phase breakdown. *)
