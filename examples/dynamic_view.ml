(* Incrementally maintained join-project views: keep the co-author view
   V(x,z) = R(x,y), R(z,y) current under edits to the base table, paying
   per-update delta cost instead of recomputation.

   Run: dune exec examples/dynamic_view.exe *)

module Relation = Jp_relation.Relation
module View = Jp_dynamic.View

let () =
  let r = Jp_workload.Presets.load ~scale:0.4 Jp_workload.Presets.Dblp in
  let view, t_init = Jp_util.Timer.time (fun () -> View.init ~r ~s:r ()) in
  Printf.printf "materialized view: %s pairs in %s\n"
    (Jp_util.Tablefmt.big_int (View.count view))
    (Jp_util.Tablefmt.seconds t_init);
  (* a stream of single-tuple edits *)
  let updates = 20_000 in
  let rng = Jp_util.Rng.create 99 in
  let nx = Relation.src_count r and ny = Relation.dst_count r in
  let (), t_updates =
    Jp_util.Timer.time (fun () ->
        for _ = 1 to updates do
          let a = Jp_util.Rng.int rng nx and b = Jp_util.Rng.int rng ny in
          if Jp_util.Rng.bool rng then begin
            View.insert_r view a b;
            View.insert_s view a b (* keep the self-join symmetric *)
          end
          else begin
            View.delete_r view a b;
            View.delete_s view a b
          end
        done)
  in
  Printf.printf "%d updates maintained in %s (%.1fus/update)\n" updates
    (Jp_util.Tablefmt.seconds t_updates)
    (1e6 *. t_updates /. float_of_int updates);
  Printf.printf "view now holds %s pairs\n" (Jp_util.Tablefmt.big_int (View.count view));
  Printf.printf
    "for comparison, one recomputation costs about what the initial build did (%s)\n"
    (Jp_util.Tablefmt.seconds t_init)
