#!/bin/sh
# Validate an OpenMetrics exposition written by `joinproj_cli serve|stress
# --metrics-out` (or `profile --metrics-out`): the file must be terminated
# by "# EOF", must record at least one executed query, and the service
# counters must balance --
#
#   submitted       = accepted + rejected (queue full) + shed (controller)
#   accepted        = completed + failed + deadline + expired_in_queue
#                   + cancelled
#   workers_spawned = workers_joined
#
# Usage: sh tools/ci/check_metrics.sh FILE.om
# Exits non-zero with a message on the first violated invariant.
set -eu

file="${1:?usage: check_metrics.sh FILE.om}"

[ -f "$file" ] || { echo "check_metrics: no such file: $file" >&2; exit 1; }

tail -n 1 "$file" | grep -q '^# EOF$' \
  || { echo "check_metrics: $file not terminated by '# EOF'" >&2; exit 1; }

awk '
  # counter samples are bare "name value" lines; collect the ones we need
  /^jp_service_[a-z_]+_total [0-9]+$/ { v[$1] = $2 }
  /^jp_service_ran_seconds_count [0-9]+$/ { ran = $2 }
  END {
    submitted = v["jp_service_submitted_total"]
    accepted  = v["jp_service_accepted_total"]
    rejected  = v["jp_service_rejected_overload_total"]
    shed      = v["jp_service_shed_total"]
    resolved  = v["jp_service_completed_total"] + v["jp_service_failed_total"] \
              + v["jp_service_deadline_exceeded_total"] \
              + v["jp_service_expired_in_queue_total"] \
              + v["jp_service_cancelled_total"]
    spawned   = v["jp_service_workers_spawned_total"]
    joined    = v["jp_service_workers_joined_total"]
    status = 0
    if (submitted == 0) {
      print "check_metrics: no submissions recorded (empty or wrong file?)"
      status = 1
    }
    if (submitted != accepted + rejected + shed) {
      printf "check_metrics: admissions do not balance: submitted %d != accepted %d + rejected %d + shed %d\n", \
        submitted, accepted, rejected, shed
      status = 1
    }
    if (accepted != resolved) {
      printf "check_metrics: resolutions do not balance: accepted %d != completed+failed+deadline+expired+cancelled %d\n", \
        accepted, resolved
      status = 1
    }
    if (spawned != joined) {
      printf "check_metrics: leaked worker domains: spawned %d != joined %d\n", \
        spawned, joined
      status = 1
    }
    if (ran == 0) {
      print "check_metrics: jp_service_ran_seconds_count is 0 (no query ever executed)"
      status = 1
    }
    exit status
  }
' "$file" >&2 || exit 1

echo "check_metrics: $file OK"
