let id = "hot-poll"

(* Cancellation polls, observability bumps, cache traffic and metric
   recordings are priced for chunk/phase granularity; at loop depth >= 2
   they are per-tuple.  Jp_metrics.Local.observe is deliberately absent:
   accumulating into a domain-local histogram inside the loop and
   publishing once at the boundary is the approved pattern. *)
let poll_functions =
  [
    "Jp_util.Cancel.is_cancelled";
    "Jp_util.Cancel.check";
    "Jp_obs.incr";
    "Jp_obs.add";
    "Jp_obs.span";
    "Jp_obs.timed_span";
    "Jp_obs.instant";
    "Jp_cache.find";
    "Jp_cache.put";
    "Jp_cache.offer";
    "Jp_cache.find_or_build";
    "Jp_cache.binding_find";
    "Jp_cache.binding_publish";
    "Jp_metrics.observe";
    "Jp_metrics.set_gauge";
    "Jp_metrics.add_gauge";
    "Jp_metrics.snapshot";
    "Jp_metrics.Local.publish";
  ]

let rule =
  Lint_rule.v ~id
    ~doc:
      "no cancel polls / Jp_obs counter bumps / cache traffic at loop depth \
       >= 2 (chunk granularity, never per tuple)"
    ~applies:Lint_rule.lib_only
    ~on_expr:(fun ctx e ->
      if ctx.Lint_ctx.loop_depth >= 2 then
        match e.Typedtree.exp_desc with
        | Texp_apply (fn, _) -> (
          match Lint_ctx.ident_of_expr ctx fn with
          | Some name when List.mem name poll_functions ->
            Lint_ctx.emit ctx ~rule:id ~loc:e.exp_loc
              ~message:
                (Printf.sprintf "%s inside a doubly-nested loop (per-tuple poll)"
                   name)
              ~hint:
                "poll once per chunk or phase: hoist to the outer loop, or \
                 accumulate locally and publish a bulk delta at the end"
          | _ -> ())
        | _ -> ())
    ()
