(** Reporting: text and JSON rendering plus the warn-only baseline.

    The JSON schema (version 1) is an object with [version],
    [findings] (array of [{rule, file, line, col, severity, message,
    hint, suppressed}] — [suppressed] is [null] or the justification
    string) and [summary] ([{errors, warnings, suppressed, files}]).

    The baseline file is plain text: one ["rule-id file-path"] pair per
    line ([*] as the path matches every file, [#] comments); matching
    findings are demoted to warnings so a new rule can land without
    immediately failing CI. *)

type baseline_entry = { b_rule : string; b_file : string }

val load_baseline : string -> baseline_entry list
(** Raises [Sys_error]/[Failure] on unreadable or malformed files. *)

val apply_baseline : baseline_entry list -> Lint_finding.t list -> Lint_finding.t list
(** Demote matching findings to {!Lint_finding.Warn} (in place; the
    list is returned for convenience). *)

type summary = { errors : int; warnings : int; suppressed : int; files : int }

val summarize : Lint_finding.t list -> summary

val render_text : ?show_suppressed:bool -> Lint_finding.t list -> string
(** Human-readable report (findings plus a one-line summary).
    Suppressed findings are hidden unless [show_suppressed]. *)

val render_json : Lint_finding.t list -> string
(** Machine-readable report, schema above; includes suppressed
    findings. *)
