(** Rule [random]: no [Stdlib.Random] anywhere (lib, bin, bench, test) —
    generators, tests and benches must stay deterministic under explicit
    seeds via [Jp_util.Rng].  [lib/util/rng.ml] itself is exempt. *)

val id : string

val rule : Lint_rule.t
