(** The driver: locate [.cmt] files under the build tree, load each one
    with [Cmt_format], and evaluate the selected rules in two passes.

    Pass 1 walks each file's Typedtree once, running the intra-procedural
    rules and harvesting the signature/callgraph facts
    ({!Lint_callgraph}) from the same traversal.  Pass 2 evaluates the
    interprocedural rules over the merged whole-program call graph, then
    sweeps for stale suppressions ([@jp.lint.allow] entries that
    suppressed nothing).  Findings are emitted sorted by
    (file, line, col, rule) — the pinned deterministic order.

    Names in the tree are {e resolved} (the typechecker already did the
    work), so matching is on canonical paths, not source text.  Dune's
    generated wrapper modules ([.ml-gen]) and the deliberately-violating
    [test/lint_fixtures/] sources are skipped unless a caller forces a
    [kind] override. *)

val default_excludes : string list
(** Source-path substrings skipped by default ([test/lint_fixtures/]). *)

val lint_cmt :
  ?kind:Lint_ctx.kind ->
  ?excludes:string list ->
  selection:Lint_registry.selection ->
  string ->
  Lint_finding.t list
(** Lint one [.cmt] file (full pipeline on a one-file program).
    [?kind] overrides source-path classification (used by the fixture
    tests to lint [test/] sources as [Lib]); when given, the exclude
    list is bypassed.  Unreadable or interface-only cmts yield no
    findings. *)

val lint_cmts :
  ?kind:Lint_ctx.kind ->
  ?excludes:string list ->
  selection:Lint_registry.selection ->
  string list ->
  Lint_finding.t list
(** Lint several [.cmt] files as one program — interprocedural edges
    resolve across all of them. *)

val lint_dirs :
  ?excludes:string list ->
  selection:Lint_registry.selection ->
  string list ->
  Lint_finding.t list
(** Recursively lint every [.cmt] under the given directories as one
    program; findings are sorted by (file, line, col, rule). *)
