(** The driver: locate [.cmt] files under the build tree, load each one
    with [Cmt_format], and run the selected rules over its Typedtree.

    Names in the tree are {e resolved} (the typechecker already did the
    work), so matching is on canonical paths, not source text.  Dune's
    generated wrapper modules ([.ml-gen]) and the deliberately-violating
    [test/lint_fixtures/] sources are skipped unless a caller forces a
    [kind] override. *)

val default_excludes : string list
(** Source-path substrings skipped by default ([test/lint_fixtures/]). *)

val lint_structure :
  source:string ->
  kind:Lint_ctx.kind ->
  has_mli:bool ->
  rules:Lint_rule.t list ->
  Typedtree.structure ->
  Lint_finding.t list
(** Lint one already-loaded structure (emission order). *)

val lint_cmt :
  ?kind:Lint_ctx.kind ->
  ?excludes:string list ->
  rules:Lint_rule.t list ->
  string ->
  Lint_finding.t list
(** Lint one [.cmt] file.  [?kind] overrides source-path classification
    (used by the fixture tests to lint [test/] sources as [Lib]); when
    given, the exclude list is bypassed.  Unreadable or interface-only
    cmts yield no findings. *)

val lint_dirs :
  ?excludes:string list ->
  rules:Lint_rule.t list ->
  string list ->
  Lint_finding.t list
(** Recursively lint every [.cmt] under the given directories; findings
    are sorted by position for stable reports. *)
