(** Rule [hot-poll]: the per-tuple-polling ban.  Calls to
    [Cancel.is_cancelled]/[check], [Jp_obs] counter bumps/spans, or
    [Jp_cache] lookups at syntactic loop-nesting depth >= 2 are flagged;
    the repo prices all of these for once-per-chunk granularity
    (guard/cancel/cache/obs rules in CLAUDE.md). *)

val id : string

val rule : Lint_rule.t
