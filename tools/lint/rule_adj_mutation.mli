(** Rule [adj-mutation]: local dataflow check that no array obtained
    from [Relation.adj_src]/[adj_dst] (which share storage with the
    relation's index) is mutated — via [a.(i) <- _], [Array.fill],
    [Array.blit] destination, or an in-place sort.  Taint is tracked per
    file through let-bindings of direct [adj_*] calls. *)

val id : string

val rule : Lint_rule.t
