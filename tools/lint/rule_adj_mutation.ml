let id = "adj-mutation"

(* Relation.adj_src/adj_dst return arrays shared with the index; mutating
   one corrupts every later reader (and, cached, every later query). *)
let is_adj_name name =
  match String.rindex_opt name '.' with
  | None -> false
  | Some i ->
    String.starts_with ~prefix:"adj_" (String.sub name (i + 1) (String.length name - i - 1))
    && (String.starts_with ~prefix:"Relation." name
       || Lint_util.contains_substring name ".Relation.")

let is_adj_call ctx (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_apply (fn, _) -> (
    match Lint_ctx.ident_of_expr ctx fn with
    | Some name -> is_adj_name name
    | None -> false)
  | _ -> false

(* (normalized mutator, index of the argument it mutates) *)
let mutators =
  [
    ("Stdlib.Array.set", 0);
    ("Stdlib.Array.unsafe_set", 0);
    ("Stdlib.Array.fill", 0);
    ("Stdlib.Array.blit", 2);
    ("Stdlib.Array.sort", 1);
    ("Stdlib.Array.fast_sort", 1);
    ("Stdlib.Array.stable_sort", 1);
    ("Jp_util.Intsort.sort", 0);
    ("Jp_util.Intsort.sort_sub", 0);
  ]

(* Idents let-bound to an adj_* call in the file under scan, keyed by
   Ident.unique_name so shadowing cannot confuse the match.  Reset per
   file by [on_file]; the lint driver is single-threaded. *)
let tainted : (string, unit) Hashtbl.t = Hashtbl.create 64

let collect_taints ctx str =
  Hashtbl.reset tainted;
  let value_binding (it : Tast_iterator.iterator) (vb : Typedtree.value_binding) =
    (match (vb.vb_pat.pat_desc, is_adj_call ctx vb.vb_expr) with
    | Tpat_var (ident, _), true -> Hashtbl.replace tainted (Ident.unique_name ident) ()
    | _ -> ());
    Tast_iterator.default_iterator.value_binding it vb
  in
  let it = { Tast_iterator.default_iterator with value_binding } in
  it.structure it str

let is_tainted ctx (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident ident, _, _) -> Hashtbl.mem tainted (Ident.unique_name ident)
  | _ -> is_adj_call ctx e

let rule =
  Lint_rule.v ~id
    ~doc:
      "never mutate arrays obtained from Relation.adj_* — they are shared \
       with the relation's index (copy first)"
    ~applies:Lint_rule.lib_only
    ~on_file:(fun ctx str -> collect_taints ctx str)
    ~on_expr:(fun ctx e ->
      match e.Typedtree.exp_desc with
      | Texp_apply (fn, args) -> (
        match Lint_ctx.ident_of_expr ctx fn with
        | Some name -> (
          match List.assoc_opt name mutators with
          | Some dest_index -> (
            match List.nth_opt args dest_index with
            | Some (_, Some dest) when is_tainted ctx dest ->
              Lint_ctx.emit ctx ~rule:id ~loc:e.exp_loc
                ~message:
                  (Printf.sprintf
                     "%s mutates an array bound from Relation.adj_* (shared \
                      with the index)"
                     name)
                ~hint:"Array.copy the adjacency array before mutating it"
            | _ -> ())
          | None -> ())
        | None -> ())
      | _ -> ())
    ()
