module Ctx = Lint_ctx
module F = Lint_finding

(* Deliberate rule violations compiled as test fixtures; the repo-wide
   run must not trip over them (the fixture tests lint them explicitly
   with a kind override). *)
let default_excludes = [ "test/lint_fixtures/" ]

let skip_source ~excludes source =
  String.length source < 1
  || Filename.check_suffix source ".ml-gen"
  || Filename.check_suffix source ".mli"
  || List.exists (fun ex -> Lint_util.contains_substring source ex) excludes

(* ------------------------------------------------------------------ *)
(* pass 1: per-file walk — intra findings + signature/callgraph harvest *)

type filed = {
  fd_ctx : Ctx.t;
  fd_fns : Lint_callgraph.fn list;
}

let walk_structure ~source ~kind ~has_mli ~modname
    ~(selection : Lint_registry.selection) str =
  let ctx = Ctx.create ~source ~kind ~has_mli in
  Lint_walk.collect_aliases ctx str;
  let rules =
    List.filter (fun (r : Lint_rule.t) -> r.applies kind) selection.intra
  in
  let h = Lint_callgraph.harvester ~modname ctx in
  Lint_walk.walk ~hooks:h.h_hooks ctx rules str;
  { fd_ctx = ctx; fd_fns = h.h_fns () }

let walk_cmt ?kind ?(excludes = default_excludes) ~selection path =
  match Cmt_format.read_cmt path with
  | exception _ -> None
  | info -> (
    match info.cmt_annots with
    | Implementation str ->
      let source = match info.cmt_sourcefile with Some s -> s | None -> path in
      (* An explicit kind override (fixture tests) bypasses the skip list. *)
      let skip =
        match kind with Some _ -> false | None -> skip_source ~excludes source
      in
      if skip then None
      else
        let kind = match kind with Some k -> k | None -> Ctx.classify source in
        let has_mli = Sys.file_exists (Filename.remove_extension path ^ ".cmti") in
        let modname = Ctx.demangle info.cmt_modname in
        Some (walk_structure ~source ~kind ~has_mli ~modname ~selection str)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* pass 2: whole-program rules; pass 3: stale-suppression sweep        *)

let stale_sweep ~(selection : Lint_registry.selection) fileds =
  if not (List.mem Ctx.stale_suppression_rule selection.meta) then []
  else
    let enabled rule =
      List.exists (fun (r : Lint_rule.t) -> r.id = rule) selection.intra
      || List.exists (fun (g : Lint_global.t) -> g.gid = rule) selection.interproc
    in
    List.concat_map
      (fun fd ->
        List.filter_map
          (fun (a : Ctx.allow) ->
            if a.a_used || not (enabled a.a_rule) then None
            else
              let pos = a.a_loc.Location.loc_start in
              Some
                (F.v ~rule:Ctx.stale_suppression_rule ~file:fd.fd_ctx.Ctx.source
                   ~line:pos.Lexing.pos_lnum
                   ~col:(pos.Lexing.pos_cnum - pos.Lexing.pos_bol)
                   ~message:
                     (Printf.sprintf
                        "[@%s \"%s\"] suppresses nothing on this run"
                        Ctx.allow_attr a.a_rule)
                   ~hint:
                     "the justified violation is gone — delete the attribute \
                      (or fix the rule id) so suppressions stay honest"
                   ~suppressed:None ()))
          fd.fd_ctx.Ctx.allows)
      fileds

let finish ~(selection : Lint_registry.selection) fileds =
  let program =
    Lint_callgraph.build (List.concat_map (fun fd -> fd.fd_fns) fileds)
  in
  let interproc =
    List.concat_map
      (fun (g : Lint_global.t) -> g.grun program)
      selection.interproc
  in
  (* Interprocedural suppressions are marked used above, so the stale
     sweep must run after. *)
  let stale = stale_sweep ~selection fileds in
  let intra =
    List.concat_map (fun fd -> List.rev fd.fd_ctx.Ctx.findings) fileds
  in
  let keep (f : F.t) =
    if f.rule = Ctx.bad_suppression_rule then
      List.mem Ctx.bad_suppression_rule selection.meta
    else true
  in
  List.stable_sort F.compare_by_position
    (List.filter keep (intra @ interproc @ stale))

(* ------------------------------------------------------------------ *)
(* entry points                                                        *)

let lint_cmts ?kind ?(excludes = default_excludes) ~selection paths =
  let fileds =
    List.filter_map (fun p -> walk_cmt ?kind ~excludes ~selection p) paths
  in
  finish ~selection fileds

let lint_cmt ?kind ?(excludes = default_excludes) ~selection path =
  lint_cmts ?kind ~excludes ~selection [ path ]

let rec find_cmts acc dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
    Array.fold_left
      (fun acc entry ->
        let path = Filename.concat dir entry in
        if Sys.is_directory path then find_cmts acc path
        else if Filename.check_suffix path ".cmt" then path :: acc
        else acc)
      acc entries

let lint_dirs ?(excludes = default_excludes) ~selection dirs =
  let cmts = List.sort String.compare (List.fold_left find_cmts [] dirs) in
  lint_cmts ~excludes ~selection cmts
