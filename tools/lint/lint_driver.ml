(* Deliberate rule violations compiled as test fixtures; the repo-wide
   run must not trip over them (the fixture tests lint them explicitly
   with a kind override). *)
let default_excludes = [ "test/lint_fixtures/" ]

let skip_source ~excludes source =
  String.length source < 1
  || Filename.check_suffix source ".ml-gen"
  || Filename.check_suffix source ".mli"
  || List.exists (fun ex -> Lint_util.contains_substring source ex) excludes

let lint_structure ~source ~kind ~has_mli ~rules str =
  let ctx = Lint_ctx.create ~source ~kind ~has_mli in
  Lint_walk.collect_aliases ctx str;
  let rules = List.filter (fun (r : Lint_rule.t) -> r.applies kind) rules in
  Lint_walk.walk ctx rules str;
  List.rev ctx.findings

let lint_cmt ?kind ?(excludes = default_excludes) ~rules path =
  match Cmt_format.read_cmt path with
  | exception _ -> []
  | info -> (
    match info.cmt_annots with
    | Implementation str ->
      let source = match info.cmt_sourcefile with Some s -> s | None -> path in
      (* An explicit kind override (fixture tests) bypasses the skip list. *)
      let skip =
        match kind with Some _ -> false | None -> skip_source ~excludes source
      in
      if skip then []
      else
        let kind = match kind with Some k -> k | None -> Lint_ctx.classify source in
        let has_mli = Sys.file_exists (Filename.remove_extension path ^ ".cmti") in
        lint_structure ~source ~kind ~has_mli ~rules str
    | _ -> [])

let rec find_cmts acc dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
    Array.fold_left
      (fun acc entry ->
        let path = Filename.concat dir entry in
        if Sys.is_directory path then find_cmts acc path
        else if Filename.check_suffix path ".cmt" then path :: acc
        else acc)
      acc entries

let lint_dirs ?(excludes = default_excludes) ~rules dirs =
  let cmts = List.sort String.compare (List.fold_left find_cmts [] dirs) in
  let findings = List.concat_map (fun cmt -> lint_cmt ~excludes ~rules cmt) cmts in
  List.sort Lint_finding.compare_by_position findings
