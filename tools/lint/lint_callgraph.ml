module Ctx = Lint_ctx

(* ------------------------------------------------------------------ *)
(* capabilities                                                        *)

type cap = Guard | Cancel | Cache | Memo | Tile

let all_caps = [ Guard; Cancel; Cache; Memo; Tile ]

let cap_label = function
  | Guard -> "guard"
  | Cancel -> "cancel"
  | Cache -> "cache"
  | Memo -> "memo"
  | Tile -> "tile"

let cap_of_label = function
  | "guard" -> Some Guard
  | "cancel" -> Some Cancel
  | "cache" -> Some Cache
  | "memo" -> Some Memo
  | "tile" -> Some Tile
  | _ -> None

(* ------------------------------------------------------------------ *)
(* program representation                                              *)

type call = {
  c_callee : string;
  c_supplied : cap list;
  c_dropped : cap list;
  c_loc : Location.t;
  c_in_loop : bool;
  c_allow : Ctx.allow option;
}

type fn = {
  f_name : string;
  f_file : string;
  f_kind : Ctx.kind;
  f_loc : Location.t;
  f_caps : cap list;
  f_allow : Ctx.allow option;
  mutable f_calls : call list;
  mutable f_has_loop : bool;
  mutable f_cancel_poll : bool;
  mutable f_guard_poll : bool;
}

type program = {
  p_fns : (string, fn) Hashtbl.t;
  p_order : fn list;
}

let build fns =
  let tbl = Hashtbl.create 512 in
  List.iter (fun f -> Hashtbl.replace tbl f.f_name f) fns;
  { p_fns = tbl; p_order = fns }

(* Resolve a callee name recorded at a call site.  Cross-module calls
   are already canonical (demangled, alias-expanded); bare intra-file
   names are qualified against the caller's module path, trying the
   innermost prefix first — mirroring OCaml's scoping. *)
let resolve p ~(caller : fn) name =
  match Hashtbl.find_opt p.p_fns name with
  | Some f -> Some f
  | None ->
    let rec prefixes acc = function
      | [] -> List.rev acc
      | _ :: tl as segs ->
        prefixes (String.concat "." (List.rev segs) :: acc) tl
    in
    let segs = List.rev (String.split_on_char '.' caller.f_name) in
    let scopes = match segs with [] -> [] | _ :: enclosing -> prefixes [] enclosing in
    List.find_map
      (fun scope -> Hashtbl.find_opt p.p_fns (scope ^ "." ^ name))
      scopes

(* ------------------------------------------------------------------ *)
(* polls and reachability                                              *)

let cancel_polls = [ "Jp_util.Cancel.is_cancelled"; "Jp_util.Cancel.check" ]

let guard_polls =
  [ "Jp_adaptive.Guard.check_budget"; "Jp_adaptive.Guard.check_estimate" ]

let direct_poll cap f =
  match cap with
  | Cancel -> f.f_cancel_poll
  | Guard -> f.f_guard_poll
  | Cache | Memo | Tile -> false

(* Does [f] poll [cap] itself, or reach — through any chain of calls to
   known functions — one that does?  Cycle-safe depth-first search; the
   graph is small enough that a per-query visited set is cheap. *)
let reaches_poll p cap f =
  let seen = Hashtbl.create 32 in
  let rec go f =
    if Hashtbl.mem seen f.f_name then false
    else begin
      Hashtbl.add seen f.f_name ();
      direct_poll cap f
      || List.exists
           (fun c ->
             match resolve p ~caller:f c.c_callee with
             | Some g -> go g
             | None -> false)
           f.f_calls
    end
  in
  go f

(* ------------------------------------------------------------------ *)
(* harvest                                                             *)

(* The compiler fills an omitted-and-eliminated optional argument with a
   ghost [None] construct (location = none).  An explicit [?cap:None] at
   the call site has a real location and counts as supplied — that is a
   deliberate choice, not a silent drop. *)
let is_ghost_none (e : Typedtree.expression) =
  e.exp_loc.Location.loc_ghost
  &&
  match e.exp_desc with
  | Texp_construct (_, { Types.cstr_name = "None"; _ }, []) -> true
  | _ -> false

(* Curried parameter labels of a binding's expression: one
   [Texp_function] per parameter in 5.1; recursion follows single-case
   bodies (the curry spine) and stops at real pattern matches. *)
let rec param_labels acc (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_function { arg_label; cases = [ c ]; _ } ->
    param_labels (arg_label :: acc) c.Typedtree.c_rhs
  | Texp_function { arg_label; _ } -> List.rev (arg_label :: acc)
  | _ -> List.rev acc

let caps_of_labels labels =
  List.filter_map
    (function
      | Asttypes.Optional l -> cap_of_label l
      | Asttypes.Labelled _ | Asttypes.Nolabel -> None)
    labels

let rec pattern_var : type k. k Typedtree.general_pattern -> string option =
 fun p ->
  match p.pat_desc with
  | Tpat_var (id, _) -> Some (Ident.name id)
  | Tpat_alias (p, _, _) -> pattern_var p
  | _ -> None

type harvester = {
  h_hooks : Lint_walk.hooks;
  h_fns : unit -> fn list;
}

let drop_rule = "capability-drop"

let poll_rule = "missing-poll"

let harvester ~modname (ctx : Ctx.t) =
  let fns = ref [] in
  let stack = ref [] in
  let modpath = ref [] in
  let on_binding (vb : Typedtree.value_binding) k =
    match !stack with
    | _ :: _ ->
      (* A structure-level binding inside a [let module] expression:
         its contents belong to the enclosing function node. *)
      k ()
    | [] -> (
      let labels = param_labels [] vb.vb_expr in
      match (pattern_var vb.vb_pat, labels) with
      | Some id, _ :: _ ->
        let name =
          String.concat "." ((modname :: List.rev !modpath) @ [ id ])
        in
        let f =
          {
            f_name = name;
            f_file = ctx.Ctx.source;
            f_kind = ctx.Ctx.kind;
            f_loc = vb.vb_loc;
            f_caps = caps_of_labels labels;
            f_allow = Ctx.find_allow ctx poll_rule;
            f_calls = [];
            f_has_loop = false;
            f_cancel_poll = false;
            f_guard_poll = false;
          }
        in
        stack := f :: !stack;
        Fun.protect ~finally:(fun () -> stack := List.tl !stack) k;
        f.f_calls <- List.rev f.f_calls;
        fns := f :: !fns
      | _ -> k ())
  in
  let on_module name k =
    modpath := name :: !modpath;
    Fun.protect ~finally:(fun () -> modpath := List.tl !modpath) k
  in
  let on_expr (e : Typedtree.expression) =
    match !stack with
    | [] -> ()
    | f :: _ -> (
      if ctx.Ctx.loop_depth >= 1 then f.f_has_loop <- true;
      match e.exp_desc with
      | Texp_ident _ -> (
        match Ctx.ident_of_expr ctx e with
        | Some n when List.mem n cancel_polls -> f.f_cancel_poll <- true
        | Some n when List.mem n guard_polls -> f.f_guard_poll <- true
        | _ -> ())
      | Texp_apply (fn_e, args) -> (
        match Ctx.ident_of_expr ctx fn_e with
        | None -> ()
        | Some callee ->
          let supplied = ref [] and dropped = ref [] in
          List.iter
            (fun (label, arg) ->
              match label with
              | Asttypes.Optional l -> (
                match (cap_of_label l, arg) with
                | Some cap, Some a ->
                  if is_ghost_none a then dropped := cap :: !dropped
                  else supplied := cap :: !supplied
                | _, None | None, _ -> ())
              | Asttypes.Labelled _ | Asttypes.Nolabel -> ())
            args;
          f.f_calls <-
            {
              c_callee = callee;
              c_supplied = List.rev !supplied;
              c_dropped = List.rev !dropped;
              c_loc = e.exp_loc;
              c_in_loop = ctx.Ctx.loop_depth >= 1;
              c_allow = Ctx.find_allow ctx drop_rule;
            }
            :: f.f_calls)
      | _ -> ())
  in
  {
    h_hooks = { Lint_walk.on_binding; on_module; on_expr };
    h_fns = (fun () -> List.rev !fns);
  }
