let id = "missing-mli"

(* Executable entry modules (tools/lint/bin/, bin/) have no interface to
   document — the convention covers library modules. *)
let is_executable source = Lint_util.contains_substring source "/bin/"

let rule =
  Lint_rule.v ~id
    ~doc:"every lib/ (and tools/ library) module ships an .mli with doc comments"
    ~applies:Lint_rule.lib_or_tools
    ~on_file:(fun ctx str ->
      if (not ctx.Lint_ctx.has_mli) && not (is_executable ctx.Lint_ctx.source)
      then
        let loc =
          match str.Typedtree.str_items with
          | item :: _ -> item.str_loc
          | [] -> Location.none
        in
        Lint_ctx.emit ctx ~rule:id ~loc
          ~message:(Printf.sprintf "%s has no interface file" ctx.source)
          ~hint:"add a documented .mli next to the .ml (house style)")
    ()
