let id = "missing-mli"

let rule =
  Lint_rule.v ~id
    ~doc:"every lib/ module ships an .mli with doc comments"
    ~applies:Lint_rule.lib_only
    ~on_file:(fun ctx str ->
      if not ctx.Lint_ctx.has_mli then
        let loc =
          match str.Typedtree.str_items with
          | item :: _ -> item.str_loc
          | [] -> Location.none
        in
        Lint_ctx.emit ctx ~rule:id ~loc
          ~message:(Printf.sprintf "%s has no interface file" ctx.source)
          ~hint:"add a documented .mli next to the .ml (house style)")
    ()
