(** Per-file lint context: source classification, module-alias
    resolution, the active-suppression stack and the findings sink.

    One context is created per [.cmt] file; rules receive it in every
    hook and report through {!emit}, which consults the suppression
    stack maintained by the walker ({!Lint_walk}).  Every
    [[@jp.lint.allow]] occurrence is also accumulated in {!field-allows}
    with a usage bit, so the driver's stale-suppression sweep can flag
    the ones that suppressed nothing. *)

type kind =
  | Lib of string  (** [lib/<sub>/...]; the argument is the subdirectory *)
  | Bin
  | Bench
  | Test
  | Tools
  | Other

val allow_attr : string
(** ["jp.lint.allow"] — expression/item-level suppression attribute. *)

val domain_safe_attr : string
(** ["jp.domain_safe"] — marks a top-level mutable as intentionally
    shared (rule [domain-unsafe-global]). *)

val bad_suppression_rule : string
(** Meta-rule id emitted for malformed or justification-free
    suppression attributes. *)

val stale_suppression_rule : string
(** Meta-rule id emitted for a well-formed [[@jp.lint.allow]] that
    suppressed nothing on the current run. *)

type allow = {
  a_rule : string;
  a_why : string;
  a_loc : Location.t;
  mutable a_used : bool;  (** flipped when the allow suppresses a finding *)
}

type t = {
  source : string;  (** workspace-relative source path *)
  kind : kind;
  has_mli : bool;  (** a [.cmti] sits next to the [.cmt] *)
  mutable aliases : (string * string) list;
      (** file-top module aliases, name → normalized target path *)
  mutable allow_stack : allow list list;
      (** active [[@jp.lint.allow]] scopes, innermost first *)
  mutable allows : allow list;
      (** every well-formed allow seen in the file (stale sweep input) *)
  mutable loop_depth : int;  (** syntactic loop nesting at the cursor *)
  mutable findings : Lint_finding.t list;  (** reverse emission order *)
}

val create : source:string -> kind:kind -> has_mli:bool -> t

val classify : string -> kind
(** Classify a workspace-relative source path by its top directory. *)

val normalize : t -> string -> string
(** Canonicalize a resolved [Path.name]: undo dune's wrapped-module
    mangling ([Jp_util__Cancel] → [Jp_util.Cancel]) and expand file-top
    module aliases ([Cancel.check] → [Jp_util.Cancel.check]).  Rules
    match against these canonical dotted names only. *)

val demangle : string -> string
(** Just the mangling rewrite ([Jp_util__Cancel] → [Jp_util.Cancel]),
    without alias expansion — for names that are not file-relative,
    e.g. a [.cmt]'s own module name. *)

val add_alias : t -> name:string -> target:string -> unit
(** Record [module name = target]; [target] is normalized on the way in
    so alias chains resolve fully. *)

val with_alias : t -> name:string -> target:string -> (unit -> 'a) -> 'a
(** [with_alias t ~name ~target f] runs [f] with [module name = target]
    in scope, restoring the alias list afterwards — the walker uses it
    for [let module M = ... in ...] expressions so names like
    [Guard.check_budget] normalize inside the body. *)

val ident_of_expr : t -> Typedtree.expression -> string option
(** Normalized path of an identifier expression, [None] otherwise. *)

val find_allow : t -> string -> allow option
(** Innermost active allow for [rule], without marking it used — the
    harvest pass captures entries this way and marks them only if the
    interprocedural evaluation actually emits the finding. *)

val active_allow : t -> string -> string option
(** Justification of the innermost active allow for [rule], marking the
    entry used (intra-rule emission path). *)

val emit :
  t -> rule:string -> loc:Location.t -> message:string -> hint:string -> unit
(** Record a finding; it is born suppressed when an enclosing
    [[@jp.lint.allow]] for the same rule is on the stack. *)

val allows_of_attributes : t -> Parsetree.attributes -> allow list
(** Allow entries from [[@jp.lint.allow]] attributes, registered in
    {!field-allows}; malformed ones emit a {!bad_suppression_rule}
    finding instead. *)

val domain_safe_of_attributes : t -> Parsetree.attributes -> string option
(** Justification from a [[@jp.domain_safe]] attribute, if present; a
    missing/empty justification emits {!bad_suppression_rule}. *)

val with_allows : t -> allow list -> (unit -> 'a) -> 'a
(** Run [f] with the given suppressions pushed onto the stack. *)
