(** Per-file lint context: source classification, module-alias
    resolution, the active-suppression stack and the findings sink.

    One context is created per [.cmt] file; rules receive it in every
    hook and report through {!emit}, which consults the suppression
    stack maintained by the walker ({!Lint_walk}). *)

type kind =
  | Lib of string  (** [lib/<sub>/...]; the argument is the subdirectory *)
  | Bin
  | Bench
  | Test
  | Tools
  | Other

val allow_attr : string
(** ["jp.lint.allow"] — expression/item-level suppression attribute. *)

val domain_safe_attr : string
(** ["jp.domain_safe"] — marks a top-level mutable as intentionally
    shared (rule [domain-unsafe-global]). *)

val bad_suppression_rule : string
(** Meta-rule id emitted for malformed or justification-free
    suppression attributes. *)

type t = {
  source : string;  (** workspace-relative source path *)
  kind : kind;
  has_mli : bool;  (** a [.cmti] sits next to the [.cmt] *)
  mutable aliases : (string * string) list;
      (** file-top module aliases, name → normalized target path *)
  mutable allow_stack : (string * string) list list;
      (** active [[@jp.lint.allow]] scopes, innermost first *)
  mutable loop_depth : int;  (** syntactic loop nesting at the cursor *)
  mutable findings : Lint_finding.t list;  (** reverse emission order *)
}

val create : source:string -> kind:kind -> has_mli:bool -> t

val classify : string -> kind
(** Classify a workspace-relative source path by its top directory. *)

val normalize : t -> string -> string
(** Canonicalize a resolved [Path.name]: undo dune's wrapped-module
    mangling ([Jp_util__Cancel] → [Jp_util.Cancel]) and expand file-top
    module aliases ([Cancel.check] → [Jp_util.Cancel.check]).  Rules
    match against these canonical dotted names only. *)

val add_alias : t -> name:string -> target:string -> unit
(** Record [module name = target]; [target] is normalized on the way in
    so alias chains resolve fully. *)

val ident_of_expr : t -> Typedtree.expression -> string option
(** Normalized path of an identifier expression, [None] otherwise. *)

val emit :
  t -> rule:string -> loc:Location.t -> message:string -> hint:string -> unit
(** Record a finding; it is born suppressed when an enclosing
    [[@jp.lint.allow]] for the same rule is on the stack. *)

val allows_of_attributes : t -> Parsetree.attributes -> (string * string) list
(** [(rule, justification)] pairs from [[@jp.lint.allow]] attributes;
    malformed ones emit a {!bad_suppression_rule} finding instead. *)

val domain_safe_of_attributes : t -> Parsetree.attributes -> string option
(** Justification from a [[@jp.domain_safe]] attribute, if present; a
    missing/empty justification emits {!bad_suppression_rule}. *)

val with_allows : t -> (string * string) list -> (unit -> 'a) -> 'a
(** Run [f] with the given suppressions pushed onto the stack. *)
