(** Interprocedural rule [capability-drop]: inside a function that
    accepts a capability hook ([?guard]/[?cancel]/[?cache]/[?memo]/
    [?tile]), flag any call whose callee accepts the same hook but where
    the site silently omits it.  The finding carries the caller → callee
    chain as evidence. *)

val id : string

val rule : Lint_global.t
