module G = Lint_callgraph

let id = "capability-drop"

(* A function that accepts a capability hook must hand it to every
   callee that can carry it: the byte-identical-when-absent contract
   only composes if the option reaches the leaves.  A site is a drop
   when the compiler itself had to fill the callee's optional with a
   ghost [None] — an explicit [?cap:None] is a deliberate choice and
   stays silent, as does a partial application that never reaches the
   capability parameter. *)
let lib_fn (f : G.fn) = match f.G.f_kind with Lint_ctx.Lib _ -> true | _ -> false

let rule =
  Lint_global.v ~id
    ~doc:
      "a function accepting ?guard/?cancel/?cache/?memo/?tile must forward it \
       to callees that accept the same capability (byte-identical-when-absent \
       paths only compose end to end)"
    (fun p ->
      List.concat_map
        (fun (f : G.fn) ->
          if not (lib_fn f) then []
          else
            List.concat_map
              (fun (c : G.call) ->
                match G.resolve p ~caller:f c.G.c_callee with
                | None -> []
                | Some callee ->
                  List.filter_map
                    (fun cap ->
                      if
                        List.mem cap f.G.f_caps
                        && List.mem cap callee.G.f_caps
                        && List.mem cap c.G.c_dropped
                      then
                        Some
                          (Lint_global.finding ~rule:id ~loc:c.G.c_loc
                             ~file:f.G.f_file
                             ~chain:[ f.G.f_name; callee.G.f_name ]
                             ~message:
                               (Printf.sprintf
                                  "%s accepts ?%s but this call to %s (which \
                                   also accepts it) does not forward it"
                                  f.G.f_name (G.cap_label cap) callee.G.f_name)
                             ~hint:
                               (Printf.sprintf
                                  "forward the hook (?%s) so the capability \
                                   reaches the leaves; pass ?%s:None \
                                   explicitly if the drop is deliberate"
                                  (G.cap_label cap) (G.cap_label cap))
                             ~allow:c.G.c_allow ())
                      else None)
                    G.all_caps)
              f.G.f_calls)
        p.G.p_order)
