let id = "no-open"

let hint =
  "bind a file-top alias instead: module M = Jp_x.M (house style: no open)"

let rule =
  Lint_rule.v ~id
    ~doc:"no open in lib/ or tools/ — module aliases at file top only"
    ~applies:Lint_rule.lib_or_tools
    ~on_str_item:(fun ctx item ->
      match item.Typedtree.str_desc with
      | Tstr_open _ ->
        Lint_ctx.emit ctx ~rule:id ~loc:item.str_loc
          ~message:"structure-level open" ~hint
      | _ -> ())
    ~on_expr:(fun ctx e ->
      match e.Typedtree.exp_desc with
      | Texp_open (_, _) ->
        Lint_ctx.emit ctx ~rule:id ~loc:e.exp_loc ~message:"local open" ~hint
      | _ -> ())
    ()
