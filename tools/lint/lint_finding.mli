(** A single lint finding: one rule violation at one source location.

    Findings start as {!Error}; loading a baseline file (see
    {!Lint_report.apply_baseline}) demotes matching findings to {!Warn}
    so new rules can land warn-only.  A finding carrying a suppression
    justification (from [[@jp.lint.allow "rule" "why"]] or
    [[@jp.domain_safe "why"]]) is recorded but never blocks the build —
    suppressions stay visible in reports instead of vanishing.

    Interprocedural findings (capability-drop and friends) additionally
    carry a {!field-chain}: the call path that makes the violation real,
    outermost caller first.  Intra-procedural findings leave it empty. *)

type severity = Error | Warn

type t = {
  rule : string;  (** rule id, e.g. ["poly-compare"] *)
  file : string;  (** workspace-relative source path *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  message : string;
  hint : string;  (** how to fix, shown under the finding *)
  suppressed : string option;  (** justification when suppressed *)
  chain : string list;
      (** call-chain evidence, caller first (empty for intra rules) *)
  mutable severity : severity;
}

val v :
  ?chain:string list ->
  rule:string ->
  file:string ->
  line:int ->
  col:int ->
  message:string ->
  hint:string ->
  suppressed:string option ->
  unit ->
  t
(** Fresh finding at severity {!Error}; [chain] defaults to empty. *)

val is_blocking : t -> bool
(** [true] iff the finding is an unsuppressed error — the ones that make
    [jp_lint] exit non-zero. *)

val compare_by_position : t -> t -> int
(** Order by file, then line, then column, then rule id — the pinned
    report/[--json] emission order ([--baseline] diffs and CI logs stay
    stable across runs). *)
