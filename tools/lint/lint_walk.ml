(* Non-looping modules whose higher-order functions run their argument
   at most once — passing a closure to these is not a loop. *)
let non_looping_modules =
  [ "Option"; "Result"; "Either"; "Lazy"; "Fun"; "Format"; "Printf"; "Atomic" ]

let is_loop_hof name =
  let rec last2 = function
    | [ m; fn ] -> (Some m, fn)
    | [ fn ] -> (None, fn)
    | _ :: tl -> last2 tl
    | [] -> (None, "")
  in
  let md, fn = last2 (String.split_on_char '.' name) in
  let excluded =
    match md with Some m -> List.mem m non_looping_modules | None -> false
  in
  (not excluded)
  && (String.starts_with ~prefix:"iter" fn
     || String.starts_with ~prefix:"fold" fn
     || List.mem fn
          [
            "map";
            "mapi";
            "concat_map";
            "filter";
            "filter_map";
            "exists";
            "for_all";
            "find_map";
            "partition";
          ])

let collect_aliases ctx (str : Typedtree.structure) =
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_module mb -> (
        match (mb.mb_id, mb.mb_expr.mod_desc) with
        | Some id, Tmod_ident (path, _) ->
          Lint_ctx.add_alias ctx ~name:(Ident.name id) ~target:(Path.name path)
        | _ -> ())
      | _ -> ())
    str.str_items

(* ------------------------------------------------------------------ *)
(* harvest hooks                                                       *)

type hooks = {
  on_binding : Typedtree.value_binding -> (unit -> unit) -> unit;
  on_module : string -> (unit -> unit) -> unit;
  on_expr : Typedtree.expression -> unit;
}

let null_hooks =
  {
    on_binding = (fun _ k -> k ());
    on_module = (fun _ k -> k ());
    on_expr = (fun _ -> ());
  }

(* ------------------------------------------------------------------ *)
(* traversal                                                           *)

let walk ?(hooks = null_hooks) ctx (rules : Lint_rule.t list)
    (str : Typedtree.structure) =
  let expr (it : Tast_iterator.iterator) (e : Typedtree.expression) =
    let allows = Lint_ctx.allows_of_attributes ctx e.exp_attributes in
    Lint_ctx.with_allows ctx allows (fun () ->
        hooks.on_expr e;
        List.iter (fun (r : Lint_rule.t) -> r.on_expr ctx e) rules;
        let deeper f =
          ctx.loop_depth <- ctx.loop_depth + 1;
          f ();
          ctx.loop_depth <- ctx.loop_depth - 1
        in
        match e.exp_desc with
        | Texp_while (cond, body) ->
          (* the condition re-runs every iteration, so it is in the loop *)
          deeper (fun () ->
              it.expr it cond;
              it.expr it body)
        | Texp_for (_, _, lo, hi, _, body) ->
          it.expr it lo;
          it.expr it hi;
          deeper (fun () -> it.expr it body)
        | Texp_letmodule
            (Some id, _, _, ({ mod_desc = Tmod_ident (path, _); _ } as _m), _)
          ->
          (* [let module M = Other in body]: scope the alias so idents
             like [M.f] normalize inside the body. *)
          Lint_ctx.with_alias ctx ~name:(Ident.name id)
            ~target:(Path.name path) (fun () ->
              Tast_iterator.default_iterator.expr it e)
        | Texp_apply (fn, args) ->
          let hof =
            match Lint_ctx.ident_of_expr ctx fn with
            | Some name -> is_loop_hof name
            | None -> false
          in
          it.expr it fn;
          List.iter
            (fun (_, arg) ->
              match arg with
              | None -> ()
              | Some (a : Typedtree.expression) -> (
                match a.exp_desc with
                | Texp_function _ when hof -> deeper (fun () -> it.expr it a)
                | _ -> it.expr it a))
            args
        | _ -> Tast_iterator.default_iterator.expr it e)
  in
  let value_binding (it : Tast_iterator.iterator) (vb : Typedtree.value_binding) =
    let allows = Lint_ctx.allows_of_attributes ctx vb.vb_attributes in
    Lint_ctx.with_allows ctx allows (fun () ->
        Tast_iterator.default_iterator.value_binding it vb)
  in
  let structure_item (it : Tast_iterator.iterator) (item : Typedtree.structure_item) =
    List.iter (fun (r : Lint_rule.t) -> r.on_str_item ctx item) rules;
    match item.str_desc with
    | Tstr_value (_, vbs) ->
      (* Structure-level bindings go through [hooks.on_binding] so the
         callgraph harvester can open a function node; the binding's
         attributes are pushed here (and the default iterator called
         directly below) so they are parsed exactly once. *)
      List.iter
        (fun (vb : Typedtree.value_binding) ->
          let allows = Lint_ctx.allows_of_attributes ctx vb.vb_attributes in
          Lint_ctx.with_allows ctx allows (fun () ->
              hooks.on_binding vb (fun () ->
                  Tast_iterator.default_iterator.value_binding it vb)))
        vbs
    | Tstr_module { mb_id = Some id; _ } ->
      hooks.on_module (Ident.name id) (fun () ->
          Tast_iterator.default_iterator.structure_item it item)
    | _ -> Tast_iterator.default_iterator.structure_item it item
  in
  let it = { Tast_iterator.default_iterator with expr; value_binding; structure_item } in
  List.iter (fun (r : Lint_rule.t) -> r.on_file ctx str) rules;
  it.structure it str
