type kind =
  | Lib of string
  | Bin
  | Bench
  | Test
  | Tools
  | Other

let allow_attr = "jp.lint.allow"

let domain_safe_attr = "jp.domain_safe"

let bad_suppression_rule = "bad-suppression"

let stale_suppression_rule = "stale-suppression"

(* One [@jp.lint.allow] occurrence.  [used] flips when the allow actually
   suppresses a finding — intra rules mark it at emit time, the
   interprocedural pass marks the entries it captured during harvest —
   and the driver's stale-suppression sweep flags the ones still false. *)
type allow = {
  a_rule : string;
  a_why : string;
  a_loc : Location.t;
  mutable a_used : bool;
}

type t = {
  source : string;
  kind : kind;
  has_mli : bool;
  mutable aliases : (string * string) list;
  mutable allow_stack : allow list list;
  mutable allows : allow list;
  mutable loop_depth : int;
  mutable findings : Lint_finding.t list;
}

let create ~source ~kind ~has_mli =
  {
    source;
    kind;
    has_mli;
    aliases = [];
    allow_stack = [];
    allows = [];
    loop_depth = 0;
    findings = [];
  }

let classify source =
  let parts = String.split_on_char '/' source in
  match parts with
  | "lib" :: sub :: _ -> Lib sub
  | "bin" :: _ -> Bin
  | "bench" :: _ -> Bench
  | "test" :: _ -> Test
  | "tools" :: _ -> Tools
  | _ -> Other

(* ------------------------------------------------------------------ *)
(* path normalization                                                  *)

(* Dune mangles wrapped-library module names ("Jp_util__Cancel",
   "Jp_obs__.Json"); rewrite the mangling back to dot form so rules can
   match one canonical spelling. *)
let demangle name =
  let b = Buffer.create (String.length name) in
  let n = String.length name in
  let i = ref 0 in
  while !i < n do
    if
      !i + 1 < n
      && name.[!i] = '_'
      && name.[!i + 1] = '_'
      && Buffer.length b > 0
      && name.[!i - 1] <> '.'
      && name.[!i - 1] <> '_'
    then begin
      Buffer.add_char b '.';
      i := !i + 2;
      (* "Jp_obs__.Json": swallow the dot that follows the mangling. *)
      if !i < n && name.[!i] = '.' then incr i
    end
    else begin
      Buffer.add_char b name.[!i];
      incr i
    end
  done;
  Buffer.contents b

let normalize t name =
  let name = demangle name in
  match String.index_opt name '.' with
  | None -> ( match List.assoc_opt name t.aliases with Some full -> full | None -> name)
  | Some i -> (
    let head = String.sub name 0 i in
    let rest = String.sub name i (String.length name - i) in
    match List.assoc_opt head t.aliases with
    | Some full -> full ^ rest
    | None -> name)

let add_alias t ~name ~target = t.aliases <- (name, normalize t target) :: t.aliases

(* Scoped variant for [let module M = ... in ...]: the alias holds while
   [f] (the body traversal) runs, then the list is restored — inner
   bindings shadow outer ones because [normalize] takes the most recent
   entry. *)
let with_alias t ~name ~target f =
  let saved = t.aliases in
  t.aliases <- (name, normalize t target) :: t.aliases;
  Fun.protect ~finally:(fun () -> t.aliases <- saved) f

let ident_of_expr t (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (path, _, _) -> Some (normalize t (Path.name path))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* findings and suppression                                            *)

let find_allow t rule =
  List.find_map
    (fun allows -> List.find_opt (fun a -> a.a_rule = rule) allows)
    t.allow_stack

let active_allow t rule =
  match find_allow t rule with
  | None -> None
  | Some a ->
    a.a_used <- true;
    Some a.a_why

let emit t ~rule ~loc ~message ~hint =
  let pos = loc.Location.loc_start in
  let f =
    Lint_finding.v ~rule ~file:t.source ~line:pos.Lexing.pos_lnum
      ~col:(pos.Lexing.pos_cnum - pos.Lexing.pos_bol)
      ~message ~hint ~suppressed:(active_allow t rule) ()
  in
  t.findings <- f :: t.findings

(* ------------------------------------------------------------------ *)
(* attribute payloads                                                  *)

(* [[@attr "a" "b"]] parses as an application of one string constant to
   another; [[@attr "a", "b"]] as a tuple; [[@attr "a"]] as a lone
   constant.  Accept all three. *)
let strings_of_payload (payload : Parsetree.payload) =
  let const (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_constant (Pconst_string (s, _, _)) -> Some s
    | _ -> None
  in
  match payload with
  | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> (
    match e.pexp_desc with
    | Pexp_constant (Pconst_string (s, _, _)) -> Some [ s ]
    | Pexp_apply (f, args) -> (
      let args = List.map (fun (_, a) -> const a) args in
      match (const f, List.for_all Option.is_some args) with
      | Some s, true -> Some (s :: List.map Option.get args)
      | _ -> None)
    | Pexp_tuple es ->
      let cs = List.map const es in
      if List.for_all Option.is_some cs then Some (List.map Option.get cs) else None
    | _ -> None)
  | _ -> None

let allows_of_attributes t (attrs : Parsetree.attributes) =
  List.filter_map
    (fun (a : Parsetree.attribute) ->
      if a.attr_name.txt <> allow_attr then None
      else
        match strings_of_payload a.attr_payload with
        | Some [ rule; why ] when String.trim why <> "" -> (
          (* Some rules re-scan attributes on their own (e.g. the
             domain-safety structure walk); registering by (rule, loc)
             keeps one shared record per source attribute so a use seen
             on either path marks the same entry and the stale sweep
             never double-counts. *)
          match
            List.find_opt
              (fun x -> x.a_rule = rule && x.a_loc = a.attr_loc)
              t.allows
          with
          | Some existing -> Some existing
          | None ->
            let entry =
              { a_rule = rule; a_why = why; a_loc = a.attr_loc; a_used = false }
            in
            t.allows <- entry :: t.allows;
            Some entry)
        | _ ->
          emit t ~rule:bad_suppression_rule ~loc:a.attr_loc
            ~message:
              (Printf.sprintf
                 "[@%s] needs a rule id and a non-empty justification string"
                 allow_attr)
            ~hint:"write [@jp.lint.allow \"rule-id\" \"why this is safe\"]";
          None)
    attrs

let domain_safe_of_attributes t (attrs : Parsetree.attributes) =
  List.find_map
    (fun (a : Parsetree.attribute) ->
      if a.attr_name.txt <> domain_safe_attr then None
      else
        match strings_of_payload a.attr_payload with
        | Some [ why ] when String.trim why <> "" -> Some why
        | _ ->
          emit t ~rule:bad_suppression_rule ~loc:a.attr_loc
            ~message:
              (Printf.sprintf "[@%s] needs a non-empty justification string"
                 domain_safe_attr)
            ~hint:"write [@@jp.domain_safe \"why this global is domain-safe\"]";
          Some "(missing justification)")
    attrs

let with_allows t allows f =
  match allows with
  | [] -> f ()
  | _ -> (
    t.allow_stack <- allows :: t.allow_stack;
    match f () with
    | x ->
      t.allow_stack <- List.tl t.allow_stack;
      x
    | exception e ->
      t.allow_stack <- List.tl t.allow_stack;
      raise e)
