(** Interprocedural (whole-program) lint rules: evaluated once over the
    harvested {!Lint_callgraph.program} after every file has been
    walked, rather than per-expression during the walk. *)

type t = {
  gid : string;  (** rule id, e.g. ["capability-drop"] *)
  gdoc : string;
  grun : Lint_callgraph.program -> Lint_finding.t list;
}

val v :
  id:string ->
  doc:string ->
  (Lint_callgraph.program -> Lint_finding.t list) ->
  t

val finding :
  ?chain:string list ->
  rule:string ->
  loc:Location.t ->
  file:string ->
  message:string ->
  hint:string ->
  allow:Lint_ctx.allow option ->
  unit ->
  Lint_finding.t
(** Build a finding from a harvested location; a captured suppression
    entry is marked used and becomes the finding's justification. *)
