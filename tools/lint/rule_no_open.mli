(** Rule [no-open]: [lib/] modules use file-top module aliases, never
    [open] — neither structure-level nor [let open]/[M.(...)]. *)

val id : string

val rule : Lint_rule.t
