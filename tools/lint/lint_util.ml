let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b
