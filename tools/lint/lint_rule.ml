type t = {
  id : string;
  doc : string;
  applies : Lint_ctx.kind -> bool;
  on_expr : Lint_ctx.t -> Typedtree.expression -> unit;
  on_str_item : Lint_ctx.t -> Typedtree.structure_item -> unit;
  on_file : Lint_ctx.t -> Typedtree.structure -> unit;
}

let nothing_expr _ _ = ()

let nothing_item _ _ = ()

let nothing_file _ _ = ()

let v ?(applies = fun _ -> true) ?(on_expr = nothing_expr)
    ?(on_str_item = nothing_item) ?(on_file = nothing_file) ~id ~doc () =
  { id; doc; applies; on_expr; on_str_item; on_file }

let lib_only = function Lint_ctx.Lib _ -> true | _ -> false

(* Self-lint scope: house-style rules the linter's own sources must
   satisfy too (the @lint alias walks tools/ as well). *)
let lib_or_tools = function Lint_ctx.Lib _ | Lint_ctx.Tools -> true | _ -> false

let engine_subdirs = [ "core"; "ssj"; "scj"; "bsi"; "wcoj" ]

let engine_only = function
  | Lint_ctx.Lib sub -> List.mem sub engine_subdirs
  | _ -> false
