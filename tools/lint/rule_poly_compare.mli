(** Rule [poly-compare]: no resolved use of [Stdlib.compare] in [lib/].
    Polymorphic comparison on hot paths is what {!Jp_util.Intsort} and
    the monomorphic comparators exist to avoid (ABL-SORT). *)

val id : string

val rule : Lint_rule.t
