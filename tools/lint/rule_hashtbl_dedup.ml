let id = "hashtbl-dedup"

let flagged = [ "add"; "mem"; "replace"; "find"; "find_opt"; "find_all"; "remove" ]

let rule =
  Lint_rule.v ~id
    ~doc:
      "no Hashtbl traffic inside engine hot loops — dense-int dedup belongs \
       in stamp vectors (ABL-DEDUP)"
    ~applies:Lint_rule.engine_only
    ~on_expr:(fun ctx e ->
      if ctx.Lint_ctx.loop_depth >= 1 then
        match e.Typedtree.exp_desc with
        | Texp_apply (fn, _) -> (
          match Lint_ctx.ident_of_expr ctx fn with
          | Some name
            when String.starts_with ~prefix:"Stdlib.Hashtbl." name
                 && List.mem
                      (String.sub name 15 (String.length name - 15))
                      flagged ->
            Lint_ctx.emit ctx ~rule:id ~loc:e.exp_loc
              ~message:(Printf.sprintf "%s inside an engine loop" name)
              ~hint:
                "for dense int keys use a stamp vector (see ABL-DEDUP); if \
                 keys are genuinely sparse/structured, suppress with a \
                 justification"
          | _ -> ())
        | _ -> ())
    ()
