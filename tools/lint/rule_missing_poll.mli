(** Interprocedural rule [missing-poll]: a function that accepts
    [?cancel] (resp. [?guard]) and contains a loop must perform a
    cancellation poll (resp. guard checkpoint) somewhere in its body or
    in a callee reachable through the harvested call graph.  Dual of the
    intra-procedural [hot-poll] rule. *)

val id : string

val rule : Lint_global.t
