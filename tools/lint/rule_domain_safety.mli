(** Rule [domain-unsafe-global]: a lightweight static race detector.

    [Jp_service] runs engines on multiple worker domains, so any
    top-level binding in [lib/] that allocates unsynchronized mutable
    state ([ref], arrays, [Hashtbl], [Buffer], records with mutable
    fields, ...) is flagged unless it is an [Atomic.t], lives behind
    [Domain.DLS], or carries an explicit [[@@jp.domain_safe "why"]]
    vouching attribute (e.g. "all access guarded by events_lock").
    Nested modules are scanned recursively; locals inside functions are
    not flagged. *)

val id : string

val rule : Lint_rule.t
