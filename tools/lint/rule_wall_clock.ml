let id = "wall-clock"

(* Seed-reproducibility is a structural property: LANDLORD cost proxies,
   chaos fault injection and open-loop arrival schedules are all pure
   functions of seeds (design notes 13/14), so a stray clock read in
   library code silently breaks determinism.  All timing flows through
   [Jp_util.Timer]; the service layer owns deadline arithmetic; bench
   code is outside lib/ and out of scope by kind. *)
let banned = [ "Unix.gettimeofday"; "Unix.time"; "Sys.time" ]

let banned_prefixes = [ "Mtime."; "Mtime_clock." ]

let exempt_sources = [ "lib/util/timer.ml" ]

let exempt_prefixes = [ "lib/service/" ]

let exempt source =
  List.mem source exempt_sources
  || List.exists (fun p -> String.starts_with ~prefix:p source) exempt_prefixes

let is_banned name =
  List.mem name banned
  || List.exists (fun p -> String.starts_with ~prefix:p name) banned_prefixes

let rule =
  Lint_rule.v ~id
    ~doc:
      "no raw clock reads (Unix.gettimeofday/Unix.time/Sys.time/Mtime) in \
       lib/ outside Jp_util.Timer and the Jp_service deadline plumbing — \
       seeded runs must stay reproducible"
    ~applies:Lint_rule.lib_only
    ~on_expr:(fun ctx e ->
      if not (exempt ctx.Lint_ctx.source) then
        match Lint_ctx.ident_of_expr ctx e with
        | Some name when is_banned name ->
          Lint_ctx.emit ctx ~rule:id ~loc:e.Typedtree.exp_loc
            ~message:(Printf.sprintf "raw clock read %s in library code" name)
            ~hint:
              "go through Jp_util.Timer.now (tests can see it), or derive a \
               deterministic cost proxy from work counts instead of wall time"
        | _ -> ())
    ()
