let id = "poly-compare"

let rule =
  Lint_rule.v ~id
    ~doc:
      "no polymorphic Stdlib.compare in lib/ or tools/ (radix Intsort / \
       monomorphic comparators are load-bearing, see ABL-SORT)"
    ~applies:Lint_rule.lib_or_tools
    ~on_expr:(fun ctx e ->
      match Lint_ctx.ident_of_expr ctx e with
      | Some "Stdlib.compare" ->
        Lint_ctx.emit ctx ~rule:id ~loc:e.Typedtree.exp_loc
          ~message:"polymorphic Stdlib.compare in library code"
          ~hint:
            "use Jp_util.Intsort for int arrays, or a monomorphic comparator \
             (Int.compare, String.compare, List.compare Int.compare, ...)"
      | _ -> ())
    ()
