let id = "domain-unsafe-global"

(* Applications of these (normalized) functions allocate unsynchronized
   mutable state.  Atomic.make, Mutex/Condition/Semaphore creation and
   Domain.DLS.new_key are deliberately absent: those are the sanctioned
   shared-state primitives. *)
let creators =
  [
    "Stdlib.ref";
    "Stdlib.Array.make";
    "Stdlib.Array.init";
    "Stdlib.Array.create_float";
    "Stdlib.Array.make_matrix";
    "Stdlib.Array.copy";
    "Stdlib.Array.of_list";
    "Stdlib.Array.of_seq";
    "Stdlib.Array.append";
    "Stdlib.Array.concat";
    "Stdlib.Array.sub";
    "Stdlib.Hashtbl.create";
    "Stdlib.Hashtbl.of_seq";
    "Stdlib.Buffer.create";
    "Stdlib.Bytes.create";
    "Stdlib.Bytes.make";
    "Stdlib.Bytes.of_string";
    "Stdlib.Queue.create";
    "Stdlib.Stack.create";
    "Jp_util.Vec.create";
  ]

let rec creates_mutable ctx (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_apply (fn, _) -> (
    match Lint_ctx.ident_of_expr ctx fn with
    | Some name -> List.mem name creators
    | None -> false)
  | Texp_array (_ :: _) -> true
  | Texp_record { fields; _ } ->
    Array.exists
      (fun ((lbl : Types.label_description), _) -> lbl.lbl_mut = Asttypes.Mutable)
      fields
  | Texp_let (_, _, body) -> creates_mutable ctx body
  | Texp_sequence (_, e2) -> creates_mutable ctx e2
  | Texp_ifthenelse (_, e1, Some e2) ->
    creates_mutable ctx e1 || creates_mutable ctx e2
  | Texp_ifthenelse (_, e1, None) -> creates_mutable ctx e1
  | Texp_tuple es -> List.exists (creates_mutable ctx) es
  | _ -> false

let check_binding ctx (vb : Typedtree.value_binding) =
  let allows =
    Lint_ctx.allows_of_attributes ctx vb.vb_attributes
    @ Lint_ctx.allows_of_attributes ctx vb.vb_expr.exp_attributes
  in
  Lint_ctx.with_allows ctx allows (fun () ->
      let vouched =
        match Lint_ctx.domain_safe_of_attributes ctx vb.vb_attributes with
        | Some _ as j -> j
        | None -> Lint_ctx.domain_safe_of_attributes ctx vb.vb_expr.exp_attributes
      in
      match vouched with
      | Some _ -> ()
      | None ->
        if creates_mutable ctx vb.vb_expr then
          Lint_ctx.emit ctx ~rule:id ~loc:vb.vb_loc
            ~message:
              "top-level mutable state in a library shared across service \
               worker domains"
            ~hint:
              "use Atomic.t, a Mutex-guarded value, or Domain.DLS; if access \
               really is safe, annotate [@@jp.domain_safe \"why\"]")

let rec scan_items ctx items = List.iter (scan_item ctx) items

and scan_item ctx (item : Typedtree.structure_item) =
  match item.str_desc with
  | Tstr_value (_, vbs) -> List.iter (check_binding ctx) vbs
  | Tstr_module mb -> scan_module ctx mb.mb_expr
  | Tstr_recmodule mbs ->
    List.iter (fun (mb : Typedtree.module_binding) -> scan_module ctx mb.mb_expr) mbs
  | _ -> ()

and scan_module ctx (me : Typedtree.module_expr) =
  match me.mod_desc with
  | Tmod_structure s -> scan_items ctx s.str_items
  | Tmod_constraint (me, _, _, _) -> scan_module ctx me
  | _ -> ()

let rule =
  Lint_rule.v ~id
    ~doc:
      "top-level mutable state in lib/ must be Atomic, Domain.DLS, \
       mutex-guarded, or carry [@@jp.domain_safe \"why\"] (static race lint \
       for the multi-domain service)"
    ~applies:Lint_rule.lib_only
    ~on_file:(fun ctx str -> scan_items ctx str.str_items)
    ()
