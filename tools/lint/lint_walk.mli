(** Single-pass Typedtree walker shared by every rule.

    The walker maintains the two pieces of state rules read from the
    context while visiting: the syntactic loop depth (for/while bodies,
    while conditions, and closure arguments passed to looping
    higher-order functions such as [Array.iter] or anything whose name
    starts with [iter]/[fold]) and the [[@jp.lint.allow]] suppression
    stack (expression and value-binding attributes).

    The walker also exposes {!hooks} — callbacks fired during the same
    single traversal — so the interprocedural signature/callgraph
    harvest ({!Lint_callgraph}) rides along without a second pass over
    the tree. *)

val is_loop_hof : string -> bool
(** Does a call to this (normalized) function run a closure argument
    once per element?  [Option.iter] and friends are excluded. *)

val collect_aliases : Lint_ctx.t -> Typedtree.structure -> unit
(** Record the file-top [module M = Path] aliases into the context
    before walking, so {!Lint_ctx.normalize} can expand them. *)

type hooks = {
  on_binding : Typedtree.value_binding -> (unit -> unit) -> unit;
      (** Wraps the traversal of each structure-level value binding
          (including those inside nested modules); called with the
          binding's suppression scope already pushed.  Must call the
          continuation exactly once. *)
  on_module : string -> (unit -> unit) -> unit;
      (** Wraps the traversal of a named [module M = ...] item, so the
          harvester can maintain the in-file module path. *)
  on_expr : Typedtree.expression -> unit;
      (** Every expression, with [ctx.loop_depth] and the suppression
          stack current. *)
}

val null_hooks : hooks
(** No-op hooks (the default). *)

val walk :
  ?hooks:hooks -> Lint_ctx.t -> Lint_rule.t list -> Typedtree.structure -> unit
(** Run every rule's [on_file] hook, then traverse the structure once,
    invoking [on_expr]/[on_str_item] hooks at each node. *)
