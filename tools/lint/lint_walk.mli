(** Single-pass Typedtree walker shared by every rule.

    The walker maintains the two pieces of state rules read from the
    context while visiting: the syntactic loop depth (for/while bodies,
    while conditions, and closure arguments passed to looping
    higher-order functions such as [Array.iter] or anything whose name
    starts with [iter]/[fold]) and the [[@jp.lint.allow]] suppression
    stack (expression and value-binding attributes). *)

val is_loop_hof : string -> bool
(** Does a call to this (normalized) function run a closure argument
    once per element?  [Option.iter] and friends are excluded. *)

val collect_aliases : Lint_ctx.t -> Typedtree.structure -> unit
(** Record the file-top [module M = Path] aliases into the context
    before walking, so {!Lint_ctx.normalize} can expand them. *)

val walk : Lint_ctx.t -> Lint_rule.t list -> Typedtree.structure -> unit
(** Run every rule's [on_file] hook, then traverse the structure once,
    invoking [on_expr]/[on_str_item] hooks at each node. *)
