type t = {
  gid : string;
  gdoc : string;
  grun : Lint_callgraph.program -> Lint_finding.t list;
}

let v ~id ~doc run = { gid = id; gdoc = doc; grun = run }

let finding ?chain ~rule ~(loc : Location.t) ~file ~message ~hint ~allow () =
  let pos = loc.Location.loc_start in
  let suppressed =
    match (allow : Lint_ctx.allow option) with
    | None -> None
    | Some a ->
      a.Lint_ctx.a_used <- true;
      Some a.Lint_ctx.a_why
  in
  Lint_finding.v ?chain ~rule ~file ~line:pos.Lexing.pos_lnum
    ~col:(pos.Lexing.pos_cnum - pos.Lexing.pos_bol)
    ~message ~hint ~suppressed ()
