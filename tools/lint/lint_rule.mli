(** The rule interface: a rule contributes hooks that the single-pass
    walker ({!Lint_walk}) invokes at each node, plus a whole-file hook
    for structural checks (top-level scans, missing-interface). *)

type t = {
  id : string;  (** stable rule id used in reports and suppressions *)
  doc : string;  (** one-line description for [--list-rules] *)
  applies : Lint_ctx.kind -> bool;  (** which source trees the rule covers *)
  on_expr : Lint_ctx.t -> Typedtree.expression -> unit;
  on_str_item : Lint_ctx.t -> Typedtree.structure_item -> unit;
  on_file : Lint_ctx.t -> Typedtree.structure -> unit;
}

val v :
  ?applies:(Lint_ctx.kind -> bool) ->
  ?on_expr:(Lint_ctx.t -> Typedtree.expression -> unit) ->
  ?on_str_item:(Lint_ctx.t -> Typedtree.structure_item -> unit) ->
  ?on_file:(Lint_ctx.t -> Typedtree.structure -> unit) ->
  id:string ->
  doc:string ->
  unit ->
  t
(** Rule with no-op defaults; [applies] defaults to every kind. *)

val lib_only : Lint_ctx.kind -> bool
(** [lib/] sources only. *)

val lib_or_tools : Lint_ctx.kind -> bool
(** [lib/] plus [tools/] — the house-style rules the linter's own
    sources must satisfy (self-lint). *)

val engine_only : Lint_ctx.kind -> bool
(** The join-engine libraries: [lib/{core,ssj,scj,bsi,wcoj}]. *)
