(* jp_lint — compiler-libs invariant checker for the joinproj repo.

   Reads the .cmt files dune produced (run via `dune build @lint`, which
   depends on @check so they exist), walks each Typedtree with resolved
   names, and enforces the repo rules CLAUDE.md states in prose.  Intra
   rules run during the walk; the same traversal harvests per-function
   capability signatures and call edges, and the interprocedural rules
   (capability-drop, missing-poll) evaluate once over the merged
   whole-program call graph.  Exit status: 0 clean, 1 unsuppressed
   findings, 2 usage error. *)

module Driver = Jp_lint_core.Lint_driver
module Registry = Jp_lint_core.Lint_registry
module Report = Jp_lint_core.Lint_report

let usage =
  "jp_lint [options] [dirs...]\n\
   Lints every .cmt under dirs (default: lib bin bench test tools,\n\
   resolved relative to the dune build context this runs in).\n\n\
   \  --json               emit the machine-readable report (schema v2)\n\
   \  --baseline FILE      demote findings listed in FILE to warnings\n\
   \  --rules IDS          comma-separated rule ids to run (default all)\n\
   \  --disable IDS        comma-separated rule ids to skip\n\
   \  --exclude SUBSTR     skip sources whose path contains SUBSTR (repeatable)\n\
   \  --show-suppressed    include [@jp.lint.allow]-suppressed findings in text output\n\
   \  --list-rules         print the rule table and exit\n"

let die msg =
  prerr_string msg;
  exit 2

let split_ids s = List.filter (fun x -> x <> "") (String.split_on_char ',' s)

let () =
  let json = ref false in
  let baseline = ref None in
  let only = ref [] in
  let disable = ref [] in
  let excludes = ref Driver.default_excludes in
  let show_suppressed = ref false in
  let dirs = ref [] in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
      json := true;
      parse rest
    | "--baseline" :: file :: rest ->
      baseline := Some file;
      parse rest
    | "--rules" :: ids :: rest ->
      only := !only @ split_ids ids;
      parse rest
    | "--disable" :: ids :: rest ->
      disable := !disable @ split_ids ids;
      parse rest
    | "--exclude" :: sub :: rest ->
      excludes := sub :: !excludes;
      parse rest
    | "--show-suppressed" :: rest ->
      show_suppressed := true;
      parse rest
    | "--list-rules" :: _ ->
      List.iter
        (fun (id, doc) -> Printf.printf "%-22s %s\n" id doc)
        Registry.catalog;
      exit 0
    | ("--help" | "-h") :: _ ->
      print_string usage;
      exit 0
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
      die (Printf.sprintf "jp_lint: unknown option %s\n%s" arg usage)
    | dir :: rest ->
      dirs := !dirs @ [ dir ];
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  (match Registry.validate_ids (!only @ !disable) with
  | [] -> ()
  | bad ->
    die
      (Printf.sprintf "jp_lint: unknown rule id(s): %s (try --list-rules)\n"
         (String.concat ", " bad)));
  let dirs =
    match !dirs with [] -> [ "lib"; "bin"; "bench"; "test"; "tools" ] | ds -> ds
  in
  (match List.filter (fun d -> not (Sys.file_exists d)) dirs with
  | [] -> ()
  | missing ->
    die
      (Printf.sprintf
         "jp_lint: no such directory: %s (run from the dune build context, or \
          via `dune build @lint`)\n"
         (String.concat ", " missing)));
  let selection = Registry.select ~only:!only ~disable:!disable () in
  let findings = Driver.lint_dirs ~excludes:!excludes ~selection dirs in
  let findings =
    match !baseline with
    | None -> findings
    | Some file -> (
      match Report.load_baseline file with
      | entries -> Report.apply_baseline entries findings
      | exception (Sys_error msg | Failure msg) ->
        die (Printf.sprintf "jp_lint: %s\n" msg))
  in
  if !json then print_endline (Report.render_json findings)
  else print_endline (Report.render_text ~show_suppressed:!show_suppressed findings);
  let blocking = List.filter Jp_lint_core.Lint_finding.is_blocking findings in
  exit (if blocking = [] then 0 else 1)
