module F = Lint_finding

(* ------------------------------------------------------------------ *)
(* baseline                                                            *)

type baseline_entry = { b_rule : string; b_file : string }

(* Format: one "rule-id file-path" pair per line; '*' as the file
   matches every file; '#' starts a comment.  See DESIGN.md. *)
let load_baseline path =
  let ic = open_in path in
  let entries = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then
         match String.index_opt line ' ' with
         | Some i ->
           let rule = String.sub line 0 i in
           let file = String.trim (String.sub line i (String.length line - i)) in
           entries := { b_rule = rule; b_file = file } :: !entries
         | None -> failwith (Printf.sprintf "baseline: malformed line %S" line)
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !entries

let apply_baseline entries findings =
  List.iter
    (fun (f : F.t) ->
      if
        List.exists
          (fun b -> b.b_rule = f.rule && (b.b_file = "*" || b.b_file = f.file))
          entries
      then f.severity <- F.Warn)
    findings;
  findings

(* ------------------------------------------------------------------ *)
(* text output                                                         *)

let severity_tag (f : F.t) =
  match (f.suppressed, f.severity) with
  | Some _, _ -> "allowed"
  | None, F.Warn -> "warning"
  | None, F.Error -> "error"

let render_finding (f : F.t) =
  let head =
    Printf.sprintf "%s:%d:%d [%s] %s: %s" f.file f.line f.col f.rule
      (severity_tag f) f.message
  in
  let head =
    match f.chain with
    | [] -> head
    | links -> Printf.sprintf "%s\n    chain: %s" head (String.concat " -> " links)
  in
  match f.suppressed with
  | Some why -> Printf.sprintf "%s\n    allowed: %s" head why
  | None -> Printf.sprintf "%s\n    hint: %s" head f.hint

type summary = {
  errors : int;
  warnings : int;
  suppressed : int;
  files : int;
}

let summarize findings =
  let files = List.sort_uniq String.compare (List.map (fun (f : F.t) -> f.file) findings) in
  {
    errors = List.length (List.filter F.is_blocking findings);
    warnings =
      List.length
        (List.filter (fun (f : F.t) -> f.suppressed = None && f.severity = F.Warn) findings);
    suppressed = List.length (List.filter (fun (f : F.t) -> f.suppressed <> None) findings);
    files = List.length files;
  }

let render_text ?(show_suppressed = false) findings =
  let shown =
    List.filter (fun (f : F.t) -> show_suppressed || f.suppressed = None) findings
  in
  let s = summarize findings in
  let body = List.map render_finding shown in
  let tail =
    Printf.sprintf
      "jp_lint: %d error%s, %d baseline warning%s, %d suppressed, %d file%s \
       with findings"
      s.errors
      (if s.errors = 1 then "" else "s")
      s.warnings
      (if s.warnings = 1 then "" else "s")
      s.suppressed s.files
      (if s.files = 1 then "" else "s")
  in
  String.concat "\n" (body @ [ tail ])

(* ------------------------------------------------------------------ *)
(* json output                                                         *)

let json_of_finding (f : F.t) =
  let e = Lint_util.json_escape in
  (* Schema v2: interprocedural findings carry optional call-chain
     evidence; intra findings omit the key entirely. *)
  let chain =
    match f.chain with
    | [] -> ""
    | links ->
      Printf.sprintf ",\"chain\":[%s]"
        (String.concat ","
           (List.map (fun l -> Printf.sprintf "\"%s\"" (e l)) links))
  in
  Printf.sprintf
    "{\"rule\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"severity\":\"%s\",\"message\":\"%s\",\"hint\":\"%s\",\"suppressed\":%s%s}"
    (e f.rule) (e f.file) f.line f.col
    (match f.severity with F.Error -> "error" | F.Warn -> "warning")
    (e f.message) (e f.hint)
    (match f.suppressed with None -> "null" | Some why -> Printf.sprintf "\"%s\"" (e why))
    chain

let render_json findings =
  let s = summarize findings in
  Printf.sprintf
    "{\n\"version\":2,\n\"findings\":[\n%s\n],\n\"summary\":{\"errors\":%d,\"warnings\":%d,\"suppressed\":%d,\"files\":%d}\n}"
    (String.concat ",\n" (List.map json_of_finding findings))
    s.errors s.warnings s.suppressed s.files
