(** Small string helpers shared by the lint modules. *)

val contains_substring : string -> string -> bool
(** [contains_substring haystack needle]. *)

val json_escape : string -> string
(** Escape a string for embedding inside JSON double quotes. *)
