(** The rule registry: every shipped rule, plus id-based selection for
    [--rules]/[--disable] and the fixture tests. *)

val all : Lint_rule.t list
(** Every rule, in documentation order. *)

val find : string -> Lint_rule.t option

val validate_ids : string list -> string list
(** The ids in the list that name no known rule. *)

val select : ?only:string list -> ?disable:string list -> unit -> Lint_rule.t list
(** [select ~only ~disable ()] — [only = []] means all rules; [disable]
    is subtracted afterwards. *)
