(** The rule registry: every shipped rule — intra-procedural walk rules,
    interprocedural (whole-program) rules, and the meta rules the
    suppression machinery emits — plus id-based selection for
    [--rules]/[--disable] and the fixture tests. *)

val all : Lint_rule.t list
(** Every intra-procedural rule, in documentation order. *)

val global : Lint_global.t list
(** Every interprocedural rule. *)

val meta_ids : string list
(** [bad-suppression] and [stale-suppression]. *)

val catalog : (string * string) list
(** [(id, doc)] for every selectable rule, documentation order. *)

val find : string -> Lint_rule.t option

val validate_ids : string list -> string list
(** The ids in the list that name no known rule. *)

type selection = {
  intra : Lint_rule.t list;
  interproc : Lint_global.t list;
  meta : string list;  (** enabled meta rule ids *)
}

val select : ?only:string list -> ?disable:string list -> unit -> selection
(** [select ~only ~disable ()] — [only = []] means all rules; [disable]
    is subtracted afterwards. *)
