(** Rule [hashtbl-dedup]: no [Hashtbl] operations inside loops in the
    engine libraries ([lib/{core,ssj,scj,bsi,wcoj}]).  Dense-int dedup
    must use stamp vectors (the load-bearing ABL-DEDUP choice); genuinely
    sparse or structured keys need an explicit justification. *)

val id : string

val rule : Lint_rule.t
