(** Rule [missing-mli]: every [lib/] module must have an interface file
    (checked as: the compiled [.cmt] has a sibling [.cmti]).  Dune's
    generated wrapper modules ([.ml-gen]) are excluded by the driver. *)

val id : string

val rule : Lint_rule.t
