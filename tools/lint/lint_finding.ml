type severity = Error | Warn

type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
  hint : string;
  suppressed : string option;
  mutable severity : severity;
}

let v ~rule ~file ~line ~col ~message ~hint ~suppressed =
  { rule; file; line; col; message; hint; suppressed; severity = Error }

let is_blocking f = f.suppressed = None && f.severity = Error

let compare_by_position a b =
  match String.compare a.file b.file with
  | 0 -> ( match Int.compare a.line b.line with 0 -> Int.compare a.col b.col | n -> n)
  | n -> n
