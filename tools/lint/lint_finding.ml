type severity = Error | Warn

type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
  hint : string;
  suppressed : string option;
  chain : string list;
  mutable severity : severity;
}

let v ?(chain = []) ~rule ~file ~line ~col ~message ~hint ~suppressed () =
  { rule; file; line; col; message; hint; suppressed; chain; severity = Error }

let is_blocking f = f.suppressed = None && f.severity = Error

let compare_by_position a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.line b.line with
    | 0 -> (
      match Int.compare a.col b.col with
      | 0 -> String.compare a.rule b.rule
      | n -> n)
    | n -> n)
  | n -> n
