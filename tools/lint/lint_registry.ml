let all =
  [
    Rule_poly_compare.rule;
    Rule_random.rule;
    Rule_domain_safety.rule;
    Rule_hot_poll.rule;
    Rule_adj_mutation.rule;
    Rule_missing_mli.rule;
    Rule_no_open.rule;
    Rule_hashtbl_dedup.rule;
    Rule_wall_clock.rule;
  ]

let global = [ Rule_capability_drop.rule; Rule_missing_poll.rule ]

(* Meta rules are emitted by the suppression machinery itself (malformed
   attributes, allows that suppress nothing) rather than by a walk hook;
   they are still selectable/disablable by id. *)
let meta_ids = [ Lint_ctx.bad_suppression_rule; Lint_ctx.stale_suppression_rule ]

let catalog =
  List.map (fun (r : Lint_rule.t) -> (r.id, r.doc)) all
  @ List.map (fun (g : Lint_global.t) -> (g.gid, g.gdoc)) global
  @ [
      ( Lint_ctx.bad_suppression_rule,
        "a [@jp.lint.allow]/[@@jp.domain_safe] without a rule id and \
         non-empty justification is itself a finding" );
      ( Lint_ctx.stale_suppression_rule,
        "a [@jp.lint.allow \"rule\" \"why\"] that suppresses nothing on the \
         current run is itself a finding" );
    ]

let find id = List.find_opt (fun (r : Lint_rule.t) -> r.id = id) all

let known id = List.exists (fun (kid, _) -> kid = id) catalog

let validate_ids ids = List.filter (fun id -> not (known id)) ids

type selection = {
  intra : Lint_rule.t list;
  interproc : Lint_global.t list;
  meta : string list;
}

let selected ~only ~disable id =
  (match only with [] -> true | _ -> List.mem id only)
  && not (List.mem id disable)

let select ?(only = []) ?(disable = []) () =
  {
    intra =
      List.filter (fun (r : Lint_rule.t) -> selected ~only ~disable r.id) all;
    interproc =
      List.filter
        (fun (g : Lint_global.t) -> selected ~only ~disable g.gid)
        global;
    meta = List.filter (selected ~only ~disable) meta_ids;
  }
