let all =
  [
    Rule_poly_compare.rule;
    Rule_random.rule;
    Rule_domain_safety.rule;
    Rule_hot_poll.rule;
    Rule_adj_mutation.rule;
    Rule_missing_mli.rule;
    Rule_no_open.rule;
    Rule_hashtbl_dedup.rule;
  ]

let find id = List.find_opt (fun (r : Lint_rule.t) -> r.id = id) all

let validate_ids ids = List.filter (fun id -> find id = None) ids

let select ?(only = []) ?(disable = []) () =
  let picked =
    match only with
    | [] -> all
    | _ -> List.filter (fun (r : Lint_rule.t) -> List.mem r.id only) all
  in
  List.filter (fun (r : Lint_rule.t) -> not (List.mem r.id disable)) picked
