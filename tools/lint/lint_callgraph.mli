(** Interprocedural layer of the lint: per-function capability
    signatures and a resolved call graph, harvested from the same single
    typedtree traversal the intra rules ride ({!Lint_walk.hooks}), then
    evaluated by the global rules ({!Lint_global}).

    The harvest records, for every structure-level function binding:
    which capability hooks it accepts ([?guard]/[?cancel]/[?cache]/
    [?memo]/[?tile]), every call it makes (with the capabilities
    supplied, the capabilities the compiler had to fill with a ghost
    [None] because the site omitted them, and whether the site sits
    inside a loop), and whether it polls cancellation or checkpoints a
    guard directly.  Function names are canonical dotted paths
    ([Joinproj.Two_path.project]) so edges resolve across libraries. *)

type cap = Guard | Cancel | Cache | Memo | Tile

val all_caps : cap list
(** In fixed emission order (stable reports). *)

val cap_label : cap -> string
(** The argument label, e.g. [Cancel] → ["cancel"]. *)

val cap_of_label : string -> cap option

type call = {
  c_callee : string;  (** normalized callee path (bare if intra-file) *)
  c_supplied : cap list;  (** capabilities passed at the site *)
  c_dropped : cap list;
      (** capabilities the compiler eliminated with a ghost [None] —
          i.e. omitted although the callee accepts them; an explicit
          [?cap:None] counts as supplied, not dropped *)
  c_loc : Location.t;
  c_in_loop : bool;  (** site sits at loop depth >= 1 *)
  c_allow : Lint_ctx.allow option;
      (** [capability-drop] suppression active at the site, unmarked *)
}

type fn = {
  f_name : string;  (** canonical dotted path *)
  f_file : string;
  f_kind : Lint_ctx.kind;
  f_loc : Location.t;
  f_caps : cap list;  (** capability hooks the function accepts *)
  f_allow : Lint_ctx.allow option;
      (** [missing-poll] suppression on the binding, unmarked *)
  mutable f_calls : call list;  (** source order *)
  mutable f_has_loop : bool;
  mutable f_cancel_poll : bool;  (** calls [Cancel.is_cancelled]/[check] *)
  mutable f_guard_poll : bool;
      (** calls [Guard.check_budget]/[check_estimate] *)
}

type program = {
  p_fns : (string, fn) Hashtbl.t;
  p_order : fn list;  (** harvest order — deterministic iteration *)
}

val build : fn list -> program

val resolve : program -> caller:fn -> string -> fn option
(** Look a callee name up: canonical paths directly, bare intra-file
    names qualified against the caller's module path (innermost scope
    first). *)

val cancel_polls : string list
(** Canonical names that count as a cancellation poll. *)

val guard_polls : string list
(** Canonical names that count as a guard checkpoint. *)

val reaches_poll : program -> cap -> fn -> bool
(** Does the function poll the capability itself, or reach a known
    function that does through any call chain?  Only meaningful for
    {!Cancel} and {!Guard}; always [false] for the others. *)

type harvester = {
  h_hooks : Lint_walk.hooks;
  h_fns : unit -> fn list;  (** harvested nodes, file order *)
}

val harvester : modname:string -> Lint_ctx.t -> harvester
(** Fresh harvester for one file; [modname] is the demangled [.cmt]
    module name used to qualify the file's bindings. *)
