let id = "random"

(* The seeded generator itself is the one legitimate client of the
   stdlib PRNG, should it ever want to delegate. *)
let exempt_sources = [ "lib/util/rng.ml" ]

let rule =
  Lint_rule.v ~id
    ~doc:
      "all randomness flows through Jp_util.Rng with explicit seeds; Stdlib \
       Random is banned everywhere"
    ~on_expr:(fun ctx e ->
      if not (List.mem ctx.Lint_ctx.source exempt_sources) then
        match Lint_ctx.ident_of_expr ctx e with
        | Some name when String.starts_with ~prefix:"Stdlib.Random." name ->
          Lint_ctx.emit ctx ~rule:id ~loc:e.Typedtree.exp_loc
            ~message:(Printf.sprintf "call to %s breaks seeded determinism" name)
            ~hint:"thread a Jp_util.Rng.t created from an explicit seed instead"
        | _ -> ())
    ()
