(** Rule [wall-clock]: raw clock reads ([Unix.gettimeofday], [Unix.time],
    [Sys.time], the [Mtime] family) are banned in [lib/] outside the
    sanctioned timing module ([Jp_util.Timer], i.e. [lib/util/timer.ml])
    and the [Jp_service] deadline plumbing ([lib/service/]) — stray
    clock reads break seed-reproducibility silently. *)

val id : string

val rule : Lint_rule.t
