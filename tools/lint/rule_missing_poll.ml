module G = Lint_callgraph

let id = "missing-poll"

(* The dual of [hot-poll]: that rule caps the cadence from above (never
   per tuple), this one from below — a function that takes [?cancel]
   (resp. [?guard]) and loops must poll [Cancel.is_cancelled]/[check]
   (resp. checkpoint via [Guard.check_budget]/[check_estimate]) in its
   body or in some function it reaches, or the capability is dead
   weight and a stress run can hang in the loop. *)
let lib_fn (f : G.fn) = match f.G.f_kind with Lint_ctx.Lib _ -> true | _ -> false

let check p (f : G.fn) cap ~what ~hint =
  if List.mem cap f.G.f_caps && not (G.reaches_poll p cap f) then
    Some
      (Lint_global.finding ~rule:id ~loc:f.G.f_loc ~file:f.G.f_file
         ~chain:[ f.G.f_name ]
         ~message:
           (Printf.sprintf
              "%s accepts ?%s and contains a loop but neither it nor any \
               reachable callee %s"
              f.G.f_name (G.cap_label cap) what)
         ~hint ~allow:f.G.f_allow ())
  else None

let rule =
  Lint_global.v ~id
    ~doc:
      "a looping function accepting ?cancel (resp. ?guard) must poll \
       Cancel.is_cancelled/check (resp. checkpoint the guard) in its body or \
       a reachable callee — the cadence window closes from both sides"
    (fun p ->
      List.concat_map
        (fun (f : G.fn) ->
          if not (lib_fn f && f.G.f_has_loop) then []
          else
            List.filter_map Fun.id
              [
                check p f G.Cancel
                  ~what:"polls Cancel.is_cancelled/Cancel.check"
                  ~hint:
                    "poll once per chunk/phase inside the loop, or forward \
                     ?cancel to a callee that does";
                check p f G.Guard
                  ~what:"checkpoints the guard (check_budget/check_estimate)"
                  ~hint:
                    "checkpoint once per chunk/phase, or forward ?guard to a \
                     callee that does";
              ])
        p.G.p_order)
