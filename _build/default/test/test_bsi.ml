module Relation = Jp_relation.Relation
module Bsi = Jp_bsi.Bsi

let test_answer_one () =
  let r = Relation.of_sets [| [| 0; 1 |]; [| 2 |] |] in
  let s = Relation.of_sets [| [| 1; 3 |]; [| 4 |] |] in
  Alcotest.(check bool) "intersecting" true (Bsi.answer_one ~r ~s 0 0);
  Alcotest.(check bool) "disjoint" false (Bsi.answer_one ~r ~s 1 0);
  Alcotest.(check bool) "out of range" false (Bsi.answer_one ~r ~s 5 0)

let check_batch ~strategy seed =
  let r = Gen.skewed_relation ~seed ~nx:25 ~ny:20 ~edges:150 () in
  let s = Gen.skewed_relation ~seed:(seed + 1) ~nx:22 ~ny:20 ~edges:140 () in
  let queries =
    Jp_workload.Generate.batch_queries ~seed:(seed + 2) ~count:80 ~nx:25 ~nz:22 ()
  in
  let got = Bsi.answer_batch ~strategy ~r ~s queries in
  Array.iteri
    (fun i (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "query %d" i)
        (Bsi.answer_one ~r ~s a b)
        got.(i))
    queries

let test_batch_mm () = check_batch ~strategy:Bsi.Mm 101

let test_batch_combinatorial () = check_batch ~strategy:Bsi.Combinatorial 102

let prop_batch_matches_single =
  QCheck.Test.make ~name:"batched answers = per-query answers" ~count:20
    QCheck.small_int
    (fun seed ->
      let r = Gen.random_relation ~seed:(seed + 4000) ~nx:12 ~ny:10 ~edges:50 () in
      let s = Gen.random_relation ~seed:(seed + 5000) ~nx:12 ~ny:10 ~edges:50 () in
      let queries =
        Jp_workload.Generate.batch_queries ~seed ~count:30 ~nx:12 ~nz:12 ()
      in
      let batched = Bsi.answer_batch ~r ~s queries in
      Array.for_all
        (fun x -> x)
        (Array.mapi (fun i (a, b) -> batched.(i) = Bsi.answer_one ~r ~s a b) queries))

let test_simulate_accounting () =
  let r = Gen.skewed_relation ~seed:103 ~nx:20 ~ny:15 ~edges:100 () in
  let queries = Jp_workload.Generate.batch_queries ~seed:104 ~count:50 ~nx:20 ~nz:20 () in
  let stats = Bsi.simulate ~r ~s:r ~queries ~rate:1000.0 ~batch_size:10 () in
  Alcotest.(check int) "batches" 5 stats.Bsi.batches;
  Alcotest.(check bool) "delay positive" true (stats.Bsi.avg_delay > 0.0);
  Alcotest.(check bool) "max >= avg" true (stats.Bsi.max_delay >= stats.Bsi.avg_delay);
  (* larger batches must increase the queueing component of the delay
     lower bound: with batch = n the first query waits (n-1)/rate *)
  let big = Bsi.simulate ~r ~s:r ~queries ~rate:1000.0 ~batch_size:50 () in
  Alcotest.(check int) "one batch" 1 big.Bsi.batches;
  Alcotest.(check bool) "waiting dominates" true (big.Bsi.avg_delay >= 0.02)

let test_simulate_guards () =
  let r = Relation.of_sets [| [| 0 |] |] in
  Alcotest.check_raises "batch size" (Invalid_argument "Bsi.simulate: batch_size must be >= 1")
    (fun () ->
      ignore (Bsi.simulate ~r ~s:r ~queries:[| (0, 0) |] ~rate:1.0 ~batch_size:0 ()));
  Alcotest.check_raises "rate" (Invalid_argument "Bsi.simulate: rate must be positive")
    (fun () ->
      ignore (Bsi.simulate ~r ~s:r ~queries:[| (0, 0) |] ~rate:0.0 ~batch_size:1 ()))

let test_proposition2 () =
  let n = 1_000_000 and rate = 1000.0 in
  let opt = Bsi.optimal_batch_size ~n ~rate in
  Alcotest.(check bool) "positive" true (opt >= 1);
  (* the predicted latency curve is minimized near the closed form *)
  let lat c = Bsi.predicted_latency ~n ~rate ~batch_size:c in
  Alcotest.(check bool) "beats half" true (lat opt <= lat (max 1 (opt / 2)));
  Alcotest.(check bool) "beats double" true (lat opt <= lat (2 * opt));
  Alcotest.check_raises "guard" (Invalid_argument "Bsi.optimal_batch_size")
    (fun () -> ignore (Bsi.optimal_batch_size ~n:0 ~rate))

let suite =
  [
    Alcotest.test_case "answer one" `Quick test_answer_one;
    Alcotest.test_case "batch mm" `Quick test_batch_mm;
    Alcotest.test_case "batch combinatorial" `Quick test_batch_combinatorial;
    QCheck_alcotest.to_alcotest prop_batch_matches_single;
    Alcotest.test_case "simulate accounting" `Quick test_simulate_accounting;
    Alcotest.test_case "simulate guards" `Quick test_simulate_guards;
    Alcotest.test_case "proposition 2" `Quick test_proposition2;
  ]
