module Relation = Jp_relation.Relation
module Leapfrog = Jp_wcoj.Leapfrog
module Expand = Jp_wcoj.Expand
module Star = Jp_wcoj.Star
module Tuples = Jp_relation.Tuples

(* regression: k=1 used to loop forever (matches overshot k after emit) *)
let test_leapfrog_k1_terminates () =
  Alcotest.(check (list int)) "k=1 emits all" [ 1; 2; 9 ]
    (Array.to_list (Leapfrog.intersect [| [| 1; 2; 9 |] |]))

let test_leapfrog_basic () =
  let got =
    Leapfrog.intersect [| [| 1; 3; 5; 7 |]; [| 2; 3; 5; 8 |]; [| 0; 3; 5; 9 |] |]
  in
  Alcotest.(check (list int)) "three-way" [ 3; 5 ] (Array.to_list got);
  Alcotest.(check (list int)) "single" [ 1; 2 ]
    (Array.to_list (Leapfrog.intersect [| [| 1; 2 |] |]));
  Alcotest.(check (list int)) "empty input" []
    (Array.to_list (Leapfrog.intersect [| [| 1; 2 |]; [||] |]))

let prop_leapfrog =
  QCheck.Test.make ~name:"leapfrog = fold intersect" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 4) (small_list (int_bound 40)))
    (fun lists ->
      let arrays =
        List.map
          (fun l ->
            let a = Array.of_list (List.sort_uniq compare l) in
            a)
          lists
      in
      let expect =
        match arrays with
        | [] -> [||]
        | first :: rest -> List.fold_left Jp_util.Sorted.intersect first rest
      in
      Leapfrog.intersect (Array.of_list arrays) = expect)

let test_expand_matches_brute () =
  let r = Gen.random_relation ~seed:11 ~nx:30 ~ny:20 ~edges:120 () in
  let s = Gen.random_relation ~seed:12 ~nx:25 ~ny:20 ~edges:100 () in
  let got = Gen.pairs_to_list (Expand.project ~r ~s ()) in
  Alcotest.(check (list (pair int int))) "project = brute force"
    (Gen.brute_two_path ~r ~s) got

let test_expand_parallel_equal () =
  let r = Gen.random_relation ~seed:13 ~nx:60 ~ny:40 ~edges:400 () in
  let s = Gen.random_relation ~seed:14 ~nx:50 ~ny:40 ~edges:350 () in
  let seq = Expand.project ~r ~s () in
  let par = Expand.project ~domains:4 ~r ~s () in
  Alcotest.(check bool) "parallel = sequential" true (Jp_relation.Pairs.equal seq par)

let test_expand_filters () =
  let r = Relation.of_edges [| (0, 0); (0, 1); (1, 1) |] in
  let s = Relation.of_edges [| (5, 0); (6, 1) |] in
  let only_y0 = Expand.project ~keep_y:(fun y -> y = 0) ~r ~s () in
  Alcotest.(check (list (pair int int))) "keep_y" [ (0, 5) ]
    (Gen.pairs_to_list only_y0);
  let xs_only = Expand.project ~xs:[| 1 |] ~r ~s () in
  Alcotest.(check (list (pair int int))) "xs" [ (1, 6) ] (Gen.pairs_to_list xs_only);
  let keep_zy = Expand.project ~keep_zy:(fun z _ -> z = 6) ~r ~s () in
  Alcotest.(check (list (pair int int))) "keep_zy" [ (0, 6); (1, 6) ]
    (Gen.pairs_to_list keep_zy)

let test_expand_counts () =
  let r = Relation.of_edges [| (0, 0); (0, 1); (0, 2) |] in
  let s = Relation.of_edges [| (9, 0); (9, 1); (8, 2) |] in
  let c = Expand.project_counts ~r ~s () in
  Alcotest.(check int) "witnesses (0,9)" 2 (Jp_relation.Counted_pairs.get c 0 9);
  Alcotest.(check int) "witnesses (0,8)" 1 (Jp_relation.Counted_pairs.get c 0 8)

let prop_expand_counts =
  QCheck.Test.make ~name:"expand counts = brute counts" ~count:60
    QCheck.(pair small_int small_int)
    (fun (s1, s2) ->
      let r = Gen.random_relation ~seed:(s1 + 1) ~nx:12 ~ny:10 ~edges:40 () in
      let s = Gen.random_relation ~seed:(s2 + 100) ~nx:11 ~ny:10 ~edges:35 () in
      Gen.counted_to_list (Expand.project_counts ~r ~s ())
      = Gen.brute_two_path_counts ~r ~s)

let test_count_distinct () =
  let r = Gen.random_relation ~seed:15 ~nx:20 ~ny:15 ~edges:80 () in
  let s = Gen.random_relation ~seed:16 ~nx:18 ~ny:15 ~edges:70 () in
  Alcotest.(check int) "count_distinct = |project|"
    (Jp_relation.Pairs.count (Expand.project ~r ~s ()))
    (Expand.count_distinct ~r ~s ())

let brute_star rels =
  (* cross product per y, global dedup *)
  let k = Array.length rels in
  let acc = Hashtbl.create 97 in
  let ny = Array.fold_left (fun m r -> max m (Relation.dst_count r)) 0 rels in
  for y = 0 to ny - 1 do
    let lists =
      Array.map
        (fun r -> if y < Relation.dst_count r then Relation.adj_dst r y else [||])
        rels
    in
    if Array.for_all (fun l -> Array.length l > 0) lists then begin
      let rec fill i tuple =
        if i = k then Hashtbl.replace acc (List.rev tuple) ()
        else Array.iter (fun c -> fill (i + 1) (c :: tuple)) lists.(i)
      in
      fill 0 []
    end
  done;
  List.sort compare (Hashtbl.fold (fun t () l -> t :: l) acc [])

let test_star_project () =
  let rels =
    [|
      Gen.random_relation ~seed:21 ~nx:10 ~ny:8 ~edges:30 ();
      Gen.random_relation ~seed:22 ~nx:9 ~ny:8 ~edges:25 ();
      Gen.random_relation ~seed:23 ~nx:8 ~ny:8 ~edges:20 ();
    |]
  in
  let t = Star.project rels in
  Alcotest.(check (list (list int))) "star = brute" (brute_star rels) (Tuples.to_list t)

let test_star_k2_matches_expand () =
  let r = Gen.random_relation ~seed:24 ~nx:15 ~ny:12 ~edges:60 () in
  let s = Gen.random_relation ~seed:25 ~nx:14 ~ny:12 ~edges:55 () in
  let via_star = Tuples.to_list (Star.project [| r; s |]) in
  let via_expand =
    List.map (fun (x, z) -> [ x; z ]) (Gen.pairs_to_list (Expand.project ~r ~s ()))
  in
  Alcotest.(check (list (list int))) "k=2 agreement" via_expand via_star

let test_star_restrict () =
  let r = Relation.of_edges [| (0, 0); (1, 0) |] in
  let s = Relation.of_edges [| (5, 0); (6, 0) |] in
  let t = Star.project ~restrict:(0, fun c _ -> c = 1) [| r; s |] in
  Alcotest.(check (list (list int))) "restricted" [ [ 1; 5 ]; [ 1; 6 ] ]
    (Tuples.to_list t)

let test_star_join_size () =
  let r = Relation.of_edges [| (0, 0); (1, 0); (2, 1) |] in
  let s = Relation.of_edges [| (0, 0); (1, 1); (2, 1) |] in
  Alcotest.(check int) "join size" 4 (Star.join_size [| r; s |]);
  Alcotest.(check int) "matches relation helper"
    (Relation.join_size_on_dst [ r; s ])
    (Star.join_size [| r; s |])

let suite =
  [
    Alcotest.test_case "leapfrog k=1 regression" `Quick test_leapfrog_k1_terminates;
    Alcotest.test_case "leapfrog basic" `Quick test_leapfrog_basic;
    QCheck_alcotest.to_alcotest prop_leapfrog;
    Alcotest.test_case "expand = brute" `Quick test_expand_matches_brute;
    Alcotest.test_case "expand parallel" `Quick test_expand_parallel_equal;
    Alcotest.test_case "expand filters" `Quick test_expand_filters;
    Alcotest.test_case "expand counts" `Quick test_expand_counts;
    QCheck_alcotest.to_alcotest prop_expand_counts;
    Alcotest.test_case "count_distinct" `Quick test_count_distinct;
    Alcotest.test_case "star project" `Quick test_star_project;
    Alcotest.test_case "star k=2" `Quick test_star_k2_matches_expand;
    Alcotest.test_case "star restrict" `Quick test_star_restrict;
    Alcotest.test_case "star join size" `Quick test_star_join_size;
  ]
