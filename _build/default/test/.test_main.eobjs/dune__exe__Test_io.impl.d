test/test_io.ml: Alcotest Filename Fun Gen Jp_io Jp_relation Option Printf Sys
