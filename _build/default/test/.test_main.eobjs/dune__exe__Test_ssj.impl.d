test/test_ssj.ml: Alcotest Array Gen Joinproj Jp_relation Jp_ssj List Printf QCheck QCheck_alcotest
