test/gen.ml: Array Hashtbl Jp_relation Jp_util List Option
