test/test_scj.ml: Alcotest Array Gen Jp_relation Jp_scj Jp_util List Printf QCheck QCheck_alcotest
