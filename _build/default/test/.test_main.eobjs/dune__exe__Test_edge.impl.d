test/test_edge.ml: Alcotest Array Joinproj Jp_bsi Jp_relation Jp_scj Jp_ssj List Printf
