test/test_matrix.ml: Alcotest Jp_matrix Jp_util List
