test/test_integration.ml: Alcotest Array Joinproj Jp_baselines Jp_bsi Jp_relation Jp_scj Jp_ssj Jp_workload List Printf
