test/test_star.ml: Alcotest Gen Joinproj Jp_relation Jp_wcoj List Printf
