test/test_parallel.ml: Alcotest Array Jp_parallel
