test/test_properties.ml: Array Gen Joinproj Jp_bsi Jp_relation Jp_scj Jp_ssj Jp_util Jp_wcoj Jp_workload List QCheck QCheck_alcotest
