test/test_wcoj.ml: Alcotest Array Gen Hashtbl Jp_relation Jp_util Jp_wcoj List QCheck QCheck_alcotest
