test/test_relation.ml: Alcotest Array Jp_relation List QCheck QCheck_alcotest
