test/test_workload.ml: Alcotest Array Jp_relation Jp_scj Jp_util Jp_workload List
