test/test_query.ml: Alcotest Array Gen Hashtbl Jp_query Jp_relation Jp_util List Printf QCheck QCheck_alcotest String
