test/test_obs.ml: Alcotest Fun Gen Joinproj Jp_obs Jp_relation List String
