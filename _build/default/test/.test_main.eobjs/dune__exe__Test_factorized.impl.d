test/test_factorized.ml: Alcotest Array Gen Hashtbl Joinproj Jp_relation Jp_wcoj Jp_workload List Printf
