test/test_dynamic.ml: Alcotest Array Gen Hashtbl Jp_dynamic Jp_relation List QCheck QCheck_alcotest
