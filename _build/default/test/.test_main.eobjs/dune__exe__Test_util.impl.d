test/test_util.ml: Alcotest Array Float Gen Jp_util List QCheck QCheck_alcotest Seq String
