test/test_core.ml: Alcotest Array Gen Joinproj Jp_matrix Jp_relation List Printf QCheck QCheck_alcotest String
