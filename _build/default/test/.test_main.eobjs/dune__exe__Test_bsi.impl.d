test/test_bsi.ml: Alcotest Array Gen Jp_bsi Jp_relation Jp_workload Printf QCheck QCheck_alcotest
