test/test_baselines.ml: Alcotest Gen Joinproj Jp_baselines Jp_relation List Printf
