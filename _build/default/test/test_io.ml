module Relation = Jp_relation.Relation
module Dictionary = Jp_io.Dictionary
module Relation_io = Jp_io.Relation_io

let with_temp_file f =
  let path = Filename.temp_file "joinproj" ".rel" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_dictionary () =
  let d = Dictionary.create () in
  Alcotest.(check int) "first id" 0 (Dictionary.intern d "alice");
  Alcotest.(check int) "second id" 1 (Dictionary.intern d "bob");
  Alcotest.(check int) "repeat" 0 (Dictionary.intern d "alice");
  Alcotest.(check int) "size" 2 (Dictionary.size d);
  Alcotest.(check string) "name" "bob" (Dictionary.name d 1);
  Alcotest.(check (option int)) "find" (Some 0) (Dictionary.find d "alice");
  Alcotest.(check (option int)) "find missing" None (Dictionary.find d "carol");
  Alcotest.check_raises "bad id" (Invalid_argument "Dictionary.name: unassigned id")
    (fun () -> ignore (Dictionary.name d 5))

let test_dictionary_growth_roundtrip () =
  let d = Dictionary.create () in
  for i = 0 to 99 do
    ignore (Dictionary.intern d (Printf.sprintf "name-%d" i))
  done;
  with_temp_file (fun path ->
      let oc = open_out path in
      Dictionary.save d oc;
      close_out oc;
      let ic = open_in path in
      let d2 = Dictionary.load ic in
      close_in ic;
      Alcotest.(check int) "size" 100 (Dictionary.size d2);
      for i = 0 to 99 do
        if Dictionary.name d2 i <> Printf.sprintf "name-%d" i then
          Alcotest.failf "name %d corrupted" i
      done)

let test_relation_roundtrip () =
  let r = Gen.skewed_relation ~seed:401 ~nx:30 ~ny:25 ~edges:200 () in
  with_temp_file (fun path ->
      Relation_io.save_file r path;
      match Relation_io.load_file path with
      | Ok r2 -> Alcotest.(check bool) "roundtrip" true (Relation.equal r r2)
      | Error e -> Alcotest.fail e)

let test_relation_empty_roundtrip () =
  let r = Relation.of_edges ~src_count:4 ~dst_count:7 [||] in
  with_temp_file (fun path ->
      Relation_io.save_file r path;
      match Relation_io.load_file path with
      | Ok r2 ->
        Alcotest.(check int) "src" 4 (Relation.src_count r2);
        Alcotest.(check int) "dst" 7 (Relation.dst_count r2);
        Alcotest.(check int) "size" 0 (Relation.size r2)
      | Error e -> Alcotest.fail e)

let load_string content =
  let path = Filename.temp_file "joinproj" ".rel" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc content;
      close_out oc;
      Relation_io.load_file path)

let test_load_errors () =
  let expect_error content what =
    match load_string content with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected failure: %s" what
  in
  expect_error "" "empty";
  expect_error "nonsense\n1 1\n" "bad header";
  expect_error "# joinproj relation v1\n" "missing sizes";
  expect_error "# joinproj relation v1\nfoo bar\n" "bad sizes";
  expect_error "# joinproj relation v1\n2 2\n5 0\n" "id out of range";
  expect_error "# joinproj relation v1\n2 2\n1\n" "malformed edge"

let test_import_tsv () =
  let path = Filename.temp_file "joinproj" ".tsv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "# a comment\nalice\tpaper1\nbob\tpaper1\nalice\tpaper2\n\n";
      close_out oc;
      let ic = open_in path in
      let result = Relation_io.import_tsv ic in
      close_in ic;
      match result with
      | Error e -> Alcotest.fail e
      | Ok (r, authors, papers) ->
        Alcotest.(check int) "tuples" 3 (Relation.size r);
        Alcotest.(check int) "authors" 2 (Dictionary.size authors);
        Alcotest.(check int) "papers" 2 (Dictionary.size papers);
        let alice = Option.get (Dictionary.find authors "alice") in
        let paper2 = Option.get (Dictionary.find papers "paper2") in
        Alcotest.(check bool) "edge present" true (Relation.mem r alice paper2))

let test_import_tsv_spaces () =
  let path = Filename.temp_file "joinproj" ".tsv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "x y\nx z\n";
      close_out oc;
      let ic = open_in path in
      let result = Relation_io.import_tsv ic in
      close_in ic;
      match result with
      | Error e -> Alcotest.fail e
      | Ok (r, _, _) -> Alcotest.(check int) "tuples" 2 (Relation.size r))

let suite =
  [
    Alcotest.test_case "dictionary" `Quick test_dictionary;
    Alcotest.test_case "dictionary growth+roundtrip" `Quick test_dictionary_growth_roundtrip;
    Alcotest.test_case "relation roundtrip" `Quick test_relation_roundtrip;
    Alcotest.test_case "empty relation roundtrip" `Quick test_relation_empty_roundtrip;
    Alcotest.test_case "load errors" `Quick test_load_errors;
    Alcotest.test_case "import tsv" `Quick test_import_tsv;
    Alcotest.test_case "import tsv spaces" `Quick test_import_tsv_spaces;
  ]
