(* Shared random-instance generators for the test suites. *)

module Relation = Jp_relation.Relation

let rng seed = Jp_util.Rng.create seed

(* A random bipartite relation with [edges] attempted edges over
   [nx] x [ny]; duplicates are generated on purpose to exercise dedup. *)
let random_relation ?(seed = 42) ~nx ~ny ~edges () =
  let g = rng seed in
  let flat = Array.make (2 * edges) 0 in
  for i = 0 to edges - 1 do
    flat.(2 * i) <- Jp_util.Rng.int g nx;
    flat.((2 * i) + 1) <- Jp_util.Rng.int g ny
  done;
  Relation.of_flat ~src_count:nx ~dst_count:ny flat

(* Skewed (Zipf-ish) relation: degree of y decays as 1/(y+1). *)
let skewed_relation ?(seed = 7) ~nx ~ny ~edges () =
  let g = rng seed in
  let flat = Array.make (2 * edges) 0 in
  for i = 0 to edges - 1 do
    let y =
      let u = Jp_util.Rng.float g 1.0 in
      let v = int_of_float (float_of_int ny ** u) - 1 in
      min (ny - 1) (max 0 v)
    in
    flat.(2 * i) <- Jp_util.Rng.int g nx;
    flat.((2 * i) + 1) <- y
  done;
  Relation.of_flat ~src_count:nx ~dst_count:ny flat

(* Brute-force reference: projected 2-path join as a sorted pair list. *)
let brute_two_path ~r ~s =
  let acc = Hashtbl.create 97 in
  Relation.iter
    (fun x y ->
      for z = 0 to Relation.src_count s - 1 do
        if Relation.mem s z y then Hashtbl.replace acc (x, z) ()
      done)
    r;
  List.sort compare (Hashtbl.fold (fun k () l -> k :: l) acc [])

(* Brute-force counted reference: (x, z) -> #witnesses. *)
let brute_two_path_counts ~r ~s =
  let acc = Hashtbl.create 97 in
  Relation.iter
    (fun x y ->
      Array.iter
        (fun z ->
          let k = (x, z) in
          Hashtbl.replace acc k (1 + Option.value ~default:0 (Hashtbl.find_opt acc k)))
        (Relation.adj_dst s y))
    r;
  List.sort compare (Hashtbl.fold (fun k v l -> (k, v) :: l) acc [])

let pairs_to_list p = Jp_relation.Pairs.to_list p

let counted_to_list c =
  let acc = ref [] in
  Jp_relation.Counted_pairs.iter (fun x z k -> acc := ((x, z), k) :: !acc) c;
  List.sort compare !acc
