module Pool = Jp_parallel.Pool

let test_parallel_for_covers () =
  let n = 1000 in
  let hits = Array.make n 0 in
  Pool.parallel_for ~domains:4 ~lo:0 ~hi:n (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check bool) "each index exactly once" true
    (Array.for_all (fun h -> h = 1) hits)

let test_parallel_for_sequential_degenerate () =
  let n = 100 in
  let hits = Array.make n 0 in
  Pool.parallel_for ~domains:1 ~lo:0 ~hi:n (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check bool) "domains=1 covers" true (Array.for_all (fun h -> h = 1) hits)

let test_parallel_for_empty () =
  let called = ref false in
  Pool.parallel_for ~domains:4 ~lo:5 ~hi:5 (fun _ -> called := true);
  Alcotest.(check bool) "empty range" false !called

let test_ranges_partition () =
  let n = 777 in
  let hits = Array.make n 0 in
  Pool.parallel_for_ranges ~domains:3 ~chunk:50 ~lo:0 ~hi:n (fun lo hi ->
      for i = lo to hi - 1 do
        hits.(i) <- hits.(i) + 1
      done);
  Alcotest.(check bool) "ranges cover exactly" true (Array.for_all (fun h -> h = 1) hits)

let test_map_reduce () =
  let n = 10_000 in
  let total =
    Pool.map_reduce ~domains:4 ~lo:0 ~hi:n ~combine:( + ) ~init:0 (fun i -> i)
  in
  Alcotest.(check int) "sum" (n * (n - 1) / 2) total

let test_map_reduce_sequential () =
  let total =
    Pool.map_reduce ~domains:1 ~lo:1 ~hi:11 ~combine:( + ) ~init:0 (fun i -> i)
  in
  Alcotest.(check int) "sum 1..10" 55 total

exception Boom

let test_exception_propagates () =
  Alcotest.check_raises "worker exception reraised" Boom (fun () ->
      Pool.parallel_for ~domains:3 ~lo:0 ~hi:100 (fun i ->
          if i = 37 then raise Boom))

let test_available_cores () =
  Alcotest.(check bool) "at least one core" true (Pool.available_cores () >= 1)

let suite =
  [
    Alcotest.test_case "parallel_for covers" `Quick test_parallel_for_covers;
    Alcotest.test_case "parallel_for domains=1" `Quick test_parallel_for_sequential_degenerate;
    Alcotest.test_case "parallel_for empty" `Quick test_parallel_for_empty;
    Alcotest.test_case "ranges partition" `Quick test_ranges_partition;
    Alcotest.test_case "map_reduce" `Quick test_map_reduce;
    Alcotest.test_case "map_reduce sequential" `Quick test_map_reduce_sequential;
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "available cores" `Quick test_available_cores;
  ]
