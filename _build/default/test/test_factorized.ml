module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Factorized = Joinproj.Factorized

let forced d1 d2 = Factorized.build ~thresholds:(d1, d2)

let check_semantics ~r ~s thresholds =
  let expect = Jp_wcoj.Expand.project ~r ~s () in
  let f =
    match thresholds with
    | Some (d1, d2) -> forced d1 d2 ~r ~s ()
    | None -> Factorized.build ~r ~s ()
  in
  (* decompression equals the explicit result *)
  Alcotest.(check bool) "to_pairs" true (Pairs.equal expect (Factorized.to_pairs f));
  Alcotest.(check int) "count" (Pairs.count expect) (Factorized.count f);
  (* membership agrees on positives and a grid of negatives *)
  Pairs.iter
    (fun x z ->
      if not (Factorized.mem f x z) then Alcotest.failf "missing (%d,%d)" x z)
    expect;
  for x = 0 to Relation.src_count r - 1 do
    for z = 0 to Relation.src_count s - 1 do
      if Factorized.mem f x z <> Pairs.mem expect x z then
        Alcotest.failf "membership mismatch (%d,%d)" x z
    done
  done;
  (* iter enumerates each pair exactly once *)
  let seen = Hashtbl.create 64 in
  Factorized.iter
    (fun x z ->
      if Hashtbl.mem seen (x, z) then Alcotest.failf "duplicate (%d,%d)" x z;
      Hashtbl.add seen (x, z) ())
    f;
  Alcotest.(check int) "iter count" (Pairs.count expect) (Hashtbl.length seen)

let test_semantics_thresholds () =
  let r = Gen.skewed_relation ~seed:301 ~nx:25 ~ny:20 ~edges:160 () in
  let s = Gen.skewed_relation ~seed:302 ~nx:22 ~ny:20 ~edges:140 () in
  List.iter
    (fun t -> check_semantics ~r ~s (Some t))
    [ (1, 1); (2, 2); (3, 1); (1, 3); (100, 100) ];
  check_semantics ~r ~s None

let test_compression_on_block_structure () =
  (* "research group" structure: every member of group c shares exactly
     the features of c, so every witness of the group has the same
     X x Z block and content dedup collapses the group to ONE biclique *)
  let groups = 5 and members = 40 and features = 40 in
  let sets =
    Array.init (groups * members) (fun i ->
        let c = i / members in
        Array.init features (fun e -> (c * features) + e))
  in
  let r = Jp_relation.Relation.of_sets sets in
  let f = Factorized.build ~thresholds:(2, 2) ~r ~s:r () in
  let explicit = Factorized.count f in
  Alcotest.(check int) "one biclique per group" groups (Factorized.bicliques f);
  Alcotest.(check int) "output is block diagonal" (groups * members * members) explicit;
  Alcotest.(check bool)
    (Printf.sprintf "compressed (%d ints vs %d pairs)" (Factorized.stored_ints f) explicit)
    true
    (Factorized.stored_ints f * 10 < explicit);
  (* graceful degradation: distinct neighbourhoods (no self-loops) cannot
     dedup, but storage stays bounded by ~2N + light *)
  let noisy =
    Jp_workload.Generate.community_graph ~seed:6 ~communities:5 ~members:40
      ~p_intra:0.9 ()
  in
  let fn = Factorized.build ~thresholds:(2, 2) ~r:noisy ~s:noisy () in
  Alcotest.(check bool) "bounded by ~2N + light" true
    (Factorized.stored_ints fn <= (2 * Relation.size noisy) + Factorized.count fn)

let test_of_pairs_roundtrip () =
  let p = Pairs.of_rows [| [| 1; 5 |]; [||]; [| 0 |] |] in
  let f = Factorized.of_pairs p in
  Alcotest.(check bool) "roundtrip" true (Pairs.equal p (Factorized.to_pairs f));
  Alcotest.(check int) "no bicliques" 0 (Factorized.bicliques f);
  Alcotest.(check int) "stored = pairs" 3 (Factorized.stored_ints f);
  Alcotest.(check bool) "mem" true (Factorized.mem f 0 5);
  Alcotest.(check bool) "not mem" false (Factorized.mem f 1 5)

let suite =
  [
    Alcotest.test_case "semantics across thresholds" `Quick test_semantics_thresholds;
    Alcotest.test_case "compression on block structure" `Quick
      test_compression_on_block_structure;
    Alcotest.test_case "of_pairs roundtrip" `Quick test_of_pairs_roundtrip;
  ]
