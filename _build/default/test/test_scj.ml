module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Pretti = Jp_scj.Pretti
module Limit_plus = Jp_scj.Limit_plus
module Piejoin = Jp_scj.Piejoin
module Mm_scj = Jp_scj.Mm_scj

let brute r =
  let n = Relation.src_count r in
  let acc = ref [] in
  for a = n - 1 downto 0 do
    if Relation.deg_src r a > 0 then
      for b = n - 1 downto 0 do
        if
          b <> a
          && Jp_util.Sorted.subset (Relation.adj_src r a) (Relation.adj_src r b)
        then acc := (a, b) :: !acc
      done
  done;
  !acc

(* Containment-rich family: nested prefixes plus random sets. *)
let nested_family seed =
  let g = Jp_util.Rng.create seed in
  let sets =
    Array.init 25 (fun i ->
        if i < 10 then Array.init ((i mod 5) + 1) (fun e -> e)
        else
          Array.of_list
            (List.sort_uniq compare
               (List.init (1 + Jp_util.Rng.int g 6) (fun _ -> Jp_util.Rng.int g 12))))
  in
  Relation.of_sets ~dst_count:12 sets

let algos =
  [
    ("pretti", fun r -> Pretti.join r);
    ("limit+ (limit=2)", fun r -> Limit_plus.join ~limit:2 r);
    ("limit+ (limit=1)", fun r -> Limit_plus.join ~limit:1 r);
    ("limit+ (limit=4)", fun r -> Limit_plus.join ~limit:4 r);
    ("piejoin", fun r -> Piejoin.join r);
    ("mm scj", fun r -> Mm_scj.join r);
  ]

let test_all_algos_nested () =
  List.iter
    (fun seed ->
      let r = nested_family seed in
      let expect = brute r in
      List.iter
        (fun (name, algo) ->
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "%s seed=%d" name seed)
            expect
            (Pairs.to_list (algo r)))
        algos)
    [ 91; 92; 93 ]

let test_all_algos_random () =
  List.iter
    (fun seed ->
      let r = Gen.random_relation ~seed ~nx:20 ~ny:10 ~edges:70 () in
      let expect = brute r in
      List.iter
        (fun (name, algo) ->
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "%s seed=%d" name seed)
            expect
            (Pairs.to_list (algo r)))
        algos)
    [ 94; 95 ]

let test_equal_sets_both_directions () =
  let r = Relation.of_sets [| [| 1; 2 |]; [| 1; 2 |]; [| 1 |] |] in
  let got = Pairs.to_list (Pretti.join r) in
  Alcotest.(check (list (pair int int)))
    "duplicates contained both ways"
    [ (0, 1); (1, 0); (2, 0); (2, 1) ]
    got

let test_piejoin_parallel () =
  let r = nested_family 96 in
  let seq = Piejoin.join r in
  let par = Piejoin.join ~domains:4 r in
  Alcotest.(check bool) "parallel = sequential" true (Pairs.equal seq par)

let test_mm_scj_parallel () =
  let r = nested_family 97 in
  let seq = Mm_scj.join r in
  let par = Mm_scj.join ~domains:4 r in
  Alcotest.(check bool) "parallel = sequential" true (Pairs.equal seq par)

let prop_scj_agreement =
  QCheck.Test.make ~name:"SCJ algorithms agree on random families" ~count:25
    QCheck.small_int
    (fun seed ->
      let r = Gen.random_relation ~seed:(seed + 3000) ~nx:12 ~ny:8 ~edges:45 () in
      let reference = Pairs.to_list (Mm_scj.join r) in
      List.for_all (fun (_, algo) -> Pairs.to_list (algo r) = reference) algos)

let test_limit_guard () =
  let r = nested_family 98 in
  Alcotest.check_raises "limit >= 1"
    (Invalid_argument "Limit_plus.join: limit must be >= 1") (fun () ->
      ignore (Limit_plus.join ~limit:0 r))

let suite =
  [
    Alcotest.test_case "all algos nested" `Quick test_all_algos_nested;
    Alcotest.test_case "all algos random" `Quick test_all_algos_random;
    Alcotest.test_case "equal sets" `Quick test_equal_sets_both_directions;
    Alcotest.test_case "piejoin parallel" `Quick test_piejoin_parallel;
    Alcotest.test_case "mm scj parallel" `Quick test_mm_scj_parallel;
    QCheck_alcotest.to_alcotest prop_scj_agreement;
    Alcotest.test_case "limit guard" `Quick test_limit_guard;
  ]
