module Relation = Jp_relation.Relation
module Zipf = Jp_workload.Zipf
module Generate = Jp_workload.Generate
module Presets = Jp_workload.Presets

let test_zipf_skew () =
  let z = Zipf.create ~exponent:1.0 100 in
  let g = Jp_util.Rng.create 7 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let v = Zipf.sample z g in
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check bool) "rank 0 most frequent" true (counts.(0) > counts.(10));
  Alcotest.(check bool) "head heavier than tail" true (counts.(0) > 4 * counts.(50));
  Alcotest.(check int) "domain" 100 (Zipf.domain z)

let test_zipf_determinism () =
  let z = Zipf.create 50 in
  let a = Jp_util.Rng.create 9 and b = Jp_util.Rng.create 9 in
  let xs = List.init 100 (fun _ -> Zipf.sample z a) in
  let ys = List.init 100 (fun _ -> Zipf.sample z b) in
  Alcotest.(check (list int)) "deterministic" xs ys

let test_set_family_shape () =
  let r =
    Generate.set_family ~seed:5 ~sets:200 ~dom:300 ~avg_size:8 ~min_size:2
      ~max_size:40 ()
  in
  Alcotest.(check int) "src count" 200 (Relation.src_count r);
  Alcotest.(check int) "dst count" 300 (Relation.dst_count r);
  for a = 0 to 199 do
    let d = Relation.deg_src r a in
    if d < 2 || d > 40 then
      Alcotest.failf "set %d has out-of-range size %d" a d
  done

let test_uniform_dense_fill () =
  let r = Generate.uniform_dense ~seed:6 ~sets:100 ~dom:200 ~fill:0.3 () in
  let avg = float_of_int (Relation.size r) /. 100.0 /. 200.0 in
  Alcotest.(check bool) "fill close to 0.3" true (avg > 0.25 && avg < 0.35)

let test_community_graph () =
  let r = Generate.community_graph ~seed:8 ~communities:4 ~members:10 ~p_intra:1.0 () in
  (* complete communities: each node has 9 neighbours *)
  Alcotest.(check int) "degree" 9 (Relation.deg_src r 0);
  (* no cross-community edge: neighbours of node 0 stay in [0, 10) *)
  Array.iter
    (fun b -> if b >= 10 then Alcotest.fail "cross-community edge")
    (Relation.adj_src r 0);
  (* symmetric *)
  Alcotest.(check bool) "symmetric" true
    (Relation.mem r 0 1 = Relation.mem r 1 0)

let test_add_containments () =
  let base = Generate.set_family ~seed:9 ~sets:100 ~dom:150 ~avg_size:10
      ~min_size:2 ~max_size:30 () in
  let enriched = Generate.add_containments ~seed:10 ~fraction:0.5 base in
  Alcotest.(check int) "same set count" (Relation.src_count base)
    (Relation.src_count enriched);
  Alcotest.(check int) "same domain" (Relation.dst_count base)
    (Relation.dst_count enriched);
  (* enrichment must create containment pairs *)
  let scj = Jp_scj.Pretti.join enriched in
  Alcotest.(check bool) "containments exist" true (Jp_relation.Pairs.count scj > 0);
  (* fraction 0 is the identity *)
  let same = Generate.add_containments ~seed:10 ~fraction:0.0 base in
  Alcotest.(check bool) "fraction 0 identity" true (Relation.equal base same);
  Alcotest.check_raises "bad fraction" (Invalid_argument "Generate.add_containments")
    (fun () -> ignore (Generate.add_containments ~fraction:1.5 base))

let test_presets_generate () =
  List.iter
    (fun name ->
      let r = Presets.load ~scale:0.05 name in
      let ch = Presets.characteristics r in
      if ch.Presets.tuples <= 0 then
        Alcotest.failf "%s generated empty" (Presets.to_string name);
      if ch.Presets.sets <= 0 then Alcotest.fail "no sets";
      Alcotest.(check bool) "avg within min/max" true
        (float_of_int ch.Presets.min_size <= ch.Presets.avg_size
        && ch.Presets.avg_size <= float_of_int ch.Presets.max_size))
    Presets.all

let test_presets_roundtrip_names () =
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Presets.to_string n)
        true
        (Presets.of_string (Presets.to_string n) = Some n))
    Presets.all;
  Alcotest.(check bool) "unknown" true (Presets.of_string "nope" = None)

let test_presets_determinism () =
  let a = Presets.load ~scale:0.05 Presets.Dblp in
  let b = Presets.load ~scale:0.05 Presets.Dblp in
  Alcotest.(check bool) "same seed same data" true (Relation.equal a b)

let test_density_classes () =
  (* dense presets should have much higher fill than sparse ones *)
  let fill name =
    let r = Presets.load ~scale:0.05 name in
    let ch = Presets.characteristics r in
    ch.Presets.avg_size /. float_of_int (max 1 ch.Presets.dom)
  in
  Alcotest.(check bool) "image denser than dblp" true
    (fill Presets.Image > 10.0 *. fill Presets.Dblp);
  Alcotest.(check bool) "protein denser than roadnet" true
    (fill Presets.Protein > 10.0 *. fill Presets.Roadnet)

let suite =
  [
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "zipf determinism" `Quick test_zipf_determinism;
    Alcotest.test_case "set family shape" `Quick test_set_family_shape;
    Alcotest.test_case "uniform dense fill" `Quick test_uniform_dense_fill;
    Alcotest.test_case "community graph" `Quick test_community_graph;
    Alcotest.test_case "add containments" `Quick test_add_containments;
    Alcotest.test_case "presets generate" `Quick test_presets_generate;
    Alcotest.test_case "preset names" `Quick test_presets_roundtrip_names;
    Alcotest.test_case "preset determinism" `Quick test_presets_determinism;
    Alcotest.test_case "density classes" `Quick test_density_classes;
  ]
