module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Size_aware = Jp_ssj.Size_aware
module Size_aware_pp = Jp_ssj.Size_aware_pp
module Mm_ssj = Jp_ssj.Mm_ssj
module Ordered = Jp_ssj.Ordered
module Overlap_tree = Jp_ssj.Overlap_tree

(* Brute force: all unordered pairs with overlap >= c. *)
let brute ~c r =
  let n = Relation.src_count r in
  let acc = ref [] in
  for j = n - 1 downto 0 do
    for i = j - 1 downto 0 do
      if Jp_ssj.Common.overlap r i j >= c then acc := (i, j) :: !acc
    done
  done;
  List.sort compare !acc

let family seed =
  (* random set family with duplication-friendly skew *)
  Gen.skewed_relation ~seed ~nx:30 ~ny:25 ~edges:250 ()

let check_algo name algo =
  List.iter
    (fun c ->
      List.iter
        (fun seed ->
          let r = family seed in
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "%s c=%d seed=%d" name c seed)
            (brute ~c r)
            (Pairs.to_list (algo ~c r)))
        [ 81; 82; 83 ])
    [ 1; 2; 3; 5 ]

let test_sizeaware () = check_algo "sizeaware" (fun ~c r -> Size_aware.join ~c r)

let test_sizeaware_forced_boundaries () =
  let r = family 84 in
  List.iter
    (fun boundary ->
      List.iter
        (fun c ->
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "boundary=%d c=%d" boundary c)
            (brute ~c r)
            (Pairs.to_list (Size_aware.join ~boundary ~c r)))
        [ 1; 2; 4 ])
    [ 1; 2; 5; 100 ]

let test_sizeaware_pp_all_ablations () =
  let r = family 85 in
  List.iter
    (fun config ->
      List.iter
        (fun c ->
          let options = Size_aware_pp.ablation config in
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "c=%d" c)
            (brute ~c r)
            (Pairs.to_list (Size_aware_pp.join ~options ~c r)))
        [ 1; 2; 3 ])
    [ `No_op; `Light; `Heavy; `Prefix ]

let test_sizeaware_pp_forced_boundaries () =
  let r = family 86 in
  List.iter
    (fun boundary ->
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "pp boundary=%d" boundary)
        (brute ~c:2 r)
        (Pairs.to_list (Size_aware_pp.join ~boundary ~c:2 r)))
    [ 1; 3; 8; 1000 ]

let test_mm_ssj () = check_algo "mmjoin" (fun ~c r -> Mm_ssj.join ~c r)

let test_overlap_tree_direct () =
  let r = family 87 in
  List.iter
    (fun c ->
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "overlap tree c=%d" c)
        (brute ~c r)
        (Pairs.to_list (Overlap_tree.similar_pairs ~c r)))
    [ 1; 2; 4 ]

let test_overlap_tree_members () =
  let r = Relation.of_sets [| [| 0; 1; 2 |]; [| 0; 1; 3 |]; [| 0; 1; 2; 3 |] |] in
  (* restrict to sets 0 and 1 only *)
  let p = Overlap_tree.similar_pairs ~members:[| 0; 1 |] ~c:2 r in
  Alcotest.(check (list (pair int int))) "members restricted" [ (0, 1) ] (Pairs.to_list p)

let prop_ssj_agreement =
  QCheck.Test.make ~name:"all SSJ algorithms agree" ~count:25
    QCheck.(pair small_int (int_range 1 4))
    (fun (seed, c) ->
      let r = Gen.random_relation ~seed:(seed + 2000) ~nx:15 ~ny:12 ~edges:80 () in
      let reference = Pairs.to_list (Mm_ssj.join ~c r) in
      Pairs.to_list (Size_aware.join ~c r) = reference
      && Pairs.to_list (Size_aware_pp.join ~c r) = reference)

let test_get_size_boundary_sane () =
  let r = family 88 in
  List.iter
    (fun c ->
      let b = Size_aware.get_size_boundary r ~c in
      Alcotest.(check bool) "boundary >= 1" true (b >= 1))
    [ 1; 2; 6 ]

let test_ordered_via_counts () =
  let r = family 89 in
  let c = 2 in
  let ordered = Ordered.via_counts ~c r in
  (* contents match brute force *)
  let got_pairs = List.sort compare (Array.to_list (Array.map (fun (i, j, _) -> (i, j)) ordered)) in
  Alcotest.(check (list (pair int int))) "ordered pairs" (brute ~c r) got_pairs;
  (* overlaps correct and non-increasing *)
  Array.iter
    (fun (i, j, k) ->
      Alcotest.(check int) "overlap value" (Jp_ssj.Common.overlap r i j) k)
    ordered;
  let ok = ref true in
  for i = 1 to Array.length ordered - 1 do
    let _, _, k1 = ordered.(i - 1) and _, _, k2 = ordered.(i) in
    if k1 < k2 then ok := false
  done;
  Alcotest.(check bool) "non-increasing" true !ok

let test_ordered_via_pairs_matches () =
  let r = family 90 in
  let c = 2 in
  let a = Ordered.via_counts ~c r in
  let b = Ordered.via_pairs r ~c (Size_aware.join ~c r) in
  Alcotest.(check bool) "same ordered output" true (a = b)

let test_top_k () =
  let r = family 91 in
  let c = 1 in
  let full = Ordered.via_counts ~c r in
  List.iter
    (fun k ->
      let got = Ordered.top_k ~k ~c r in
      let expect = Array.sub full 0 (min k (Array.length full)) in
      Alcotest.(check bool) (Printf.sprintf "top %d = prefix" k) true (got = expect))
    [ 0; 1; 5; 17; 100; 100_000 ]

let brute_multi ~c rels =
  let k = Array.length rels in
  let acc = ref [] in
  let rec go i tuple =
    if i = k then begin
      let t = Array.of_list (List.rev tuple) in
      if Jp_ssj.Multi.joint_overlap rels t >= c then acc := Array.to_list t :: !acc
    end
    else
      for a = 0 to Relation.src_count rels.(i) - 1 do
        go (i + 1) (a :: tuple)
      done
  in
  go 0 [];
  List.sort compare !acc

let test_multi_way () =
  let rels =
    [|
      Gen.random_relation ~seed:92 ~nx:8 ~ny:10 ~edges:30 ();
      Gen.random_relation ~seed:93 ~nx:7 ~ny:10 ~edges:28 ();
      Gen.random_relation ~seed:94 ~nx:6 ~ny:10 ~edges:25 ();
    |]
  in
  List.iter
    (fun c ->
      Alcotest.(check (list (list int)))
        (Printf.sprintf "multi c=%d" c)
        (brute_multi ~c rels)
        (Jp_relation.Tuples.to_list (Jp_ssj.Multi.join ~c rels)))
    [ 1; 2; 3 ]

let test_multi_matches_pairwise () =
  (* k=2 multi-way = ordinary SSJ over two distinct families *)
  let r = Gen.random_relation ~seed:95 ~nx:10 ~ny:12 ~edges:40 () in
  let s = Gen.random_relation ~seed:96 ~nx:9 ~ny:12 ~edges:35 () in
  let multi = Jp_relation.Tuples.to_list (Jp_ssj.Multi.join ~c:2 [| r; s |]) in
  let counted = Joinproj.Two_path.project_counts ~r ~s () in
  let expect = ref [] in
  Jp_relation.Counted_pairs.iter
    (fun a b k -> if k >= 2 then expect := [ a; b ] :: !expect)
    counted;
  Alcotest.(check (list (list int))) "k=2 agreement" (List.sort compare !expect) multi

let test_c_subsets () =
  let collected = ref [] in
  Jp_ssj.Common.iter_c_subsets [| 1; 2; 3; 4 |] ~c:2 (fun s -> collected := s :: !collected);
  Alcotest.(check int) "C(4,2)" 6 (List.length !collected);
  Alcotest.(check bool) "contains [1;4]" true (List.mem [ 1; 4 ] !collected);
  let none = ref 0 in
  Jp_ssj.Common.iter_c_subsets [| 1; 2 |] ~c:3 (fun _ -> incr none);
  Alcotest.(check int) "c > n yields none" 0 !none

let test_binom_capped () =
  Alcotest.(check int) "C(5,2)" 10 (Jp_ssj.Common.binom_capped 5 2 ~cap:1000);
  Alcotest.(check int) "capped" 50 (Jp_ssj.Common.binom_capped 100 50 ~cap:50);
  Alcotest.(check int) "k>n" 0 (Jp_ssj.Common.binom_capped 3 5 ~cap:10)

let suite =
  [
    Alcotest.test_case "sizeaware = brute" `Quick test_sizeaware;
    Alcotest.test_case "sizeaware boundaries" `Quick test_sizeaware_forced_boundaries;
    Alcotest.test_case "sizeaware++ ablations" `Quick test_sizeaware_pp_all_ablations;
    Alcotest.test_case "sizeaware++ boundaries" `Quick test_sizeaware_pp_forced_boundaries;
    Alcotest.test_case "mm ssj = brute" `Quick test_mm_ssj;
    Alcotest.test_case "overlap tree" `Quick test_overlap_tree_direct;
    Alcotest.test_case "overlap tree members" `Quick test_overlap_tree_members;
    QCheck_alcotest.to_alcotest prop_ssj_agreement;
    Alcotest.test_case "size boundary sane" `Quick test_get_size_boundary_sane;
    Alcotest.test_case "ordered via counts" `Quick test_ordered_via_counts;
    Alcotest.test_case "ordered via pairs" `Quick test_ordered_via_pairs_matches;
    Alcotest.test_case "top-k ordered" `Quick test_top_k;
    Alcotest.test_case "multi-way ssj" `Quick test_multi_way;
    Alcotest.test_case "multi-way k=2" `Quick test_multi_matches_pairwise;
    Alcotest.test_case "c-subsets" `Quick test_c_subsets;
    Alcotest.test_case "binom capped" `Quick test_binom_capped;
  ]
