module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Hash_join = Jp_baselines.Hash_join
module Sortmerge_join = Jp_baselines.Sortmerge_join
module Bitset_engine = Jp_baselines.Bitset_engine
module Fulljoin = Jp_baselines.Fulljoin

let engines =
  [
    ("hash join", fun ~r ~s -> Hash_join.two_path ~r ~s);
    ("sort-merge join", fun ~r ~s -> Sortmerge_join.two_path ~r ~s);
    ("bitset engine", fun ~r ~s -> Bitset_engine.two_path ~r ~s ());
    ("bitset engine (all dense)", fun ~r ~s -> Bitset_engine.two_path ~dense_threshold:0 ~r ~s ());
    ("bitset engine (all sparse)", fun ~r ~s ->
      Bitset_engine.two_path ~dense_threshold:max_int ~r ~s ());
    ("full join", fun ~r ~s -> Fulljoin.two_path ~r ~s ());
  ]

let check_engines ~r ~s label =
  let expect = Gen.brute_two_path ~r ~s in
  List.iter
    (fun (name, engine) ->
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "%s (%s)" name label)
        expect
        (Pairs.to_list (engine ~r ~s)))
    engines

let test_engines_uniform () =
  let r = Gen.random_relation ~seed:111 ~nx:25 ~ny:20 ~edges:130 () in
  let s = Gen.random_relation ~seed:112 ~nx:23 ~ny:20 ~edges:120 () in
  check_engines ~r ~s "uniform"

let test_engines_skewed () =
  let r = Gen.skewed_relation ~seed:113 ~nx:30 ~ny:25 ~edges:220 () in
  let s = Gen.skewed_relation ~seed:114 ~nx:28 ~ny:25 ~edges:200 () in
  check_engines ~r ~s "skewed"

let test_engines_empty_sides () =
  let r = Relation.of_edges ~src_count:5 ~dst_count:5 [||] in
  let s = Gen.random_relation ~seed:115 ~nx:5 ~ny:5 ~edges:10 () in
  check_engines ~r ~s "empty r";
  check_engines ~r:s ~s:r "empty s"

let test_fulljoin_star_matches () =
  let rels =
    [|
      Gen.random_relation ~seed:116 ~nx:8 ~ny:8 ~edges:25 ();
      Gen.random_relation ~seed:117 ~nx:8 ~ny:8 ~edges:25 ();
      Gen.random_relation ~seed:118 ~nx:8 ~ny:8 ~edges:25 ();
    |]
  in
  Alcotest.(check (list (list int)))
    "baseline star = mmjoin star"
    (Jp_relation.Tuples.to_list (Fulljoin.star rels))
    (Jp_relation.Tuples.to_list (Joinproj.Star.project ~thresholds:(2, 2) rels))

let suite =
  [
    Alcotest.test_case "engines uniform" `Quick test_engines_uniform;
    Alcotest.test_case "engines skewed" `Quick test_engines_skewed;
    Alcotest.test_case "engines empty" `Quick test_engines_empty_sides;
    Alcotest.test_case "baseline star" `Quick test_fulljoin_star_matches;
  ]
