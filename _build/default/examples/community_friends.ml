(* Example 1 of the paper: a social graph with a few dense communities.
   The full join R(x,y) |><| R(z,y) has Θ(N^{3/2}) tuples but the
   projection ("user pairs with a common friend") is only Θ(N) — the
   regime where output-sensitive evaluation beats join-then-dedup.

   Run: dune exec examples/community_friends.exe *)

module Relation = Jp_relation.Relation
module Generate = Jp_workload.Generate

let () =
  let r = Generate.community_graph ~seed:11 ~communities:12 ~members:90 ~p_intra:0.6 () in
  let n = Relation.size r in
  let join_size = Relation.join_size_on_dst [ r; r ] in
  Printf.printf "N = %d edges; full join |OUT_join| = %s tuples\n" n
    (Jp_util.Tablefmt.big_int join_size);
  let (pairs, plan), t_mm =
    Jp_util.Timer.time (fun () -> Joinproj.Two_path.project_with_plan_info ~r ~s:r ())
  in
  Printf.printf "|OUT| after projection = %s pairs (%.1fx smaller)\n"
    (Jp_util.Tablefmt.big_int (Jp_relation.Pairs.count pairs))
    (float_of_int join_size /. float_of_int (max 1 (Jp_relation.Pairs.count pairs)));
  Printf.printf "MMJoin: %s (%s)\n" (Jp_util.Tablefmt.seconds t_mm)
    (Joinproj.Optimizer.explain plan);
  let sm, t_sm =
    Jp_util.Timer.time (fun () -> Jp_baselines.Sortmerge_join.two_path ~r ~s:r)
  in
  assert (Jp_relation.Pairs.equal pairs sm);
  Printf.printf "sort-merge + dedup baseline: %s\n" (Jp_util.Tablefmt.seconds t_sm)
