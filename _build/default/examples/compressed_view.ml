(* Compressed join views (Section 1's graph-compression application):
   serve the 2-path view V(x,z) = R(x,y), R(z,y) from the light/heavy
   factorization instead of materializing it.

   Run: dune exec examples/compressed_view.exe *)

module Relation = Jp_relation.Relation
module Factorized = Joinproj.Factorized

let () =
  (* research-group-structured bibliography: members of a group share the
     group's papers, so the co-author view is block-diagonal *)
  let groups = 30 and members = 50 and papers_per_group = 60 in
  let sets =
    Array.init (groups * members) (fun i ->
        let g = i / members in
        Array.init papers_per_group (fun p -> (g * papers_per_group) + p))
  in
  let r = Relation.of_sets sets in
  Printf.printf "author-paper table: %s tuples\n" (Jp_util.Tablefmt.big_int (Relation.size r));
  (* force the partitioned build: Algorithm 3 optimizes running time, but
     here the goal is the compressed representation, so pick thresholds
     below the (uniform) degrees to push everything into the heavy part *)
  let view, t =
    Jp_util.Timer.time (fun () -> Factorized.build ~thresholds:(5, 5) ~r ~s:r ())
  in
  let pairs = Factorized.count view in
  Printf.printf "co-author view: %s pairs\n" (Jp_util.Tablefmt.big_int pairs);
  Printf.printf "factorized size: %s ints in %d bicliques (built in %s)\n"
    (Jp_util.Tablefmt.big_int (Factorized.stored_ints view))
    (Factorized.bicliques view)
    (Jp_util.Tablefmt.seconds t);
  Printf.printf "compression ratio vs materialized pairs: %.1fx\n"
    (float_of_int pairs /. float_of_int (max 1 (Factorized.stored_ints view)));
  (* membership probes answer straight from the compressed form *)
  assert (Factorized.mem view 0 1);
  assert (not (Factorized.mem view 0 members));
  (* and decompression reproduces the explicit result exactly *)
  let explicit = Jp_baselines.Fulljoin.two_path ~r ~s:r () in
  assert (Jp_relation.Pairs.equal explicit (Factorized.to_pairs view));
  print_endline "membership + decompression verified against the explicit join"
