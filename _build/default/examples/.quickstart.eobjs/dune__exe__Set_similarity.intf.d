examples/set_similarity.mli:
