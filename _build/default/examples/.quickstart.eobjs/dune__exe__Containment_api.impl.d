examples/containment_api.ml: Jp_bsi Jp_relation Jp_scj Jp_util Jp_workload List Printf
