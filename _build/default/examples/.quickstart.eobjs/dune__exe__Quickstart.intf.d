examples/quickstart.mli:
