examples/community_friends.ml: Joinproj Jp_baselines Jp_relation Jp_util Jp_workload Printf
