examples/containment_api.mli:
