examples/compressed_view.mli:
