examples/coauthor_graph.ml: Array Joinproj Jp_baselines Jp_relation Jp_ssj Jp_util Jp_workload Printf
