examples/dynamic_view.mli:
