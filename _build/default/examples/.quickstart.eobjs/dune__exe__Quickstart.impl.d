examples/quickstart.ml: Joinproj Jp_relation Jp_util Jp_workload Printf
