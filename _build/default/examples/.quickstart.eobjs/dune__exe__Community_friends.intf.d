examples/community_friends.mli:
