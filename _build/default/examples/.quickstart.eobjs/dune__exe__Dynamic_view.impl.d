examples/dynamic_view.ml: Jp_dynamic Jp_relation Jp_util Jp_workload Printf
