examples/compressed_view.ml: Array Joinproj Jp_baselines Jp_relation Jp_util Printf
