examples/coauthor_graph.mli:
