examples/set_similarity.ml: Array Jp_relation Jp_ssj Jp_util Jp_workload Printf
