(* Set containment (Section 4) and the boolean set-intersection API
   (Section 3.3): answer "is set a contained in / intersecting set b"
   requests, served by batching queries through the join (Q_batch)
   instead of scanning per request.

   Run: dune exec examples/containment_api.exe *)

module Relation = Jp_relation.Relation
module Bsi = Jp_bsi.Bsi

let () =
  let r = Jp_workload.Presets.load ~scale:0.3 Jp_workload.Presets.Words in
  let n = Relation.src_count r in
  (* Containment: four algorithms, one answer. *)
  let run name f =
    let pairs, t = Jp_util.Timer.time f in
    Printf.printf "%-9s %8d containments  %s\n" name (Jp_relation.Pairs.count pairs)
      (Jp_util.Tablefmt.seconds t);
    pairs
  in
  let mm = run "MMJoin" (fun () -> Jp_scj.Mm_scj.join r) in
  let pretti = run "PRETTI" (fun () -> Jp_scj.Pretti.join r) in
  let limitp = run "LIMIT+" (fun () -> Jp_scj.Limit_plus.join r) in
  let pie = run "PIEJoin" (fun () -> Jp_scj.Piejoin.join r) in
  assert (Jp_relation.Pairs.equal mm pretti);
  assert (Jp_relation.Pairs.equal mm limitp);
  assert (Jp_relation.Pairs.equal mm pie);
  (* Boolean intersection API: 1000 queries/s, batched. *)
  let queries = Jp_workload.Generate.batch_queries ~seed:3 ~count:2_000 ~nx:n ~nz:n () in
  print_endline "BSI service at 1000 queries/s:";
  List.iter
    (fun batch_size ->
      let stats = Bsi.simulate ~r ~s:r ~queries ~rate:1000.0 ~batch_size () in
      Printf.printf
        "  batch=%4d  avg delay %-9s units needed %.2f\n" batch_size
        (Jp_util.Tablefmt.seconds stats.Bsi.avg_delay)
        stats.Bsi.units_needed)
    [ 50; 200; 1000 ]
