(* Quickstart: evaluate a join-project query with MMJoin.

   Build:  dune build examples
   Run:    dune exec examples/quickstart.exe

   The query is the paper's running example
       Q(x, z) = R(x, y), S(z, y)   with projection on (x, z)
   i.e. "which (x, z) pairs share at least one y". *)

module Relation = Jp_relation.Relation
module Two_path = Joinproj.Two_path
module Optimizer = Joinproj.Optimizer

let () =
  (* A tiny relation, given as (x, y) edges.  Ids are dictionary-encoded
     ints; use your own encoding layer for real data. *)
  let r =
    Relation.of_edges
      [| (0, 10); (0, 11); (1, 10); (1, 12); (2, 11); (2, 12); (3, 13) |]
  in
  (* Self-join: which x pairs share a y?  The planner decides between the
     worst-case-optimal join and the matrix algorithm (Algorithm 3). *)
  let pairs, plan = Two_path.project_with_plan_info ~r ~s:r () in
  print_endline ("plan: " ^ Optimizer.explain plan);
  Printf.printf "|OUT| = %d pairs\n" (Jp_relation.Pairs.count pairs);
  Jp_relation.Pairs.iter (fun x z -> if x < z then Printf.printf "  (%d, %d)\n" x z) pairs;
  (* Larger skewed instance: force both strategies and compare times. *)
  let big =
    Jp_workload.Generate.set_family ~seed:7 ~sets:8_000 ~dom:6_000 ~avg_size:10
      ~min_size:1 ~max_size:200 ~element_exponent:0.8 ()
  in
  let (mm, plan), t_mm =
    Jp_util.Timer.time (fun () -> Two_path.project_with_plan_info ~r:big ~s:big ())
  in
  let comb, t_comb =
    Jp_util.Timer.time (fun () ->
        Two_path.project ~strategy:Two_path.Combinatorial ~r:big ~s:big ())
  in
  assert (Jp_relation.Pairs.equal mm comb);
  print_endline ("bigger instance plan: " ^ Optimizer.explain plan);
  Printf.printf "MMJoin %s vs combinatorial %s (same %d pairs)\n"
    (Jp_util.Tablefmt.seconds t_mm)
    (Jp_util.Tablefmt.seconds t_comb)
    (Jp_relation.Pairs.count mm)
