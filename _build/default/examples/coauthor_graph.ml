(* Graph analytics (Section 1): extract the co-author graph
       V(x, y) = R(x, p), R(y, p)
   from a DBLP-style author-paper table without materializing the full
   join, and list the strongest collaborations via the ordered variant.

   Run: dune exec examples/coauthor_graph.exe *)

module Relation = Jp_relation.Relation
module Presets = Jp_workload.Presets

let () =
  (* DBLP-shaped synthetic bibliography: authors are sets of papers. *)
  let r = Presets.load ~scale:0.3 Presets.Dblp in
  let ch = Presets.characteristics r in
  Printf.printf "bibliography: %d author-paper tuples, %d authors, %d papers\n"
    ch.Presets.tuples ch.Presets.sets ch.Presets.dom;
  (* The co-author view through MMJoin... *)
  let (coauthors, plan), t =
    Jp_util.Timer.time (fun () -> Joinproj.Two_path.project_with_plan_info ~r ~s:r ())
  in
  Printf.printf "co-author graph: %d directed edges in %s (%s)\n"
    (Jp_relation.Pairs.count coauthors)
    (Jp_util.Tablefmt.seconds t)
    (Joinproj.Optimizer.explain plan);
  (* ...and through a conventional hash join, for comparison. *)
  let baseline, t_base =
    Jp_util.Timer.time (fun () -> Jp_baselines.Hash_join.two_path ~r ~s:r)
  in
  assert (Jp_relation.Pairs.equal coauthors baseline);
  Printf.printf "hash-join baseline: same graph in %s\n" (Jp_util.Tablefmt.seconds t_base);
  (* Strongest collaborations = pairs with most shared papers: the counted
     join gives the multiplicities for free. *)
  let ordered = Jp_ssj.Ordered.via_counts ~c:2 r in
  print_endline "top collaborations (author, author, shared papers):";
  Array.iteri
    (fun i (a, b, k) -> if i < 5 then Printf.printf "  %d -- %d : %d papers\n" a b k)
    ordered
