(* Set similarity join (Section 4): find all pairs of sets sharing at
   least c elements, three ways — SizeAware, SizeAware++ and MMJoin —
   on a dense Jokes-like family where matrix multiplication shines.

   Run: dune exec examples/set_similarity.exe *)

module Presets = Jp_workload.Presets

let () =
  let r = Presets.load ~scale:0.4 Presets.Jokes in
  let ch = Presets.characteristics r in
  Printf.printf "family: %d sets over %d elements (avg size %.1f)\n"
    ch.Presets.sets ch.Presets.dom ch.Presets.avg_size;
  let c = 2 in
  let run name f =
    let pairs, t = Jp_util.Timer.time f in
    Printf.printf "%-14s %8d pairs  %s\n" name (Jp_relation.Pairs.count pairs) (Jp_util.Tablefmt.seconds t);
    pairs
  in
  let mm = run "MMJoin" (fun () -> Jp_ssj.Mm_ssj.join ~c r) in
  let sa = run "SizeAware" (fun () -> Jp_ssj.Size_aware.join ~c r) in
  let sapp = run "SizeAware++" (fun () -> Jp_ssj.Size_aware_pp.join ~c r) in
  assert (Jp_relation.Pairs.equal mm sa);
  assert (Jp_relation.Pairs.equal mm sapp);
  (* Ordered enumeration: most-similar pairs first (the counted join
     already knows each overlap). *)
  let ordered = Jp_ssj.Ordered.via_counts ~c r in
  print_endline "most similar pairs (set, set, overlap):";
  Array.iteri
    (fun i (a, b, k) -> if i < 5 then Printf.printf "  %d ~ %d : %d common\n" a b k)
    ordered
