module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Bitset = Jp_util.Bitset

let two_path ?(dense_threshold = 62) ~r ~s () =
  let nz = Relation.src_count s in
  (* Materialize dense inverted lists of S as bitsets over dom(z). *)
  let dense = Array.make (Relation.dst_count s) None in
  for y = 0 to Relation.dst_count s - 1 do
    let zs = Relation.adj_dst s y in
    if Array.length zs > dense_threshold then
      dense.(y) <- Some (Bitset.of_sorted_array nz zs)
  done;
  let acc = Bitset.create nz in
  let rows =
    Array.init (Relation.src_count r) (fun a ->
        let ys = Relation.adj_src r a in
        if Array.length ys = 0 then [||]
        else begin
          Bitset.clear acc;
          Array.iter
            (fun y ->
              if y < Relation.dst_count s then
                match dense.(y) with
                | Some bs -> Bitset.union_into ~dst:acc bs
                | None -> Array.iter (fun z -> Bitset.set acc z) (Relation.adj_dst s y))
            ys;
          let row = Array.make (Bitset.count acc) 0 in
          let p = ref 0 in
          Bitset.iter
            (fun z ->
              row.(!p) <- z;
              incr p)
            acc;
          row
        end)
  in
  Pairs.of_rows_unchecked rows
