module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs

let two_path ~r ~s =
  let nz = Relation.src_count s in
  let out = Jp_util.Vec.create ~capacity:4096 () in
  (* Both sides are y-sorted via their inverted indexes; a merge over y is
     a scan over the shared dst domain. *)
  let ny = min (Relation.dst_count r) (Relation.dst_count s) in
  for y = 0 to ny - 1 do
    let xs = Relation.adj_dst r y and zs = Relation.adj_dst s y in
    Array.iter
      (fun x ->
        let base = x * nz in
        Array.iter (fun z -> Jp_util.Vec.push out (base + z)) zs)
      xs
  done;
  Jp_util.Vec.sort_dedup out;
  (* Unpack the sorted keys into CSR rows. *)
  let per_x = Array.make (Relation.src_count r) 0 in
  Jp_util.Vec.iter (fun key -> per_x.(key / nz) <- per_x.(key / nz) + 1) out;
  let rows = Array.map (fun c -> Array.make c 0) per_x in
  let fill = Array.make (Relation.src_count r) 0 in
  Jp_util.Vec.iter
    (fun key ->
      let x = key / nz in
      rows.(x).(fill.(x)) <- key mod nz;
      fill.(x) <- fill.(x) + 1)
    out;
  Pairs.of_rows_unchecked rows
