(** "MySQL-like" baseline: sort-merge join on y, then sort the projected
    pair list to deduplicate.

    The full pre-projection join result is materialized as packed (x, z)
    keys and sorted — the "sorting the full join result is expensive since
    it can be orders of magnitude larger than the projection" strategy the
    paper benchmarks conventional engines at. *)

module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs

val two_path : r:Relation.t -> s:Relation.t -> Pairs.t
(** π{_xz}(R(x,y) ⋈ S(z,y)) via merge join + sort dedup. *)
