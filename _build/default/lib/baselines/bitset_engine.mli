(** "EmptyHeaded-like" baseline: set-intersection engine over hybrid
    (bitset / sorted array) set layouts.

    EmptyHeaded evaluates the 2-path projection as, for each x, the union
    of its neighbours' inverted lists, using word-packed set
    representations for dense sets — effectively a linear-algebra engine,
    which is why the paper finds it competitive with MMJoin on the fully
    dense Image dataset.  This module reproduces that design: inverted
    lists of y values denser than a word threshold are materialized as
    bitsets over dom(z); the per-x accumulator is a single bitset into
    which dense lists are OR-ed wholesale and sparse lists inserted
    element-wise. *)

module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs

val two_path :
  ?dense_threshold:int -> r:Relation.t -> s:Relation.t -> unit -> Pairs.t
(** π{_xz}(R ⋈ S).  [dense_threshold] (default 62: one word's worth) is
    the inverted-list size above which a y's list is bit-packed. *)
