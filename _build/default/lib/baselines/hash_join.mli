(** "Postgres-like" baseline: hash join on y followed by hash-based
    deduplication of the projected pairs.

    Mirrors what a conventional RDBMS plan does for
    [SELECT DISTINCT R.x, S.z FROM R, S WHERE R.y = S.y]: build a hash
    table on one side, probe with the other, then deduplicate the full join
    result — paying hash-table insertion (and growth) for every one of the
    |OUT{_⋈}| pre-projection tuples, which is exactly the cost the paper's
    Figure 4a shows dominating on dense data. *)

module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs

val two_path : r:Relation.t -> s:Relation.t -> Pairs.t
(** π{_xz}(R(x,y) ⋈ S(z,y)) via hash join + hash dedup. *)
