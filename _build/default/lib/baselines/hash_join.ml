module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs

let two_path ~r ~s =
  (* Build: hash table y -> xs from R (simulating the build phase; the
     relation's index is deliberately not reused). *)
  let build : (int, Jp_util.Vec.t) Hashtbl.t = Hashtbl.create 1024 in
  Relation.iter
    (fun x y ->
      match Hashtbl.find_opt build y with
      | Some v -> Jp_util.Vec.push v x
      | None ->
        let v = Jp_util.Vec.create ~capacity:4 () in
        Jp_util.Vec.push v x;
        Hashtbl.add build y v)
    r;
  (* Probe with S and deduplicate (x, z) pairs in a hash set keyed by the
     packed pair. *)
  let nz = Relation.src_count s in
  let seen : (int, unit) Hashtbl.t = Hashtbl.create 4096 in
  let per_x = Array.make (Relation.src_count r) 0 in
  Relation.iter
    (fun z y ->
      match Hashtbl.find_opt build y with
      | None -> ()
      | Some xs ->
        Jp_util.Vec.iter
          (fun x ->
            let key = (x * nz) + z in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.add seen key ();
              per_x.(x) <- per_x.(x) + 1
            end)
          xs)
    s;
  let rows = Array.map (fun c -> Jp_util.Vec.create ~capacity:c ()) per_x in
  Hashtbl.iter (fun key () -> Jp_util.Vec.push rows.(key / nz) (key mod nz)) seen;
  Pairs.of_rows_unchecked
    (Array.map
       (fun v ->
         Jp_util.Vec.sort_dedup v;
         Jp_util.Vec.to_array v)
       rows)
