lib/baselines/fulljoin.ml: Jp_relation Jp_wcoj
