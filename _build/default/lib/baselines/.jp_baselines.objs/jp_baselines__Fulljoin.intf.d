lib/baselines/fulljoin.mli: Jp_relation
