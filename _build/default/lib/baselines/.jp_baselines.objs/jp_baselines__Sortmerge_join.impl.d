lib/baselines/sortmerge_join.ml: Array Jp_relation Jp_util
