lib/baselines/bitset_engine.ml: Array Jp_relation Jp_util
