lib/baselines/hash_join.ml: Array Hashtbl Jp_relation Jp_util
