lib/baselines/sortmerge_join.mli: Jp_relation
