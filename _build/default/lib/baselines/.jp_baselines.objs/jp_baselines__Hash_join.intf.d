lib/baselines/hash_join.mli: Jp_relation
