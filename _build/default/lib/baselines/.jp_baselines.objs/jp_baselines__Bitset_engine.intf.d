lib/baselines/bitset_engine.mli: Jp_relation
