(** "System X-like" baseline: worst-case-optimal full join followed by
    projection, with the cheap stamp-vector deduplication of Section 6.

    This is the strongest join-then-dedup strategy — Proposition 1's
    O(|D| ^ rho-star) evaluation — and also serves as the reference oracle the
    test suite compares every other engine against. *)

module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Tuples = Jp_relation.Tuples

val two_path : ?domains:int -> r:Relation.t -> s:Relation.t -> unit -> Pairs.t
(** π{_xz}(R ⋈ S) by per-x expansion (O(|D| + |OUT{_⋈}|)). *)

val star : Relation.t array -> Tuples.t
(** π{_x₁…x_k} of the full star join. *)
