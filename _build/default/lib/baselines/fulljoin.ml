module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Tuples = Jp_relation.Tuples

let two_path ?(domains = 1) ~r ~s () = Jp_wcoj.Expand.project ~domains ~r ~s ()

let star rels = Jp_wcoj.Star.project rels
