lib/query/yannakakis.ml: Array Bag Cq Hypergraph Jp_relation List String
