lib/query/cq.ml: Hashtbl List Printf String
