lib/query/yannakakis.mli: Cq Jp_relation
