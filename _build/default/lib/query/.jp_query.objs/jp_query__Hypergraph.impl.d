lib/query/hypergraph.ml: Array Cq List Set String
