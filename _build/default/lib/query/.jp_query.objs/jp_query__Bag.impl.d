lib/query/bag.ml: Array Cq Hashtbl Jp_relation List Option
