lib/query/engine.ml: Array Cq Hypergraph Joinproj Jp_relation List Printf Yannakakis
