lib/query/hypergraph.mli: Cq
