lib/query/cq.mli:
