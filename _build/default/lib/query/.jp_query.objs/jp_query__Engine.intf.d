lib/query/engine.mli: Cq Jp_relation Yannakakis
