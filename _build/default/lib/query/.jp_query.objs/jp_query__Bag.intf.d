lib/query/bag.mli: Cq Jp_relation
