(** Yannakakis' algorithm for acyclic conjunctive queries.

    Given a join tree, evaluation is three sweeps over the atom bags:

    + bottom-up semijoin (parent ⋉ child) — removes parent tuples with no
      support below;
    + top-down semijoin (child ⋉ parent) — after this "full reduction"
      every remaining tuple participates in some output tuple;
    + bottom-up join, projecting each intermediate onto the head
      variables collected so far plus the parent's connector variables,
      which keeps intermediates output-polynomial.

    Runs in O(|D| + intermediate sizes) with hash joins; this is the
    general-query fallback around the specialized 2-path/star algorithms
    (see {!Engine}). *)

type catalog = (string * Jp_relation.Relation.t) list
(** Relation bindings by name; names are case-sensitive. *)

val run : catalog -> Cq.t -> (Jp_relation.Tuples.t, string) result
(** Evaluates an acyclic query; errors on cyclic queries, unknown
    relation names, or head variables of width 0 (boolean queries are
    answered through {!boolean}). *)

val boolean : catalog -> Cq.t -> (bool, string) result
(** Satisfiability of the query body (the head is ignored): true iff the
    join is non-empty. *)
