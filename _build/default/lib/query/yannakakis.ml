module Relation = Jp_relation.Relation
module Tuples = Jp_relation.Tuples

type catalog = (string * Relation.t) list

let load_bags catalog q =
  let bags =
    List.map
      (fun atom ->
        match List.assoc_opt atom.Cq.relation catalog with
        | Some rel -> Ok (Bag.of_relation rel atom)
        | None -> Error ("unknown relation: " ^ atom.Cq.relation))
      q.Cq.body
  in
  let rec collect acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | Ok b :: rest -> collect (b :: acc) rest
    | Error e :: _ -> Error e
  in
  collect [] bags

let evaluate catalog q =
  match Hypergraph.join_tree q with
  | None -> Error "query is cyclic (GYO reduction failed)"
  | Some tree -> (
    match load_bags catalog q with
    | Error e -> Error e
    | Ok bags ->
      let non_root = List.filter (fun e -> tree.Hypergraph.parent.(e) >= 0) tree.Hypergraph.order in
      (* 1. bottom-up semijoin *)
      List.iter
        (fun e ->
          let p = tree.Hypergraph.parent.(e) in
          bags.(p) <- Bag.semijoin bags.(p) bags.(e))
        non_root;
      (* 2. top-down semijoin *)
      List.iter
        (fun e ->
          let p = tree.Hypergraph.parent.(e) in
          bags.(e) <- Bag.semijoin bags.(e) bags.(p))
        (List.rev non_root);
      (* 3. bottom-up join with projection: keep head variables plus the
         parent's own columns (the running-intersection property makes
         them the only connectors to the rest of the tree) *)
      List.iter
        (fun e ->
          let p = tree.Hypergraph.parent.(e) in
          let keep =
            q.Cq.head
            @ List.filter (fun v -> not (List.mem v q.Cq.head)) (Bag.vars bags.(p))
          in
          bags.(p) <- Bag.join_project bags.(p) bags.(e) ~keep)
        non_root;
      let root = List.nth tree.Hypergraph.order (List.length tree.Hypergraph.order - 1) in
      Ok bags.(root))

let run catalog q =
  if q.Cq.head = [] then Error "boolean query: use Yannakakis.boolean"
  else
  match evaluate catalog q with
  | Error e -> Error e
  | Ok root_bag ->
    let missing =
      List.filter (fun v -> not (List.mem v (Bag.vars root_bag))) q.Cq.head
    in
    if missing <> [] then
      Error ("internal: head variables lost: " ^ String.concat ", " missing)
    else begin
      let final = Bag.project root_bag ~keep:q.Cq.head in
      let k = List.length q.Cq.head in
      let dims =
        Array.make k
          (List.fold_left
             (fun acc row -> Array.fold_left (fun m v -> max m (v + 1)) acc row)
             1 (Bag.rows final))
      in
      let b = Tuples.create_builder ~arity:k ~dims in
      List.iter (fun row -> Tuples.add b row) (Bag.rows final);
      Ok (Tuples.build b)
    end

let boolean catalog q =
  match evaluate catalog { q with Cq.head = [] } with
  | Error e -> Error e
  | Ok root_bag -> Ok (Bag.cardinality root_bag > 0)
