(** Query engine: shape recognition + dispatch.

    The paper's future-work direction is a planner that "decomposes the
    join into multiple subqueries and evaluates in the optimal way".  This
    engine implements the first step of that program:

    - queries of star shape — every atom shares exactly one join variable,
      all other variables projected — are routed to the MMJoin star
      algorithm ({!Joinproj.Star}), covering the 2-path query as k = 2;
    - every other acyclic query runs through {!Yannakakis};
    - cyclic queries are rejected.

    Atoms may bind the join variable in either position (the engine
    transposes relations as needed). *)

type catalog = Yannakakis.catalog

type plan =
  | Star_mm of { k : int }  (** star query: MMJoin with k atoms *)
  | General  (** acyclic fallback: Yannakakis *)

val plan_of : Cq.t -> (plan, string) result
(** The route {!run} would take; errors on cyclic queries. *)

val describe : plan -> string

val run : catalog -> Cq.t -> (Jp_relation.Tuples.t, string) result
(** Evaluates the query.  Head tuples come in head-variable order. *)
