(** Materialized intermediate results ("bags") for Yannakakis evaluation.

    A bag is a deduplicated set of tuples over named columns.  The three
    operations Yannakakis needs are here: semijoin filtering, hash join
    with projection, and column projection.  Columns are query variable
    names; rows are int arrays in column order. *)

type t

val make : vars:string list -> int array list -> t
(** Rows are deduplicated; each must have [List.length vars] fields. *)

val vars : t -> string list

val cardinality : t -> int

val rows : t -> int array list
(** Unspecified order; fresh list, shared row arrays (do not mutate). *)

val of_relation : Jp_relation.Relation.t -> Cq.atom -> t
(** Loads an atom's tuples: applies constant selections and repeated-
    variable equality (e.g. R(x, x)), producing columns
    {!Cq.atom_vars}[ atom].  A fully constant atom yields a zero-column
    bag with one (empty) row if the tuple exists, else no rows. *)

val semijoin : t -> t -> t
(** [semijoin a b] keeps the rows of [a] that agree with some row of [b]
    on their shared columns.  With no shared columns, [a] survives iff
    [b] is non-empty. *)

val join_project : t -> t -> keep:string list -> t
(** [join_project a b ~keep] is the natural join of [a] and [b] projected
    onto the columns of [keep] that exist in either input (in [keep]
    order), deduplicated.  With no shared columns this is a cartesian
    product. *)

val project : t -> keep:string list -> t
(** Projection onto the listed columns (which must all exist), dedup. *)

val to_sorted_list : t -> int list list
(** For tests. *)
