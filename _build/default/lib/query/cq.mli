(** Conjunctive queries over binary relations.

    The paper's future-work section asks for the extension of join-project
    evaluation "to arbitrary acyclic queries with projections", which needs
    a query representation first.  This module provides the AST and a
    parser for a datalog-ish surface syntax:

    {v Q(x, z) :- R(x, y), S(z, y) v}

    - atom arguments are variables (lower-case identifiers) or integer
      constants (selections);
    - relations are binary (this library's data model), checked at parse
      time;
    - the head lists the projection variables (possibly empty: a boolean
      query). *)

type term = Var of string | Const of int

type atom = {
  relation : string;  (** relation name, e.g. "R" *)
  args : term * term;  (** binary atoms only *)
}

type t = {
  head : string list;  (** projection variables, in output order *)
  body : atom list;
}

val parse : string -> (t, string) result
(** Parses ["Q(x,z) :- R(x,y), S(z,y)"].  Errors carry a human-readable
    message with a position.  Validations: head variables must occur in
    the body; at least one atom; identifiers are
    [\[a-zA-Z\]\[a-zA-Z0-9_\]*]; the head name itself is ignored. *)

val to_string : t -> string
(** Round-trippable rendering. *)

val vars : t -> string list
(** All distinct body variables, in first-occurrence order. *)

val atom_vars : atom -> string list
(** Distinct variables of one atom (0, 1 or 2). *)

val equal : t -> t -> bool
