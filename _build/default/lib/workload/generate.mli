(** Synthetic dataset generators.

    Each generator produces the bipartite relation {set id, element id}
    (equivalently a graph edge relation) with controlled shape parameters,
    deterministically from a seed. *)

module Relation = Jp_relation.Relation

val set_family :
  ?seed:int ->
  ?size_exponent:float ->
  ?element_exponent:float ->
  sets:int ->
  dom:int ->
  avg_size:int ->
  min_size:int ->
  max_size:int ->
  unit ->
  Relation.t
(** A family of [sets] sets over an element domain of size [dom].  Set
    cardinalities follow a truncated power law with mean ≈ [avg_size]
    (clipped to [\[min_size, max_size\]], [size_exponent] controls the
    tail, default 1.5); elements within a set are drawn Zipf
    ([element_exponent], default 1.0) without replacement. *)

val uniform_dense :
  ?seed:int -> sets:int -> dom:int -> fill:float -> unit -> Relation.t
(** Every set contains each element independently with probability [fill]
    — the Image/Protein-style dense families where "the output is close to
    a clique". *)

val community_graph :
  ?seed:int -> communities:int -> members:int -> p_intra:float -> unit -> Relation.t
(** Example 1's social graph: [communities] groups of [members] users; an
    edge between two users of the same community exists with probability
    [p_intra].  Returned as the (symmetric) friendship relation
    R(user, user); the 2-path self-join on it lists user pairs with a
    common friend.  Node ids are community-contiguous. *)

val add_containments :
  ?seed:int -> fraction:float -> Relation.t -> Relation.t
(** [add_containments ~fraction r] replaces a random [fraction] of the
    sets of the family [r] with random subsets of other sets (each donor
    element kept with probability 1/2, at least one).  Real set-valued
    corpora (author lists, token bags) contain substantial nesting, which
    the independence assumptions of {!set_family}/{!uniform_dense} lack;
    the set-containment benchmarks apply this transform so the SCJ result
    is non-trivial, as on the paper's datasets. *)

val batch_queries :
  ?seed:int -> count:int -> nx:int -> nz:int -> unit -> (int * int) array
(** [count] uniformly random (a, b) boolean-set-intersection probes (the
    BSI workload of Section 7.5). *)
