(** The six evaluation datasets of Table 2, reproduced as synthetic
    generators at a configurable scale.

    The original datasets (10⁶–10⁹ tuples) are not redistributable inside
    this container, so each preset reproduces the {e shape} that drives
    the algorithms' relative behaviour — set count vs domain size, average
    / min / max set size, skew, and density class (sparse like
    DBLP/RoadNet vs dense like Jokes/Words/Protein/Image) — scaled down so
    the full benchmark matrix runs in minutes.  [scale] multiplies set
    counts and domain sizes (1.0 = the defaults documented in DESIGN.md,
    roughly 1/40–1/100 of the paper's sizes). *)

module Relation = Jp_relation.Relation

type name = Dblp | Roadnet | Jokes | Words | Protein | Image

val all : name list
(** In the paper's Table 2 order. *)

val to_string : name -> string

val of_string : string -> name option

val load : ?scale:float -> ?seed:int -> name -> Relation.t
(** Generates the dataset (deterministic in [seed]; default 42). *)

type characteristics = {
  tuples : int;
  sets : int;
  dom : int;
  avg_size : float;
  min_size : int;
  max_size : int;
}

val characteristics : Relation.t -> characteristics
(** Empirical Table-2 row of a generated dataset (sets with zero size are
    ignored for min). *)

val is_dense : name -> bool
(** The paper's classification: DBLP and RoadNet sparse, the rest dense. *)
