type t = { cdf : float array; exponent : float }

let create ?(exponent = 1.0) n =
  if n <= 0 then invalid_arg "Zipf.create";
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (1.0 /. (float_of_int (i + 1) ** exponent));
    cdf.(i) <- !acc
  done;
  let total = !acc in
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. total
  done;
  { cdf; exponent }

let domain t = Array.length t.cdf

let exponent t = t.exponent

let sample t rng =
  let u = Jp_util.Rng.float rng 1.0 in
  (* least i with cdf.(i) >= u *)
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo
