(** Zipf-distributed sampling over a finite domain.

    Real set-valued datasets (DBLP author lists, bag-of-words documents,
    protein interaction lists) have power-law element frequencies; the
    workload generators use this sampler to reproduce the degree skew that
    drives the paper's light/heavy partitioning. *)

type t

val create : ?exponent:float -> int -> t
(** [create ~exponent n] prepares an inverse-CDF sampler over
    [\[0, n)] with P(i) ∝ 1/(i+1)^exponent.  Default exponent 1.0.
    O(n) build, O(log n) per sample. *)

val sample : t -> Jp_util.Rng.t -> int

val domain : t -> int

val exponent : t -> float
