module Relation = Jp_relation.Relation

type name = Dblp | Roadnet | Jokes | Words | Protein | Image

let all = [ Dblp; Roadnet; Jokes; Words; Protein; Image ]

let to_string = function
  | Dblp -> "dblp"
  | Roadnet -> "roadnet"
  | Jokes -> "jokes"
  | Words -> "words"
  | Protein -> "protein"
  | Image -> "image"

let of_string s =
  match String.lowercase_ascii s with
  | "dblp" -> Some Dblp
  | "roadnet" -> Some Roadnet
  | "jokes" -> Some Jokes
  | "words" -> Some Words
  | "protein" -> Some Protein
  | "image" -> Some Image
  | _ -> None

let is_dense = function
  | Dblp | Roadnet -> false
  | Jokes | Words | Protein | Image -> true

let scaled scale n = max 4 (int_of_float (scale *. float_of_int n))

(* Shape targets mirror Table 2 at roughly 1/40-1/100 of the original
   sizes; comments give the original characteristics. *)
let load ?(scale = 1.0) ?(seed = 42) name =
  let s = scaled scale in
  match name with
  | Dblp ->
    (* 10M tuples, 1.5M sets, dom 3M, avg 6.6, min 1, max 500: sparse,
       power-law sizes. *)
    Generate.set_family ~seed ~sets:(s 15_000) ~dom:(s 30_000) ~avg_size:7
      ~min_size:1 ~max_size:500 ~size_exponent:1.6 ~element_exponent:0.15 ()
  | Roadnet ->
    (* 1.5M tuples, 1M sets, dom 1M, avg 1.5, max 20: near-functional. *)
    Generate.set_family ~seed ~sets:(s 10_000) ~dom:(s 10_000) ~avg_size:2
      ~min_size:1 ~max_size:20 ~size_exponent:2.5 ~element_exponent:0.1 ()
  | Jokes ->
    (* 400M tuples, 70K sets, dom 50K, avg 5.7K (11% of dom), min 130:
       dense with skewed elements. *)
    Generate.set_family ~seed ~sets:(s 1_200) ~dom:(s 900) ~avg_size:(s 100)
      ~min_size:(s 3) ~max_size:(s 200) ~size_exponent:1.2 ~element_exponent:0.7 ()
  | Words ->
    (* 500M tuples, 1M sets, dom 150K, avg 500, max 10K: dense-ish but most
       sets small — the dataset where the optimizer prefers the
       combinatorial plan for BSI. *)
    Generate.set_family ~seed ~sets:(s 2_000) ~dom:(s 1_500) ~avg_size:(s 40)
      ~min_size:1 ~max_size:(s 200) ~size_exponent:1.8 ~element_exponent:1.1 ()
  | Protein ->
    (* 900M tuples, 60K sets, dom 60K, avg 15K (25% of dom), min 50:
       uniformly dense. *)
    Generate.uniform_dense ~seed ~sets:(s 800) ~dom:(s 800) ~fill:0.25 ()
  | Image ->
    (* 800M tuples, 70K sets, dom 50K, avg 11.4K (23% of dom), min 10K:
       uniformly dense, near-clique output. *)
    Generate.uniform_dense ~seed ~sets:(s 900) ~dom:(s 750) ~fill:0.23 ()

type characteristics = {
  tuples : int;
  sets : int;
  dom : int;
  avg_size : float;
  min_size : int;
  max_size : int;
}

let characteristics r =
  let tuples = Relation.size r in
  let sets = ref 0 and min_size = ref max_int and max_size = ref 0 in
  for a = 0 to Relation.src_count r - 1 do
    let d = Relation.deg_src r a in
    if d > 0 then begin
      incr sets;
      if d < !min_size then min_size := d;
      if d > !max_size then max_size := d
    end
  done;
  let dom = ref 0 in
  for b = 0 to Relation.dst_count r - 1 do
    if Relation.deg_dst r b > 0 then incr dom
  done;
  {
    tuples;
    sets = !sets;
    dom = !dom;
    avg_size = (if !sets = 0 then 0.0 else float_of_int tuples /. float_of_int !sets);
    min_size = (if !sets = 0 then 0 else !min_size);
    max_size = !max_size;
  }
