module Relation = Jp_relation.Relation
module Rng = Jp_util.Rng
module Vec = Jp_util.Vec

(* Truncated power-law set size with approximately the requested mean:
   draw from P(s) ~ 1/s^a on [min_size, max_size], then rescale towards
   the target mean by mixing with the mean itself. *)
let size_sampler rng ~size_exponent ~avg_size ~min_size ~max_size =
  let min_size = max 1 min_size in
  let max_size = max min_size max_size in
  let z = Zipf.create ~exponent:size_exponent (max_size - min_size + 1) in
  fun () ->
    let raw = min_size + Zipf.sample z rng in
    (* Blend towards the average so the empirical mean lands close to
       avg_size even for heavy tails. *)
    if Rng.bool rng then raw else min max_size (max min_size avg_size)

let distinct_elements rng zipf ~count ~dom buf =
  Vec.clear buf;
  let seen = Hashtbl.create (2 * count) in
  let attempts = ref 0 in
  while Vec.length buf < count && !attempts < 20 * count do
    incr attempts;
    let e = Zipf.sample zipf rng in
    if not (Hashtbl.mem seen e) then begin
      Hashtbl.add seen e ();
      Vec.push buf e
    end
  done;
  (* Zipf rejection can stall on tiny domains; top up uniformly. *)
  while Vec.length buf < count && Hashtbl.length seen < dom do
    let e = Rng.int rng dom in
    if not (Hashtbl.mem seen e) then begin
      Hashtbl.add seen e ();
      Vec.push buf e
    end
  done

let set_family ?(seed = 1) ?(size_exponent = 1.5) ?(element_exponent = 1.0) ~sets
    ~dom ~avg_size ~min_size ~max_size () =
  if sets <= 0 || dom <= 0 then invalid_arg "Generate.set_family";
  let rng = Rng.create seed in
  let zipf = Zipf.create ~exponent:element_exponent dom in
  let next_size = size_sampler rng ~size_exponent ~avg_size ~min_size ~max_size in
  let buf = Vec.create () in
  let families =
    Array.init sets (fun _ ->
        let count = min dom (next_size ()) in
        distinct_elements rng zipf ~count ~dom buf;
        Vec.to_array buf)
  in
  Relation.of_sets ~dst_count:dom families

let uniform_dense ?(seed = 1) ~sets ~dom ~fill () =
  if fill < 0.0 || fill > 1.0 then invalid_arg "Generate.uniform_dense";
  let rng = Rng.create seed in
  let families =
    Array.init sets (fun _ ->
        let buf = Vec.create ~capacity:(int_of_float (fill *. float_of_int dom) + 1) () in
        for e = 0 to dom - 1 do
          if Rng.float rng 1.0 < fill then Vec.push buf e
        done;
        Vec.to_array buf)
  in
  Relation.of_sets ~dst_count:dom families

let community_graph ?(seed = 1) ~communities ~members ~p_intra () =
  if communities <= 0 || members <= 1 then invalid_arg "Generate.community_graph";
  let rng = Rng.create seed in
  let n = communities * members in
  let edges = Vec.create () in
  for c = 0 to communities - 1 do
    let base = c * members in
    for i = 0 to members - 1 do
      for j = i + 1 to members - 1 do
        if Rng.float rng 1.0 < p_intra then begin
          Vec.push2 edges (base + i) (base + j);
          Vec.push2 edges (base + j) (base + i)
        end
      done
    done
  done;
  Relation.of_flat ~src_count:n ~dst_count:n (Vec.to_array edges)

let add_containments ?(seed = 1) ~fraction r =
  if fraction < 0.0 || fraction > 1.0 then invalid_arg "Generate.add_containments";
  let rng = Rng.create seed in
  let n = Relation.src_count r in
  let donors =
    Array.of_seq
      (Seq.filter (fun a -> Relation.deg_src r a > 0) (Seq.init n (fun a -> a)))
  in
  let sets =
    Array.init n (fun a ->
        let original = Relation.adj_src r a in
        if
          Array.length donors = 0
          || Array.length original = 0
          || Rng.float rng 1.0 >= fraction
        then Array.copy original
        else begin
          let donor = donors.(Rng.int rng (Array.length donors)) in
          let elems = Relation.adj_src r donor in
          let buf = Vec.create ~capacity:(Array.length elems / 2 + 1) () in
          Array.iter (fun e -> if Rng.bool rng then Vec.push buf e) elems;
          if Vec.length buf = 0 then Vec.push buf elems.(Rng.int rng (Array.length elems));
          Vec.to_array buf
        end)
  in
  Relation.of_sets ~dst_count:(Relation.dst_count r) sets

let batch_queries ?(seed = 1) ~count ~nx ~nz () =
  let rng = Rng.create seed in
  Array.init count (fun _ -> (Rng.int rng nx, Rng.int rng nz))
