lib/workload/presets.ml: Generate Jp_relation String
