lib/workload/presets.mli: Jp_relation
