lib/workload/generate.ml: Array Hashtbl Jp_relation Jp_util Seq Zipf
