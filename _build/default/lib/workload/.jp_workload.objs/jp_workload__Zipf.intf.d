lib/workload/zipf.mli: Jp_util
