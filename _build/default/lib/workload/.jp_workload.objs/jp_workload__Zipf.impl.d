lib/workload/zipf.ml: Array Jp_util
