lib/workload/generate.mli: Jp_relation
