type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 16) () =
  { data = Array.make (max capacity 1) 0; len = 0 }

let length v = v.len

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  Array.unsafe_get v.data i

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set";
  Array.unsafe_set v.data i x

let grow v needed =
  let cap = max needed (2 * Array.length v.data) in
  let data = Array.make cap 0 in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v (v.len + 1);
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1

let push2 v a b =
  if v.len + 2 > Array.length v.data then grow v (v.len + 2);
  Array.unsafe_set v.data v.len a;
  Array.unsafe_set v.data (v.len + 1) b;
  v.len <- v.len + 2

let clear v = v.len <- 0

let truncate v n =
  if n < 0 || n > v.len then invalid_arg "Vec.truncate";
  v.len <- n

let to_array v = Array.sub v.data 0 v.len

let unsafe_data v = v.data

let sort_dedup v =
  if v.len > 1 then begin
    let a = Array.sub v.data 0 v.len in
    Intsort.sort a;
    let w = ref 1 in
    for r = 1 to v.len - 1 do
      if a.(r) <> a.(!w - 1) then begin
        a.(!w) <- a.(r);
        incr w
      end
    done;
    Array.blit a 0 v.data 0 !w;
    v.len <- !w
  end

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

let fold f init v =
  let acc = ref init in
  for i = 0 to v.len - 1 do
    acc := f !acc (Array.unsafe_get v.data i)
  done;
  !acc
