(** Growable array of unboxed [int]s.

    The workhorse buffer for join outputs and adjacency construction: bulk
    push with amortized O(1), in-place sort/dedup, and zero-copy freezing
    into a plain [int array] slice. *)

type t

val create : ?capacity:int -> unit -> t

val length : t -> int

val get : t -> int -> int
(** [get v i] is the [i]-th element; bounds-checked. *)

val set : t -> int -> int -> unit

val push : t -> int -> unit

val push2 : t -> int -> int -> unit
(** [push2 v a b] appends two elements; used for flat pair encoding. *)

val clear : t -> unit
(** Resets length to zero, keeping capacity. *)

val truncate : t -> int -> unit
(** [truncate v n] shrinks the length to [n] (which must be [<= length]).
    Used as a stack-frame pop by tree traversals. *)

val to_array : t -> int array
(** Fresh array copy of the contents. *)

val unsafe_data : t -> int array
(** The backing store; only indices [< length] are meaningful. *)

val sort_dedup : t -> unit
(** Sorts ascending and removes duplicates in place. *)

val iter : (int -> unit) -> t -> unit

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
