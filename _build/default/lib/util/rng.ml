type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 finalizer: state += gamma; z = mix(state). *)
let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Take 62 low bits to stay within native int; modulo bias is negligible
     for the bounds used in this project (< 2^40). *)
  let mask = 0x3FFF_FFFF_FFFF_FFFFL in
  let v = Int64.to_int (Int64.logand (next64 t) mask) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t = { state = next64 t }
