lib/util/intsort.mli:
