lib/util/timer.mli:
