lib/util/sorted.mli:
