lib/util/intsort.ml: Array
