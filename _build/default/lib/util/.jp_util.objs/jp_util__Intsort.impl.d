lib/util/intsort.ml: Array Obs_hook
