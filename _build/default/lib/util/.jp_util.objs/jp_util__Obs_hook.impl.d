lib/util/obs_hook.ml: Atomic
