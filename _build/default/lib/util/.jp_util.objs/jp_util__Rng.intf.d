lib/util/rng.mli:
