lib/util/obs_hook.mli: Atomic
