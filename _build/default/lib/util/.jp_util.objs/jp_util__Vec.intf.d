lib/util/vec.mli:
