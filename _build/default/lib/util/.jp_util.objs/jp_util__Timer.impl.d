lib/util/timer.ml: List Unix
