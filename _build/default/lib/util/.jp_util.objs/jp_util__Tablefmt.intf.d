lib/util/tablefmt.mli:
