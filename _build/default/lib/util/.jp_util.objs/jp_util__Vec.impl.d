lib/util/vec.ml: Array Intsort
