lib/util/bitset.mli:
