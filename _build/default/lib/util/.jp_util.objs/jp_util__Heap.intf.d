lib/util/heap.mli:
