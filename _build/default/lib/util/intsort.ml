let insertion a lo hi =
  for i = lo + 1 to hi - 1 do
    let x = Array.unsafe_get a i in
    let j = ref (i - 1) in
    while !j >= lo && Array.unsafe_get a !j > x do
      Array.unsafe_set a (!j + 1) (Array.unsafe_get a !j);
      decr j
    done;
    Array.unsafe_set a (!j + 1) x
  done

(* LSD radix sort with 8-bit digits over the range [lo, hi).  One pass per
   significant byte of the maximum value: for the dictionary-encoded ids
   this project sorts (bounded by a relation's domain) that is 2-3 passes,
   ~5 operations per element — far cheaper than comparison sorting. *)
let radix a lo hi max_v =
  let n = hi - lo in
  (let rec passes acc v = if v = 0 then acc else passes (acc + 1) (v lsr 8) in
   Obs_hook.note_radix ~elems:n ~passes:(passes 0 max_v));
  let tmp = Array.make n 0 in
  let count = Array.make 257 0 in
  (* work in [cur] which is either a (offset lo) or tmp (offset 0) *)
  let src = ref a and src_off = ref lo in
  let dst = ref tmp and dst_off = ref 0 in
  let shift = ref 0 in
  while max_v lsr !shift > 0 do
    Array.fill count 0 257 0;
    let s = !src and so = !src_off in
    for i = 0 to n - 1 do
      let d = (Array.unsafe_get s (so + i) lsr !shift) land 0xFF in
      Array.unsafe_set count (d + 1) (Array.unsafe_get count (d + 1) + 1)
    done;
    for d = 1 to 256 do
      Array.unsafe_set count d (Array.unsafe_get count d + Array.unsafe_get count (d - 1))
    done;
    let t = !dst and to_ = !dst_off in
    for i = 0 to n - 1 do
      let v = Array.unsafe_get s (so + i) in
      let d = (v lsr !shift) land 0xFF in
      Array.unsafe_set t (to_ + Array.unsafe_get count d) v;
      Array.unsafe_set count d (Array.unsafe_get count d + 1)
    done;
    let s', so' = (!src, !src_off) in
    src := !dst;
    src_off := !dst_off;
    dst := s';
    dst_off := so';
    shift := !shift + 8
  done;
  if !src != a then Array.blit !src 0 a lo n

(* Comparison fallback for ranges containing negative values (never the
   case for id arrays, but the module keeps a total contract). *)
let rec quicksort a lo hi =
  if hi - lo <= 16 then insertion a lo hi
  else begin
    let mid = lo + ((hi - lo) / 2) in
    let swap i j =
      let t = Array.unsafe_get a i in
      Array.unsafe_set a i (Array.unsafe_get a j);
      Array.unsafe_set a j t
    in
    if Array.unsafe_get a mid < Array.unsafe_get a lo then swap mid lo;
    if Array.unsafe_get a (hi - 1) < Array.unsafe_get a lo then swap (hi - 1) lo;
    if Array.unsafe_get a (hi - 1) < Array.unsafe_get a mid then swap (hi - 1) mid;
    swap mid (hi - 1);
    let pivot = Array.unsafe_get a (hi - 1) in
    let i = ref lo in
    for j = lo to hi - 2 do
      if Array.unsafe_get a j < pivot then begin
        swap !i j;
        incr i
      end
    done;
    swap !i (hi - 1);
    quicksort a lo !i;
    quicksort a (!i + 1) hi
  end

let sort_sub a ~lo ~hi =
  if lo < 0 || hi > Array.length a || lo > hi then invalid_arg "Intsort.sort_sub";
  let n = hi - lo in
  if n > 1 then begin
    if n <= 32 then insertion a lo hi
    else begin
      (* one scan decides radix vs comparison fallback *)
      let max_v = ref 0 and negative = ref false in
      for i = lo to hi - 1 do
        let v = Array.unsafe_get a i in
        if v < 0 then negative := true else if v > !max_v then max_v := v
      done;
      if !negative then quicksort a lo hi
      else if !max_v = 0 then () (* all zeros *)
      else radix a lo hi !max_v
    end
  end

let sort a = sort_sub a ~lo:0 ~hi:(Array.length a)
