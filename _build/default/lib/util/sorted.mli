(** Algebra on strictly-increasing [int array]s.

    Sorted adjacency lists are the universal currency of the join engines:
    leapfrog intersection, merge-union deduplication, and galloping
    (exponential-probe) search all live here.  Every input array is assumed
    strictly increasing; outputs are strictly increasing. *)

val mem : int array -> int -> bool
(** Binary search membership. *)

val lower_bound : int array -> int -> int
(** [lower_bound a x] is the least index [i] with [a.(i) >= x], or
    [Array.length a] if none. *)

val gallop : int array -> start:int -> int -> int
(** [gallop a ~start x] is the least index [i >= start] with [a.(i) >= x],
    found by exponential probing then binary search — O(log distance). *)

val intersect : int array -> int array -> int array
(** Set intersection.  Switches between linear merge and galloping depending
    on the size ratio, as in leapfrog/EmptyHeaded-style engines. *)

val intersect_count : int array -> int array -> int
(** Cardinality of the intersection without materializing it. *)

val union : int array -> int array -> int array
(** Set union. *)

val difference : int array -> int array -> int array
(** Elements of the first array absent from the second. *)

val subset : int array -> int array -> bool
(** [subset a b] is [true] iff every element of [a] occurs in [b]. *)

val intersect_many : int array list -> int array
(** Intersection of all lists, smallest-first for early exit.  The
    intersection of the empty list is undefined and raises
    [Invalid_argument]. *)

val merge_union_many : int array list -> int array
(** k-way union via repeated pairwise merging, cheapest pairs first. *)

val is_strictly_sorted : int array -> bool
