(** Plain-text table rendering for benchmark reports.

    Produces the aligned rows/series that each experiment prints, matching
    the tables and figure series of the paper's evaluation section. *)

val render : header:string list -> rows:string list list -> string
(** [render ~header ~rows] lays the cells out in aligned columns with a
    separator rule under the header.  Rows shorter than the header are
    right-padded with empty cells. *)

val print : header:string list -> rows:string list list -> unit
(** [render] followed by [print_string]. *)

val seconds : float -> string
(** Human-friendly duration: ["87.2ms"], ["3.41s"], ["128s"]. *)

val big_int : int -> string
(** Thousands-separated integer: ["12,345,678"]. *)
