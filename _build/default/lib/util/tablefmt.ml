let pad cell w = cell ^ String.make (max 0 (w - String.length cell)) ' '

let render ~header ~rows =
  let ncols = List.length header in
  let normalize row =
    let len = List.length row in
    if len >= ncols then row else row @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun w row -> max w (String.length (List.nth row i))) (String.length h) rows)
      header
  in
  let line cells =
    String.concat "  " (List.map2 pad cells widths) ^ "\n"
  in
  let rule = String.concat "  " (List.map (fun w -> String.make w '-') widths) ^ "\n" in
  line header ^ rule ^ String.concat "" (List.map line rows)

let print ~header ~rows = print_string (render ~header ~rows)

let seconds s =
  if s < 1e-3 then Printf.sprintf "%.1fus" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.1fms" (s *. 1e3)
  else if s < 100.0 then Printf.sprintf "%.2fs" s
  else Printf.sprintf "%.0fs" s

let big_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + len / 3 + 1) in
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  (if n < 0 then "-" else "") ^ Buffer.contents buf
