(** Monomorphic in-place sorting of [int array]s.

    [Array.sort compare] pays a polymorphic-comparison call per element
    pair, which dominates join post-processing (every output group is
    sorted).  This introsort-style quicksort (median-of-three pivot,
    insertion sort on small ranges, depth-bounded with a merge-sort
    fallback) compares unboxed ints directly — typically 4-6x faster on
    the adjacency/output arrays this project sorts. *)

val sort : int array -> unit

val sort_sub : int array -> lo:int -> hi:int -> unit
(** Sorts the half-open range [\[lo, hi)]. *)
