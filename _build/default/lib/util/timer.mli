(** Wall-clock timing helpers for the benchmark harness. *)

val now : unit -> float
(** Wall-clock seconds (epoch-based; only differences are meaningful). *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with elapsed wall
    seconds. *)

val time_median : ?repeats:int -> (unit -> 'a) -> 'a * float
(** [time_median ~repeats f] runs [f] [repeats] times (default 3) and
    returns the last result with the median elapsed time; mirrors the
    paper's "average of middle runs" methodology. *)
