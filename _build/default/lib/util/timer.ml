let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let x = f () in
  let t1 = now () in
  (x, t1 -. t0)

let time_median ?(repeats = 3) f =
  if repeats < 1 then invalid_arg "Timer.time_median";
  let result = ref None in
  let times =
    List.init repeats (fun _ ->
        let x, dt = time f in
        result := Some x;
        dt)
  in
  let sorted = List.sort compare times in
  let median = List.nth sorted (repeats / 2) in
  match !result with
  | Some x -> (x, median)
  | None -> assert false
