(** Deterministic pseudo-random number generation (splitmix64).

    Every generator in this repository takes an explicit {!t} so that
    datasets, tests and benchmarks are reproducible run-to-run.  The
    implementation is splitmix64, which has a single 64-bit word of state,
    passes BigCrush, and is cheap enough to use inside tight generation
    loops. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from [seed].  Equal seeds yield
    identical streams. *)

val copy : t -> t
(** [copy t] is an independent generator positioned at the same point of the
    stream as [t]. *)

val next64 : t -> int64
(** Next raw 64-bit output word. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val split : t -> t
(** [split t] advances [t] and returns a statistically independent child
    generator; used to give each parallel task its own stream. *)
