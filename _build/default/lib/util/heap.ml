type 'a t = {
  mutable prio : int array;
  mutable data : 'a option array;
  mutable len : int;
}

let create () = { prio = Array.make 16 0; data = Array.make 16 None; len = 0 }

let size t = t.len

let is_empty t = t.len = 0

let grow t =
  let cap = 2 * Array.length t.prio in
  let prio = Array.make cap 0 and data = Array.make cap None in
  Array.blit t.prio 0 prio 0 t.len;
  Array.blit t.data 0 data 0 t.len;
  t.prio <- prio;
  t.data <- data

let swap t i j =
  let p = t.prio.(i) in
  t.prio.(i) <- t.prio.(j);
  t.prio.(j) <- p;
  let d = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- d

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.prio.(i) < t.prio.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && t.prio.(l) < t.prio.(!smallest) then smallest := l;
  if r < t.len && t.prio.(r) < t.prio.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~priority x =
  if t.len = Array.length t.prio then grow t;
  t.prio.(t.len) <- priority;
  t.data.(t.len) <- Some x;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let min_priority t =
  if t.len = 0 then invalid_arg "Heap.min_priority: empty";
  t.prio.(0)

let pop_min t =
  if t.len = 0 then invalid_arg "Heap.pop_min: empty";
  let p = t.prio.(0) in
  let x = match t.data.(0) with Some x -> x | None -> assert false in
  t.len <- t.len - 1;
  if t.len > 0 then begin
    t.prio.(0) <- t.prio.(t.len);
    t.data.(0) <- t.data.(t.len)
  end;
  t.data.(t.len) <- None;
  sift_down t 0;
  (p, x)

let to_list t =
  let acc = ref [] in
  for i = 0 to t.len - 1 do
    match t.data.(i) with
    | Some x -> acc := (t.prio.(i), x) :: !acc
    | None -> assert false
  done;
  !acc
