(** Binary min-heap over integer priorities.

    Used for top-k enumeration (keep the k best seen so far, evicting
    through the minimum) and as a general scheduling primitive.  Payloads
    are arbitrary; priorities are ints. *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> priority:int -> 'a -> unit

val min_priority : 'a t -> int
(** Raises [Invalid_argument] on an empty heap. *)

val pop_min : 'a t -> int * 'a
(** Removes and returns the minimum-priority entry (ties broken
    arbitrarily).  Raises [Invalid_argument] on an empty heap. *)

val to_list : 'a t -> (int * 'a) list
(** All entries, unspecified order. *)
