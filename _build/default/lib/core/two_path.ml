module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Counted_pairs = Jp_relation.Counted_pairs
module Boolmat = Jp_matrix.Boolmat
module Intmat = Jp_matrix.Intmat
module Vec = Jp_util.Vec
module Obs = Jp_obs

type strategy = Matrix | Combinatorial

(* Measures one engine phase for the plan-vs-actual record; [f] may open
   its own spans, so this deliberately does not open one.  Top-level (and
   handed the accumulator explicitly) to stay polymorphic in the phase's
   result type. *)
let phase phases name f =
  if Obs.recording () then begin
    let t0 = Jp_util.Timer.now () in
    let x = f () in
    phases := (name, Jp_util.Timer.now () -. t0) :: !phases;
    x
  end
  else f ()

(* ------------------------------------------------------------------ *)
(* Boolean (dedup-only) evaluation                                     *)
(* ------------------------------------------------------------------ *)

(* Heavy adjacency matrices of R+ and S+ (Section 3.1): rows/columns are
   the pruned heavy value lists of the partition. *)
let heavy_matrices ~domains ~r ~s (p : Partition.t) =
  Obs.span "two_path.heavy_mm" (fun () ->
      let m1 =
        Boolmat.create ~rows:(Array.length p.heavy_x)
          ~cols:(Array.length p.heavy_y)
      in
      Array.iteri
        (fun i a ->
          Array.iter
            (fun b ->
              let j = p.y_index.(b) in
              if j >= 0 then Boolmat.set m1 i j)
            (Relation.adj_src r a))
        p.heavy_x;
      let m2 =
        Boolmat.create ~rows:(Array.length p.heavy_y)
          ~cols:(Array.length p.heavy_z)
      in
      Array.iteri
        (fun j b ->
          if b < Relation.dst_count s then
            Array.iter
              (fun c ->
                let l = p.z_index.(c) in
                if l >= 0 then Boolmat.set m2 j l)
              (Relation.adj_dst s b))
        p.heavy_y;
      Boolmat.mul ~domains m1 m2)

(* The merged per-x loop: light contributions from R- |><| S and R |><| S-,
   heavy contributions from the matrix product (or from a heavy-restricted
   expansion for the combinatorial strategy), all deduplicated with one
   stamp vector. *)
let partitioned_project ~phases ~domains ~strategy ~r ~s (p : Partition.t) =
  let product =
    match strategy with
    | Matrix -> Some (phase phases "heavy-mm" (fun () -> heavy_matrices ~domains ~r ~s p))
    | Combinatorial -> None
  in
  phase phases "light-merge" (fun () ->
      Obs.span "two_path.light_merge" (fun () ->
          (* For heavy y values, pre-split S's inverted list into its
             light-z and heavy-z halves once (O(N)); the per-x loop below
             would otherwise rescan whole inverted lists just to filter
             them, degenerating to the full join when few values are
             light. *)
          let ny = max (Relation.dst_count r) (Relation.dst_count s) in
          let s_light_of_heavy_y = Array.make ny [||] in
          let s_heavy_of_heavy_y = Array.make ny [||] in
          Array.iter
            (fun b ->
              if b < Relation.dst_count s then begin
                let zs = Relation.adj_dst s b in
                let light = Vec.create () and heavy = Vec.create () in
                Array.iter
                  (fun c ->
                    if Relation.deg_src s c <= p.d2 then Vec.push light c
                    else Vec.push heavy c)
                  zs;
                s_light_of_heavy_y.(b) <- Vec.to_array light;
                s_heavy_of_heavy_y.(b) <- Vec.to_array heavy
              end)
            p.heavy_y;
          let nx = Relation.src_count r in
          let rows = Array.make nx [||] in
          let worker lo hi =
            let stamps = Array.make (Relation.src_count s) (-1) in
            let buf = Vec.create ~capacity:256 () in
            let obs = Obs.recording () in
            let light_scans = ref 0 and presented = ref 0 and misses = ref 0 in
            for a = lo to hi - 1 do
              let stamp = a in
              Vec.clear buf;
              let push c =
                if Array.unsafe_get stamps c <> stamp then begin
                  Array.unsafe_set stamps c stamp;
                  Vec.push buf c
                end
              in
              let scan zs =
                if obs then begin
                  light_scans := !light_scans + Array.length zs;
                  presented := !presented + Array.length zs
                end;
                Array.iter push zs
              in
              let a_light = Relation.deg_src r a <= p.d2 in
              Array.iter
                (fun b ->
                  if a_light || Partition.is_light_y p b then
                    scan (Relation.adj_dst s b)
                  else
                    (* heavy a, heavy b: only the S- tuples (light z) are
                       joined here; heavy z is the matrix part's job *)
                    scan s_light_of_heavy_y.(b))
                (Relation.adj_src r a);
              (match product with
              | Some m ->
                let i = p.x_index.(a) in
                if i >= 0 then begin
                  if obs then presented := !presented + Boolmat.row_nnz m i;
                  Boolmat.iter_row m i (fun l -> push p.heavy_z.(l))
                end
              | None ->
                if not a_light then
                  Array.iter
                    (fun b ->
                      if not (Partition.is_light_y p b) then
                        scan s_heavy_of_heavy_y.(b))
                    (Relation.adj_src r a));
              if obs then misses := !misses + Vec.length buf;
              Vec.sort_dedup buf;
              rows.(a) <- Vec.to_array buf
            done;
            if obs then begin
              Obs.add Obs.C.light_probes !light_scans;
              Obs.add Obs.C.stamp_misses !misses;
              Obs.add Obs.C.stamp_hits (!presented - !misses)
            end
          in
          if domains <= 1 then worker 0 nx
          else begin
            let per = (nx + domains - 1) / domains in
            Jp_parallel.Pool.parallel_for_ranges ~domains ~chunk:per ~lo:0
              ~hi:nx worker
          end;
          Pairs.of_rows_unchecked rows))

let project ?(domains = 1) ?(strategy = Matrix) ?plan ~r ~s () =
  Obs.span "two_path.project" (fun () ->
      let t0 = Jp_util.Timer.now () in
      let phases = ref [] in
      let plan =
        match plan with
        | Some p -> p
        | None ->
          phase phases "plan" (fun () ->
              Optimizer.plan ~domains ~kind:Jp_matrix.Cost.Boolean ~r ~s ())
      in
      let result =
        match plan.decision with
        | Optimizer.Wcoj ->
          phase phases "wcoj" (fun () -> Jp_wcoj.Expand.project ~domains ~r ~s ())
        | Optimizer.Partitioned { d1; d2 } ->
          let p = phase phases "partition" (fun () -> Partition.make ~r ~s ~d1 ~d2) in
          partitioned_project ~phases ~domains ~strategy ~r ~s p
      in
      if Obs.recording () then
        Obs.record_plan ~label:"two_path"
          ~decision:(Optimizer.decision_to_string plan.decision)
          ~est_out:plan.est_out ~join_size:plan.join_size
          ~est_seconds:plan.est_seconds ~actual_out:(Pairs.count result)
          ~actual_seconds:(Jp_util.Timer.now () -. t0)
          ~phases:(List.rev !phases);
      result)

let project_with_plan_info ?(domains = 1) ?(strategy = Matrix) ~r ~s () =
  let plan = Optimizer.plan ~domains ~kind:Jp_matrix.Cost.Boolean ~r ~s () in
  (project ~domains ~strategy ~plan ~r ~s (), plan)

(* ------------------------------------------------------------------ *)
(* Exact-count evaluation (partition on the join variable only)        *)
(* ------------------------------------------------------------------ *)

(* A pair's witnesses can be split between light and heavy y values, so
   counts from the expansion and from the count-matrix product are summed
   per pair before freezing the row. *)
let counted_partitioned ~phases ~domains ~r ~s ~d1 ~matrix ~cap =
  let ny = max (Relation.dst_count r) (Relation.dst_count s) in
  let deg_ry y = if y < Relation.dst_count r then Relation.deg_dst r y else 0 in
  let deg_sy y = if y < Relation.dst_count s then Relation.deg_dst s y else 0 in
  let light_y = Array.init ny (fun y -> deg_ry y <= d1 || deg_sy y <= d1) in
  (* Matrix dimensions: endpoints adjacent to at least one heavy y. *)
  let heavy_y = Vec.create () in
  Array.iteri (fun y light -> if not light then Vec.push heavy_y y) light_y;
  let heavy_y = Vec.to_array heavy_y in
  let touched rel =
    let seen = Array.make (Relation.src_count rel) false in
    Array.iter
      (fun b ->
        if b < Relation.dst_count rel then
          Array.iter (fun a -> seen.(a) <- true) (Relation.adj_dst rel b))
      heavy_y;
    let ids = Vec.create () in
    Array.iteri (fun a hit -> if hit then Vec.push ids a) seen;
    Vec.to_array ids
  in
  let hx = touched r and hz = touched s in
  let u = Array.length hx and v = Array.length heavy_y and w = Array.length hz in
  let fits = u * v <= cap && v * w <= cap && u * w <= cap in
  let use_matrix = matrix && v > 0 && fits in
  let x_index = Array.make (Relation.src_count r) (-1) in
  Array.iteri (fun i a -> x_index.(a) <- i) hx;
  let product =
    if not use_matrix then None
    else
      phase phases "heavy-count-mm" (fun () ->
          (* The count product A·Bᵀ over bit-packed rows (62 multiply-adds
             per word op): A rows are x's heavy-y bitsets, B rows are z's
             heavy-y bitsets. *)
          let y_index = Array.make ny (-1) in
          Array.iteri (fun j b -> y_index.(b) <- j) heavy_y;
          let heavy_row rel a =
            let bits = Jp_util.Vec.create () in
            Array.iter
              (fun b ->
                if b < ny then begin
                  let j = y_index.(b) in
                  if j >= 0 then Jp_util.Vec.push bits j
                end)
              (Relation.adj_src rel a);
            Jp_util.Vec.to_array bits
          in
          let m1 = Boolmat.of_adjacency ~rows:u ~cols:v (fun i -> heavy_row r hx.(i)) in
          let m2 = Boolmat.of_adjacency ~rows:w ~cols:v (fun l -> heavy_row s hz.(l)) in
          Some (Boolmat.count_product ~domains m1 m2))
  in
  let treat_all_light = product = None in
  let nx = Relation.src_count r in
  let rows = Array.make nx ([||], [||]) in
  phase phases "count-merge" (fun () ->
      Obs.span "two_path.count_merge" (fun () ->
          let worker lo hi =
            let nz = Relation.src_count s in
            let stamps = Array.make nz (-1) in
            let counts = Array.make nz 0 in
            let buf = Vec.create ~capacity:256 () in
            let obs = Obs.recording () in
            let light_scans = ref 0 and presented = ref 0 and misses = ref 0 in
            for a = lo to hi - 1 do
              let stamp = a in
              Vec.clear buf;
              let bump c k =
                if Array.unsafe_get stamps c <> stamp then begin
                  Array.unsafe_set stamps c stamp;
                  Array.unsafe_set counts c k;
                  Vec.push buf c
                end
                else Array.unsafe_set counts c (Array.unsafe_get counts c + k)
              in
              Array.iter
                (fun b ->
                  if treat_all_light || light_y.(b) then begin
                    let zs = Relation.adj_dst s b in
                    if obs then begin
                      light_scans := !light_scans + Array.length zs;
                      presented := !presented + Array.length zs
                    end;
                    Array.iter (fun c -> bump c 1) zs
                  end)
                (Relation.adj_src r a);
              (match product with
              | Some m ->
                let i = x_index.(a) in
                if i >= 0 then
                  Array.iteri
                    (fun l c ->
                      let k = Intmat.get m i l in
                      if k > 0 then begin
                        if obs then Stdlib.incr presented;
                        bump c k
                      end)
                    hz
              | None -> ());
              if obs then misses := !misses + Vec.length buf;
              Vec.sort_dedup buf;
              let zs = Vec.to_array buf in
              let cs = Array.map (fun c -> counts.(c)) zs in
              rows.(a) <- (zs, cs)
            done;
            if obs then begin
              Obs.add Obs.C.light_probes !light_scans;
              Obs.add Obs.C.stamp_misses !misses;
              Obs.add Obs.C.stamp_hits (!presented - !misses)
            end
          in
          if domains <= 1 then worker 0 nx
          else begin
            let per = (nx + domains - 1) / domains in
            Jp_parallel.Pool.parallel_for_ranges ~domains ~chunk:per ~lo:0
              ~hi:nx worker
          end;
          Counted_pairs.of_rows_unchecked rows))

let project_counts ?(domains = 1) ?(strategy = Matrix) ?plan
    ?(matrix_cell_cap = 200_000_000) ~r ~s () =
  Obs.span "two_path.project_counts" (fun () ->
      let t0 = Jp_util.Timer.now () in
      let phases = ref [] in
      let plan =
        match plan with
        | Some p -> p
        | None -> phase phases "plan" (fun () -> Optimizer.plan_counts ~domains ~r ~s ())
      in
      let result =
        match (plan.decision, strategy) with
        | Optimizer.Wcoj, _ | _, Combinatorial ->
          phase phases "wcoj" (fun () -> Jp_wcoj.Expand.project_counts ~domains ~r ~s ())
        | Optimizer.Partitioned { d1; d2 = _ }, Matrix ->
          counted_partitioned ~phases ~domains ~r ~s ~d1 ~matrix:true
            ~cap:matrix_cell_cap
      in
      if Obs.recording () then
        Obs.record_plan ~label:"two_path.counts"
          ~decision:(Optimizer.decision_to_string plan.decision)
          ~est_out:plan.est_out ~join_size:plan.join_size
          ~est_seconds:plan.est_seconds
          ~actual_out:(Counted_pairs.count result)
          ~actual_seconds:(Jp_util.Timer.now () -. t0)
          ~phases:(List.rev !phases);
      result)
