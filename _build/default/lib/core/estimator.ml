module Relation = Jp_relation.Relation

let active_src r =
  let n = ref 0 in
  for a = 0 to Relation.src_count r - 1 do
    if Relation.deg_src r a > 0 then incr n
  done;
  !n

let join_size ~r ~s = Relation.join_size_on_dst [ r; s ]

let bounds ~r ~s =
  let out_join = join_size ~r ~s in
  let dom_x = active_src r and dom_z = active_src s in
  let n = max 1 (max (Relation.size r) (Relation.size s)) in
  let ratio = out_join / n in
  let lower = max (max dom_x dom_z) (ratio * ratio) in
  let upper = min (dom_x * dom_z) out_join in
  (* Degenerate inputs can invert the sandwich; keep it consistent. *)
  let upper = max upper 1 in
  let lower = max 1 (min lower upper) in
  (lower, upper)

let sampled ?(seed = 0x5EED) ?(sample = 64) ~r ~s () =
  let lower, upper = bounds ~r ~s in
  let nx = Relation.src_count r in
  let active = Array.of_seq (Seq.filter (fun a -> Relation.deg_src r a > 0) (Seq.init nx (fun a -> a))) in
  let n_active = Array.length active in
  if n_active = 0 then 0
  else begin
    let rng = Jp_util.Rng.create seed in
    let sample = min sample n_active in
    let chosen = Array.init sample (fun _ -> active.(Jp_util.Rng.int rng n_active)) in
    let stamps = Array.make (Relation.src_count s) (-1) in
    let total = ref 0 in
    Array.iteri
      (fun idx a ->
        Array.iter
          (fun b ->
            Array.iter
              (fun c ->
                if Array.unsafe_get stamps c <> idx then begin
                  Array.unsafe_set stamps c idx;
                  incr total
                end)
              (Relation.adj_dst s b))
          (Relation.adj_src r a))
      chosen;
    let scaled =
      int_of_float (float_of_int !total /. float_of_int sample *. float_of_int n_active)
    in
    max lower (min upper scaled)
  end

let estimate ~r ~s =
  let lower, upper = bounds ~r ~s in
  let g = sqrt (float_of_int lower *. float_of_int upper) in
  max lower (min upper (int_of_float g))
