lib/core/partition.ml: Array Format Jp_relation Jp_util
