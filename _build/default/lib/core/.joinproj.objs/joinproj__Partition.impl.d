lib/core/partition.ml: Array Format Jp_obs Jp_relation Jp_util
