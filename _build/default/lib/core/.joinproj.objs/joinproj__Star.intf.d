lib/core/star.mli: Jp_relation
