lib/core/factorized.ml: Array Hashtbl Jp_relation Jp_util Jp_wcoj List Optimizer Partition Seq
