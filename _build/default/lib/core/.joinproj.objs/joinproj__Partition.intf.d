lib/core/partition.mli: Format Jp_relation
