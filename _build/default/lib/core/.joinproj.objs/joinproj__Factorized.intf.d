lib/core/factorized.mli: Jp_relation Optimizer
