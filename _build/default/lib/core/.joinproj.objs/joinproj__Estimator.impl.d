lib/core/estimator.ml: Array Jp_relation Jp_util Seq
