lib/core/optimizer.mli: Jp_matrix Jp_relation
