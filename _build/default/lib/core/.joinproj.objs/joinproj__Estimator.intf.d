lib/core/estimator.mli: Jp_relation
