lib/core/joinproj.ml: Estimator Factorized Optimizer Partition Star Two_path
