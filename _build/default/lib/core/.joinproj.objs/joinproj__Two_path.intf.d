lib/core/two_path.mli: Jp_relation Optimizer
