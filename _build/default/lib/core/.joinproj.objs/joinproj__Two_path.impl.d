lib/core/two_path.ml: Array Jp_matrix Jp_obs Jp_parallel Jp_relation Jp_util Jp_wcoj List Optimizer Partition Stdlib
