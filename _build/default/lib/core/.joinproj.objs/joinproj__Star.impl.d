lib/core/star.ml: Array Hashtbl Jp_matrix Jp_relation Jp_util Jp_wcoj Seq
