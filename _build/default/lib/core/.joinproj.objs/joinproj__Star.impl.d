lib/core/star.ml: Array Float Hashtbl Jp_matrix Jp_obs Jp_relation Jp_util Jp_wcoj List Printf Seq
