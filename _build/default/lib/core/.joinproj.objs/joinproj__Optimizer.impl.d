lib/core/optimizer.ml: Array Estimator Float Jp_matrix Jp_relation Printf
