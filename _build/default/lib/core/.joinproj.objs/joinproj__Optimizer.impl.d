lib/core/optimizer.ml: Array Estimator Float Jp_matrix Jp_obs Jp_relation Printf
