(** Output-size estimation for Q̈(x,z) = R(x,y), S(z,y) (Section 5).

    The paper sandwiches the projected output size:
    max(|dom(x)|, (|OUT{_⋈}|/N)²) ≤ |OUT| ≤ min(|dom(x)|·|dom(z)|, |OUT{_⋈}|)
    and estimates |OUT| as the geometric mean of the two bounds.  All
    quantities are computable in linear time from the relation indexes. *)

module Relation = Jp_relation.Relation

val active_src : Relation.t -> int
(** Number of x values with at least one tuple. *)

val join_size : r:Relation.t -> s:Relation.t -> int
(** |OUT{_⋈}| = Σ{_y} deg{_R}(y)·deg{_S}(y), the full 2-path join size. *)

val estimate : r:Relation.t -> s:Relation.t -> int
(** Geometric-mean estimate of |π{_xz}(R ⋈ S)|, clamped to the bounds. *)

val bounds : r:Relation.t -> s:Relation.t -> int * int
(** The (lower, upper) sandwich used by {!estimate}. *)

val sampled : ?seed:int -> ?sample:int -> r:Relation.t -> s:Relation.t -> unit -> int
(** Sampling refinement (the better join-project estimators the paper's
    future-work section calls for): expands a uniform sample of [sample]
    (default 64) x values exactly with the stamp-vector join and
    extrapolates Σ|row| to the full domain.  Unbiased, O(sample · avg
    expansion) time, and clamped to {!bounds}. *)
