(** Factorized (compressed) representation of a join-project result.

    The paper's graph-analytics motivation (Section 1) is serving views
    like the co-author graph V(x,y) = R(x,p), R(y,p) without materializing
    them; it credits matrix multiplication's "implicit factorization of
    the output formed by heavy values" for MMJoin's space efficiency, and
    cites compressed CQ-result representations \[19, 35\].

    This module makes that factorization a first-class value.  The output
    of Q̈(x,z) = R(x,y) ⋈ S(z,y) is stored as

    - the {e light} pairs, materialized as CSR rows (they are few:
      bounded by N·Δ₁ + |OUT|·Δ₂); plus
    - one {e biclique} X(b) × Z(b) per heavy witness b, stored as the two
      sorted id arrays — Σ(|X(b)| + |Z(b)|) ≤ 2N integers no matter how
      large the materialized product would be.

    Membership, enumeration and counting are answered directly from this
    representation; on community-structured data it is orders of magnitude
    smaller than the explicit pair set (see ABL-COMPRESS). *)

module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs

type t

val build :
  ?plan:Optimizer.plan -> ?thresholds:int * int -> r:Relation.t -> s:Relation.t ->
  unit -> t
(** Builds the compressed view.  Thresholds come from [plan] /
    [thresholds] / Algorithm 3, in that priority order; a [Wcoj] plan
    materializes everything as light pairs (no bicliques). *)

val mem : t -> int -> int -> bool
(** O(log) in the light part plus one probe per biclique containing x. *)

val iter : (int -> int -> unit) -> t -> unit
(** Enumerates every distinct pair exactly once (per-x stamp dedup across
    light rows and bicliques). *)

val count : t -> int
(** Number of distinct pairs, |OUT| (computed by streaming {!iter}'s
    dedup, O(|OUT|) time, O(dom z) space). *)

val stored_ints : t -> int
(** Integers stored by the representation: the compression denominator. *)

val bicliques : t -> int
(** Number of heavy-witness bicliques. *)

val to_pairs : t -> Pairs.t
(** Materializes (decompresses) the full pair set. *)

val of_pairs : Pairs.t -> t
(** Trivial (uncompressed) wrapper, for comparisons. *)
