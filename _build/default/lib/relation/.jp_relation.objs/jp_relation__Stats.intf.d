lib/relation/stats.mli:
