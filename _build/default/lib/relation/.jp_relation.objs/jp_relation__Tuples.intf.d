lib/relation/tuples.mli:
