lib/relation/relation.mli: Format
