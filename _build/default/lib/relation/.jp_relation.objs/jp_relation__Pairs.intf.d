lib/relation/pairs.mli:
