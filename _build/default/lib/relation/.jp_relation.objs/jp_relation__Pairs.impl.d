lib/relation/pairs.ml: Array Jp_util
