lib/relation/counted_pairs.mli: Pairs
