lib/relation/stats.ml: Array Jp_util
