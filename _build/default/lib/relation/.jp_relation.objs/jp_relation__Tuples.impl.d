lib/relation/tuples.ml: Array Hashtbl Jp_util List
