lib/relation/counted_pairs.ml: Array Jp_util Pairs
