lib/relation/relation.ml: Array Format Jp_util List
