type t = { rows : int array array; total : int }

let total_of rows =
  Array.fold_left (fun acc r -> acc + Array.length r) 0 rows

let of_rows rows =
  Array.iter
    (fun r ->
      if not (Jp_util.Sorted.is_strictly_sorted r) then
        invalid_arg "Pairs.of_rows: row not strictly increasing")
    rows;
  { rows; total = total_of rows }

let of_rows_unchecked rows = { rows; total = total_of rows }

let empty n = { rows = Array.make n [||]; total = 0 }

let src_count t = Array.length t.rows

let count t = t.total

let row t x = t.rows.(x)

let mem t x z = x < Array.length t.rows && Jp_util.Sorted.mem t.rows.(x) z

let iter f t =
  Array.iteri (fun x r -> Array.iter (fun z -> f x z) r) t.rows

let to_list t =
  let acc = ref [] in
  for x = Array.length t.rows - 1 downto 0 do
    let r = t.rows.(x) in
    for i = Array.length r - 1 downto 0 do
      acc := (x, r.(i)) :: !acc
    done
  done;
  !acc

let equal a b =
  let na = Array.length a.rows and nb = Array.length b.rows in
  let n = max na nb in
  a.total = b.total
  &&
  let rec go x =
    x >= n
    ||
    let ra = if x < na then a.rows.(x) else [||]
    and rb = if x < nb then b.rows.(x) else [||] in
    ra = rb && go (x + 1)
  in
  go 0

let union a b =
  let n = max (Array.length a.rows) (Array.length b.rows) in
  let rows =
    Array.init n (fun x ->
        let ra = if x < Array.length a.rows then a.rows.(x) else [||]
        and rb = if x < Array.length b.rows then b.rows.(x) else [||] in
        if Array.length ra = 0 then rb
        else if Array.length rb = 0 then ra
        else Jp_util.Sorted.union ra rb)
  in
  of_rows_unchecked rows
