(** Deduplicated sets of k-tuples — the output of star queries Q*{_k}.

    When the component id spaces are small enough that a whole tuple packs
    into one native int (k·⌈log₂ id space⌉ ≤ 62 bits), tuples are kept as
    packed ints in a sorted array: dedup is a sort, memory is one word per
    tuple.  Otherwise a hash set over boxed keys is used.  Construction
    goes through a mutable {!builder}. *)

type t

val arity : t -> int

val count : t -> int
(** Number of distinct tuples. *)

val mem : t -> int array -> bool

val iter : (int array -> unit) -> t -> unit
(** The callback's array is reused between calls — copy it to keep it.
    Packed representations iterate in ascending packed order. *)

val to_list : t -> int list list
(** Sorted list of tuples; for tests. *)

val equal : t -> t -> bool

type builder

val create_builder : arity:int -> dims:int array -> builder
(** [dims.(i)] bounds (exclusively) the ids in component [i]. *)

val add : builder -> int array -> unit
(** Records a tuple (duplicates welcome).  The array is copied if needed. *)

val build : builder -> t
(** Deduplicates and freezes.  The builder must not be reused. *)

val packable : dims:int array -> bool
(** Whether the packed-int representation applies to these dimensions. *)
