(** Deduplicated join-project output: a set of (x, z) pairs.

    Stored CSR-style — for every x id a strictly increasing array of z ids —
    which makes |OUT| counting O(src ids), enumeration allocation-free, and
    set-equality comparisons in tests trivial.  This is the "implicit
    factorization of the output" the paper credits for the space efficiency
    of the matrix representation (Section 7.2). *)

type t

val of_rows : int array array -> t
(** [of_rows rows] where [rows.(x)] is the strictly increasing array of
    partners of [x].  Ownership transfers; rows are validated. *)

val of_rows_unchecked : int array array -> t
(** Trusted variant for hot paths (rows already sorted by construction). *)

val empty : int -> t
(** [empty n] has [n] (empty) rows. *)

val src_count : t -> int

val count : t -> int
(** Total number of pairs, i.e. |OUT|. *)

val row : t -> int -> int array
(** Shared array — do not mutate. *)

val mem : t -> int -> int -> bool

val iter : (int -> int -> unit) -> t -> unit

val to_list : t -> (int * int) list
(** Ascending (x, z) order; for tests and small outputs. *)

val equal : t -> t -> bool
(** Same pair sets (row counts padded with empties are ignored). *)

val union : t -> t -> t
(** Set union; rows are merged pairwise. *)
