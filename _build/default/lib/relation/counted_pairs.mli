(** Join-project output with witness multiplicities.

    For every pair (x, z) in the projection, the number of join witnesses y
    — i.e. the entries of the count matrix product of Section 2.2.  Set
    similarity thresholds (≥ c), ordered enumeration (sort by count) and
    set containment (count = |set|) are all filters over this structure. *)

type t

val of_rows : (int array * int array) array -> t
(** [of_rows rows] where [rows.(x) = (zs, counts)]: [zs] strictly
    increasing, [counts.(i) > 0] the multiplicity of [(x, zs.(i))].
    Validated. *)

val of_rows_unchecked : (int array * int array) array -> t

val empty : int -> t

val src_count : t -> int

val count : t -> int
(** Number of distinct pairs. *)

val total_witnesses : t -> int
(** Σ multiplicities = |OUT{_ ⋈}| restricted to the represented pairs. *)

val get : t -> int -> int -> int
(** [get t x z] is the multiplicity of (x, z), 0 if absent. *)

val row : t -> int -> int array * int array

val iter : (int -> int -> int -> unit) -> t -> unit
(** [iter f t] calls [f x z multiplicity]. *)

val filter_ge : t -> int -> t
(** [filter_ge t c] keeps pairs with multiplicity ≥ c — the SSJ result. *)

val to_pairs : t -> Pairs.t
(** Forgets multiplicities. *)

val sorted_desc : t -> (int * int * int) array
(** All (x, z, multiplicity) triples sorted by decreasing multiplicity —
    the ordered-SSJ enumeration order (ties broken by (x, z)). *)

val equal : t -> t -> bool
