(** Degree-distribution indexes of Section 5.

    The cost-based optimizer (Algorithm 3) needs, for an arbitrary degree
    threshold δ, exact answers to:

    - [count(w_δ)] — how many values of a variable have degree ≤ δ;
    - [sum(y_δ) = Σ_{light b} |L(b)|²] — deduplication effort over light
      y values;
    - [sum(x_δ)] — deduplication effort over light x values;
    - [cdf_x(y_δ)] — how many x's are connected to light y values.

    All are answered in O(log n) from one O(n log n) build: value ids sorted
    by degree with prefix sums of degree, degree² and an arbitrary weight
    per value.  Only values of nonzero degree participate (the paper's
    preprocessing removes non-contributing tuples first). *)

type t

val of_degrees : ?weights:int array -> int array -> t
(** [of_degrees ~weights deg] builds the index over all ids [v] with
    [deg.(v) > 0].  [weights] (same length) feeds {!weight_le}; it defaults
    to the degrees themselves. *)

val active_count : t -> int
(** Number of values with nonzero degree. *)

val max_degree : t -> int

val count_le : t -> int -> int
(** [count_le t d] = #{v | 0 < deg v ≤ d}: the index [count(w_δ)]. *)

val count_gt : t -> int -> int
(** Complement of {!count_le} over active values: the number of heavy
    values for threshold [d]. *)

val sum_le : t -> int -> int
(** Σ deg v over active v with deg v ≤ d — [cdf] style mass of light
    values. *)

val sum_sq_le : t -> int -> int
(** Σ (deg v)² over active v with deg v ≤ d — the index [sum(y_δ)]. *)

val weight_le : t -> int -> int
(** Σ weights(v) over active v with deg v ≤ d — the index [cdf_x(y_δ)]
    when [weights] carries the other relation's degrees. *)

val values_le : t -> int -> int array
(** Ids of the active values with degree ≤ d (unspecified order; fresh
    array). *)

val nth_smallest_degree : t -> int -> int
(** [nth_smallest_degree t k] is the k-th (0-based) smallest active degree;
    used by SizeAware's boundary search. *)
