(** Shared plumbing for the set-similarity algorithms.

    A set family is a relation {set id, element id} ({!Relation.of_sets});
    the SSJ result is the set of unordered pairs (i, j), i < j, of distinct
    sets whose intersection has size ≥ c.  All algorithms return it as
    {!Pairs.t} keyed by the smaller id. *)

module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Counted_pairs = Jp_relation.Counted_pairs

val upper_pairs : ?keep:(int -> int -> bool) -> Counted_pairs.t -> c:int -> Pairs.t
(** Pairs (i, j) with i < j and multiplicity ≥ c, optionally filtered by
    [keep i j]; the canonical way to turn a counted self-join into the SSJ
    result. *)

val pair_list : Pairs.t -> (int * int) list
(** Sorted pair list (tests and ordered enumeration). *)

val iter_c_subsets : int array -> c:int -> (int list -> unit) -> unit
(** [iter_c_subsets elems ~c f] calls [f] once per size-[c] subset of the
    strictly increasing [elems], as an increasing list.  The number of
    calls is C(|elems|, c) — callers are responsible for only passing
    {e light} sets (that is SizeAware's whole point). *)

val overlap : Relation.t -> int -> int -> int
(** Exact |set a ∩ set b| by sorted-merge — the verification primitive
    SizeAware needs for ordered enumeration. *)

val binom_capped : int -> int -> cap:int -> int
(** C(n, k) saturating at [cap] (cost estimation without overflow). *)
