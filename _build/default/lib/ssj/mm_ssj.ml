module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Counted_pairs = Jp_relation.Counted_pairs

let join_counted ?(domains = 1) r = Joinproj.Two_path.project_counts ~domains ~r ~s:r ()

let join ?(domains = 1) ~c r =
  if c < 1 then invalid_arg "Mm_ssj.join: c must be >= 1";
  Common.upper_pairs (join_counted ~domains r) ~c
