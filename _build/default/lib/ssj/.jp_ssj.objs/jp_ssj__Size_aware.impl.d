lib/ssj/size_aware.ml: Array Common Hashtbl Jp_relation Jp_util
