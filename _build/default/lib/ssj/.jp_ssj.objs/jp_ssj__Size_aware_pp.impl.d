lib/ssj/size_aware_pp.ml: Array Common Hashtbl Joinproj Jp_relation Jp_util Overlap_tree Size_aware
