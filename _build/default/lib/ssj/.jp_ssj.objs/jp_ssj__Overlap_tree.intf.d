lib/ssj/overlap_tree.mli: Jp_relation
