lib/ssj/ordered.ml: Array Common Jp_relation Jp_util List Mm_ssj
