lib/ssj/multi.mli: Jp_relation
