lib/ssj/mm_ssj.mli: Jp_relation
