lib/ssj/common.ml: Array Jp_relation Jp_util
