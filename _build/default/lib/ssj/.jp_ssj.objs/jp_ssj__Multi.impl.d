lib/ssj/multi.ml: Array Hashtbl Jp_relation Jp_wcoj
