lib/ssj/mm_ssj.ml: Common Joinproj Jp_obs Jp_relation
