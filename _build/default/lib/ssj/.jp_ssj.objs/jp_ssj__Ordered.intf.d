lib/ssj/ordered.mli: Jp_relation
