lib/ssj/size_aware_pp.mli: Jp_relation
