lib/ssj/overlap_tree.ml: Array Hashtbl Jp_relation Jp_util List Seq
