lib/ssj/common.mli: Jp_relation
