lib/ssj/size_aware.mli: Jp_relation
