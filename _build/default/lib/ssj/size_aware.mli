(** SizeAware — the size-aware overlap set-similarity join of Deng, Tao
    and Li \[20\] (Algorithm 2 of the paper), the baseline SizeAware++ and
    MMJoin are measured against.

    Sets are split at a size boundary x: {e heavy} sets (size ≥ x) are
    joined against everything by scanning inverted lists and counting;
    {e light} sets enumerate their c-subsets into an inverted index whose
    buckets yield the light-light pairs.  [get_size_boundary] balances the
    two costs, as in the original paper. *)

module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs

val get_size_boundary : Relation.t -> c:int -> int
(** The size boundary whose heavy-scan and light-subset cost estimates are
    closest — sets of size ≥ boundary are heavy.  At least [c]. *)

val join : ?boundary:int -> c:int -> Relation.t -> Pairs.t
(** Unordered SSJ: pairs of distinct sets sharing ≥ [c] elements.
    [boundary] overrides {!get_size_boundary} (tests use this to force
    both code paths). *)

val join_heavy_only : boundary:int -> c:int -> Relation.t -> Pairs.t
(** Only the heavy-scan phase (pairs with at least one heavy set);
    exposed so SizeAware++ can recombine phases. *)

val join_light_only : boundary:int -> c:int -> Relation.t -> Pairs.t
(** Only the light c-subset phase (light-light pairs). *)
