(** Ordered SSJ: enumerate similar set pairs in decreasing overlap order
    (Section 4, "Ordered SSJ").

    The matrix-based join already knows each pair's exact overlap, so
    ordering is a sort of the counted output.  SizeAware-style algorithms
    only discover {e that} a pair overlaps — each pair's intersection must
    be recomputed by merging before sorting, the extra cost Figures 5e/5f
    show. *)

module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs

val via_counts : ?domains:int -> c:int -> Relation.t -> (int * int * int) array
(** MMJoin ordered SSJ: (i, j, overlap) triples, overlap ≥ c, sorted by
    decreasing overlap (ties by (i, j)). *)

val via_pairs : Relation.t -> c:int -> Pairs.t -> (int * int * int) array
(** Orders an already-computed unordered result (e.g. SizeAware's) by
    re-deriving each pair's overlap with a sorted merge. *)

val top_k : ?domains:int -> k:int -> c:int -> Relation.t -> (int * int * int) array
(** The [k] most-similar pairs (ties broken by ascending (i, j)), without
    sorting the whole result: a size-k min-heap sweeps the counted join
    once, O(|pairs| log k).  Agrees with the prefix of {!via_counts}. *)
