(** Multi-way set similarity (the Section 2.1 remark: "the generalization
    of set similarity to more than two relations can be defined in a
    similar fashion").

    Given k set families R₁..R{_k} over a shared element domain, find the
    k-tuples (a₁, …, a{_k}) with |R₁(a₁) ∩ … ∩ R{_k}(a{_k})| ≥ c — the
    counted star query, thresholded.  Evaluation iterates the shared
    elements and accumulates per-tuple witness counts over the cross
    products of inverted lists (output-bounded after the light-element
    pruning that skips elements that cannot reach c with the candidate's
    remaining elements is unnecessary here: counts are exact). *)

module Relation = Jp_relation.Relation
module Tuples = Jp_relation.Tuples

val join : c:int -> Relation.t array -> Tuples.t
(** Tuples with joint intersection ≥ c.  Arity ≥ 2.  Cost is bounded by
    the full star join (Σ_y Π deg) — size inputs accordingly. *)

val joint_overlap : Relation.t array -> int array -> int
(** |∩ᵢ Rᵢ(aᵢ)| for one candidate tuple (the verification primitive;
    leapfrog over the k sets). *)
