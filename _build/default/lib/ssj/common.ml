module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Counted_pairs = Jp_relation.Counted_pairs

let upper_pairs ?keep counted ~c =
  let keep = match keep with Some f -> f | None -> fun _ _ -> true in
  let n = Counted_pairs.src_count counted in
  let rows =
    Array.init n (fun i ->
        let zs, cs = Counted_pairs.row counted i in
        let buf = Jp_util.Vec.create () in
        Array.iteri
          (fun idx j -> if j > i && cs.(idx) >= c && keep i j then Jp_util.Vec.push buf j)
          zs;
        Jp_util.Vec.to_array buf)
  in
  Pairs.of_rows_unchecked rows

let pair_list = Pairs.to_list

let iter_c_subsets elems ~c f =
  let n = Array.length elems in
  if c >= 1 && c <= n then begin
    let chosen = Array.make c 0 in
    let rec go start depth =
      if depth = c then f (Array.to_list chosen)
      else
        for i = start to n - (c - depth) do
          chosen.(depth) <- elems.(i);
          go (i + 1) (depth + 1)
        done
    in
    go 0 0
  end

let overlap r a b =
  Jp_util.Sorted.intersect_count (Relation.adj_src r a) (Relation.adj_src r b)

let binom_capped n k ~cap =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let acc = ref 1 in
    (try
       for i = 1 to k do
         acc := !acc * (n - k + i) / i;
         if !acc >= cap then begin
           acc := cap;
           raise Exit
         end
       done
     with Exit -> ());
    !acc
  end
