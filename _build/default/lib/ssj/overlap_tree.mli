(** Prefix-tree computation sharing for light-set expansion (Example 6).

    Sets are rewritten under a global element order — inverted-list length
    descending, so large lists sit near the root and are merged once — and
    inserted into a prefix tree.  A single DFS maintains, for the current
    path P, the overlap count |s ∩ P| of every candidate set s (counts
    only grow on the way down and are undone on the way up), plus the
    stack O of candidates whose count has reached c.  When the DFS stands
    on a node where a set A terminates, P = A, so O is exactly the sets
    with |s ∩ A| ≥ c — the paper's materialized (O, U) pairs fall out of
    the traversal for free, with the same total cost: one inverted-list
    merge per distinct prefix instead of one per set. *)

module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs

val similar_pairs : ?members:int array -> c:int -> Relation.t -> Pairs.t
(** All pairs (i, j), i < j, of member sets with |set i ∩ set j| ≥ c.
    [members] (default: every nonempty set) restricts both sides of the
    pairs — SizeAware++ passes the light sets. *)
