(** SizeAware++ — Section 4's three optimizations layered on SizeAware:

    - {b Heavy} : the heavy scan R ⋈ R{_h} becomes an output-sensitive
      counted join-project ({!Joinproj.Two_path.project_counts}), which
      beats the N·N/x inverted-list scan whenever the heavy join output
      is small;
    - {b Light} : the brute-force bucket pair enumeration becomes a
      boolean join-project over the {set, c-subset bucket} relation,
      deduplicating with matrix multiplication instead of a hash set;
    - {b Prefix} : light expansion is shared across sets with common
      prefixes via {!Overlap_tree} (Example 6's materialization).

    The flags reproduce Figure 8's ablation: [none] is SizeAware itself,
    [light], [heavy] and [prefix] switch the optimizations on
    cumulatively. *)

module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs

type options = { mm_heavy : bool; mm_light : bool; prefix : bool }

val all_on : options

val ablation : [ `No_op | `Light | `Heavy | `Prefix ] -> options
(** Figure 8's cumulative configurations. *)

val join :
  ?domains:int -> ?options:options -> ?boundary:int -> c:int -> Relation.t -> Pairs.t
(** Unordered SSJ, same contract as {!Size_aware.join}. *)
