(** Worst-case-optimal evaluation of the star query
    Q*{_k}(x₁,…,x{_k}) = R₁(x₁,y), …, R{_k}(x{_k},y).

    Because every relation joins on the single variable y, the generic
    worst-case-optimal join degenerates to: enumerate the y's present in
    every relation, then emit the cross product of their inverted lists.
    That is exactly the O(|D| + |OUT{_⋈}|) full enumeration the baselines
    (and steps 1–2 of the paper's star algorithm) need. *)

module Relation = Jp_relation.Relation
module Tuples = Jp_relation.Tuples

val iter_full :
  ?restrict:int * (int -> int -> bool) ->
  Relation.t array ->
  (int array -> int -> unit) ->
  unit
(** [iter_full rels f] calls [f tuple y] for every tuple of the full join
    (before projection) and its witness y.  The tuple array is reused
    between calls.  [restrict (j, keep)] drops tuples whose j-th component
    c fails [keep c y] — this is how the algorithm runs the sub-joins
    R₁ ⋈ … ⋈ R{_j}⁻ ⋈ … ⋈ R{_k}. *)

val project :
  ?restrict:int * (int -> int -> bool) -> Relation.t array -> Tuples.t
(** Full join followed by projection on (x₁,…,x{_k}) with deduplication. *)

val join_size : ?restrict:int * (int -> int -> bool) -> Relation.t array -> int
(** |OUT{_⋈}| of the (possibly restricted) star join, computed from degree
    products without enumerating. *)
