lib/wcoj/leapfrog.mli:
