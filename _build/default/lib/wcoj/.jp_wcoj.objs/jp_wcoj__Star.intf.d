lib/wcoj/star.mli: Jp_relation
