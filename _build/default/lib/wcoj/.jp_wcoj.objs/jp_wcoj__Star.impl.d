lib/wcoj/star.ml: Array Jp_relation Seq
