lib/wcoj/expand.mli: Jp_relation
