lib/wcoj/expand.ml: Array Jp_obs Jp_parallel Jp_relation Jp_util
