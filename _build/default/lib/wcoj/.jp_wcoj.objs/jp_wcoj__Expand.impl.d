lib/wcoj/expand.ml: Array Jp_parallel Jp_relation Jp_util
