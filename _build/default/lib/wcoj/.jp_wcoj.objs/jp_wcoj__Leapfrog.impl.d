lib/wcoj/leapfrog.ml: Array Jp_util
