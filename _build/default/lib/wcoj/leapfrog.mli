(** Leapfrog k-ary intersection (Veldhuizen's leapfrog triejoin, restricted
    to a single shared variable — which is all a star query needs).

    Each relation contributes one strictly increasing array; the iterators
    chase each other's max with galloping search, giving
    O(k · min_len · log(max_len/min_len)) in the worst case and far less
    when the arrays are skewed. *)

val intersect : int array array -> int array
(** Intersection of all arrays.  [intersect [||]] raises
    [Invalid_argument]. *)

val iter : int array array -> (int -> unit) -> unit
(** Applies the callback to every common element in increasing order,
    without materializing the intersection. *)
