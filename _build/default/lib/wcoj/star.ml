module Relation = Jp_relation.Relation
module Tuples = Jp_relation.Tuples

let gather_lists ?restrict rels y =
  let lists =
    Array.map
      (fun r -> if y < Relation.dst_count r then Relation.adj_dst r y else [||])
      rels
  in
  (match restrict with
  | Some (j, keep) ->
    lists.(j) <- Array.of_seq (Seq.filter (fun c -> keep c y) (Array.to_seq lists.(j)))
  | None -> ());
  lists

let max_dst rels =
  Array.fold_left (fun acc r -> max acc (Relation.dst_count r)) 0 rels

let iter_full ?restrict rels f =
  let k = Array.length rels in
  if k = 0 then invalid_arg "Star.iter_full: no relations";
  let tuple = Array.make k 0 in
  for y = 0 to max_dst rels - 1 do
    let lists = gather_lists ?restrict rels y in
    if Array.for_all (fun l -> Array.length l > 0) lists then begin
      let rec fill i =
        if i = k then f tuple y
        else
          Array.iter
            (fun c ->
              tuple.(i) <- c;
              fill (i + 1))
            lists.(i)
      in
      fill 0
    end
  done

let project ?restrict rels =
  let k = Array.length rels in
  if k = 0 then invalid_arg "Star.project: no relations";
  let dims = Array.map Relation.src_count rels in
  let b = Tuples.create_builder ~arity:k ~dims in
  iter_full ?restrict rels (fun tuple _y -> Tuples.add b tuple);
  Tuples.build b

let join_size ?restrict rels =
  if Array.length rels = 0 then invalid_arg "Star.join_size: no relations";
  let total = ref 0 in
  for y = 0 to max_dst rels - 1 do
    let lists = gather_lists ?restrict rels y in
    let prod = Array.fold_left (fun acc l -> acc * Array.length l) 1 lists in
    total := !total + prod
  done;
  !total
