let iter arrays f =
  let k = Array.length arrays in
  if k = 0 then invalid_arg "Leapfrog.iter: no arrays";
  let pos = Array.make k 0 in
  let exhausted = ref false in
  Array.iter (fun a -> if Array.length a = 0 then exhausted := true) arrays;
  if not !exhausted then begin
    (* Invariant: candidate is the largest current key; p points at the
       iterator that must catch up. *)
    let candidate = ref arrays.(0).(0) in
    for i = 1 to k - 1 do
      if arrays.(i).(0) > !candidate then candidate := arrays.(i).(0)
    done;
    let p = ref 0 in
    let matches = ref 0 in
    while not !exhausted do
      let a = arrays.(!p) in
      let i = Jp_util.Sorted.gallop a ~start:pos.(!p) !candidate in
      if i >= Array.length a then exhausted := true
      else begin
        pos.(!p) <- i;
        if a.(i) = !candidate then begin
          incr matches;
          if !matches >= k then begin
            f !candidate;
            matches := 0;
            (* advance this iterator past the match *)
            let j = i + 1 in
            if j >= Array.length a then exhausted := true
            else begin
              pos.(!p) <- j;
              candidate := a.(j);
              matches := 1
            end
          end
        end
        else begin
          candidate := a.(i);
          matches := 1
        end;
        p := (!p + 1) mod k
      end
    done
  end

let intersect arrays =
  let v = Jp_util.Vec.create () in
  iter arrays (fun x -> Jp_util.Vec.push v x);
  Jp_util.Vec.to_array v
