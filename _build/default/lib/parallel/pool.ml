let available_cores () = Domain.recommended_domain_count ()

let default_chunk ~domains ~lo ~hi =
  let span = hi - lo in
  max 1 (span / (domains * 8))

(* Run [worker ()] on [domains] domains (including the calling one) and
   re-raise the first captured exception after everyone joined. *)
let run_workers ~domains worker =
  if domains <= 1 then worker ()
  else begin
    Jp_obs.add Jp_obs.C.pool_spawns (domains - 1);
    let failure = Atomic.make None in
    let guarded () =
      try worker ()
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        ignore (Atomic.compare_and_set failure None (Some (e, bt)))
    in
    let others = List.init (domains - 1) (fun _ -> Domain.spawn guarded) in
    guarded ();
    List.iter Domain.join others;
    match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let parallel_for_ranges ~domains ?chunk ~lo ~hi body =
  if hi > lo then
    if domains <= 1 then begin
      Jp_obs.incr Jp_obs.C.pool_tasks;
      body lo hi
    end
    else begin
      let chunk =
        match chunk with Some c when c > 0 -> c | _ -> default_chunk ~domains ~lo ~hi
      in
      let next = Atomic.make lo in
      let worker () =
        let continue = ref true in
        while !continue do
          let start = Atomic.fetch_and_add next chunk in
          if start >= hi then continue := false
          else begin
            Jp_obs.incr Jp_obs.C.pool_tasks;
            body start (min hi (start + chunk))
          end
        done
      in
      run_workers ~domains worker
    end

let parallel_for ~domains ?chunk ~lo ~hi body =
  parallel_for_ranges ~domains ?chunk ~lo ~hi (fun a b ->
      for i = a to b - 1 do
        body i
      done)

let map_reduce ~domains ?chunk ~lo ~hi ~combine ~init map =
  if domains <= 1 then begin
    let acc = ref init in
    for i = lo to hi - 1 do
      acc := combine !acc (map i)
    done;
    !acc
  end
  else begin
    let partials = Atomic.make [] in
    let chunk =
      match chunk with Some c when c > 0 -> c | _ -> default_chunk ~domains ~lo ~hi
    in
    let next = Atomic.make lo in
    let worker () =
      let local = ref init in
      let continue = ref true in
      while !continue do
        let start = Atomic.fetch_and_add next chunk in
        if start >= hi then continue := false
        else begin
          Jp_obs.incr Jp_obs.C.pool_tasks;
          for i = start to min hi (start + chunk) - 1 do
            local := combine !local (map i)
          done
        end
      done;
      (* lock-free push of the local result *)
      let rec push () =
        let old = Atomic.get partials in
        if not (Atomic.compare_and_set partials old (!local :: old)) then push ()
      in
      push ()
    in
    run_workers ~domains worker;
    List.fold_left combine init (Atomic.get partials)
  end
