lib/parallel/pool.mli:
