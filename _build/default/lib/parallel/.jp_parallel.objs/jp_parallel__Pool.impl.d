lib/parallel/pool.ml: Atomic Domain Jp_obs List Printexc
