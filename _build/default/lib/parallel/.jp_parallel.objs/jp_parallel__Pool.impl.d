lib/parallel/pool.ml: Atomic Domain List Printexc
