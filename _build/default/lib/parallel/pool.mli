(** Coordination-free data parallelism on OCaml 5 domains.

    The paper's parallel experiments (Figures 3b, 4d–g, 5d/g/h, 7) all rely
    on embarrassingly parallel partitioning: matrix row blocks and per-x
    join work need no communication between tasks.  This module provides
    exactly that: a bounded set of domains pulling chunk indices from a
    single atomic counter (dynamic load balancing, no locks).

    Exceptions raised inside worker bodies are captured and re-raised on the
    caller's domain after all workers have joined. *)

val available_cores : unit -> int
(** [Domain.recommended_domain_count ()]; the widest sensible [domains]
    argument on this machine. *)

val parallel_for :
  domains:int -> ?chunk:int -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for ~domains ~lo ~hi body] runs [body i] for every
    [lo <= i < hi] across [domains] domains.  [chunk] is the number of
    consecutive indices a worker claims at a time (default: picked so there
    are ~8 chunks per domain).  With [domains <= 1] it degenerates to a
    plain sequential loop with zero domain overhead. *)

val parallel_for_ranges :
  domains:int -> ?chunk:int -> lo:int -> hi:int -> (int -> int -> unit) -> unit
(** [parallel_for_ranges ~domains ~lo ~hi body] is like {!parallel_for} but
    hands each worker whole ranges: [body range_lo range_hi] with
    [lo <= range_lo < range_hi <= hi].  Lets the body hoist per-chunk
    scratch allocations. *)

val map_reduce :
  domains:int ->
  ?chunk:int ->
  lo:int ->
  hi:int ->
  combine:('a -> 'a -> 'a) ->
  init:'a ->
  (int -> 'a) ->
  'a
(** Per-domain local folds combined at the end; [combine] must be
    associative and [init] its identity.  The combination order is
    unspecified. *)
