(** Dense [int] count matrices.

    The join-project algorithms need the product of two 0/1 adjacency
    matrices *with multiplicities*: entry (a,c) of the product counts the
    witnesses y connecting a and c (used directly by set-similarity
    thresholds and ordered enumeration, Section 4).  Rows are unboxed
    [int array]s; the multiply is the same blocked i-k-j saxpy as
    {!Dense.mul}, skipping zero entries of the left matrix (heavy
    adjacency matrices are still sparse-ish in practice). *)

type t = private { data : int array array; rows : int; cols : int }

val create : rows:int -> cols:int -> t

val of_arrays : int array array -> t

val get : t -> int -> int -> int

val set : t -> int -> int -> int -> unit

val dims : t -> int * int

val mul : ?domains:int -> t -> t -> t

val nnz : t -> int
(** Number of nonzero entries. *)

val iter_nonzero : t -> (int -> int -> int -> unit) -> unit
(** [iter_nonzero m f] calls [f i j v] for every nonzero entry [v] at
    [(i,j)], row-major order. *)

val equal : t -> t -> bool
