(** Dense float matrices with a blocked multiply kernel.

    This is the stand-in for the paper's Eigen/MKL SGEMM: a cache-blocked
    i-k-j triple loop over unboxed [float array] rows, parallelized over row
    blocks with zero coordination (the property the paper exploits for
    near-linear multicore scaling in Figure 3b). *)

type t = private { data : float array array; rows : int; cols : int }

val create : rows:int -> cols:int -> t
(** All-zeros matrix. *)

val of_arrays : float array array -> t
(** Validates rectangularity; takes ownership of the arrays. *)

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val dims : t -> int * int

val mul : ?domains:int -> t -> t -> t
(** [mul a b] is the matrix product; [a.cols] must equal [b.rows].
    [domains] (default 1) distributes row blocks over that many domains. *)

val equal : t -> t -> bool

val frobenius : t -> float
(** Frobenius norm; handy for quick equality diagnostics in tests. *)
