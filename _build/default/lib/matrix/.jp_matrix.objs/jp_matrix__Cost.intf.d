lib/matrix/cost.mli:
