lib/matrix/boolmat.mli: Intmat Jp_util
