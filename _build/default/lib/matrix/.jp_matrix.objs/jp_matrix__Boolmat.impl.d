lib/matrix/boolmat.ml: Array Intmat Jp_parallel Jp_util
