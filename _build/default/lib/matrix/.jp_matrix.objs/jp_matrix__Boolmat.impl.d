lib/matrix/boolmat.ml: Array Intmat Jp_obs Jp_parallel Jp_util Stdlib
