lib/matrix/intmat.ml: Array Jp_parallel
