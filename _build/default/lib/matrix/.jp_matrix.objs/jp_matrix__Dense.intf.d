lib/matrix/dense.mli:
