lib/matrix/cost.ml: Array Boolmat Jp_parallel Jp_util Sys Unix
