lib/matrix/dense.ml: Array Jp_parallel
