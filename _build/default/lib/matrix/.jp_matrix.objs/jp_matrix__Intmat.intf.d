lib/matrix/intmat.mli:
