type t = { ids : (string, int) Hashtbl.t; mutable names : string array; mutable n : int }

let create () = { ids = Hashtbl.create 1024; names = Array.make 16 ""; n = 0 }

let intern t s =
  match Hashtbl.find_opt t.ids s with
  | Some id -> id
  | None ->
    let id = t.n in
    if id = Array.length t.names then begin
      let grown = Array.make (2 * Array.length t.names) "" in
      Array.blit t.names 0 grown 0 t.n;
      t.names <- grown
    end;
    t.names.(id) <- s;
    t.n <- t.n + 1;
    Hashtbl.add t.ids s id;
    id

let find t s = Hashtbl.find_opt t.ids s

let name t id =
  if id < 0 || id >= t.n then invalid_arg "Dictionary.name: unassigned id";
  t.names.(id)

let size t = t.n

let save t oc =
  for id = 0 to t.n - 1 do
    output_string oc t.names.(id);
    output_char oc '\n'
  done

let load ic =
  let t = create () in
  (try
     while true do
       ignore (intern t (input_line ic))
     done
   with End_of_file -> ());
  t
