(** String-to-id dictionary encoding.

    The engine works on dense int ids (Section 2.1's uniform-cost RAM
    model); this dictionary owns the mapping for external string-keyed
    data.  Ids are assigned densely in first-seen order, so a freshly
    imported relation has [src_count]/[dst_count] equal to the dictionary
    sizes. *)

type t

val create : unit -> t

val intern : t -> string -> int
(** Returns the existing id or assigns the next one. *)

val find : t -> string -> int option
(** Lookup without assignment. *)

val name : t -> int -> string
(** Inverse lookup.  Raises [Invalid_argument] for unassigned ids. *)

val size : t -> int

val save : t -> out_channel -> unit
(** One name per line, in id order. *)

val load : in_channel -> t
(** Reads names until EOF. *)
