lib/io/dictionary.ml: Array Hashtbl
