lib/io/dictionary.mli:
