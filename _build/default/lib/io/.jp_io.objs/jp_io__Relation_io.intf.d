lib/io/relation_io.mli: Dictionary Jp_relation
