lib/io/relation_io.ml: Dictionary Fun Jp_relation Jp_util List Printf String
