module Relation = Jp_relation.Relation

let header = "# joinproj relation v1"

let save r oc =
  output_string oc header;
  output_char oc '\n';
  Printf.fprintf oc "%d %d\n" (Relation.src_count r) (Relation.dst_count r);
  Relation.iter (fun x y -> Printf.fprintf oc "%d %d\n" x y) r

let save_file r path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> save r oc)

let split_two line =
  match String.split_on_char ' ' (String.trim line) with
  | [ a; b ] -> Some (a, b)
  | _ -> (
    (* tolerate tabs / repeated whitespace *)
    match
      List.filter
        (fun s -> s <> "")
        (String.split_on_char '\t'
           (String.map (fun c -> if c = ' ' then '\t' else c) line))
    with
    | [ a; b ] -> Some (a, b)
    | _ -> None)

let load ic =
  match input_line ic with
  | exception End_of_file -> Error "empty file"
  | first ->
    if String.trim first <> header then Error "bad header (not a joinproj relation)"
    else begin
      match input_line ic with
      | exception End_of_file -> Error "missing size line"
      | sizes -> (
        match split_two sizes with
        | None -> Error "malformed size line"
        | Some (a, b) -> (
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some src_count, Some dst_count ->
            let edges = Jp_util.Vec.create () in
            let error = ref None in
            let lineno = ref 2 in
            (try
               while !error = None do
                 let line = input_line ic in
                 incr lineno;
                 if String.trim line <> "" then
                   match split_two line with
                   | Some (xs, ys) -> (
                     match (int_of_string_opt xs, int_of_string_opt ys) with
                     | Some x, Some y when x >= 0 && x < src_count && y >= 0 && y < dst_count
                       -> Jp_util.Vec.push2 edges x y
                     | _ -> error := Some (Printf.sprintf "bad edge at line %d" !lineno))
                   | None -> error := Some (Printf.sprintf "malformed line %d" !lineno)
               done
             with End_of_file -> ());
            (match !error with
            | Some e -> Error e
            | None ->
              Ok
                (Relation.of_flat ~src_count ~dst_count (Jp_util.Vec.to_array edges)))
          | _ -> Error "malformed size line"))
    end

let load_file path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic -> Fun.protect ~finally:(fun () -> close_in ic) (fun () -> load ic)

let import_tsv ic =
  let src_dict = Dictionary.create () and dst_dict = Dictionary.create () in
  let edges = Jp_util.Vec.create () in
  let error = ref None in
  let lineno = ref 0 in
  (try
     while !error = None do
       let line = input_line ic in
       incr lineno;
       let trimmed = String.trim line in
       if trimmed <> "" && trimmed.[0] <> '#' then
         match split_two line with
         | Some (a, b) ->
           Jp_util.Vec.push2 edges (Dictionary.intern src_dict a)
             (Dictionary.intern dst_dict b)
         | None -> error := Some (Printf.sprintf "malformed line %d" !lineno)
     done
   with End_of_file -> ());
  match !error with
  | Some e -> Error e
  | None ->
    if Jp_util.Vec.length edges = 0 then Error "no edges"
    else
      Ok
        ( Relation.of_flat
            ~src_count:(Dictionary.size src_dict)
            ~dst_count:(Dictionary.size dst_dict)
            (Jp_util.Vec.to_array edges),
          src_dict,
          dst_dict )
