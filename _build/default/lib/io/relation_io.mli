(** Relation persistence.

    Two formats:

    - the native text format (versioned header, id-space sizes, one edge
      per line) — lossless round-trip of a {!Relation.t};
    - TSV import for external string-keyed data: two whitespace-separated
      columns per line, dictionary-encoded on the fly (the layer the CLI's
      [import] command uses). *)

module Relation = Jp_relation.Relation

val save : Relation.t -> out_channel -> unit

val load : in_channel -> (Relation.t, string) result
(** Errors on a bad header, malformed lines, or out-of-range ids. *)

val save_file : Relation.t -> string -> unit

val load_file : string -> (Relation.t, string) result

val import_tsv :
  in_channel -> (Relation.t * Dictionary.t * Dictionary.t, string) result
(** Reads [src <ws> dst] lines ('#'-prefixed lines and blank lines are
    skipped); returns the relation plus the source/destination
    dictionaries. *)
