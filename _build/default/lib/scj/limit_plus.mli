(** LIMIT+ (Bouros et al.): PRETTI with a bounded intersection depth.

    Intersecting long inverted lists deep in the tree costs more than it
    prunes, so LIMIT+ intersects only the first [limit] path elements (the
    blocking filter) and verifies each surviving candidate with a
    sorted-merge subset test (the verification step whose cost the paper's
    Figure 4c attributes the SCJ slowdowns to).  The paper's experiments
    run limit = 2. *)

module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs

val join : ?limit:int -> Relation.t -> Pairs.t
(** Directed containment pairs; [limit] ≥ 1 (default 2). *)
