(** PRETTI (Jampani & Pudi): prefix-tree set-containment join.

    Sets are inserted into a prefix tree under the infrequent element
    order; a DFS intersects the inverted lists along each path, so sets
    sharing a prefix share the intersection work.  At a node where set a
    terminates, the surviving candidate list is exactly the supersets of
    a. *)

module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs

val join : Relation.t -> Pairs.t
(** Directed containment pairs (a, b): set a ⊆ set b, a ≠ b.  Sets of
    size 0 are skipped. *)
