module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Vec = Jp_util.Vec
module Sorted = Jp_util.Sorted

let join ?(limit = 2) r =
  if limit < 1 then invalid_arg "Limit_plus.join: limit must be >= 1";
  let rank = Scj_common.element_order_infrequent r in
  let rows = Array.init (Relation.src_count r) (fun _ -> Vec.create ~capacity:0 ()) in
  (* Blocking: intersect the inverted lists of the first [limit] (rarest)
     elements of each set.  Verification: subset test on the full set.
     Unlike PRETTI there is no cross-set sharing, which is what makes the
     verification volume hurt on high-overlap data. *)
  for a = 0 to Relation.src_count r - 1 do
    if Relation.deg_src r a > 0 then begin
      let elems = Scj_common.sorted_by_rank r ~rank a in
      let prefix = Array.sub elems 0 (min limit (Array.length elems)) in
      let candidates =
        Sorted.intersect_many
          (Array.to_list (Array.map (fun e -> Relation.adj_dst r e) prefix))
      in
      let needs_verify = Array.length elems > limit in
      let a_elems = Relation.adj_src r a in
      Array.iter
        (fun b ->
          if b <> a && ((not needs_verify) || Sorted.subset a_elems (Relation.adj_src r b))
          then Vec.push rows.(a) b)
        candidates
    end
  done;
  Scj_common.rows_to_pairs rows
