module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Vec = Jp_util.Vec

let join ?(domains = 1) r =
  let n = Relation.src_count r in
  let rows = Array.init n (fun _ -> Vec.create ~capacity:0 ()) in
  let probe a =
    if Relation.deg_src r a > 0 then begin
      let lists =
        Array.map (fun e -> Relation.adj_dst r e) (Relation.adj_src r a)
      in
      Jp_wcoj.Leapfrog.iter lists (fun b -> if b <> a then Vec.push rows.(a) b)
    end
  in
  if domains <= 1 then
    for a = 0 to n - 1 do
      probe a
    done
  else begin
    (* Static contiguous partition (one chunk per worker), as in PIEJoin's
       subtree assignment: skewed set sizes translate into imbalance. *)
    let per = (n + domains - 1) / domains in
    Jp_parallel.Pool.parallel_for_ranges ~domains ~chunk:per ~lo:0 ~hi:n
      (fun lo hi ->
        for a = lo to hi - 1 do
          probe a
        done)
  end;
  Scj_common.rows_to_pairs rows
