(** Shared definitions for set-containment join.

    The SCJ result is the set of {e directed} pairs (a, b), a ≠ b, with
    set a ⊆ set b, represented as {!Pairs.t} keyed by the contained set.
    Empty sets are excluded (they are vacuously contained everywhere and
    only add noise; the paper's datasets have min size ≥ 1). *)

module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs

val element_order_infrequent : Relation.t -> int array
(** rank.(element) under the "infrequent sort order": ascending inverted
    list length (ties by id) — rarest elements first, so candidate lists
    shrink as early as possible.  Standard for PRETTI-family algorithms. *)

val sorted_by_rank : Relation.t -> rank:int array -> int -> int array
(** The elements of a set, re-sorted by [rank] (fresh array). *)

val rows_to_pairs : Jp_util.Vec.t array -> Pairs.t
(** Sort-dedups each row buffer and freezes. *)
