lib/scj/pretti.mli: Jp_relation
