lib/scj/piejoin.mli: Jp_relation
