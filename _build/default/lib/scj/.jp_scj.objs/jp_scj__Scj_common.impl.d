lib/scj/scj_common.ml: Array Jp_relation Jp_util
