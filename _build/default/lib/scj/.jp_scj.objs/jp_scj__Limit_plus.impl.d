lib/scj/limit_plus.ml: Array Jp_relation Jp_util Scj_common
