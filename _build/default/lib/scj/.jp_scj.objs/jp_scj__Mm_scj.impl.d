lib/scj/mm_scj.ml: Array Joinproj Jp_obs Jp_relation Jp_util Scj_common
