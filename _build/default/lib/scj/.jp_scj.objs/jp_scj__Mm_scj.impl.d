lib/scj/mm_scj.ml: Array Joinproj Jp_relation Jp_util Scj_common
