lib/scj/pretti.ml: Array Hashtbl Jp_relation Jp_util List Scj_common
