lib/scj/mm_scj.mli: Jp_relation
