lib/scj/piejoin.ml: Array Jp_parallel Jp_relation Jp_util Jp_wcoj Scj_common
