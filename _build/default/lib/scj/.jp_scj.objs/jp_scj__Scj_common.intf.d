lib/scj/scj_common.mli: Jp_relation Jp_util
