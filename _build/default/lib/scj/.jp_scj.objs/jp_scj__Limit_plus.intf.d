lib/scj/limit_plus.mli: Jp_relation
