(** PIEJoin-style parallel set-containment join (Kunkel et al.).

    PIEJoin traverses tries built over both relations and parallelizes by
    statically assigning root subtrees to workers.  This reproduction
    keeps the two behavioural traits the paper's experiments exercise —
    per-probe leapfrog intersection of inverted lists (no cross-set
    prefix sharing, unlike PRETTI) and {e static} work partitioning whose
    speedup degrades under set-size skew (Figure 7's "sensitive to data
    distribution and choice of partitions") — while simplifying the
    probe-side trie to direct per-set probes.  See DESIGN.md's
    substitution table. *)

module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs

val join : ?domains:int -> Relation.t -> Pairs.t
(** Directed containment pairs (a, b): set a ⊆ set b, a ≠ b. *)
