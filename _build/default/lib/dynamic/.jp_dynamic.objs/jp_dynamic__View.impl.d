lib/dynamic/view.ml: Array Hashtbl Jp_relation List Option
