lib/dynamic/view.mli: Jp_relation
