lib/bsi/bsi.mli: Jp_relation
