lib/bsi/bsi.ml: Array Joinproj Jp_obs Jp_relation Jp_util Jp_wcoj
