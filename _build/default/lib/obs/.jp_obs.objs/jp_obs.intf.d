lib/obs/jp_obs.mli: Json
