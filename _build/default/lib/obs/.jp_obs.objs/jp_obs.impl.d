lib/obs/jp_obs.ml: Atomic Domain Float Jp_util Json List Mutex Printf String
