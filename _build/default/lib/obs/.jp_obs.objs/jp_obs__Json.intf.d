lib/obs/json.mli:
