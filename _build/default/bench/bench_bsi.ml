(* FIG6b/6c/6d: boolean set intersection — average delay vs batch size at
   B = 1000 queries/second. *)

module Presets = Jp_workload.Presets
module Relation = Jp_relation.Relation
module Bsi = Jp_bsi.Bsi
module Tablefmt = Jp_util.Tablefmt

let batch_sizes = [ 100; 300; 500; 900; 1300; 1900 ]

let fig6bcd cfg =
  List.iter
    (fun (fig, name) ->
      Bench_common.section
        (Printf.sprintf "%s: BSI average delay vs batch size (%s, B=1000 q/s)" fig
           (Presets.to_string name));
      let r = Bench_common.dataset cfg name in
      let n = Relation.src_count r in
      let queries =
        Jp_workload.Generate.batch_queries ~seed:17 ~count:4_000 ~nx:n ~nz:n ()
      in
      let rows =
        List.map
          (fun batch_size ->
            let run strategy =
              Bsi.simulate ~strategy ~r ~s:r ~queries ~rate:1000.0 ~batch_size ()
            in
            let mm = run Bsi.Mm in
            let comb = run Bsi.Combinatorial in
            [
              string_of_int batch_size;
              Tablefmt.seconds mm.Bsi.avg_delay;
              Printf.sprintf "%.2f" mm.Bsi.units_needed;
              Tablefmt.seconds comb.Bsi.avg_delay;
              Printf.sprintf "%.2f" comb.Bsi.units_needed;
            ])
          batch_sizes
      in
      Tablefmt.print
        ~header:
          [ "batch"; "MM delay"; "MM units"; "Non-MM delay"; "Non-MM units" ]
        ~rows)
    [
      ("FIG6b", Presets.Jokes);
      ("FIG6c", Presets.Words);
      ("FIG6d", Presets.Image);
    ];
  Bench_common.note
    "paper shape: batching lets MM keep up with the workload using far fewer";
  Bench_common.note
    "processing units at a small delay premium; on words the optimizer picks";
  Bench_common.note "the combinatorial plan, so both curves coincide."
