(* TAB2: dataset characteristics (Table 2 of the paper, scaled). *)

module Presets = Jp_workload.Presets
module Tablefmt = Jp_util.Tablefmt

let table2 cfg =
  Bench_common.section "TAB2: dataset characteristics (scaled Table 2)";
  let rows =
    List.map
      (fun name ->
        let r = Bench_common.dataset cfg name in
        let ch = Presets.characteristics r in
        [
          Presets.to_string name;
          Tablefmt.big_int ch.Presets.tuples;
          Tablefmt.big_int ch.Presets.sets;
          Tablefmt.big_int ch.Presets.dom;
          Printf.sprintf "%.1f" ch.Presets.avg_size;
          string_of_int ch.Presets.min_size;
          string_of_int ch.Presets.max_size;
          (if Presets.is_dense name then "dense" else "sparse");
        ])
      Presets.all
  in
  Tablefmt.print
    ~header:[ "dataset"; "|R|"; "sets"; "|dom|"; "avg"; "min"; "max"; "class" ]
    ~rows
