(* Shared plumbing for the benchmark harness: configuration, dataset
   cache, timing, and section/row rendering. *)

module Relation = Jp_relation.Relation
module Presets = Jp_workload.Presets
module Tablefmt = Jp_util.Tablefmt

type config = {
  scale : float; (* dataset scale multiplier *)
  repeats : int; (* median-of-n timing *)
  only : string list; (* experiment tags to run; [] = all *)
  cores : int list; (* core counts for the multicore figures *)
}

let default_config =
  {
    scale = 1.0;
    repeats = 1;
    only = [];
    cores = [ 1; 2; 4 ];
  }

let wants cfg tag =
  cfg.only = []
  || List.exists
       (fun o -> String.lowercase_ascii o = String.lowercase_ascii tag)
       cfg.only

let section title =
  Printf.printf "\n==== %s ====\n%!" title

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  %s\n%!" s) fmt

(* Dataset cache: each preset is generated once per run. *)
let cache : (string, Relation.t) Hashtbl.t = Hashtbl.create 16

let dataset cfg name =
  let key = Printf.sprintf "%s@%f" (Presets.to_string name) cfg.scale in
  match Hashtbl.find_opt cache key with
  | Some r -> r
  | None ->
    let r = Presets.load ~scale:cfg.scale name in
    Hashtbl.add cache key r;
    r

let time cfg f = snd (Jp_util.Timer.time_median ~repeats:cfg.repeats f)

(* Runs [f] and renders its wall time, also returning a checksum so that
   result sizes can be cross-checked between engines in the same row. *)
let timed_cell cfg f =
  let result = ref 0 in
  let t =
    time cfg (fun () ->
        result := f ();
        !result)
  in
  (Tablefmt.seconds t, !result)

let check_consistent ~label sizes =
  match List.filter (fun s -> s >= 0) sizes with
  | [] -> ()
  | first :: rest ->
    if not (List.for_all (fun s -> s = first) rest) then
      Printf.printf "  WARNING: engines disagree on |OUT| for %s: %s\n%!" label
        (String.concat ", " (List.map string_of_int (first :: rest)))
