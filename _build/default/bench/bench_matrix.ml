(* FIG3a/FIG3b: matrix-multiplication scalability, plus the Table-1
   machine-constant calibration the optimizer relies on. *)

module Boolmat = Jp_matrix.Boolmat
module Cost = Jp_matrix.Cost
module Tablefmt = Jp_util.Tablefmt

let random_boolmat seed ~rows ~cols ~density =
  let g = Jp_util.Rng.create seed in
  let m = Boolmat.create ~rows ~cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if Jp_util.Rng.float g 1.0 < density then Boolmat.set m i j
    done
  done;
  m

(* FIG3a: running time vs matrix dimension, single core (paper: Eigen up
   to 10000^2; here the two bit-packed kernels). *)
let fig3a cfg =
  Bench_common.section "FIG3a: matrix multiplication vs dimension (1 core)";
  let dims = [ 250; 500; 1000; 1500; 2000; 2500 ] in
  let rows =
    List.map
      (fun n ->
        let a = random_boolmat 1 ~rows:n ~cols:n ~density:0.5 in
        let b = random_boolmat 2 ~rows:n ~cols:n ~density:0.5 in
        let t_bool = Bench_common.time cfg (fun () -> Boolmat.mul a b) in
        let t_count = Bench_common.time cfg (fun () -> Boolmat.count_product a b) in
        [
          string_of_int n;
          Tablefmt.seconds t_bool;
          Tablefmt.seconds t_count;
          Printf.sprintf "%.2f"
            (1e-9 *. Cost.lemma1 ~u:n ~v:n ~w:n () /. 62.0);
        ])
      dims
  in
  Tablefmt.print ~header:[ "n"; "boolean MM"; "count MM"; "n^3/62 (1e9)" ] ~rows;
  Bench_common.note
    "paper shape: near-quadratic growth for small n, cubic beyond cache; the";
  Bench_common.note "bit-packed kernels show the same transition."

(* FIG3b: construction + multiplication vs cores. *)
let fig3b cfg =
  Bench_common.section "FIG3b: matrix multiplication vs cores";
  let n = 1500 in
  let adj =
    let g = Jp_util.Rng.create 3 in
    Array.init n (fun _ ->
        let v = Jp_util.Vec.create () in
        for j = 0 to n - 1 do
          if Jp_util.Rng.float g 1.0 < 0.5 then Jp_util.Vec.push v j
        done;
        Jp_util.Vec.to_array v)
  in
  let rows =
    List.map
      (fun cores ->
        let construct = ref 0.0 in
        let t_total =
          Bench_common.time cfg (fun () ->
              let c0 = Jp_util.Timer.now () in
              let a = Boolmat.of_adjacency ~rows:n ~cols:n (fun i -> adj.(i)) in
              let b = Boolmat.of_adjacency ~rows:n ~cols:n (fun i -> adj.(i)) in
              construct := Jp_util.Timer.now () -. c0;
              Boolmat.mul ~domains:cores a b)
        in
        [
          string_of_int cores;
          Tablefmt.seconds !construct;
          Tablefmt.seconds (t_total -. !construct);
        ])
      cfg.Bench_common.cores
  in
  Tablefmt.print ~header:[ "cores"; "construction"; "multiplication" ] ~rows;
  Bench_common.note "paper shape: near-linear multiply speedup, flat construction.";
  if Jp_parallel.Pool.available_cores () = 1 then
    Bench_common.note
      "NOTE: this container exposes 1 CPU; domains are oversubscribed, so the curve is flat here."

(* TAB1: calibrated machine constants (Section 5, Table 1). *)
let calibration _cfg =
  Bench_common.section "TAB1: calibrated machine constants";
  let m = Cost.calibrate ~quick:false () in
  Tablefmt.print
    ~header:[ "constant"; "meaning"; "value" ]
    ~rows:
      [
        [ "Ts"; "sequential access (s/elem)"; Printf.sprintf "%.2e" m.Cost.ts ];
        [ "Tm"; "allocation (s/32B)"; Printf.sprintf "%.2e" m.Cost.tm ];
        [ "TI"; "random access+insert (s/op)"; Printf.sprintf "%.2e" m.Cost.ti ];
        [ "count MM"; "s per 62-bit AND+popcount word"; Printf.sprintf "%.2e" m.Cost.count_word ];
        [ "bool MM"; "s per 62-bit OR word"; Printf.sprintf "%.2e" m.Cost.bool_word ];
        [ "cores"; "available"; string_of_int m.Cost.cores ];
      ]
