(* FIG5a-h, FIG6a, FIG8: set-similarity joins. *)

module Pairs = Jp_relation.Pairs
module Presets = Jp_workload.Presets
module Size_aware = Jp_ssj.Size_aware
module Size_aware_pp = Jp_ssj.Size_aware_pp
module Mm_ssj = Jp_ssj.Mm_ssj
module Tablefmt = Jp_util.Tablefmt

let cs = [ 2; 3; 4; 5; 6 ]

let unordered_row cfg r c =
  let mm, n1 = Bench_common.timed_cell cfg (fun () -> Pairs.count (Mm_ssj.join ~c r)) in
  let pp, n2 =
    Bench_common.timed_cell cfg (fun () -> Pairs.count (Size_aware_pp.join ~c r))
  in
  let sa, n3 =
    Bench_common.timed_cell cfg (fun () -> Pairs.count (Size_aware.join ~c r))
  in
  Bench_common.check_consistent cfg ~label:(Printf.sprintf "ssj c=%d" c) [ n1; n2; n3 ];
  [ string_of_int c; mm; pp; sa; Tablefmt.big_int n1 ]

(* FIG5a/5b/5c: unordered SSJ vs c on dblp, jokes, image (1 core). *)
let fig5abc cfg =
  List.iter
    (fun (fig, name) ->
      Bench_common.section
        (Printf.sprintf "FIG5%s: unordered SSJ vs c (%s, 1 core)" fig
           (Presets.to_string name));
      let r = Bench_common.dataset cfg name in
      let rows = List.map (unordered_row cfg r) cs in
      Tablefmt.print
        ~header:[ "c"; "MMJoin"; "SizeAware++"; "SizeAware"; "|OUT|" ]
        ~rows)
    [ ("a", Presets.Dblp); ("b", Presets.Jokes); ("c", Presets.Image) ];
  Bench_common.note
    "paper shape: MMJoin fastest on the dense families; SizeAware++ ~an order";
  Bench_common.note "of magnitude over SizeAware; near-parity on sparse dblp."

(* FIG5d/5g/5h: unordered SSJ with c=2 vs cores. *)
let fig5dgh cfg =
  Bench_common.section "FIG5d/5g/5h: unordered SSJ (c=2) vs cores";
  let datasets = [ Presets.Dblp; Presets.Jokes; Presets.Image ] in
  let header =
    "cores"
    :: List.concat_map
         (fun d ->
           let n = Presets.to_string d in
           [ n ^ " MM"; n ^ " SA++"; n ^ " SA" ])
         datasets
  in
  let rows =
    List.map
      (fun cores ->
        string_of_int cores
        :: List.concat_map
             (fun d ->
               let r = Bench_common.dataset cfg d in
               let mm =
                 Bench_common.time cfg (fun () -> Mm_ssj.join ~domains:cores ~c:2 r)
               in
               let pp =
                 Bench_common.time cfg (fun () ->
                     Size_aware_pp.join ~domains:cores ~c:2 r)
               in
               (* SizeAware's light phase is inherently sequential (the
                  paper's point); it runs single-threaded at any core
                  count. *)
               let sa = Bench_common.time cfg (fun () -> Size_aware.join ~c:2 r) in
               [ Tablefmt.seconds mm; Tablefmt.seconds pp; Tablefmt.seconds sa ])
             datasets)
      cfg.Bench_common.cores
  in
  Tablefmt.print ~header ~rows;
  if Jp_parallel.Pool.available_cores () = 1 then
    Bench_common.note "NOTE: 1 physical CPU here; speedups are flat by construction."

(* FIG5e/5f + FIG6a: ordered SSJ on dblp, jokes, image. *)
let ordered cfg =
  List.iter
    (fun (fig, name) ->
      Bench_common.section
        (Printf.sprintf "%s: ordered SSJ vs c (%s, 1 core)" fig
           (Presets.to_string name));
      let r = Bench_common.dataset cfg name in
      let rows =
        List.map
          (fun c ->
            let mm, n1 =
              Bench_common.timed_cell cfg (fun () ->
                  Array.length (Jp_ssj.Ordered.via_counts ~c r))
            in
            let pp, n2 =
              Bench_common.timed_cell cfg (fun () ->
                  Array.length
                    (Jp_ssj.Ordered.via_pairs r ~c (Size_aware_pp.join ~c r)))
            in
            let sa, n3 =
              Bench_common.timed_cell cfg (fun () ->
                  Array.length (Jp_ssj.Ordered.via_pairs r ~c (Size_aware.join ~c r)))
            in
            Bench_common.check_consistent cfg
              ~label:(Printf.sprintf "ordered ssj c=%d" c)
              [ n1; n2; n3 ];
            [ string_of_int c; mm; pp; sa; Tablefmt.big_int n1 ])
          cs
      in
      Tablefmt.print
        ~header:[ "c"; "MMJoin"; "SizeAware++"; "SizeAware"; "|OUT|" ]
        ~rows)
    [
      ("FIG5e", Presets.Dblp);
      ("FIG5f", Presets.Jokes);
      ("FIG6a", Presets.Image);
    ];
  Bench_common.note
    "paper shape: ordering is almost free for the count-based joins; SizeAware";
  Bench_common.note "pays an extra merge per output pair to recover overlaps."

(* FIG8: SizeAware++ optimization ablation.  The paper runs this on the
   words dataset, whose sets average 500 elements; our scaled words is too
   sparse for the light/heavy phases to matter, so the ablation runs on
   the dense image preset, which is in the same verification-bound regime
   as the paper's words (see EXPERIMENTS.md). *)
let fig8 cfg =
  Bench_common.section
    "FIG8: SizeAware++ ablation (image stands in for the paper's words, c=2)";
  let r = Bench_common.dataset cfg Presets.Image in
  let c = 2 in
  let timings =
    List.map
      (fun (name, config) ->
        let options = Size_aware_pp.ablation config in
        let result = ref 0 in
        let t =
          Bench_common.time cfg (fun () ->
              result := Pairs.count (Size_aware_pp.join ~options ~c r);
              !result)
        in
        (name, t, !result))
      [ ("NO-OP", `No_op); ("Light", `Light); ("Heavy", `Heavy); ("Prefix", `Prefix) ]
  in
  let noop_time =
    match timings with (_, t, _) :: _ -> t | [] -> 1.0
  in
  let rows =
    List.map
      (fun (name, t, n) ->
        [
          name;
          Tablefmt.seconds t;
          Printf.sprintf "%.1f%%" (100.0 *. t /. noop_time);
          Tablefmt.big_int n;
        ])
      timings
  in
  Tablefmt.print ~header:[ "configuration"; "time"; "% of NO-OP"; "|OUT|" ] ~rows;
  Bench_common.note
    "paper shape: Light+Heavy an order of magnitude under NO-OP; Prefix a";
  Bench_common.note "further constant factor on top."
