(* FIG4c and FIG7: set-containment joins.

   The synthetic presets generate elements (near-)independently, which
   yields an almost empty containment result — unlike the paper's real
   corpora, where nesting is common.  Each dataset is therefore enriched
   by replacing 30% of the sets with subsets of other sets
   (Generate.add_containments), preserving the density profile while
   making the SCJ result non-trivial. *)

module Pairs = Jp_relation.Pairs
module Presets = Jp_workload.Presets
module Tablefmt = Jp_util.Tablefmt

(* FIG4c: SCJ, single core, four algorithms x six datasets. *)
let fig4c cfg =
  Bench_common.section "FIG4c: set containment join, 1 core (seconds)";
  let algos =
    [
      ("MMJoin", fun r -> Pairs.count (Jp_scj.Mm_scj.join r));
      ("PIEJoin", fun r -> Pairs.count (Jp_scj.Piejoin.join r));
      ("PRETTI", fun r -> Pairs.count (Jp_scj.Pretti.join r));
      ("LIMIT+", fun r -> Pairs.count (Jp_scj.Limit_plus.join r));
    ]
  in
  let header = "dataset" :: List.map fst algos @ [ "|SCJ|" ] in
  let scaled n = max 4 (int_of_float (cfg.Bench_common.scale *. float_of_int n)) in
  let named_datasets =
    List.map
      (fun name -> (Presets.to_string name, Bench_common.dataset cfg name))
      Presets.all
    (* Two extra rows at the paper's effective verification density: the
       scaled presets shrink absolute set sizes, which moves the
       trie-vs-MM crossover (~ fill^3 * 62 on this substrate); these rows
       sit on the paper's side of it.  See EXPERIMENTS.md. *)
    @ [
        ( "protein+ (40% fill)",
          Jp_workload.Generate.uniform_dense ~seed:42 ~sets:(scaled 800)
            ~dom:(scaled 800) ~fill:0.4 () );
        ( "image+ (50% fill)",
          Jp_workload.Generate.uniform_dense ~seed:42 ~sets:(scaled 900)
            ~dom:(scaled 750) ~fill:0.5 () );
      ]
  in
  let rows =
    List.map
      (fun (label, base) ->
        let r = Jp_workload.Generate.add_containments ~seed:23 ~fraction:0.3 base in
        let cells, sizes =
          List.split
            (List.map
               (fun (_, f) -> Bench_common.timed_cell cfg (fun () -> f r))
               algos)
        in
        Bench_common.check_consistent cfg ~label sizes;
        (label :: cells) @ [ Tablefmt.big_int (List.hd sizes) ])
      named_datasets
  in
  Tablefmt.print ~header ~rows;
  Bench_common.note
    "paper shape: join-project wins on the dense datasets (large average set";
  Bench_common.note
    "size makes trie verification expensive); trie methods win on sparse data."

(* FIG7a-d: SCJ multicore, MMJoin vs PIEJoin. *)
let fig7 cfg =
  Bench_common.section "FIG7: set containment join vs cores (MMJoin vs PIEJoin)";
  let datasets = [ Presets.Jokes; Presets.Words; Presets.Protein; Presets.Image ] in
  let header =
    "cores"
    :: List.concat_map
         (fun d ->
           let n = Presets.to_string d in
           [ n ^ " MM"; n ^ " PIE" ])
         datasets
  in
  let rows =
    List.map
      (fun cores ->
        string_of_int cores
        :: List.concat_map
             (fun d ->
               let r =
                 Jp_workload.Generate.add_containments ~seed:23 ~fraction:0.3
                   (Bench_common.dataset cfg d)
               in
               let mm =
                 Bench_common.time cfg (fun () -> Jp_scj.Mm_scj.join ~domains:cores r)
               in
               let pie =
                 Bench_common.time cfg (fun () -> Jp_scj.Piejoin.join ~domains:cores r)
               in
               [ Tablefmt.seconds mm; Tablefmt.seconds pie ])
             datasets)
      cfg.Bench_common.cores
  in
  Tablefmt.print ~header ~rows;
  Bench_common.note
    "paper shape: MMJoin scales near-linearly (coordination-free row blocks);";
  Bench_common.note "PIEJoin's static partitions are skew-sensitive.";
  if Jp_parallel.Pool.available_cores () = 1 then
    Bench_common.note "NOTE: 1 physical CPU here; speedups are flat by construction."
