bench/bench_ablation.ml: Array Bench_common Hashtbl Joinproj Jp_dynamic Jp_matrix Jp_relation Jp_util Jp_wcoj Jp_workload List Printf
