bench/bench_datasets.ml: Bench_common Jp_util Jp_workload List Printf
