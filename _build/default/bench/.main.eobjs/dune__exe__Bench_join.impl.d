bench/bench_join.ml: Bench_common Joinproj Jp_baselines Jp_parallel Jp_relation Jp_util Jp_workload List Printf
