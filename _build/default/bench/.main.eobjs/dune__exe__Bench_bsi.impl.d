bench/bench_bsi.ml: Bench_common Jp_bsi Jp_relation Jp_util Jp_workload List Printf
