bench/bench_scj.ml: Bench_common Jp_parallel Jp_relation Jp_scj Jp_util Jp_workload List
