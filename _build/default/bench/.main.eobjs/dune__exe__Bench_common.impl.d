bench/bench_common.ml: Hashtbl Jp_relation Jp_util Jp_workload List Printf String
