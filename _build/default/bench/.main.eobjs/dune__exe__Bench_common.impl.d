bench/bench_common.ml: Fun Hashtbl Jp_obs Jp_relation Jp_util Jp_workload List Option Printf String
