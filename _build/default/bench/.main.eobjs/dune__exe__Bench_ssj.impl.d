bench/bench_ssj.ml: Array Bench_common Jp_parallel Jp_relation Jp_ssj Jp_util Jp_workload List Printf
