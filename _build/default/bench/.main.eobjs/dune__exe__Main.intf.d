bench/main.mli:
