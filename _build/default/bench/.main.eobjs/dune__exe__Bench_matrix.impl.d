bench/bench_matrix.ml: Array Bench_common Jp_matrix Jp_parallel Jp_util List Printf
