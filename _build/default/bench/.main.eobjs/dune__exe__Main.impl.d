bench/main.ml: Arg Bench_ablation Bench_bsi Bench_common Bench_datasets Bench_join Bench_kernels Bench_matrix Bench_scj Bench_ssj Jp_matrix Jp_obs Jp_parallel List Printf String
