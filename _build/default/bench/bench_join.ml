(* FIG4a/4b/4d-4g and Example 4: join processing for the 2-path and star
   queries. *)

module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Presets = Jp_workload.Presets
module Two_path = Joinproj.Two_path
module Star = Joinproj.Star
module Tablefmt = Jp_util.Tablefmt

(* FIG4a: two-path self-join, single core, all engines x all datasets. *)
let fig4a cfg =
  Bench_common.section "FIG4a: two-path query, 1 core (seconds)";
  let engines =
    [
      ("MMJoin", fun r -> Pairs.count (Two_path.project ~r ~s:r ()));
      ( "Non-MMJoin",
        fun r ->
          Pairs.count (Two_path.project ~strategy:Two_path.Combinatorial ~r ~s:r ()) );
      ( "WCOJ-dedup (X)",
        fun r -> Pairs.count (Jp_baselines.Fulljoin.two_path ~r ~s:r ()) );
      ( "HashJoin (PG)",
        fun r -> Pairs.count (Jp_baselines.Hash_join.two_path ~r ~s:r) );
      ( "SortMerge (MY)",
        fun r -> Pairs.count (Jp_baselines.Sortmerge_join.two_path ~r ~s:r) );
      ( "Bitset (EH)",
        fun r -> Pairs.count (Jp_baselines.Bitset_engine.two_path ~r ~s:r ()) );
    ]
  in
  let header = "dataset" :: List.map fst engines @ [ "|OUT|" ] in
  let rows =
    List.map
      (fun name ->
        let r = Bench_common.dataset cfg name in
        let cells, sizes =
          List.split
            (List.map
               (fun (ename, f) ->
                 Bench_common.timed_cell
                   ~label:(Printf.sprintf "%s/%s" (Presets.to_string name) ename)
                   cfg
                   (fun () -> f r))
               engines)
        in
        Bench_common.check_consistent cfg ~label:(Presets.to_string name) sizes;
        (Presets.to_string name :: cells)
        @ [ Tablefmt.big_int (List.hd sizes) ])
      Presets.all
  in
  Tablefmt.print ~header ~rows;
  Bench_common.note
    "paper shape: MMJoin fastest on dense data (up to ~50x vs RDBMS-style";
  Bench_common.note
    "engines); on sparse dblp/roadnet the optimizer falls back to the plain join."

(* FIG4b: star query with k=3 relations, single core.  Like the paper, we
   take a sample of each relation so the star join result stays in main
   memory (25% of the 2-path scale). *)
let star_sample cfg name = Presets.load ~scale:(0.25 *. cfg.Bench_common.scale) name

let fig4b cfg =
  Bench_common.section "FIG4b: star query (k=3, 25% samples), 1 core (seconds)";
  let rows =
    List.map
      (fun name ->
        let r = star_sample cfg name in
        let rels = [| r; r; r |] in
        let mm, n1 =
          Bench_common.timed_cell
            ~label:(Presets.to_string name ^ "/MMJoin")
            cfg
            (fun () ->
              Jp_relation.Tuples.count (Star.project ~strategy:Star.Matrix rels))
        in
        let comb, n2 =
          Bench_common.timed_cell
            ~label:(Presets.to_string name ^ "/Non-MMJoin")
            cfg
            (fun () ->
              Jp_relation.Tuples.count (Star.project ~strategy:Star.Combinatorial rels))
        in
        Bench_common.check_consistent cfg ~label:(Presets.to_string name) [ n1; n2 ];
        [ Presets.to_string name; mm; comb; Tablefmt.big_int n1 ])
      Presets.all
  in
  Tablefmt.print ~header:[ "dataset"; "MMJoin"; "Non-MMJoin"; "|OUT|" ] ~rows;
  Bench_common.note
    "paper shape: matrix multiplication beats the combinatorial heavy part";
  Bench_common.note "on every dense dataset."

(* FIG4d/4e: two-path multicore on jokes and words. *)
let fig4de cfg =
  Bench_common.section "FIG4d/4e: two-path query vs cores (jokes, words)";
  let datasets = [ Presets.Jokes; Presets.Words ] in
  let header =
    "cores" :: List.concat_map (fun d ->
        [ Presets.to_string d ^ " MMJoin"; Presets.to_string d ^ " Non-MM" ])
      datasets
  in
  let rows =
    List.map
      (fun cores ->
        string_of_int cores
        :: List.concat_map
             (fun d ->
               let r = Bench_common.dataset cfg d in
               let mm =
                 Bench_common.time cfg (fun () ->
                     Two_path.project ~domains:cores ~r ~s:r ())
               in
               let comb =
                 Bench_common.time cfg (fun () ->
                     Two_path.project ~domains:cores
                       ~strategy:Two_path.Combinatorial ~r ~s:r ())
               in
               [ Tablefmt.seconds mm; Tablefmt.seconds comb ])
             datasets)
      cfg.Bench_common.cores
  in
  Tablefmt.print ~header ~rows;
  if Jp_parallel.Pool.available_cores () = 1 then
    Bench_common.note "NOTE: 1 physical CPU here; speedups are flat by construction."

(* FIG4f/4g: star multicore on jokes and words (sampled like the paper). *)
let fig4fg cfg =
  Bench_common.section "FIG4f/4g: star query (k=3) vs cores (jokes, words)";
  let datasets =
    [
      (Presets.Jokes, star_sample cfg Presets.Jokes);
      (Presets.Words, star_sample cfg Presets.Words);
    ]
  in
  let header =
    "cores" :: List.concat_map (fun (d, _) ->
        [ Presets.to_string d ^ " MMJoin"; Presets.to_string d ^ " Non-MM" ])
      datasets
  in
  let rows =
    List.map
      (fun cores ->
        string_of_int cores
        :: List.concat_map
             (fun (_, r) ->
               let rels = [| r; r; r |] in
               let mm =
                 Bench_common.time cfg (fun () ->
                     Star.project ~domains:cores ~strategy:Star.Matrix rels)
               in
               let comb =
                 Bench_common.time cfg (fun () ->
                     Star.project ~domains:cores ~strategy:Star.Combinatorial rels)
               in
               [ Tablefmt.seconds mm; Tablefmt.seconds comb ])
             datasets)
      cfg.Bench_common.cores
  in
  Tablefmt.print ~header ~rows

(* EX4: the |OUT| ~ N^1.5 star regime of Example 4.  At paper scale the
   theoretical point is the heavy part's sub-quadratic matrix evaluation;
   at this container's scale the shared light passes dominate both
   strategies (FIG4b carries the MM-vs-combinatorial comparison), so this
   experiment reports the measured growth exponent of the output-sensitive
   evaluation against Lemma 2's O(N^2) combinatorial worst-case bound. *)
let example4 cfg =
  Bench_common.section "EX4: star (k=3) growth exponent, |OUT| ~ N^1.5 regime";
  let sizes = [ 30; 60; 90 ] in
  let measure members =
    let r =
      Jp_workload.Generate.community_graph ~seed:9 ~communities:4 ~members
        ~p_intra:0.3 ()
    in
    let n = Relation.size r in
    let rels = [| r; r; r |] in
    let out = ref 0 in
    let t_mm =
      Bench_common.time ~label:(Printf.sprintf "N=%d/MMJoin" members) cfg
        (fun () ->
          out := Jp_relation.Tuples.count (Star.project ~strategy:Star.Matrix rels))
    in
    let t_comb =
      Bench_common.time ~label:(Printf.sprintf "N=%d/Non-MMJoin" members) cfg
        (fun () -> Star.project ~strategy:Star.Combinatorial rels)
    in
    (n, !out, t_mm, t_comb)
  in
  let results = List.map measure sizes in
  let rows =
    List.map
      (fun (n, out, mm, comb) ->
        [
          Tablefmt.big_int n;
          Tablefmt.big_int out;
          Tablefmt.seconds mm;
          Tablefmt.seconds comb;
        ])
      results
  in
  Tablefmt.print ~header:[ "N (edges)"; "|OUT|"; "MMJoin"; "Non-MMJoin" ] ~rows;
  (match (results, List.rev results) with
  | (n0, _, mm0, _) :: _, (n1, _, mm1, _) :: _ when n1 > n0 ->
    let exponent = log (mm1 /. mm0) /. log (float_of_int n1 /. float_of_int n0) in
    Bench_common.note
      "measured growth exponent t ~ N^%.2f (Lemma 2's combinatorial bound is N^2," exponent;
    Bench_common.note
      "the theoretical omega=2 target N^1.875); the MM-vs-combinatorial heavy-part";
    Bench_common.note "comparison at realistic density is FIG4b."
  | _ -> ())
