(* joinproj — command-line driver for the join-project engine.

   Subcommands: datasets, explain, join, star, ssj, scj, bsi, calibrate.
   Every command runs on the synthetic Table-2 presets; see DESIGN.md. *)

module Relation = Jp_relation.Relation
module Presets = Jp_workload.Presets
module Two_path = Joinproj.Two_path
module Optimizer = Joinproj.Optimizer
open Cmdliner

(* ------------------------------------------------------------------ *)
(* shared arguments                                                    *)

let dataset_arg =
  let parse s =
    match Presets.of_string s with
    | Some n -> Ok n
    | None -> Error (`Msg ("unknown dataset: " ^ s))
  in
  let print fmt n = Format.pp_print_string fmt (Presets.to_string n) in
  Arg.conv (parse, print)

let dataset =
  Arg.(
    value
    & opt (some dataset_arg) None
    & info [ "d"; "dataset" ] ~docv:"NAME"
        ~doc:"Dataset preset: dblp, roadnet, jokes, words, protein or image.")

let input_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "i"; "input" ] ~docv:"FILE"
        ~doc:
          "Load the relation from FILE instead of a preset (native format or \
           two-column TSV, auto-detected).")

let scale =
  Arg.(
    value & opt float 1.0
    & info [ "scale" ] ~docv:"F" ~doc:"Dataset scale multiplier.")

let domains =
  Arg.(
    value & opt int 1
    & info [ "j"; "domains" ] ~docv:"N" ~doc:"Number of domains (cores) to use.")

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed.")

(* Adaptive-guard flags, shared by join/star/ssj/scj/bsi/profile. *)

let adaptive =
  Arg.(
    value & flag
    & info [ "adaptive" ]
        ~doc:
          "Run under the adaptive plan guard: runtime checkpoints compare \
           observed work against the plan's estimates and may re-plan or \
           degrade mid-query.")

let budget_ms =
  Arg.(
    value
    & opt (some float) None
    & info [ "budget-ms" ] ~docv:"MS"
        ~doc:
          "Wall-clock budget in milliseconds (implies $(b,--adaptive)); \
           exhausting it degrades matrix plans to the safe combinatorial \
           path.")

let inject_est =
  Arg.(
    value
    & opt (some float) None
    & info [ "inject-est" ] ~docv:"FACTOR"
        ~doc:
          "Scale the optimizer's |OUT| estimate by FACTOR (deterministic \
           misestimation injection; implies $(b,--adaptive)).  FACTOR < 1 \
           underestimates, > 1 overestimates; the guard's checkpoints are \
           what recovers from it.")

(* [None] when no guard flag was given, so the default paths stay exactly
   the unguarded ones. *)
let guard_of adaptive budget_ms inject_est =
  if (not adaptive) && budget_ms = None && inject_est = None then None
  else begin
    let module Guard = Jp_adaptive.Guard in
    let cfg = Guard.default in
    let cfg =
      match budget_ms with Some ms -> Guard.with_budget_ms ms cfg | None -> cfg
    in
    let cfg =
      match inject_est with
      | Some f -> Guard.with_inject (Jp_adaptive.Inject.out_only f) cfg
      | None -> cfg
    in
    Some cfg
  end

(* Tiling flags, shared by join/profile: stream the heavy-part product
   through [Jp_tile]. *)

let tiled_flag =
  Arg.(
    value & flag
    & info [ "tiled" ]
        ~doc:
          "Stream the heavy-part matrix product through the tiled kernel \
           ($(b,Jp_tile)) even below the size threshold; results are \
           bit-equal to the flat kernels.")

let tile_bits_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "tile-bits" ] ~docv:"K"
        ~doc:
          "Tile shape 2^K x 2^K for the tiled heavy-part product (default \
           9; implies $(b,--tiled)).")

let max_resident_mb =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-resident-mb" ] ~docv:"MB"
        ~doc:
          "Bound the tiled product's resident operand-tile set to MB \
           megabytes: cold tiles are evicted LANDLORD-style and rebuilt on \
           demand, so operands larger than the cap stream instead of \
           staying materialized (implies $(b,--tiled)).")

(* [None] when no tile flag was given, so the default paths stay exactly
   the untiled ones. *)
let tile_of tiled tile_bits max_resident_mb =
  if (not tiled) && tile_bits = None && max_resident_mb = None then None
  else
    Some
      (Jp_tile.config
         ?tile_bits
         ?budget_bytes:
           (Option.map (fun mb -> mb * 1024 * 1024) max_resident_mb)
         ~force:true ())

let warn_guard_unsupported guard what =
  if guard <> None then
    Printf.eprintf
      "joinproj: note: --adaptive/--budget-ms/--inject-est have no effect on %s\n"
      what

let load_input path =
  match Jp_io.Relation_io.load_file path with
  | Ok r -> r
  | Error _ -> (
    (* not the native format: try TSV with dictionary encoding *)
    let ic = open_in path in
    let result =
      Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
          Jp_io.Relation_io.import_tsv ic)
    in
    match result with
    | Ok (r, _, _) -> r
    | Error e -> failwith (path ^ ": " ^ e))

(* A relation comes either from a preset (-d) or a file (-i). *)
let load_source name input scale seed =
  match (name, input) with
  | _, Some path -> load_input path
  | Some n, None -> Presets.load ~scale ~seed n
  | None, None -> failwith "specify a dataset (-d) or an input file (-i)"

let report name count seconds =
  Printf.printf "%-22s %12s pairs   %s\n" name (Jp_util.Tablefmt.big_int count)
    (Jp_util.Tablefmt.seconds seconds)

(* Shared by [explain] and [profile]: the Algorithm-3 plan for the 2-path
   self-join plus its counted variant, one line each. *)
let print_explain ~domains r =
  let plan = Optimizer.plan ~domains ~r ~s:r () in
  print_endline (Optimizer.explain plan);
  let counts_plan = Optimizer.plan_counts ~domains ~r ~s:r () in
  print_endline ("counted variant: " ^ Optimizer.explain counts_plan)

(* ------------------------------------------------------------------ *)
(* commands                                                            *)

let datasets_cmd =
  let run scale seed =
    let header = [ "dataset"; "|R|"; "sets"; "|dom|"; "avg"; "min"; "max" ] in
    let rows =
      List.map
        (fun n ->
          let ch = Presets.characteristics (Presets.load ~scale ~seed n) in
          [
            Presets.to_string n;
            Jp_util.Tablefmt.big_int ch.Presets.tuples;
            Jp_util.Tablefmt.big_int ch.Presets.sets;
            Jp_util.Tablefmt.big_int ch.Presets.dom;
            Printf.sprintf "%.1f" ch.Presets.avg_size;
            string_of_int ch.Presets.min_size;
            string_of_int ch.Presets.max_size;
          ])
        Presets.all
    in
    Jp_util.Tablefmt.print ~header ~rows
  in
  Cmd.v
    (Cmd.info "datasets" ~doc:"Show the characteristics of every dataset preset.")
    Term.(const run $ scale $ seed)

let explain_cmd =
  let run name input scale seed domains =
    let r = load_source name input scale seed in
    print_explain ~domains r
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Show the plan Algorithm 3 picks for the 2-path self-join.")
    Term.(const run $ dataset $ input_file $ scale $ seed $ domains)

let engines =
  [
    ("mm", `Mm);
    ("nonmm", `Nonmm);
    ("wcoj", `Wcoj);
    ("hash", `Hash);
    ("sortmerge", `Sortmerge);
    ("bitset", `Bitset);
  ]

let engine =
  Arg.(
    value
    & opt (enum engines) `Mm
    & info [ "e"; "engine" ] ~docv:"ENGINE"
        ~doc:"Engine: $(b,mm), $(b,nonmm), $(b,wcoj), $(b,hash), $(b,sortmerge) or $(b,bitset).")

let join_cmd =
  let run name input scale seed domains engine adaptive budget_ms inject_est
      tiled tile_bits mrmb =
    let r = load_source name input scale seed in
    let guard = guard_of adaptive budget_ms inject_est in
    let tile = tile_of tiled tile_bits mrmb in
    let warn_tile what =
      if tile <> None then
        Printf.eprintf
          "joinproj: note: --tiled/--tile-bits/--max-resident-mb have no \
           effect on %s\n"
          what
    in
    let count, t =
      Jp_util.Timer.time (fun () ->
          match engine with
          | `Mm ->
            let pairs, plan =
              Two_path.project_with_plan_info ~domains ?guard ?tile ~r ~s:r ()
            in
            print_endline (Optimizer.explain plan);
            Jp_relation.Pairs.count pairs
          | `Nonmm ->
            warn_tile "the combinatorial heavy part";
            Jp_relation.Pairs.count
              (Two_path.project ~domains ~strategy:Two_path.Combinatorial ?guard
                 ~r ~s:r ())
          | `Wcoj ->
            warn_guard_unsupported guard "the wcoj baseline";
            warn_tile "the wcoj baseline";
            Jp_relation.Pairs.count (Jp_baselines.Fulljoin.two_path ~domains ~r ~s:r ())
          | `Hash ->
            warn_guard_unsupported guard "the hash baseline";
            warn_tile "the hash baseline";
            Jp_relation.Pairs.count (Jp_baselines.Hash_join.two_path ~r ~s:r)
          | `Sortmerge ->
            warn_guard_unsupported guard "the sortmerge baseline";
            warn_tile "the sortmerge baseline";
            Jp_relation.Pairs.count (Jp_baselines.Sortmerge_join.two_path ~r ~s:r)
          | `Bitset ->
            warn_guard_unsupported guard "the bitset baseline";
            warn_tile "the bitset baseline";
            Jp_relation.Pairs.count (Jp_baselines.Bitset_engine.two_path ~r ~s:r ()))
    in
    report "two-path join-project" count t
  in
  Cmd.v
    (Cmd.info "join" ~doc:"Evaluate the 2-path join-project self-join.")
    Term.(
      const run $ dataset $ input_file $ scale $ seed $ domains $ engine
      $ adaptive $ budget_ms $ inject_est $ tiled_flag $ tile_bits_arg
      $ max_resident_mb)

let star_cmd =
  let k =
    Arg.(value & opt int 3 & info [ "k" ] ~docv:"K" ~doc:"Number of relations.")
  in
  let combinatorial =
    Arg.(
      value & flag
      & info [ "combinatorial" ] ~doc:"Use the combinatorial heavy part (Non-MMJoin).")
  in
  let run name input scale seed domains k combinatorial adaptive budget_ms
      inject_est =
    if k < 2 then failwith "k must be >= 2";
    let r = load_source name input scale seed in
    let guard = guard_of adaptive budget_ms inject_est in
    let rels = Array.make k r in
    let strategy =
      if combinatorial then Joinproj.Star.Combinatorial else Joinproj.Star.Matrix
    in
    let count, t =
      Jp_util.Timer.time (fun () ->
          Jp_relation.Tuples.count
            (Joinproj.Star.project ~domains ~strategy ?guard rels))
    in
    report (Printf.sprintf "star join (k=%d)" k) count t
  in
  Cmd.v
    (Cmd.info "star" ~doc:"Evaluate the star join-project self-join.")
    Term.(
      const run $ dataset $ input_file $ scale $ seed $ domains $ k
      $ combinatorial $ adaptive $ budget_ms $ inject_est)

let ssj_cmd =
  let c = Arg.(value & opt int 2 & info [ "c" ] ~docv:"C" ~doc:"Overlap threshold.") in
  let algo =
    Arg.(
      value
      & opt (enum [ ("mm", `Mm); ("sizeaware", `Sa); ("sizeaware++", `Sapp) ]) `Mm
      & info [ "a"; "algo" ] ~docv:"ALGO"
          ~doc:"Algorithm: $(b,mm), $(b,sizeaware) or $(b,sizeaware++).")
  in
  let ordered =
    Arg.(value & flag & info [ "ordered" ] ~doc:"Enumerate by decreasing overlap.")
  in
  let run name input scale seed domains c algo ordered adaptive budget_ms
      inject_est =
    let r = load_source name input scale seed in
    let guard = guard_of adaptive budget_ms inject_est in
    (match algo with
    | `Mm -> ()
    | `Sa | `Sapp -> warn_guard_unsupported guard "the size-aware algorithms");
    if ordered then begin
      let result, t =
        Jp_util.Timer.time (fun () ->
            match algo with
            | `Mm -> Jp_ssj.Ordered.via_counts ~domains ~c r
            | `Sa -> Jp_ssj.Ordered.via_pairs r ~c (Jp_ssj.Size_aware.join ~c r)
            | `Sapp ->
              Jp_ssj.Ordered.via_pairs r ~c (Jp_ssj.Size_aware_pp.join ~domains ~c r))
      in
      report "ordered ssj" (Array.length result) t;
      Array.iteri
        (fun i (a, b, k) ->
          if i < 10 then Printf.printf "  %d ~ %d : %d common elements\n" a b k)
        result
    end
    else begin
      let count, t =
        Jp_util.Timer.time (fun () ->
            Jp_relation.Pairs.count
              (match algo with
              | `Mm -> Jp_ssj.Mm_ssj.join ~domains ?guard ~c r
              | `Sa -> Jp_ssj.Size_aware.join ~c r
              | `Sapp -> Jp_ssj.Size_aware_pp.join ~domains ~c r))
      in
      report (Printf.sprintf "ssj (c=%d)" c) count t
    end
  in
  Cmd.v
    (Cmd.info "ssj" ~doc:"Set-similarity self-join.")
    Term.(
      const run $ dataset $ input_file $ scale $ seed $ domains $ c $ algo
      $ ordered $ adaptive $ budget_ms $ inject_est)

let scj_cmd =
  let algo =
    Arg.(
      value
      & opt
          (enum
             [ ("mm", `Mm); ("pretti", `Pretti); ("limit+", `Limit); ("piejoin", `Pie) ])
          `Mm
      & info [ "a"; "algo" ] ~docv:"ALGO"
          ~doc:"Algorithm: $(b,mm), $(b,pretti), $(b,limit+) or $(b,piejoin).")
  in
  let run name input scale seed domains algo adaptive budget_ms inject_est =
    let r = load_source name input scale seed in
    let guard = guard_of adaptive budget_ms inject_est in
    (match algo with
    | `Mm -> ()
    | `Pretti | `Limit | `Pie ->
      warn_guard_unsupported guard "the trie-based algorithms");
    let count, t =
      Jp_util.Timer.time (fun () ->
          Jp_relation.Pairs.count
            (match algo with
            | `Mm -> Jp_scj.Mm_scj.join ~domains ?guard r
            | `Pretti -> Jp_scj.Pretti.join r
            | `Limit -> Jp_scj.Limit_plus.join r
            | `Pie -> Jp_scj.Piejoin.join ~domains r))
    in
    report "set containment join" count t
  in
  Cmd.v
    (Cmd.info "scj" ~doc:"Set-containment self-join.")
    Term.(
      const run $ dataset $ input_file $ scale $ seed $ domains $ algo
      $ adaptive $ budget_ms $ inject_est)

let bsi_cmd =
  let batch =
    Arg.(value & opt int 500 & info [ "batch" ] ~docv:"C" ~doc:"Batch size.")
  in
  let rate =
    Arg.(value & opt float 1000.0 & info [ "rate" ] ~docv:"B" ~doc:"Queries per second.")
  in
  let count =
    Arg.(value & opt int 4000 & info [ "queries" ] ~docv:"Q" ~doc:"Workload size.")
  in
  let combinatorial =
    Arg.(value & flag & info [ "combinatorial" ] ~doc:"Use the combinatorial engine.")
  in
  let run name input scale seed domains batch rate count combinatorial adaptive
      budget_ms inject_est =
    let r = load_source name input scale seed in
    let guard = guard_of adaptive budget_ms inject_est in
    let n = Relation.src_count r in
    let queries = Jp_workload.Generate.batch_queries ~seed ~count ~nx:n ~nz:n () in
    let strategy = if combinatorial then Jp_bsi.Bsi.Combinatorial else Jp_bsi.Bsi.Mm in
    let stats =
      Jp_bsi.Bsi.simulate ~domains ~strategy ?guard ~r ~s:r ~queries ~rate
        ~batch_size:batch ()
    in
    Printf.printf
      "batch=%d  batches=%d  avg delay %s  max delay %s  units needed %.2f\n"
      stats.Jp_bsi.Bsi.batch_size stats.Jp_bsi.Bsi.batches
      (Jp_util.Tablefmt.seconds stats.Jp_bsi.Bsi.avg_delay)
      (Jp_util.Tablefmt.seconds stats.Jp_bsi.Bsi.max_delay)
      stats.Jp_bsi.Bsi.units_needed
  in
  Cmd.v
    (Cmd.info "bsi" ~doc:"Boolean set intersection under a batched workload.")
    Term.(
      const run $ dataset $ input_file $ scale $ seed $ domains $ batch $ rate
      $ count $ combinatorial $ adaptive $ budget_ms $ inject_est)

let write_text ~what path content =
  match open_out path with
  | oc ->
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc content);
    Printf.printf "wrote %s to %s\n" what path
  | exception Sys_error msg ->
    Printf.eprintf "joinproj: cannot write %s: %s\n" what msg;
    exit 1

(* Shared by profile, serve and stress. *)
let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Also write the span events as Chrome-trace JSON (load in \
           chrome://tracing or Perfetto).")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write an OpenMetrics/Prometheus text exposition of the run's \
           counters, gauges and latency histograms.")

let profile_cmd =
  let what =
    Arg.(
      required
      & pos 0
          (some
             (enum
                [ ("join", `Join); ("star", `Star); ("ssj", `Ssj); ("scj", `Scj); ("bsi", `Bsi) ]))
          None
      & info [] ~docv:"WHAT"
          ~doc:"Flow to profile: $(b,join), $(b,star), $(b,ssj), $(b,scj) or $(b,bsi).")
  in
  let run name input scale seed domains what trace_out metrics_out adaptive
      budget_ms inject_est tiled tile_bits mrmb =
    let r = load_source name input scale seed in
    let guard = guard_of adaptive budget_ms inject_est in
    let tile = tile_of tiled tile_bits mrmb in
    (match (tile, what) with
    | Some _, (`Star | `Ssj | `Scj | `Bsi) ->
      Printf.eprintf
        "joinproj: note: --tiled/--tile-bits/--max-resident-mb only affect \
         the join flow\n"
    | _ -> ());
    (* The plan lines come from the same helper as [explain]; print them
       before recording starts so the extra planning calls stay out of the
       span tree. *)
    (match what with
    | `Star -> ()
    | `Join | `Ssj | `Scj | `Bsi -> print_explain ~domains r);
    Jp_obs.reset ();
    Jp_metrics.reset ();
    Jp_obs.enable ();
    let label, count, t =
      Fun.protect ~finally:Jp_obs.disable (fun () ->
          Jp_util.Timer.time (fun () ->
              match what with
              | `Join ->
                Jp_relation.Pairs.count
                  (Two_path.project ~domains ?guard ?tile ~r ~s:r ())
              | `Star ->
                Jp_relation.Tuples.count
                  (Joinproj.Star.project ~domains ?guard (Array.make 3 r))
              | `Ssj ->
                Jp_relation.Pairs.count (Jp_ssj.Mm_ssj.join ~domains ?guard ~c:2 r)
              | `Scj -> Jp_relation.Pairs.count (Jp_scj.Mm_scj.join ~domains ?guard r)
              | `Bsi ->
                let n = Relation.src_count r in
                let queries =
                  Jp_workload.Generate.batch_queries ~seed ~count:4000 ~nx:n ~nz:n ()
                in
                let answers =
                  Jp_bsi.Bsi.answer_batch ~domains ?guard ~r ~s:r queries
                in
                Array.fold_left (fun acc hit -> if hit then acc + 1 else acc) 0 answers)
          |> fun (count, t) ->
          let label =
            match what with
            | `Join -> "two-path join-project"
            | `Star -> "star join (k=3)"
            | `Ssj -> "ssj (c=2)"
            | `Scj -> "set containment join"
            | `Bsi -> "bsi batch (4000 queries)"
          in
          (label, count, t))
    in
    report label count t;
    print_newline ();
    print_string (Jp_obs.render_spans ());
    print_newline ();
    print_string (Jp_obs.render_counters ());
    print_newline ();
    print_string (Jp_obs.render_plans ());
    (match trace_out with
    | None -> ()
    | Some path ->
      write_text ~what:"Chrome trace" path (Jp_metrics.chrome_trace_string ()));
    match metrics_out with
    | None -> ()
    | Some path ->
      write_text ~what:"OpenMetrics exposition" path (Jp_metrics.exposition ())
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a flow with Jp_obs recording enabled and print the span tree, \
          the engine counters and the plan-vs-actual table.")
    Term.(
      const run $ dataset $ input_file $ scale $ seed $ domains $ what
      $ trace_out_arg $ metrics_out_arg $ adaptive $ budget_ms $ inject_est
      $ tiled_flag $ tile_bits_arg $ max_resident_mb)

let policy_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("auto", Jp_query.Planner.Cost_gate);
             ("mm", Jp_query.Planner.Always_mm);
             ("yannakakis", Jp_query.Planner.Never_mm);
           ])
        Jp_query.Planner.Cost_gate
    & info [ "policy" ] ~docv:"P"
        ~doc:
          "Fragment dispatch policy: $(b,auto) (carve MM fragments when the \
           calibrated cost model predicts a win), $(b,mm) (force every \
           eligible fragment through the MM engines), $(b,yannakakis) (pure \
           semijoin program, no MM fragments).")

let query_cmd =
  let query_text =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"QUERY"
          ~doc:
            "Conjunctive query, e.g. 'Q(x,z) :- R(x,y), S(z,y)'.  The \
             relations R, S and T all resolve to the chosen dataset.")
  in
  let explain_flag =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "Print the full plan tree (stitch root, MM fragments with their \
             cost-gate estimates, scans) before running.")
  in
  let run name input scale seed domains policy explain_flag cache_mb adaptive
      budget_ms inject_est query_text =
    let r = load_source name input scale seed in
    let catalog = [ ("R", r); ("S", r); ("T", r) ] in
    let guard = guard_of adaptive budget_ms inject_est in
    let cache =
      if cache_mb > 0 then
        Some (Jp_cache.create ~config:(Jp_cache.with_budget_mb cache_mb) ())
      else None
    in
    match Jp_query.Cq.parse query_text with
    | Error e -> prerr_endline e
    | Ok q -> (
      (match Jp_query.Engine.plan_of ~domains ~policy ~catalog q with
      | Ok plan ->
        print_endline ("plan: " ^ Jp_query.Engine.describe plan);
        if explain_flag then print_string (Jp_query.Engine.explain plan)
      | Error e -> print_endline ("plan: " ^ e));
      if q.Jp_query.Cq.head = [] then begin
        let result, t =
          Jp_util.Timer.time (fun () ->
              Jp_query.Engine.boolean ~domains ~policy ?guard ?cache catalog q)
        in
        match result with
        | Error e -> prerr_endline e
        | Ok sat ->
          Printf.printf "boolean: %s in %s\n"
            (if sat then "true" else "false")
            (Jp_util.Tablefmt.seconds t)
      end
      else begin
        let result, t =
          Jp_util.Timer.time (fun () ->
              Jp_query.Engine.run ~domains ~policy ?guard ?cache catalog q)
        in
        match result with
        | Error e -> prerr_endline e
        | Ok tuples ->
          Printf.printf "%s tuples in %s\n"
            (Jp_util.Tablefmt.big_int (Jp_relation.Tuples.count tuples))
            (Jp_util.Tablefmt.seconds t);
          let shown = ref 0 in
          (try
             Jp_relation.Tuples.iter
               (fun tuple ->
                 if !shown >= 5 then raise Exit;
                 incr shown;
                 Printf.printf "  (%s)\n"
                   (String.concat ", " (List.map string_of_int (Array.to_list tuple))))
               tuples
           with Exit -> print_endline "  ...")
      end)
  in
  let cache_mb_query =
    Arg.(
      value & opt int 0
      & info [ "cache-mb" ] ~docv:"MB"
          ~doc:
            "Semantic cache budget in megabytes (prepared statistics and \
             heavy matrix products are reused across this query's MM \
             fragments); 0 disables caching.")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Evaluate a conjunctive query.  Whole-query star shapes dispatch \
          directly to MMJoin; every other acyclic query goes through the \
          decomposition planner, which carves embedded 2-path / k-star \
          fragments for the MM engines (cost-gated; see $(b,--policy)) and \
          stitches them back into the Yannakakis semijoin program.  An \
          empty head, e.g. 'Q() :- R(x,y), S(z,y)', is answered as a \
          boolean query.")
    Term.(
      const run $ dataset $ input_file $ scale $ seed $ domains $ policy_arg
      $ explain_flag $ cache_mb_query $ adaptive $ budget_ms $ inject_est
      $ query_text)

let export_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Destination path (native format).")
  in
  let run name input scale seed out =
    let r = load_source name input scale seed in
    Jp_io.Relation_io.save_file r out;
    Printf.printf "wrote %s tuples to %s\n"
      (Jp_util.Tablefmt.big_int (Relation.size r))
      out
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Write a dataset to a file in the native format.")
    Term.(const run $ dataset $ input_file $ scale $ seed $ out)

let stats_cmd =
  let run name input scale seed =
    let r = load_source name input scale seed in
    let ch = Presets.characteristics r in
    Printf.printf "tuples %s, sets %s, dom %s, avg size %.1f (min %d, max %d)\n"
      (Jp_util.Tablefmt.big_int ch.Presets.tuples)
      (Jp_util.Tablefmt.big_int ch.Presets.sets)
      (Jp_util.Tablefmt.big_int ch.Presets.dom)
      ch.Presets.avg_size ch.Presets.min_size ch.Presets.max_size;
    Printf.printf "full 2-path self-join size: %s\n"
      (Jp_util.Tablefmt.big_int (Relation.join_size_on_dst [ r; r ]))
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Characteristics of a dataset or imported file.")
    Term.(const run $ dataset $ input_file $ scale $ seed)

(* ------------------------------------------------------------------ *)
(* serve / stress: the resilient query service                         *)

(* The query pool for the general-CQ service flavour: acyclic,
   non-whole-star queries that exercise the decomposition planner (carved
   2-path fragments stitched into Yannakakis, boolean heads, dangling
   variables).  All relation names resolve to the query's sub-relation. *)
let cq_pool =
  lazy
    (Array.map
       (fun s -> Result.get_ok (Jp_query.Cq.parse s))
       [|
         "Q(a, d) :- R(a, b), S(b, c), T(c, d)";
         "Q(a) :- R(a, b), S(c, b), T(c, d)";
         "Q(a, c) :- R(a, b), S(c, b), T(c, d)";
         "Q() :- R(a, b), S(c, b)";
       |])

(* The served workload: query i runs one of five engine flavours on a
   pseudo-random sub-relation of the dataset (seeded per query, so the
   workload — and the chaos plan keyed on the query index — is
   reproducible).  Expected outputs come from direct, fault-free engine
   calls before the service starts; a served query must match them
   exactly or end in a typed error.  [flavour] other than [`Auto] pins
   every query to one engine.

   With [skew] > 0 the queries draw their identity from a pool of
   [~nq/4] distinct sub-relations with Zipf([skew]) popularity — the
   repeated-query traffic a semantic cache exists for.  [skew] = 0 keeps
   the historical one-distinct-query-per-submission workload. *)
let service_workload ~seed ~domains ~nq ~skew ~flavour r =
  let n = Relation.src_count r in
  let distinct = if skew > 0.0 then max 1 ((nq + 3) / 4) else nq in
  let ident =
    if skew > 0.0 then begin
      let z = Jp_workload.Zipf.create ~exponent:skew distinct in
      let g = Jp_util.Rng.create (seed + 13) in
      Array.init nq (fun _ -> Jp_workload.Zipf.sample z g)
    end
    else Array.init nq (fun i -> i)
  in
  let engine_of i =
    match flavour with
    | `Mm -> ("mm", `Mm)
    | `Nonmm -> ("nonmm", `Nonmm)
    | `Ssj -> ("ssj", `Ssj)
    | `Scj -> ("scj", `Scj)
    | `Cq -> ("cq", `Cq)
    | `Auto -> (
      match ident.(i) mod 5 with
      | 0 -> ("mm", `Mm)
      | 1 -> ("nonmm", `Nonmm)
      | 2 -> ("ssj", `Ssj)
      | 3 -> ("scj", `Scj)
      | _ -> ("cq", `Cq))
  in
  let engine_code i =
    match snd (engine_of i) with
    | `Mm -> 0
    | `Nonmm -> 1
    | `Ssj -> 2
    | `Scj -> 3
    | `Cq -> 4
  in
  let subs =
    Array.init distinct (fun d ->
        let g = Jp_util.Rng.create (seed + (7919 * d)) in
        let frac = 0.3 +. Jp_util.Rng.float g 0.4 in
        let keep = Array.init n (fun _ -> Jp_util.Rng.float g 1.0 < frac) in
        Relation.restrict_src r (fun a -> keep.(a)))
  in
  let sub_of i = subs.(ident.(i)) in
  let count_of ?guard ?cancel ?cache i =
    let sub = sub_of i in
    let memo =
      Option.map (fun c -> Jp_cache.two_path_memo c ~r:sub ~s:sub) cache
    in
    match snd (engine_of i) with
    | `Mm ->
      Jp_relation.Pairs.count
        (Two_path.project ~domains ?guard ?cancel ?memo ~r:sub ~s:sub ())
    | `Nonmm ->
      Jp_relation.Pairs.count
        (Two_path.project ~domains ~strategy:Two_path.Combinatorial ?guard
           ?cancel ~r:sub ~s:sub ())
    | `Ssj ->
      Jp_relation.Pairs.count
        (Jp_ssj.Mm_ssj.join ~domains ?guard ?cancel ?cache ~c:2 sub)
    | `Scj ->
      Jp_relation.Pairs.count (Jp_scj.Mm_scj.join ~domains ?guard ?cancel ?cache sub)
    | `Cq -> (
      let pool = Lazy.force cq_pool in
      let q = pool.(ident.(i) mod Array.length pool) in
      let catalog = [ ("R", sub); ("S", sub); ("T", sub) ] in
      if q.Jp_query.Cq.head = [] then
        match Jp_query.Engine.boolean ~domains ?guard ?cancel ?cache catalog q with
        | Ok sat -> if sat then 1 else 0
        | Error e -> failwith ("cq flavour: " ^ e)
      else
        match Jp_query.Engine.run ~domains ?guard ?cancel ?cache catalog q with
        | Ok tuples -> Jp_relation.Tuples.count tuples
        | Error e -> failwith ("cq flavour: " ^ e))
  in
  (engine_of, engine_code, count_of, sub_of)

let run_service ~name ~input ~scale ~seed ~domains ~nq ~workers ~queue_cap
    ~retries ~backoff_ms ~deadline_ms ~chaos ~cache_mb ~skew ~flavour
    ~open_loop ~rate ~sweep ~arrivals ~no_ctl ~metrics_out ~trace_out =
  let r = load_source name input scale seed in
  Jp_obs.reset ();
  Jp_metrics.reset ();
  Jp_obs.enable ();
  let engine_of, engine_code, count_of, sub_of =
    service_workload ~seed ~domains ~nq ~skew ~flavour r
  in
  (* Expected answers come from direct, cache-free calls: the cache must
     only ever reproduce them. *)
  let expected = Array.init nq (fun i -> count_of i) in
  let cache =
    if cache_mb > 0 then
      Some (Jp_cache.create ~config:(Jp_cache.with_budget_mb cache_mb) ())
    else None
  in
  let count_tag : int Jp_cache.tag = Jp_cache.tag "serve.count" in
  let binding_of i =
    Option.map
      (fun c ->
        let key =
          Jp_cache.Key.of_relations ~kind:"serve.result"
            ~params:[ engine_code i ]
            [ sub_of i ]
        in
        Jp_cache.binding c count_tag key
          ~bytes_of:(fun _ -> 16)
          ~verify:(fun v -> v = expected.(i))
          ())
      cache
  in
  let cfg =
    {
      Jp_service.workers;
      queue_capacity = queue_cap;
      max_retries = retries;
      backoff_s = backoff_ms /. 1e3;
      default_deadline_s = Option.map (fun ms -> ms /. 1e3) deadline_ms;
      chaos;
      controller =
        (if open_loop && not no_ctl then Some Jp_service.Overload.default
         else None);
    }
  in
  let submit_one svc i =
    Jp_service.submit svc ~key:i ?cached:(binding_of i)
      (fun ~cancel ~attempt:_ ~degraded ->
        let guard = if degraded then Some Jp_adaptive.Guard.safe else None in
        count_of ?guard ~cancel ?cache i)
  in
  let wrong = ref 0 in
  if open_loop then begin
    (* Open-loop: arrivals come from a fixed, seeded schedule that never
       waits for the service — a rate past saturation piles up queueing
       instead of stretching the client.  One fresh service (and fresh
       controller state) per swept rate. *)
    let rates =
      match sweep with
      | Some (lo, hi, steps) -> Jp_workload.Arrivals.sweep ~lo ~hi ~steps
      | None -> [| rate |]
    in
    let header =
      [ "rate"; "sub"; "ok"; "hit"; "shed"; "qfull"; "expired"; "deadline";
        "cancel"; "fail"; "p50"; "p95"; "p99"; "goodput" ]
    in
    let module Hist = Jp_metrics.Hist in
    let rows =
      Array.to_list rates
      |> List.map (fun rate ->
             let svc = Jp_service.create cfg in
             let schedule =
               Jp_workload.Arrivals.schedule ~process:arrivals ~seed ~rate
                 ~count:nq ()
             in
             let tickets = Array.make nq None in
             let start =
               Jp_workload.Arrivals.drive ~now:Jp_util.Timer.now
                 ~sleep:Unix.sleepf ~schedule (fun i ->
                   tickets.(i) <- Some (submit_one svc i))
             in
             let reports =
               Array.map
                 (fun tk -> Jp_service.await (Option.get tk))
                 tickets
             in
             let makespan = Jp_util.Timer.now () -. start in
             Jp_service.shutdown svc;
             let tally = Hashtbl.create 8 in
             let bump k =
               Hashtbl.replace tally k
                 (1 + Option.value ~default:0 (Hashtbl.find_opt tally k))
             in
             let e2e = Hist.create () in
             let ok = ref 0 in
             Array.iteri
               (fun i rep ->
                 match rep.Jp_service.outcome with
                 | Ok c ->
                   if c <> expected.(i) then incr wrong;
                   incr ok;
                   if rep.Jp_service.cache_hit then bump "hit";
                   Hist.observe e2e
                     (rep.Jp_service.queued_s +. rep.Jp_service.ran_s)
                 | Error e -> bump (Jp_service.error_to_string e))
               reports;
             let n k =
               string_of_int (Option.value ~default:0 (Hashtbl.find_opt tally k))
             in
             let cell q =
               if Hist.count e2e = 0 then "-"
               else Jp_util.Tablefmt.seconds (Hist.quantile e2e q)
             in
             (* Goodput counts answers produced within their deadline: an
                Ok outcome already implies that when a deadline is armed
                (expiry is a typed error), so it is simply Ok/s. *)
             let goodput =
               if makespan > 0. then float_of_int !ok /. makespan else 0.
             in
             [
               Printf.sprintf "%.1f/s" rate;
               string_of_int nq;
               string_of_int !ok;
               n "hit";
               n "shed";
               n "overloaded";
               n "expired-in-queue";
               n "deadline";
               n "cancelled";
               (let f = ref 0 in
                Hashtbl.iter
                  (fun k v ->
                    if String.length k >= 6 && String.sub k 0 6 = "failed" then
                      f := !f + v)
                  tally;
                string_of_int !f);
               cell 0.50;
               cell 0.95;
               cell 0.99;
               Printf.sprintf "%.1f/s" goodput;
             ])
    in
    Printf.printf "open-loop %s arrivals, %d queries per rate, controller %s\n\n"
      (Jp_workload.Arrivals.process_to_string arrivals)
      nq
      (if no_ctl then "off" else "on");
    Jp_util.Tablefmt.print ~header ~rows;
    print_newline ();
    print_string (Jp_obs.render_counters ());
    (match cache with
    | None -> ()
    | Some c -> Format.printf "\n%a@." Jp_cache.pp_stats (Jp_cache.stats c));
    (match metrics_out with
    | None -> ()
    | Some path ->
      write_text ~what:"OpenMetrics exposition" path (Jp_metrics.exposition ()));
    (match trace_out with
    | None -> ()
    | Some path ->
      write_text ~what:"Chrome trace" path (Jp_metrics.chrome_trace_string ()));
    let spawned = Jp_obs.value Jp_obs.C.service_workers_spawned in
    let joined = Jp_obs.value Jp_obs.C.service_workers_joined in
    Jp_obs.disable ();
    if !wrong > 0 then begin
      Printf.eprintf
        "joinproj: error: %d served queries returned wrong results\n" !wrong;
      exit 1
    end;
    if spawned <> joined then begin
      Printf.eprintf
        "joinproj: error: leaked worker domains (%d spawned, %d joined)\n"
        spawned joined;
      exit 1
    end
  end
  else begin
  let svc = Jp_service.create cfg in
  let reports =
    if Option.is_none cache then
      (* Fire-and-await client: everything is in flight at once (this is
         what exercises admission control). *)
      Array.map Jp_service.await (Array.init nq (submit_one svc))
    else
      (* Closed-loop when the cache is armed: a repeated query can only
         hit an entry once the earlier identical query has completed and
         published. *)
      Array.init nq (fun i -> Jp_service.await (submit_one svc i))
  in
  Jp_service.shutdown svc;
  let header =
    [ "q"; "engine"; "outcome"; "att"; "retry"; "deg"; "hit"; "out"; "expect";
      "ok"; "ran" ]
  in
  let rows =
    List.init nq (fun i ->
        let rep = reports.(i) in
        let out, outcome, ok =
          match rep.Jp_service.outcome with
          | Ok c ->
            let ok = c = expected.(i) in
            if not ok then incr wrong;
            (string_of_int c, "ok", if ok then "yes" else "WRONG")
          | Error e -> ("-", Jp_service.error_to_string e, "-")
        in
        [
          string_of_int i;
          fst (engine_of i);
          outcome;
          string_of_int rep.Jp_service.attempts;
          string_of_int rep.Jp_service.retries;
          (if rep.Jp_service.degraded then "yes" else "-");
          (if rep.Jp_service.cache_hit then "yes" else "-");
          out;
          string_of_int expected.(i);
          ok;
          Jp_util.Tablefmt.seconds rep.Jp_service.ran_s;
        ])
  in
  Jp_util.Tablefmt.print ~header ~rows;
  print_newline ();
  print_string (Jp_obs.render_counters ());
  (match cache with
  | None -> ()
  | Some c ->
    Format.printf "\n%a@." Jp_cache.pp_stats (Jp_cache.stats c));
  (* Latency summary over the run's reports, bucketed with the same
     base-√2 ladder as the service histograms: quantiles are bucket upper
     bounds, so the table's shape (and, for a fixed seed, its bucket
     placement) is deterministic even though raw times vary. *)
  let module Hist = Jp_metrics.Hist in
  let outcome_keys =
    [ "ok"; "ok (cache hit)"; "overloaded"; "shed"; "expired"; "deadline";
      "cancelled"; "failed" ]
  in
  let by_outcome = List.map (fun k -> (k, Hist.create ())) outcome_keys in
  let queued = Hist.create () and ran = Hist.create () in
  Array.iter
    (fun rep ->
      let key =
        match rep.Jp_service.outcome with
        | Ok _ -> if rep.Jp_service.cache_hit then "ok (cache hit)" else "ok"
        | Error Jp_service.Overloaded -> "overloaded"
        | Error Jp_service.Shed -> "shed"
        | Error Jp_service.Expired_in_queue -> "expired"
        | Error Jp_service.Deadline_exceeded -> "deadline"
        | Error Jp_service.Cancelled -> "cancelled"
        | Error (Jp_service.Failed _) -> "failed"
      in
      Hist.observe (List.assoc key by_outcome) rep.Jp_service.ran_s;
      (* Queries refused at admission (queue full or shed) never entered
         the queue: they would only dilute the latency distributions with
         zeros. *)
      if key <> "overloaded" && key <> "shed" then begin
        Hist.observe queued rep.Jp_service.queued_s;
        Hist.observe ran rep.Jp_service.ran_s
      end)
    reports;
  let cell h q =
    if Hist.count h = 0 then "-" else Jp_util.Tablefmt.seconds (Hist.quantile h q)
  in
  let cell_max h =
    if Hist.count h = 0 then "-"
    else Jp_util.Tablefmt.seconds (Hist.max_value h)
  in
  print_newline ();
  Jp_util.Tablefmt.print
    ~header:[ "latency"; "p50"; "p95"; "p99"; "max"; "n" ]
    ~rows:
      (List.map
         (fun (label, h) ->
           [
             label;
             cell h 0.50;
             cell h 0.95;
             cell h 0.99;
             cell_max h;
             string_of_int (Hist.count h);
           ])
         [ ("queued", queued); ("ran", ran) ]);
  print_newline ();
  Jp_util.Tablefmt.print
    ~header:[ "outcome"; "n"; "ran p50"; "ran p95"; "ran max" ]
    ~rows:
      (List.map
         (fun (k, h) ->
           [ k; string_of_int (Hist.count h); cell h 0.50; cell h 0.95;
             cell_max h ])
         by_outcome);
  (match metrics_out with
  | None -> ()
  | Some path ->
    write_text ~what:"OpenMetrics exposition" path (Jp_metrics.exposition ()));
  (match trace_out with
  | None -> ()
  | Some path ->
    write_text ~what:"Chrome trace" path (Jp_metrics.chrome_trace_string ()));
  let spawned = Jp_obs.value Jp_obs.C.service_workers_spawned in
  let joined = Jp_obs.value Jp_obs.C.service_workers_joined in
  Jp_obs.disable ();
  let completed =
    Array.fold_left
      (fun acc rep ->
        match rep.Jp_service.outcome with Ok _ -> acc + 1 | Error _ -> acc)
      0 reports
  in
  Printf.printf "\n%d/%d completed, %d wrong, workers %d spawned / %d joined\n"
    completed nq !wrong spawned joined;
  if !wrong > 0 then begin
    Printf.eprintf "joinproj: error: %d served queries returned wrong results\n"
      !wrong;
    exit 1
  end;
  if spawned <> joined then begin
    Printf.eprintf "joinproj: error: leaked worker domains (%d spawned, %d joined)\n"
      spawned joined;
    exit 1
  end
  end

(* Flags shared by serve and stress. *)
let queries_n =
  Arg.(
    value & opt int 24
    & info [ "queries" ] ~docv:"Q" ~doc:"Number of queries to submit.")

let workers_arg =
  Arg.(
    value & opt int 2
    & info [ "workers" ] ~docv:"W" ~doc:"Service worker domains.")

let queue_cap =
  Arg.(
    value & opt int 64
    & info [ "queue-cap" ] ~docv:"N"
        ~doc:"Admission bound; submissions beyond it are rejected as overloaded.")

let retries_arg =
  Arg.(
    value & opt int 2
    & info [ "retries" ] ~docv:"N"
        ~doc:"Transient-fault retries before the degraded final attempt.")

let backoff_ms =
  Arg.(
    value & opt float 5.0
    & info [ "backoff-ms" ] ~docv:"MS" ~doc:"Base retry backoff (doubles per retry).")

let deadline_ms =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:"Per-query deadline; expired queries report a typed error.")

let cache_mb_arg =
  Arg.(
    value & opt int 0
    & info [ "cache-mb" ] ~docv:"MB"
        ~doc:
          "Semantic cache budget (prepared statistics, matrix products, \
           results) in megabytes; 0 disables caching.")

let query_skew =
  Arg.(
    value & opt float 0.0
    & info [ "query-skew" ] ~docv:"EXP"
        ~doc:
          "Zipf exponent for query popularity: queries draw from a pool of \
           Q/4 distinct sub-relations, so hot queries repeat.  0 keeps every \
           query distinct.")

let open_loop_flag =
  Arg.(
    value & flag
    & info [ "open-loop" ]
        ~doc:
          "Submit queries on a fixed, seeded arrival schedule instead of the \
           fire-and-await client: arrivals never wait for the service, so a \
           rate past saturation shows up as queueing (and overload-control \
           behaviour), not as a slower client.  Arms the overload controller \
           unless $(b,--no-overload-control).")

let rate_arg =
  Arg.(
    value & opt float 50.0
    & info [ "rate" ] ~docv:"QPS"
        ~doc:"Open-loop arrival rate in queries per second.")

let sweep_conv =
  let parse s =
    match Scanf.sscanf_opt s "%f:%f:%d%!" (fun lo hi n -> (lo, hi, n)) with
    | Some (lo, hi, n) when lo > 0.0 && hi >= lo && n >= 1 -> Ok (lo, hi, n)
    | _ -> Error (`Msg "expected LO:HI:STEPS with 0 < LO <= HI, STEPS >= 1")
  in
  let print ppf (lo, hi, n) = Format.fprintf ppf "%g:%g:%d" lo hi n in
  Arg.conv (parse, print)

let sweep_arg =
  Arg.(
    value
    & opt (some sweep_conv) None
    & info [ "sweep" ] ~docv:"LO:HI:STEPS"
        ~doc:
          "Saturation sweep: run the open-loop workload at STEPS arrival \
           rates stepped geometrically from LO to HI queries/second \
           (overrides $(b,--rate)).")

let arrivals_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("fixed", Jp_workload.Arrivals.Fixed_rate);
             ("poisson", Jp_workload.Arrivals.Poisson);
           ])
        Jp_workload.Arrivals.Fixed_rate
    & info [ "arrivals" ] ~docv:"P"
        ~doc:
          "Open-loop arrival process: $(b,fixed) (query i arrives exactly at \
           i/rate) or $(b,poisson) (seeded exponential interarrivals).")

let no_ctl_flag =
  Arg.(
    value & flag
    & info [ "no-overload-control" ]
        ~doc:
          "Disable the overload controller under $(b,--open-loop) (the \
           collapse foil): admission falls back to the bare bounded queue.")

let flavour_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("auto", `Auto);
             ("mm", `Mm);
             ("nonmm", `Nonmm);
             ("ssj", `Ssj);
             ("scj", `Scj);
             ("cq", `Cq);
           ])
        `Auto
    & info [ "flavour" ] ~docv:"F"
        ~doc:
          "Engine flavour for every query: $(b,mm), $(b,nonmm), $(b,ssj), \
           $(b,scj) or $(b,cq) (general conjunctive queries through the \
           decomposition planner).  $(b,auto) cycles through all five.")

let serve_cmd =
  let run name input scale seed domains nq workers queue_cap retries backoff_ms
      deadline_ms cache_mb skew flavour open_loop rate sweep arrivals no_ctl
      metrics_out trace_out =
    run_service ~name ~input ~scale ~seed ~domains ~nq ~workers ~queue_cap
      ~retries ~backoff_ms ~deadline_ms ~chaos:None ~cache_mb ~skew ~flavour
      ~open_loop ~rate ~sweep ~arrivals ~no_ctl ~metrics_out ~trace_out
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a query workload through the resilient service (bounded queue, \
          worker domains, deadlines) and verify every answer against direct \
          engine calls.  $(b,--cache-mb) arms the cross-query semantic cache; \
          $(b,--query-skew) makes the workload Zipf-repeated so it has \
          something to hit.  $(b,--open-loop) $(b,--rate) (or $(b,--sweep)) \
          switches to a seeded arrival schedule with goodput and \
          p50/p95/p99 reporting, with the overload controller armed.")
    Term.(
      const run $ dataset $ input_file $ scale $ seed $ domains $ queries_n
      $ workers_arg $ queue_cap $ retries_arg $ backoff_ms $ deadline_ms
      $ cache_mb_arg $ query_skew $ flavour_arg $ open_loop_flag $ rate_arg
      $ sweep_arg $ arrivals_arg $ no_ctl_flag $ metrics_out_arg
      $ trace_out_arg)

let stress_cmd =
  let chaos_seed =
    Arg.(
      value & opt int 1
      & info [ "chaos-seed" ] ~docv:"SEED"
          ~doc:"Fault-injection seed; equal seeds inject identical faults.")
  in
  let p_transient =
    Arg.(
      value & opt float 0.20
      & info [ "p-transient" ] ~docv:"P" ~doc:"Probability of a transient fault per attempt.")
  in
  let p_kill =
    Arg.(
      value & opt float 0.05
      & info [ "p-kill" ] ~docv:"P" ~doc:"Probability of a worker-domain death per attempt.")
  in
  let p_slow =
    Arg.(
      value & opt float 0.05
      & info [ "p-slow" ] ~docv:"P" ~doc:"Probability of an artificial slowdown per attempt.")
  in
  let slow_ms =
    Arg.(
      value & opt float 20.0
      & info [ "slow-ms" ] ~docv:"MS" ~doc:"Length of injected slowdowns.")
  in
  let run name input scale seed domains nq workers queue_cap retries backoff_ms
      deadline_ms cache_mb skew flavour open_loop rate sweep arrivals no_ctl
      metrics_out trace_out chaos_seed p_transient p_kill p_slow slow_ms =
    let chaos =
      Some
        {
          Jp_chaos.none with
          Jp_chaos.seed = chaos_seed;
          p_transient;
          p_worker_kill = p_kill;
          p_slowdown = p_slow;
          slowdown_s = slow_ms /. 1e3;
        }
    in
    run_service ~name ~input ~scale ~seed ~domains ~nq ~workers ~queue_cap
      ~retries ~backoff_ms ~deadline_ms ~chaos ~cache_mb ~skew ~flavour
      ~open_loop ~rate ~sweep ~arrivals ~no_ctl ~metrics_out ~trace_out
  in
  Cmd.v
    (Cmd.info "stress"
       ~doc:
         "Like $(b,serve), but with deterministic chaos injection: transient \
          faults, worker-domain deaths and slowdowns seeded by \
          $(b,--chaos-seed).  Every completed query must still match the \
          fault-free answer (possibly after retries or degradation) — wrong \
          results exit non-zero.")
    Term.(
      const run $ dataset $ input_file $ scale $ seed $ domains $ queries_n
      $ workers_arg $ queue_cap $ retries_arg $ backoff_ms $ deadline_ms
      $ cache_mb_arg $ query_skew $ flavour_arg $ open_loop_flag $ rate_arg
      $ sweep_arg $ arrivals_arg $ no_ctl_flag $ metrics_out_arg
      $ trace_out_arg $ chaos_seed $ p_transient $ p_kill $ p_slow $ slow_ms)

let calibrate_cmd =
  let run () =
    let m = Jp_matrix.Cost.calibrate ~quick:false () in
    Printf.printf "Ts (sequential access)      %.3e s\n" m.Jp_matrix.Cost.ts;
    Printf.printf "Tm (allocation per 32B)     %.3e s\n" m.Jp_matrix.Cost.tm;
    Printf.printf "TI (join tuple processing)  %.3e s\n" m.Jp_matrix.Cost.ti;
    Printf.printf "count MM (per 62-bit word)  %.3e s\n" m.Jp_matrix.Cost.count_word;
    Printf.printf "bool MM  (per 62-bit word)  %.3e s\n" m.Jp_matrix.Cost.bool_word;
    Printf.printf "cores                       %d\n" m.Jp_matrix.Cost.cores
  in
  Cmd.v
    (Cmd.info "calibrate" ~doc:"Measure the Table-1 machine constants.")
    Term.(const run $ const ())

let () =
  let doc = "fast join-project query evaluation using matrix multiplication" in
  let info = Cmd.info "joinproj" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [
        datasets_cmd;
        explain_cmd;
        join_cmd;
        star_cmd;
        ssj_cmd;
        scj_cmd;
        bsi_cmd;
        serve_cmd;
        stress_cmd;
        profile_cmd;
        query_cmd;
        export_cmd;
        stats_cmd;
        calibrate_cmd;
      ]
  in
  (* User errors (bad -d/-i, k < 2, unreadable files, unknown subcommand)
     are one-line messages with a usage hint and exit code 2 — never
     backtraces.  [~catch:false] lets Failure/Sys_error reach us instead
     of cmdliner's backtrace printer; parse errors (cmdliner's own exit
     124) are folded into the same code. *)
  let code =
    try Cmd.eval ~catch:false group with
    | Failure msg | Sys_error msg ->
      Printf.eprintf "joinproj: error: %s\n" msg;
      Printf.eprintf "Run 'joinproj --help' or 'joinproj COMMAND --help' for usage.\n";
      2
  in
  exit (if code = Cmd.Exit.cli_error then 2 else code)
