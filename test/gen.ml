(* Shared random-instance generators for the test suites. *)

module Relation = Jp_relation.Relation

let rng seed = Jp_util.Rng.create seed

(* A random bipartite relation with [edges] attempted edges over
   [nx] x [ny]; duplicates are generated on purpose to exercise dedup. *)
let random_relation ?(seed = 42) ~nx ~ny ~edges () =
  let g = rng seed in
  let flat = Array.make (2 * edges) 0 in
  for i = 0 to edges - 1 do
    flat.(2 * i) <- Jp_util.Rng.int g nx;
    flat.((2 * i) + 1) <- Jp_util.Rng.int g ny
  done;
  Relation.of_flat ~src_count:nx ~dst_count:ny flat

(* Skewed (Zipf-ish) relation: degree of y decays as 1/(y+1). *)
let skewed_relation ?(seed = 7) ~nx ~ny ~edges () =
  let g = rng seed in
  let flat = Array.make (2 * edges) 0 in
  for i = 0 to edges - 1 do
    let y =
      let u = Jp_util.Rng.float g 1.0 in
      let v = int_of_float (float_of_int ny ** u) - 1 in
      min (ny - 1) (max 0 v)
    in
    flat.(2 * i) <- Jp_util.Rng.int g nx;
    flat.((2 * i) + 1) <- y
  done;
  Relation.of_flat ~src_count:nx ~dst_count:ny flat

(* Brute-force reference: projected 2-path join as a sorted pair list. *)
let brute_two_path ~r ~s =
  let acc = Hashtbl.create 97 in
  Relation.iter
    (fun x y ->
      for z = 0 to Relation.src_count s - 1 do
        if Relation.mem s z y then Hashtbl.replace acc (x, z) ()
      done)
    r;
  List.sort compare (Hashtbl.fold (fun k () l -> k :: l) acc [])

(* Brute-force counted reference: (x, z) -> #witnesses. *)
let brute_two_path_counts ~r ~s =
  let acc = Hashtbl.create 97 in
  Relation.iter
    (fun x y ->
      Array.iter
        (fun z ->
          let k = (x, z) in
          Hashtbl.replace acc k (1 + Option.value ~default:0 (Hashtbl.find_opt acc k)))
        (Relation.adj_dst s y))
    r;
  List.sort compare (Hashtbl.fold (fun k v l -> (k, v) :: l) acc [])

(* ------------------------------------------------------------------ *)
(* random acyclic conjunctive queries (for the planner fuzz harness)   *)

module Cq = Jp_query.Cq

type cq_case = { query : Cq.t; catalog : (string * Relation.t) list }

(* Brute-force CQ evaluation: enumerate all variable assignments over
   [0, dom).  Head rows are sorted lists; a boolean (empty-head) query
   yields [[]] when satisfiable and [] when not.  Negative or
   out-of-range constants simply never match. *)
let brute_cq catalog q =
  let vars = Cq.vars q in
  let dom =
    List.fold_left
      (fun acc (_, r) -> max acc (max (Relation.src_count r) (Relation.dst_count r)))
      0 catalog
  in
  let results = Hashtbl.create 64 in
  let assignment = Hashtbl.create 8 in
  let term_value = function
    | Cq.Const k -> k
    | Cq.Var v -> Hashtbl.find assignment v
  in
  let satisfied () =
    List.for_all
      (fun atom ->
        let r = List.assoc atom.Cq.relation catalog in
        let x, y = atom.Cq.args in
        let xv = term_value x and yv = term_value y in
        xv >= 0 && yv >= 0
        && xv < Relation.src_count r
        && yv < Relation.dst_count r
        && Relation.mem r xv yv)
      q.Cq.body
  in
  let rec assign = function
    | [] ->
      if satisfied () then
        Hashtbl.replace results
          (List.map (fun v -> Hashtbl.find assignment v) q.Cq.head)
          ()
    | v :: rest ->
      for value = 0 to dom - 1 do
        Hashtbl.replace assignment v value;
        assign rest
      done
  in
  assign vars;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) results [])

let brute_cq_boolean catalog q = brute_cq catalog { q with Cq.head = [] } <> []

(* A random acyclic conjunctive query with its catalog.  Queries are
   acyclic by construction: each component grows as a forest (tree
   extension with a fresh variable, or a star burst of fresh leaves
   around an existing center), plus occasional parallel edges (covered
   atoms).  Mutations then inject constants and repeated variables —
   both only shrink hyperedges, which preserves acyclicity for binary
   atoms.  Heads are random subsets of the surviving body variables,
   occasionally with a duplicate, occasionally empty (boolean).  The
   projected-away interior variables are exactly what makes fragments
   carvable, so the planner sees plenty of 2-path and star shapes. *)
let random_cq ?(seed = 0) () =
  let g = rng (31 + (7919 * seed)) in
  let dom = 5 in
  let max_vars = 6 in
  let var i = Printf.sprintf "v%d" i in
  let next_var = ref 0 in
  let fresh () =
    let v = !next_var in
    incr next_var;
    var v
  in
  let rel () = Printf.sprintf "R%d" (Jp_util.Rng.int g 3) in
  let atoms = ref [] in
  let add a b =
    let args = if Jp_util.Rng.bool g then (Cq.Var a, Cq.Var b) else (Cq.Var b, Cq.Var a) in
    atoms := { Cq.relation = rel (); args } :: !atoms
  in
  let components = 1 + Jp_util.Rng.int g 2 in
  for _comp = 1 to components do
    if !next_var < max_vars then begin
      let comp_vars = ref [ fresh () ] in
      let comp_pairs = ref [] in
      let pick_existing () =
        List.nth !comp_vars (Jp_util.Rng.int g (List.length !comp_vars))
      in
      let add_pair a b =
        comp_pairs := (a, b) :: !comp_pairs;
        add a b
      in
      let steps = 1 + Jp_util.Rng.int g 3 in
      for _ = 1 to steps do
        match Jp_util.Rng.int g 3 with
        | 0 when !next_var < max_vars ->
          (* tree extension: fresh leaf under an existing variable *)
          let parent = pick_existing () in
          let child = fresh () in
          comp_vars := child :: !comp_vars;
          add_pair parent child
        | 1 when !next_var + 1 < max_vars ->
          (* star burst: two fresh leaves around an existing center *)
          let center = pick_existing () in
          let l1 = fresh () and l2 = fresh () in
          comp_vars := l1 :: l2 :: !comp_vars;
          add_pair l1 center;
          add_pair l2 center
        | _ -> (
          (* parallel edge: duplicate an existing edge's endpoints (a
             chord between two arbitrary tree vertices would close a
             cycle); on a still-single-vertex component, a self loop *)
          match !comp_pairs with
          | [] ->
            let v = pick_existing () in
            add_pair v v
          | pairs ->
            let a, b = List.nth pairs (Jp_util.Rng.int g (List.length pairs)) in
            add_pair a b)
      done
    end
  done;
  let atoms = Array.of_list (List.rev !atoms) in
  (* mutations: constants and repeated variables *)
  Array.iteri
    (fun i atom ->
      if Jp_util.Rng.int g 6 = 0 then begin
        let a, b = atom.Cq.args in
        match Jp_util.Rng.int g 3 with
        | 0 -> atoms.(i) <- { atom with Cq.args = (Cq.Const (Jp_util.Rng.int g (dom + 2) - 1), b) }
        | 1 -> atoms.(i) <- { atom with Cq.args = (a, Cq.Const (Jp_util.Rng.int g (dom + 2) - 1)) }
        | _ -> atoms.(i) <- { atom with Cq.args = (a, a) }
      end)
    atoms;
  let body = Array.to_list atoms in
  let body_vars = Cq.vars { Cq.head = []; body } in
  let head =
    if Jp_util.Rng.int g 6 = 0 then [] (* boolean *)
    else begin
      let kept = List.filter (fun _ -> Jp_util.Rng.bool g) body_vars in
      let kept = if kept = [] && body_vars <> [] then [ List.hd body_vars ] else kept in
      if kept <> [] && Jp_util.Rng.int g 8 = 0 then List.hd kept :: kept else kept
    end
  in
  let catalog =
    List.map
      (fun name ->
        ( name,
          random_relation
            ~seed:(seed + (17 * Char.code name.[1]))
            ~nx:dom ~ny:dom
            ~edges:(10 + Jp_util.Rng.int g 5)
            () ))
      [ "R0"; "R1"; "R2" ]
  in
  { query = { Cq.head; body }; catalog }

let pairs_to_list p = Jp_relation.Pairs.to_list p

let counted_to_list c =
  let acc = ref [] in
  Jp_relation.Counted_pairs.iter (fun x z k -> acc := ((x, z), k) :: !acc) c;
  List.sort compare !acc
