(* Jp_metrics: the deterministic parts of the metrics layer.  Bucket
   boundaries, quantile error bounds, merge commutativity, recording
   gates, Local accumulate/publish equivalence, fake-clock snapshot
   ordering and the OpenMetrics exposition are all exact; wall-clock
   values never enter these tests. *)

module Metrics = Jp_metrics
module Hist = Jp_metrics.Hist
module Rng = Jp_util.Rng

let sqrt2 = sqrt 2.

let with_recording f =
  Jp_obs.reset ();
  Metrics.reset ();
  Jp_obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Jp_obs.disable ();
      Jp_obs.reset ();
      Metrics.reset ())
    f

(* Seeded samples in [1e-5, 10]: safely inside the finite bucket range so
   the sqrt-2 error bound applies without floor/overflow special cases. *)
let samples ~seed n =
  let rng = Rng.create seed in
  Array.init n (fun _ -> 1e-5 +. Rng.float rng 10.)

(* ------------------------------------------------------------------ *)
(* Bucket ladder                                                       *)
(* ------------------------------------------------------------------ *)

let test_bucket_bounds () =
  let b = Hist.bucket_bounds () in
  Alcotest.(check int) "64 finite bounds" 64 (Array.length b);
  Alcotest.(check (float 1e-12)) "first bound is 1 microsecond" 1e-6 b.(0);
  for i = 1 to Array.length b - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "bound %d grows" i)
      true
      (b.(i) > b.(i - 1));
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "bound %d ratio is sqrt 2" i)
      sqrt2
      (b.(i) /. b.(i - 1))
  done;
  (* the ladder spans at least 1 microsecond .. 45 minutes *)
  Alcotest.(check bool) "top bound covers long queries" true
    (b.(Array.length b - 1) > 2700.);
  (* bucket_bounds hands out fresh copies: mutation must not leak *)
  b.(0) <- 42.;
  Alcotest.(check (float 1e-12)) "bounds are a fresh copy" 1e-6
    (Hist.bucket_bounds ()).(0)

let test_observe_basics () =
  let h = Hist.create () in
  Alcotest.(check int) "empty count" 0 (Hist.count h);
  Alcotest.(check bool) "empty max is nan" true (Float.is_nan (Hist.max_value h));
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (Hist.quantile h 0.5));
  List.iter (Hist.observe h) [ 0.002; 0.004; 1.5 ];
  Alcotest.(check int) "count" 3 (Hist.count h);
  Alcotest.(check (float 1e-12)) "sum" 1.506 (Hist.sum h);
  Alcotest.(check (float 1e-12)) "max" 1.5 (Hist.max_value h);
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 (Hist.buckets h) in
  Alcotest.(check int) "buckets account for every sample" 3 total;
  (* extremes: below the floor and above the ceiling both land somewhere *)
  Hist.observe h 1e-9;
  Hist.observe h 1e9;
  Alcotest.(check int) "extremes counted" 5 (Hist.count h);
  let inf_bucket = List.assoc infinity (Hist.buckets h) in
  Alcotest.(check int) "overflow bucket holds the huge sample" 1 inf_bucket;
  Alcotest.(check (float 1e-3)) "overflow quantile reports tracked max" 1e9
    (Hist.quantile h 1.0);
  Hist.clear h;
  Alcotest.(check int) "clear empties" 0 (Hist.count h)

(* Nearest-rank exact quantile over a sorted copy, the reference the
   histogram estimate is checked against. *)
let exact_quantile sorted q =
  let n = Array.length sorted in
  let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
  sorted.(min (n - 1) (rank - 1))

let test_quantile_error_bound () =
  let xs = samples ~seed:11 1000 in
  let h = Hist.create () in
  Array.iter (Hist.observe h) xs;
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  List.iter
    (fun q ->
      let exact = exact_quantile sorted q in
      let est = Hist.quantile h q in
      Alcotest.(check bool)
        (Printf.sprintf "q=%.2f estimate >= exact" q)
        true (est >= exact);
      Alcotest.(check bool)
        (Printf.sprintf "q=%.2f estimate <= exact * sqrt 2" q)
        true
        (est <= exact *. sqrt2 *. (1. +. 1e-9)))
    [ 0.; 0.01; 0.25; 0.5; 0.9; 0.95; 0.99; 1.0 ]

let test_merge_deterministic () =
  let xs = samples ~seed:13 400 in
  let ha = Hist.create () and hb = Hist.create () and hall = Hist.create () in
  Array.iteri
    (fun i v ->
      Hist.observe (if i mod 2 = 0 then ha else hb) v;
      Hist.observe hall v)
    xs;
  let ab = Hist.copy ha in
  Hist.merge_into ~into:ab hb;
  let ba = Hist.copy hb in
  Hist.merge_into ~into:ba ha;
  Alcotest.(check bool) "merge is commutative on buckets" true
    (Hist.buckets ab = Hist.buckets ba);
  Alcotest.(check bool) "merge equals direct observation" true
    (Hist.buckets ab = Hist.buckets hall);
  Alcotest.(check int) "merged count" (Array.length xs) (Hist.count ab);
  Alcotest.(check (float 1e-9)) "merged sum" (Hist.sum hall) (Hist.sum ab);
  Alcotest.(check (float 1e-12)) "merged max" (Hist.max_value hall)
    (Hist.max_value ab);
  List.iter
    (fun q ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "q=%.2f identical after merge" q)
        (Hist.quantile hall q) (Hist.quantile ab q))
    [ 0.5; 0.95; 0.99 ];
  Alcotest.(check int) "merge source unchanged" 200 (Hist.count hb)

(* ------------------------------------------------------------------ *)
(* Registered layer: gating, Local publish, gauges                     *)
(* ------------------------------------------------------------------ *)

let test_recording_gate () =
  Jp_obs.reset ();
  Metrics.reset ();
  Jp_obs.disable ();
  let h = Metrics.histogram "test.gate_seconds" in
  let g = Metrics.gauge "test.gate_depth" in
  Metrics.observe h 1.0;
  Metrics.set_gauge g 5;
  Metrics.add_gauge g 3;
  Metrics.snapshot ~now:1.0 ();
  Alcotest.(check int) "observe dropped while off" 0
    (Hist.count (Metrics.histogram_value h));
  Alcotest.(check int) "gauge updates dropped while off" 0
    (Metrics.gauge_value g);
  Alcotest.(check int) "snapshot dropped while off" 0
    (List.length (Metrics.snapshots ()));
  with_recording (fun () ->
      let h = Metrics.histogram "test.gate_seconds" in
      Metrics.observe h 1.0;
      Alcotest.(check int) "observe lands while on" 1
        (Hist.count (Metrics.histogram_value h)))

let test_local_publish () =
  with_recording (fun () ->
      let xs = samples ~seed:17 256 in
      let direct = Metrics.histogram "test.local_direct_seconds" in
      let pooled = Metrics.histogram "test.local_pooled_seconds" in
      Array.iter (Metrics.observe direct) xs;
      let acc = Metrics.Local.create pooled in
      Array.iter (Metrics.Local.observe acc) xs;
      Alcotest.(check int) "nothing published before the boundary" 0
        (Hist.count (Metrics.histogram_value pooled));
      Metrics.Local.publish acc;
      Alcotest.(check bool) "publish equals direct observation" true
        (Hist.buckets (Metrics.histogram_value pooled)
        = Hist.buckets (Metrics.histogram_value direct));
      (* publish clears the accumulator: publishing again adds nothing *)
      Metrics.Local.publish acc;
      Alcotest.(check int) "second publish is empty"
        (Array.length xs)
        (Hist.count (Metrics.histogram_value pooled)))

let test_registry_find_or_create () =
  with_recording (fun () ->
      let a = Metrics.histogram "test.same_seconds" in
      let b = Metrics.histogram "test.same_seconds" in
      Metrics.observe a 1.0;
      Metrics.observe b 2.0;
      Alcotest.(check int) "same name, same histogram" 2
        (Hist.count (Metrics.histogram_value a));
      Alcotest.(check bool) "listed once" true
        (List.length
           (List.filter
              (fun (n, _) -> n = "test.same_seconds")
              (Metrics.histogram_values ()))
        = 1))

(* ------------------------------------------------------------------ *)
(* Snapshots under a fake clock                                        *)
(* ------------------------------------------------------------------ *)

let test_snapshot_fake_clock () =
  with_recording (fun () ->
      let g = Metrics.gauge "test.snap_depth" in
      Metrics.set_gauge g 1;
      Metrics.snapshot ~now:2.0 ();
      Metrics.set_gauge g 7;
      Metrics.snapshot ~now:1.0 ();
      Metrics.snapshot ~now:1.0 ();
      let snaps = Metrics.snapshots () in
      Alcotest.(check int) "three snapshots" 3 (List.length snaps);
      Alcotest.(check (list (float 0.))) "sorted by timestamp" [ 1.0; 1.0; 2.0 ]
        (List.map fst snaps);
      let value_at i =
        List.assoc "test.snap_depth" (snd (List.nth snaps i))
      in
      (* values are captured at call time: the ts=2 snapshot (recorded
         first) saw 1; the tied ts=1 snapshots keep recording order *)
      Alcotest.(check int) "tied snapshots keep recording order" 7 (value_at 0);
      Alcotest.(check int) "second tied snapshot" 7 (value_at 1);
      Alcotest.(check int) "late timestamp holds the early value" 1
        (value_at 2))

(* ------------------------------------------------------------------ *)
(* OpenMetrics exposition                                              *)
(* ------------------------------------------------------------------ *)

let lines s = String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

let test_exposition_golden () =
  with_recording (fun () ->
      let h = Metrics.histogram "test.golden_seconds" in
      let g = Metrics.gauge "test.golden_depth" in
      List.iter (Metrics.observe h) [ 1e-6; 1.0; 2.0 ];
      Metrics.set_gauge g 7;
      let out = Metrics.exposition () in
      let ls = lines out in
      (* the golden subset: exact expected lines for our instruments,
         built from the published bucket ladder and %.9g formatting *)
      Alcotest.(check bool) "gauge TYPE line" true
        (List.mem "# TYPE jp_test_golden_depth gauge" ls);
      Alcotest.(check bool) "gauge sample line" true
        (List.mem "jp_test_golden_depth 7" ls);
      Alcotest.(check bool) "histogram TYPE line" true
        (List.mem "# TYPE jp_test_golden_seconds histogram" ls);
      let bounds = Hist.bucket_bounds () in
      let cumulative b =
        (if 1e-6 <= b then 1 else 0)
        + (if 1.0 <= b then 1 else 0)
        + if 2.0 <= b then 1 else 0
      in
      let expected_buckets =
        Array.to_list
          (Array.map
             (fun b ->
               Printf.sprintf "jp_test_golden_seconds_bucket{le=\"%.9g\"} %d" b
                 (cumulative b))
             bounds)
        @ [ "jp_test_golden_seconds_bucket{le=\"+Inf\"} 3" ]
      in
      let actual_buckets =
        List.filter
          (fun l ->
            String.length l > 30
            && String.sub l 0 30 = "jp_test_golden_seconds_bucket{")
          ls
      in
      Alcotest.(check (list string)) "bucket lines, in ladder order"
        expected_buckets actual_buckets;
      Alcotest.(check bool) "sum line" true
        (List.mem (Printf.sprintf "jp_test_golden_seconds_sum %.9g" 3.000001) ls);
      Alcotest.(check bool) "count line" true
        (List.mem "jp_test_golden_seconds_count 3" ls);
      (* document-level grammar *)
      Alcotest.(check bool) "terminated by # EOF" true
        (match List.rev ls with "# EOF" :: _ -> true | _ -> false);
      Alcotest.(check bool) "ends with newline" true
        (String.length out > 0 && out.[String.length out - 1] = '\n');
      List.iter
        (fun l ->
          let ok =
            String.length l >= 2
            && (String.sub l 0 2 = "# "
               || String.contains l ' '
                  && l.[0] <> ' '
                  && (let c = l.[0] in
                      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'))
          in
          Alcotest.(check bool)
            (Printf.sprintf "line is comment or sample: %s" l)
            true ok)
        ls)

let test_exposition_counters () =
  with_recording (fun () ->
      Jp_obs.incr Jp_obs.C.service_submitted;
      Jp_obs.incr Jp_obs.C.service_submitted;
      let ls = lines (Metrics.exposition ()) in
      Alcotest.(check bool) "obs counters exported as counters" true
        (List.mem "# TYPE jp_service_submitted counter" ls);
      Alcotest.(check bool) "counter sample uses _total" true
        (List.mem "jp_service_submitted_total 2" ls);
      (* the cache footprint counter is a level, typed gauge *)
      Alcotest.(check bool) "cache.bytes typed gauge" true
        (List.mem "# TYPE jp_cache_bytes gauge" ls))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_counter_events () =
  with_recording (fun () ->
      let g = Metrics.gauge "test.events_depth" in
      Metrics.set_gauge g 3;
      Metrics.snapshot ~now:1.0 ();
      Metrics.set_gauge g 9;
      Metrics.snapshot ~now:2.0 ();
      let trace = Metrics.chrome_trace_string () in
      Alcotest.(check bool) "counter lane present" true
        (contains trace "\"name\":\"test.events_depth\"");
      Alcotest.(check bool) "C phase events present" true
        (contains trace "\"ph\":\"C\"");
      Alcotest.(check bool) "both sampled values exported" true
        (contains trace "\"args\":{\"value\":3}"
        && contains trace "\"args\":{\"value\":9}"))

let suite =
  [
    Alcotest.test_case "bucket ladder" `Quick test_bucket_bounds;
    Alcotest.test_case "observe basics" `Quick test_observe_basics;
    Alcotest.test_case "quantile error bound" `Quick test_quantile_error_bound;
    Alcotest.test_case "merge deterministic" `Quick test_merge_deterministic;
    Alcotest.test_case "recording gate" `Quick test_recording_gate;
    Alcotest.test_case "local publish" `Quick test_local_publish;
    Alcotest.test_case "registry find-or-create" `Quick test_registry_find_or_create;
    Alcotest.test_case "snapshot fake clock" `Quick test_snapshot_fake_clock;
    Alcotest.test_case "exposition golden" `Quick test_exposition_golden;
    Alcotest.test_case "exposition counters" `Quick test_exposition_counters;
    Alcotest.test_case "counter events" `Quick test_counter_events;
  ]
