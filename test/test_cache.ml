(* Jp_cache: the cross-query semantic cache.  The contract under test:
   a hit returns exactly what recomputation would return, admission and
   eviction are deterministic, invalidation by fingerprint drops every
   derived entry, and nothing a faulted / degraded / cancelled attempt
   produced ever becomes resident. *)

module Cache = Jp_cache
module Service = Jp_service
module Chaos = Jp_chaos
module Guard = Jp_adaptive.Guard
module Cancel = Jp_util.Cancel
module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Presets = Jp_workload.Presets
module View = Jp_dynamic.View

let small name = Presets.load ~scale:0.02 ~seed:7 name

let with_service cfg f =
  let svc = Service.create cfg in
  Fun.protect ~finally:(fun () -> Service.shutdown svc) (fun () -> f svc)

(* One module-level witness per value type, as the API requires. *)
let int_tag : int Cache.tag = Cache.tag "test.int"

let other_tag : int Cache.tag = Cache.tag "test.other"

(* ------------------------------------------------------------------ *)
(* the generic store                                                    *)
(* ------------------------------------------------------------------ *)

let test_put_find () =
  let c = Cache.create () in
  let k = Cache.Key.v ~kind:"t" ~fps:[ 42 ] ~params:[ 1 ] () in
  Alcotest.(check (option int)) "cold miss" None (Cache.find c int_tag k);
  Cache.put c int_tag k ~bytes:64 ~cost_s:0.01 7;
  Alcotest.(check (option int)) "hit" (Some 7) (Cache.find c int_tag k);
  (* same key string through a different witness must miss, not cast *)
  Alcotest.(check (option int)) "wrong tag" None (Cache.find c other_tag k);
  let st = Cache.stats c in
  Alcotest.(check int) "hits" 1 st.Cache.hits;
  Alcotest.(check int) "misses" 2 st.Cache.misses;
  Alcotest.(check int) "entries" 1 st.Cache.entries;
  Alcotest.(check int) "bytes" 64 st.Cache.bytes

let test_offer_admission () =
  let c = Cache.create () in
  let k = Cache.Key.v ~kind:"r" ~fps:[ 1 ] () in
  ignore (Cache.find c int_tag k);
  (* 10 Mb at the default 5 ms/Mb bar needs cost x misses >= 50 ms *)
  let mb10 = 10 * 1024 * 1024 in
  Alcotest.(check bool) "cheap big rejected" false
    (Cache.offer c int_tag k ~bytes:mb10 ~cost_s:0.001 1);
  Alcotest.(check (option int)) "not resident" None (Cache.find c int_tag k);
  Alcotest.(check bool) "expensive admitted" true
    (Cache.offer c int_tag k ~bytes:mb10 ~cost_s:1.0 1);
  Alcotest.(check (option int)) "resident" (Some 1) (Cache.find c int_tag k);
  Alcotest.(check bool) "rejection counted" true
    ((Cache.stats c).Cache.rejections >= 1);
  (* repeated misses lower the bar: the same cheap entry passes once the
     key has been asked for often enough *)
  let c2 = Cache.create () in
  let k2 = Cache.Key.v ~kind:"r" ~fps:[ 2 ] () in
  for _ = 1 to 100 do
    ignore (Cache.find c2 int_tag k2)
  done;
  Alcotest.(check bool) "popular cheap admitted" true
    (Cache.offer c2 int_tag k2 ~bytes:mb10 ~cost_s:0.001 2);
  (* an entry larger than the whole budget is rejected outright *)
  let tiny =
    Cache.create ~config:{ Cache.budget_bytes = 1024; admit_seconds_per_mb = 0.0 } ()
  in
  Alcotest.(check bool) "bigger than budget" false
    (Cache.offer tiny int_tag k ~bytes:4096 ~cost_s:10.0 3)

let test_landlord_eviction () =
  let config = { Cache.budget_bytes = 1024; admit_seconds_per_mb = 0.0 } in
  let run () =
    let c = Cache.create ~config () in
    let key i = Cache.Key.v ~kind:"e" ~fps:[ i ] () in
    Cache.put c int_tag (key 0) ~bytes:400 ~cost_s:0.001 0;
    Cache.put c int_tag (key 1) ~bytes:400 ~cost_s:0.001 1;
    Cache.put c int_tag (key 2) ~bytes:400 ~cost_s:0.001 2;
    let st = Cache.stats c in
    Alcotest.(check bool) "within budget" true (st.Cache.bytes <= 1024);
    Alcotest.(check bool) "evicted" true (st.Cache.evictions >= 1);
    (* equal credit and size: LANDLORD breaks the tie by insertion
       sequence, so the oldest entry goes and the newest survives *)
    Alcotest.(check (option int)) "oldest gone" None (Cache.find c int_tag (key 0));
    Alcotest.(check (option int)) "newest kept" (Some 2)
      (Cache.find c int_tag (key 2));
    st
  in
  (* same call sequence, same stats: eviction is deterministic even
     though Hashtbl iteration order is not *)
  Alcotest.(check bool) "deterministic" true (run () = run ())

let test_expensive_survives_squeeze () =
  let config = { Cache.budget_bytes = 1024; admit_seconds_per_mb = 0.0 } in
  let c = Cache.create ~config () in
  let key i = Cache.Key.v ~kind:"e" ~fps:[ i ] () in
  (* the expensive entry is inserted first, yet the cheap later ones are
     the ones evicted: credit is cost, not recency *)
  Cache.put c int_tag (key 0) ~bytes:400 ~cost_s:10.0 0;
  Cache.put c int_tag (key 1) ~bytes:400 ~cost_s:0.001 1;
  Cache.put c int_tag (key 2) ~bytes:400 ~cost_s:0.001 2;
  Cache.put c int_tag (key 3) ~bytes:400 ~cost_s:0.001 3;
  Alcotest.(check (option int)) "expensive kept" (Some 0)
    (Cache.find c int_tag (key 0))

let test_invalidate () =
  let c = Cache.create () in
  let ka = Cache.Key.v ~kind:"i" ~fps:[ 7; 8 ] () in
  let kb = Cache.Key.v ~kind:"i" ~fps:[ 9 ] () in
  Cache.put c int_tag ka ~bytes:64 ~cost_s:0.1 1;
  Cache.put c int_tag kb ~bytes:64 ~cost_s:0.1 2;
  Cache.invalidate c ~fp:8;
  Alcotest.(check (option int)) "fp 8 dropped" None (Cache.find c int_tag ka);
  Alcotest.(check (option int)) "other kept" (Some 2) (Cache.find c int_tag kb);
  Alcotest.(check int) "invalidations" 1 (Cache.stats c).Cache.invalidations;
  Cache.clear c;
  Alcotest.(check int) "cleared" 0 (Cache.stats c).Cache.entries

(* ------------------------------------------------------------------ *)
(* engine memoization and view-driven invalidation                      *)
(* ------------------------------------------------------------------ *)

let test_memo_and_view_invalidation () =
  let r = small Presets.Jokes in
  let c = Cache.create () in
  let reference = Pairs.count (Joinproj.Two_path.project ~r ~s:r ()) in
  let cached () =
    Pairs.count
      (Joinproj.Two_path.project ~memo:(Cache.two_path_memo c ~r ~s:r) ~r ~s:r ())
  in
  Alcotest.(check int) "cold equals uncached" reference (cached ());
  Alcotest.(check bool) "artifacts resident" true
    ((Cache.stats c).Cache.entries > 0);
  let hits_before = (Cache.stats c).Cache.hits in
  Alcotest.(check int) "warm equals uncached" reference (cached ());
  Alcotest.(check bool) "warm pass hits" true
    ((Cache.stats c).Cache.hits > hits_before);
  (* a view over (r, r) owns invalidation: one effective update drops
     every entry derived from r's fingerprint *)
  let view = View.init ~cache:c ~r ~s:r () in
  View.insert_r view 0 (Relation.dst_count r + 3);
  Alcotest.(check int) "all derived entries dropped" 0
    (Cache.stats c).Cache.entries;
  (* a no-op update (tuple already present) must not invalidate again *)
  let inv = (Cache.stats c).Cache.invalidations in
  View.insert_r view 0 (Relation.dst_count r + 3);
  Alcotest.(check int) "no-op update is silent" inv
    (Cache.stats c).Cache.invalidations

(* ------------------------------------------------------------------ *)
(* the service path: hits, publication, and chaos                       *)
(* ------------------------------------------------------------------ *)

let result_binding c r expected =
  Cache.binding c int_tag
    (Cache.Key.of_relations ~kind:"test.result" [ r ])
    ~bytes_of:(fun _ -> 16)
    ~verify:(fun v -> v = expected)
    ()

let count_query r ~cancel ~degraded =
  let guard = if degraded then Some Guard.safe else None in
  (* poll up front so armed faults (window <= 4) fire even on tiny inputs *)
  for _ = 1 to 8 do
    Cancel.check cancel
  done;
  Pairs.count (Joinproj.Two_path.project ?guard ~cancel ~r ~s:r ())

let test_service_hit_path () =
  let r = small Presets.Jokes in
  let c = Cache.create () in
  let expected = Pairs.count (Joinproj.Two_path.project ~r ~s:r ()) in
  with_service Service.default (fun svc ->
      let submit () =
        Service.submit svc ~cached:(result_binding c r expected)
          (fun ~cancel ~attempt:_ ~degraded -> count_query r ~cancel ~degraded)
      in
      let rep1 = Service.await (submit ()) in
      (match rep1.Service.outcome with
      | Ok v -> Alcotest.(check int) "first result" expected v
      | Error e -> Alcotest.failf "first: %s" (Service.error_to_string e));
      Alcotest.(check bool) "first is a miss" false rep1.Service.cache_hit;
      let rep2 = Service.await (submit ()) in
      (match rep2.Service.outcome with
      | Ok v -> Alcotest.(check int) "second result" expected v
      | Error e -> Alcotest.failf "second: %s" (Service.error_to_string e));
      Alcotest.(check bool) "second is a hit" true rep2.Service.cache_hit;
      Alcotest.(check int) "hit ran no attempt" 0 rep2.Service.attempts)

let test_degraded_never_publishes () =
  let r = small Presets.Jokes in
  let c = Cache.create () in
  let expected = Pairs.count (Joinproj.Two_path.project ~r ~s:r ()) in
  (* every non-degraded attempt faults: the query only ever succeeds on
     the degraded final attempt, which must not publish *)
  let chaos = Some { (Chaos.default 11) with Chaos.p_transient = 1.0 } in
  let cfg = { Service.default with Service.chaos; max_retries = 1 } in
  with_service cfg (fun svc ->
      let submit () =
        Service.submit svc ~cached:(result_binding c r expected)
          (fun ~cancel ~attempt:_ ~degraded -> count_query r ~cancel ~degraded)
      in
      for round = 1 to 2 do
        let rep = Service.await (submit ()) in
        (match rep.Service.outcome with
        | Ok v ->
          Alcotest.(check int)
            (Printf.sprintf "round %d result" round)
            expected v
        | Error e -> Alcotest.failf "round %d: %s" round (Service.error_to_string e));
        Alcotest.(check bool)
          (Printf.sprintf "round %d degraded" round)
          true rep.Service.degraded;
        Alcotest.(check bool)
          (Printf.sprintf "round %d not served from cache" round)
          false rep.Service.cache_hit
      done;
      Alcotest.(check int) "nothing resident" 0 (Cache.stats c).Cache.entries)

let test_failed_verification_never_publishes () =
  let r = small Presets.Jokes in
  let c = Cache.create () in
  let expected = Pairs.count (Joinproj.Two_path.project ~r ~s:r ()) in
  (* a verifier that rejects everything: the clean success must still
     resolve the ticket, but the value may never become resident *)
  let binding =
    Cache.binding c int_tag
      (Cache.Key.of_relations ~kind:"test.result" [ r ])
      ~bytes_of:(fun _ -> 16)
      ~verify:(fun _ -> false)
      ()
  in
  Alcotest.(check bool) "publish refused" false
    (Cache.binding_publish binding ~cost_s:1.0 expected);
  Alcotest.(check int) "nothing resident" 0 (Cache.stats c).Cache.entries

(* Seeded sweep: under arbitrary transient-fault seeds, whatever ends up
   resident must equal the fault-free answer — the binding here has no
   verifier, so only the publish discipline protects the cache. *)
let test_chaos_sweep_publish_integrity () =
  let r = small Presets.Jokes in
  let expected = Pairs.count (Joinproj.Two_path.project ~r ~s:r ()) in
  List.iter
    (fun seed ->
      let c = Cache.create () in
      let key = Cache.Key.of_relations ~kind:"test.result" [ r ] in
      let binding = Cache.binding c int_tag key ~bytes_of:(fun _ -> 16) () in
      let chaos = Some { (Chaos.default seed) with Chaos.p_transient = 0.6 } in
      with_service { Service.default with Service.chaos } (fun svc ->
          for i = 0 to 5 do
            let rep =
              Service.await
                (Service.submit svc ~key:i ~cached:binding
                   (fun ~cancel ~attempt:_ ~degraded ->
                     count_query r ~cancel ~degraded))
            in
            match rep.Service.outcome with
            | Ok v ->
              Alcotest.(check int)
                (Printf.sprintf "seed %d query %d" seed i)
                expected v
            | Error _ -> ()
          done);
      match Cache.find c int_tag key with
      | Some v ->
        Alcotest.(check int)
          (Printf.sprintf "seed %d resident value" seed)
          expected v
      | None -> ())
    [ 1; 2; 3; 5; 8 ]

let suite =
  [
    Alcotest.test_case "put / find / tags" `Quick test_put_find;
    Alcotest.test_case "offer admission" `Quick test_offer_admission;
    Alcotest.test_case "landlord eviction" `Quick test_landlord_eviction;
    Alcotest.test_case "expensive survives squeeze" `Quick
      test_expensive_survives_squeeze;
    Alcotest.test_case "invalidate / clear" `Quick test_invalidate;
    Alcotest.test_case "memo + view invalidation" `Quick
      test_memo_and_view_invalidation;
    Alcotest.test_case "service hit path" `Quick test_service_hit_path;
    Alcotest.test_case "degraded never publishes" `Quick
      test_degraded_never_publishes;
    Alcotest.test_case "failed verification never publishes" `Quick
      test_failed_verification_never_publishes;
    Alcotest.test_case "chaos sweep publish integrity" `Quick
      test_chaos_sweep_publish_integrity;
  ]
