module Relation = Jp_relation.Relation
module Tuples = Jp_relation.Tuples
module Star = Joinproj.Star

let brute rels =
  Tuples.to_list (Jp_wcoj.Star.project rels)

let star_threshold_check rels =
  let expect = brute rels in
  List.iter
    (fun (d1, d2) ->
      List.iter
        (fun strategy ->
          let got = Star.project ~strategy ~thresholds:(d1, d2) rels in
          Alcotest.(check (list (list int)))
            (Printf.sprintf "star d1=%d d2=%d" d1 d2)
            expect (Tuples.to_list got))
        [ Star.Matrix; Star.Combinatorial ])
    [ (1, 1); (1, 2); (2, 1); (2, 2); (3, 3); (50, 50) ]

let test_star3_uniform () =
  star_threshold_check
    [|
      Gen.random_relation ~seed:61 ~nx:12 ~ny:10 ~edges:50 ();
      Gen.random_relation ~seed:62 ~nx:11 ~ny:10 ~edges:45 ();
      Gen.random_relation ~seed:63 ~nx:10 ~ny:10 ~edges:40 ();
    |]

let test_star3_skewed () =
  star_threshold_check
    [|
      Gen.skewed_relation ~seed:64 ~nx:14 ~ny:12 ~edges:80 ();
      Gen.skewed_relation ~seed:65 ~nx:13 ~ny:12 ~edges:70 ();
      Gen.skewed_relation ~seed:66 ~nx:12 ~ny:12 ~edges:60 ();
    |]

let test_star4 () =
  star_threshold_check
    [|
      Gen.skewed_relation ~seed:67 ~nx:8 ~ny:8 ~edges:30 ();
      Gen.skewed_relation ~seed:68 ~nx:8 ~ny:8 ~edges:28 ();
      Gen.skewed_relation ~seed:69 ~nx:8 ~ny:8 ~edges:26 ();
      Gen.skewed_relation ~seed:70 ~nx:8 ~ny:8 ~edges:24 ();
    |]

let test_star2_matches_two_path () =
  let r = Gen.skewed_relation ~seed:71 ~nx:20 ~ny:15 ~edges:100 () in
  let s = Gen.skewed_relation ~seed:72 ~nx:18 ~ny:15 ~edges:90 () in
  let star = Star.project ~thresholds:(2, 2) [| r; s |] in
  let two = Jp_wcoj.Expand.project ~r ~s () in
  Alcotest.(check (list (list int)))
    "k=2 star = 2-path"
    (List.map (fun (x, z) -> [ x; z ]) (Jp_relation.Pairs.to_list two))
    (Tuples.to_list star)

let test_star_self_join () =
  let r = Gen.skewed_relation ~seed:73 ~nx:12 ~ny:12 ~edges:70 () in
  star_threshold_check [| r; r; r |]

let test_star_default_thresholds () =
  let rels =
    [|
      Gen.skewed_relation ~seed:74 ~nx:15 ~ny:12 ~edges:90 ();
      Gen.skewed_relation ~seed:75 ~nx:14 ~ny:12 ~edges:85 ();
      Gen.skewed_relation ~seed:76 ~nx:13 ~ny:12 ~edges:80 ();
    |]
  in
  let d1, d2 = Star.choose_thresholds rels in
  Alcotest.(check bool) "thresholds sane" true (d1 >= 1 && d2 >= 1);
  Alcotest.(check (list (list int)))
    "default thresholds correct" (brute rels)
    (Tuples.to_list (Star.project rels))

let test_star_parallel () =
  let rels =
    [|
      Gen.skewed_relation ~seed:77 ~nx:16 ~ny:14 ~edges:100 ();
      Gen.skewed_relation ~seed:78 ~nx:15 ~ny:14 ~edges:95 ();
      Gen.skewed_relation ~seed:79 ~nx:14 ~ny:14 ~edges:90 ();
    |]
  in
  let seq = Star.project ~thresholds:(2, 2) rels in
  let par = Star.project ~domains:4 ~thresholds:(2, 2) rels in
  Alcotest.(check bool) "parallel = sequential" true (Tuples.equal seq par)

(* Mixed y domains, as produced by the query engine's mixed-orientation
   stars (some atoms transposed): relations whose dst counts differ.
   Regression: the heavy residue used to index adjacency past the smaller
   relations' dst space. *)
let test_star_mixed_dst_counts () =
  star_threshold_check
    [|
      Gen.skewed_relation ~seed:81 ~nx:12 ~ny:7 ~edges:60 ();
      Relation.transpose (Gen.skewed_relation ~seed:82 ~nx:15 ~ny:12 ~edges:70 ());
      Gen.skewed_relation ~seed:83 ~nx:11 ~ny:9 ~edges:55 ();
    |]

let test_star_arity_guard () =
  let r = Gen.random_relation ~seed:80 ~nx:5 ~ny:5 ~edges:10 () in
  Alcotest.check_raises "arity" (Invalid_argument "Star.project: arity must be >= 2")
    (fun () -> ignore (Star.project [| r |]))

let suite =
  [
    Alcotest.test_case "star3 uniform" `Quick test_star3_uniform;
    Alcotest.test_case "star3 skewed" `Quick test_star3_skewed;
    Alcotest.test_case "star4" `Quick test_star4;
    Alcotest.test_case "star k=2 = two-path" `Quick test_star2_matches_two_path;
    Alcotest.test_case "star self join" `Quick test_star_self_join;
    Alcotest.test_case "star default thresholds" `Quick test_star_default_thresholds;
    Alcotest.test_case "star parallel" `Quick test_star_parallel;
    Alcotest.test_case "star mixed dst counts" `Quick test_star_mixed_dst_counts;
    Alcotest.test_case "star arity guard" `Quick test_star_arity_guard;
  ]
