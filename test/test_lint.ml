(* jp_lint rule tests: each rule is exercised against a compiled fixture
   (test/lint_fixtures), one positive and one negative case per rule,
   plus the suppression and malformed-suppression paths.  The fixtures
   are linted with an explicit kind override because the repo-wide run
   deliberately skips the fixture directory. *)

module Driver = Jp_lint_core.Lint_driver
module Ctx = Jp_lint_core.Lint_ctx
module Registry = Jp_lint_core.Lint_registry
module Finding = Jp_lint_core.Lint_finding
module Report = Jp_lint_core.Lint_report
module Util = Jp_lint_core.Lint_util

let fixture_cmt name =
  Filename.concat "lint_fixtures/.jp_lint_fixtures.objs/byte"
    ("jp_lint_fixtures__" ^ String.capitalize_ascii name ^ ".cmt")

(* Lint one fixture as if it lived in an engine library (lib/core), so
   every rule — including the engine-only ones — is in scope. *)
let selection = Registry.select ()

let lint ?(kind = Ctx.Lib "core") name =
  let path = fixture_cmt name in
  if not (Sys.file_exists path) then
    Alcotest.failf "fixture cmt missing: %s (cwd %s)" path (Sys.getcwd ());
  Driver.lint_cmt ~kind ~selection path

let count rule fs = List.length (List.filter (fun f -> f.Finding.rule = rule) fs)

let unsuppressed rule fs =
  List.exists
    (fun f -> f.Finding.rule = rule && f.Finding.suppressed = None)
    fs

let check_fires rule name () =
  Alcotest.(check bool)
    (Printf.sprintf "%s fires on %s" rule name)
    true
    (unsuppressed rule (lint name))

let check_clean rule name () =
  Alcotest.(check int)
    (Printf.sprintf "%s clean on %s" rule name)
    0
    (count rule (lint name))

let test_suppression () =
  let fs = lint "suppressed_random" in
  let sup =
    List.filter
      (fun f -> f.Finding.rule = "random" && f.Finding.suppressed <> None)
      fs
  in
  Alcotest.(check int) "one suppressed random finding" 1 (List.length sup);
  Alcotest.(check bool) "suppressed findings never block" false
    (List.exists
       (fun f -> f.Finding.rule = "random" && Finding.is_blocking f)
       fs)

let test_bad_suppression () =
  let fs = lint "bad_suppression" in
  Alcotest.(check bool) "justification-free allow is flagged" true
    (unsuppressed Ctx.bad_suppression_rule fs);
  Alcotest.(check bool) "the underlying finding still blocks" true
    (unsuppressed "random" fs)

(* hashtbl-dedup is engine-only: the same fixture linted as test code
   must be silent. *)
let test_kind_scoping () =
  Alcotest.(check int) "engine-only rule silent outside engines" 0
    (count "hashtbl-dedup" (lint ~kind:Ctx.Test "bad_hashtbl_dedup"))

(* Both positives in bad_hot_poll/bad_open really are two sites. *)
let test_counts () =
  Alcotest.(check int) "both opens flagged" 2 (count "no-open" (lint "bad_open"));
  Alcotest.(check int) "both dedup calls flagged" 2
    (count "hashtbl-dedup" (lint "bad_hashtbl_dedup"))

(* ------------------------------------------------------------------ *)
(* interprocedural rules                                               *)

let test_drop_chain () =
  let fs = lint "bad_capability_drop" in
  match List.find_opt (fun f -> f.Finding.rule = "capability-drop") fs with
  | None -> Alcotest.fail "no capability-drop finding"
  | Some f ->
    Alcotest.(check (list string))
      "call-chain evidence"
      [
        "Jp_lint_fixtures.Bad_capability_drop.caller";
        "Jp_lint_fixtures.Bad_capability_drop.callee";
      ]
      f.Finding.chain

(* The drop in bad_drop_cross calls into bad_capability_drop's callee:
   the finding only exists when both files merge into one call graph. *)
let test_cross_file_chain () =
  let fs =
    Driver.lint_cmts ~kind:(Ctx.Lib "core") ~selection
      [ fixture_cmt "bad_capability_drop"; fixture_cmt "bad_drop_cross" ]
  in
  Alcotest.(check bool) "cross-file drop found" true
    (List.exists
       (fun f ->
         f.Finding.rule = "capability-drop"
         && f.Finding.chain
            = [
                "Jp_lint_fixtures.Bad_drop_cross.caller";
                "Jp_lint_fixtures.Bad_capability_drop.callee";
              ])
       fs);
  (* alone, the cross-file caller is silent: the callee is unknown *)
  Alcotest.(check int) "unresolvable callee stays silent" 0
    (count "capability-drop" (lint "bad_drop_cross"))

let test_drop_suppressed () =
  let fs = lint "suppressed_capability_drop" in
  let drops = List.filter (fun f -> f.Finding.rule = "capability-drop") fs in
  Alcotest.(check bool) "drop found but suppressed" true
    (drops <> []
    && List.for_all (fun f -> f.Finding.suppressed <> None) drops);
  Alcotest.(check int) "the allow is live, not stale" 0
    (count Ctx.stale_suppression_rule fs)

let test_poll_suppressed () =
  let fs = lint "suppressed_missing_poll" in
  let polls = List.filter (fun f -> f.Finding.rule = "missing-poll") fs in
  Alcotest.(check bool) "binding-level allow suppresses" true
    (polls <> []
    && List.for_all (fun f -> f.Finding.suppressed <> None) polls);
  Alcotest.(check int) "the allow is live, not stale" 0
    (count Ctx.stale_suppression_rule fs)

let test_stale_suppression () =
  let fs = lint "stale_suppression" in
  Alcotest.(check int) "exactly the dead allow flagged" 1
    (count Ctx.stale_suppression_rule fs);
  Alcotest.(check bool) "live allows never flagged" false
    (List.exists
       (fun f -> f.Finding.rule = Ctx.stale_suppression_rule)
       (lint "suppressed_random"))

let test_json_v2 () =
  let js = Report.render_json (lint "bad_capability_drop") in
  Alcotest.(check bool) "schema v2" true
    (Util.contains_substring js "\"version\":2");
  Alcotest.(check bool) "chain evidence serialized" true
    (Util.contains_substring js "\"chain\":[")

let test_ordering () =
  let mk rule file line col =
    Finding.v ~rule ~file ~line ~col ~message:"m" ~hint:"h" ~suppressed:None ()
  in
  let a = mk "b-rule" "a.ml" 3 1 in
  let b = mk "a-rule" "a.ml" 3 1 in
  let c = mk "a-rule" "a.ml" 2 9 in
  let d = mk "a-rule" "b.ml" 1 0 in
  let key f =
    Printf.sprintf "%s:%d:%d:%s" f.Finding.file f.Finding.line f.Finding.col
      f.Finding.rule
  in
  Alcotest.(check (list string))
    "(file, line, col, rule) order"
    [ "a.ml:2:9:a-rule"; "a.ml:3:1:a-rule"; "a.ml:3:1:b-rule"; "b.ml:1:0:a-rule" ]
    (List.map key (List.stable_sort Finding.compare_by_position [ a; b; d; c ]))

let fires rule name =
  Alcotest.test_case
    (Printf.sprintf "%s fires" rule)
    `Quick (check_fires rule name)

let clean rule name =
  Alcotest.test_case
    (Printf.sprintf "%s negative" rule)
    `Quick (check_clean rule name)

let suite =
  [
    fires "poly-compare" "bad_poly_compare";
    clean "poly-compare" "ok_poly_compare";
    fires "random" "bad_random";
    clean "random" "ok_random";
    fires "domain-unsafe-global" "bad_global";
    clean "domain-unsafe-global" "ok_global";
    fires "hot-poll" "bad_hot_poll";
    clean "hot-poll" "ok_hot_poll";
    Alcotest.test_case "hot-poll fires on per-word tile traffic" `Quick
      (check_fires "hot-poll" "bad_tile_poll");
    Alcotest.test_case "hot-poll negative on per-tile cadence" `Quick
      (check_clean "hot-poll" "ok_tile_poll");
    Alcotest.test_case "hot-poll fires on Jp_metrics" `Quick
      (check_fires "hot-poll" "bad_metrics_poll");
    Alcotest.test_case "hot-poll negative on Jp_metrics.Local" `Quick
      (check_clean "hot-poll" "ok_metrics_poll");
    fires "adj-mutation" "bad_adj_mutation";
    clean "adj-mutation" "ok_adj_mutation";
    fires "missing-mli" "bad_no_mli";
    clean "missing-mli" "ok_with_mli";
    fires "no-open" "bad_open";
    clean "no-open" "ok_open";
    fires "hashtbl-dedup" "bad_hashtbl_dedup";
    clean "hashtbl-dedup" "ok_hashtbl_dedup";
    fires "capability-drop" "bad_capability_drop";
    clean "capability-drop" "ok_capability_drop";
    fires "missing-poll" "bad_missing_poll";
    clean "missing-poll" "ok_missing_poll";
    fires "wall-clock" "bad_wall_clock";
    clean "wall-clock" "ok_wall_clock";
    Alcotest.test_case "capability-drop carries chain evidence" `Quick
      test_drop_chain;
    Alcotest.test_case "capability-drop across files" `Quick
      test_cross_file_chain;
    Alcotest.test_case "capability-drop suppression" `Quick test_drop_suppressed;
    Alcotest.test_case "missing-poll binding suppression" `Quick
      test_poll_suppressed;
    Alcotest.test_case "stale suppression flagged" `Quick test_stale_suppression;
    Alcotest.test_case "json schema v2 with chains" `Quick test_json_v2;
    Alcotest.test_case "finding order deterministic" `Quick test_ordering;
    Alcotest.test_case "suppression recorded, not blocking" `Quick
      test_suppression;
    Alcotest.test_case "malformed suppression flagged" `Quick
      test_bad_suppression;
    Alcotest.test_case "engine-only rules scoped by kind" `Quick
      test_kind_scoping;
    Alcotest.test_case "multiple sites all reported" `Quick test_counts;
  ]
