(* jp_lint rule tests: each rule is exercised against a compiled fixture
   (test/lint_fixtures), one positive and one negative case per rule,
   plus the suppression and malformed-suppression paths.  The fixtures
   are linted with an explicit kind override because the repo-wide run
   deliberately skips the fixture directory. *)

module Driver = Jp_lint_core.Lint_driver
module Ctx = Jp_lint_core.Lint_ctx
module Registry = Jp_lint_core.Lint_registry
module Finding = Jp_lint_core.Lint_finding

let fixture_cmt name =
  Filename.concat "lint_fixtures/.jp_lint_fixtures.objs/byte"
    ("jp_lint_fixtures__" ^ String.capitalize_ascii name ^ ".cmt")

(* Lint one fixture as if it lived in an engine library (lib/core), so
   every rule — including the engine-only ones — is in scope. *)
let lint ?(kind = Ctx.Lib "core") name =
  let path = fixture_cmt name in
  if not (Sys.file_exists path) then
    Alcotest.failf "fixture cmt missing: %s (cwd %s)" path (Sys.getcwd ());
  Driver.lint_cmt ~kind ~rules:Registry.all path

let count rule fs = List.length (List.filter (fun f -> f.Finding.rule = rule) fs)

let unsuppressed rule fs =
  List.exists
    (fun f -> f.Finding.rule = rule && f.Finding.suppressed = None)
    fs

let check_fires rule name () =
  Alcotest.(check bool)
    (Printf.sprintf "%s fires on %s" rule name)
    true
    (unsuppressed rule (lint name))

let check_clean rule name () =
  Alcotest.(check int)
    (Printf.sprintf "%s clean on %s" rule name)
    0
    (count rule (lint name))

let test_suppression () =
  let fs = lint "suppressed_random" in
  let sup =
    List.filter
      (fun f -> f.Finding.rule = "random" && f.Finding.suppressed <> None)
      fs
  in
  Alcotest.(check int) "one suppressed random finding" 1 (List.length sup);
  Alcotest.(check bool) "suppressed findings never block" false
    (List.exists
       (fun f -> f.Finding.rule = "random" && Finding.is_blocking f)
       fs)

let test_bad_suppression () =
  let fs = lint "bad_suppression" in
  Alcotest.(check bool) "justification-free allow is flagged" true
    (unsuppressed Ctx.bad_suppression_rule fs);
  Alcotest.(check bool) "the underlying finding still blocks" true
    (unsuppressed "random" fs)

(* hashtbl-dedup is engine-only: the same fixture linted as test code
   must be silent. *)
let test_kind_scoping () =
  Alcotest.(check int) "engine-only rule silent outside engines" 0
    (count "hashtbl-dedup" (lint ~kind:Ctx.Test "bad_hashtbl_dedup"))

(* Both positives in bad_hot_poll/bad_open really are two sites. *)
let test_counts () =
  Alcotest.(check int) "both opens flagged" 2 (count "no-open" (lint "bad_open"));
  Alcotest.(check int) "both dedup calls flagged" 2
    (count "hashtbl-dedup" (lint "bad_hashtbl_dedup"))

let fires rule name =
  Alcotest.test_case
    (Printf.sprintf "%s fires" rule)
    `Quick (check_fires rule name)

let clean rule name =
  Alcotest.test_case
    (Printf.sprintf "%s negative" rule)
    `Quick (check_clean rule name)

let suite =
  [
    fires "poly-compare" "bad_poly_compare";
    clean "poly-compare" "ok_poly_compare";
    fires "random" "bad_random";
    clean "random" "ok_random";
    fires "domain-unsafe-global" "bad_global";
    clean "domain-unsafe-global" "ok_global";
    fires "hot-poll" "bad_hot_poll";
    clean "hot-poll" "ok_hot_poll";
    Alcotest.test_case "hot-poll fires on per-word tile traffic" `Quick
      (check_fires "hot-poll" "bad_tile_poll");
    Alcotest.test_case "hot-poll negative on per-tile cadence" `Quick
      (check_clean "hot-poll" "ok_tile_poll");
    Alcotest.test_case "hot-poll fires on Jp_metrics" `Quick
      (check_fires "hot-poll" "bad_metrics_poll");
    Alcotest.test_case "hot-poll negative on Jp_metrics.Local" `Quick
      (check_clean "hot-poll" "ok_metrics_poll");
    fires "adj-mutation" "bad_adj_mutation";
    clean "adj-mutation" "ok_adj_mutation";
    fires "missing-mli" "bad_no_mli";
    clean "missing-mli" "ok_with_mli";
    fires "no-open" "bad_open";
    clean "no-open" "ok_open";
    fires "hashtbl-dedup" "bad_hashtbl_dedup";
    clean "hashtbl-dedup" "ok_hashtbl_dedup";
    Alcotest.test_case "suppression recorded, not blocking" `Quick
      test_suppression;
    Alcotest.test_case "malformed suppression flagged" `Quick
      test_bad_suppression;
    Alcotest.test_case "engine-only rules scoped by kind" `Quick
      test_kind_scoping;
    Alcotest.test_case "multiple sites all reported" `Quick test_counts;
  ]
