module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Two_path = Joinproj.Two_path
module Optimizer = Joinproj.Optimizer
module Partition = Joinproj.Partition
module Estimator = Joinproj.Estimator

(* A deterministic machine model so optimizer decisions don't depend on
   the noisy calibration micro-benchmarks. *)
let fixed_machine =
  {
    Jp_matrix.Cost.ts = 1e-9;
    tm = 2e-8;
    ti = 6e-9;
    count_word = 1.5e-9;
    bool_word = 2e-9;
    cores = 4;
  }

let () = Jp_matrix.Cost.set_machine fixed_machine

let check_pairs name expected actual =
  Alcotest.(check (list (pair int int))) name expected actual

let test_partition_classification () =
  (* y=0 has degree 3 in both relations; y=1 degree 1. *)
  let r = Relation.of_edges [| (0, 0); (1, 0); (2, 0); (3, 1) |] in
  let s = Relation.of_edges [| (0, 0); (1, 0); (2, 0); (3, 1) |] in
  let p = Partition.make ~r ~s ~d1:1 ~d2:1 () in
  Alcotest.(check bool) "y=0 heavy" false (Partition.is_light_y p 0);
  Alcotest.(check bool) "y=1 light" true (Partition.is_light_y p 1);
  (* x degrees are all 1 <= d2, so no heavy endpoints despite heavy y *)
  Alcotest.(check int) "no heavy x" 0 (Array.length p.heavy_x);
  let p2 = Partition.make ~r ~s ~d1:3 ~d2:3 () in
  Alcotest.(check int) "all light" 0 (Array.length p2.heavy_y)

let test_partition_prunes_zero_rows () =
  (* x=0 is heavy by degree but only adjacent to light y's. *)
  let r =
    Relation.of_edges [| (0, 1); (0, 2); (0, 3); (1, 0); (2, 0); (3, 0); (4, 0) |]
  in
  let s =
    Relation.of_edges [| (9, 0); (8, 0); (7, 0); (6, 0); (5, 1); (5, 2); (5, 3) |]
  in
  let p = Partition.make ~r ~s ~d1:2 ~d2:2 () in
  Alcotest.(check (list int)) "heavy y" [ 0 ] (Array.to_list p.heavy_y);
  (* x=0 has degree 3 > 2 but no heavy y neighbour: pruned; same for z=5,
     whose neighbours y=1,2,3 are all light. *)
  Alcotest.(check (list int)) "heavy x pruned" [] (Array.to_list p.heavy_x);
  Alcotest.(check (list int)) "heavy z pruned" [] (Array.to_list p.heavy_z);
  Alcotest.check_raises "bad thresholds"
    (Invalid_argument "Partition.make: thresholds must be >= 1") (fun () ->
      ignore (Partition.make ~r ~s ~d1:0 ~d2:1 ()))

let forced_plan d1 d2 =
  {
    Optimizer.decision = Optimizer.Partitioned { d1; d2 };
    est_out = 1;
    join_size = 1;
    est_seconds = 0.0;
  }

let exhaustive_threshold_check ~r ~s =
  (* Algorithm 1 must be correct for EVERY threshold choice, matrix or
     combinatorial heavy strategy; optimality is the optimizer's problem. *)
  let expect = Gen.brute_two_path ~r ~s in
  List.iter
    (fun (d1, d2) ->
      List.iter
        (fun strategy ->
          let got =
            Two_path.project ~strategy ~plan:(forced_plan d1 d2) ~r ~s ()
          in
          let label = Printf.sprintf "d1=%d d2=%d" d1 d2 in
          check_pairs label expect (Gen.pairs_to_list got))
        [ Two_path.Matrix; Two_path.Combinatorial ])
    [ (1, 1); (1, 3); (2, 2); (3, 1); (5, 5); (100, 100) ]

let test_two_path_all_thresholds_uniform () =
  let r = Gen.random_relation ~seed:31 ~nx:25 ~ny:18 ~edges:130 () in
  let s = Gen.random_relation ~seed:32 ~nx:22 ~ny:18 ~edges:110 () in
  exhaustive_threshold_check ~r ~s

let test_two_path_all_thresholds_skewed () =
  let r = Gen.skewed_relation ~seed:33 ~nx:30 ~ny:25 ~edges:200 () in
  let s = Gen.skewed_relation ~seed:34 ~nx:28 ~ny:25 ~edges:180 () in
  exhaustive_threshold_check ~r ~s

let test_two_path_self_join () =
  let r = Gen.skewed_relation ~seed:35 ~nx:30 ~ny:30 ~edges:250 () in
  exhaustive_threshold_check ~r ~s:r

let test_two_path_planned () =
  let r = Gen.skewed_relation ~seed:36 ~nx:50 ~ny:40 ~edges:600 () in
  let s = Gen.skewed_relation ~seed:37 ~nx:45 ~ny:40 ~edges:550 () in
  let got = Two_path.project ~r ~s () in
  check_pairs "planned result" (Gen.brute_two_path ~r ~s) (Gen.pairs_to_list got)

let test_two_path_parallel () =
  let r = Gen.skewed_relation ~seed:38 ~nx:60 ~ny:50 ~edges:800 () in
  let s = Gen.skewed_relation ~seed:39 ~nx:55 ~ny:50 ~edges:700 () in
  let plan = forced_plan 2 3 in
  let seq = Two_path.project ~plan ~r ~s () in
  let par = Two_path.project ~domains:4 ~plan ~r ~s () in
  Alcotest.(check bool) "parallel = sequential" true (Pairs.equal seq par)

let prop_two_path_random =
  QCheck.Test.make ~name:"MMJoin = brute force on random instances" ~count:40
    QCheck.(triple small_int (int_range 1 6) (int_range 1 6))
    (fun (seed, d1, d2) ->
      let r = Gen.random_relation ~seed:(seed + 500) ~nx:15 ~ny:12 ~edges:70 () in
      let s = Gen.random_relation ~seed:(seed + 900) ~nx:14 ~ny:12 ~edges:60 () in
      let got = Two_path.project ~plan:(forced_plan d1 d2) ~r ~s () in
      Gen.pairs_to_list got = Gen.brute_two_path ~r ~s)

let counts_threshold_check ~r ~s =
  let expect = Gen.brute_two_path_counts ~r ~s in
  List.iter
    (fun d1 ->
      let got =
        Two_path.project_counts ~plan:(forced_plan d1 1) ~r ~s ()
      in
      Alcotest.(check (list (pair (pair int int) int)))
        (Printf.sprintf "counts d1=%d" d1)
        expect (Gen.counted_to_list got))
    [ 1; 2; 3; 10; 1000 ]

let test_counts_all_thresholds () =
  let r = Gen.skewed_relation ~seed:41 ~nx:25 ~ny:20 ~edges:160 () in
  let s = Gen.skewed_relation ~seed:42 ~nx:24 ~ny:20 ~edges:150 () in
  counts_threshold_check ~r ~s

let test_counts_cap_fallback () =
  let r = Gen.skewed_relation ~seed:43 ~nx:20 ~ny:15 ~edges:100 () in
  let s = Gen.skewed_relation ~seed:44 ~nx:19 ~ny:15 ~edges:90 () in
  let got =
    Two_path.project_counts ~matrix_cell_cap:1 ~plan:(forced_plan 2 1) ~r ~s ()
  in
  Alcotest.(check (list (pair (pair int int) int)))
    "tiny cap falls back to combinatorial heavy part"
    (Gen.brute_two_path_counts ~r ~s)
    (Gen.counted_to_list got)

let test_counts_planned () =
  let r = Gen.skewed_relation ~seed:45 ~nx:40 ~ny:30 ~edges:500 () in
  let got = Two_path.project_counts ~r ~s:r () in
  Alcotest.(check (list (pair (pair int int) int)))
    "planned counts" (Gen.brute_two_path_counts ~r ~s:r) (Gen.counted_to_list got)

let test_estimator_bounds () =
  let r = Gen.random_relation ~seed:46 ~nx:20 ~ny:15 ~edges:100 () in
  let s = Gen.random_relation ~seed:47 ~nx:18 ~ny:15 ~edges:90 () in
  let lower, upper = Estimator.bounds ~r ~s in
  let est = Estimator.estimate ~r ~s in
  let truth = List.length (Gen.brute_two_path ~r ~s) in
  Alcotest.(check bool) "lower <= upper" true (lower <= upper);
  Alcotest.(check bool) "estimate within bounds" true (lower <= est && est <= upper);
  Alcotest.(check bool) "truth within bounds" true (lower <= truth && truth <= upper)

let test_estimator_sampled () =
  let r = Gen.skewed_relation ~seed:49 ~nx:40 ~ny:30 ~edges:400 () in
  let truth = List.length (Gen.brute_two_path ~r ~s:r) in
  let lower, upper = Estimator.bounds ~r ~s:r in
  (* full-domain sample must be exact (modulo duplicate draws, so compare
     with a generous sample) *)
  let est = Estimator.sampled ~sample:10_000 ~r ~s:r () in
  Alcotest.(check bool) "sampled within bounds" true (lower <= est && est <= upper);
  let ratio = float_of_int (max est truth) /. float_of_int (max 1 (min est truth)) in
  Alcotest.(check bool) "sampled within 2x of truth" true (ratio < 2.0);
  (* determinism *)
  Alcotest.(check int) "deterministic" est (Estimator.sampled ~sample:10_000 ~r ~s:r ())

let test_optimizer_wcoj_shortcircuit () =
  (* A nearly functional relation: join size ~ N, far below 20N. *)
  let edges = Array.init 200 (fun i -> (i, i mod 50)) in
  let r = Relation.of_edges edges in
  let plan = Optimizer.plan ~machine:fixed_machine ~r ~s:r () in
  (match plan.decision with
  | Optimizer.Wcoj -> ()
  | Optimizer.Partitioned _ -> Alcotest.fail "expected wcoj shortcircuit");
  Alcotest.(check bool) "explain mentions wcoj" true
    (String.length (Optimizer.explain plan) > 0)

let test_optimizer_picks_partition_on_dense () =
  (* A dense block: every x shares every y; join size n^3-ish >> 20N. *)
  let n = 40 in
  let edges =
    Array.init (n * n) (fun i -> (i / n, i mod n))
  in
  let r = Relation.of_edges edges in
  let plan = Optimizer.plan ~machine:fixed_machine ~r ~s:r () in
  (match plan.decision with
  | Optimizer.Partitioned { d1; d2 } ->
    Alcotest.(check bool) "valid thresholds" true (d1 >= 1 && d2 >= 1)
  | Optimizer.Wcoj -> Alcotest.fail "expected partitioned plan on dense block");
  (* Whatever the optimizer chose, the answer must still be right. *)
  let got = Two_path.project ~plan ~r ~s:r () in
  Alcotest.(check int) "dense clique output" (n * n) (Pairs.count got)

let test_theoretical_thresholds () =
  (* Case 1: |OUT| <= N *)
  let d1, d2 = Optimizer.theoretical_thresholds ~n:1000 ~out:125 in
  Alcotest.(check int) "case1 d1 = out^1/3" 5 d1;
  Alcotest.(check int) "case1 d2 = n/out^2/3" 40 d2;
  (* Case 2: |OUT| > N: d1 = d2 *)
  let d1, d2 = Optimizer.theoretical_thresholds ~n:1000 ~out:10_000 in
  Alcotest.(check int) "case2 equal" d1 d2;
  Alcotest.(check bool) "case2 in range" true (d1 >= 1 && d1 <= 1000);
  (* clamping *)
  let d1, d2 = Optimizer.theoretical_thresholds ~n:4 ~out:1 in
  Alcotest.(check bool) "clamped" true (d1 >= 1 && d1 <= 4 && d2 >= 1 && d2 <= 4);
  Alcotest.check_raises "guard" (Invalid_argument "Optimizer.theoretical_thresholds")
    (fun () -> ignore (Optimizer.theoretical_thresholds ~n:0 ~out:1))

let test_plan_info () =
  let r = Gen.skewed_relation ~seed:48 ~nx:30 ~ny:25 ~edges:300 () in
  let pairs, plan = Two_path.project_with_plan_info ~r ~s:r () in
  Alcotest.(check bool) "count positive" true (Pairs.count pairs > 0);
  Alcotest.(check bool) "plan join size positive" true (plan.Optimizer.join_size > 0)

let suite =
  [
    Alcotest.test_case "partition classification" `Quick test_partition_classification;
    Alcotest.test_case "partition prunes zero rows" `Quick test_partition_prunes_zero_rows;
    Alcotest.test_case "two-path thresholds uniform" `Quick test_two_path_all_thresholds_uniform;
    Alcotest.test_case "two-path thresholds skewed" `Quick test_two_path_all_thresholds_skewed;
    Alcotest.test_case "two-path self join" `Quick test_two_path_self_join;
    Alcotest.test_case "two-path planned" `Quick test_two_path_planned;
    Alcotest.test_case "two-path parallel" `Quick test_two_path_parallel;
    QCheck_alcotest.to_alcotest prop_two_path_random;
    Alcotest.test_case "counts thresholds" `Quick test_counts_all_thresholds;
    Alcotest.test_case "counts cap fallback" `Quick test_counts_cap_fallback;
    Alcotest.test_case "counts planned" `Quick test_counts_planned;
    Alcotest.test_case "estimator bounds" `Quick test_estimator_bounds;
    Alcotest.test_case "estimator sampled" `Quick test_estimator_sampled;
    Alcotest.test_case "optimizer wcoj shortcircuit" `Quick test_optimizer_wcoj_shortcircuit;
    Alcotest.test_case "optimizer dense partition" `Quick test_optimizer_picks_partition_on_dense;
    Alcotest.test_case "theoretical thresholds" `Quick test_theoretical_thresholds;
    Alcotest.test_case "plan info" `Quick test_plan_info;
  ]
