let () =
  Alcotest.run "joinproj"
    [
      ("util", Test_util.suite);
      ("parallel", Test_parallel.suite);
      ("matrix", Test_matrix.suite);
      ("tile", Test_tile.suite);
      ("relation", Test_relation.suite);
      ("wcoj", Test_wcoj.suite);
      ("core", Test_core.suite);
      ("star", Test_star.suite);
      ("ssj", Test_ssj.suite);
      ("scj", Test_scj.suite);
      ("bsi", Test_bsi.suite);
      ("workload", Test_workload.suite);
      ("baselines", Test_baselines.suite);
      ("integration", Test_integration.suite);
      ("edge", Test_edge.suite);
      ("query", Test_query.suite);
      ("planner", Test_planner.suite);
      ("factorized", Test_factorized.suite);
      ("io", Test_io.suite);
      ("dynamic", Test_dynamic.suite);
      ("obs", Test_obs.suite);
      ("metrics", Test_metrics.suite);
      ("adaptive", Test_adaptive.suite);
      ("service", Test_service.suite);
      ("cache", Test_cache.suite);
      ("lint", Test_lint.suite);
      ("properties", Test_properties.suite);
    ]
