module Relation = Jp_relation.Relation
module Zipf = Jp_workload.Zipf
module Generate = Jp_workload.Generate
module Presets = Jp_workload.Presets
module Arrivals = Jp_workload.Arrivals

let test_zipf_skew () =
  let z = Zipf.create ~exponent:1.0 100 in
  let g = Jp_util.Rng.create 7 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let v = Zipf.sample z g in
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check bool) "rank 0 most frequent" true (counts.(0) > counts.(10));
  Alcotest.(check bool) "head heavier than tail" true (counts.(0) > 4 * counts.(50));
  Alcotest.(check int) "domain" 100 (Zipf.domain z)

let test_zipf_determinism () =
  let z = Zipf.create 50 in
  let a = Jp_util.Rng.create 9 and b = Jp_util.Rng.create 9 in
  let xs = List.init 100 (fun _ -> Zipf.sample z a) in
  let ys = List.init 100 (fun _ -> Zipf.sample z b) in
  Alcotest.(check (list int)) "deterministic" xs ys

let test_set_family_shape () =
  let r =
    Generate.set_family ~seed:5 ~sets:200 ~dom:300 ~avg_size:8 ~min_size:2
      ~max_size:40 ()
  in
  Alcotest.(check int) "src count" 200 (Relation.src_count r);
  Alcotest.(check int) "dst count" 300 (Relation.dst_count r);
  for a = 0 to 199 do
    let d = Relation.deg_src r a in
    if d < 2 || d > 40 then
      Alcotest.failf "set %d has out-of-range size %d" a d
  done

let test_uniform_dense_fill () =
  let r = Generate.uniform_dense ~seed:6 ~sets:100 ~dom:200 ~fill:0.3 () in
  let avg = float_of_int (Relation.size r) /. 100.0 /. 200.0 in
  Alcotest.(check bool) "fill close to 0.3" true (avg > 0.25 && avg < 0.35)

let test_community_graph () =
  let r = Generate.community_graph ~seed:8 ~communities:4 ~members:10 ~p_intra:1.0 () in
  (* complete communities: each node has 9 neighbours *)
  Alcotest.(check int) "degree" 9 (Relation.deg_src r 0);
  (* no cross-community edge: neighbours of node 0 stay in [0, 10) *)
  Array.iter
    (fun b -> if b >= 10 then Alcotest.fail "cross-community edge")
    (Relation.adj_src r 0);
  (* symmetric *)
  Alcotest.(check bool) "symmetric" true
    (Relation.mem r 0 1 = Relation.mem r 1 0)

let test_add_containments () =
  let base = Generate.set_family ~seed:9 ~sets:100 ~dom:150 ~avg_size:10
      ~min_size:2 ~max_size:30 () in
  let enriched = Generate.add_containments ~seed:10 ~fraction:0.5 base in
  Alcotest.(check int) "same set count" (Relation.src_count base)
    (Relation.src_count enriched);
  Alcotest.(check int) "same domain" (Relation.dst_count base)
    (Relation.dst_count enriched);
  (* enrichment must create containment pairs *)
  let scj = Jp_scj.Pretti.join enriched in
  Alcotest.(check bool) "containments exist" true (Jp_relation.Pairs.count scj > 0);
  (* fraction 0 is the identity *)
  let same = Generate.add_containments ~seed:10 ~fraction:0.0 base in
  Alcotest.(check bool) "fraction 0 identity" true (Relation.equal base same);
  Alcotest.check_raises "bad fraction" (Invalid_argument "Generate.add_containments")
    (fun () -> ignore (Generate.add_containments ~fraction:1.5 base))

let test_presets_generate () =
  List.iter
    (fun name ->
      let r = Presets.load ~scale:0.05 name in
      let ch = Presets.characteristics r in
      if ch.Presets.tuples <= 0 then
        Alcotest.failf "%s generated empty" (Presets.to_string name);
      if ch.Presets.sets <= 0 then Alcotest.fail "no sets";
      Alcotest.(check bool) "avg within min/max" true
        (float_of_int ch.Presets.min_size <= ch.Presets.avg_size
        && ch.Presets.avg_size <= float_of_int ch.Presets.max_size))
    Presets.all

let test_presets_roundtrip_names () =
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Presets.to_string n)
        true
        (Presets.of_string (Presets.to_string n) = Some n))
    Presets.all;
  Alcotest.(check bool) "unknown" true (Presets.of_string "nope" = None)

let test_presets_determinism () =
  let a = Presets.load ~scale:0.05 Presets.Dblp in
  let b = Presets.load ~scale:0.05 Presets.Dblp in
  Alcotest.(check bool) "same seed same data" true (Relation.equal a b)

let test_density_classes () =
  (* dense presets should have much higher fill than sparse ones *)
  let fill name =
    let r = Presets.load ~scale:0.05 name in
    let ch = Presets.characteristics r in
    ch.Presets.avg_size /. float_of_int (max 1 ch.Presets.dom)
  in
  Alcotest.(check bool) "image denser than dblp" true
    (fill Presets.Image > 10.0 *. fill Presets.Dblp);
  Alcotest.(check bool) "protein denser than roadnet" true
    (fill Presets.Protein > 10.0 *. fill Presets.Roadnet)

let test_arrivals_fixed_rate () =
  let s = Arrivals.schedule ~rate:40.0 ~count:20 () in
  Alcotest.(check int) "count" 20 (Array.length s);
  Array.iteri
    (fun i off ->
      Alcotest.(check (float 0.)) "offset exactly i/rate"
        (float_of_int i /. 40.0) off)
    s;
  (* fixed-rate schedules ignore the seed entirely *)
  let s' = Arrivals.schedule ~seed:99 ~rate:40.0 ~count:20 () in
  Alcotest.(check bool) "seed-independent" true (s = s');
  Alcotest.(check int) "empty" 0 (Array.length (Arrivals.schedule ~rate:1.0 ~count:0 ()))

let test_arrivals_poisson () =
  let p seed = Arrivals.schedule ~process:Arrivals.Poisson ~seed ~rate:100.0 ~count:2_000 () in
  let a = p 3 and b = p 3 and c = p 4 in
  Alcotest.(check bool) "same seed same schedule" true (a = b);
  Alcotest.(check bool) "different seed differs" true (a <> c);
  for i = 1 to Array.length a - 1 do
    if a.(i) < a.(i - 1) then Alcotest.fail "offsets must be nondecreasing"
  done;
  (* mean interarrival over 2000 draws should sit near 1/rate = 10ms *)
  let mean = a.(Array.length a - 1) /. float_of_int (Array.length a - 1) in
  Alcotest.(check bool)
    (Printf.sprintf "mean interarrival %.4fs near 0.01s" mean)
    true
    (mean > 0.008 && mean < 0.012)

let test_arrivals_validation () =
  Alcotest.check_raises "rate 0" (Invalid_argument "Arrivals.schedule: rate must be > 0")
    (fun () -> ignore (Arrivals.schedule ~rate:0.0 ~count:1 ()));
  Alcotest.check_raises "negative count"
    (Invalid_argument "Arrivals.schedule: count must be >= 0")
    (fun () -> ignore (Arrivals.schedule ~rate:1.0 ~count:(-1) ()));
  Alcotest.(check bool) "roundtrip fixed" true
    (Arrivals.process_of_string (Arrivals.process_to_string Arrivals.Fixed_rate)
     = Some Arrivals.Fixed_rate);
  Alcotest.(check bool) "roundtrip poisson" true
    (Arrivals.process_of_string (Arrivals.process_to_string Arrivals.Poisson)
     = Some Arrivals.Poisson);
  Alcotest.(check bool) "unknown" true (Arrivals.process_of_string "burst" = None)

let test_arrivals_sweep () =
  let s = Arrivals.sweep ~lo:10.0 ~hi:640.0 ~steps:4 in
  Alcotest.(check int) "steps" 4 (Array.length s);
  Alcotest.(check (float 1e-9)) "lo endpoint" 10.0 s.(0);
  Alcotest.(check (float 1e-9)) "hi endpoint exact" 640.0 s.(3);
  (* geometric: constant ratio between consecutive rates *)
  let r01 = s.(1) /. s.(0) and r12 = s.(2) /. s.(1) in
  Alcotest.(check (float 1e-6)) "constant ratio" r01 r12;
  Alcotest.(check bool) "steps=1 is just hi" true
    (Arrivals.sweep ~lo:10.0 ~hi:640.0 ~steps:1 = [| 640.0 |]);
  Alcotest.check_raises "hi < lo" (Invalid_argument "Arrivals.sweep: hi must be >= lo")
    (fun () -> ignore (Arrivals.sweep ~lo:10.0 ~hi:5.0 ~steps:3))

let test_arrivals_drive_fake_clock () =
  (* Fake clock: sleeping advances it; submissions are also given a fixed
     cost, so the driver falls behind schedule partway through and must
     stop sleeping (open-loop: never stretch the schedule). *)
  let clock = ref 100.0 in
  let slept = ref [] in
  let now () = !clock in
  let sleep d =
    slept := d :: !slept;
    clock := !clock +. d
  in
  let submitted = ref [] in
  let submit_cost = 0.015 in
  let submit i =
    submitted := (i, !clock) :: !submitted;
    clock := !clock +. submit_cost
  in
  let schedule = Arrivals.schedule ~rate:100.0 ~count:5 () in
  let start = Arrivals.drive ~now ~sleep ~schedule submit in
  Alcotest.(check (float 0.)) "start is entry clock" 100.0 start;
  let subs = List.rev !submitted in
  Alcotest.(check (list int)) "all submitted in order" [ 0; 1; 2; 3; 4 ]
    (List.map fst subs);
  List.iteri
    (fun i (_, at) ->
      let due = start +. schedule.(i) in
      if at < due -. 1e-9 then
        Alcotest.failf "query %d submitted %.4fs early" i (due -. at))
    subs;
  (* with a 15ms submit cost against 10ms interarrivals the driver is
     behind from query 2 on: it may sleep only for the first arrivals *)
  Alcotest.(check bool) "stops sleeping once behind" true
    (List.length !slept < 5);
  List.iter
    (fun d -> if d < 0. then Alcotest.fail "negative sleep")
    !slept

let suite =
  [
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "zipf determinism" `Quick test_zipf_determinism;
    Alcotest.test_case "set family shape" `Quick test_set_family_shape;
    Alcotest.test_case "uniform dense fill" `Quick test_uniform_dense_fill;
    Alcotest.test_case "community graph" `Quick test_community_graph;
    Alcotest.test_case "add containments" `Quick test_add_containments;
    Alcotest.test_case "presets generate" `Quick test_presets_generate;
    Alcotest.test_case "preset names" `Quick test_presets_roundtrip_names;
    Alcotest.test_case "preset determinism" `Quick test_presets_determinism;
    Alcotest.test_case "density classes" `Quick test_density_classes;
    Alcotest.test_case "arrivals fixed rate" `Quick test_arrivals_fixed_rate;
    Alcotest.test_case "arrivals poisson" `Quick test_arrivals_poisson;
    Alcotest.test_case "arrivals validation" `Quick test_arrivals_validation;
    Alcotest.test_case "arrivals sweep" `Quick test_arrivals_sweep;
    Alcotest.test_case "arrivals drive fake clock" `Quick test_arrivals_drive_fake_clock;
  ]
