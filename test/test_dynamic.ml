module Relation = Jp_relation.Relation
module View = Jp_dynamic.View

let counted_list v = Gen.counted_to_list (View.to_counted_pairs v)

let test_init_matches_static () =
  let r = Gen.skewed_relation ~seed:501 ~nx:25 ~ny:20 ~edges:150 () in
  let s = Gen.skewed_relation ~seed:502 ~nx:22 ~ny:20 ~edges:130 () in
  let v = View.init ~r ~s () in
  Alcotest.(check (list (pair (pair int int) int)))
    "init = recomputation" (Gen.brute_two_path_counts ~r ~s) (counted_list v);
  Alcotest.(check int) "count" (List.length (Gen.brute_two_path ~r ~s)) (View.count v)

let test_single_deltas () =
  let v = View.create () in
  Alcotest.(check int) "empty" 0 (View.count v);
  View.insert_r v 1 10;
  Alcotest.(check int) "no partner yet" 0 (View.count v);
  View.insert_s v 7 10;
  Alcotest.(check bool) "pair appears" true (View.mem v 1 7);
  Alcotest.(check int) "one pair" 1 (View.count v);
  Alcotest.(check int) "one witness" 1 (View.witnesses v 1 7);
  (* a second witness *)
  View.insert_r v 1 11;
  View.insert_s v 7 11;
  Alcotest.(check int) "two witnesses" 2 (View.witnesses v 1 7);
  Alcotest.(check int) "still one pair" 1 (View.count v);
  (* duplicate insert is a no-op *)
  View.insert_r v 1 10;
  Alcotest.(check int) "idempotent" 2 (View.witnesses v 1 7);
  (* delete one witness: pair survives *)
  View.delete_r v 1 10;
  Alcotest.(check int) "one left" 1 (View.witnesses v 1 7);
  Alcotest.(check bool) "still member" true (View.mem v 1 7);
  (* delete the last witness: pair disappears *)
  View.delete_s v 7 11;
  Alcotest.(check bool) "gone" false (View.mem v 1 7);
  Alcotest.(check int) "empty again" 0 (View.count v);
  (* deleting an absent tuple is a no-op *)
  View.delete_r v 9 9;
  Alcotest.(check int) "noop delete" 0 (View.count v)

(* Random update streams must keep the view equal to recomputation. *)
let prop_random_updates =
  QCheck.Test.make ~name:"dynamic view = recomputation under random updates"
    ~count:40
    QCheck.(
      list_of_size (Gen.int_range 1 120)
        (quad bool bool (int_bound 10) (int_bound 8)))
    (fun ops ->
      let v = View.create () in
      (* shadow model: explicit tuple sets *)
      let r_set = Hashtbl.create 64 and s_set = Hashtbl.create 64 in
      List.iter
        (fun (is_r, is_insert, a, b) ->
          let set = if is_r then r_set else s_set in
          if is_insert then begin
            Hashtbl.replace set (a, b) ();
            if is_r then View.insert_r v a b else View.insert_s v a b
          end
          else begin
            Hashtbl.remove set (a, b);
            if is_r then View.delete_r v a b else View.delete_s v a b
          end)
        ops;
      let to_rel set =
        let edges = Hashtbl.fold (fun (a, b) () acc -> (a, b) :: acc) set [] in
        Relation.of_edges ~src_count:11 ~dst_count:9 (Array.of_list edges)
      in
      let expect = Gen.brute_two_path_counts ~r:(to_rel r_set) ~s:(to_rel s_set) in
      counted_list v = expect)

let test_update_after_init () =
  let r = Gen.random_relation ~seed:503 ~nx:15 ~ny:12 ~edges:60 () in
  let s = Gen.random_relation ~seed:504 ~nx:14 ~ny:12 ~edges:55 () in
  let v = View.init ~r ~s () in
  (* apply a batch of post-init updates and compare with recomputation *)
  let victim_x =
    let rec go x = if Relation.deg_src r x > 0 then x else go (x + 1) in
    go 0
  in
  let victim_y = (Relation.adj_src r victim_x).(0) in
  View.insert_r v 0 0;
  View.insert_s v 1 0;
  View.delete_r v victim_x victim_y;
  let r' =
    Relation.of_edges ~src_count:15 ~dst_count:12
      (Array.of_list
         ((0, 0)
         :: List.filter
              (fun (x, y) -> not (x = victim_x && y = victim_y))
              (Array.to_list (Relation.to_edges r))))
  in
  let s' =
    Relation.of_edges ~src_count:14 ~dst_count:12
      (Array.of_list ((1, 0) :: Array.to_list (Relation.to_edges s)))
  in
  Alcotest.(check (list (pair (pair int int) int)))
    "post-update = recomputation"
    (Gen.brute_two_path_counts ~r:r' ~s:s')
    (counted_list v)

let suite =
  [
    Alcotest.test_case "init matches static" `Quick test_init_matches_static;
    Alcotest.test_case "single deltas" `Quick test_single_deltas;
    QCheck_alcotest.to_alcotest prop_random_updates;
    Alcotest.test_case "updates after init" `Quick test_update_after_init;
  ]
