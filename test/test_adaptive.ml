(* Jp_adaptive: misestimation injection, the guard's verdict state machine,
   and the invariant every guarded engine must uphold — whatever route the
   injected misestimation or an exhausted budget forces, the result is
   exactly the unguarded one. *)

module Guard = Jp_adaptive.Guard
module Inject = Jp_adaptive.Inject
module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Counted_pairs = Jp_relation.Counted_pairs
module Optimizer = Joinproj.Optimizer

let guard_with inj = Guard.with_inject inj Guard.default

(* Run [f] with Jp_obs recording on and a clean slate, restoring the
   disabled state afterwards even on failure. *)
let with_recording f =
  Jp_obs.reset ();
  Jp_obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Jp_obs.disable ();
      Jp_obs.reset ())
    f

let only_plan_record () =
  match Jp_obs.plan_records () with
  | [ pr ] -> pr
  | l -> Alcotest.failf "expected exactly one plan record, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Inject                                                              *)
(* ------------------------------------------------------------------ *)

let test_inject_none () =
  Alcotest.(check bool) "is_none" true (Inject.is_none Inject.none);
  Alcotest.(check int) "out untouched" 12345 (Inject.out Inject.none 12345);
  Alcotest.(check (float 0.0)) "seconds untouched" 1.5 (Inject.seconds Inject.none 1.5);
  Alcotest.(check string) "renders empty" "" (Inject.to_string Inject.none)

let test_inject_factors () =
  let u = Inject.uniform 0.01 in
  Alcotest.(check int) "100x underestimate" 10 (Inject.out u 1000);
  Alcotest.(check int) "clamped to >= 1" 1 (Inject.out u 3);
  Alcotest.(check (float 1e-12)) "mm cost scaled" 0.02 (Inject.seconds u 2.0);
  let o = Inject.out_only 100.0 in
  Alcotest.(check int) "100x overestimate" 100_000 (Inject.out o 1000);
  Alcotest.(check (float 0.0)) "mm cost untouched" 2.0 (Inject.seconds o 2.0);
  let m = Inject.mm_only 3.0 in
  Alcotest.(check int) "out untouched" 1000 (Inject.out m 1000);
  Alcotest.(check (float 1e-12)) "mm cost scaled up" 6.0 (Inject.seconds m 2.0);
  Alcotest.check_raises "rejects a zero factor"
    (Invalid_argument "Inject.uniform: factor must be finite and positive")
    (fun () -> ignore (Inject.uniform 0.0))

let test_inject_jittered () =
  let a = Inject.jittered ~seed:11 ~spread:4.0 0.1 in
  let b = Inject.jittered ~seed:11 ~spread:4.0 0.1 in
  Alcotest.(check bool) "same seed, same factors" true (a = b);
  let inside f = f >= (0.1 /. 4.0) -. 1e-12 && f <= (0.1 *. 4.0) +. 1e-12 in
  Alcotest.(check bool) "factors stay within the spread" true
    (inside a.Inject.out_factor && inside a.Inject.mm_factor);
  let c = Inject.jittered ~seed:12 ~spread:4.0 0.1 in
  Alcotest.(check bool) "different seed, different draw" true (a <> c)

(* ------------------------------------------------------------------ *)
(* Guard state machine                                                 *)
(* ------------------------------------------------------------------ *)

let test_config_builders () =
  let cfg =
    Guard.default
    |> Guard.with_budget_ms 250.0
    |> Guard.with_inject (Inject.out_only 0.5)
  in
  (match cfg.Guard.budget.Guard.max_seconds with
  | Some s -> Alcotest.(check (float 1e-12)) "milliseconds to seconds" 0.25 s
  | None -> Alcotest.fail "with_budget_ms did not set the budget");
  Alcotest.(check bool) "injection stored" true (cfg.Guard.inject = Inject.out_only 0.5);
  Alcotest.check_raises "rejects a negative budget"
    (Invalid_argument "Guard.with_budget_ms: negative budget")
    (fun () -> ignore (Guard.with_budget_ms (-1.0) Guard.default));
  Alcotest.check_raises "rejects divergence <= 1"
    (Invalid_argument "Guard.start: divergence must be > 1")
    (fun () -> ignore (Guard.start { Guard.default with Guard.divergence = 1.0 }))

let test_budget_verdicts () =
  let g = Guard.start Guard.default in
  Alcotest.(check bool) "no budget always continues" true
    (Guard.check_budget g ~cells:max_int = Guard.Continue);
  let g = Guard.start (Guard.with_budget_ms 0.0 Guard.default) in
  Alcotest.(check bool) "zero time budget degrades at once" true
    (Guard.check_budget g ~cells:0 = Guard.Degrade);
  let cells_cfg =
    {
      Guard.default with
      Guard.budget = { Guard.no_budget with Guard.max_cells = Some 100 };
    }
  in
  let g = Guard.start cells_cfg in
  Alcotest.(check bool) "cells within budget" true
    (Guard.check_budget g ~cells:100 = Guard.Continue);
  Alcotest.(check bool) "cells beyond budget" true
    (Guard.check_budget g ~cells:101 = Guard.Degrade)

let test_estimate_verdicts () =
  let g = Guard.start Guard.default in
  (* default divergence is 8 *)
  Alcotest.(check bool) "observed within the factor" true
    (Guard.check_estimate g ~est:100.0 ~observed:799.0 = Guard.Continue);
  Alcotest.(check bool) "observed under but within" true
    (Guard.check_estimate g ~est:100.0 ~observed:13.0 = Guard.Continue);
  Alcotest.(check bool) "missing estimate never triggers" true
    (Guard.check_estimate g ~est:0.0 ~observed:1e9 = Guard.Continue);
  Alcotest.(check bool) "overshoot replans" true
    (Guard.check_estimate g ~est:100.0 ~observed:801.0 = Guard.Replan);
  Alcotest.(check bool) "undershoot replans" true
    (Guard.check_estimate g ~est:100.0 ~observed:12.0 = Guard.Replan);
  Alcotest.(check bool) "fuel available before the replan" true (Guard.can_replan g);
  Guard.note_replan g;
  Alcotest.(check bool) "fuel spent" false (Guard.can_replan g);
  Alcotest.(check bool) "no fuel, no replan verdict" true
    (Guard.check_estimate g ~est:100.0 ~observed:1e6 = Guard.Continue)

let test_outcome_flags () =
  let g = Guard.start Guard.default in
  Alcotest.(check bool) "clean start" false (Guard.replanned g || Guard.degraded g);
  Alcotest.(check int) "no checkpoints yet" 0 (Guard.checkpoints g);
  ignore (Guard.check_budget g ~cells:0);
  ignore (Guard.check_estimate g ~est:1.0 ~observed:1.0);
  Alcotest.(check int) "checkpoints counted" 2 (Guard.checkpoints g);
  Guard.note_replan g;
  Guard.note_degrade g;
  Alcotest.(check bool) "outcome flags set" true
    (Guard.replanned g && Guard.degraded g)

let test_counters_published () =
  with_recording (fun () ->
      let g = Guard.start Guard.default in
      ignore (Guard.check_budget g ~cells:0);
      Guard.note_replan g;
      Guard.note_degrade g;
      Guard.note_degrade g;
      let v name =
        Option.value ~default:0 (List.assoc_opt name (Jp_obs.counter_values ()))
      in
      Alcotest.(check int) "guard.checkpoints" 1 (v "guard.checkpoints");
      Alcotest.(check int) "guard.replans" 1 (v "guard.replans");
      Alcotest.(check int) "guard.degrades counted once" 1 (v "guard.degrades"))

(* ------------------------------------------------------------------ *)
(* Guarded engines: edge cases                                         *)
(* ------------------------------------------------------------------ *)

let test_empty_relation () =
  let r = Relation.of_edges ~src_count:5 ~dst_count:4 [||] in
  let out = Joinproj.Two_path.project ~guard:Guard.default ~r ~s:r () in
  Alcotest.(check int) "no pairs" 0 (Pairs.count out);
  let counted =
    Joinproj.Two_path.project_counts
      ~guard:(guard_with (Inject.uniform 0.01))
      ~r ~s:r ()
  in
  Alcotest.(check int) "no counted pairs" 0 (Counted_pairs.count counted)

let test_all_heavy_value () =
  (* Every tuple shares one y: a single all-heavy value whose expansion is
     the full nx x nx rectangle, whatever the injected estimate says. *)
  let nx = 40 in
  let edges = Array.init nx (fun x -> (x, 0)) in
  let r = Relation.of_edges ~src_count:nx ~dst_count:1 edges in
  let expect = Gen.brute_two_path ~r ~s:r in
  List.iter
    (fun f ->
      let out =
        Joinproj.Two_path.project ~guard:(guard_with (Inject.out_only f)) ~r
          ~s:r ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "inject factor %g" f)
        true
        (Gen.pairs_to_list out = expect))
    [ 0.01; 1.0; 100.0 ]

let test_zero_budget_degrades () =
  let r = Gen.skewed_relation ~seed:42 ~nx:60 ~ny:40 ~edges:600 () in
  let unguarded = Joinproj.Two_path.project ~r ~s:r () in
  with_recording (fun () ->
      let guard = Guard.with_budget_ms 0.0 Guard.default in
      let out = Joinproj.Two_path.project ~guard ~r ~s:r () in
      Alcotest.(check bool) "result unchanged" true (Pairs.equal unguarded out);
      Alcotest.(check bool) "recorded as degraded" true
        (only_plan_record ()).Jp_obs.degraded)

let test_cells_budget_vetoes_matrices () =
  (* A forced Partitioned plan whose matrices exceed a one-cell budget:
     the pre-MM checkpoint must fall back to the combinatorial heavy part
     mid-plan, after the split is already materialized. *)
  let r = Gen.skewed_relation ~seed:9 ~nx:80 ~ny:50 ~edges:900 () in
  let unguarded = Joinproj.Two_path.project ~r ~s:r () in
  let plan =
    {
      Optimizer.decision = Optimizer.Partitioned { d1 = 2; d2 = 2 };
      est_out = 1;
      join_size = 1;
      est_seconds = 0.0;
    }
  in
  let guard =
    {
      Guard.default with
      Guard.budget = { Guard.no_budget with Guard.max_cells = Some 1 };
    }
  in
  with_recording (fun () ->
      let out = Joinproj.Two_path.project ~plan ~guard ~r ~s:r () in
      Alcotest.(check bool) "result unchanged" true (Pairs.equal unguarded out);
      Alcotest.(check bool) "recorded as degraded" true
        (only_plan_record ()).Jp_obs.degraded)

let test_injected_underestimate_replans () =
  (* A 100x |OUT| underestimate must trip a divergence checkpoint: the
     engine re-plans with observed statistics and still matches. *)
  let r = Gen.skewed_relation ~seed:77 ~nx:400 ~ny:120 ~edges:4000 () in
  let unguarded = Joinproj.Two_path.project ~r ~s:r () in
  with_recording (fun () ->
      let out =
        Joinproj.Two_path.project
          ~guard:(guard_with (Inject.out_only 0.01))
          ~r ~s:r ()
      in
      Alcotest.(check bool) "result unchanged" true (Pairs.equal unguarded out);
      Alcotest.(check bool) "recorded as replanned" true
        (only_plan_record ()).Jp_obs.replanned)

let test_mm_injection_invariant () =
  let r = Gen.skewed_relation ~seed:5 ~nx:150 ~ny:60 ~edges:1500 () in
  let unguarded = Joinproj.Two_path.project ~r ~s:r () in
  List.iter
    (fun f ->
      let out =
        Joinproj.Two_path.project ~guard:(guard_with (Inject.mm_only f)) ~r
          ~s:r ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "mm factor %g" f)
        true (Pairs.equal unguarded out))
    [ 0.01; 100.0 ]

let test_clean_guard_is_transparent () =
  let r = Gen.random_relation ~seed:3 ~nx:100 ~ny:80 ~edges:1200 () in
  let unguarded = Joinproj.Two_path.project ~r ~s:r () in
  with_recording (fun () ->
      let out = Joinproj.Two_path.project ~guard:Guard.default ~r ~s:r () in
      Alcotest.(check bool) "result unchanged" true (Pairs.equal unguarded out);
      let pr = only_plan_record () in
      Alcotest.(check bool) "neither replanned nor degraded" false
        (pr.Jp_obs.replanned || pr.Jp_obs.degraded))

let test_counts_guarded_invariant () =
  let r = Gen.skewed_relation ~seed:21 ~nx:120 ~ny:60 ~edges:1400 () in
  let reference = Gen.counted_to_list (Joinproj.Two_path.project_counts ~r ~s:r ()) in
  List.iter
    (fun f ->
      let counted =
        Joinproj.Two_path.project_counts ~guard:(guard_with (Inject.uniform f))
          ~r ~s:r ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "inject factor %g" f)
        true
        (Gen.counted_to_list counted = reference))
    [ 0.01; 1.0; 100.0 ];
  let guard =
    {
      Guard.default with
      Guard.budget = { Guard.no_budget with Guard.max_cells = Some 10 };
    }
  in
  let counted = Joinproj.Two_path.project_counts ~guard ~r ~s:r () in
  Alcotest.(check bool) "cells budget keeps counts exact" true
    (Gen.counted_to_list counted = reference)

(* ------------------------------------------------------------------ *)
(* Guarded engines: star / ssj / scj / bsi                             *)
(* ------------------------------------------------------------------ *)

let test_star_guarded_invariant () =
  let rels =
    [|
      Gen.random_relation ~seed:61 ~nx:12 ~ny:10 ~edges:50 ();
      Gen.random_relation ~seed:62 ~nx:12 ~ny:10 ~edges:50 ();
      Gen.random_relation ~seed:63 ~nx:12 ~ny:10 ~edges:50 ();
    |]
  in
  let reference = Joinproj.Star.project rels in
  Alcotest.(check bool) "clean guard" true
    (Jp_relation.Tuples.equal reference
       (Joinproj.Star.project ~guard:Guard.default rels));
  Alcotest.(check bool) "zero budget degrades but agrees" true
    (Jp_relation.Tuples.equal reference
       (Joinproj.Star.project ~guard:(Guard.with_budget_ms 0.0 Guard.default) rels))

let test_ssj_guarded_invariant () =
  let r = Gen.skewed_relation ~seed:71 ~nx:40 ~ny:25 ~edges:300 () in
  let reference = Jp_ssj.Mm_ssj.join ~c:2 r in
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "inject factor %g" f)
        true
        (Pairs.equal reference
           (Jp_ssj.Mm_ssj.join ~guard:(guard_with (Inject.uniform f)) ~c:2 r)))
    [ 0.01; 1.0; 100.0 ]

let test_scj_guarded_invariant () =
  let r = Gen.random_relation ~seed:81 ~nx:30 ~ny:12 ~edges:120 () in
  let reference = Jp_scj.Mm_scj.join r in
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "inject factor %g" f)
        true
        (Pairs.equal reference
           (Jp_scj.Mm_scj.join ~guard:(guard_with (Inject.uniform f)) r)))
    [ 0.01; 100.0 ]

let test_bsi_guarded_invariant () =
  let r = Gen.random_relation ~seed:91 ~nx:30 ~ny:25 ~edges:200 () in
  let queries =
    Jp_workload.Generate.batch_queries ~seed:4 ~count:150 ~nx:30 ~nz:30 ()
  in
  let plain = Jp_bsi.Bsi.answer_batch ~r ~s:r queries in
  List.iter
    (fun f ->
      let guarded =
        Jp_bsi.Bsi.answer_batch ~guard:(guard_with (Inject.uniform f)) ~r ~s:r
          queries
      in
      Alcotest.(check bool)
        (Printf.sprintf "inject factor %g" f)
        true (guarded = plain))
    [ 0.01; 100.0 ]

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_guard_never_changes_output =
  QCheck.Test.make ~name:"guarded two-path = brute force under any injection"
    ~count:60
    QCheck.(pair small_int (oneofl [ 0.01; 0.2; 1.0; 5.0; 100.0 ]))
    (fun (seed, f) ->
      let r = Gen.random_relation ~seed:(seed + 11_000) ~nx:14 ~ny:10 ~edges:60 () in
      let s = Gen.random_relation ~seed:(seed + 11_500) ~nx:13 ~ny:10 ~edges:55 () in
      let guard = guard_with (Inject.uniform f) in
      Gen.pairs_to_list (Joinproj.Two_path.project ~guard ~r ~s ())
      = Gen.brute_two_path ~r ~s)

let prop_guarded_counts_match_brute =
  QCheck.Test.make ~name:"guarded counted project = brute-force witness counts"
    ~count:40
    QCheck.(pair small_int (oneofl [ 0.01; 1.0; 100.0 ]))
    (fun (seed, f) ->
      let r = Gen.random_relation ~seed:(seed + 13_000) ~nx:12 ~ny:9 ~edges:55 () in
      let s = Gen.skewed_relation ~seed:(seed + 13_500) ~nx:11 ~ny:9 ~edges:50 () in
      let guard = guard_with (Inject.uniform f) in
      Gen.counted_to_list (Joinproj.Two_path.project_counts ~guard ~r ~s ())
      = Gen.brute_two_path_counts ~r ~s)

(* The optimizer-invariant properties (thresholds bounded/antitone, plan
   determinism, guard checksum invariance) live in test_properties.ml with
   the other cross-cutting randomized checks. *)

let suite =
  [
    Alcotest.test_case "inject none is identity" `Quick test_inject_none;
    Alcotest.test_case "inject factors apply and clamp" `Quick test_inject_factors;
    Alcotest.test_case "inject jittered is deterministic" `Quick test_inject_jittered;
    Alcotest.test_case "guard config builders" `Quick test_config_builders;
    Alcotest.test_case "budget verdicts" `Quick test_budget_verdicts;
    Alcotest.test_case "estimate verdicts and fuel" `Quick test_estimate_verdicts;
    Alcotest.test_case "outcome flags and checkpoints" `Quick test_outcome_flags;
    Alcotest.test_case "guard counters published" `Quick test_counters_published;
    Alcotest.test_case "empty relation under guard" `Quick test_empty_relation;
    Alcotest.test_case "all-heavy value under guard" `Quick test_all_heavy_value;
    Alcotest.test_case "zero budget degrades to the safe path" `Quick
      test_zero_budget_degrades;
    Alcotest.test_case "cells budget vetoes the matrices" `Quick
      test_cells_budget_vetoes_matrices;
    Alcotest.test_case "injected underestimate replans" `Quick
      test_injected_underestimate_replans;
    Alcotest.test_case "mm-cost injection keeps results" `Quick
      test_mm_injection_invariant;
    Alcotest.test_case "clean guard is transparent" `Quick
      test_clean_guard_is_transparent;
    Alcotest.test_case "guarded counts stay exact" `Quick
      test_counts_guarded_invariant;
    Alcotest.test_case "guarded star agrees" `Quick test_star_guarded_invariant;
    Alcotest.test_case "guarded ssj agrees" `Quick test_ssj_guarded_invariant;
    Alcotest.test_case "guarded scj agrees" `Quick test_scj_guarded_invariant;
    Alcotest.test_case "guarded bsi agrees" `Quick test_bsi_guarded_invariant;
    QCheck_alcotest.to_alcotest prop_guard_never_changes_output;
    QCheck_alcotest.to_alcotest prop_guarded_counts_match_brute;
  ]
