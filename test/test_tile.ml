module Boolmat = Jp_matrix.Boolmat
module Intmat = Jp_matrix.Intmat
module Cost = Jp_matrix.Cost
module Tile = Jp_tile
module Cancel = Jp_util.Cancel

let random_boolmat seed ~rows ~cols ~density =
  let g = Jp_util.Rng.create seed in
  let m = Boolmat.create ~rows ~cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if Jp_util.Rng.float g 1.0 < density then Boolmat.set m i j
    done
  done;
  m

let cfg ?budget_bytes ?(tile_bits = 4) () = Tile.config ~tile_bits ?budget_bytes ()

(* Tiled vs flat on dimensions that are not tile multiples: boundary
   tiles are ragged on every side, and with 16-wide tiles the column
   offsets are never 62-aligned, so the OR-blit carry path is hot. *)
let test_mul_matches_flat () =
  let a = random_boolmat 1 ~rows:70 ~cols:131 ~density:0.08 in
  let b = random_boolmat 2 ~rows:131 ~cols:90 ~density:0.08 in
  let tiled =
    Tile.mul (cfg ()) (Tile.Source.of_boolmat a) (Tile.Source.of_boolmat b)
  in
  Alcotest.(check bool) "tiled = flat" true
    (Boolmat.equal tiled (Boolmat.mul a b))

let test_count_matches_flat () =
  let a = random_boolmat 3 ~rows:53 ~cols:117 ~density:0.15 in
  let b = random_boolmat 4 ~rows:41 ~cols:117 ~density:0.15 in
  let tiled =
    Tile.count_product (cfg ())
      (Tile.Source.of_boolmat a) (Tile.Source.of_boolmat b)
  in
  Alcotest.(check bool) "tiled = flat" true
    (Intmat.equal tiled (Boolmat.count_product a b))

let test_tile_bits_sweep () =
  let a = random_boolmat 5 ~rows:97 ~cols:64 ~density:0.1 in
  let b = random_boolmat 6 ~rows:64 ~cols:129 ~density:0.1 in
  let expect = Boolmat.mul a b in
  List.iter
    (fun bits ->
      let got =
        Tile.mul
          (cfg ~tile_bits:bits ())
          (Tile.Source.of_boolmat a) (Tile.Source.of_boolmat b)
      in
      Alcotest.(check bool)
        (Printf.sprintf "tile_bits=%d" bits)
        true (Boolmat.equal got expect))
    [ 4; 5; 6; 7; 8 ]

(* Matrices smaller than one tile take the single-tile degenerate
   schedule; empty operands produce empty (all-zero / zero-dim) results. *)
let test_single_tile_and_empty () =
  let a = random_boolmat 7 ~rows:9 ~cols:11 ~density:0.3 in
  let b = random_boolmat 8 ~rows:11 ~cols:5 ~density:0.3 in
  let got =
    Tile.mul (cfg ~tile_bits:8 ())
      (Tile.Source.of_boolmat a) (Tile.Source.of_boolmat b)
  in
  Alcotest.(check bool) "single tile" true (Boolmat.equal got (Boolmat.mul a b));
  let z = Boolmat.create ~rows:6 ~cols:13 in
  let zb = Boolmat.create ~rows:13 ~cols:4 in
  let got =
    Tile.mul (cfg ()) (Tile.Source.of_boolmat z) (Tile.Source.of_boolmat zb)
  in
  Alcotest.(check int) "all-empty tiles" 0 (Boolmat.nnz got);
  let e = Boolmat.create ~rows:0 ~cols:0 in
  let got = Tile.mul (cfg ()) (Tile.Source.of_boolmat e) (Tile.Source.of_boolmat e) in
  Alcotest.(check int) "zero-dim" 0 (Boolmat.rows got)

let test_parallel_matches_sequential () =
  let a = random_boolmat 9 ~rows:80 ~cols:100 ~density:0.1 in
  let b = random_boolmat 10 ~rows:100 ~cols:77 ~density:0.1 in
  let sa = Tile.Source.of_boolmat a and sb = Tile.Source.of_boolmat b in
  Alcotest.(check bool) "mul domains=4 = domains=1" true
    (Boolmat.equal (Tile.mul ~domains:4 (cfg ()) sa sb)
       (Tile.mul ~domains:1 (cfg ()) sa sb));
  let c = random_boolmat 11 ~rows:60 ~cols:90 ~density:0.2 in
  let d = random_boolmat 12 ~rows:50 ~cols:90 ~density:0.2 in
  let sc = Tile.Source.of_boolmat c and sd = Tile.Source.of_boolmat d in
  Alcotest.(check bool) "count domains=4 = domains=1" true
    (Intmat.equal
       (Tile.count_product ~domains:4 (cfg ()) sc sd)
       (Tile.count_product ~domains:1 (cfg ()) sc sd))

let test_dim_mismatch () =
  let a = Boolmat.create ~rows:2 ~cols:3 and b = Boolmat.create ~rows:5 ~cols:4 in
  Alcotest.check_raises "mul"
    (Invalid_argument "Jp_tile.mul: dimension mismatch (2x3 . 5x4)") (fun () ->
      ignore
        (Tile.mul (cfg ()) (Tile.Source.of_boolmat a) (Tile.Source.of_boolmat b)));
  Alcotest.check_raises "count_product"
    (Invalid_argument "Jp_tile.count_product: inner dim mismatch (2x3 . (5x4)T)")
    (fun () ->
      ignore
        (Tile.count_product (cfg ())
           (Tile.Source.of_boolmat a) (Tile.Source.of_boolmat b)))

let tile_counters () =
  List.filter
    (fun (name, _) -> String.length name >= 5 && String.sub name 0 5 = "tile.")
    (Jp_obs.counter_values ())

let with_obs f =
  Jp_obs.reset ();
  Jp_obs.enable ();
  Fun.protect ~finally:(fun () -> Jp_obs.disable (); Jp_obs.reset ()) f

(* A budget far below the operands' total tile bytes forces eviction and
   rebuild mid-product; the result must not change, the resident peak
   must respect the cap, and — at domains = 1, where the fetch order is
   fixed — the whole build/hit/evict trace must be reproducible. *)
let test_eviction_determinism () =
  let a = random_boolmat 13 ~rows:128 ~cols:128 ~density:0.2 in
  let b = random_boolmat 14 ~rows:128 ~cols:128 ~density:0.2 in
  let sa = Tile.Source.of_boolmat a and sb = Tile.Source.of_boolmat b in
  let budget = 2048 in
  let expect = Boolmat.mul a b in
  let run () =
    with_obs (fun () ->
        let got = Tile.mul (cfg ~budget_bytes:budget ()) sa sb in
        Alcotest.(check bool) "capped = flat" true (Boolmat.equal got expect);
        tile_counters ())
  in
  let first = run () in
  let evicted = try List.assoc "tile.evict" first with Not_found -> 0 in
  let peak = try List.assoc "tile.peak_bytes" first with Not_found -> 0 in
  Alcotest.(check bool) "budget forces eviction" true (evicted > 0);
  Alcotest.(check bool)
    (Printf.sprintf "peak %d <= budget %d" peak budget)
    true (peak <= budget);
  Alcotest.(check (list (pair string int))) "trace reproducible" first (run ())

(* With no budget every operand tile is built exactly once and the
   store footprint drains back to zero at the end of the product. *)
let test_store_accounting () =
  let a = random_boolmat 15 ~rows:64 ~cols:48 ~density:0.2 in
  let b = random_boolmat 16 ~rows:48 ~cols:64 ~density:0.2 in
  let counters =
    with_obs (fun () ->
        ignore
          (Tile.mul (cfg ())
             (Tile.Source.of_boolmat a) (Tile.Source.of_boolmat b));
        tile_counters ())
  in
  let get k = try List.assoc k counters with Not_found -> 0 in
  (* 4x3 a-tiles + 3x4 b-tiles at 16-wide tiles. *)
  Alcotest.(check int) "builds" 24 (get "tile.build");
  Alcotest.(check int) "products" 16 (get "tile.product");
  Alcotest.(check int) "no evictions" 0 (get "tile.evict");
  Alcotest.(check bool) "hits" true (get "tile.store_hit" > 0);
  Alcotest.(check int) "footprint drained" 0 (get "tile.bytes");
  Alcotest.(check bool) "peak recorded" true (get "tile.peak_bytes" > 0)

let test_memo_per_tile () =
  let a = random_boolmat 17 ~rows:40 ~cols:40 ~density:0.2 in
  let b = random_boolmat 18 ~rows:40 ~cols:40 ~density:0.2 in
  let sa = Tile.Source.of_boolmat a and sb = Tile.Source.of_boolmat b in
  let served = Hashtbl.create 16 in
  let memo ~ti ~tj build =
    match Hashtbl.find_opt served (ti, tj) with
    | Some t -> t
    | None ->
      let t = build () in
      Hashtbl.add served (ti, tj) t;
      t
  in
  let first = Tile.mul ~memo (cfg ()) sa sb in
  (* 40/16 -> 3x3 output tiles, each consulted once. *)
  Alcotest.(check int) "one consult per tile" 9 (Hashtbl.length served);
  let again = Tile.mul ~memo (cfg ()) sa sb in
  Alcotest.(check bool) "memo-served = computed" true (Boolmat.equal first again);
  Alcotest.(check bool) "flat agrees" true (Boolmat.equal first (Boolmat.mul a b))

let test_checkpoint_and_cancel () =
  let a = random_boolmat 19 ~rows:64 ~cols:64 ~density:0.2 in
  let sa = Tile.Source.of_boolmat a in
  let ticks = ref 0 in
  ignore
    (Tile.mul ~checkpoint:(fun () -> Stdlib.incr ticks) (cfg ()) sa sa);
  Alcotest.(check int) "one checkpoint per output tile" 16 !ticks;
  let c = Cancel.create () in
  Cancel.cancel c;
  Alcotest.check_raises "cancelled" (Cancel.Cancelled Cancel.Requested)
    (fun () -> ignore (Tile.mul ~cancel:c (cfg ()) sa sa))

(* The cost-model gate: huge shapes or over-budget operands tile, small
   ones without a budget do not. *)
let test_should_tile_gate () =
  Alcotest.(check bool) "small untiled" false
    (Cost.should_tile Cost.Boolean ~u:100 ~v:100 ~w:100 ());
  Alcotest.(check bool) "huge tiled" true
    (Cost.should_tile Cost.Boolean ~u:100_000 ~v:100_000 ~w:100_000 ());
  Alcotest.(check bool) "over budget tiled" true
    (Cost.should_tile ~budget_bytes:1024 Cost.Count ~u:1000 ~v:1000 ~w:1000 ());
  Alcotest.(check bool) "under budget untiled" false
    (Cost.should_tile ~budget_bytes:(1 lsl 30) Cost.Count ~u:100 ~v:100 ~w:100 ())

let suite =
  [
    Alcotest.test_case "mul matches flat" `Quick test_mul_matches_flat;
    Alcotest.test_case "count matches flat" `Quick test_count_matches_flat;
    Alcotest.test_case "tile_bits sweep" `Quick test_tile_bits_sweep;
    Alcotest.test_case "single tile / empty" `Quick test_single_tile_and_empty;
    Alcotest.test_case "parallel = sequential" `Quick
      test_parallel_matches_sequential;
    Alcotest.test_case "dim mismatch" `Quick test_dim_mismatch;
    Alcotest.test_case "eviction determinism" `Quick test_eviction_determinism;
    Alcotest.test_case "store accounting" `Quick test_store_accounting;
    Alcotest.test_case "memo per tile" `Quick test_memo_per_tile;
    Alcotest.test_case "checkpoint and cancel" `Quick test_checkpoint_and_cancel;
    Alcotest.test_case "should_tile gate" `Quick test_should_tile_gate;
  ]
