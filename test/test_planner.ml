(* Unit + property tests for Jp_query.Planner: fragment eligibility,
   greedy claiming, cost-gate dispatch, rendering and plan-shape
   invariants over the seeded random-CQ generator. *)

module Cq = Jp_query.Cq
module Planner = Jp_query.Planner
module Engine = Jp_query.Engine
module Relation = Jp_relation.Relation
module Tuples = Jp_relation.Tuples

let parse_ok s =
  match Cq.parse s with Ok q -> q | Error e -> Alcotest.failf "parse failed: %s" e

let plan_ok ?machine ?policy ?catalog q =
  match Planner.plan ?machine ?policy ?catalog q with
  | Ok t -> t
  | Error e -> Alcotest.failf "plan failed: %s" e

let join_vars t = List.map (fun f -> f.Planner.join_var) (Planner.candidates t)

let catalog3 =
  lazy
    (List.map
       (fun (name, seed) ->
         (name, Gen.random_relation ~seed ~nx:6 ~ny:6 ~edges:14 ()))
       [ ("R", 11); ("S", 12); ("T", 13) ])

(* ------------------------------------------------------------------ *)
(* eligibility                                                         *)

let test_candidates_path () =
  (* Q(a, d) :- R(a, b), S(b, c), T(c, d): both interior variables are
     structurally carvable; under Never_mm they are reported but none is
     carved, so the plan is pure Yannakakis. *)
  let q = parse_ok "Q(a, d) :- R(a, b), S(b, c), T(c, d)" in
  let t = plan_ok ~policy:Planner.Never_mm q in
  Alcotest.(check (list string)) "candidates" [ "b"; "c" ] (join_vars t);
  Alcotest.(check int) "none carved" 0 (List.length (Planner.fragments t));
  Alcotest.(check string) "describe" "acyclic query via Yannakakis"
    (Planner.describe t)

let test_greedy_claiming () =
  (* Under Always_mm the first candidate (b) claims atoms 0 and 1; c then
     overlaps atom 1 and is dropped entirely. *)
  let q = parse_ok "Q(a, d) :- R(a, b), S(b, c), T(c, d)" in
  let t = plan_ok ~policy:Planner.Always_mm q in
  Alcotest.(check (list string)) "only b survives" [ "b" ] (join_vars t);
  (match Planner.fragments t with
  | [ f ] ->
    Alcotest.(check (list int)) "claims atoms 0,1" [ 0; 1 ]
      (List.map (fun p -> p.Planner.atom) f.Planner.parts);
    Alcotest.(check (list string)) "out vars" [ "a"; "c" ]
      (List.map (fun p -> p.Planner.out_var) f.Planner.parts);
    Alcotest.(check (list bool)) "orientation" [ false; true ]
      (List.map (fun p -> p.Planner.transposed) f.Planner.parts)
  | fs -> Alcotest.failf "expected 1 fragment, got %d" (List.length fs));
  Alcotest.(check string) "describe"
    "decomposed: 1 two-path MM fragment + 1 scan via Yannakakis"
    (Planner.describe t)

let test_head_var_blocks () =
  (* b is in the head: the existential is not local, so no candidate. *)
  let q = parse_ok "Q(a, b, c) :- R(a, b), S(b, c)" in
  let t = plan_ok ~policy:Planner.Always_mm q in
  Alcotest.(check (list string)) "no candidates" [] (join_vars t)

let test_constant_blocks () =
  (* An atom pinning b against a constant is not Var-Var: b is out. *)
  let q = parse_ok "Q(a, c) :- R(a, b), S(b, c), T(b, 3)" in
  let t = plan_ok ~policy:Planner.Always_mm q in
  Alcotest.(check (list string)) "constant occurrence blocks b" []
    (join_vars t)

let test_repeated_out_var_blocks () =
  (* Both occurrences of y have the same out variable x: the fragment
     projection would conflate the two roles, so y is not carvable
     (and x has the symmetric problem). *)
  let q = parse_ok "Q() :- R(x, y), S(x, y)" in
  let t = plan_ok ~policy:Planner.Always_mm q in
  Alcotest.(check (list string)) "parallel edge blocks both" []
    (join_vars t)

let test_self_loop_blocks () =
  (* R(y, y) binds y on both sides — not a 2-path/star part. *)
  let q = parse_ok "Q(a) :- R(a, y), S(y, y)" in
  let t = plan_ok ~policy:Planner.Always_mm q in
  Alcotest.(check (list string)) "self loop blocks y" [] (join_vars t)

let test_star_fragment () =
  (* k = 3 star around c, with mixed orientation. *)
  let q = parse_ok "Q(a, b, d) :- R(a, c), S(c, b), T(c, d)" in
  let t = plan_ok ~policy:Planner.Always_mm q in
  (match Planner.fragments t with
  | [ f ] ->
    Alcotest.(check string) "join var" "c" f.Planner.join_var;
    Alcotest.(check int) "k" 3 (List.length f.Planner.parts)
  | fs -> Alcotest.failf "expected 1 fragment, got %d" (List.length fs));
  Alcotest.(check string) "describe"
    "decomposed: 1 star MM fragment + 0 scans via Yannakakis"
    (Planner.describe t)

let test_cyclic_rejected () =
  let q = parse_ok "Q(a) :- R(a, b), S(b, c), T(c, a)" in
  match Planner.plan ~policy:Planner.Always_mm q with
  | Error e ->
    Alcotest.(check string) "cyclic error" "query is cyclic (GYO reduction failed)" e
  | Ok _ -> Alcotest.fail "expected cyclic rejection"

(* ------------------------------------------------------------------ *)
(* cost gate                                                           *)

(* A machine where matrix work is free and index inserts are ruinous:
   with skewed data whose join size clears the WCOJ short-circuit
   (join_size > 20 n), the optimizer picks the partitioned plan and the
   gate says mm.  The inverse machine keeps the gate off. *)
let mm_loving_machine =
  {
    Jp_matrix.Cost.ts = 1e-12;
    tm = 1e-12;
    ti = 1.0;
    count_word = 1e-12;
    bool_word = 1e-12;
    cores = 1;
  }

let mm_averse_machine =
  {
    Jp_matrix.Cost.ts = 1.0;
    tm = 1e-12;
    ti = 1e-12;
    count_word = 1.0;
    bool_word = 1.0;
    cores = 1;
  }

(* Full bipartite over a tiny y domain: join_size = ny * nx^2 clears the
   WCOJ short-circuit (> 20 * nx * ny edges) while |OUT| = nx^2 stays a
   factor ny below it — the regime where the partitioned MM plan wins. *)
let skewed_catalog =
  lazy
    (let dense ~nx ~ny =
       let flat = Array.make (2 * nx * ny) 0 in
       for x = 0 to nx - 1 do
         for y = 0 to ny - 1 do
           let i = (x * ny) + y in
           flat.(2 * i) <- x;
           flat.((2 * i) + 1) <- y
         done
       done;
       Relation.of_flat ~src_count:nx ~dst_count:ny flat
     in
     [ ("R", dense ~nx:40 ~ny:3); ("S", dense ~nx:40 ~ny:3) ])

let test_cost_gate_carves () =
  let q = parse_ok "Q(a, c) :- R(a, b), S(c, b)" in
  let catalog = Lazy.force skewed_catalog in
  let t = plan_ok ~machine:mm_loving_machine ~policy:Planner.Cost_gate ~catalog q in
  (match Planner.fragments t with
  | [ f ] -> (
    match f.Planner.gate with
    | Some g ->
      Alcotest.(check bool) "gate says mm" true g.Joinproj.Fragment.mm;
      Alcotest.(check bool) "mm cheaper than safe" true
        (g.Joinproj.Fragment.est_mm_s < g.Joinproj.Fragment.est_safe_s)
    | None -> Alcotest.fail "cost-gated fragment must carry a gate verdict")
  | fs -> Alcotest.failf "expected 1 carved fragment, got %d" (List.length fs));
  (* the carved plan and the foil agree on the answer *)
  let run policy =
    match Planner.run ~machine:mm_loving_machine ~policy catalog q with
    | Ok out -> Tuples.to_list out
    | Error e -> Alcotest.failf "run failed: %s" e
  in
  Alcotest.(check bool) "carved = foil" true
    (run Planner.Cost_gate = run Planner.Never_mm)

let test_cost_gate_declines () =
  (* Same query, machine with free inserts: WCOJ wins, nothing carved,
     but the candidate is still reported with its verdict. *)
  let q = parse_ok "Q(a, c) :- R(a, b), S(c, b)" in
  let catalog = Lazy.force skewed_catalog in
  let t = plan_ok ~machine:mm_averse_machine ~policy:Planner.Cost_gate ~catalog q in
  Alcotest.(check int) "nothing carved" 0 (List.length (Planner.fragments t));
  match Planner.candidates t with
  | [ f ] -> (
    match f.Planner.gate with
    | Some g -> Alcotest.(check bool) "gate says no" false g.Joinproj.Fragment.mm
    | None -> Alcotest.fail "candidate must carry a gate verdict under Cost_gate")
  | fs -> Alcotest.failf "expected 1 candidate, got %d" (List.length fs)

let test_forced_policies_skip_gate () =
  let q = parse_ok "Q(a, c) :- R(a, b), S(c, b)" in
  let catalog = Lazy.force skewed_catalog in
  List.iter
    (fun policy ->
      let t = plan_ok ~policy ~catalog q in
      List.iter
        (fun f ->
          match f.Planner.gate with
          | None -> ()
          | Some _ -> Alcotest.fail "forced policy must not pay for the gate")
        (Planner.candidates t))
    [ Planner.Always_mm; Planner.Never_mm ]

(* ------------------------------------------------------------------ *)
(* execution                                                           *)

let test_run_matches_brute () =
  let catalog = Lazy.force catalog3 in
  List.iter
    (fun text ->
      let q = parse_ok text in
      let expect = Gen.brute_cq catalog q in
      List.iter
        (fun policy ->
          match Planner.run ~policy catalog q with
          | Ok out ->
            Alcotest.(check (list (list int)))
              (text ^ " (planner)")
              expect (Tuples.to_list out)
          | Error e -> Alcotest.failf "%s: %s" text e)
        [ Planner.Cost_gate; Planner.Always_mm; Planner.Never_mm ])
    [
      "Q(a, d) :- R(a, b), S(b, c), T(c, d)";
      "Q(a, b, d) :- R(a, c), S(c, b), T(c, d)";
      "Q(a) :- R(a, b), S(c, b), T(c, d)";
      "Q(a, a) :- R(a, b), S(c, b)";
    ]

let test_boolean_matches_brute () =
  let catalog = Lazy.force catalog3 in
  List.iter
    (fun text ->
      let q = parse_ok text in
      let expect = Gen.brute_cq_boolean catalog q in
      List.iter
        (fun policy ->
          match Planner.boolean ~policy catalog q with
          | Ok b -> Alcotest.(check bool) text expect b
          | Error e -> Alcotest.failf "%s: %s" text e)
        [ Planner.Cost_gate; Planner.Always_mm; Planner.Never_mm ])
    [ "Q() :- R(a, b), S(c, b)"; "Q() :- R(a, b), S(b, c), T(c, d)" ]

let test_run_rejects_empty_head () =
  let catalog = Lazy.force catalog3 in
  let q = parse_ok "Q() :- R(a, b)" in
  match Planner.run catalog q with
  | Error e ->
    Alcotest.(check string) "empty head" "boolean query: use Yannakakis.boolean" e
  | Ok _ -> Alcotest.fail "expected empty-head rejection"

let test_unknown_relation () =
  let catalog = Lazy.force catalog3 in
  let q = parse_ok "Q(a) :- R(a, b), X(b, c)" in
  match Planner.run ~policy:Planner.Always_mm catalog q with
  | Error e -> Alcotest.(check string) "unknown" "unknown relation: X" e
  | Ok _ -> Alcotest.fail "expected unknown-relation error"

let test_explain_rendering () =
  let q = parse_ok "Q(a, d) :- R(a, b), S(b, c), T(c, d)" in
  let t = plan_ok ~policy:Planner.Always_mm q in
  Alcotest.(check string) "explain"
    (String.concat "\n"
       [
         "stitch Q(a, d) via Yannakakis over 2 bags";
         "  mm two-path on b: R(a, b) * S(b, c)";
         "  scan T(c, d)";
         "";
       ])
    (Planner.explain t);
  let t = plan_ok ~policy:Planner.Never_mm q in
  Alcotest.(check string) "explain foil"
    (String.concat "\n"
       [
         "stitch Q(a, d) via Yannakakis over 3 bags";
         "  scan R(a, b)";
         "  scan S(b, c)";
         "  scan T(c, d)";
         "";
       ])
    (Planner.explain t)

(* ------------------------------------------------------------------ *)
(* plan-shape property over the random-CQ generator                    *)

let prop_plan_shape =
  QCheck.Test.make ~name:"plan shape invariants on random acyclic CQs" ~count:200
    QCheck.small_int (fun seed ->
      let { Gen.query = q; _ } = Gen.random_cq ~seed () in
      match Planner.plan ~policy:Planner.Always_mm q with
      | Error e -> QCheck.Test.fail_reportf "generator produced cyclic query: %s" e
      | Ok t ->
        let body = Array.of_list q.Cq.body in
        let claimed = Hashtbl.create 8 in
        List.iter
          (fun f ->
            let parts = f.Planner.parts in
            (* >= 2 parts, join var projected away *)
            if List.length parts < 2 then
              QCheck.Test.fail_reportf "fragment with < 2 parts on %s"
                f.Planner.join_var;
            if List.mem f.Planner.join_var q.Cq.head then
              QCheck.Test.fail_reportf "head variable %s carved"
                f.Planner.join_var;
            (* out vars pairwise distinct, never the join var *)
            let outs = List.map (fun p -> p.Planner.out_var) parts in
            if
              List.length (List.sort_uniq String.compare outs)
              <> List.length outs
              || List.mem f.Planner.join_var outs
            then QCheck.Test.fail_reportf "bad out vars on %s" f.Planner.join_var;
            List.iter
              (fun p ->
                (* claimed atoms are disjoint across fragments *)
                if Hashtbl.mem claimed p.Planner.atom then
                  QCheck.Test.fail_reportf "atom %d claimed twice" p.Planner.atom;
                Hashtbl.add claimed p.Planner.atom ();
                (* each part really contains the join var exactly once,
                   opposite the recorded out var *)
                match body.(p.Planner.atom).Cq.args with
                | Cq.Var a, Cq.Var b ->
                  let jv = f.Planner.join_var in
                  if p.Planner.transposed then (
                    if not (a = jv && b = p.Planner.out_var) then
                      QCheck.Test.fail_reportf "bad transposed part %d"
                        p.Planner.atom)
                  else if not (b = jv && a = p.Planner.out_var) then
                    QCheck.Test.fail_reportf "bad part %d" p.Planner.atom
                | _ ->
                  QCheck.Test.fail_reportf "non Var-Var atom %d carved"
                    p.Planner.atom)
              parts)
          (Planner.fragments t);
        (* every atom appears exactly once across fragments + scans *)
        let scans =
          match Planner.root t with
          | Planner.Stitch { children; _ } ->
            List.filter_map
              (function Planner.Scan { atom; _ } -> Some atom | _ -> None)
              children
          | _ -> []
        in
        List.iter
          (fun a ->
            if Hashtbl.mem claimed a then
              QCheck.Test.fail_reportf "atom %d both scanned and carved" a)
          scans;
        Hashtbl.length claimed + List.length scans = Array.length body)

let suite =
  [
    Alcotest.test_case "path candidates" `Quick test_candidates_path;
    Alcotest.test_case "greedy claiming" `Quick test_greedy_claiming;
    Alcotest.test_case "head var blocks carving" `Quick test_head_var_blocks;
    Alcotest.test_case "constant blocks carving" `Quick test_constant_blocks;
    Alcotest.test_case "repeated out var blocks" `Quick test_repeated_out_var_blocks;
    Alcotest.test_case "self loop blocks" `Quick test_self_loop_blocks;
    Alcotest.test_case "star fragment" `Quick test_star_fragment;
    Alcotest.test_case "cyclic rejected" `Quick test_cyclic_rejected;
    Alcotest.test_case "cost gate carves" `Quick test_cost_gate_carves;
    Alcotest.test_case "cost gate declines" `Quick test_cost_gate_declines;
    Alcotest.test_case "forced policies skip gate" `Quick test_forced_policies_skip_gate;
    Alcotest.test_case "run matches brute force" `Quick test_run_matches_brute;
    Alcotest.test_case "boolean matches brute force" `Quick test_boolean_matches_brute;
    Alcotest.test_case "empty head rejected" `Quick test_run_rejects_empty_head;
    Alcotest.test_case "unknown relation" `Quick test_unknown_relation;
    Alcotest.test_case "explain rendering" `Quick test_explain_rendering;
    QCheck_alcotest.to_alcotest prop_plan_shape;
  ]
