module Dense = Jp_matrix.Dense
module Intmat = Jp_matrix.Intmat
module Boolmat = Jp_matrix.Boolmat
module Cost = Jp_matrix.Cost

let naive_int_mul a b =
  let ra, ca = Intmat.dims a and _rb, cb = Intmat.dims b in
  let c = Intmat.create ~rows:ra ~cols:cb in
  for i = 0 to ra - 1 do
    for j = 0 to cb - 1 do
      let s = ref 0 in
      for k = 0 to ca - 1 do
        s := !s + (Intmat.get a i k * Intmat.get b k j)
      done;
      Intmat.set c i j !s
    done
  done;
  c

let random_intmat seed ~rows ~cols ~density =
  let g = Jp_util.Rng.create seed in
  let m = Intmat.create ~rows ~cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if Jp_util.Rng.float g 1.0 < density then
        Intmat.set m i j (1 + Jp_util.Rng.int g 3)
    done
  done;
  m

let test_intmat_mul () =
  let a = random_intmat 1 ~rows:17 ~cols:23 ~density:0.3 in
  let b = random_intmat 2 ~rows:23 ~cols:11 ~density:0.4 in
  Alcotest.(check bool) "blocked = naive" true
    (Intmat.equal (Intmat.mul a b) (naive_int_mul a b))

let test_intmat_mul_large_block () =
  (* Exercise the k-blocking boundary (block size 64). *)
  let a = random_intmat 3 ~rows:5 ~cols:130 ~density:0.5 in
  let b = random_intmat 4 ~rows:130 ~cols:7 ~density:0.5 in
  Alcotest.(check bool) "crosses block boundary" true
    (Intmat.equal (Intmat.mul a b) (naive_int_mul a b))

let test_intmat_mul_parallel () =
  let a = random_intmat 5 ~rows:64 ~cols:64 ~density:0.3 in
  let b = random_intmat 6 ~rows:64 ~cols:64 ~density:0.3 in
  Alcotest.(check bool) "parallel = sequential" true
    (Intmat.equal (Intmat.mul ~domains:4 a b) (Intmat.mul a b))

let test_intmat_dim_mismatch () =
  let a = Intmat.create ~rows:2 ~cols:3 and b = Intmat.create ~rows:4 ~cols:2 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Intmat.mul: dimension mismatch (2x3 . 4x2)") (fun () ->
      ignore (Intmat.mul a b))

let bool_of_int m =
  let rows, cols = Intmat.dims m in
  let b = Boolmat.create ~rows ~cols in
  Intmat.iter_nonzero m (fun i j _ -> Boolmat.set b i j);
  b

let bool01 m =
  let rows, cols = Intmat.dims m in
  let c = Intmat.create ~rows ~cols in
  Intmat.iter_nonzero m (fun i j _ -> Intmat.set c i j 1);
  c

let test_boolmat_mul () =
  let a = random_intmat 7 ~rows:40 ~cols:90 ~density:0.15 in
  let b = random_intmat 8 ~rows:90 ~cols:70 ~density:0.15 in
  let expect = bool_of_int (naive_int_mul (bool01 a) (bool01 b)) in
  let got = Boolmat.mul (bool_of_int a) (bool_of_int b) in
  Alcotest.(check bool) "bool product = support of count product" true
    (Boolmat.equal got expect)

let test_boolmat_parallel () =
  let a = bool_of_int (random_intmat 9 ~rows:50 ~cols:50 ~density:0.2) in
  let b = bool_of_int (random_intmat 10 ~rows:50 ~cols:50 ~density:0.2) in
  Alcotest.(check bool) "parallel = sequential" true
    (Boolmat.equal (Boolmat.mul ~domains:3 a b) (Boolmat.mul a b))

let test_boolmat_adjacency () =
  let m = Boolmat.of_adjacency ~rows:3 ~cols:10 (fun i -> [| i; i + 3 |]) in
  Alcotest.(check int) "nnz" 6 (Boolmat.nnz m);
  Alcotest.(check bool) "mem" true (Boolmat.mem m 2 5);
  let collected = ref [] in
  Boolmat.iter_row m 1 (fun j -> collected := j :: !collected);
  Alcotest.(check (list int)) "row iter" [ 1; 4 ] (List.rev !collected)

let test_count_product () =
  (* C = A * B^T as AND+popcount must match the scalar product. *)
  let a = random_intmat 11 ~rows:30 ~cols:80 ~density:0.3 in
  let b = random_intmat 12 ~rows:25 ~cols:80 ~density:0.3 in
  let bt =
    let r, c = Intmat.dims b in
    let t = Intmat.create ~rows:c ~cols:r in
    Intmat.iter_nonzero b (fun i j _ -> Intmat.set t j i 1);
    t
  in
  let expect = naive_int_mul (bool01 a) bt in
  let got = Boolmat.count_product (bool_of_int a) (bool_of_int b) in
  let rows, cols = Intmat.dims expect in
  let ok = ref true in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if Intmat.get expect i j <> Intmat.get got i j then ok := false
    done
  done;
  Alcotest.(check bool) "count product = A * B^T" true !ok

let test_count_product_parallel () =
  let a = bool_of_int (random_intmat 13 ~rows:40 ~cols:60 ~density:0.25) in
  let b = bool_of_int (random_intmat 14 ~rows:35 ~cols:60 ~density:0.25) in
  Alcotest.(check bool) "parallel = sequential" true
    (Intmat.equal (Boolmat.count_product ~domains:4 a b) (Boolmat.count_product a b))

let test_count_product_mismatch () =
  let a = Boolmat.create ~rows:2 ~cols:3 and b = Boolmat.create ~rows:2 ~cols:4 in
  Alcotest.check_raises "inner dim"
    (Invalid_argument
       "Boolmat.count_product: inner dim mismatch (2x3 . (2x4)T)") (fun () ->
      ignore (Boolmat.count_product a b))

let test_boolmat_mul_mismatch () =
  let a = Boolmat.create ~rows:2 ~cols:3 and b = Boolmat.create ~rows:5 ~cols:4 in
  Alcotest.check_raises "dims in message"
    (Invalid_argument "Boolmat.mul: dimension mismatch (2x3 . 5x4)") (fun () ->
      ignore (Boolmat.mul a b))

let test_dense_mul () =
  let a = Dense.of_arrays [| [| 1.0; 2.0 |]; [| 0.0; 3.0 |] |] in
  let b = Dense.of_arrays [| [| 4.0; 0.0 |]; [| 1.0; 2.0 |] |] in
  let c = Dense.mul a b in
  Alcotest.(check (float 1e-9)) "c00" 6.0 (Dense.get c 0 0);
  Alcotest.(check (float 1e-9)) "c01" 4.0 (Dense.get c 0 1);
  Alcotest.(check (float 1e-9)) "c10" 3.0 (Dense.get c 1 0);
  Alcotest.(check (float 1e-9)) "c11" 6.0 (Dense.get c 1 1)

let test_lemma1 () =
  (* omega = 3: plain cubic. *)
  Alcotest.(check (float 1e-6)) "cubic" 8.0 (Cost.lemma1 ~u:2 ~v:2 ~w:2 ());
  (* omega = 2: u*v*w / beta. *)
  Alcotest.(check (float 1e-6)) "omega 2" 20.0
    (Cost.lemma1 ~omega:2.0 ~u:3 ~v:4 ~w:5 ());
  Alcotest.(check (float 1e-6)) "degenerate" 0.0 (Cost.lemma1 ~u:0 ~v:4 ~w:5 ())

let test_mhat_monotone () =
  let m =
    {
      Cost.ts = 1e-9;
      tm = 1e-8;
      ti = 5e-9;
      count_word = 4e-9;
      bool_word = 2e-9;
      cores = 4;
    }
  in
  let f u = Cost.mhat m Cost.Count ~u ~v:100 ~w:100 ~cores:1 in
  Alcotest.(check bool) "monotone in u" true (f 10 < f 100);
  let t1 = Cost.mhat m Cost.Count ~u:1000 ~v:1000 ~w:1000 ~cores:1 in
  let t4 = Cost.mhat m Cost.Count ~u:1000 ~v:1000 ~w:1000 ~cores:4 in
  Alcotest.(check bool) "more cores cheaper" true (t4 < t1);
  let tb = Cost.mhat m Cost.Boolean ~u:1000 ~v:1000 ~w:1000 ~cores:1 in
  Alcotest.(check bool) "boolean kernel cheaper" true (tb < t1)

let suite =
  [
    Alcotest.test_case "intmat mul" `Quick test_intmat_mul;
    Alcotest.test_case "intmat mul blocks" `Quick test_intmat_mul_large_block;
    Alcotest.test_case "intmat mul parallel" `Quick test_intmat_mul_parallel;
    Alcotest.test_case "intmat dim mismatch" `Quick test_intmat_dim_mismatch;
    Alcotest.test_case "boolmat mul" `Quick test_boolmat_mul;
    Alcotest.test_case "boolmat mul mismatch" `Quick test_boolmat_mul_mismatch;
    Alcotest.test_case "boolmat mul parallel" `Quick test_boolmat_parallel;
    Alcotest.test_case "boolmat adjacency" `Quick test_boolmat_adjacency;
    Alcotest.test_case "count product" `Quick test_count_product;
    Alcotest.test_case "count product parallel" `Quick test_count_product_parallel;
    Alcotest.test_case "count product mismatch" `Quick test_count_product_mismatch;
    Alcotest.test_case "dense mul" `Quick test_dense_mul;
    Alcotest.test_case "lemma1" `Quick test_lemma1;
    Alcotest.test_case "mhat monotone" `Quick test_mhat_monotone;
  ]
