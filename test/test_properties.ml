(* Cross-cutting property tests: deeper randomized checks on invariants
   that the per-module suites only probe with fixed cases. *)

module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Sorted = Jp_util.Sorted

let sorted_of_list l = Array.of_list (List.sort_uniq compare l)

let prop_intersect_many =
  QCheck.Test.make ~name:"intersect_many = folded pairwise intersection" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 5) (small_list (int_bound 30)))
    (fun lists ->
      let arrays = List.map sorted_of_list lists in
      let expect =
        match arrays with
        | [] -> [||]
        | first :: rest -> List.fold_left Sorted.intersect first rest
      in
      Sorted.intersect_many arrays = expect)

let prop_merge_union_many =
  QCheck.Test.make ~name:"merge_union_many = set union" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 5) (small_list (int_bound 30)))
    (fun lists ->
      let arrays = List.map sorted_of_list lists in
      let expect = sorted_of_list (List.concat lists) in
      Sorted.merge_union_many arrays = expect)

let prop_pairs_union =
  QCheck.Test.make ~name:"Pairs.union = set union of pair lists" ~count:200
    QCheck.(
      pair
        (small_list (pair (int_bound 8) (int_bound 8)))
        (small_list (pair (int_bound 8) (int_bound 8))))
    (fun (la, lb) ->
      let to_pairs l =
        let rows = Array.make 9 [] in
        List.iter (fun (x, z) -> rows.(x) <- z :: rows.(x)) l;
        Pairs.of_rows_unchecked
          (Array.map (fun zs -> sorted_of_list zs) rows)
      in
      let u = Pairs.union (to_pairs la) (to_pairs lb) in
      Pairs.to_list u = List.sort_uniq compare (la @ lb))

let prop_relation_semijoin =
  QCheck.Test.make ~name:"semijoin_dst = filter on y" ~count:150
    QCheck.(pair (small_list (pair (int_bound 10) (int_bound 10))) (int_bound 10))
    (fun (edges, pivot) ->
      let r = Relation.of_edges ~src_count:11 ~dst_count:11 (Array.of_list edges) in
      let keep y = y <= pivot in
      let filtered = Relation.semijoin_dst r keep in
      let expect =
        List.sort_uniq compare (List.filter (fun (_, y) -> keep y) edges)
      in
      Array.to_list (Relation.to_edges filtered) = expect)

let prop_relation_transpose_involution =
  QCheck.Test.make ~name:"transpose is an involution" ~count:150
    QCheck.(small_list (pair (int_bound 10) (int_bound 10)))
    (fun edges ->
      let r = Relation.of_edges ~src_count:11 ~dst_count:11 (Array.of_list edges) in
      Relation.equal r (Relation.transpose (Relation.transpose r)))

let prop_join_size_consistent =
  QCheck.Test.make ~name:"join_size_on_dst = |full join|" ~count:100
    QCheck.(
      pair
        (small_list (pair (int_bound 8) (int_bound 6)))
        (small_list (pair (int_bound 8) (int_bound 6))))
    (fun (le, ls) ->
      let r = Relation.of_edges ~src_count:9 ~dst_count:7 (Array.of_list le) in
      let s = Relation.of_edges ~src_count:9 ~dst_count:7 (Array.of_list ls) in
      let brute = ref 0 in
      Relation.iter
        (fun _ y -> brute := !brute + Relation.deg_dst s y)
        r;
      Relation.join_size_on_dst [ r; s ] = !brute)

let prop_mmjoin_counts_sum =
  QCheck.Test.make
    ~name:"counted project: total witnesses = full join size" ~count:80
    QCheck.(pair small_int (int_range 1 5))
    (fun (seed, d1) ->
      let r = Gen.random_relation ~seed:(seed + 6000) ~nx:12 ~ny:10 ~edges:50 () in
      let s = Gen.random_relation ~seed:(seed + 6500) ~nx:11 ~ny:10 ~edges:45 () in
      let plan =
        {
          Joinproj.Optimizer.decision = Joinproj.Optimizer.Partitioned { d1; d2 = 1 };
          est_out = 1;
          join_size = 1;
          est_seconds = 0.0;
        }
      in
      let counted = Joinproj.Two_path.project_counts ~plan ~r ~s () in
      Jp_relation.Counted_pairs.total_witnesses counted
      = Relation.join_size_on_dst [ r; s ])

let prop_boolean_vs_counted_support =
  QCheck.Test.make ~name:"boolean project = support of counted project" ~count:80
    QCheck.(triple small_int (int_range 1 4) (int_range 1 4))
    (fun (seed, d1, d2) ->
      let r = Gen.random_relation ~seed:(seed + 7000) ~nx:12 ~ny:10 ~edges:50 () in
      let s = Gen.random_relation ~seed:(seed + 7500) ~nx:11 ~ny:10 ~edges:45 () in
      let plan =
        {
          Joinproj.Optimizer.decision = Joinproj.Optimizer.Partitioned { d1; d2 };
          est_out = 1;
          join_size = 1;
          est_seconds = 0.0;
        }
      in
      let boolean = Joinproj.Two_path.project ~plan ~r ~s () in
      let counted = Joinproj.Two_path.project_counts ~plan ~r ~s () in
      Pairs.equal boolean (Jp_relation.Counted_pairs.to_pairs counted))

let prop_factorized_random =
  QCheck.Test.make ~name:"factorized view = explicit pairs" ~count:60
    QCheck.(triple small_int (int_range 1 4) (int_range 1 4))
    (fun (seed, d1, d2) ->
      let r = Gen.skewed_relation ~seed:(seed + 8000) ~nx:14 ~ny:12 ~edges:70 () in
      let s = Gen.skewed_relation ~seed:(seed + 8500) ~nx:13 ~ny:12 ~edges:65 () in
      let f = Joinproj.Factorized.build ~thresholds:(d1, d2) ~r ~s () in
      Pairs.equal (Jp_wcoj.Expand.project ~r ~s ()) (Joinproj.Factorized.to_pairs f))

let prop_scj_subset_of_ssj =
  QCheck.Test.make ~name:"SCJ pairs always have overlap = |contained set|" ~count:60
    QCheck.small_int
    (fun seed ->
      let r = Gen.random_relation ~seed:(seed + 9000) ~nx:12 ~ny:8 ~edges:40 () in
      let scj = Jp_scj.Mm_scj.join r in
      let ok = ref true in
      Pairs.iter
        (fun a b ->
          if Jp_ssj.Common.overlap r a b <> Relation.deg_src r a then ok := false)
        scj;
      !ok)

let prop_star_monotone_in_thresholds =
  QCheck.Test.make ~name:"star output independent of thresholds" ~count:30
    QCheck.(pair (int_range 1 4) (int_range 1 4))
    (fun (d1, d2) ->
      let rels =
        [|
          Gen.random_relation ~seed:123 ~nx:8 ~ny:8 ~edges:24 ();
          Gen.random_relation ~seed:124 ~nx:8 ~ny:8 ~edges:24 ();
          Gen.random_relation ~seed:125 ~nx:8 ~ny:8 ~edges:24 ();
        |]
      in
      let reference = Joinproj.Star.project ~thresholds:(1, 1) rels in
      Jp_relation.Tuples.equal reference
        (Joinproj.Star.project ~thresholds:(d1, d2) rels))

let prop_bsi_units_bounded =
  QCheck.Test.make ~name:"BSI simulation accounting invariants" ~count:20
    QCheck.(int_range 1 40)
    (fun batch_size ->
      let r = Gen.random_relation ~seed:321 ~nx:15 ~ny:12 ~edges:60 () in
      let queries = Jp_workload.Generate.batch_queries ~seed:5 ~count:80 ~nx:15 ~nz:15 () in
      let stats =
        Jp_bsi.Bsi.simulate ~r ~s:r ~queries ~rate:10_000.0 ~batch_size ()
      in
      stats.Jp_bsi.Bsi.batches = (80 + batch_size - 1) / batch_size
      && stats.Jp_bsi.Bsi.avg_delay >= 0.0
      && stats.Jp_bsi.Bsi.max_delay >= stats.Jp_bsi.Bsi.avg_delay
      && stats.Jp_bsi.Bsi.units_needed >= 0.0)

let prop_theoretical_thresholds_bounded =
  QCheck.Test.make ~name:"theoretical thresholds stay within [1, N]" ~count:200
    QCheck.(pair (int_range 1 1_000_000) (int_range 1 1_000_000_000))
    (fun (n, out) ->
      let d1, d2 = Joinproj.Optimizer.theoretical_thresholds ~n ~out in
      1 <= d1 && d1 <= n && 1 <= d2 && d2 <= n)

let prop_theoretical_d2_antitone =
  (* Both |OUT| regimes give a d2 that decreases in |OUT| (Case 1:
     N/|OUT|^2/3, Case 2: (2N^2/(N+|OUT|))^1/3, continuous at the
     boundary); integer rounding can perturb by at most one. *)
  QCheck.Test.make ~name:"theoretical d2 antitone in |OUT|" ~count:200
    QCheck.(
      triple (int_range 1 100_000) (int_range 1 10_000_000)
        (int_range 1 10_000_000))
    (fun (n, o1, o2) ->
      let lo = min o1 o2 and hi = max o1 o2 in
      let _, d2_lo = Joinproj.Optimizer.theoretical_thresholds ~n ~out:lo in
      let _, d2_hi = Joinproj.Optimizer.theoretical_thresholds ~n ~out:hi in
      d2_hi <= d2_lo + 1)

let prop_plan_deterministic =
  QCheck.Test.make
    ~name:"plan deterministic, cost non-negative, prepared path agrees"
    ~count:40 QCheck.small_int
    (fun seed ->
      let module Optimizer = Joinproj.Optimizer in
      let r = Gen.random_relation ~seed:(seed + 12_000) ~nx:20 ~ny:15 ~edges:120 () in
      let s = Gen.skewed_relation ~seed:(seed + 12_500) ~nx:18 ~ny:15 ~edges:110 () in
      let p1 = Optimizer.plan ~r ~s () in
      let p2 = Optimizer.plan ~r ~s () in
      let prep = Optimizer.prepare ~r ~s in
      let p3 = Optimizer.plan_prepared prep () in
      let c1 = Optimizer.estimate_cost ~r ~s p1.Optimizer.decision in
      let c2 = Optimizer.estimate_cost_prepared prep p1.Optimizer.decision in
      p1 = p2 && p1 = p3
      && p1.Optimizer.est_seconds >= 0.0
      && c1 >= 0.0 && c1 = c2
      && Optimizer.plan_counts ~r ~s () = Optimizer.plan_counts_prepared prep ())

let prop_guard_replan_checksum =
  (* Whatever the injected misestimation makes the guard do mid-query
     (re-plan Wcoj <-> Partitioned, degrade under a zero budget), the
     produced pairs must equal the unguarded engine's. *)
  QCheck.Test.make ~name:"guard re-planning never changes the result" ~count:40
    QCheck.(pair small_int (oneofl [ 0.01; 1.0; 100.0 ]))
    (fun (seed, factor) ->
      let module Guard = Jp_adaptive.Guard in
      let r = Gen.skewed_relation ~seed:(seed + 13_000) ~nx:40 ~ny:20 ~edges:300 () in
      let s = Gen.skewed_relation ~seed:(seed + 13_500) ~nx:35 ~ny:20 ~edges:280 () in
      let reference = Joinproj.Two_path.project ~r ~s () in
      let injected =
        Guard.with_inject (Jp_adaptive.Inject.out_only factor) Guard.default
      in
      let budgeted = Guard.with_budget_ms 0.0 Guard.default in
      Pairs.equal reference (Joinproj.Two_path.project ~guard:injected ~r ~s ())
      && Pairs.equal reference (Joinproj.Two_path.project ~guard:budgeted ~r ~s ()))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_intersect_many;
    QCheck_alcotest.to_alcotest prop_merge_union_many;
    QCheck_alcotest.to_alcotest prop_pairs_union;
    QCheck_alcotest.to_alcotest prop_relation_semijoin;
    QCheck_alcotest.to_alcotest prop_relation_transpose_involution;
    QCheck_alcotest.to_alcotest prop_join_size_consistent;
    QCheck_alcotest.to_alcotest prop_mmjoin_counts_sum;
    QCheck_alcotest.to_alcotest prop_boolean_vs_counted_support;
    QCheck_alcotest.to_alcotest prop_factorized_random;
    QCheck_alcotest.to_alcotest prop_scj_subset_of_ssj;
    QCheck_alcotest.to_alcotest prop_star_monotone_in_thresholds;
    QCheck_alcotest.to_alcotest prop_bsi_units_bounded;
    QCheck_alcotest.to_alcotest prop_theoretical_thresholds_bounded;
    QCheck_alcotest.to_alcotest prop_theoretical_d2_antitone;
    QCheck_alcotest.to_alcotest prop_plan_deterministic;
    QCheck_alcotest.to_alcotest prop_guard_replan_checksum;
  ]
