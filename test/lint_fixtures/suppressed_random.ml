(* suppression fixture: the random finding carries a justification and
   must not block *)
let roll () =
  (Random.int 6 [@jp.lint.allow "random" "fixture: demonstrates suppression"])
