(* positive fixture: poly-compare — polymorphic Stdlib.compare in lib code *)
let sort_pairs (a : (int * int) array) = Array.sort compare a
