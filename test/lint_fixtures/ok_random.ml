(* negative fixture: random — seeded Jp_util.Rng is the sanctioned source *)
let roll rng = Jp_util.Rng.int rng 6
