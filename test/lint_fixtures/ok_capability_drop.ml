(* capability-drop negatives: forwarding, an explicit [?cancel:None]
   (deliberate, not silent) and a partial application that never
   reaches the capability parameter. *)
let callee ?cancel ~n () =
  ignore cancel;
  n + 1

let forwards ?cancel ~n () = callee ?cancel ~n ()

let deliberate ?cancel ~n () =
  ignore cancel;
  callee ?cancel:None ~n ()

let partial ?cancel ~n () =
  ignore cancel;
  let k = callee ~n in
  k ()
