(* positive fixture: hot-poll — cancellation polled per tuple (depth 2) *)
let scan cancel (rows : int array array) =
  Array.iter
    (fun row ->
      Array.iter
        (fun x ->
          if Jp_util.Cancel.is_cancelled cancel then ignore x)
        row)
    rows
