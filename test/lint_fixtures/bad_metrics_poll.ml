(* positive fixture: hot-poll — metric recordings per tuple (depth 2):
   a histogram observation and a gauge bump inside the inner loop *)
let hist = Jp_metrics.histogram "fixture.bad_metrics_seconds"

let depth = Jp_metrics.gauge "fixture.bad_metrics_depth"

let scan (rows : float array array) =
  Array.iter
    (fun row ->
      Array.iter
        (fun v ->
          Jp_metrics.observe hist v;
          Jp_metrics.add_gauge depth 1)
        row)
    rows
