(* negative fixture: hot-poll — polling once per chunk (depth 1) is the
   sanctioned granularity *)
let scan cancel (rows : int array array) =
  Array.iter
    (fun row ->
      if not (Jp_util.Cancel.is_cancelled cancel) then
        ignore (Array.length row))
    rows
