(* negative fixture: hot-poll — the sanctioned metrics pattern: observe
   into a domain-local accumulator inside the loops, publish one bulk
   merge (and take one snapshot) at the phase boundary *)
let hist = Jp_metrics.histogram "fixture.ok_metrics_seconds"

let scan (rows : float array array) =
  let acc = Jp_metrics.Local.create hist in
  Array.iter
    (fun row -> Array.iter (fun v -> Jp_metrics.Local.observe acc v) row)
    rows;
  Jp_metrics.Local.publish acc;
  Jp_metrics.snapshot ()
