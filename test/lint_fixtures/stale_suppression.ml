(* stale-suppression fixture: the first allow names a rule this
   expression does not violate, so it suppresses nothing; the second is
   live (it really covers a random finding) and must not be flagged. *)
let fine = (42 [@jp.lint.allow "random" "was a Random.int call once"])

let noisy () =
  (Random.int 10 [@jp.lint.allow "random" "fixture: a live suppression"])
