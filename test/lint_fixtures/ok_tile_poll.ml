(* negative fixture: hot-poll — the tile-kernel cadence: poll and bump
   once per tile, accumulate the word work locally and publish one bulk
   delta at the tile boundary *)
let tile_kernel cancel (tiles : int array array) =
  Array.iter
    (fun tile ->
      if not (Jp_util.Cancel.is_cancelled cancel) then begin
        let words = ref 0 in
        Array.iter (fun w -> words := !words + w) tile;
        Jp_obs.add Jp_obs.C.mm_bool_word_ops !words
      end)
    tiles
