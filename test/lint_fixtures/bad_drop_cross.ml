(* cross-file capability-drop: the callee lives in a sibling fixture
   module, so the finding only appears when both files are linted into
   one call graph. *)
let caller ?cancel ~n () =
  ignore cancel;
  Bad_capability_drop.callee ~n ()
