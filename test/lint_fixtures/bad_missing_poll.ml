(* missing-poll fixture: both functions accept a capability and loop,
   but neither body nor any reachable callee ever polls it — the hook
   is dead weight and a stress run can hang in the loop. *)
let spin ?cancel ~n () =
  ignore cancel;
  let s = ref 0 in
  for i = 0 to n - 1 do
    s := !s + i
  done;
  !s

let spin_guarded ?guard ~n () =
  ignore guard;
  let s = ref 0 in
  for i = 0 to n - 1 do
    s := !s + i
  done;
  !s
