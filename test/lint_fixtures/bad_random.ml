(* positive fixture: random — Stdlib.Random outside Jp_util.Rng *)
let roll () = Random.int 6
