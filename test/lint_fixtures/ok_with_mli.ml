(* negative fixture: missing-mli — this module has an interface *)
let answer = 42
