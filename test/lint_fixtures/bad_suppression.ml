(* meta fixture: a justification-free allow is itself a finding, and the
   underlying violation still blocks *)
let roll () = (Random.int 6 [@jp.lint.allow "random"])
