(* positive fixture: adj-mutation — writing through a shared adjacency *)
module Relation = Jp_relation.Relation

let clobber r =
  let adj = Relation.adj_src r 0 in
  adj.(0) <- 42
