(* negative fixture: adj-mutation — copy first, then mutate freely *)
module Relation = Jp_relation.Relation

let copy_then_patch r =
  let adj = Array.copy (Relation.adj_src r 0) in
  adj.(0) <- 42;
  adj
