(** Negative fixture for the missing-mli rule. *)

val answer : int
