(* negative fixture: poly-compare — monomorphic comparator is fine *)
let sort_ints (a : int array) = Array.sort Int.compare a
