(* positive fixture: no-open — structure-level and local opens *)
open List

let total xs = fold_left ( + ) 0 xs

let heads xs =
  let open Option in
  filter_map (fun l -> match l with [] -> none | x :: _ -> some x) xs
