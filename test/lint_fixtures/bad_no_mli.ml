(* positive fixture: missing-mli — no interface next to this module *)
let answer = 42
