(* positive fixture: domain-unsafe-global — bare mutable at top level *)
let table : (int, int) Hashtbl.t = Hashtbl.create 16

let slots = Array.make 8 0
