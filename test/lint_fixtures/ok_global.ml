(* negative fixture: domain-unsafe-global — Atomic state and an annotated
   table are both accepted *)
let counter = Atomic.make 0

let lock = Mutex.create ()

let cache : (int, int) Hashtbl.t =
  Hashtbl.create 16 [@@jp.domain_safe "fixture: every access holds lock"]
