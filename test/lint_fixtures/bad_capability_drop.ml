(* capability-drop fixture: [caller] accepts ?cancel and calls [callee]
   — which also accepts it — without forwarding, so the compiler fills
   the hole with a ghost None and the token never reaches the leaf. *)
let callee ?cancel ~n () =
  ignore cancel;
  n + 1

let caller ?cancel ~n () =
  ignore cancel;
  callee ~n ()
