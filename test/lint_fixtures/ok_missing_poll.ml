(* missing-poll negatives: [direct] polls in its own loop body; [outer]
   loops but the poll lives in a callee — interprocedural reachability
   must follow the call edge and stay silent. *)
let direct ?cancel ~n () =
  let s = ref 0 in
  let i = ref 0 in
  while !i < n do
    (match cancel with Some c -> Jp_util.Cancel.check c | None -> ());
    s := !s + !i;
    incr i
  done;
  !s

let poll_step ?cancel x =
  (match cancel with Some c -> Jp_util.Cancel.check c | None -> ());
  x + 1

let outer ?cancel ~n () =
  let s = ref 0 in
  for i = 0 to n - 1 do
    s := !s + poll_step ?cancel i
  done;
  !s
