(* positive fixture: hot-poll — per-word obs/cancel traffic inside a
   tile kernel (depth 2: inner-block loop x word loop) *)
let tile_kernel cancel (blocks : int array array) =
  for k = 0 to Array.length blocks - 1 do
    Array.iter
      (fun w ->
        Jp_obs.incr Jp_obs.C.tile_products;
        if Jp_util.Cancel.is_cancelled cancel then ignore w)
      blocks.(k)
  done
