(* suppressed interprocedural finding: the drop is real but justified,
   so it must surface as suppressed (never blocking) and its allow must
   count as used — not stale. *)
let callee ?cancel ~n () =
  ignore cancel;
  n + 1

let caller ?cancel ~n () =
  ignore cancel;
  (callee ~n () [@jp.lint.allow "capability-drop" "callee ignores the token today"])
