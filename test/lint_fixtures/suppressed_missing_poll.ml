(* binding-level suppression of an interprocedural rule: the allow
   rides on the [let] and covers the whole function. *)
let spin ?cancel ~n () =
  ignore cancel;
  let s = ref 0 in
  for i = 0 to n - 1 do
    s := !s + i
  done;
  !s
[@@jp.lint.allow "missing-poll" "fixture: driver polls between chunks"]
