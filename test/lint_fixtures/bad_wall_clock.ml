(* wall-clock fixture: raw clock reads in (what the tests present as)
   library code — seeded runs must not depend on wall time. *)
let elapsed f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let cpu_seconds () = Sys.time ()
