(* wall-clock negative: all timing flows through the sanctioned
   [Jp_util.Timer] wrapper. *)
let elapsed f =
  let t0 = Jp_util.Timer.now () in
  let x = f () in
  (x, Jp_util.Timer.now () -. t0)
