(* positive fixture: hashtbl-dedup — Hashtbl dedup inside an engine loop *)
let dedup (xs : int array) =
  let seen : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let out = ref [] in
  Array.iter
    (fun x ->
      if not (Hashtbl.mem seen x) then begin
        Hashtbl.add seen x ();
        out := x :: !out
      end)
    xs;
  List.rev !out
