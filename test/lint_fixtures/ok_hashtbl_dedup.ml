(* negative fixture: hashtbl-dedup — Hashtbl use outside any loop *)
let remember (tbl : (int, unit) Hashtbl.t) k = Hashtbl.replace tbl k ()
