(* negative fixture: no-open — file-top module aliases are the idiom *)
module L = List

let total xs = L.fold_left ( + ) 0 xs
