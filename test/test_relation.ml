module Relation = Jp_relation.Relation
module Stats = Jp_relation.Stats
module Pairs = Jp_relation.Pairs
module Counted_pairs = Jp_relation.Counted_pairs
module Tuples = Jp_relation.Tuples

let test_build_dedup () =
  let r = Relation.of_edges [| (0, 1); (0, 1); (2, 0); (0, 2); (2, 0) |] in
  Alcotest.(check int) "size dedups" 3 (Relation.size r);
  Alcotest.(check (list int)) "adj_src sorted" [ 1; 2 ]
    (Array.to_list (Relation.adj_src r 0));
  Alcotest.(check (list int)) "adj_dst sorted" [ 2 ]
    (Array.to_list (Relation.adj_dst r 0));
  Alcotest.(check int) "deg_dst" 1 (Relation.deg_dst r 1);
  Alcotest.(check bool) "mem" true (Relation.mem r 2 0);
  Alcotest.(check bool) "not mem" false (Relation.mem r 1 0)

let test_of_sets_roundtrip () =
  let sets = [| [| 3; 1; 3 |]; [||]; [| 0 |] |] in
  let r = Relation.of_sets sets in
  Alcotest.(check int) "size" 3 (Relation.size r);
  Alcotest.(check (list int)) "set 0" [ 1; 3 ] (Array.to_list (Relation.adj_src r 0));
  Alcotest.(check int) "empty set" 0 (Relation.deg_src r 1)

let test_transpose () =
  let r = Relation.of_edges [| (0, 5); (1, 5); (1, 2) |] in
  let t = Relation.transpose r in
  Alcotest.(check int) "src<->dst" (Relation.src_count r) (Relation.dst_count t);
  Alcotest.(check (list int)) "adj swapped" [ 0; 1 ] (Array.to_list (Relation.adj_src t 5));
  Alcotest.(check bool) "double transpose" true (Relation.equal r (Relation.transpose t))

let test_filters () =
  let r = Relation.of_edges [| (0, 0); (0, 1); (1, 0); (1, 1); (2, 2) |] in
  let f = Relation.filter r (fun x y -> x <> y) in
  Alcotest.(check int) "filter" 2 (Relation.size f);
  let rs = Relation.restrict_src r (fun x -> x = 1) in
  Alcotest.(check int) "restrict_src" 2 (Relation.size rs);
  let sj = Relation.semijoin_dst r (fun y -> y = 0) in
  Alcotest.(check int) "semijoin_dst" 2 (Relation.size sj);
  Alcotest.(check (list int)) "semijoin adj" [ 0 ] (Array.to_list (Relation.adj_src sj 0))

let test_join_size_active () =
  let r = Relation.of_edges [| (0, 0); (1, 0); (2, 1) |] in
  let s = Relation.of_edges [| (0, 0); (1, 1); (2, 1) |] in
  (* y=0: 2*1, y=1: 1*2 *)
  Alcotest.(check int) "join size" 4 (Relation.join_size_on_dst [ r; s ]);
  let act = Relation.active_dst [ r; s ] in
  Alcotest.(check (list bool)) "active" [ true; true ] (Array.to_list act)

let test_of_flat_errors () =
  Alcotest.check_raises "odd" (Invalid_argument "Relation.of_flat: odd length")
    (fun () -> ignore (Relation.of_flat [| 1 |]));
  Alcotest.check_raises "negative" (Invalid_argument "Relation.of_flat: negative id")
    (fun () -> ignore (Relation.of_flat [| 0; -1 |]))

let prop_roundtrip =
  QCheck.Test.make ~name:"of_edges/to_edges roundtrip (sorted dedup)" ~count:200
    QCheck.(small_list (pair (int_bound 20) (int_bound 20)))
    (fun edges ->
      let r = Relation.of_edges (Array.of_list edges) in
      let expect = List.sort_uniq compare edges in
      Array.to_list (Relation.to_edges r) = expect
      && Relation.size r = List.length expect)

let prop_degrees_consistent =
  QCheck.Test.make ~name:"degree arrays consistent with adjacency" ~count:100
    QCheck.(small_list (pair (int_bound 15) (int_bound 15)))
    (fun edges ->
      let r = Relation.of_edges ~src_count:16 ~dst_count:16 (Array.of_list edges) in
      let ds = Relation.degrees_src r and dd = Relation.degrees_dst r in
      Array.for_all (fun x -> x >= 0) ds
      && Array.fold_left ( + ) 0 ds = Relation.size r
      && Array.fold_left ( + ) 0 dd = Relation.size r
      && Array.to_list ds
         = List.init 16 (fun a -> Array.length (Relation.adj_src r a)))

let test_fingerprint () =
  let edges = [| (0, 1); (2, 0); (0, 2) |] in
  let r1 = Relation.of_edges edges in
  let r2 = Relation.of_edges [| (0, 2); (0, 1); (2, 0); (2, 0) |] in
  Alcotest.(check bool) "structurally equal relations share a fp" true
    (Relation.fingerprint r1 = Relation.fingerprint r2);
  Alcotest.(check int) "memoized (second call identical)"
    (Relation.fingerprint r1) (Relation.fingerprint r1);
  let r3 = Relation.of_edges [| (0, 1); (2, 0) |] in
  Alcotest.(check bool) "different content differs" true
    (Relation.fingerprint r1 <> Relation.fingerprint r3);
  let t = Relation.transpose r1 in
  Alcotest.(check bool) "transpose differs" true
    (Relation.fingerprint r1 <> Relation.fingerprint t);
  (* padding dimensions changes the fingerprint: the derived artifacts
     (matrix shapes, partitions) depend on the declared universe *)
  let padded = Relation.of_edges ~src_count:10 ~dst_count:10 edges in
  Alcotest.(check bool) "dimensions are part of the identity" true
    (Relation.fingerprint r1 <> Relation.fingerprint padded);
  Alcotest.(check bool) "never the unset sentinel" true
    (Relation.fingerprint r1 <> 0)

let prop_fingerprint_respects_equality =
  QCheck.Test.make ~name:"equal relations fingerprint equally" ~count:300
    QCheck.(
      pair
        (small_list (pair (int_bound 5) (int_bound 5)))
        (small_list (pair (int_bound 5) (int_bound 5))))
    (fun (p1, p2) ->
      let build p = Relation.of_edges ~src_count:6 ~dst_count:6 (Array.of_list p) in
      let r1 = build p1 and r2 = build p2 in
      (not (Relation.equal r1 r2))
      || Relation.fingerprint r1 = Relation.fingerprint r2)

let test_stats () =
  (* degrees: value 0 -> 3, value 1 -> 1, value 2 -> 0, value 3 -> 1 *)
  let s = Stats.of_degrees [| 3; 1; 0; 1 |] in
  Alcotest.(check int) "active" 3 (Stats.active_count s);
  Alcotest.(check int) "max" 3 (Stats.max_degree s);
  Alcotest.(check int) "count_le 1" 2 (Stats.count_le s 1);
  Alcotest.(check int) "count_le 0" 0 (Stats.count_le s 0);
  Alcotest.(check int) "count_gt 1" 1 (Stats.count_gt s 1);
  Alcotest.(check int) "sum_le 1" 2 (Stats.sum_le s 1);
  Alcotest.(check int) "sum_le 3" 5 (Stats.sum_le s 3);
  Alcotest.(check int) "sum_sq_le 3" 11 (Stats.sum_sq_le s 3);
  Alcotest.(check int) "nth" 1 (Stats.nth_smallest_degree s 0)

let test_stats_weights () =
  let s = Stats.of_degrees ~weights:[| 10; 20; 30; 40 |] [| 2; 1; 0; 5 |] in
  Alcotest.(check int) "weight_le 1" 20 (Stats.weight_le s 1);
  Alcotest.(check int) "weight_le 2" 30 (Stats.weight_le s 2);
  Alcotest.(check int) "weight_le 5" 70 (Stats.weight_le s 5);
  Alcotest.(check (list int)) "values_le" [ 1; 0 ] (Array.to_list (Stats.values_le s 2))

let prop_stats_model =
  QCheck.Test.make ~name:"stats agree with direct scans" ~count:200
    QCheck.(pair (small_list (int_bound 10)) (int_bound 12))
    (fun (degs, d) ->
      let deg = Array.of_list degs in
      let s = Stats.of_degrees deg in
      let active = List.filter (fun x -> x > 0) degs in
      let le = List.filter (fun x -> x <= d) active in
      Stats.count_le s d = List.length le
      && Stats.sum_le s d = List.fold_left ( + ) 0 le
      && Stats.sum_sq_le s d = List.fold_left (fun a x -> a + (x * x)) 0 le
      && Stats.count_gt s d = List.length active - List.length le)

let test_pairs () =
  let p = Pairs.of_rows [| [| 1; 3 |]; [||]; [| 0 |] |] in
  Alcotest.(check int) "count" 3 (Pairs.count p);
  Alcotest.(check bool) "mem" true (Pairs.mem p 0 3);
  Alcotest.(check bool) "not mem" false (Pairs.mem p 1 1);
  Alcotest.(check (list (pair int int))) "to_list" [ (0, 1); (0, 3); (2, 0) ]
    (Pairs.to_list p);
  let q = Pairs.of_rows [| [| 2 |]; [| 5 |] |] in
  let u = Pairs.union p q in
  Alcotest.(check int) "union count" 5 (Pairs.count u);
  Alcotest.check_raises "unsorted rejected"
    (Invalid_argument "Pairs.of_rows: row not strictly increasing") (fun () ->
      ignore (Pairs.of_rows [| [| 2; 1 |] |]))

let test_counted_pairs () =
  let c = Counted_pairs.of_rows [| ([| 1; 4 |], [| 2; 1 |]); ([| 0 |], [| 5 |]) |] in
  Alcotest.(check int) "count" 3 (Counted_pairs.count c);
  Alcotest.(check int) "witnesses" 8 (Counted_pairs.total_witnesses c);
  Alcotest.(check int) "get" 2 (Counted_pairs.get c 0 1);
  Alcotest.(check int) "get absent" 0 (Counted_pairs.get c 0 2);
  let f = Counted_pairs.filter_ge c 2 in
  Alcotest.(check int) "filter_ge" 2 (Counted_pairs.count f);
  let ordered = Counted_pairs.sorted_desc c in
  Alcotest.(check (list (triple int int int))) "sorted desc"
    [ (1, 0, 5); (0, 1, 2); (0, 4, 1) ]
    (Array.to_list ordered);
  Alcotest.(check (list (pair int int))) "to_pairs" [ (0, 1); (0, 4); (1, 0) ]
    (Jp_relation.Pairs.to_list (Counted_pairs.to_pairs c))

let test_tuples_packed () =
  Alcotest.(check bool) "packable" true (Tuples.packable ~dims:[| 100; 100; 100 |]);
  let b = Tuples.create_builder ~arity:3 ~dims:[| 100; 100; 100 |] in
  Tuples.add b [| 1; 2; 3 |];
  Tuples.add b [| 1; 2; 3 |];
  Tuples.add b [| 99; 0; 50 |];
  let t = Tuples.build b in
  Alcotest.(check int) "count" 2 (Tuples.count t);
  Alcotest.(check bool) "mem" true (Tuples.mem t [| 1; 2; 3 |]);
  Alcotest.(check bool) "not mem" false (Tuples.mem t [| 1; 2; 4 |]);
  Alcotest.(check (list (list int))) "to_list"
    [ [ 1; 2; 3 ]; [ 99; 0; 50 ] ]
    (Tuples.to_list t)

let test_tuples_hashed () =
  let huge = 1 lsl 40 in
  Alcotest.(check bool) "not packable" false (Tuples.packable ~dims:[| huge; huge |]);
  let b = Tuples.create_builder ~arity:2 ~dims:[| huge; huge |] in
  Tuples.add b [| 12345678901; 1 |];
  Tuples.add b [| 12345678901; 1 |];
  Tuples.add b [| 2; 2 |];
  let t = Tuples.build b in
  Alcotest.(check int) "count" 2 (Tuples.count t);
  Alcotest.(check bool) "mem" true (Tuples.mem t [| 2; 2 |])

let prop_tuples_dedup =
  QCheck.Test.make ~name:"tuples dedup like a set" ~count:200
    QCheck.(small_list (pair (int_bound 7) (int_bound 7)))
    (fun pairs ->
      let b = Tuples.create_builder ~arity:2 ~dims:[| 8; 8 |] in
      List.iter (fun (x, y) -> Tuples.add b [| x; y |]) pairs;
      let t = Tuples.build b in
      Tuples.count t = List.length (List.sort_uniq compare pairs))

let suite =
  [
    Alcotest.test_case "build dedup" `Quick test_build_dedup;
    Alcotest.test_case "of_sets" `Quick test_of_sets_roundtrip;
    Alcotest.test_case "transpose" `Quick test_transpose;
    Alcotest.test_case "filters" `Quick test_filters;
    Alcotest.test_case "join size / active" `Quick test_join_size_active;
    Alcotest.test_case "of_flat errors" `Quick test_of_flat_errors;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_degrees_consistent;
    Alcotest.test_case "fingerprint" `Quick test_fingerprint;
    QCheck_alcotest.to_alcotest prop_fingerprint_respects_equality;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "stats weights" `Quick test_stats_weights;
    QCheck_alcotest.to_alcotest prop_stats_model;
    Alcotest.test_case "pairs" `Quick test_pairs;
    Alcotest.test_case "counted pairs" `Quick test_counted_pairs;
    Alcotest.test_case "tuples packed" `Quick test_tuples_packed;
    Alcotest.test_case "tuples hashed" `Quick test_tuples_hashed;
    QCheck_alcotest.to_alcotest prop_tuples_dedup;
  ]
